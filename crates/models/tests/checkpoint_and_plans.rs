//! Model-zoo integration tests: checkpoint round-trips through every model
//! family and hybrid-plan structure checks.

use puffer_models::lstm_lm::{LstmLm, LstmLmConfig};
use puffer_models::resnet::{ResNet, ResNetConfig, ResNetHybridPlan};
use puffer_models::transformer::{TransformerConfig, TransformerModel};
use puffer_models::units::FactorInit;
use puffer_models::vgg::{Vgg, VggConfig};
use puffer_nn::checkpoint::{load_state_dict, state_dict};
use puffer_nn::layer::{Layer, Mode};
use puffer_tensor::Tensor;

#[test]
fn vgg_checkpoint_round_trip() {
    let mut a = Vgg::new(VggConfig::vgg11(0.0625, 4, 1)).unwrap();
    let mut b = Vgg::new(VggConfig::vgg11(0.0625, 4, 2)).unwrap();
    let x = Tensor::randn(&[1, 3, 32, 32], 1.0, 3);
    assert_ne!(a.forward(&x, Mode::Eval), b.forward(&x, Mode::Eval));
    load_state_dict(&mut b, &state_dict(&a)).unwrap();
    assert_eq!(a.forward(&x, Mode::Eval), b.forward(&x, Mode::Eval));
}

#[test]
fn hybrid_resnet_checkpoint_round_trip() {
    // Checkpoints work across surgery: a hybrid's state dict restores into
    // a freshly converted hybrid of the same plan.
    let base = ResNet::new(ResNetConfig::resnet18(0.0625, 4, 1)).unwrap();
    let mut a = base.to_hybrid(&ResNetHybridPlan::resnet18_paper(), FactorInit::Random(5)).unwrap();
    let mut b = base.to_hybrid(&ResNetHybridPlan::resnet18_paper(), FactorInit::Random(9)).unwrap();
    load_state_dict(&mut b, &state_dict(&a)).unwrap();
    let x = Tensor::randn(&[1, 3, 16, 16], 1.0, 3);
    assert_eq!(a.forward(&x, Mode::Eval), b.forward(&x, Mode::Eval));
}

#[test]
fn vanilla_checkpoint_rejected_by_hybrid() {
    let base = ResNet::new(ResNetConfig::resnet18(0.0625, 4, 1)).unwrap();
    let mut hybrid =
        base.to_hybrid(&ResNetHybridPlan::resnet18_paper(), FactorInit::Random(5)).unwrap();
    assert!(load_state_dict(&mut hybrid, &state_dict(&base)).is_err());
}

#[test]
fn lstm_lm_state_round_trip_via_params() {
    let mut a = LstmLm::new(LstmLmConfig::small(20, 8, 1)).unwrap();
    let mut b = LstmLm::new(LstmLmConfig::small(20, 8, 2)).unwrap();
    let values: Vec<Tensor> = a.params().iter().map(|p| p.value.clone()).collect();
    for (p, v) in b.params_mut().into_iter().zip(values) {
        p.value = v;
    }
    let inputs = vec![vec![1, 2], vec![3, 4]];
    assert_eq!(a.forward(&inputs, false), b.forward(&inputs, false));
}

#[test]
fn transformer_param_lists_are_stable_across_construction() {
    let a = TransformerModel::new(TransformerConfig::small(32, 1)).unwrap();
    let b = TransformerModel::new(TransformerConfig::small(32, 2)).unwrap();
    let sa: Vec<Vec<usize>> = a.params().iter().map(|p| p.value.shape().to_vec()).collect();
    let sb: Vec<Vec<usize>> = b.params().iter().map(|p| p.value.shape().to_vec()).collect();
    assert_eq!(sa, sb, "same config must give same parameter layout");
}

#[test]
fn hybrid_plans_hit_expected_layer_counts() {
    // VGG-19 at any width: K = 10 factorizes convs 10..16 and both hidden
    // FCs: 7 + 2 = 9 low-rank layers.
    let vgg = Vgg::new(VggConfig::vgg19(0.125, 10, 1)).unwrap();
    let h = vgg.to_hybrid(10, 0.25, FactorInit::Random(1)).unwrap();
    assert_eq!(h.low_rank_layer_count(), 9);

    // ResNet-50 paper plan: exactly the 3 conv5_x blocks.
    let net = ResNet::new(ResNetConfig::resnet50(0.0625, 10, 1)).unwrap();
    let h = net.to_hybrid(&ResNetHybridPlan::resnet50_paper(), FactorInit::Random(1)).unwrap();
    assert_eq!(h.low_rank_block_count(), 3);
    assert_eq!(h.block_count(), 16);

    // ResNet-18 paper plan: 7 of 8 blocks.
    let net = ResNet::new(ResNetConfig::resnet18(0.125, 10, 1)).unwrap();
    let h = net.to_hybrid(&ResNetHybridPlan::resnet18_paper(), FactorInit::Random(1)).unwrap();
    assert_eq!(h.low_rank_block_count(), 7);
}

#[test]
fn warm_start_survives_checkpoint() {
    // SVD warm-start → save → load → eval parity with the source hybrid.
    let base = Vgg::new(VggConfig::vgg11(0.0625, 4, 1)).unwrap();
    let mut warm = base.to_hybrid(1, 0.5, FactorInit::WarmStart).unwrap();
    let path = std::env::temp_dir().join("puffer_models_ckpt.puft");
    puffer_nn::checkpoint::save(&warm, &path).unwrap();
    let mut restored = base.to_hybrid(1, 0.5, FactorInit::Random(99)).unwrap();
    puffer_nn::checkpoint::load(&mut restored, &path).unwrap();
    let x = Tensor::randn(&[1, 3, 32, 32], 1.0, 4);
    assert_eq!(warm.forward(&x, Mode::Eval), restored.forward(&x, Mode::Eval));
    let _ = std::fs::remove_file(path);
}
