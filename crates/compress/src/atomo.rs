//! ATOMO-style spectral gradient sparsification (Wang et al. 2018).
//!
//! ATOMO decomposes each gradient matrix with an SVD **every step** and
//! ships a sampled subset of singular triplets. The paper's introduction
//! names it as the motivating example of a compressor whose *computation*
//! cost is prohibitive: "ATOMO requires to compute gradient factorizations
//! using SVD for every single batch" (§1) — exactly the overhead
//! Pufferfish's one-time warm-start SVD amortizes away. We implement the
//! deterministic top-`r` variant (spectral-ATOMO at fixed rank) so the
//! per-step SVD cost can be measured against PowerSGD's power iteration
//! and Pufferfish's zero-cost rounds.

use crate::{AggregationKind, GradCompressor, RoundStats};
use puffer_probe::Stopwatch;
use puffer_tensor::svd::truncated_svd_seeded;
use puffer_tensor::Tensor;
use std::time::Duration;

/// ATOMO compressor at fixed spectral rank.
#[derive(Debug)]
pub struct Atomo {
    rank: usize,
    seed: u64,
    step: u64,
}

impl Atomo {
    /// Creates a rank-`r` spectral compressor.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is zero.
    pub fn new(rank: usize, seed: u64) -> Self {
        assert!(rank > 0, "ATOMO rank must be nonzero");
        Atomo { rank, seed, step: 0 }
    }

    /// The spectral rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    fn as_matrix(t: &Tensor) -> Option<Tensor> {
        if t.ndim() < 2 {
            return None;
        }
        let rows = t.shape()[0];
        Some(t.reshape(&[rows, t.len() / rows]).expect("element count"))
    }
}

impl GradCompressor for Atomo {
    fn name(&self) -> &'static str {
        "atomo"
    }

    fn aggregation(&self) -> AggregationKind {
        // Per-worker singular triplets differ, so messages must be gathered.
        AggregationKind::AllGather
    }

    fn round(&mut self, worker_grads: &[Vec<Tensor>]) -> (Vec<Tensor>, RoundStats) {
        self.step += 1;
        let n_workers = worker_grads.len();
        let n_layers = worker_grads[0].len();
        let mut out: Vec<Tensor> = Vec::with_capacity(n_layers);
        let mut bytes = 0usize;
        let mut encode_time = Duration::ZERO;
        let mut decode_time = Duration::ZERO;
        for li in 0..n_layers {
            let sample = &worker_grads[0][li];
            match Self::as_matrix(sample) {
                None => {
                    let mut mean = worker_grads[0][li].clone();
                    for w in &worker_grads[1..] {
                        mean.axpy(1.0, &w[li]).expect("shape");
                    }
                    mean.scale(1.0 / n_workers as f32);
                    bytes += mean.len() * 4;
                    out.push(mean);
                }
                Some(m0) => {
                    let (m, n) = (m0.shape()[0], m0.shape()[1]);
                    let r = self.rank.min(m).min(n);
                    // Encode: per-worker truncated SVD — the per-step cost
                    // the paper's intro criticizes.
                    let t_enc = Stopwatch::start();
                    let factors: Vec<_> = worker_grads
                        .iter()
                        .map(|grads| {
                            let mat = Self::as_matrix(&grads[li]).expect("checked");
                            truncated_svd_seeded(&mat, r, self.seed ^ self.step)
                                .expect("svd of finite gradient")
                        })
                        .collect();
                    encode_time += t_enc.elapsed();
                    bytes += (m * r + r + r * n) * 4;
                    // Decode: every worker reconstructs and averages all
                    // workers' triplets (allgather semantics).
                    let t_dec = Stopwatch::start();
                    let mut mean = Tensor::zeros(&[m, n]);
                    for f in &factors {
                        mean.axpy(1.0, &f.reconstruct()).expect("shape");
                    }
                    mean.scale(1.0 / n_workers as f32);
                    decode_time += t_dec.elapsed();
                    out.push(mean.reshape(sample.shape()).expect("element count"));
                }
            }
        }
        // Per-node encode: each node factorizes only its own gradient.
        encode_time /= n_workers.max(1) as u32;
        (
            out,
            RoundStats::new(
                bytes,
                worker_grads.len(),
                self.aggregation(),
                encode_time,
                decode_time,
            ),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puffer_tensor::matmul::matmul;
    use puffer_tensor::stats::rel_error;

    #[test]
    fn low_rank_gradient_passes_exactly() {
        let u = Tensor::randn(&[8, 2], 1.0, 1);
        let v = Tensor::randn(&[2, 6], 1.0, 2);
        let g = matmul(&u, &v).unwrap();
        let mut c = Atomo::new(2, 3);
        let (out, _) = c.round(&[vec![g.clone()]]);
        assert!(rel_error(&g, &out[0]) < 1e-2, "{}", rel_error(&g, &out[0]));
    }

    #[test]
    fn truncation_loses_tail_energy_only() {
        let g = Tensor::randn(&[10, 10], 1.0, 4);
        let mut c = Atomo::new(4, 5);
        let (out, _) = c.round(&[vec![g.clone()]]);
        // Eckart–Young: the rank-4 approximation is closer than zero.
        let err = rel_error(&g, &out[0]);
        assert!(err < 1.0 && err > 0.0);
    }

    #[test]
    fn encode_cost_is_measured_every_round() {
        // The defining pathology: encode time is nonzero on *every* round.
        let mut c = Atomo::new(2, 6);
        let grads = vec![vec![Tensor::randn(&[48, 48], 1.0, 7)]];
        for _ in 0..3 {
            let (_, stats) = c.round(&grads);
            assert!(stats.encode_time > Duration::ZERO);
        }
        assert_eq!(c.aggregation(), AggregationKind::AllGather);
    }

    #[test]
    fn one_d_passthrough_and_multiworker_mean() {
        let mut c = Atomo::new(2, 8);
        let w1 = vec![Tensor::full(&[3], 1.0)];
        let w2 = vec![Tensor::full(&[3], 3.0)];
        let (out, _) = c.round(&[w1, w2]);
        assert_eq!(out[0].as_slice(), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn bytes_reflect_triplet_size() {
        let mut c = Atomo::new(2, 9);
        let grads = vec![vec![Tensor::randn(&[32, 32], 1.0, 10)]];
        let (_, stats) = c.round(&grads);
        assert_eq!(stats.bytes_per_worker, (32 * 2 + 2 + 2 * 32) * 4);
    }
}
