//! Encode/decode cost micro-benchmarks for the compression baselines: the
//! per-method costs behind the paper's Figure 4 breakdown and appendix F.

use criterion::{criterion_group, criterion_main, Criterion};
use puffer_compress::none::NoCompression;
use puffer_compress::powersgd::PowerSgd;
use puffer_compress::quant::BinaryQuant;
use puffer_compress::signum::Signum;
use puffer_compress::topk::TopK;
use puffer_compress::GradCompressor;
use puffer_tensor::Tensor;

fn worker_grads(workers: usize) -> Vec<Vec<Tensor>> {
    (0..workers)
        .map(|w| {
            vec![
                Tensor::randn(&[128, 128], 1.0, w as u64),
                Tensor::randn(&[64, 128, 3, 3], 0.5, 100 + w as u64),
                Tensor::randn(&[128], 0.1, 200 + w as u64),
            ]
        })
        .collect()
}

fn bench_round(c: &mut Criterion) {
    let grads = worker_grads(4);
    let mut group = c.benchmark_group("compressor_round_4workers");
    group.bench_function("vanilla", |b| {
        let mut m = NoCompression::new();
        b.iter(|| m.round(&grads))
    });
    group.bench_function("powersgd_r2", |b| {
        let mut m = PowerSgd::new(2, 1);
        b.iter(|| m.round(&grads))
    });
    group.bench_function("signum", |b| {
        let mut m = Signum::new(0.9);
        b.iter(|| m.round(&grads))
    });
    group.bench_function("topk_1pct", |b| {
        let mut m = TopK::new(0.01);
        b.iter(|| m.round(&grads))
    });
    group.bench_function("binary_quant", |b| {
        let mut m = BinaryQuant::new(2);
        b.iter(|| m.round(&grads))
    });
    group.finish();
}

criterion_group!(benches, bench_round);
criterion_main!(benches);
