//! Seeds one `no-raw-percentile-math` violation plus the exempt shapes
//! the rule must spare: a consumer-named helper, a suppressed
//! definition, and a test-module definition.

/// The violation: a hand-rolled median that will drift from the probe's
/// histogram summaries.
pub fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// Consumer-shaped name: reads a quantile someone else computed.
pub fn p50_seconds(p50_ns: u64) -> f64 {
    p50_ns as f64 / 1e9
}

// lint:allow(no-raw-percentile-math) — deliberate exact quantile
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    xs[((xs.len() - 1) as f64 * q) as usize]
}

#[cfg(test)]
mod tests {
    pub fn p99(xs: &[f64]) -> f64 {
        xs[xs.len() * 99 / 100]
    }
}
