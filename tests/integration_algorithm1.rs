//! End-to-end integration tests for Algorithm 1 across model families.

use pufferfish_repro::core::trainer::{train, ModelPlan, TrainConfig};
use pufferfish_repro::data::images::{ImageDataset, ImageDatasetConfig};
use pufferfish_repro::models::resnet::{ResNet, ResNetConfig, ResNetHybridPlan};
use pufferfish_repro::models::vgg::{Vgg, VggConfig};
use pufferfish_repro::nn::schedule::StepDecay;

fn dataset() -> ImageDataset {
    ImageDataset::generate(ImageDatasetConfig {
        classes: 4,
        channels: 3,
        size: 16,
        train: 256,
        test: 96,
        noise: 0.1,
        seed: 17,
    })
}

fn small_vgg(seed: u64) -> Vgg {
    Vgg::new(VggConfig {
        stages: vec![vec![6], vec![10], vec![16]],
        fc_hidden: vec![24],
        classes: 4,
        input_size: 16,
        seed,
    })
    .unwrap()
}

#[test]
fn algorithm1_end_to_end_beats_chance_and_shrinks_model() {
    let data = dataset();
    let mut cfg = TrainConfig::cifar_small(8, 3);
    cfg.schedule = StepDecay::new(0.1, vec![6], 0.1);
    let out = train(
        small_vgg(1),
        ModelPlan::VggHybrid { first_low_rank: 2, rank_ratio: 0.5 },
        &data,
        &cfg,
    )
    .unwrap();
    assert_eq!(out.report.switch_epoch, Some(3));
    assert!(out.report.hybrid_params < out.report.vanilla_params);
    assert!(out.report.final_test_accuracy() > 0.45, "acc {}", out.report.final_test_accuracy());
    // Training loss decreased overall.
    let first = out.report.epochs.first().unwrap().train_loss;
    let last = out.report.epochs.last().unwrap().train_loss;
    assert!(last < first, "loss {first} -> {last}");
}

#[test]
fn warm_up_outperforms_from_scratch_low_rank() {
    // The central §3 claim, averaged over two seeds at identical budgets.
    let data = dataset();
    let mut warm_acc = 0.0;
    let mut cold_acc = 0.0;
    for seed in [1u64, 2] {
        let mut cfg = TrainConfig::cifar_small(8, 3);
        cfg.seed = seed;
        let warm = train(
            small_vgg(seed),
            ModelPlan::VggHybrid { first_low_rank: 1, rank_ratio: 0.25 },
            &data,
            &cfg,
        )
        .unwrap();
        warm_acc += warm.report.final_test_accuracy();
        let mut cfg = TrainConfig::cifar_small(8, 0);
        cfg.seed = seed;
        let cold = train(
            small_vgg(seed),
            ModelPlan::VggHybrid { first_low_rank: 1, rank_ratio: 0.25 },
            &data,
            &cfg,
        )
        .unwrap();
        cold_acc += cold.report.final_test_accuracy();
    }
    // Allow ties (small scale) but warm-up must not be clearly worse.
    assert!(
        warm_acc >= cold_acc - 0.05,
        "warm-up {warm_acc} clearly worse than from-scratch {cold_acc}"
    );
}

#[test]
fn resnet_hybrid_trains_and_preserves_shapes() {
    let data = dataset();
    let net = ResNet::new(ResNetConfig::resnet18(0.0625, 4, 5)).unwrap();
    let cfg = TrainConfig::cifar_small(3, 1);
    let out = train(net, ModelPlan::ResNetHybrid(ResNetHybridPlan::resnet18_paper()), &data, &cfg)
        .unwrap();
    assert_eq!(out.report.switch_epoch, Some(1));
    assert!(out.report.compression_ratio() > 1.5, "ratio {}", out.report.compression_ratio());
    assert!(out.report.epochs.iter().all(|e| e.train_loss.is_finite()));
}

#[test]
fn epoch_wall_times_and_svd_overhead_recorded() {
    let data = dataset();
    let cfg = TrainConfig::cifar_small(3, 1);
    let out = train(
        small_vgg(9),
        ModelPlan::VggHybrid { first_low_rank: 2, rank_ratio: 0.5 },
        &data,
        &cfg,
    )
    .unwrap();
    assert!(out.report.svd_time.unwrap() > std::time::Duration::ZERO);
    assert!(out.report.total_wall() > std::time::Duration::ZERO);
    assert!(out.report.epochs.iter().all(|e| e.wall > std::time::Duration::ZERO));
}
