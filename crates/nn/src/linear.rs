//! Fully connected layers: vanilla [`Linear`] and Pufferfish's
//! [`LowRankLinear`] (`W ≈ U·Vᵀ`, paper §2.1).

use crate::layer::{Layer, Mode};
use crate::param::Param;
use crate::{NnError, Result};
use puffer_tensor::init::kaiming_normal;
use puffer_tensor::matmul::{matmul, matmul_nt, matmul_tn};
use puffer_tensor::Tensor;

/// Dense layer `y = x·Wᵀ + b` with `W ∈ R^{out×in}`.
#[derive(Debug)]
pub struct Linear {
    weight: Param,
    bias: Option<Param>,
    in_features: usize,
    out_features: usize,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a Kaiming-initialized dense layer.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] if either dimension is zero.
    pub fn new(in_features: usize, out_features: usize, bias: bool, seed: u64) -> Result<Self> {
        if in_features == 0 || out_features == 0 {
            return Err(NnError::BadConfig {
                layer: "Linear",
                reason: format!("dimensions must be nonzero, got {in_features}x{out_features}"),
            });
        }
        let weight =
            Param::new("weight", kaiming_normal(&[out_features, in_features], in_features, seed));
        let bias = bias.then(|| Param::new_no_decay("bias", Tensor::zeros(&[out_features])));
        Ok(Linear { weight, bias, in_features, out_features, cached_input: None })
    }

    /// Creates a layer from explicit weights (used by warm-start surgery).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] if `weight` is not 2-D or `bias` has
    /// the wrong length.
    pub fn from_weights(weight: Tensor, bias: Option<Tensor>) -> Result<Self> {
        if weight.ndim() != 2 {
            return Err(NnError::BadConfig {
                layer: "Linear",
                reason: "weight must be 2-D".into(),
            });
        }
        let (out_features, in_features) = (weight.shape()[0], weight.shape()[1]);
        if let Some(b) = &bias {
            if b.len() != out_features {
                return Err(NnError::BadConfig {
                    layer: "Linear",
                    reason: format!("bias length {} != out features {out_features}", b.len()),
                });
            }
        }
        Ok(Linear {
            weight: Param::new("weight", weight),
            bias: bias.map(|b| Param::new_no_decay("bias", b)),
            in_features,
            out_features,
            cached_input: None,
        })
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// The weight matrix (`out×in`).
    pub fn weight(&self) -> &Tensor {
        &self.weight.value
    }

    /// The bias vector, if present.
    pub fn bias(&self) -> Option<&Tensor> {
        self.bias.as_ref().map(|p| &p.value)
    }
}

impl Layer for Linear {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        assert_eq!(input.ndim(), 2, "Linear expects [batch, features]");
        assert_eq!(input.shape()[1], self.in_features, "Linear input feature mismatch");
        let mut y = matmul_nt(input, &self.weight.value).expect("shapes checked");
        if let Some(b) = &self.bias {
            add_bias_rows(&mut y, &b.value);
        }
        if mode == Mode::Train {
            crate::layer::cache_activation(&mut self.cached_input, input);
        }
        y
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let x = self.cached_input.as_ref().expect("backward before train-mode forward");
        let dw = matmul_tn(grad_output, x).expect("shapes checked");
        self.weight.grad.axpy(1.0, &dw).expect("grad shape");
        if let Some(b) = &mut self.bias {
            accumulate_bias_grad(&mut b.grad, grad_output);
        }
        matmul(grad_output, &self.weight.value).expect("shapes checked")
    }

    fn params(&self) -> Vec<&Param> {
        let mut v = vec![&self.weight];
        v.extend(self.bias.as_ref());
        v
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = vec![&mut self.weight];
        v.extend(self.bias.as_mut());
        v
    }

    fn describe(&self) -> String {
        format!("Linear({}→{})", self.in_features, self.out_features)
    }
}

/// Pufferfish factorized dense layer `y = ((x·V)·Uᵀ) + b` where the dense
/// `W ∈ R^{out×in}` is replaced by `U ∈ R^{out×r}` and `Vᵀ ∈ R^{r×in}`.
///
/// Parameter count drops from `out·in` to `r·(out+in)` (Table 1).
#[derive(Debug)]
pub struct LowRankLinear {
    u: Param,
    vt: Param,
    bias: Option<Param>,
    in_features: usize,
    out_features: usize,
    rank: usize,
    cached_input: Option<Tensor>,
    cached_hidden: Option<Tensor>,
}

impl LowRankLinear {
    /// Creates a randomly initialized factorized layer.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] if any dimension is zero or
    /// `rank > min(in, out)`.
    pub fn new(
        in_features: usize,
        out_features: usize,
        rank: usize,
        bias: bool,
        seed: u64,
    ) -> Result<Self> {
        validate_rank("LowRankLinear", in_features, out_features, rank)?;
        // Initialize so that U·Vᵀ has Kaiming-like variance: each factor gets
        // the fourth root of the target variance.
        let std = (2.0 / in_features as f32).sqrt() / (rank as f32).sqrt();
        let u = Param::new("weight_u", Tensor::randn(&[out_features, rank], std.sqrt(), seed));
        let vt = Param::new(
            "weight_v",
            Tensor::randn(&[rank, in_features], std.sqrt(), seed.wrapping_add(1)),
        );
        let bias = bias.then(|| Param::new_no_decay("bias", Tensor::zeros(&[out_features])));
        Ok(LowRankLinear {
            u,
            vt,
            bias,
            in_features,
            out_features,
            rank,
            cached_input: None,
            cached_hidden: None,
        })
    }

    /// Creates a factorized layer from explicit factors (`U: out×r`,
    /// `Vᵀ: r×in`), the output of Pufferfish's SVD warm-start.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] on factor shape mismatch.
    pub fn from_factors(u: Tensor, vt: Tensor, bias: Option<Tensor>) -> Result<Self> {
        if u.ndim() != 2 || vt.ndim() != 2 || u.shape()[1] != vt.shape()[0] {
            return Err(NnError::BadConfig {
                layer: "LowRankLinear",
                reason: format!("incompatible factors {:?} / {:?}", u.shape(), vt.shape()),
            });
        }
        let (out_features, rank) = (u.shape()[0], u.shape()[1]);
        let in_features = vt.shape()[1];
        if let Some(b) = &bias {
            if b.len() != out_features {
                return Err(NnError::BadConfig {
                    layer: "LowRankLinear",
                    reason: format!("bias length {} != out features {out_features}", b.len()),
                });
            }
        }
        Ok(LowRankLinear {
            u: Param::new("weight_u", u),
            vt: Param::new("weight_v", vt),
            bias: bias.map(|b| Param::new_no_decay("bias", b)),
            in_features,
            out_features,
            rank,
            cached_input: None,
            cached_hidden: None,
        })
    }

    /// The factorization rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Reconstructs the effective dense weight `U·Vᵀ` (for tests/analysis).
    pub fn effective_weight(&self) -> Tensor {
        matmul(&self.u.value, &self.vt.value).expect("factor shapes are consistent")
    }
}

impl Layer for LowRankLinear {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        assert_eq!(input.ndim(), 2, "LowRankLinear expects [batch, features]");
        assert_eq!(input.shape()[1], self.in_features, "LowRankLinear input feature mismatch");
        let hidden = matmul_nt(input, &self.vt.value).expect("shapes checked"); // [N, r]
        let mut y = matmul_nt(&hidden, &self.u.value).expect("shapes checked"); // [N, out]
        if let Some(b) = &self.bias {
            add_bias_rows(&mut y, &b.value);
        }
        if mode == Mode::Train {
            crate::layer::cache_activation(&mut self.cached_input, input);
            self.cached_hidden = Some(hidden);
        }
        y
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let x = self.cached_input.as_ref().expect("backward before train-mode forward");
        let h = self.cached_hidden.as_ref().expect("backward before train-mode forward");
        // dU = dYᵀ·H, dH = dY·U, dVᵀ = dHᵀ·X, dX = dH·Vᵀ
        let du = matmul_tn(grad_output, h).expect("shapes checked");
        self.u.grad.axpy(1.0, &du).expect("grad shape");
        let dh = matmul(grad_output, &self.u.value).expect("shapes checked");
        let dvt = matmul_tn(&dh, x).expect("shapes checked");
        self.vt.grad.axpy(1.0, &dvt).expect("grad shape");
        if let Some(b) = &mut self.bias {
            accumulate_bias_grad(&mut b.grad, grad_output);
        }
        matmul(&dh, &self.vt.value).expect("shapes checked")
    }

    fn params(&self) -> Vec<&Param> {
        let mut v = vec![&self.u, &self.vt];
        v.extend(self.bias.as_ref());
        v
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = vec![&mut self.u, &mut self.vt];
        v.extend(self.bias.as_mut());
        v
    }

    fn describe(&self) -> String {
        format!("LowRankLinear({}→{}, r={})", self.in_features, self.out_features, self.rank)
    }
}

pub(crate) fn validate_rank(
    layer: &'static str,
    in_features: usize,
    out_features: usize,
    rank: usize,
) -> Result<()> {
    if in_features == 0 || out_features == 0 || rank == 0 {
        return Err(NnError::BadConfig {
            layer,
            reason: format!(
                "dimensions must be nonzero, got {in_features}x{out_features} rank {rank}"
            ),
        });
    }
    if rank > in_features.min(out_features) {
        return Err(NnError::BadConfig {
            layer,
            reason: format!("rank {rank} exceeds min({in_features}, {out_features})"),
        });
    }
    Ok(())
}

/// Adds a bias vector to every row of a `[rows, features]` activation.
/// Shared by every layer with a per-feature bias.
pub fn add_bias_rows(y: &mut Tensor, bias: &Tensor) {
    let cols = y.shape()[y.ndim() - 1];
    debug_assert_eq!(bias.len(), cols);
    for row in y.as_mut_slice().chunks_mut(cols) {
        for (v, b) in row.iter_mut().zip(bias.as_slice()) {
            *v += b;
        }
    }
}

/// Accumulates a bias gradient: the row-sum of `grad_output`. The adjoint
/// of [`add_bias_rows`].
pub fn accumulate_bias_grad(bias_grad: &mut Tensor, grad_output: &Tensor) {
    let cols = bias_grad.len();
    for row in grad_output.as_slice().chunks(cols) {
        for (g, d) in bias_grad.as_mut_slice().iter_mut().zip(row) {
            *g += d;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{finite_diff_input_check, finite_diff_param_check};
    use puffer_tensor::stats::rel_error;

    #[test]
    fn linear_forward_known_values() {
        let w = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![0.5, -0.5], &[2]).unwrap();
        let mut l = Linear::from_weights(w, Some(b)).unwrap();
        let x = Tensor::from_vec(vec![1.0, 0.0, -1.0], &[1, 3]).unwrap();
        let y = l.forward(&x, Mode::Eval);
        // y = [1-3+0.5, 4-6-0.5] = [-1.5, -2.5]
        assert_eq!(y.as_slice(), &[-1.5, -2.5]);
    }

    #[test]
    fn linear_gradcheck() {
        let mut l = Linear::new(4, 3, true, 1).unwrap();
        let x = Tensor::randn(&[2, 4], 1.0, 2);
        assert!(finite_diff_input_check(&mut l, &x, 1e-2) < 1e-2);
        assert!(finite_diff_param_check(&mut l, &x, 1e-2) < 1e-2);
    }

    #[test]
    fn low_rank_gradcheck() {
        let mut l = LowRankLinear::new(5, 4, 2, true, 3).unwrap();
        let x = Tensor::randn(&[3, 5], 1.0, 4);
        assert!(finite_diff_input_check(&mut l, &x, 1e-2) < 1e-2);
        assert!(finite_diff_param_check(&mut l, &x, 1e-2) < 1e-2);
    }

    #[test]
    fn full_rank_factorization_is_exact() {
        // With r = min(in, out), LowRankLinear can represent any Linear.
        let dense = Linear::new(6, 4, false, 5).unwrap();
        let f = puffer_tensor::svd::truncated_svd(dense.weight(), 4).unwrap();
        let (u, vt) = f.split_balanced();
        let mut lr = LowRankLinear::from_factors(u, vt, None).unwrap();
        let mut dense = dense;
        let x = Tensor::randn(&[3, 6], 1.0, 6);
        let yd = dense.forward(&x, Mode::Eval);
        let yl = lr.forward(&x, Mode::Eval);
        assert!(rel_error(&yd, &yl) < 1e-3, "rel err {}", rel_error(&yd, &yl));
    }

    #[test]
    fn param_counts_match_table1() {
        let (m, n, r) = (128usize, 64usize, 16usize);
        let dense = Linear::new(n, m, false, 1).unwrap();
        assert_eq!(dense.param_count(), m * n);
        let lr = LowRankLinear::new(n, m, r, false, 1).unwrap();
        assert_eq!(lr.param_count(), r * (m + n));
    }

    #[test]
    fn bias_gradient_accumulates_batch() {
        let mut l = Linear::new(2, 2, true, 1).unwrap();
        let x = Tensor::ones(&[4, 2]);
        let _ = l.forward(&x, Mode::Train);
        let _ = l.backward(&Tensor::ones(&[4, 2]));
        // db = sum over 4 batch rows of ones = 4.
        assert_eq!(l.params()[1].grad.as_slice(), &[4.0, 4.0]);
    }

    #[test]
    fn constructors_validate() {
        assert!(Linear::new(0, 4, true, 1).is_err());
        assert!(LowRankLinear::new(4, 4, 5, true, 1).is_err());
        assert!(LowRankLinear::new(4, 4, 0, true, 1).is_err());
        let u = Tensor::zeros(&[4, 2]);
        let vt = Tensor::zeros(&[3, 5]);
        assert!(LowRankLinear::from_factors(u, vt, None).is_err());
    }

    #[test]
    fn effective_weight_matches_factors() {
        let lr = LowRankLinear::new(4, 3, 2, false, 7).unwrap();
        let w = lr.effective_weight();
        assert_eq!(w.shape(), &[3, 4]);
    }

    #[test]
    fn grads_accumulate_across_backward_calls() {
        let mut l = Linear::new(2, 2, false, 1).unwrap();
        let x = Tensor::ones(&[1, 2]);
        let g = Tensor::ones(&[1, 2]);
        let _ = l.forward(&x, Mode::Train);
        let _ = l.backward(&g);
        let g1 = l.params()[0].grad.clone();
        let _ = l.forward(&x, Mode::Train);
        let _ = l.backward(&g);
        let g2 = l.params()[0].grad.clone();
        for (a, b) in g1.as_slice().iter().zip(g2.as_slice()) {
            assert!((b - 2.0 * a).abs() < 1e-6);
        }
    }
}
