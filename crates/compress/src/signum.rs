//! SignSGD with majority vote / Signum (Bernstein et al. 2018a;b).
//!
//! Each worker maintains a momentum buffer and transmits only the **sign**
//! of each momentum coordinate (1 bit), packed into `u64` words. The
//! aggregation is a majority vote across workers. Sign messages cannot be
//! summed in flight, so the collective is allgather — the inefficiency the
//! paper measures in Figure 4 ("allgather is less efficient than
//! allreduce").

use crate::pack::{pack, PackLayout};
use crate::{AggregationKind, GradCompressor, RoundStats};
use puffer_probe::Stopwatch;
use puffer_tensor::Tensor;
use std::time::Duration;

/// Signum compressor state.
#[derive(Debug)]
pub struct Signum {
    beta: f32,
    /// Per-worker momentum over the packed flat gradient.
    momentum: Vec<Tensor>,
    layout: Option<PackLayout>,
}

/// A packed sign message: one bit per coordinate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignMessage {
    bits: Vec<u64>,
    len: usize,
}

impl SignMessage {
    /// Encodes the signs of a flat buffer (negative → 0, non-negative → 1).
    pub fn encode(values: &[f32]) -> Self {
        let mut bits = vec![0u64; values.len().div_ceil(64)];
        for (i, &v) in values.iter().enumerate() {
            if v >= 0.0 {
                bits[i / 64] |= 1u64 << (i % 64);
            }
        }
        SignMessage { bits, len: values.len() }
    }

    /// Sign at coordinate `i`: `+1.0` or `-1.0`.
    pub fn sign(&self, i: usize) -> f32 {
        debug_assert!(i < self.len);
        if self.bits[i / 64] >> (i % 64) & 1 == 1 {
            1.0
        } else {
            -1.0
        }
    }

    /// Number of encoded coordinates.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the message is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Wire size in bytes.
    pub fn bytes(&self) -> usize {
        self.bits.len() * 8
    }
}

impl Signum {
    /// Creates a Signum compressor with momentum `beta` (paper default 0.9).
    ///
    /// # Panics
    ///
    /// Panics if `beta` is not in `[0, 1)`.
    pub fn new(beta: f32) -> Self {
        assert!((0.0..1.0).contains(&beta), "beta must be in [0, 1)");
        Signum { beta, momentum: Vec::new(), layout: None }
    }
}

impl GradCompressor for Signum {
    fn name(&self) -> &'static str {
        "signum"
    }

    fn aggregation(&self) -> AggregationKind {
        AggregationKind::AllGather
    }

    fn round(&mut self, worker_grads: &[Vec<Tensor>]) -> (Vec<Tensor>, RoundStats) {
        let n_workers = worker_grads.len();
        let mut encode_time = Duration::ZERO;

        // Encode: update momentum, take signs.
        let mut msgs = Vec::with_capacity(n_workers);
        for (w, grads) in worker_grads.iter().enumerate() {
            let t0 = Stopwatch::start();
            let (flat, layout) = pack(grads);
            if self.layout.as_ref() != Some(&layout) {
                self.layout = Some(layout.clone());
                self.momentum = vec![Tensor::zeros(&[layout.total_len()]); n_workers];
            }
            if self.momentum.len() != n_workers {
                self.momentum = vec![Tensor::zeros(&[flat.len()]); n_workers];
            }
            let mom = &mut self.momentum[w];
            // m ← β m + (1 − β) g
            mom.scale(self.beta);
            mom.axpy(1.0 - self.beta, &flat).expect("shape");
            msgs.push(SignMessage::encode(mom.as_slice()));
            encode_time += t0.elapsed();
        }
        let bytes = msgs[0].bytes();
        // Per-node encode: each node only signs its own momentum.
        encode_time /= n_workers.max(1) as u32;

        // Decode: majority vote over n_workers sign vectors (cost grows
        // linearly with worker count — the allgather penalty).
        let t0 = Stopwatch::start();
        let layout = self.layout.as_ref().expect("layout set above");
        let total = layout.total_len();
        let mut voted = Tensor::zeros(&[total]);
        for i in 0..total {
            let mut v = 0.0f32;
            for msg in &msgs {
                v += msg.sign(i);
            }
            voted.as_mut_slice()[i] = if v >= 0.0 { 1.0 } else { -1.0 };
        }
        let out = crate::pack::unpack(&voted, layout);
        let decode_time = t0.elapsed();
        (
            out,
            RoundStats::new(
                bytes,
                worker_grads.len(),
                self.aggregation(),
                encode_time,
                decode_time,
            ),
        )
    }

    fn state_snapshot(&self) -> Vec<(String, Tensor)> {
        match &self.layout {
            Some(layout) => crate::pack::snapshot_flat_state(layout, "mom", &self.momentum),
            None => Vec::new(),
        }
    }

    fn restore_state(&mut self, state: &[(String, Tensor)]) -> bool {
        if state.is_empty() {
            self.layout = None;
            self.momentum.clear();
            return true;
        }
        match crate::pack::restore_flat_state(state, "mom") {
            Some((layout, momentum)) => {
                self.layout = Some(layout);
                self.momentum = momentum;
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_message_round_trip() {
        let vals = [1.0f32, -2.0, 0.0, -0.5, 3.0];
        let msg = SignMessage::encode(&vals);
        assert_eq!(msg.len(), 5);
        assert_eq!(msg.sign(0), 1.0);
        assert_eq!(msg.sign(1), -1.0);
        assert_eq!(msg.sign(2), 1.0); // zero counts as +
        assert_eq!(msg.sign(3), -1.0);
        assert_eq!(msg.sign(4), 1.0);
    }

    #[test]
    fn message_is_one_bit_per_coordinate() {
        let vals = vec![1.0f32; 1000];
        let msg = SignMessage::encode(&vals);
        assert_eq!(msg.bytes(), 1000usize.div_ceil(64) * 8); // 128 bytes vs 4000 raw
    }

    #[test]
    fn majority_vote() {
        let mut c = Signum::new(0.0); // no momentum: sign of raw gradient
        let w1 = vec![Tensor::from_vec(vec![1.0, -1.0, 1.0], &[3]).unwrap()];
        let w2 = vec![Tensor::from_vec(vec![1.0, -1.0, -1.0], &[3]).unwrap()];
        let w3 = vec![Tensor::from_vec(vec![-1.0, -1.0, -1.0], &[3]).unwrap()];
        let (out, stats) = c.round(&[w1, w2, w3]);
        assert_eq!(out[0].as_slice(), &[1.0, -1.0, -1.0]);
        assert!(stats.bytes_per_worker < 3 * 4);
        assert_eq!(c.aggregation(), AggregationKind::AllGather);
    }

    #[test]
    fn momentum_smooths_signs() {
        // A single large positive gradient followed by small negative ones:
        // with high momentum, the sign stays positive for a while.
        let mut c = Signum::new(0.9);
        let big = vec![Tensor::from_vec(vec![10.0], &[1]).unwrap()];
        let (out, _) = c.round(std::slice::from_ref(&big));
        assert_eq!(out[0].as_slice(), &[1.0]);
        let small_neg = vec![Tensor::from_vec(vec![-0.1], &[1]).unwrap()];
        let (out, _) = c.round(std::slice::from_ref(&small_neg));
        assert_eq!(out[0].as_slice(), &[1.0], "momentum should dominate");
        // After many negative steps the sign flips.
        let mut last = 1.0;
        for _ in 0..60 {
            let (o, _) = c.round(std::slice::from_ref(&small_neg));
            last = o[0].as_slice()[0];
        }
        assert_eq!(last, -1.0);
    }

    #[test]
    fn snapshot_restore_carries_momentum() {
        let grads: Vec<Vec<Tensor>> =
            (0..2).map(|w| vec![Tensor::randn(&[4, 3], 1.0, 40 + w)]).collect();
        let mut a = Signum::new(0.9);
        for _ in 0..3 {
            let _ = a.round(&grads);
        }
        let snap = a.state_snapshot();
        assert!(!snap.is_empty());
        let mut b = Signum::new(0.9);
        assert!(b.restore_state(&snap));
        assert_eq!(a.round(&grads).0, b.round(&grads).0);
        assert!(!b.restore_state(&[("garbage".into(), Tensor::zeros(&[1]))]));
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn beta_validated() {
        let _ = Signum::new(1.0);
    }
}
