//! Satellite guarantee: the tensor pool's thread-count controls
//! (`PUFFER_NUM_THREADS`, `set_num_threads`) compose with the trainer's
//! RAII `PoolWidthGuard` under nested probe spans — no deadlock, and the
//! width is restored even when the guarded region panics. One test per
//! file: the pool's width and the probe's state are process-global, and
//! the env var must be read before the pool's first lazy resolution.

use puffer_dist::trainer::PoolWidthGuard;
use puffer_probe as probe;
use puffer_tensor::pool;
use std::panic::{catch_unwind, AssertUnwindSafe};

#[test]
fn pool_width_guard_nests_with_probe_spans_and_survives_panic() {
    // This process has not touched the pool yet, so the env override is
    // what the first num_threads() call resolves.
    std::env::set_var("PUFFER_NUM_THREADS", "3");
    assert_eq!(pool::num_threads(), 3, "PUFFER_NUM_THREADS must win on first resolution");

    probe::configure(probe::ProbeConfig::in_memory());

    // Guard + nested spans + a real pool dispatch: must complete (no
    // deadlock between the probe's sink lock and the pool's channels).
    {
        let _outer = probe::span("test", "outer");
        let _guard = PoolWidthGuard::cap_for(2);
        let capped = pool::num_threads();
        assert!(capped <= 3, "guard must never widen the pool");
        let _inner = probe::span("test", "inner");
        pool::run_partitioned(64, |range| {
            let _chunk = probe::span("test", "chunk-work");
            let _ = range;
        });
    }
    assert_eq!(pool::num_threads(), 3, "guard must restore the width on drop");
    assert_eq!(probe::span_depth(), 0, "span stack must unwind with the guards");

    // Width restored when the guarded region panics — including a panic
    // raised inside a partitioned chunk and resumed on the caller.
    let result = catch_unwind(AssertUnwindSafe(|| {
        let _guard = PoolWidthGuard::cap_for(2);
        let _sp = probe::span("test", "guarded-panic");
        pool::run_partitioned(64, |range| {
            if range.start == 0 {
                panic!("injected chunk panic");
            }
        });
    }));
    assert!(result.is_err(), "the chunk panic must propagate");
    assert_eq!(pool::num_threads(), 3, "guard must restore the width on unwind");

    // Runtime override still works after guards, and the guard composes
    // with it (restoring to whatever was set when it was created).
    pool::set_num_threads(2);
    {
        let _guard = PoolWidthGuard::cap_for(64);
        assert_eq!(pool::num_threads(), 1, "64 workers cap the pool to one thread");
    }
    assert_eq!(pool::num_threads(), 2);

    // The pool width gauge tracked the set_num_threads calls.
    assert_eq!(probe::counter_value("pool.width"), Some(2.0));
    probe::reset();
}
