//! Bitwise-equality and allocation-freedom tests for the blocked GEMM
//! engine — the two properties the whole `Optimized` profile stands on:
//!
//! 1. the AVX2+FMA micro-kernel, the `mul_add` scalar fallback, and a
//!    naive fused-chain oracle all produce *identical bits*, for any
//!    blocking configuration and thread count;
//! 2. once warm, a steady-state GEMM of a fixed shape never touches the
//!    heap (`alloc.pool_misses` stays flat).
//!
//! The engine's SIMD switch, blocking parameters, pool width, and the
//! probe counters are process-global, so every test serializes on one
//! mutex and restores what it changed.

use std::sync::Mutex;

use puffer_tensor::gemm;
use puffer_tensor::matmul::{
    matmul_with_profile, parallel_threshold, set_parallel_threshold, MatmulProfile,
};
use puffer_tensor::pool::{num_threads, set_num_threads};
use puffer_tensor::{workspace, Tensor};

/// Serializes tests that flip process-global engine state.
static GEMM_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GEMM_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// The determinism oracle: one accumulator per output element, ascending-p
/// fused multiply-add chain. This is exactly the arithmetic the blocked
/// engine promises to reproduce bit-for-bit at every blocking, SIMD
/// setting, and thread count.
fn fma_reference(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc = a[i * k + p].mul_add(b[p * n + j], acc);
            }
            c[i * n + j] = acc;
        }
    }
    c
}

/// Shapes straddling the MR=6 / NR=16 register tiles, the KC=256 depth
/// block, and the MC=96 row block.
const SHAPES: [(usize, usize, usize); 6] =
    [(1, 1, 1), (6, 16, 16), (7, 257, 18), (96, 96, 96), (101, 260, 130), (5, 300, 1)];

struct EngineState {
    threshold: usize,
    threads: usize,
    blocking: (usize, usize, usize),
}

fn save_state() -> EngineState {
    EngineState {
        threshold: parallel_threshold(),
        threads: num_threads(),
        blocking: gemm::blocking(),
    }
}

fn restore_state(s: &EngineState) {
    set_parallel_threshold(s.threshold);
    set_num_threads(s.threads);
    let (kc, mc, nc) = s.blocking;
    gemm::set_blocking(kc, mc, nc);
    gemm::set_simd_enabled(true);
}

#[test]
fn simd_and_scalar_fallback_are_bitwise_identical_to_the_fma_oracle() {
    let _g = lock();
    let saved = save_state();
    set_parallel_threshold(0);

    for &(m, k, n) in &SHAPES {
        let a = Tensor::randn(&[m, k], 1.0, 11);
        let b = Tensor::randn(&[k, n], 1.0, 12);
        let oracle = fma_reference(a.as_slice(), b.as_slice(), m, k, n);
        for threads in [1usize, 2, 4, 8] {
            set_num_threads(threads);
            for simd in [true, false] {
                gemm::set_simd_enabled(simd);
                let c = matmul_with_profile(&a, &b, MatmulProfile::Optimized).unwrap();
                assert_eq!(
                    c.as_slice(),
                    &oracle[..],
                    "bits diverged at {m}x{k}x{n}, simd={simd}, threads={threads} \
                     (simd_supported={})",
                    gemm::simd_supported()
                );
            }
        }
    }

    restore_state(&saved);
}

#[test]
fn results_are_bitwise_invariant_to_the_blocking_configuration() {
    let _g = lock();
    let saved = save_state();
    set_parallel_threshold(0);
    set_num_threads(4);

    // Tiny blockings force multi-KC/MC/NC paths even on small matrices;
    // set_blocking rounds MC/NC up to the register-tile multiples.
    let blockings = [(256, 96, 2048), (2, 6, 16), (3, 12, 32), (7, 17, 50)];
    for &(m, k, n) in &SHAPES {
        let a = Tensor::randn(&[m, k], 1.0, 21);
        let b = Tensor::randn(&[k, n], 1.0, 22);
        let oracle = fma_reference(a.as_slice(), b.as_slice(), m, k, n);
        for &(kc, mc, nc) in &blockings {
            gemm::set_blocking(kc, mc, nc);
            let c = matmul_with_profile(&a, &b, MatmulProfile::Optimized).unwrap();
            assert_eq!(
                c.as_slice(),
                &oracle[..],
                "bits diverged at {m}x{k}x{n} with blocking KC={kc} MC={mc} NC={nc}"
            );
        }
    }

    restore_state(&saved);
}

#[test]
fn steady_state_gemm_never_misses_the_workspace_pool() {
    let _g = lock();
    let saved = save_state();
    let ws_was_enabled = workspace::enabled();
    let probe_config = puffer_probe::current_config();
    // Counters only record while the probe collects.
    puffer_probe::configure(puffer_probe::ProbeConfig::in_memory());
    workspace::set_enabled(true);
    set_parallel_threshold(0);
    set_num_threads(4);

    let a = Tensor::randn(&[64, 96], 1.0, 31);
    let b = Tensor::randn(&[96, 48], 1.0, 32);
    // Warm-up: the first iterations are allowed to allocate the packed-A /
    // packed-B buffers (and the output) into the thread arena.
    for _ in 0..3 {
        let _ = matmul_with_profile(&a, &b, MatmulProfile::Optimized).unwrap();
    }

    let misses_before = puffer_probe::counter_value("alloc.pool_misses").unwrap_or(0.0);
    for _ in 0..10 {
        // The output Tensor and both packed-operand scratch buffers all
        // recycle into the thread arena on drop, so every take is a hit.
        let _ = matmul_with_profile(&a, &b, MatmulProfile::Optimized).unwrap();
    }
    let misses_after = puffer_probe::counter_value("alloc.pool_misses").unwrap_or(0.0);
    assert_eq!(
        misses_before,
        misses_after,
        "steady-state GEMM allocated: pool_misses grew by {}",
        misses_after - misses_before
    );

    puffer_probe::configure(probe_config);
    workspace::set_enabled(ws_was_enabled);
    restore_state(&saved);
}
