//! Renders the puffer-insight report for an exported run.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p puffer-bench --bin insight \
//!     [-- [trace.json] [metrics.jsonl] [--check]]
//! ```
//!
//! With no paths, reads the `trace_demo` exports from `results/`
//! (`trace_demo.json` + `trace_demo_metrics.jsonl` — run the `trace_demo`
//! bin first). Writes the text report to `results/insight_<stem>.txt`,
//! the machine-readable form to `BENCH_insight.json` at the workspace
//! root, and prints the report. `--check` exits non-zero if any insight
//! gate fails — `scripts/check.sh` runs it that way.

use puffer_bench::results_dir;
use puffer_insight::{analyze, ingest};
use std::path::{Path, PathBuf};

fn read_opt(path: &Path) -> Option<String> {
    match std::fs::read_to_string(path) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("note: cannot read {}: {e}", path.display());
            None
        }
    }
}

fn main() {
    let mut check = false;
    let mut paths: Vec<PathBuf> = Vec::new();
    for arg in std::env::args().skip(1) {
        if arg == "--check" {
            check = true;
        } else {
            paths.push(PathBuf::from(arg));
        }
    }
    let (trace_path, metrics_path) = match paths.len() {
        0 => {
            let dir = results_dir();
            (dir.join("trace_demo.json"), Some(dir.join("trace_demo_metrics.jsonl")))
        }
        1 => (paths[0].clone(), None),
        _ => (paths[0].clone(), Some(paths[1].clone())),
    };

    let trace_doc = read_opt(&trace_path);
    let metrics_doc = metrics_path.as_deref().and_then(read_opt);
    let rd = match ingest::load(trace_doc.as_deref(), metrics_doc.as_deref()) {
        Ok(rd) => rd,
        Err(e) => {
            eprintln!("insight: {e}");
            std::process::exit(2);
        }
    };
    let stem = trace_path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "run".to_string());
    let report = analyze(&rd, &stem);
    print!("{}", report.text);

    let txt_path = results_dir().join(format!("insight_{stem}.txt"));
    if let Some(dir) = txt_path.parent() {
        // Best-effort: the write below reports its own error if this failed.
        std::fs::create_dir_all(dir).ok();
    }
    match std::fs::write(&txt_path, &report.text) {
        Ok(()) => println!("wrote {}", txt_path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", txt_path.display()),
    }
    let root = std::env::var("CARGO_MANIFEST_DIR")
        .map(|p| PathBuf::from(p).join("../.."))
        .unwrap_or_else(|_| PathBuf::from("."));
    let json_path = root.join("BENCH_insight.json");
    match std::fs::write(&json_path, &report.json) {
        Ok(()) => println!("wrote {}", json_path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", json_path.display()),
    }

    if check && !report.all_pass {
        eprintln!("insight --check FAILED: at least one gate did not hold");
        std::process::exit(1);
    }
    if check {
        println!("insight --check ok: all gates hold");
    }
}
