//! Acceptance tests for the soak harness's robustness invariants, at test
//! scale: a churned run (crash → rejoin → join → leave, plus a corrupted
//! message) must complete its schedule, stay allocation-free in the
//! post-churn steady state, and replay bitwise from its mid-run
//! checkpoint. The `soak` bin drives the same invariants at soak length;
//! these tests keep them cheap enough for every `cargo test`.
//!
//! Both tests toggle process-global probe/workspace state, so they
//! serialize on a file-local lock (the `alloc_steady_state.rs` idiom).

use puffer_compress::none::NoCompression;
use puffer_dist::checkpoint::{CheckpointPolicy, DistCheckpoint};
use puffer_dist::cost::ClusterProfile;
use puffer_dist::fault::FaultPlan;
use puffer_dist::membership::{MemberEventKind, MembershipPlan};
use puffer_dist::trainer::{train_data_parallel_with, DistConfig, RecoveryPolicy, RunOptions};
use puffer_nn::activation::Relu;
use puffer_nn::linear::Linear;
use puffer_nn::Sequential;
use puffer_probe as probe;
use puffer_tensor::{workspace, Tensor};
use std::sync::Mutex;
use std::time::Duration;

static GLOBAL: Mutex<()> = Mutex::new(());

fn model(seed: u64) -> Sequential {
    Sequential::new(vec![
        Box::new(Linear::new(6, 16, true, seed).unwrap()),
        Box::new(Relu::new()),
        Box::new(Linear::new(16, 3, true, seed + 1).unwrap()),
    ])
}

fn batches(n: usize) -> Vec<(Tensor, Vec<usize>)> {
    (0..n)
        .map(|b| {
            let x = Tensor::randn(&[12, 6], 1.0, 900 + b as u64);
            let labels = (0..12).map(|i| (i + b) % 3).collect();
            (x, labels)
        })
        .collect()
}

fn cfg() -> DistConfig {
    DistConfig {
        workers: 3,
        lr: 0.05,
        momentum: 0.9,
        weight_decay: 1e-4,
        profile: ClusterProfile::zero_cost(3),
    }
}

fn recovery() -> RecoveryPolicy {
    RecoveryPolicy { step_timeout: Duration::from_millis(80), max_retries: 2, backoff: 2.0 }
}

/// Crash worker 2 at step 2, rejoin it at step 5, join worker 3 at step 7,
/// retire worker 0 at step 9, corrupt one of worker 1's messages. All
/// churn sits below step 10 so trailing rounds are pure steady state.
fn churn_faults() -> FaultPlan {
    FaultPlan::new(11).with_crash(2, 2).with_corrupt(1, 3)
}

fn churn_plan() -> MembershipPlan {
    MembershipPlan::none().with_join(2, 5).with_join(3, 7).with_leave(0, 9)
}

#[test]
fn churned_run_completes_its_schedule_and_stays_allocation_free() {
    let _guard = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    workspace::set_enabled(true);

    // Built once at full length and sliced per run: data generation itself
    // draws pool buffers, so the two runs must share one materialization.
    let data = batches(13);
    let run = |n_steps: usize| -> (f64, Vec<MemberEventKind>, usize) {
        workspace::clear_thread_arena();
        probe::reset();
        probe::configure(probe::ProbeConfig::in_memory());
        let opts = RunOptions {
            faults: churn_faults(),
            membership: churn_plan(),
            recovery: recovery(),
            ..RunOptions::default()
        };
        let mut comp = NoCompression::new();
        let out =
            train_data_parallel_with(|_| model(40), &data[..n_steps], &mut comp, &cfg(), &opts)
                .expect("churned run");
        let misses = probe::counter_value("alloc.pool_misses").unwrap_or(0.0);
        probe::reset();
        let kinds = out.membership.iter().map(|e| e.kind).collect();
        (misses, kinds, out.faults.survivors)
    };

    let (warm, kinds, survivors) = run(12);
    assert_eq!(
        kinds,
        vec![
            MemberEventKind::Crash,
            MemberEventKind::Rejoin,
            MemberEventKind::Join,
            MemberEventKind::Leave,
        ],
        "the full churn schedule must execute in order"
    );
    assert_eq!(survivors, 3, "3 initial − crash + rejoin + join − leave");

    // Zero steady-state allocation: one extra post-churn round (the churn
    // sits at identical absolute steps in both runs) adds no pool misses.
    let (extended, _, _) = run(13);
    assert!(warm > 0.0, "warm-up must have allocated through the pool");
    assert_eq!(
        extended,
        warm,
        "post-churn round allocated fresh buffers: {} new pool misses",
        extended - warm
    );
    workspace::set_enabled(false);
}

#[test]
fn churned_run_replays_bitwise_from_its_checkpoint() {
    let _guard = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    let dir = std::env::temp_dir().join(format!("puffer_soak_inv_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let data = batches(12);
    let opts = RunOptions {
        faults: churn_faults(),
        membership: churn_plan(),
        recovery: recovery(),
        checkpoint: CheckpointPolicy::every(6, &dir),
        ..RunOptions::default()
    };
    let mut c1 = NoCompression::new();
    let main = train_data_parallel_with(|_| model(40), &data, &mut c1, &cfg(), &opts)
        .expect("churned run");
    let ck_path = main
        .checkpoints
        .iter()
        .find(|p| p.file_name().is_some_and(|n| n.to_string_lossy() == "dist_ckpt_000006.puft"))
        .expect("mid-run checkpoint");
    let ck = DistCheckpoint::load(ck_path).unwrap();
    // Taken after the crash (2) and rejoin (5): the member set carries the
    // rejoined worker and the epoch sequence so far.
    assert_eq!(ck.members, vec![0, 1, 2]);
    assert_eq!(ck.epoch, 2);

    let replay_opts = RunOptions {
        faults: churn_faults(),
        membership: churn_plan(),
        recovery: recovery(),
        resume: Some(ck),
        ..RunOptions::default()
    };
    let mut c2 = NoCompression::new();
    let replay = train_data_parallel_with(|_| model(40), &data, &mut c2, &cfg(), &replay_opts)
        .expect("replay run");

    assert_eq!(
        replay.final_params, main.final_params,
        "checkpoint-resume replay of the same churn schedule must be bitwise identical"
    );
    assert_eq!(replay.faults.survivors, main.faults.survivors);
    assert_eq!(replay.final_epoch, main.final_epoch);
    assert_eq!(replay.step_losses, &main.step_losses[6..], "replayed losses must match");
    let _ = std::fs::remove_dir_all(&dir);
}
