//! Model checkpointing: export and restore the trainable state of any
//! [`Layer`] (PyTorch `state_dict` semantics, positional matching).
//!
//! Because layer parameter lists have a stable order (a [`Layer`] contract),
//! checkpoints are matched **positionally** with shape validation; names are
//! stored for human inspection and debugging.

use crate::layer::Layer;
use crate::{NnError, Result};
use puffer_tensor::io::{load_tensors, save_tensors};
use puffer_tensor::Tensor;
use std::path::Path;

/// Extracts the named parameter values of a model, followed by its
/// non-trainable buffers (BatchNorm running statistics).
pub fn state_dict<M: Layer + ?Sized>(model: &M) -> Vec<(String, Tensor)> {
    let mut entries: Vec<(String, Tensor)> = model
        .params()
        .iter()
        .enumerate()
        .map(|(i, p)| (format!("{i:04}.{}", p.name), p.value.clone()))
        .collect();
    entries.extend(
        model.buffers().into_iter().enumerate().map(|(i, b)| (format!("buffer.{i:04}"), b)),
    );
    entries
}

/// Restores parameter values and buffers into a model, positionally, with
/// shape checks.
///
/// # Errors
///
/// Returns [`NnError::BadConfig`] on entry-count or shape mismatch (the
/// checkpoint came from a different architecture).
pub fn load_state_dict<M: Layer + ?Sized>(
    model: &mut M,
    entries: &[(String, Tensor)],
) -> Result<()> {
    let n_buffers = model.buffers().len();
    let n_params = model.params().len();
    if n_params + n_buffers != entries.len() {
        return Err(NnError::BadConfig {
            layer: "checkpoint",
            reason: format!(
                "checkpoint has {} entries, model has {n_params} parameters + {n_buffers} buffers",
                entries.len()
            ),
        });
    }
    let (param_entries, buffer_entries) = entries.split_at(n_params);
    {
        let mut params = model.params_mut();
        for (p, (name, value)) in params.iter_mut().zip(param_entries) {
            if p.value.shape() != value.shape() {
                return Err(NnError::BadConfig {
                    layer: "checkpoint",
                    reason: format!(
                        "shape mismatch at `{name}`: checkpoint {:?}, model {:?}",
                        value.shape(),
                        p.value.shape()
                    ),
                });
            }
        }
        for (p, (_, value)) in params.iter_mut().zip(param_entries) {
            p.value = value.clone();
        }
    }
    let buffers: Vec<Tensor> = buffer_entries.iter().map(|(_, t)| t.clone()).collect();
    model.load_buffers(&buffers);
    Ok(())
}

/// Saves a model's state to a `.puft` file.
///
/// # Errors
///
/// Returns [`NnError::BadConfig`] wrapping any I/O failure.
pub fn save<M: Layer + ?Sized, P: AsRef<Path>>(model: &M, path: P) -> Result<()> {
    let owned = state_dict(model);
    let refs: Vec<(String, &Tensor)> = owned.iter().map(|(n, t)| (n.clone(), t)).collect();
    save_tensors(path, &refs)
        .map_err(|e| NnError::BadConfig { layer: "checkpoint", reason: format!("io error: {e}") })
}

/// Loads a model's state from a `.puft` file.
///
/// # Errors
///
/// Returns [`NnError::BadConfig`] on I/O failure or architecture mismatch.
pub fn load<M: Layer + ?Sized, P: AsRef<Path>>(model: &mut M, path: P) -> Result<()> {
    let entries = load_tensors(path).map_err(|e| NnError::BadConfig {
        layer: "checkpoint",
        reason: format!("io error: {e}"),
    })?;
    load_state_dict(model, &entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Relu;
    use crate::layer::{Mode, Sequential};
    use crate::linear::Linear;

    fn mlp(seed: u64) -> Sequential {
        Sequential::new(vec![
            Box::new(Linear::new(3, 5, true, seed).unwrap()),
            Box::new(Relu::new()),
            Box::new(Linear::new(5, 2, true, seed + 1).unwrap()),
        ])
    }

    #[test]
    fn state_dict_round_trip() {
        let a = mlp(1);
        let mut b = mlp(2);
        let x = Tensor::randn(&[2, 3], 1.0, 3);
        let mut a = a;
        let ya = a.forward(&x, Mode::Eval);
        assert_ne!(ya, b.forward(&x, Mode::Eval));
        load_state_dict(&mut b, &state_dict(&a)).unwrap();
        assert_eq!(ya, b.forward(&x, Mode::Eval));
    }

    #[test]
    fn file_round_trip() {
        let mut a = mlp(4);
        let path = std::env::temp_dir().join("puffer_ckpt_test.puft");
        save(&a, &path).unwrap();
        let mut b = mlp(9);
        load(&mut b, &path).unwrap();
        let x = Tensor::randn(&[1, 3], 1.0, 5);
        assert_eq!(a.forward(&x, Mode::Eval), b.forward(&x, Mode::Eval));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn architecture_mismatch_rejected() {
        let a = mlp(1);
        let mut small = Sequential::new(vec![Box::new(Linear::new(3, 5, true, 1).unwrap())]);
        let err = load_state_dict(&mut small, &state_dict(&a)).unwrap_err();
        assert!(err.to_string().contains("entries"));

        let mut wrong_shape = Sequential::new(vec![
            Box::new(Linear::new(3, 4, true, 1).unwrap()),
            Box::new(Relu::new()),
            Box::new(Linear::new(4, 2, true, 2).unwrap()),
        ]);
        let err = load_state_dict(&mut wrong_shape, &state_dict(&a)).unwrap_err();
        assert!(err.to_string().contains("shape mismatch"));
    }

    #[test]
    fn partial_failure_does_not_corrupt() {
        // Shape validation happens before any write: a failed load leaves
        // the model untouched.
        let a = mlp(1);
        let mut b = Sequential::new(vec![
            Box::new(Linear::new(3, 4, true, 7).unwrap()),
            Box::new(Relu::new()),
            Box::new(Linear::new(4, 2, true, 8).unwrap()),
        ]);
        let before = state_dict(&b);
        let _ = load_state_dict(&mut b, &state_dict(&a));
        assert_eq!(state_dict(&b), before);
    }
}
