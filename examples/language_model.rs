//! Low-rank LSTM language modeling (the paper's WikiText-2 experiment at
//! example scale): train a tied-embedding 2-layer LSTM, factorize its gate
//! matrices with Pufferfish's warm-start, and compare perplexities.
//!
//! ```sh
//! cargo run --release --example language_model
//! ```

use pufferfish_repro::core::lm::{train_lm, LmTrainConfig};
use pufferfish_repro::data::text::{TextCorpus, TextCorpusConfig};
use pufferfish_repro::models::lstm_lm::{LstmLm, LstmLmConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A Markov-chain corpus: predictable enough that a good LM gets far
    // below the uniform perplexity (= vocab size).
    let corpus = TextCorpus::generate(TextCorpusConfig::small(11));
    let vocab = corpus.vocab();
    println!(
        "corpus: vocab {vocab}, {} train tokens (uniform ppl = {vocab})",
        corpus.train_stream().len()
    );

    let epochs = 6;
    let rank = 16; // hidden/4, the paper's ratio

    // Vanilla LSTM for the whole budget.
    let model = LstmLm::new(LstmLmConfig::small(vocab, 64, 1))?;
    let vanilla_params = model.param_count();
    let cfg = LmTrainConfig::small(epochs, epochs, rank);
    let vanilla = train_lm(model, &corpus, &cfg)?;

    // Pufferfish: 2 warm-up epochs, then per-gate SVD factorization.
    let model = LstmLm::new(LstmLmConfig::small(vocab, 64, 1))?;
    let cfg = LmTrainConfig::small(epochs, 2, rank);
    let puffer = train_lm(model, &corpus, &cfg)?;

    println!(
        "\nvanilla LSTM:    {:>8} params, val ppl {:.2}, test ppl {:.2}",
        vanilla_params,
        vanilla.report.final_perplexity(),
        vanilla.test_perplexity
    );
    println!(
        "pufferfish LSTM: {:>8} params, val ppl {:.2}, test ppl {:.2}  (switched at epoch {:?})",
        puffer.report.hybrid_params,
        puffer.report.final_perplexity(),
        puffer.test_perplexity,
        puffer.report.switch_epoch,
    );
    println!("\nthe paper's full-scale counterpart: 85,962,278 -> 67,962,278 params with");
    println!("test perplexity 88.16 vs 88.72 (Table 2) — factorization at near-zero ppl cost.");
    Ok(())
}
