//! Corpus-level BLEU (Papineni et al. 2002), the metric of the paper's
//! Table 3 translation experiment.

use std::collections::BTreeMap;

/// Corpus BLEU with n-gram precision up to `max_n` (standard BLEU-4 uses
/// `max_n = 4`) and the brevity penalty, with +1 smoothing on the
/// higher-order precisions (Lin & Och 2004) so short corpora do not
/// degenerate to zero.
///
/// `hypotheses[i]` is scored against `references[i]`.
///
/// # Panics
///
/// Panics if the two corpora have different lengths or `max_n` is zero.
pub fn corpus_bleu(hypotheses: &[Vec<usize>], references: &[Vec<usize>], max_n: usize) -> f64 {
    assert_eq!(hypotheses.len(), references.len(), "corpus size mismatch");
    assert!(max_n > 0, "max_n must be nonzero");
    if hypotheses.is_empty() {
        return 0.0;
    }
    let mut hyp_len = 0usize;
    let mut ref_len = 0usize;
    let mut matches = vec![0usize; max_n];
    let mut totals = vec![0usize; max_n];
    for (hyp, rf) in hypotheses.iter().zip(references) {
        hyp_len += hyp.len();
        ref_len += rf.len();
        for n in 1..=max_n {
            let hyp_counts = ngram_counts(hyp, n);
            let ref_counts = ngram_counts(rf, n);
            for (gram, &c) in &hyp_counts {
                let clipped = c.min(*ref_counts.get(gram).unwrap_or(&0));
                matches[n - 1] += clipped;
            }
            totals[n - 1] += hyp.len().saturating_sub(n - 1);
        }
    }
    let mut log_prec_sum = 0.0f64;
    for n in 0..max_n {
        // +1 smoothing above unigrams.
        let (m, t) = if n == 0 {
            (matches[0] as f64, totals[0] as f64)
        } else {
            (matches[n] as f64 + 1.0, totals[n] as f64 + 1.0)
        };
        if m == 0.0 || t == 0.0 {
            return 0.0;
        }
        log_prec_sum += (m / t).ln();
    }
    let geo_mean = (log_prec_sum / max_n as f64).exp();
    let bp = if hyp_len >= ref_len || hyp_len == 0 {
        1.0
    } else {
        (1.0 - ref_len as f64 / hyp_len as f64).exp()
    };
    bp * geo_mean
}

/// BLEU-4 as a percentage, the convention used in the paper's Table 3.
pub fn bleu4_percent(hypotheses: &[Vec<usize>], references: &[Vec<usize>]) -> f64 {
    corpus_bleu(hypotheses, references, 4) * 100.0
}

// BTreeMap so iteration order (and thus any float accumulation driven by
// it) is a function of the data alone, not the hasher.
fn ngram_counts(seq: &[usize], n: usize) -> BTreeMap<&[usize], usize> {
    let mut map = BTreeMap::new();
    if seq.len() >= n {
        for gram in seq.windows(n) {
            *map.entry(gram).or_insert(0) += 1;
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_match_is_one() {
        let c = vec![vec![1, 2, 3, 4, 5], vec![6, 7, 8, 9]];
        let b = corpus_bleu(&c, &c, 4);
        assert!((b - 1.0).abs() < 1e-9, "bleu {b}");
    }

    #[test]
    fn disjoint_is_zero() {
        let hyp = vec![vec![1, 2, 3, 4]];
        let rf = vec![vec![5, 6, 7, 8]];
        assert_eq!(corpus_bleu(&hyp, &rf, 4), 0.0);
    }

    #[test]
    fn partial_overlap_between_zero_and_one() {
        let hyp = vec![vec![1, 2, 3, 9, 9, 9]];
        let rf = vec![vec![1, 2, 3, 4, 5, 6]];
        let b = corpus_bleu(&hyp, &rf, 4);
        assert!(b > 0.0 && b < 1.0, "bleu {b}");
    }

    #[test]
    fn brevity_penalty_punishes_short_hypotheses() {
        let rf = vec![vec![1, 2, 3, 4, 5, 6, 7, 8]];
        let long = vec![vec![1, 2, 3, 4, 5, 6, 7, 8]];
        let short = vec![vec![1, 2, 3, 4]];
        assert!(corpus_bleu(&short, &rf, 2) < corpus_bleu(&long, &rf, 2));
    }

    #[test]
    fn clipping_prevents_repetition_gaming() {
        // "the the the the" trick: repeated matched unigrams are clipped.
        let hyp = vec![vec![1, 1, 1, 1]];
        let rf = vec![vec![1, 2, 3, 4]];
        let b = corpus_bleu(&hyp, &rf, 1);
        assert!((b - 0.25).abs() < 1e-9, "bleu {b}");
    }

    #[test]
    fn empty_corpus() {
        assert_eq!(corpus_bleu(&[], &[], 4), 0.0);
    }

    #[test]
    fn percent_wrapper() {
        let c = vec![vec![1, 2, 3, 4]];
        assert!((bleu4_percent(&c, &c) - 100.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "corpus size")]
    fn mismatched_sizes_panic() {
        let _ = corpus_bleu(&[vec![1]], &[], 4);
    }

    #[test]
    fn ngram_iteration_order_is_pinned() {
        // The counts map drives a float log-sum in corpus_bleu; its
        // iteration order must be a property of the data, not the hasher.
        let seq = [3usize, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5];
        let grams: Vec<&[usize]> = ngram_counts(&seq, 2).into_keys().collect();
        let mut sorted = grams.clone();
        sorted.sort();
        assert_eq!(grams, sorted, "ngram iteration must follow key order");

        // And the corpus score is bitwise-stable across calls.
        let hyp = vec![vec![3, 1, 4, 1, 5], vec![9, 2, 6, 5, 3]];
        let rf = vec![vec![3, 1, 4, 2, 5], vec![9, 2, 6, 3, 5]];
        let first = corpus_bleu(&hyp, &rf, 4);
        for _ in 0..8 {
            assert_eq!(first.to_bits(), corpus_bleu(&hyp, &rf, 4).to_bits());
        }
    }
}
