//! Quickstart: factorize and train a small CNN with Pufferfish.
//!
//! Runs Algorithm 1 end-to-end on a synthetic CIFAR-like task:
//! a few epochs of full-rank warm-up, one truncated-SVD factorization into
//! the hybrid low-rank architecture, and consecutive low-rank training —
//! then prints the compression and accuracy next to a vanilla baseline.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pufferfish_repro::core::trainer::{train, ModelPlan, TrainConfig};
use pufferfish_repro::data::images::{ImageDataset, ImageDatasetConfig};
use pufferfish_repro::models::vgg::{Vgg, VggConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A synthetic 10-class image task (deterministic in the seed).
    let data = ImageDataset::generate(ImageDatasetConfig::cifar_like(1024, 256, 7));

    // 2. A width-scaled VGG-11 (the paper's Figure-2 CIFAR model).
    let vanilla = Vgg::new(VggConfig::vgg11(0.125, 10, 1))?;

    // 3. Vanilla baseline: plain SGD for the full budget.
    let epochs = 10;
    let cfg = TrainConfig::cifar_small(epochs, 0);
    let base = train(Vgg::new(VggConfig::vgg11(0.125, 10, 1))?, ModelPlan::None, &data, &cfg)?;

    // 4. Pufferfish (Algorithm 1): warm up 3 epochs full-rank, factorize
    //    layers 4.. at rank ratio 0.25 via truncated SVD, keep training.
    let cfg = TrainConfig::cifar_small(epochs, 3);
    let plan = ModelPlan::VggHybrid { first_low_rank: 4, rank_ratio: 0.25 };
    let puffer = train(vanilla, plan, &data, &cfg)?;

    println!(
        "vanilla:    {:>9} params, final acc {:.3}",
        base.report.vanilla_params,
        base.report.final_test_accuracy()
    );
    println!(
        "pufferfish: {:>9} params, final acc {:.3}  (switched at epoch {:?}, SVD took {:?})",
        puffer.report.hybrid_params,
        puffer.report.final_test_accuracy(),
        puffer.report.switch_epoch,
        puffer.report.svd_time,
    );
    println!("compression: {:.2}x fewer trainable parameters — and therefore {:.2}x less gradient traffic per step.",
        puffer.report.compression_ratio(), puffer.report.compression_ratio());
    Ok(())
}
