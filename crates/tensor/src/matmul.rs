//! Cache-blocked dense matrix multiplication.
//!
//! Two execution profiles mirror the paper's two cuDNN settings (Table 6 vs
//! Table 20): [`MatmulProfile::Reproducible`] uses a straightforward ikj
//! loop, while [`MatmulProfile::Optimized`] uses cache blocking with an
//! unrolled inner kernel. Both produce identical results up to f32
//! associativity within a block; the split exists so the mini-benchmarks can
//! report speedups under both regimes like the paper does.

use crate::{Result, Tensor, TensorError};

/// Execution profile for [`matmul_with_profile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[repr(u8)]
pub enum MatmulProfile {
    /// Simple ikj-ordered triple loop; deterministic and branch-free.
    /// Stands in for the paper's "reproducibility optimized cuDNN" setting.
    Reproducible = 0,
    /// Cache-blocked kernel; stands in for "speed optimized cuDNN".
    #[default]
    Optimized = 1,
}

const BLOCK: usize = 64;

use std::sync::atomic::{AtomicU8, Ordering};

static DEFAULT_PROFILE: AtomicU8 = AtomicU8::new(1);

/// Sets the process-wide default profile used by [`matmul`] (and therefore
/// by every layer in `puffer-nn`). Mirrors toggling
/// `cudnn.benchmark`/`cudnn.deterministic` in the paper's Table 6 vs
/// Table 20 runtime benchmarks.
pub fn set_default_profile(profile: MatmulProfile) {
    DEFAULT_PROFILE.store(profile as u8, Ordering::Relaxed);
}

/// The current process-wide default profile.
pub fn default_profile() -> MatmulProfile {
    match DEFAULT_PROFILE.load(Ordering::Relaxed) {
        0 => MatmulProfile::Reproducible,
        _ => MatmulProfile::Optimized,
    }
}

/// `C = A · B` for 2-D tensors.
///
/// # Errors
///
/// Returns [`TensorError::WrongDimensions`] if either input is not 2-D and
/// [`TensorError::ShapeMismatch`] if the inner dimensions disagree.
///
/// # Example
///
/// ```
/// use puffer_tensor::{Tensor, matmul::matmul};
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let i = Tensor::eye(2);
/// assert_eq!(matmul(&a, &i)?, a);
/// # Ok::<(), puffer_tensor::TensorError>(())
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    matmul_with_profile(a, b, default_profile())
}

/// `C = A · B` under an explicit execution [`MatmulProfile`].
///
/// # Errors
///
/// Same as [`matmul`].
pub fn matmul_with_profile(a: &Tensor, b: &Tensor, profile: MatmulProfile) -> Result<Tensor> {
    check_2d(a, "matmul")?;
    check_2d(b, "matmul")?;
    let (m, ka) = (a.shape()[0], a.shape()[1]);
    let (kb, n) = (b.shape()[0], b.shape()[1]);
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            expected: vec![m, ka],
            got: vec![kb, n],
            op: "matmul",
        });
    }
    let mut c = Tensor::zeros(&[m, n]);
    match profile {
        MatmulProfile::Reproducible => {
            mm_ikj(a.as_slice(), b.as_slice(), c.as_mut_slice(), m, ka, n)
        }
        MatmulProfile::Optimized => {
            mm_blocked(a.as_slice(), b.as_slice(), c.as_mut_slice(), m, ka, n)
        }
    }
    Ok(c)
}

/// `C = Aᵀ · B` without materializing the transpose.
///
/// # Errors
///
/// Returns [`TensorError::WrongDimensions`] / [`TensorError::ShapeMismatch`]
/// on rank or inner-dimension mismatch (`A: k×m`, `B: k×n`).
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    check_2d(a, "matmul_tn")?;
    check_2d(b, "matmul_tn")?;
    let (k, m) = (a.shape()[0], a.shape()[1]);
    let (kb, n) = (b.shape()[0], b.shape()[1]);
    if k != kb {
        return Err(TensorError::ShapeMismatch {
            expected: vec![k, m],
            got: vec![kb, n],
            op: "matmul_tn",
        });
    }
    let (av, bv) = (a.as_slice(), b.as_slice());
    let mut c = Tensor::zeros(&[m, n]);
    let cv = c.as_mut_slice();
    // Row p of A contributes outer-product row to every C row: ikj order over k.
    for p in 0..k {
        let brow = &bv[p * n..(p + 1) * n];
        let arow = &av[p * m..(p + 1) * m];
        for i in 0..m {
            let aip = arow[i];
            if aip == 0.0 {
                continue;
            }
            let crow = &mut cv[i * n..(i + 1) * n];
            for (cj, bj) in crow.iter_mut().zip(brow) {
                *cj += aip * bj;
            }
        }
    }
    Ok(c)
}

/// `C = A · Bᵀ` without materializing the transpose.
///
/// # Errors
///
/// Returns [`TensorError::WrongDimensions`] / [`TensorError::ShapeMismatch`]
/// on rank or inner-dimension mismatch (`A: m×k`, `B: n×k`).
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    check_2d(a, "matmul_nt")?;
    check_2d(b, "matmul_nt")?;
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (n, kb) = (b.shape()[0], b.shape()[1]);
    if k != kb {
        return Err(TensorError::ShapeMismatch {
            expected: vec![m, k],
            got: vec![n, kb],
            op: "matmul_nt",
        });
    }
    let (av, bv) = (a.as_slice(), b.as_slice());
    let mut c = Tensor::zeros(&[m, n]);
    let cv = c.as_mut_slice();
    for i in 0..m {
        let arow = &av[i * k..(i + 1) * k];
        let crow = &mut cv[i * n..(i + 1) * n];
        for j in 0..n {
            let brow = &bv[j * k..(j + 1) * k];
            let mut acc = 0.0;
            for (x, y) in arow.iter().zip(brow) {
                acc += x * y;
            }
            crow[j] = acc;
        }
    }
    Ok(c)
}

/// Matrix–vector product `y = A · x` (`A: m×k`, `x: k`).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `x.len() != k`.
pub fn matvec(a: &Tensor, x: &Tensor) -> Result<Tensor> {
    check_2d(a, "matvec")?;
    let (m, k) = (a.shape()[0], a.shape()[1]);
    if x.len() != k {
        return Err(TensorError::ShapeMismatch {
            expected: vec![k],
            got: x.shape().to_vec(),
            op: "matvec",
        });
    }
    let (av, xv) = (a.as_slice(), x.as_slice());
    let mut y = Tensor::zeros(&[m]);
    for (i, yo) in y.as_mut_slice().iter_mut().enumerate() {
        let row = &av[i * k..(i + 1) * k];
        *yo = row.iter().zip(xv).map(|(a, b)| a * b).sum();
    }
    Ok(y)
}

fn mm_ikj(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        for (p, &aip) in arow.iter().enumerate() {
            if aip == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (cj, bj) in crow.iter_mut().zip(brow) {
                *cj += aip * bj;
            }
        }
    }
}

fn mm_blocked(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for i0 in (0..m).step_by(BLOCK) {
        let imax = (i0 + BLOCK).min(m);
        for p0 in (0..k).step_by(BLOCK) {
            let pmax = (p0 + BLOCK).min(k);
            for j0 in (0..n).step_by(BLOCK) {
                let jmax = (j0 + BLOCK).min(n);
                for i in i0..imax {
                    let arow = &a[i * k..(i + 1) * k];
                    let crow = &mut c[i * n + j0..i * n + jmax];
                    for p in p0..pmax {
                        let aip = arow[p];
                        if aip == 0.0 {
                            continue;
                        }
                        let brow = &b[p * n + j0..p * n + jmax];
                        for (cj, bj) in crow.iter_mut().zip(brow) {
                            *cj += aip * bj;
                        }
                    }
                }
            }
        }
    }
}

fn check_2d(t: &Tensor, op: &'static str) -> Result<()> {
    if t.ndim() != 2 {
        return Err(TensorError::WrongDimensions { expected: 2, got: t.ndim(), op });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        let mut c = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for p in 0..k {
                    s += a.at2(i, p) * b.at2(p, j);
                }
                *c.at2_mut(i, j) = s;
            }
        }
        c
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_matches_naive_both_profiles() {
        let a = Tensor::randn(&[37, 53], 1.0, 1);
        let b = Tensor::randn(&[53, 29], 1.0, 2);
        let reference = naive(&a, &b);
        for profile in [MatmulProfile::Reproducible, MatmulProfile::Optimized] {
            let c = matmul_with_profile(&a, &b, profile).unwrap();
            assert_close(&c, &reference, 1e-3);
        }
    }

    #[test]
    fn identity_is_neutral() {
        let a = Tensor::randn(&[5, 5], 1.0, 3);
        let i = Tensor::eye(5);
        assert_close(&matmul(&a, &i).unwrap(), &a, 0.0);
        assert_close(&matmul(&i, &a).unwrap(), &a, 0.0);
    }

    #[test]
    fn transposed_variants_match() {
        let a = Tensor::randn(&[11, 7], 1.0, 4);
        let b = Tensor::randn(&[11, 13], 1.0, 5);
        let tn = matmul_tn(&a, &b).unwrap();
        let explicit = matmul(&a.transpose(), &b).unwrap();
        assert_close(&tn, &explicit, 1e-4);

        let c = Tensor::randn(&[9, 7], 1.0, 6);
        let d = Tensor::randn(&[5, 7], 1.0, 7);
        let nt = matmul_nt(&c, &d).unwrap();
        let explicit = matmul(&c, &d.transpose()).unwrap();
        assert_close(&nt, &explicit, 1e-4);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Tensor::randn(&[6, 4], 1.0, 8);
        let x = Tensor::randn(&[4], 1.0, 9);
        let y = matvec(&a, &x).unwrap();
        let xm = x.reshape(&[4, 1]).unwrap();
        let ym = matmul(&a, &xm).unwrap();
        assert_close(&y, &ym.reshape(&[6]).unwrap(), 1e-5);
    }

    #[test]
    fn dimension_errors() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 5]);
        assert!(matmul(&a, &b).is_err());
        let v = Tensor::zeros(&[3]);
        assert!(matmul(&a, &v).is_err());
        assert!(matvec(&a, &Tensor::zeros(&[2])).is_err());
        assert!(matmul_tn(&a, &b).is_err());
        assert!(matmul_nt(&a, &b).is_err());
    }

    #[test]
    fn block_boundary_sizes() {
        // Sizes straddling the 64-wide block boundary.
        for &(m, k, n) in &[(64, 64, 64), (65, 63, 64), (1, 128, 1), (130, 2, 70)] {
            let a = Tensor::randn(&[m, k], 1.0, (m * k) as u64);
            let b = Tensor::randn(&[k, n], 1.0, (k * n + 1) as u64);
            assert_close(&matmul(&a, &b).unwrap(), &naive(&a, &b), 1e-2);
        }
    }
}
