//! Class-conditional synthetic image classification datasets.
//!
//! Each class is defined by a fixed random texture basis (a mixture of 2-D
//! sinusoids with class-specific frequencies and phases). A sample is the
//! class texture plus pixel noise and a random spatial shift, which makes
//! the task learnable but not trivially separable — a CNN must pick up the
//! spatial frequency content, giving non-degenerate learning curves whose
//! *shape* mirrors real image classification (the property Figures 2–3 of
//! the paper rely on).

use puffer_tensor::Tensor;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration of a synthetic image dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImageDatasetConfig {
    /// Number of classes.
    pub classes: usize,
    /// Channels (3 for both CIFAR-10 and ImageNet stand-ins).
    pub channels: usize,
    /// Square image side length.
    pub size: usize,
    /// Training examples.
    pub train: usize,
    /// Test examples.
    pub test: usize,
    /// Pixel noise standard deviation (higher = harder task).
    pub noise: f32,
    /// RNG seed.
    pub seed: u64,
}

impl ImageDatasetConfig {
    /// A small CIFAR-10-like task: 10 classes at `32×32×3`.
    pub fn cifar_like(train: usize, test: usize, seed: u64) -> Self {
        ImageDatasetConfig { classes: 10, channels: 3, size: 32, train, test, noise: 0.35, seed }
    }

    /// A reduced ImageNet-like task: more classes, larger images.
    pub fn imagenet_lite(train: usize, test: usize, seed: u64) -> Self {
        ImageDatasetConfig { classes: 20, channels: 3, size: 32, train, test, noise: 0.4, seed }
    }
}

/// A generated dataset: flat sample storage plus labels.
#[derive(Debug, Clone)]
pub struct ImageDataset {
    config: ImageDatasetConfig,
    train_images: Vec<Tensor>,
    train_labels: Vec<usize>,
    test_images: Vec<Tensor>,
    test_labels: Vec<usize>,
    mean: [f32; 3],
    std: [f32; 3],
}

impl ImageDataset {
    /// Generates the dataset deterministically from the config's seed.
    pub fn generate(config: ImageDatasetConfig) -> Self {
        let mut rng = SmallRng::seed_from_u64(config.seed);
        // Class prototypes: per class and channel, a sum of 3 sinusoids.
        let protos: Vec<Vec<(f32, f32, f32, f32)>> = (0..config.classes)
            .map(|_| {
                (0..config.channels * 3)
                    .map(|_| {
                        (
                            rng.gen_range(0.5..4.0),                   // fx
                            rng.gen_range(0.5..4.0),                   // fy
                            rng.gen_range(0.0..std::f32::consts::TAU), // phase
                            rng.gen_range(0.4..1.0),                   // amplitude
                        )
                    })
                    .collect()
            })
            .collect();

        let gen_split = |count: usize, rng: &mut SmallRng| {
            let mut images = Vec::with_capacity(count);
            let mut labels = Vec::with_capacity(count);
            for _ in 0..count {
                let class = rng.gen_range(0..config.classes);
                labels.push(class);
                images.push(render_sample(&config, &protos[class], rng));
            }
            (images, labels)
        };
        let (train_images, train_labels) = gen_split(config.train, &mut rng);
        let (test_images, test_labels) = gen_split(config.test, &mut rng);

        // Per-channel normalization statistics over the training split.
        let mut mean = [0.0f32; 3];
        let mut std = [1.0f32; 3];
        if !train_images.is_empty() {
            let per = config.size * config.size;
            for c in 0..config.channels.min(3) {
                let mut sum = 0.0f64;
                let mut sq = 0.0f64;
                let mut n = 0usize;
                for img in &train_images {
                    for &v in &img.as_slice()[c * per..(c + 1) * per] {
                        sum += v as f64;
                        sq += (v as f64) * (v as f64);
                        n += 1;
                    }
                }
                let m = sum / n as f64;
                mean[c] = m as f32;
                std[c] = ((sq / n as f64 - m * m).max(1e-6)).sqrt() as f32;
            }
        }
        ImageDataset { config, train_images, train_labels, test_images, test_labels, mean, std }
    }

    /// The dataset configuration.
    pub fn config(&self) -> &ImageDatasetConfig {
        &self.config
    }

    /// Number of training examples.
    pub fn train_len(&self) -> usize {
        self.train_images.len()
    }

    /// Number of test examples.
    pub fn test_len(&self) -> usize {
        self.test_images.len()
    }

    /// Per-channel normalization statistics `(mean, std)` computed on the
    /// training split (the analogue of the constants in appendix H).
    pub fn normalization(&self) -> ([f32; 3], [f32; 3]) {
        (self.mean, self.std)
    }

    /// Iterates over training batches in a seeded shuffled order, applying
    /// augmentation (pad-4 random crop + horizontal flip) and
    /// normalization. Yields `(images [N,C,H,W], labels)`.
    pub fn train_batches(&self, batch_size: usize, epoch_seed: u64) -> Vec<(Tensor, Vec<usize>)> {
        assert!(batch_size > 0, "batch size must be nonzero");
        let mut order: Vec<usize> = (0..self.train_images.len()).collect();
        let mut rng =
            SmallRng::seed_from_u64(self.config.seed ^ epoch_seed.wrapping_mul(0x9E37_79B9));
        // Fisher–Yates shuffle.
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        order
            .chunks(batch_size)
            .map(|chunk| {
                let imgs: Vec<Tensor> = chunk
                    .iter()
                    .map(|&i| {
                        let aug = augment(&self.train_images[i], &mut rng);
                        self.normalize(&aug)
                    })
                    .collect();
                let labels = chunk.iter().map(|&i| self.train_labels[i]).collect();
                (stack(&imgs), labels)
            })
            .collect()
    }

    /// Iterates over test batches (no augmentation, normalized).
    pub fn test_batches(&self, batch_size: usize) -> Vec<(Tensor, Vec<usize>)> {
        assert!(batch_size > 0, "batch size must be nonzero");
        (0..self.test_images.len())
            .collect::<Vec<_>>()
            .chunks(batch_size)
            .map(|chunk| {
                let imgs: Vec<Tensor> =
                    chunk.iter().map(|&i| self.normalize(&self.test_images[i])).collect();
                let labels = chunk.iter().map(|&i| self.test_labels[i]).collect();
                (stack(&imgs), labels)
            })
            .collect()
    }

    fn normalize(&self, img: &Tensor) -> Tensor {
        let per = self.config.size * self.config.size;
        let mut out = img.clone();
        for c in 0..self.config.channels.min(3) {
            let (m, s) = (self.mean[c], self.std[c]);
            for v in &mut out.as_mut_slice()[c * per..(c + 1) * per] {
                *v = (*v - m) / s;
            }
        }
        out
    }
}

fn render_sample(
    config: &ImageDatasetConfig,
    proto: &[(f32, f32, f32, f32)],
    rng: &mut SmallRng,
) -> Tensor {
    let n = config.size;
    let mut img = Tensor::zeros(&[config.channels, n, n]);
    let shift_x: f32 = rng.gen_range(-2.0..2.0);
    let shift_y: f32 = rng.gen_range(-2.0..2.0);
    for c in 0..config.channels {
        for y in 0..n {
            for x in 0..n {
                let (xf, yf) = ((x as f32 + shift_x) / n as f32, (y as f32 + shift_y) / n as f32);
                let mut v = 0.0;
                for k in 0..3 {
                    let (fx, fy, phase, amp) = proto[c * 3 + k];
                    v += amp * (std::f32::consts::TAU * (fx * xf + fy * yf) + phase).sin();
                }
                let noise: f32 = rng.gen_range(-1.0..1.0) * config.noise;
                img.as_mut_slice()[(c * n + y) * n + x] = v / 3.0 + noise;
            }
        }
    }
    img
}

/// Pad-4 random crop + horizontal flip, the appendix-H augmentation.
fn augment(img: &Tensor, rng: &mut SmallRng) -> Tensor {
    let s = img.shape();
    let (c, h, w) = (s[0], s[1], s[2]);
    const PAD: usize = 4;
    let dy = rng.gen_range(0..=2 * PAD);
    let dx = rng.gen_range(0..=2 * PAD);
    let flip = rng.gen_bool(0.5);
    let mut out = Tensor::zeros(&[c, h, w]);
    for ci in 0..c {
        for y in 0..h {
            let sy = (y + dy) as isize - PAD as isize;
            for x in 0..w {
                let sx_raw = if flip { w - 1 - x } else { x };
                let sx = (sx_raw + dx) as isize - PAD as isize;
                let v = if sy >= 0 && sy < h as isize && sx >= 0 && sx < w as isize {
                    img.as_slice()[(ci * h + sy as usize) * w + sx as usize]
                } else {
                    0.0
                };
                out.as_mut_slice()[(ci * h + y) * w + x] = v;
            }
        }
    }
    out
}

/// Stacks `[C,H,W]` samples into `[N,C,H,W]`.
fn stack(imgs: &[Tensor]) -> Tensor {
    assert!(!imgs.is_empty(), "cannot stack zero images");
    let s = imgs[0].shape();
    let mut shape = vec![imgs.len()];
    shape.extend_from_slice(s);
    let mut out = Tensor::zeros(&shape);
    let per = imgs[0].len();
    for (i, img) in imgs.iter().enumerate() {
        out.as_mut_slice()[i * per..(i + 1) * per].copy_from_slice(img.as_slice());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ImageDataset {
        ImageDataset::generate(ImageDatasetConfig {
            classes: 4,
            channels: 3,
            size: 8,
            train: 64,
            test: 32,
            noise: 0.2,
            seed: 1,
        })
    }

    #[test]
    fn deterministic_generation() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.train_images[0], b.train_images[0]);
        assert_eq!(a.train_labels, b.train_labels);
    }

    #[test]
    fn batch_shapes_and_coverage() {
        let d = tiny();
        let batches = d.train_batches(10, 0);
        let total: usize = batches.iter().map(|(_, l)| l.len()).sum();
        assert_eq!(total, 64);
        assert_eq!(batches[0].0.shape(), &[10, 3, 8, 8]);
        // Last batch is the remainder.
        assert_eq!(batches.last().unwrap().1.len(), 4);
    }

    #[test]
    fn different_epochs_shuffle_differently() {
        let d = tiny();
        let a: Vec<usize> = d.train_batches(64, 0)[0].1.clone();
        let b: Vec<usize> = d.train_batches(64, 1)[0].1.clone();
        assert_ne!(a, b);
    }

    #[test]
    fn classes_are_distinguishable() {
        // Mean inter-class distance must exceed intra-class distance:
        // otherwise nothing is learnable.
        let d = tiny();
        let mut by_class: Vec<Vec<&Tensor>> = vec![Vec::new(); 4];
        for (img, &lab) in d.train_images.iter().zip(&d.train_labels) {
            by_class[lab].push(img);
        }
        let dist = |a: &Tensor, b: &Tensor| -> f32 {
            a.as_slice().iter().zip(b.as_slice()).map(|(x, y)| (x - y) * (x - y)).sum::<f32>()
        };
        let intra = dist(by_class[0][0], by_class[0][1]);
        let inter = dist(by_class[0][0], by_class[1][0]);
        assert!(inter > intra, "inter {inter} <= intra {intra}");
    }

    #[test]
    fn test_batches_are_normalized() {
        let d = tiny();
        let (imgs, _) = &d.test_batches(32)[0];
        let mean = puffer_tensor::stats::mean(imgs);
        assert!(mean.abs() < 0.3, "mean {mean}");
    }

    #[test]
    fn labels_in_range() {
        let d = tiny();
        assert!(d.train_labels.iter().all(|&l| l < 4));
        assert!(d.test_labels.iter().all(|&l| l < 4));
    }

    #[test]
    fn presets() {
        let c = ImageDatasetConfig::cifar_like(10, 5, 2);
        assert_eq!((c.classes, c.size), (10, 32));
        let i = ImageDatasetConfig::imagenet_lite(10, 5, 2);
        assert!(i.classes > c.classes || i.size >= c.size);
    }
}
