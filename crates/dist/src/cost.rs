//! α–β communication cost models (Thakur, Rabenseifner & Gropp 2005).
//!
//! Ring allreduce on `p` nodes over an `n`-byte buffer:
//! `T = 2(p−1)·α + 2·((p−1)/p)·n·β` — the latency term the paper's
//! flat-buffer packing optimization targets (§4.1: "each allreduce call
//! introduces a network latency proportional to the product of the number
//! of compute nodes and average network latency").
//!
//! Allgather: `T = (p−1)·α + (p−1)·n·β` — per-node traffic grows with `p`,
//! which is why sign/quantization methods lose their wire savings at scale
//! (appendix F).

use crate::error::{DistError, DistResult};
use std::time::Duration;

/// A homogeneous cluster's network parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterProfile {
    /// Per-message latency α in seconds.
    pub alpha: f64,
    /// Per-byte transfer time β in seconds (1 / bandwidth).
    pub beta: f64,
    /// Number of nodes `p`.
    pub nodes: usize,
}

impl ClusterProfile {
    /// An EC2 p3.2xlarge-like profile: "up to 10 Gbps" (appendix K) and
    /// ~50 µs one-way latency.
    pub fn p3_like(nodes: usize) -> Self {
        ClusterProfile { alpha: 50e-6, beta: 8.0 / 10e9, nodes }
    }

    /// A zero-cost network (used to validate trainer equivalence).
    pub fn zero_cost(nodes: usize) -> Self {
        ClusterProfile { alpha: 0.0, beta: 0.0, nodes }
    }

    /// Ring-allreduce time for one `bytes`-sized buffer.
    pub fn allreduce(&self, bytes: usize) -> Duration {
        let p = self.nodes as f64;
        if self.nodes <= 1 {
            return Duration::ZERO;
        }
        let t = 2.0 * (p - 1.0) * self.alpha + 2.0 * ((p - 1.0) / p) * bytes as f64 * self.beta;
        Duration::from_secs_f64(t)
    }

    /// Allgather time when every node contributes `bytes`.
    pub fn allgather(&self, bytes: usize) -> Duration {
        let p = self.nodes as f64;
        if self.nodes <= 1 {
            return Duration::ZERO;
        }
        let t = (p - 1.0) * self.alpha + (p - 1.0) * bytes as f64 * self.beta;
        Duration::from_secs_f64(t)
    }

    /// Total time of `calls` independent allreduces of `bytes` each —
    /// models the unpacked per-layer synchronization the paper's packing
    /// optimization removes.
    pub fn allreduce_per_layer(&self, layer_bytes: &[usize]) -> Duration {
        layer_bytes.iter().map(|&b| self.allreduce(b)).sum()
    }
}

/// A **heterogeneous** cluster: per-node α/β plus seeded per-round jitter.
///
/// Real deployments are rarely the homogeneous testbed of
/// [`ClusterProfile`]: one node on a congested rack sees higher latency
/// and lower bandwidth, and a synchronous collective runs at the pace of
/// its **slowest** member. `HeteroProfile` models that, and — because it
/// is indexed by node id — it also prices the *surviving* member set after
/// the trainer drops a crashed worker (graceful degradation keeps an
/// accurate cost account).
#[derive(Debug, Clone, PartialEq)]
pub struct HeteroProfile {
    /// Per-node message latency α in seconds.
    pub alphas: Vec<f64>,
    /// Per-node per-byte transfer time β in seconds.
    pub betas: Vec<f64>,
    /// Fractional per-round communication jitter: each round's comm time
    /// is stretched by a seeded factor in `[1, 1 + comm_jitter]`.
    pub comm_jitter: f64,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl HeteroProfile {
    /// A heterogeneous profile where every node matches `base` (jitter
    /// off) — the identity extension of a homogeneous cluster.
    pub fn uniform(base: ClusterProfile) -> Self {
        HeteroProfile {
            alphas: vec![base.alpha; base.nodes],
            betas: vec![base.beta; base.nodes],
            comm_jitter: 0.0,
            seed: 0,
        }
    }

    /// Overrides one node's network parameters (a slow rack, a congested
    /// uplink).
    pub fn with_node(mut self, node: usize, alpha: f64, beta: f64) -> Self {
        if node < self.alphas.len() {
            self.alphas[node] = alpha;
            self.betas[node] = beta;
        }
        self
    }

    /// Enables seeded per-round comm jitter.
    pub fn with_jitter(mut self, jitter: f64, seed: u64) -> Self {
        self.comm_jitter = jitter.max(0.0);
        self.seed = seed;
        self
    }

    /// Number of configured nodes.
    pub fn nodes(&self) -> usize {
        self.alphas.len()
    }

    /// Checks that every id in `members` names a configured node.
    ///
    /// # Errors
    ///
    /// [`DistError::UnknownMember`] naming the first id outside the
    /// profile.
    pub fn validate_members(&self, members: &[usize]) -> DistResult<()> {
        let nodes = self.nodes();
        match members.iter().find(|&&n| n >= nodes) {
            Some(&worker) => Err(DistError::UnknownMember { worker, nodes }),
            None => Ok(()),
        }
    }

    /// The homogeneous profile equivalent to running a synchronous
    /// collective over the member subset `live`: the slowest member's α
    /// and β dominate, and `p` is the member count.
    ///
    /// # Errors
    ///
    /// [`DistError::UnknownMember`] if `live` references a node id the
    /// profile does not configure. (This used to clamp silently, pricing
    /// a phantom member at zero cost; an unknown id is a configuration
    /// bug and is now rejected.)
    pub fn effective(&self, live: &[usize]) -> DistResult<ClusterProfile> {
        self.validate_members(live)?;
        let mut alpha = 0.0f64;
        let mut beta = 0.0f64;
        for &n in live {
            alpha = alpha.max(self.alphas[n]); // lint:allow(dist-panic-reachability) — validate_members above rejects out-of-range ids
            beta = beta.max(self.betas[n]);
        }
        Ok(ClusterProfile { alpha, beta, nodes: live.len() })
    }

    /// Deterministic per-round jitter factor in `[1, 1 + comm_jitter]`.
    pub fn jitter_factor(&self, round: u64) -> f64 {
        if self.comm_jitter <= 0.0 {
            return 1.0;
        }
        1.0 + self.comm_jitter
            * crate::fault::unit_in_01(self.seed ^ round.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_is_free() {
        let c = ClusterProfile::p3_like(1);
        assert_eq!(c.allreduce(1 << 20), Duration::ZERO);
        assert_eq!(c.allgather(1 << 20), Duration::ZERO);
    }

    #[test]
    fn allreduce_bandwidth_term_saturates_with_nodes() {
        // (p−1)/p → 1: doubling nodes must not double allreduce time for
        // large buffers.
        let bytes = 100 << 20;
        let t2 = ClusterProfile::p3_like(2).allreduce(bytes).as_secs_f64();
        let t16 = ClusterProfile::p3_like(16).allreduce(bytes).as_secs_f64();
        assert!(t16 < t2 * 2.0, "t2 {t2} t16 {t16}");
    }

    #[test]
    fn allgather_grows_linearly_with_nodes() {
        let bytes = 10 << 20;
        let t4 = ClusterProfile::p3_like(4).allgather(bytes).as_secs_f64();
        let t16 = ClusterProfile::p3_like(16).allgather(bytes).as_secs_f64();
        assert!(t16 > t4 * 3.0, "t4 {t4} t16 {t16}");
    }

    #[test]
    fn crossover_compressed_allgather_vs_raw_allreduce() {
        // At small node counts a 32× smaller allgather beats the raw
        // allreduce; at large counts the allreduce wins — the appendix-F
        // phenomenon.
        let raw = 100 << 20;
        let compressed = raw / 32;
        let few = ClusterProfile::p3_like(2);
        assert!(few.allgather(compressed) < few.allreduce(raw));
        let many = ClusterProfile::p3_like(128);
        assert!(many.allgather(compressed) > many.allreduce(raw));
    }

    #[test]
    fn packing_beats_per_layer_latency() {
        // 100 small layers synced individually pay 100× the latency term.
        let c = ClusterProfile::p3_like(16);
        let layers = vec![4 * 1024usize; 100];
        let total: usize = layers.iter().sum();
        let packed = c.allreduce(total);
        let unpacked = c.allreduce_per_layer(&layers);
        assert!(unpacked > packed * 5, "packed {packed:?} unpacked {unpacked:?}");
    }

    #[test]
    fn hetero_effective_is_slowest_member() {
        let base = ClusterProfile::p3_like(4);
        let h = HeteroProfile::uniform(base).with_node(2, 200e-6, 8.0 / 1e9);
        // With the slow node in the set, its α and the worst β dominate.
        let all = h.effective(&[0, 1, 2, 3]).unwrap();
        assert_eq!(all.nodes, 4);
        assert_eq!(all.alpha, 200e-6);
        assert_eq!(all.beta, 8.0 / 1e9);
        // Dropping the slow node restores the base parameters at p = 3.
        let survivors = h.effective(&[0, 1, 3]).unwrap();
        assert_eq!(survivors.nodes, 3);
        assert_eq!(survivors.alpha, base.alpha);
        assert_eq!(survivors.beta, base.beta);
    }

    #[test]
    fn unknown_member_is_a_typed_error_not_a_clamp() {
        let h = HeteroProfile::uniform(ClusterProfile::p3_like(4));
        assert!(h.validate_members(&[0, 3]).is_ok());
        let err = h.effective(&[0, 4]).unwrap_err();
        assert_eq!(err, crate::error::DistError::UnknownMember { worker: 4, nodes: 4 });
        assert_eq!(
            h.validate_members(&[7]),
            Err(crate::error::DistError::UnknownMember { worker: 7, nodes: 4 })
        );
    }

    #[test]
    fn hetero_uniform_matches_homogeneous_cost() {
        let base = ClusterProfile::p3_like(8);
        let h = HeteroProfile::uniform(base);
        let live: Vec<usize> = (0..8).collect();
        assert_eq!(h.effective(&live).unwrap().allreduce(1 << 20), base.allreduce(1 << 20));
        assert_eq!(h.jitter_factor(3), 1.0);
    }

    #[test]
    fn jitter_factor_is_bounded_and_deterministic() {
        let h = HeteroProfile::uniform(ClusterProfile::p3_like(4)).with_jitter(0.25, 9);
        for round in 0..100u64 {
            let f = h.jitter_factor(round);
            assert!((1.0..=1.25).contains(&f), "round {round}: {f}");
            assert_eq!(f, h.jitter_factor(round));
        }
        // Not constant across rounds.
        assert_ne!(h.jitter_factor(0), h.jitter_factor(1));
    }

    #[test]
    fn paper_scale_sanity() {
        // ResNet-50 gradients (~102 MB) on 16 nodes at 10 Gbps: an
        // allreduce takes on the order of a fifth of a second.
        let c = ClusterProfile::p3_like(16);
        let t = c.allreduce(25_557_032 * 4).as_secs_f64();
        assert!(t > 0.05 && t < 1.0, "t {t}");
    }
}
