//! Optimizers: SGD with momentum + weight decay, and Adam.
//!
//! Optimizers are stateful and keyed by parameter *position*: callers must
//! pass the same parameter list (same order, from the same model) on every
//! step — exactly what [`crate::Layer::params_mut`] guarantees. When
//! Pufferfish swaps the model architecture at the warm-up boundary
//! (Algorithm 1), a **fresh optimizer is created** for the hybrid network,
//! matching the reference implementation.

use crate::param::Param;
use puffer_probe as probe;
use puffer_tensor::Tensor;

/// Stochastic gradient descent with momentum and decoupled-from-BN weight
/// decay (ℓ2 applied only to parameters with
/// [`Param::apply_weight_decay`]).
///
/// Matches `torch.optim.SGD`: `v ← μ·v + (g + λ·w)`, `w ← w − η·v`.
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer. The paper's CNN recipe is
    /// `momentum = 0.9`, `weight_decay = 1e-4` (appendix I).
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        Sgd { lr, momentum, weight_decay, velocity: Vec::new() }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate (driven by a schedule).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// The momentum buffers, positionally matching the parameter list
    /// passed to [`Sgd::step`] (empty before the first step). Exposed so
    /// checkpointing can freeze optimizer state.
    pub fn velocity(&self) -> &[Tensor] {
        &self.velocity
    }

    /// Restores momentum buffers captured by [`Sgd::velocity`]. The next
    /// [`Sgd::step`] resets them if their count does not match the
    /// parameter list.
    pub fn set_velocity(&mut self, velocity: Vec<Tensor>) {
        self.velocity = velocity;
    }

    /// Applies one update step to `params` using their accumulated
    /// gradients. Gradients are **not** zeroed; call
    /// [`crate::Layer::zero_grad`] before the next accumulation.
    pub fn step(&mut self, params: &mut [&mut Param]) {
        let _sp = probe::span_with("nn", "optimizer_step", || {
            vec![("optim", "sgd".into()), ("params", params.len().into())]
        });
        if self.velocity.len() != params.len() {
            self.velocity = params.iter().map(|p| Tensor::zeros(p.value.shape())).collect();
        }
        for (p, v) in params.iter_mut().zip(&mut self.velocity) {
            debug_assert_eq!(v.shape(), p.value.shape(), "optimizer/param list mismatch");
            let decay = if p.apply_weight_decay { self.weight_decay } else { 0.0 };
            let vs = v.as_mut_slice();
            let ws = p.value.as_mut_slice();
            let gs = p.grad.as_slice();
            for i in 0..ws.len() {
                let g = gs[i] + decay * ws[i];
                vs[i] = self.momentum * vs[i] + g;
                ws[i] -= self.lr * vs[i];
            }
        }
    }
}

/// Adam (Kingma & Ba). The paper's Transformer recipe is
/// `lr = 1e-3, β = (0.9, 0.98), ε = 1e-8` (appendix I).
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates an Adam optimizer.
    pub fn new(lr: f32, beta1: f32, beta2: f32, eps: f32, weight_decay: f32) -> Self {
        Adam { lr, beta1, beta2, eps, weight_decay, t: 0, m: Vec::new(), v: Vec::new() }
    }

    /// Adam with the paper's Transformer hyper-parameters.
    pub fn transformer_default() -> Self {
        Self::new(1e-3, 0.9, 0.98, 1e-8, 0.0)
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate.
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies one update step (see [`Sgd::step`] for the contract).
    pub fn step(&mut self, params: &mut [&mut Param]) {
        let _sp = probe::span_with("nn", "optimizer_step", || {
            vec![("optim", "adam".into()), ("params", params.len().into())]
        });
        if self.m.len() != params.len() {
            self.m = params.iter().map(|p| Tensor::zeros(p.value.shape())).collect();
            self.v = params.iter().map(|p| Tensor::zeros(p.value.shape())).collect();
            self.t = 0;
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, m), v) in params.iter_mut().zip(&mut self.m).zip(&mut self.v) {
            let decay = if p.apply_weight_decay { self.weight_decay } else { 0.0 };
            let ms = m.as_mut_slice();
            let vs = v.as_mut_slice();
            let ws = p.value.as_mut_slice();
            let gs = p.grad.as_slice();
            for i in 0..ws.len() {
                let g = gs[i] + decay * ws[i];
                ms[i] = self.beta1 * ms[i] + (1.0 - self.beta1) * g;
                vs[i] = self.beta2 * vs[i] + (1.0 - self.beta2) * g * g;
                let mhat = ms[i] / bc1;
                let vhat = vs[i] / bc2;
                ws[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

/// Clips the global gradient norm to `max_norm` (the paper clips the LSTM
/// and Transformer gradients to 0.25, appendix I). Returns the pre-clip
/// norm.
pub fn clip_grad_norm(params: &mut [&mut Param], max_norm: f32) -> f32 {
    let total: f32 = params
        .iter()
        .map(|p| p.grad.as_slice().iter().map(|g| g * g).sum::<f32>())
        .sum::<f32>()
        .sqrt();
    if total > max_norm && total > 0.0 {
        let scale = max_norm / total;
        for p in params.iter_mut() {
            p.grad.scale(scale);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_param(x0: &[f32]) -> Param {
        Param::new("x", Tensor::from_vec(x0.to_vec(), &[x0.len()]).unwrap())
    }

    /// Sets grad = ∇(½‖x‖²) = x.
    fn set_quadratic_grad(p: &mut Param) {
        let g = p.value.clone();
        p.grad = g;
    }

    #[test]
    fn sgd_minimizes_quadratic() {
        let mut p = quadratic_param(&[5.0, -3.0]);
        let mut opt = Sgd::new(0.1, 0.0, 0.0);
        for _ in 0..100 {
            set_quadratic_grad(&mut p);
            opt.step(&mut [&mut p]);
        }
        assert!(puffer_tensor::stats::l2_norm(&p.value) < 1e-3);
    }

    #[test]
    fn sgd_momentum_matches_pytorch_semantics() {
        // One step with momentum: v = g, w -= lr*g. Second step: v = mu*g + g.
        let mut p = quadratic_param(&[1.0]);
        let mut opt = Sgd::new(0.1, 0.9, 0.0);
        p.grad = Tensor::from_vec(vec![1.0], &[1]).unwrap();
        opt.step(&mut [&mut p]);
        assert!((p.value.as_slice()[0] - 0.9).abs() < 1e-6);
        p.grad = Tensor::from_vec(vec![1.0], &[1]).unwrap();
        opt.step(&mut [&mut p]);
        // v2 = 0.9*1 + 1 = 1.9; w = 0.9 - 0.19 = 0.71.
        assert!((p.value.as_slice()[0] - 0.71).abs() < 1e-6);
    }

    #[test]
    fn weight_decay_respects_no_decay_flag() {
        let mut decayed = quadratic_param(&[1.0]);
        let mut exempt = Param::new_no_decay("b", Tensor::from_vec(vec![1.0], &[1]).unwrap());
        let mut opt = Sgd::new(0.1, 0.0, 0.5);
        // Zero gradients: only decay acts.
        opt.step(&mut [&mut decayed, &mut exempt]);
        assert!(decayed.value.as_slice()[0] < 1.0);
        assert_eq!(exempt.value.as_slice()[0], 1.0);
    }

    #[test]
    fn adam_minimizes_quadratic() {
        let mut p = quadratic_param(&[5.0, -3.0, 2.0]);
        let mut opt = Adam::new(0.1, 0.9, 0.999, 1e-8, 0.0);
        for _ in 0..300 {
            set_quadratic_grad(&mut p);
            opt.step(&mut [&mut p]);
        }
        assert!(puffer_tensor::stats::l2_norm(&p.value) < 1e-2);
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // Bias correction makes the first Adam step ≈ lr * sign(g).
        let mut p = quadratic_param(&[1.0]);
        let mut opt = Adam::new(0.01, 0.9, 0.999, 1e-8, 0.0);
        p.grad = Tensor::from_vec(vec![0.5], &[1]).unwrap();
        opt.step(&mut [&mut p]);
        assert!((p.value.as_slice()[0] - 0.99).abs() < 1e-4);
    }

    #[test]
    fn clip_grad_norm_scales() {
        let mut p = quadratic_param(&[3.0, 4.0]);
        p.grad = Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap();
        let pre = clip_grad_norm(&mut [&mut p], 1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        let post: f32 = p.grad.as_slice().iter().map(|g| g * g).sum::<f32>().sqrt();
        assert!((post - 1.0).abs() < 1e-5);
    }

    #[test]
    fn clip_noop_below_threshold() {
        let mut p = quadratic_param(&[0.1]);
        p.grad = Tensor::from_vec(vec![0.1], &[1]).unwrap();
        clip_grad_norm(&mut [&mut p], 1.0);
        assert_eq!(p.grad.as_slice()[0], 0.1);
    }
}
