//! Neural-network substrate for the Pufferfish reproduction.
//!
//! A compact deep-learning framework with explicit forward/backward passes
//! (no tape autograd): every layer caches what it needs during
//! [`Layer::forward`] and produces parameter gradients plus the input
//! gradient in [`Layer::backward`]. The framework covers everything the
//! paper trains: fully connected, convolutional (via im2col), batch/layer
//! normalization, LSTM, and Transformer attention blocks — each with a
//! **low-rank factorized twin** (`U·Vᵀ` for FC/LSTM/attention, a thin
//! `k×k` convolution followed by a `1×1` convolution for conv layers),
//! which is the architectural device Pufferfish is built on.
//!
//! # Threading
//!
//! Every layer bottoms out in `puffer-tensor`'s cache-blocked SIMD GEMM and
//! im2col kernels, which fan out to the process-wide worker pool
//! (re-exported here as [`threading`], since [`pool`] is pooling layers)
//! under the default `Optimized` matmul profile. Forward/backward results
//! are bitwise identical for every thread count; set
//! `PUFFER_NUM_THREADS=1` (or switch the profile to `Reproducible`) to
//! force strictly sequential execution.
//!
//! # Example
//!
//! ```
//! use puffer_nn::{Layer, Mode, Sequential};
//! use puffer_nn::linear::Linear;
//! use puffer_nn::activation::Relu;
//! use puffer_nn::loss::softmax_cross_entropy;
//! use puffer_tensor::Tensor;
//!
//! let mut net = Sequential::new(vec![
//!     Box::new(Linear::new(4, 16, true, 1)?),
//!     Box::new(Relu::new()),
//!     Box::new(Linear::new(16, 3, true, 2)?),
//! ]);
//! let x = Tensor::randn(&[8, 4], 1.0, 3);
//! let logits = net.forward(&x, Mode::Train);
//! let (loss, dlogits) = softmax_cross_entropy(&logits, &[0, 1, 2, 0, 1, 2, 0, 1], 0.0)?;
//! net.backward(&dlogits);
//! assert!(loss.is_finite());
//! # Ok::<(), puffer_nn::NnError>(())
//! ```

pub mod activation;
pub mod amp;
pub mod attention;
pub mod checkpoint;
pub mod complexity;
pub mod conv;
pub mod dropout;
pub mod embedding;
pub mod error;
pub mod layer;
pub mod linear;
pub mod loss;
pub mod lstm;
pub mod norm;
pub mod optim;
pub mod param;
pub mod pool;
pub mod schedule;

pub use error::NnError;
pub use layer::{Layer, Mode, Sequential};
pub use param::Param;
pub use puffer_tensor::pool as threading;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, NnError>;
