//! Element-wise activation layers.

use crate::layer::{Layer, Mode};
use crate::param::Param;
use puffer_tensor::Tensor;

/// Rectified linear unit `max(0, x)`.
#[derive(Debug, Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu { mask: None }
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let out = input.map(|x| x.max(0.0));
        if mode == Mode::Train {
            self.mask = Some(input.as_slice().iter().map(|&x| x > 0.0).collect());
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mask = self.mask.as_ref().expect("backward before train-mode forward");
        assert_eq!(mask.len(), grad_output.len(), "Relu gradient shape mismatch");
        let mut g = grad_output.clone();
        for (gv, &m) in g.as_mut_slice().iter_mut().zip(mask) {
            if !m {
                *gv = 0.0;
            }
        }
        g
    }

    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    fn describe(&self) -> String {
        "Relu".into()
    }
}

/// Hyperbolic tangent.
#[derive(Debug, Default)]
pub struct Tanh {
    cached_output: Option<Tensor>,
}

impl Tanh {
    /// Creates a Tanh layer.
    pub fn new() -> Self {
        Tanh { cached_output: None }
    }
}

impl Layer for Tanh {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let out = input.map(f32::tanh);
        if mode == Mode::Train {
            self.cached_output = Some(out.clone());
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let y = self.cached_output.as_ref().expect("backward before train-mode forward");
        grad_output.zip_map(y, |g, y| g * (1.0 - y * y)).expect("Tanh gradient shape mismatch")
    }

    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    fn describe(&self) -> String {
        "Tanh".into()
    }
}

/// Numerically stable logistic sigmoid on a scalar.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::finite_diff_input_check;

    #[test]
    fn relu_forward() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]).unwrap();
        assert_eq!(r.forward(&x, Mode::Eval).as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_backward_masks() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 3.0], &[2]).unwrap();
        let _ = r.forward(&x, Mode::Train);
        let g = r.backward(&Tensor::from_vec(vec![5.0, 5.0], &[2]).unwrap());
        assert_eq!(g.as_slice(), &[0.0, 5.0]);
    }

    #[test]
    fn tanh_gradcheck() {
        let mut t = Tanh::new();
        let x = Tensor::randn(&[2, 3], 1.0, 1);
        assert!(finite_diff_input_check(&mut t, &x, 1e-3) < 1e-2);
    }

    #[test]
    fn sigmoid_stable_extremes() {
        assert!((sigmoid(100.0) - 1.0).abs() < 1e-6);
        assert!(sigmoid(-100.0) < 1e-6);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid(-1000.0).is_finite());
    }
}
