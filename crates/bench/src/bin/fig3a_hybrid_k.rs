//! **Figure 3(a)**: final test accuracy of hybrid VGG-19 as a function of
//! the first-low-rank layer index `K` (everything from layer `K` on is
//! factorized at rank ratio 0.25).
//!
//! The shape under reproduction: accuracy increases (loss of accuracy
//! shrinks) as `K` grows — later-only factorization hurts less, because
//! early-layer approximation error propagates (paper §3).

use puffer_bench::scale::RunScale;
use puffer_bench::table::{commas, Table};
use puffer_bench::{record_result, setups};
use puffer_nn::Layer;
use pufferfish::trainer::{train, ModelPlan, TrainConfig};

fn main() {
    let scale = RunScale::from_env();
    let epochs = scale.pick(6, 14);
    let warmup = scale.pick(2, 4);
    let data = setups::cifar_data(scale);
    let n_layers = setups::vgg19(10, 1).config().factorizable_layers();
    let ks = scale.pick(vec![1, 9, 17], vec![1, 5, 9, 13, 17]);

    println!("== Figure 3(a): hybrid VGG-19 accuracy vs first low-rank index K ==");
    println!("(VGG-19 has {n_layers} factorizable layers; K = L+1 means fully vanilla)\n");

    // Vanilla reference.
    let cfg = TrainConfig::cifar_small(epochs, 0);
    let vanilla = train(setups::vgg19(10, 1), ModelPlan::None, &data, &cfg).expect("training");
    let van_acc = vanilla.report.final_test_accuracy();

    let mut t = Table::new(vec!["K", "# params", "final acc", "acc - vanilla"]);
    let mut accs = Vec::new();
    for &k in &ks {
        let cfg = TrainConfig::cifar_small(epochs, warmup);
        let out = train(
            setups::vgg19(10, 1),
            ModelPlan::VggHybrid { first_low_rank: k, rank_ratio: 0.25 },
            &data,
            &cfg,
        )
        .expect("training");
        let acc = out.report.final_test_accuracy();
        accs.push(acc);
        t.row(vec![
            k.to_string(),
            commas(out.model.param_count() as u64),
            format!("{acc:.3}"),
            format!("{:+.3}", acc - van_acc),
        ]);
        record_result("fig3a_hybrid_k", &format!("K={k} acc={acc:.4} vanilla={van_acc:.4}"));
    }
    t.row(vec![
        "vanilla".into(),
        commas(vanilla.model.param_count() as u64),
        format!("{van_acc:.3}"),
        "+0.000".into(),
    ]);
    t.print();

    // Shape check: the most factorized model (smallest K) should not beat
    // the least factorized one.
    if let (Some(first), Some(last)) = (accs.first(), accs.last()) {
        println!(
            "\nshape: acc(K={}) = {first:.3} vs acc(K={}) = {last:.3} (paper: larger K recovers accuracy)",
            ks[0],
            ks[ks.len() - 1]
        );
    }
}
