//! Fixture: the latent gate bug in the old awk lint. awk exited at the
//! *first* `#[cfg(test)]` line, so everything below an early test module
//! was silently unchecked. The lexer-based lint must flag the violations
//! after the module.

pub fn clean() -> u32 {
    7
}

#[cfg(test)]
mod early_tests {
    use super::*;

    #[test]
    fn fine() {
        assert_eq!(clean(), 7);
        let x: Option<u32> = Some(1);
        let _ = x.unwrap(); // exempt: inside the test module
    }
}

pub fn hidden_from_awk(x: Option<u32>) -> u32 {
    x.unwrap() // line 23: flagged — awk never saw this line
}

use std::time::Instant; // line 26: flagged by dist-no-instant (and wall-clock)

pub fn timing_hidden_from_awk() -> std::time::Duration {
    let t0 = Instant::now(); // line 29: flagged
    t0.elapsed()
}
