//! Acceptance check for the observability layer: the `trace_demo`
//! workload, run in memory, must render a schema-valid Chrome trace that
//! contains spans from every layer of the stack and at least three
//! distinct fault event types. One test per file — the probe's state is
//! process-global.

use puffer_bench::probe_demo::run_trace_demo;
use puffer_probe as probe;
use std::collections::BTreeSet;

#[test]
fn trace_demo_covers_every_layer_and_validates() {
    probe::reset();
    probe::configure(probe::ProbeConfig::in_memory());

    let report = run_trace_demo();
    assert!(!report.outcome.faults.is_clean(), "the demo must actually be faulty");

    let mut events = probe::take_events();
    // Append what the file exporter would add (run-context header +
    // per-family histograms) so the in-memory trace matches flush output.
    events.extend(probe::trace_extras());
    let doc = probe::render_chrome_trace(&events);
    let summary = probe::validate_chrome_trace(&doc).expect("demo trace must be schema-valid");

    // Tensor-pool worker occupancy: the kernel chunks ran on named pool
    // threads, which appear as thread_name metadata lanes.
    assert!(
        summary.has_thread_prefix("puffer-pool-"),
        "trace must contain tensor-pool worker lanes; threads: {:?}",
        summary.thread_names
    );
    assert!(summary.has_name("chunk"), "pool chunk spans missing");

    // nn layer: forward/backward spans from the per-worker replicas.
    assert!(summary.has_name("forward") && summary.has_name("backward"));
    assert!(summary.cats.contains("nn"));

    // dist layer: all round phases (the Fig.-4 bins, comm named after its
    // collective) plus the worker-side apply of the broadcast mean.
    for phase in ["compute", "encode", "allreduce", "decode", "apply"] {
        assert!(
            events.iter().any(|e| e.phase == 'X' && e.cat == "dist" && e.name == phase),
            "dist round phase {phase:?} missing"
        );
    }

    // Structured fault events: at least three distinct types, each an
    // instant event in the `fault` category.
    let fault_kinds: BTreeSet<&str> =
        events.iter().filter(|e| e.phase == 'i' && e.cat == "fault").map(|e| e.name).collect();
    assert!(fault_kinds.len() >= 3, "expected ≥3 distinct fault event types, got {fault_kinds:?}");

    // Run-level metadata: the demo stamps a run_context header, and every
    // span family accumulated a histogram record.
    assert!(summary.has_name("run_context"), "run header missing from trace");
    assert!(summary.has_name("histogram"), "span-family histograms missing from trace");

    probe::reset();
}
