//! Flat gradient-buffer packing.
//!
//! The paper's prototype packs **all** gradient tensors into one flat
//! buffer and issues a single allreduce per iteration (§4.1), because each
//! collective call pays a latency term proportional to the node count
//! (Thakur et al. 2005) and factorization doubles the number of layers.
//! This module provides the pack/unpack primitives plus the layout
//! bookkeeping.

use puffer_tensor::Tensor;

/// The shape layout of a packed buffer, needed to unpack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackLayout {
    shapes: Vec<Vec<usize>>,
    offsets: Vec<usize>,
    total: usize,
}

impl PackLayout {
    /// Derives the layout from a tensor list.
    pub fn of(tensors: &[Tensor]) -> Self {
        let mut offsets = Vec::with_capacity(tensors.len());
        let mut total = 0;
        for t in tensors {
            offsets.push(total);
            total += t.len();
        }
        PackLayout { shapes: tensors.iter().map(|t| t.shape().to_vec()).collect(), offsets, total }
    }

    /// Derives the layout from borrowed tensors (e.g. live parameter
    /// gradients) without requiring an owned slice of them.
    pub fn of_refs(tensors: &[&Tensor]) -> Self {
        let mut offsets = Vec::with_capacity(tensors.len());
        let mut total = 0;
        for t in tensors {
            offsets.push(total);
            total += t.len();
        }
        PackLayout { shapes: tensors.iter().map(|t| t.shape().to_vec()).collect(), offsets, total }
    }

    /// Total number of f32 elements in the packed buffer.
    pub fn total_len(&self) -> usize {
        self.total
    }

    /// Number of tensors.
    pub fn tensor_count(&self) -> usize {
        self.shapes.len()
    }

    /// Packed size in bytes.
    pub fn total_bytes(&self) -> usize {
        self.total * std::mem::size_of::<f32>()
    }

    /// Element range tensor `i` occupies in the packed buffer — the slicing
    /// primitive gradient bucketing builds on (a bucket is a contiguous run
    /// of whole tensors).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn range_of(&self, i: usize) -> std::ops::Range<usize> {
        let len: usize = self.shapes[i].iter().product();
        self.offsets[i]..self.offsets[i] + len
    }

    /// Serializes the layout's shape list as one f32 tensor
    /// (`[n, ndim₀, dims…, ndim₁, dims…]`) so stateful compressors can
    /// checkpoint it alongside their flat buffers.
    pub fn to_tensor(&self) -> Tensor {
        let mut data = vec![self.shapes.len() as f32];
        for s in &self.shapes {
            data.push(s.len() as f32);
            data.extend(s.iter().map(|&d| d as f32));
        }
        let n = data.len();
        Tensor::from_vec(data, &[n]).expect("layout serialization")
    }

    /// Rebuilds a layout from [`PackLayout::to_tensor`] output. Returns
    /// `None` on a malformed encoding.
    pub fn from_tensor(t: &Tensor) -> Option<PackLayout> {
        let mut it = t.as_slice().iter().copied();
        let n = it.next()? as usize;
        let mut shapes = Vec::with_capacity(n);
        for _ in 0..n {
            let ndim = it.next()? as usize;
            let mut s = Vec::with_capacity(ndim);
            for _ in 0..ndim {
                s.push(it.next()? as usize);
            }
            shapes.push(s);
        }
        if it.next().is_some() {
            return None;
        }
        let mut offsets = Vec::with_capacity(n);
        let mut total = 0;
        for s in &shapes {
            offsets.push(total);
            total += s.iter().product::<usize>();
        }
        Some(PackLayout { shapes, offsets, total })
    }
}

/// Snapshot helper for compressors keeping one flat buffer per worker
/// plus a layout: `[("layout", …), ("<prefix>.00", …), …]`.
pub(crate) fn snapshot_flat_state(
    layout: &PackLayout,
    prefix: &str,
    bufs: &[Tensor],
) -> Vec<(String, Tensor)> {
    let mut out = vec![("layout".to_string(), layout.to_tensor())];
    for (w, b) in bufs.iter().enumerate() {
        out.push((format!("{prefix}.{w:02}"), b.clone()));
    }
    out
}

/// Inverse of [`snapshot_flat_state`]; `None` on malformed or mismatched
/// state.
pub(crate) fn restore_flat_state(
    state: &[(String, Tensor)],
    prefix: &str,
) -> Option<(PackLayout, Vec<Tensor>)> {
    let (_, lt) = state.iter().find(|(n, _)| n == "layout")?;
    let layout = PackLayout::from_tensor(lt)?;
    let total = layout.total_len();
    let mut bufs: Vec<(usize, Tensor)> = Vec::new();
    for (name, t) in state {
        if name == "layout" {
            continue;
        }
        let w = name.strip_prefix(prefix)?.strip_prefix('.')?.parse::<usize>().ok()?;
        if t.len() != total {
            return None;
        }
        bufs.push((w, t.clone()));
    }
    bufs.sort_by_key(|(w, _)| *w);
    if bufs.iter().enumerate().any(|(i, (w, _))| i != *w) {
        return None;
    }
    Some((layout, bufs.into_iter().map(|(_, t)| t).collect()))
}

/// Packs a tensor list into one flat buffer.
pub fn pack(tensors: &[Tensor]) -> (Tensor, PackLayout) {
    let layout = PackLayout::of(tensors);
    let mut buf = Tensor::zeros(&[layout.total]);
    for (t, &off) in tensors.iter().zip(&layout.offsets) {
        buf.as_mut_slice()[off..off + t.len()].copy_from_slice(t.as_slice());
    }
    (buf, layout)
}

/// Packs borrowed tensors into one flat buffer, encoding straight from
/// the borrows — no owned copies of the inputs are made.
pub fn pack_refs(tensors: &[&Tensor]) -> (Tensor, PackLayout) {
    let layout = PackLayout::of_refs(tensors);
    let buf = pack_refs_with(&layout, tensors);
    (buf, layout)
}

/// Packs borrowed tensors into a flat buffer using a precomputed layout
/// (the steady-state path: derive the layout once, pack every round).
///
/// # Panics
///
/// Panics if the tensors do not match the layout.
pub fn pack_refs_with(layout: &PackLayout, tensors: &[&Tensor]) -> Tensor {
    assert_eq!(tensors.len(), layout.shapes.len(), "tensor/layout count mismatch");
    let mut buf = Tensor::zeros(&[layout.total]);
    for (t, &off) in tensors.iter().zip(&layout.offsets) {
        buf.as_mut_slice()[off..off + t.len()].copy_from_slice(t.as_slice());
    }
    buf
}

/// Unpacks a flat buffer back into tensors.
///
/// # Panics
///
/// Panics if the buffer length does not match the layout.
pub fn unpack(buf: &Tensor, layout: &PackLayout) -> Vec<Tensor> {
    assert_eq!(buf.len(), layout.total, "buffer/layout length mismatch");
    layout
        .shapes
        .iter()
        .zip(&layout.offsets)
        .map(|(shape, &off)| {
            let len: usize = shape.iter().product();
            let data = puffer_tensor::workspace::take_copied(&buf.as_slice()[off..off + len]);
            Tensor::from_vec(data, shape).expect("layout shapes are consistent")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let tensors = vec![
            Tensor::randn(&[2, 3], 1.0, 1),
            Tensor::randn(&[4], 1.0, 2),
            Tensor::randn(&[1, 2, 2], 1.0, 3),
        ];
        let (buf, layout) = pack(&tensors);
        assert_eq!(buf.len(), 14);
        assert_eq!(layout.total_bytes(), 56);
        assert_eq!(layout.tensor_count(), 3);
        assert_eq!(layout.range_of(0), 0..6);
        assert_eq!(layout.range_of(1), 6..10);
        assert_eq!(layout.range_of(2), 10..14);
        let back = unpack(&buf, &layout);
        assert_eq!(back, tensors);
    }

    #[test]
    fn layout_tensor_round_trip() {
        let tensors = vec![Tensor::randn(&[2, 3], 1.0, 1), Tensor::randn(&[4], 1.0, 2)];
        let (_, layout) = pack(&tensors);
        let back = PackLayout::from_tensor(&layout.to_tensor()).unwrap();
        assert_eq!(back, layout);
        assert!(PackLayout::from_tensor(&Tensor::full(&[2], 9.0)).is_none());
    }

    #[test]
    fn pack_refs_matches_pack() {
        let tensors = vec![Tensor::randn(&[3, 2], 1.0, 4), Tensor::randn(&[5], 1.0, 5)];
        let refs: Vec<&Tensor> = tensors.iter().collect();
        let (owned_buf, owned_layout) = pack(&tensors);
        let (ref_buf, ref_layout) = pack_refs(&refs);
        assert_eq!(ref_buf, owned_buf);
        assert_eq!(ref_layout, owned_layout);
        assert_eq!(pack_refs_with(&owned_layout, &refs), owned_buf);
    }

    #[test]
    fn empty_list() {
        let (buf, layout) = pack(&[]);
        assert_eq!(buf.len(), 0);
        assert!(unpack(&buf, &layout).is_empty());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn unpack_validates() {
        let (_, layout) = pack(&[Tensor::zeros(&[3])]);
        let _ = unpack(&Tensor::zeros(&[2]), &layout);
    }
}
