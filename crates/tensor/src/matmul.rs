//! Profile-dispatched dense matrix multiplication.
//!
//! Two execution profiles mirror the paper's two cuDNN settings (Table 6 vs
//! Table 20): [`MatmulProfile::Reproducible`] uses a straightforward,
//! strictly sequential ikj loop, while [`MatmulProfile::Optimized`] routes
//! through the BLIS-style cache-blocked SIMD engine in [`crate::gemm`] —
//! KC/MC/NC blocking, workspace-packed micro-panels, a runtime-detected
//! AVX2+FMA 6×16 register-tile kernel, and thread partitioning over
//! `(jc, ic)` cache tiles. The fused-transpose variants ([`matmul_tn`],
//! [`matmul_nt`]) feed the same engine through strided views, so the
//! convolution lowering and every `puffer-nn` layer hit the fast path too.
//!
//! The engine is **bitwise deterministic across thread counts and SIMD
//! on/off**: every `(i, j)` element is a single accumulator reduced over
//! `p = 0..k` in ascending order with one fused rounding per step,
//! regardless of blocking, tile ownership, or vector width (lanes are
//! distinct output columns). Only the profile switch changes results
//! (within f32 associativity); the thread count never does.

use crate::gemm::{self, View};
use crate::pool;
use crate::{Result, Tensor, TensorError};
use puffer_probe as probe;

/// Opens a probe span over a dense kernel and bumps the process-global
/// multiply–add counter. One relaxed atomic load when the probe is off.
#[inline]
fn kernel_span(name: &'static str, m: usize, k: usize, n: usize) -> probe::SpanGuard {
    if !probe::enabled() {
        return probe::span(Q, name); // disabled fast path: returns an empty guard
    }
    probe::counter_add("tensor.macs", (m * k * n) as u64);
    probe::span_with(Q, name, || vec![("m", m.into()), ("k", k.into()), ("n", n.into())])
}

/// Probe category of every dense kernel in this module.
const Q: &str = "tensor";

/// Execution profile for [`matmul_with_profile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[repr(u8)]
pub enum MatmulProfile {
    /// Simple ikj-ordered triple loop; sequential on the caller thread.
    /// Stands in for the paper's "reproducibility optimized cuDNN" setting.
    Reproducible = 0,
    /// Cache-blocked SIMD engine ([`crate::gemm`]); stands in for "speed
    /// optimized cuDNN".
    #[default]
    Optimized = 1,
}

/// Default minimum multiply–add count before a dense kernel fans out to
/// the pool. Recalibrated for the blocked SIMD engine: at ~50 GFLOPS a
/// 2^20-MAC GEMM runs in ~20 µs, about the break-even point against pool
/// dispatch + packing coordination (the old scalar kernel broke even at
/// 2^18). Overridable via `PUFFER_GEMM_PAR_MIN_FLOPS`.
const PAR_MIN_FLOPS: usize = 1 << 20;

use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};

static DEFAULT_PROFILE: AtomicU8 = AtomicU8::new(1);

static PAR_THRESHOLD: AtomicUsize = AtomicUsize::new(0);
// Separate resolved flag: 0 is a meaningful threshold ("parallelize
// everything", used by the determinism tests), so it cannot double as the
// unresolved sentinel.
static PAR_THRESHOLD_RESOLVED: AtomicBool = AtomicBool::new(false);

/// Overrides the multiply–add count above which dense kernels fan out to
/// the worker pool (default `2^20`, env `PUFFER_GEMM_PAR_MIN_FLOPS`). `0`
/// parallelizes every eligible call — the determinism test suite uses this
/// to exercise the threaded path at tiny sizes; results are bitwise
/// identical either way.
pub fn set_parallel_threshold(min_flops: usize) {
    PAR_THRESHOLD.store(min_flops, Ordering::Relaxed);
    PAR_THRESHOLD_RESOLVED.store(true, Ordering::Relaxed);
}

/// The current fan-out threshold in multiply–adds, resolving
/// `PUFFER_GEMM_PAR_MIN_FLOPS` on first use.
pub fn parallel_threshold() -> usize {
    if !PAR_THRESHOLD_RESOLVED.load(Ordering::Relaxed) {
        let v = std::env::var("PUFFER_GEMM_PAR_MIN_FLOPS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .unwrap_or(PAR_MIN_FLOPS);
        set_parallel_threshold(v);
    }
    PAR_THRESHOLD.load(Ordering::Relaxed)
}

/// Sets the process-wide default profile used by [`matmul`] (and therefore
/// by every layer in `puffer-nn`). Mirrors toggling
/// `cudnn.benchmark`/`cudnn.deterministic` in the paper's Table 6 vs
/// Table 20 runtime benchmarks. Under `Reproducible`, every dense kernel in
/// this crate (including the fused transpose variants, convolution lowering
/// and large elementwise ops) runs strictly sequentially.
pub fn set_default_profile(profile: MatmulProfile) {
    DEFAULT_PROFILE.store(profile as u8, Ordering::Relaxed);
}

/// The current process-wide default profile.
pub fn default_profile() -> MatmulProfile {
    match DEFAULT_PROFILE.load(Ordering::Relaxed) {
        0 => MatmulProfile::Reproducible,
        _ => MatmulProfile::Optimized,
    }
}

/// Whether a dense kernel of `work` multiply–adds should fan out to the
/// worker pool under the process-wide default profile. `Reproducible`
/// always answers no, keeping that regime strictly sequential.
pub(crate) fn parallel_under_default(work: usize) -> bool {
    default_profile() == MatmulProfile::Optimized
        && work >= parallel_threshold()
        && pool::num_threads() > 1
}

/// `C = A · B` for 2-D tensors.
///
/// # Errors
///
/// Returns [`TensorError::WrongDimensions`] if either input is not 2-D and
/// [`TensorError::ShapeMismatch`] if the inner dimensions disagree.
///
/// # Example
///
/// ```
/// use puffer_tensor::{Tensor, matmul::matmul};
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let i = Tensor::eye(2);
/// assert_eq!(matmul(&a, &i)?, a);
/// # Ok::<(), puffer_tensor::TensorError>(())
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    matmul_with_profile(a, b, default_profile())
}

/// `C = A · B` under an explicit execution [`MatmulProfile`].
///
/// # Errors
///
/// Same as [`matmul`].
pub fn matmul_with_profile(a: &Tensor, b: &Tensor, profile: MatmulProfile) -> Result<Tensor> {
    check_2d(a, "matmul")?;
    check_2d(b, "matmul")?;
    let (m, ka) = (a.shape()[0], a.shape()[1]);
    let (kb, n) = (b.shape()[0], b.shape()[1]);
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            expected: vec![m, ka],
            got: vec![kb, n],
            op: "matmul",
        });
    }
    let _sp = kernel_span("matmul", m, ka, n);
    let mut c = Tensor::zeros(&[m, n]);
    match profile {
        MatmulProfile::Reproducible => {
            mm_ikj(a.as_slice(), b.as_slice(), c.as_mut_slice(), m, ka, n)
        }
        MatmulProfile::Optimized => gemm::gemm(
            View::row_major(a.as_slice(), ka),
            View::row_major(b.as_slice(), n),
            c.as_mut_slice(),
            m,
            ka,
            n,
            parallel_under_default(m * ka * n),
        ),
    }
    Ok(c)
}

/// `C = Aᵀ · B` without materializing the transpose (`A: k×m`, `B: k×n`).
///
/// Under the `Optimized` default profile this is the blocked engine fed a
/// column-strided view of A — packing absorbs the transpose, so the
/// micro-kernel runs at full speed on the paper's `rᵀ·` backward GEMMs.
///
/// # Errors
///
/// Returns [`TensorError::WrongDimensions`] / [`TensorError::ShapeMismatch`]
/// on rank or inner-dimension mismatch.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    check_2d(a, "matmul_tn")?;
    check_2d(b, "matmul_tn")?;
    let (k, m) = (a.shape()[0], a.shape()[1]);
    let (kb, n) = (b.shape()[0], b.shape()[1]);
    if k != kb {
        return Err(TensorError::ShapeMismatch {
            expected: vec![k, m],
            got: vec![kb, n],
            op: "matmul_tn",
        });
    }
    let _sp = kernel_span("matmul_tn", m, k, n);
    let mut c = Tensor::zeros(&[m, n]);
    if m == 0 || n == 0 {
        return Ok(c);
    }
    if default_profile() == MatmulProfile::Optimized {
        gemm::gemm(
            View::row_major(a.as_slice(), m).t(),
            View::row_major(b.as_slice(), n),
            c.as_mut_slice(),
            m,
            k,
            n,
            parallel_under_default(m * k * n),
        );
        return Ok(c);
    }
    let (av, bv) = (a.as_slice(), b.as_slice());
    let cv = c.as_mut_slice();
    // Reproducible: sequential outer-product accumulation over k, reusing
    // each B row across all output rows.
    for p in 0..k {
        let arow = &av[p * m..(p + 1) * m];
        let brow = &bv[p * n..(p + 1) * n];
        for (i, &aip) in arow.iter().enumerate() {
            let crow = &mut cv[i * n..(i + 1) * n];
            for (cj, bj) in crow.iter_mut().zip(brow) {
                *cj += aip * bj;
            }
        }
    }
    Ok(c)
}

/// `C = A · Bᵀ` without materializing the transpose (`A: m×k`, `B: n×k`).
///
/// Under the `Optimized` default profile this is the blocked engine fed a
/// column-strided view of B — the layout Linear layers store their weights
/// in, so every forward pass takes this route.
///
/// # Errors
///
/// Returns [`TensorError::WrongDimensions`] / [`TensorError::ShapeMismatch`]
/// on rank or inner-dimension mismatch.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    check_2d(a, "matmul_nt")?;
    check_2d(b, "matmul_nt")?;
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (n, kb) = (b.shape()[0], b.shape()[1]);
    if k != kb {
        return Err(TensorError::ShapeMismatch {
            expected: vec![m, k],
            got: vec![n, kb],
            op: "matmul_nt",
        });
    }
    let _sp = kernel_span("matmul_nt", m, k, n);
    let mut c = Tensor::zeros(&[m, n]);
    if m == 0 || n == 0 {
        return Ok(c);
    }
    if default_profile() == MatmulProfile::Optimized {
        gemm::gemm(
            View::row_major(a.as_slice(), k),
            View::row_major(b.as_slice(), k).t(),
            c.as_mut_slice(),
            m,
            k,
            n,
            parallel_under_default(m * k * n),
        );
        return Ok(c);
    }
    let (av, bv) = (a.as_slice(), b.as_slice());
    for (i, crow) in c.as_mut_slice().chunks_exact_mut(n).enumerate() {
        let arow = &av[i * k..(i + 1) * k];
        for (j, cj) in crow.iter_mut().enumerate() {
            *cj = dot_unrolled(arow, &bv[j * k..(j + 1) * k]);
        }
    }
    Ok(c)
}

/// Matrix–vector product `y = A · x` (`A: m×k`, `x: k`).
///
/// Stays on the unrolled-dot path: with one output column there is no
/// register tile to fill, so the blocked engine has nothing to offer.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `x.len() != k`.
pub fn matvec(a: &Tensor, x: &Tensor) -> Result<Tensor> {
    check_2d(a, "matvec")?;
    let (m, k) = (a.shape()[0], a.shape()[1]);
    if x.len() != k {
        return Err(TensorError::ShapeMismatch {
            expected: vec![k],
            got: x.shape().to_vec(),
            op: "matvec",
        });
    }
    let (av, xv) = (a.as_slice(), x.as_slice());
    let mut y = Tensor::zeros(&[m]);
    if m == 0 {
        return Ok(y);
    }
    let rows = |i0: usize, chunk: &mut [f32]| {
        for (li, yo) in chunk.iter_mut().enumerate() {
            let i = i0 + li;
            *yo = dot_unrolled(&av[i * k..(i + 1) * k], xv);
        }
    };
    if parallel_under_default(m * k) {
        pool::run_chunked(y.as_mut_slice(), 1, rows);
    } else {
        rows(0, y.as_mut_slice());
    }
    Ok(y)
}

/// 4-lane unrolled dot product: independent accumulators keep the FP adder
/// pipeline full; the lane-combination order is fixed, so the result only
/// depends on the inputs.
#[inline]
fn dot_unrolled(x: &[f32], y: &[f32]) -> f32 {
    let xc = x.chunks_exact(4);
    let yc = y.chunks_exact(4);
    let tail: f32 = xc.remainder().iter().zip(yc.remainder()).map(|(a, b)| a * b).sum();
    let mut acc = [0.0f32; 4];
    for (xs, ys) in xc.zip(yc) {
        for l in 0..4 {
            acc[l] += xs[l] * ys[l];
        }
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

fn mm_ikj(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        for (p, &aip) in arow.iter().enumerate() {
            if aip == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (cj, bj) in crow.iter_mut().zip(brow) {
                *cj += aip * bj;
            }
        }
    }
}

fn check_2d(t: &Tensor, op: &'static str) -> Result<()> {
    if t.ndim() != 2 {
        return Err(TensorError::WrongDimensions { expected: 2, got: t.ndim(), op });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        let mut c = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for p in 0..k {
                    s += a.at2(i, p) * b.at2(p, j);
                }
                *c.at2_mut(i, j) = s;
            }
        }
        c
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_matches_naive_both_profiles() {
        let a = Tensor::randn(&[37, 53], 1.0, 1);
        let b = Tensor::randn(&[53, 29], 1.0, 2);
        let reference = naive(&a, &b);
        for profile in [MatmulProfile::Reproducible, MatmulProfile::Optimized] {
            let c = matmul_with_profile(&a, &b, profile).unwrap();
            assert_close(&c, &reference, 1e-3);
        }
    }

    #[test]
    fn identity_is_neutral() {
        let a = Tensor::randn(&[5, 5], 1.0, 3);
        let i = Tensor::eye(5);
        assert_close(&matmul(&a, &i).unwrap(), &a, 0.0);
        assert_close(&matmul(&i, &a).unwrap(), &a, 0.0);
    }

    #[test]
    fn transposed_variants_match() {
        let a = Tensor::randn(&[11, 7], 1.0, 4);
        let b = Tensor::randn(&[11, 13], 1.0, 5);
        let tn = matmul_tn(&a, &b).unwrap();
        let explicit = matmul(&a.transpose(), &b).unwrap();
        assert_close(&tn, &explicit, 1e-4);

        let c = Tensor::randn(&[9, 7], 1.0, 6);
        let d = Tensor::randn(&[5, 7], 1.0, 7);
        let nt = matmul_nt(&c, &d).unwrap();
        let explicit = matmul(&c, &d.transpose()).unwrap();
        assert_close(&nt, &explicit, 1e-4);
    }

    #[test]
    fn transposed_variants_match_reproducible_too() {
        let prev = default_profile();
        set_default_profile(MatmulProfile::Reproducible);
        let a = Tensor::randn(&[11, 7], 1.0, 14);
        let b = Tensor::randn(&[11, 13], 1.0, 15);
        let tn = matmul_tn(&a, &b).unwrap();
        let c = Tensor::randn(&[9, 7], 1.0, 16);
        let d = Tensor::randn(&[5, 7], 1.0, 17);
        let nt = matmul_nt(&c, &d).unwrap();
        set_default_profile(prev);
        assert_close(&tn, &matmul(&a.transpose(), &b).unwrap(), 1e-4);
        assert_close(&nt, &matmul(&c, &d.transpose()).unwrap(), 1e-4);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Tensor::randn(&[6, 4], 1.0, 8);
        let x = Tensor::randn(&[4], 1.0, 9);
        let y = matvec(&a, &x).unwrap();
        let xm = x.reshape(&[4, 1]).unwrap();
        let ym = matmul(&a, &xm).unwrap();
        assert_close(&y, &ym.reshape(&[6]).unwrap(), 1e-5);
    }

    #[test]
    fn dimension_errors() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 5]);
        assert!(matmul(&a, &b).is_err());
        assert!(matmul_tn(&a, &b).is_err());
        assert!(matmul_nt(&a, &b).is_err());
        // Non-2-D operands are rejected by every variant alike.
        let v = Tensor::zeros(&[3]);
        assert!(matmul(&a, &v).is_err());
        assert!(matmul(&v, &a).is_err());
        assert!(matmul_tn(&a, &v).is_err());
        assert!(matmul_tn(&v, &a).is_err());
        assert!(matmul_nt(&a, &v).is_err());
        assert!(matmul_nt(&v, &a).is_err());
        assert!(matvec(&a, &Tensor::zeros(&[2])).is_err());
    }

    #[test]
    fn panel_boundary_sizes() {
        // Sizes straddling the MR=6 / NR=16 register-tile edges and the
        // KC=256 / MC=96 block edges of the gemm engine.
        for &(m, k, n) in &[
            (1, 1, 1),
            (6, 16, 16),
            (5, 9, 7),
            (7, 17, 18),
            (97, 130, 51),
            (1, 300, 1),
            (130, 2, 70),
        ] {
            let a = Tensor::randn(&[m, k], 1.0, (m * k) as u64);
            let b = Tensor::randn(&[k, n], 1.0, (k * n + 1) as u64);
            assert_close(&matmul(&a, &b).unwrap(), &naive(&a, &b), 1e-2);
        }
    }

    #[test]
    fn optimized_is_bitwise_stable_across_thread_counts() {
        let a = Tensor::randn(&[70, 33], 1.0, 10);
        let b = Tensor::randn(&[33, 41], 1.0, 11);
        let prev_threshold = parallel_threshold();
        set_parallel_threshold(0);
        let prev = pool::num_threads();
        pool::set_num_threads(1);
        let one = matmul_with_profile(&a, &b, MatmulProfile::Optimized).unwrap();
        pool::set_num_threads(4);
        let four = matmul_with_profile(&a, &b, MatmulProfile::Optimized).unwrap();
        pool::set_num_threads(prev);
        set_parallel_threshold(prev_threshold);
        assert_eq!(one, four, "thread count must not change Optimized results");
    }

    #[test]
    fn empty_dimensions() {
        let a = Tensor::zeros(&[0, 4]);
        let b = Tensor::zeros(&[4, 3]);
        assert_eq!(matmul(&a, &b).unwrap().shape(), &[0, 3]);
        let a = Tensor::zeros(&[3, 0]);
        let b = Tensor::zeros(&[0, 2]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), &[3, 2]);
        assert!(c.as_slice().iter().all(|&x| x == 0.0));
    }
}
