//! Overhead guard for the probe's disabled fast path.
//!
//! The kernels are permanently instrumented (spans + MAC counters in
//! `matmul`, dispatch/chunk spans in the pool), so the cost that matters
//! is what that instrumentation adds when the probe is *off*. We cannot
//! compile an uninstrumented `matmul` to diff against, so the guard
//! bounds the cost from above: a GEMM loop that makes *extra* disabled
//! probe calls per iteration — more than the real instrumentation itself
//! makes — must run within 2% of the plain loop. If even the inflated
//! call count is below 2%, the instrumentation's own disabled cost is
//! too.
//!
//! One test per file: the probe's enabled flag is process-global and this
//! measurement needs it off throughout.

use puffer_probe as probe;
use puffer_tensor::matmul::matmul;
use puffer_tensor::Tensor;
use std::time::{Duration, Instant};

const DIM: usize = 128;
const REPS: usize = 4;
const TRIALS: usize = 7;
/// Disabled probe calls added per GEMM — comfortably more than the
/// span/counter sites a single `matmul` actually passes through.
const EXTRA_CALLS: usize = 16;

fn gemm_batch(a: &Tensor, b: &Tensor, extra_probe_calls: bool) -> Duration {
    let t0 = Instant::now();
    for _ in 0..REPS {
        if extra_probe_calls {
            for _ in 0..EXTRA_CALLS {
                let _sp = probe::span("overhead", "extra");
                probe::counter_add("overhead.calls", 1);
            }
        }
        let c = matmul(a, b).expect("gemm");
        std::hint::black_box(c);
    }
    t0.elapsed()
}

/// One full interleaved measurement: best batch per variant, overhead as
/// a fraction of the base.
fn measure_overhead(a: &Tensor, b: &Tensor) -> (f64, Duration, Duration) {
    // Interleave the two variants and keep each one's best batch, so slow
    // outliers (scheduling noise) cannot bias either side.
    let mut base = Duration::MAX;
    let mut probed = Duration::MAX;
    for _ in 0..TRIALS {
        base = base.min(gemm_batch(a, b, false));
        probed = probed.min(gemm_batch(a, b, true));
    }
    let overhead = (probed.as_secs_f64() - base.as_secs_f64()).max(0.0) / base.as_secs_f64();
    (overhead, base, probed)
}

#[test]
fn disabled_probe_costs_under_two_percent_on_gemm() {
    probe::reset();
    assert!(!probe::enabled(), "this guard measures the disabled fast path");

    let a = Tensor::randn(&[DIM, DIM], 1.0, 1);
    let b = Tensor::randn(&[DIM, DIM], 1.0, 2);
    // Warm-up: page in buffers, settle the pool.
    let _ = gemm_batch(&a, &b, false);
    let _ = gemm_batch(&a, &b, true);

    // The true cost of the disabled fast path is nanoseconds against a
    // kernel that runs for hundreds of microseconds; only scheduling
    // noise can push a measurement over the bound. Take the best of a few
    // full measurements so one noisy window cannot fail the guard, while
    // a genuine regression (cost in every measurement) still does.
    let mut last = (f64::INFINITY, Duration::MAX, Duration::MAX);
    for _ in 0..3 {
        last = measure_overhead(&a, &b);
        if last.0 < 0.02 {
            break;
        }
    }
    let (overhead, base, probed) = last;
    assert!(
        overhead < 0.02,
        "disabled probe overhead {:.3}% (base {base:?}, probed {probed:?}) exceeds 2%",
        overhead * 100.0
    );
}
