//! Shared bench-scale workloads and models.
//!
//! All experiment binaries draw their datasets and scaled models from here
//! so that, e.g., "ResNet-18 on CIFAR-10" means the same thing in
//! Figure 4(b), Table 4, and Table 8. Width scales are chosen so a full
//! experiment runs in minutes on one CPU core while preserving each
//! architecture's shape (stage structure, hybrid plans, rank ratios).

use crate::scale::RunScale;
use puffer_data::images::{ImageDataset, ImageDatasetConfig};
use puffer_data::text::{TextCorpus, TextCorpusConfig};
use puffer_data::translation::{TranslationConfig, TranslationDataset};
use puffer_models::lstm_lm::{LstmLm, LstmLmConfig};
use puffer_models::resnet::{ResNet, ResNetConfig};
use puffer_models::transformer::{TransformerConfig, TransformerModel};
use puffer_models::vgg::{Vgg, VggConfig};

/// Width multiplier used for every bench-scale CNN.
pub const CNN_SCALE: f32 = 0.125;

/// The CIFAR-10 stand-in at bench scale.
pub fn cifar_data(scale: RunScale) -> ImageDataset {
    let (train, test) = scale.pick((384, 128), (2_048, 512));
    ImageDataset::generate(ImageDatasetConfig {
        noise: 0.25,
        ..ImageDatasetConfig::cifar_like(train, test, 42)
    })
}

/// The ImageNet-lite stand-in (more classes) at bench scale.
pub fn imagenet_lite_data(scale: RunScale) -> ImageDataset {
    let (train, test) = scale.pick((384, 128), (2_048, 512));
    ImageDataset::generate(ImageDatasetConfig {
        noise: 0.25,
        ..ImageDatasetConfig::imagenet_lite(train, test, 43)
    })
}

/// Bench-scale VGG-19 (16 convs, the paper's CIFAR VGG).
pub fn vgg19(classes: usize, seed: u64) -> Vgg {
    Vgg::new(VggConfig::vgg19(CNN_SCALE, classes, seed)).expect("valid config")
}

/// Bench-scale VGG-11 (Figure 2a's model).
pub fn vgg11(classes: usize, seed: u64) -> Vgg {
    Vgg::new(VggConfig::vgg11(CNN_SCALE, classes, seed)).expect("valid config")
}

/// Bench-scale ResNet-18.
pub fn resnet18(classes: usize, seed: u64) -> ResNet {
    ResNet::new(ResNetConfig::resnet18(CNN_SCALE, classes, seed)).expect("valid config")
}

/// Bench-scale ResNet-50 (bottleneck).
pub fn resnet50(classes: usize, seed: u64) -> ResNet {
    ResNet::new(ResNetConfig::resnet50(CNN_SCALE, classes, seed)).expect("valid config")
}

/// Bench-scale WideResNet-50-2.
pub fn wide_resnet50(classes: usize, seed: u64) -> ResNet {
    ResNet::new(ResNetConfig::wide_resnet50_2(CNN_SCALE, classes, seed)).expect("valid config")
}

/// The WikiText-2 stand-in corpus.
pub fn lm_corpus(scale: RunScale) -> TextCorpus {
    let (train, heldout) = scale.pick((4_000, 800), (24_000, 2_400));
    TextCorpus::generate(TextCorpusConfig {
        vocab: 200,
        branching: 4,
        train_tokens: train,
        valid_tokens: heldout,
        test_tokens: heldout,
        seed: 44,
    })
}

/// Bench-scale 2-layer LSTM LM (embedding = hidden, tied), matching the
/// paper's structure.
pub fn lstm_lm(vocab: usize, seed: u64) -> LstmLm {
    LstmLm::new(LstmLmConfig::small(vocab, 64, seed)).expect("valid config")
}

/// The LSTM factorization rank at bench scale (the paper's hidden/4 rule).
pub const LSTM_RANK: usize = 16;

/// The WMT'16 stand-in translation task.
pub fn translation_data(scale: RunScale) -> TranslationDataset {
    let (train, valid) = scale.pick((512, 96), (3_000, 256));
    TranslationDataset::generate(TranslationConfig {
        vocab: 64,
        min_len: 4,
        max_len: 9,
        train_pairs: train,
        valid_pairs: valid,
        seed: 45,
    })
}

/// Bench-scale Transformer (2+2 layers, d_model 32, 4 heads).
pub fn transformer(vocab: usize, rank: Option<usize>, seed: u64) -> TransformerModel {
    TransformerModel::new(TransformerConfig {
        vocab,
        d_model: 32,
        heads: 4,
        enc_layers: 2,
        dec_layers: 2,
        rank,
        seed,
    })
    .expect("valid config")
}

/// The Transformer factorization rank at bench scale (d_model/4).
pub const TRANSFORMER_RANK: usize = 8;

#[cfg(test)]
mod tests {
    use super::*;
    use puffer_nn::Layer;

    #[test]
    fn setups_construct() {
        let d = cifar_data(RunScale::Quick);
        assert_eq!(d.config().classes, 10);
        assert!(vgg19(10, 1).param_count() > vgg11(10, 1).param_count());
        assert!(wide_resnet50(10, 1).param_count() > resnet50(10, 1).param_count());
        let c = lm_corpus(RunScale::Quick);
        assert_eq!(c.vocab(), 200);
        let t = translation_data(RunScale::Quick);
        assert_eq!(t.config().vocab, 64);
        let m = transformer(64, Some(TRANSFORMER_RANK), 2);
        assert!(m.param_count() > 0);
        let _ = lstm_lm(200, 3);
    }
}
