//! Algorithm 1 for the LSTM language-modeling task (the paper's WikiText-2
//! experiment, Tables 2 and 9).
//!
//! Follows the paper's recipe (appendix I): plain SGD, gradient-norm
//! clipping at 0.25, plateau LR decay ×0.25, and a 0.5× LR cut at the
//! warm-up → low-rank switch.

use crate::report::{EpochMetrics, TrainReport};
use puffer_data::text::{batchify, bptt_batches, TextCorpus};
use puffer_models::lstm_lm::LstmLm;
use puffer_nn::loss::softmax_cross_entropy;
use puffer_nn::optim::clip_grad_norm;
use puffer_nn::schedule::PlateauDecay;
use puffer_nn::Result;
use puffer_probe as probe;

/// Hyper-parameters for the LM run.
#[derive(Debug, Clone)]
pub struct LmTrainConfig {
    /// Total epochs.
    pub epochs: usize,
    /// Vanilla warm-up epochs (0 = low-rank from scratch).
    pub warmup_epochs: usize,
    /// Rank for the factorized gates (the paper: `hidden/4`).
    pub rank: usize,
    /// Batch size (token columns).
    pub batch_size: usize,
    /// BPTT window length.
    pub bptt: usize,
    /// Initial learning rate (paper: 20 at full scale).
    pub lr: f32,
    /// Plateau decay factor (paper: 0.25).
    pub plateau_factor: f32,
    /// Gradient-norm clip (paper: 0.25).
    pub clip: f32,
}

impl LmTrainConfig {
    /// A CPU-scale recipe preserving the paper's structure.
    pub fn small(epochs: usize, warmup_epochs: usize, rank: usize) -> Self {
        LmTrainConfig {
            epochs,
            warmup_epochs,
            rank,
            batch_size: 10,
            bptt: 16,
            lr: 2.0,
            plateau_factor: 0.25,
            clip: 0.25,
        }
    }
}

/// The result of an LM run.
pub struct LmOutcome {
    /// The trained model.
    pub model: LstmLm,
    /// Telemetry (eval loss is validation NLL; perplexity = `exp`).
    pub report: TrainReport,
    /// Test-set perplexity after the final epoch.
    pub test_perplexity: f32,
}

/// Runs Algorithm 1 on the LM: warm-up as vanilla, convert via per-gate
/// truncated SVD, continue training the low-rank model. With
/// `warmup_epochs = 0`, trains the low-rank model from scratch; to train a
/// vanilla LSTM end-to-end set `warmup_epochs = epochs`.
///
/// # Errors
///
/// Propagates model and loss errors.
pub fn train_lm(vanilla: LstmLm, corpus: &TextCorpus, cfg: &LmTrainConfig) -> Result<LmOutcome> {
    let mut model = vanilla;
    let mut report = TrainReport {
        vanilla_params: model.param_count(),
        hybrid_params: model.param_count(),
        ..TrainReport::default()
    };
    if cfg.warmup_epochs == 0 && cfg.epochs > 0 && needs_conversion(cfg) {
        model = model.to_low_rank(cfg.rank, false)?;
        report.switch_epoch = Some(0);
        report.hybrid_params = model.param_count();
    }

    let train_b = batchify(corpus.train_stream(), cfg.batch_size);
    let valid_b = batchify(corpus.valid_stream(), cfg.batch_size);
    let test_b = batchify(corpus.test_stream(), cfg.batch_size);
    let mut lr_ctl = PlateauDecay::new(cfg.lr, cfg.plateau_factor);

    for epoch in 0..cfg.epochs {
        if epoch == cfg.warmup_epochs && cfg.warmup_epochs > 0 && needs_conversion(cfg) {
            let sp =
                probe::timed_span_with("core", "svd_factorize", || vec![("epoch", epoch.into())]);
            model = model.to_low_rank(cfg.rank, true)?;
            report.svd_time = Some(sp.finish());
            report.switch_epoch = Some(epoch);
            report.hybrid_params = model.param_count();
            // Paper: LR halves at the switch.
            lr_ctl.scale_lr(0.5);
        }
        let lr = lr_ctl.lr();
        let epoch_span = probe::timed_span_with("core", "epoch", || {
            vec![("epoch", epoch.into()), ("lr", lr.into())]
        });
        let mut loss_sum = 0.0f64;
        let mut steps = 0usize;
        for batch in bptt_batches(&train_b, cfg.bptt) {
            model.zero_grad();
            let logits = model.forward(&batch.inputs, true);
            let targets: Vec<usize> = batch.targets.iter().flatten().copied().collect();
            let (loss, dl) = softmax_cross_entropy(&logits, &targets, 0.0)?;
            model.backward(&dl);
            clip_grad_norm(&mut model.params_mut(), cfg.clip);
            // Vanilla SGD (no momentum), per the paper's LSTM recipe.
            for p in model.params_mut() {
                let g = p.grad.clone();
                p.value.axpy(-lr, &g).expect("shape");
            }
            loss_sum += loss as f64;
            steps += 1;
        }
        let val_loss = eval_stream(&mut model, &valid_b, cfg.bptt)?;
        // The epoch span covers train + eval, as in the image trainer.
        let wall = epoch_span.finish();
        lr_ctl.observe(val_loss);
        report.epochs.push(EpochMetrics {
            epoch,
            train_loss: (loss_sum / steps.max(1) as f64) as f32,
            eval_loss: val_loss,
            eval_accuracy: None,
            lr,
            params: model.param_count(),
            wall,
        });
    }
    let test_loss = eval_stream(&mut model, &test_b, cfg.bptt)?;
    Ok(LmOutcome { model, report, test_perplexity: test_loss.exp() })
}

fn needs_conversion(cfg: &LmTrainConfig) -> bool {
    cfg.warmup_epochs < cfg.epochs
}

/// Mean NLL of a batchified stream under the model.
///
/// # Errors
///
/// Propagates loss errors.
pub fn eval_stream(model: &mut LstmLm, batchified: &[Vec<usize>], bptt: usize) -> Result<f32> {
    let mut loss_sum = 0.0f64;
    let mut tokens = 0usize;
    for batch in bptt_batches(batchified, bptt) {
        let logits = model.forward(&batch.inputs, false);
        let targets: Vec<usize> = batch.targets.iter().flatten().copied().collect();
        let (loss, _) = softmax_cross_entropy(&logits, &targets, 0.0)?;
        loss_sum += loss as f64 * targets.len() as f64;
        tokens += targets.len();
    }
    Ok((loss_sum / tokens.max(1) as f64) as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use puffer_data::text::TextCorpusConfig;
    use puffer_models::lstm_lm::LstmLmConfig;

    fn tiny_corpus() -> TextCorpus {
        TextCorpus::generate(TextCorpusConfig {
            vocab: 30,
            branching: 2,
            train_tokens: 2_000,
            valid_tokens: 400,
            test_tokens: 400,
            seed: 2,
        })
    }

    #[test]
    fn vanilla_lm_beats_uniform() {
        let corpus = tiny_corpus();
        let model = LstmLm::new(LstmLmConfig::small(30, 16, 1)).unwrap();
        let cfg = LmTrainConfig { epochs: 3, warmup_epochs: 3, ..LmTrainConfig::small(3, 3, 4) };
        let out = train_lm(model, &corpus, &cfg).unwrap();
        // Uniform perplexity = vocab = 30; the chain is very predictable.
        assert!(out.test_perplexity < 25.0, "ppl {}", out.test_perplexity);
        assert!(out.report.switch_epoch.is_none());
    }

    #[test]
    fn algorithm1_lm_switches_and_shrinks() {
        let corpus = tiny_corpus();
        let model = LstmLm::new(LstmLmConfig::small(30, 16, 1)).unwrap();
        let cfg = LmTrainConfig::small(4, 2, 4);
        let out = train_lm(model, &corpus, &cfg).unwrap();
        assert_eq!(out.report.switch_epoch, Some(2));
        assert!(out.report.hybrid_params < out.report.vanilla_params);
        assert!(out.report.svd_time.is_some());
        assert!(out.test_perplexity < 28.0, "ppl {}", out.test_perplexity);
    }

    #[test]
    fn from_scratch_low_rank() {
        let corpus = tiny_corpus();
        let model = LstmLm::new(LstmLmConfig::small(30, 16, 1)).unwrap();
        let cfg = LmTrainConfig::small(2, 0, 4);
        let out = train_lm(model, &corpus, &cfg).unwrap();
        assert_eq!(out.report.switch_epoch, Some(0));
        assert!(out.report.hybrid_params < out.report.vanilla_params);
    }
}
