//! Transformer building blocks: multi-head attention and position-wise FFN,
//! each with low-rank factorized variants (paper §2.4).
//!
//! The paper factorizes all learnable matrices in the attention
//! (`W^Q, W^K, W^V, W^O`) and FFN (`W_1, W_2`) of every encoder/decoder
//! layer except the first of each stack; biases, LayerNorm, and positional
//! encodings stay dense (they are vectors).

use crate::lstm::MatOp;
use crate::param::Param;
use crate::{NnError, Result};
use puffer_tensor::Tensor;

/// Rank configuration for a Transformer block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockRank {
    /// Dense projections.
    Full,
    /// All projection matrices factorized at this rank.
    LowRank(usize),
}

fn make_op(name: &str, out_dim: usize, in_dim: usize, rank: BlockRank, seed: u64) -> MatOp {
    let std = (2.0 / (in_dim + out_dim) as f32).sqrt();
    match rank {
        BlockRank::Full => MatOp::dense(name, out_dim, in_dim, std, seed),
        BlockRank::LowRank(r) => MatOp::low_rank(name, out_dim, in_dim, r, std, seed),
    }
}

/// Multi-head scaled dot-product attention with `p` heads over model
/// dimension `d_model = p·d`.
#[derive(Debug)]
pub struct MultiHeadAttention {
    wq: MatOp,
    wk: MatOp,
    wv: MatOp,
    wo: MatOp,
    heads: usize,
    d_model: usize,
    cache: Option<AttnCache>,
}

#[derive(Debug)]
struct AttnCache {
    q_in: Tensor,
    kv_in: Tensor,
    q: Tensor,
    k: Tensor,
    v: Tensor,
    attn: Tensor, // [B, p, Tq, Tk] softmax weights
    z: Tensor,    // [B·Tq, d_model] concatenated head outputs
    b: usize,
    tq: usize,
    tk: usize,
}

impl MultiHeadAttention {
    /// Creates an attention block.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] if `d_model` is not divisible by
    /// `heads`, any dimension is zero, or a requested rank exceeds
    /// `d_model`.
    pub fn new(d_model: usize, heads: usize, rank: BlockRank, seed: u64) -> Result<Self> {
        if heads == 0 || d_model == 0 || !d_model.is_multiple_of(heads) {
            return Err(NnError::BadConfig {
                layer: "MultiHeadAttention",
                reason: format!("d_model {d_model} must be a nonzero multiple of heads {heads}"),
            });
        }
        if let BlockRank::LowRank(r) = rank {
            if r == 0 || r > d_model {
                return Err(NnError::BadConfig {
                    layer: "MultiHeadAttention",
                    reason: format!("rank {r} out of range for d_model {d_model}"),
                });
            }
        }
        Ok(MultiHeadAttention {
            wq: make_op("attention.wq", d_model, d_model, rank, seed),
            wk: make_op("attention.wk", d_model, d_model, rank, seed.wrapping_add(10)),
            wv: make_op("attention.wv", d_model, d_model, rank, seed.wrapping_add(20)),
            wo: make_op("attention.wo", d_model, d_model, rank, seed.wrapping_add(30)),
            heads,
            d_model,
            cache: None,
        })
    }

    /// Replaces the four projections (warm-start surgery).
    pub fn set_projections(&mut self, wq: MatOp, wk: MatOp, wv: MatOp, wo: MatOp) {
        self.wq = wq;
        self.wk = wk;
        self.wv = wv;
        self.wo = wo;
    }

    /// The four projections as dense effective matrices `(Wq, Wk, Wv, Wo)`.
    pub fn projections(&self) -> (Tensor, Tensor, Tensor, Tensor) {
        (self.wq.effective(), self.wk.effective(), self.wv.effective(), self.wo.effective())
    }

    /// Attention over `query: [B, Tq, d_model]` and
    /// `key_value: [B, Tk, d_model]` (pass the same tensor for
    /// self-attention). `causal` masks position `j > i` (decoder
    /// self-attention).
    ///
    /// # Panics
    ///
    /// Panics on input shape mismatch.
    pub fn forward(&mut self, query: &Tensor, key_value: &Tensor, causal: bool) -> Tensor {
        assert_eq!(query.ndim(), 3, "attention expects [B, T, d_model]");
        assert_eq!(key_value.ndim(), 3, "attention expects [B, T, d_model]");
        let (b, tq, dm) = (query.shape()[0], query.shape()[1], query.shape()[2]);
        let tk = key_value.shape()[1];
        assert_eq!(dm, self.d_model, "attention d_model mismatch");
        assert_eq!(key_value.shape()[0], b, "attention batch mismatch");
        assert!(!causal || tq == tk, "causal mask requires square attention");

        let q_in = query.reshape(&[b * tq, dm]).expect("flatten");
        let kv_in = key_value.reshape(&[b * tk, dm]).expect("flatten");
        let q = self.wq.apply(&q_in);
        let k = self.wk.apply(&kv_in);
        let v = self.wv.apply(&kv_in);

        let p = self.heads;
        let dh = dm / p;
        let scale = 1.0 / (dh as f32).sqrt();
        let mut attn = Tensor::zeros(&[b, p, tq, tk]);
        let mut z = Tensor::zeros(&[b * tq, dm]);
        for bi in 0..b {
            for h in 0..p {
                // scores[i][j] = <Q_i, K_j> * scale
                for i in 0..tq {
                    let qrow = &q.as_slice()
                        [(bi * tq + i) * dm + h * dh..(bi * tq + i) * dm + (h + 1) * dh];
                    let srow_base = ((bi * p + h) * tq + i) * tk;
                    let mut max = f32::NEG_INFINITY;
                    for j in 0..tk {
                        let krow = &k.as_slice()
                            [(bi * tk + j) * dm + h * dh..(bi * tk + j) * dm + (h + 1) * dh];
                        let mut s = 0.0;
                        for (a, bv) in qrow.iter().zip(krow) {
                            s += a * bv;
                        }
                        s *= scale;
                        if causal && j > i {
                            s = f32::NEG_INFINITY;
                        }
                        attn.as_mut_slice()[srow_base + j] = s;
                        max = max.max(s);
                    }
                    // softmax in place
                    let mut zsum = 0.0;
                    for j in 0..tk {
                        let e = (attn.as_slice()[srow_base + j] - max).exp();
                        attn.as_mut_slice()[srow_base + j] = e;
                        zsum += e;
                    }
                    for j in 0..tk {
                        attn.as_mut_slice()[srow_base + j] /= zsum;
                    }
                    // z_i = Σ_j a_ij V_j
                    let zrow = &mut z.as_mut_slice()
                        [(bi * tq + i) * dm + h * dh..(bi * tq + i) * dm + (h + 1) * dh];
                    for j in 0..tk {
                        let a = attn.as_slice()[srow_base + j];
                        if a == 0.0 {
                            continue;
                        }
                        let vrow = &v.as_slice()
                            [(bi * tk + j) * dm + h * dh..(bi * tk + j) * dm + (h + 1) * dh];
                        for (zo, vv) in zrow.iter_mut().zip(vrow) {
                            *zo += a * vv;
                        }
                    }
                }
            }
        }
        let out = self.wo.apply(&z);
        self.cache = Some(AttnCache { q_in, kv_in, q, k, v, attn, z, b, tq, tk });
        out.reshape(&[b, tq, dm]).expect("unflatten")
    }

    /// Backward pass: accumulates projection gradients and returns
    /// `(∂L/∂query, ∂L/∂key_value)`.
    ///
    /// # Panics
    ///
    /// Panics if called before [`MultiHeadAttention::forward`].
    pub fn backward(&mut self, grad_output: &Tensor) -> (Tensor, Tensor) {
        let cache = self.cache.take().expect("backward before forward");
        let (b, tq, tk, dm) = (cache.b, cache.tq, cache.tk, self.d_model);
        assert_eq!(grad_output.shape(), &[b, tq, dm], "attention gradient shape mismatch");
        let dout = grad_output.reshape(&[b * tq, dm]).expect("flatten");
        let dz = self.wo.backward(&cache.z, &dout);

        let p = self.heads;
        let dh = dm / p;
        let scale = 1.0 / (dh as f32).sqrt();
        let mut dq = Tensor::zeros(&[b * tq, dm]);
        let mut dk = Tensor::zeros(&[b * tk, dm]);
        let mut dv = Tensor::zeros(&[b * tk, dm]);
        // One pooled row buffer shared across all (batch, head, query) rows;
        // every element is overwritten before it is read.
        let mut da = puffer_tensor::workspace::take(tk);
        for bi in 0..b {
            for h in 0..p {
                for i in 0..tq {
                    let dzrow = &dz.as_slice()
                        [(bi * tq + i) * dm + h * dh..(bi * tq + i) * dm + (h + 1) * dh];
                    let arow_base = ((bi * p + h) * tq + i) * tk;
                    // dA_ij = <dZ_i, V_j>; dV_j += a_ij dZ_i
                    for (j, daj) in da.iter_mut().enumerate() {
                        let a = cache.attn.as_slice()[arow_base + j];
                        let vrow_base = (bi * tk + j) * dm + h * dh;
                        let vrow = &cache.v.as_slice()[vrow_base..vrow_base + dh];
                        let mut acc = 0.0;
                        for (dzv, vv) in dzrow.iter().zip(vrow) {
                            acc += dzv * vv;
                        }
                        *daj = acc;
                        if a != 0.0 {
                            let dvrow = &mut dv.as_mut_slice()[vrow_base..vrow_base + dh];
                            for (dvv, dzv) in dvrow.iter_mut().zip(dzrow) {
                                *dvv += a * dzv;
                            }
                        }
                    }
                    // Softmax backward: dS_ij = a_ij (dA_ij − Σ_l a_il dA_il)
                    let dot: f32 =
                        (0..tk).map(|j| cache.attn.as_slice()[arow_base + j] * da[j]).sum();
                    for (j, daj) in da.iter_mut().enumerate() {
                        let a = cache.attn.as_slice()[arow_base + j];
                        *daj = a * (*daj - dot) * scale;
                    }
                    // dQ_i += Σ_j dS_ij K_j ; dK_j += dS_ij Q_i
                    let qrow_base = (bi * tq + i) * dm + h * dh;
                    for (j, &ds) in da.iter().enumerate() {
                        if ds == 0.0 {
                            continue;
                        }
                        let krow_base = (bi * tk + j) * dm + h * dh;
                        for l in 0..dh {
                            dq.as_mut_slice()[qrow_base + l] +=
                                ds * cache.k.as_slice()[krow_base + l];
                            dk.as_mut_slice()[krow_base + l] +=
                                ds * cache.q.as_slice()[qrow_base + l];
                        }
                    }
                }
            }
        }
        let dq_in = self.wq.backward(&cache.q_in, &dq);
        let mut dkv_in = self.wk.backward(&cache.kv_in, &dk);
        dkv_in.axpy(1.0, &self.wv.backward(&cache.kv_in, &dv)).expect("shape");
        (
            dq_in.reshape(&[b, tq, dm]).expect("unflatten"),
            dkv_in.reshape(&[b, tk, dm]).expect("unflatten"),
        )
    }

    /// Immutable parameter views (`wq, wk, wv, wo` order).
    pub fn params(&self) -> Vec<&Param> {
        let mut v = self.wq.params();
        v.extend(self.wk.params());
        v.extend(self.wv.params());
        v.extend(self.wo.params());
        v
    }

    /// Mutable parameter views, same order as
    /// [`MultiHeadAttention::params`].
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = self.wq.params_mut();
        v.extend(self.wk.params_mut());
        v.extend(self.wv.params_mut());
        v.extend(self.wo.params_mut());
        v
    }
}

/// Position-wise feed-forward network
/// `FFN(x) = max(0, x·W₁ᵀ + b₁)·W₂ᵀ + b₂` with hidden size `4·d_model`.
#[derive(Debug)]
pub struct FeedForward {
    w1: MatOp,
    w2: MatOp,
    b1: Param,
    b2: Param,
    d_model: usize,
    cache: Option<(Tensor, Tensor)>, // (flat input, post-ReLU hidden)
}

impl FeedForward {
    /// Creates an FFN block with hidden dimension `4·d_model`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] on a zero dimension or excessive rank.
    pub fn new(d_model: usize, rank: BlockRank, seed: u64) -> Result<Self> {
        if d_model == 0 {
            return Err(NnError::BadConfig { layer: "FeedForward", reason: "zero d_model".into() });
        }
        if let BlockRank::LowRank(r) = rank {
            if r == 0 || r > d_model {
                return Err(NnError::BadConfig {
                    layer: "FeedForward",
                    reason: format!("rank {r} out of range for d_model {d_model}"),
                });
            }
        }
        let hidden = 4 * d_model;
        Ok(FeedForward {
            w1: make_op("ffn.layer1", hidden, d_model, rank, seed),
            w2: make_op("ffn.layer2", d_model, hidden, rank, seed.wrapping_add(40)),
            b1: Param::new_no_decay("ffn.bias1", Tensor::zeros(&[hidden])),
            b2: Param::new_no_decay("ffn.bias2", Tensor::zeros(&[d_model])),
            d_model,
            cache: None,
        })
    }

    /// Replaces both projections (warm-start surgery), keeping biases.
    pub fn set_projections(&mut self, w1: MatOp, w2: MatOp) {
        self.w1 = w1;
        self.w2 = w2;
    }

    /// Dense effective `(W₁, W₂)`.
    pub fn projections(&self) -> (Tensor, Tensor) {
        (self.w1.effective(), self.w2.effective())
    }

    /// Applies the FFN to `[B, T, d_model]`.
    ///
    /// # Panics
    ///
    /// Panics on input shape mismatch.
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        let s = input.shape().to_vec();
        let dm = s[s.len() - 1];
        assert_eq!(dm, self.d_model, "FFN d_model mismatch");
        let rows = input.len() / dm;
        let flat = input.reshape(&[rows, dm]).expect("flatten");
        let mut h = self.w1.apply(&flat);
        crate::linear::add_bias_rows(&mut h, &self.b1.value);
        h.map_inplace(|x| x.max(0.0));
        let mut out = self.w2.apply(&h);
        crate::linear::add_bias_rows(&mut out, &self.b2.value);
        self.cache = Some((flat, h));
        out.reshape(&s).expect("unflatten")
    }

    /// Backward pass: accumulates gradients, returns `∂L/∂input`.
    ///
    /// # Panics
    ///
    /// Panics if called before [`FeedForward::forward`].
    pub fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let (flat, h) = self.cache.take().expect("backward before forward");
        let s = grad_output.shape().to_vec();
        let dm = self.d_model;
        let rows = grad_output.len() / dm;
        let dout = grad_output.reshape(&[rows, dm]).expect("flatten");
        crate::linear::accumulate_bias_grad(&mut self.b2.grad, &dout);
        let mut dh = self.w2.backward(&h, &dout);
        // ReLU mask from cached hidden.
        for (g, &hv) in dh.as_mut_slice().iter_mut().zip(h.as_slice()) {
            if hv <= 0.0 {
                *g = 0.0;
            }
        }
        crate::linear::accumulate_bias_grad(&mut self.b1.grad, &dh);
        let din = self.w1.backward(&flat, &dh);
        din.reshape(&s).expect("unflatten")
    }

    /// Immutable parameter views (`w1, b1, w2, b2` order).
    pub fn params(&self) -> Vec<&Param> {
        let mut v = self.w1.params();
        v.push(&self.b1);
        v.extend(self.w2.params());
        v.push(&self.b2);
        v
    }

    /// Mutable parameter views, same order as [`FeedForward::params`].
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = self.w1.params_mut();
        v.push(&mut self.b1);
        v.extend(self.w2.params_mut());
        v.push(&mut self.b2);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puffer_tensor::stats::rel_error;

    #[test]
    fn attention_shapes_self_and_cross() {
        let mut attn = MultiHeadAttention::new(8, 2, BlockRank::Full, 1).unwrap();
        let x = Tensor::randn(&[2, 3, 8], 1.0, 2);
        let y = attn.forward(&x, &x, false);
        assert_eq!(y.shape(), &[2, 3, 8]);
        let kv = Tensor::randn(&[2, 5, 8], 1.0, 3);
        let y = attn.forward(&x, &kv, false);
        assert_eq!(y.shape(), &[2, 3, 8]);
        let (dq, dkv) = attn.backward(&Tensor::ones(&[2, 3, 8]));
        assert_eq!(dq.shape(), &[2, 3, 8]);
        assert_eq!(dkv.shape(), &[2, 5, 8]);
    }

    #[test]
    fn causal_mask_blocks_future() {
        let mut attn = MultiHeadAttention::new(4, 1, BlockRank::Full, 2).unwrap();
        let mut x = Tensor::randn(&[1, 3, 4], 1.0, 3);
        let y1 = attn.forward(&x, &x, true);
        // Perturbing the last token must not change the first output token.
        for i in 0..4 {
            x.as_mut_slice()[2 * 4 + i] += 10.0;
        }
        let y2 = attn.forward(&x, &x, true);
        let first1 = &y1.as_slice()[..4];
        let first2 = &y2.as_slice()[..4];
        for (a, b) in first1.iter().zip(first2) {
            assert!((a - b).abs() < 1e-6, "causal leak: {a} vs {b}");
        }
    }

    #[test]
    fn attention_gradcheck_query() {
        let mut attn = MultiHeadAttention::new(4, 2, BlockRank::Full, 4).unwrap();
        let q = Tensor::randn(&[1, 2, 4], 0.7, 5);
        let kv = Tensor::randn(&[1, 3, 4], 0.7, 6);
        let kappa = Tensor::rand_uniform(&[1, 2, 4], -1.0, 1.0, 7);
        let _ = attn.forward(&q, &kv, false);
        let (dq, dkv) = attn.backward(&kappa);
        let eps = 1e-2;
        let objective = |attn: &mut MultiHeadAttention, q: &Tensor, kv: &Tensor| -> f32 {
            attn.forward(q, kv, false).dot(&kappa).unwrap()
        };
        let mut qp = q.clone();
        for i in 0..q.len() {
            let orig = qp.as_slice()[i];
            qp.as_mut_slice()[i] = orig + eps;
            let fp = objective(&mut attn, &qp, &kv);
            qp.as_mut_slice()[i] = orig - eps;
            let fm = objective(&mut attn, &qp, &kv);
            qp.as_mut_slice()[i] = orig;
            let num = (fp - fm) / (2.0 * eps);
            assert!((num - dq.as_slice()[i]).abs() < 2e-2, "q elem {i}");
        }
        let mut kvp = kv.clone();
        for i in 0..kv.len() {
            let orig = kvp.as_slice()[i];
            kvp.as_mut_slice()[i] = orig + eps;
            let fp = objective(&mut attn, &q, &kvp);
            kvp.as_mut_slice()[i] = orig - eps;
            let fm = objective(&mut attn, &q, &kvp);
            kvp.as_mut_slice()[i] = orig;
            let num = (fp - fm) / (2.0 * eps);
            assert!((num - dkv.as_slice()[i]).abs() < 2e-2, "kv elem {i}");
        }
    }

    #[test]
    fn low_rank_attention_full_rank_equivalence() {
        // An attention block with factors reconstructing the dense weights
        // computes the same function.
        let mut dense = MultiHeadAttention::new(8, 2, BlockRank::Full, 8).unwrap();
        let (wq, wk, wv, wo) = dense.projections();
        let factorize = |w: &Tensor, name: &str| {
            let f = puffer_tensor::svd::truncated_svd(w, 8).unwrap();
            let (u, vt) = f.split_balanced();
            MatOp::from_factors(name, u, vt)
        };
        let mut lr = MultiHeadAttention::new(8, 2, BlockRank::LowRank(4), 9).unwrap();
        lr.set_projections(
            factorize(&wq, "wq"),
            factorize(&wk, "wk"),
            factorize(&wv, "wv"),
            factorize(&wo, "wo"),
        );
        let x = Tensor::randn(&[1, 4, 8], 0.5, 10);
        let yd = dense.forward(&x, &x, false);
        let yl = lr.forward(&x, &x, false);
        assert!(rel_error(&yd, &yl) < 1e-3, "rel err {}", rel_error(&yd, &yl));
    }

    #[test]
    fn ffn_gradcheck() {
        let mut ffn = FeedForward::new(4, BlockRank::Full, 11).unwrap();
        let x = Tensor::randn(&[1, 3, 4], 0.5, 12);
        let kappa = Tensor::rand_uniform(&[1, 3, 4], -1.0, 1.0, 13);
        let _ = ffn.forward(&x);
        let dx = ffn.backward(&kappa);
        let eps = 1e-2;
        let mut xp = x.clone();
        for i in 0..x.len() {
            let orig = xp.as_slice()[i];
            xp.as_mut_slice()[i] = orig + eps;
            let fp = ffn.forward(&xp).dot(&kappa).unwrap();
            xp.as_mut_slice()[i] = orig - eps;
            let fm = ffn.forward(&xp).dot(&kappa).unwrap();
            xp.as_mut_slice()[i] = orig;
            let num = (fp - fm) / (2.0 * eps);
            assert!((num - dx.as_slice()[i]).abs() < 2e-2, "elem {i}");
        }
    }

    #[test]
    fn param_counts_match_complexity_formulas() {
        // p = 2 heads, head dim d = 4 → d_model = 8.
        let attn = MultiHeadAttention::new(8, 2, BlockRank::Full, 1).unwrap();
        let count: usize = attn.params().iter().map(|p| p.len()).sum();
        assert_eq!(count as u64, crate::complexity::attention_params(2, 4));
        let attn = MultiHeadAttention::new(8, 2, BlockRank::LowRank(2), 1).unwrap();
        let count: usize = attn.params().iter().map(|p| p.len()).sum();
        // Concatenated factorization: 4 · r · (dm + dm) = 8·r·dm.
        assert_eq!(count, 8 * 2 * 8);

        let ffn = FeedForward::new(8, BlockRank::Full, 1).unwrap();
        let count: usize = ffn.params().iter().map(|p| p.len()).sum();
        assert_eq!(count as u64, crate::complexity::ffn_params(2, 4) + 4 * 8 + 8);
        let ffn = FeedForward::new(8, BlockRank::LowRank(2), 1).unwrap();
        let count: usize = ffn.params().iter().map(|p| p.len()).sum();
        assert_eq!(count as u64, crate::complexity::ffn_low_rank_params(2, 4, 2) + 4 * 8 + 8);
    }

    #[test]
    fn constructors_validate() {
        assert!(MultiHeadAttention::new(7, 2, BlockRank::Full, 1).is_err());
        assert!(MultiHeadAttention::new(8, 0, BlockRank::Full, 1).is_err());
        assert!(MultiHeadAttention::new(8, 2, BlockRank::LowRank(9), 1).is_err());
        assert!(FeedForward::new(0, BlockRank::Full, 1).is_err());
        assert!(FeedForward::new(8, BlockRank::LowRank(0), 1).is_err());
    }

    #[test]
    fn attention_rows_sum_to_one_is_invariant() {
        // Softmax rows of the cached attention matrix sum to 1.
        let mut attn = MultiHeadAttention::new(4, 2, BlockRank::Full, 14).unwrap();
        let x = Tensor::randn(&[2, 3, 4], 1.0, 15);
        let _ = attn.forward(&x, &x, false);
        let cache = attn.cache.as_ref().unwrap();
        for row in cache.attn.as_slice().chunks(3) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }
}
