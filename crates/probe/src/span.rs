//! Hierarchical spans, instant events, and the thread-local span stack.
//!
//! A span is opened by [`span`] (RAII, fully elided when the probe is
//! disabled) or [`timed_span`] (always measures; the measurement primitive
//! the trainers build their breakdowns from). Completed spans are recorded
//! as Chrome trace-event `"X"` records; [`event`] records instant `"i"`
//! events; [`emit_span`] records an already-measured or *modeled* duration
//! (the α–β communication model has no real wall-clock interval to wrap).
//!
//! Every thread gets a stable probe-local id on first use, plus a
//! `thread_name` metadata record carrying [`std::thread::Thread::name`] —
//! the pool's `puffer-pool-N` workers therefore label their own trace rows.

use crate::{enabled, now_rel, push_event};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A typed argument value attached to spans, events and metrics rows.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}

impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::U64(u64::from(v))
    }
}

impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::I64(v)
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}

impl From<f32> for ArgValue {
    fn from(v: f32) -> Self {
        ArgValue::F64(f64::from(v))
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// Argument list attached to a span or event.
pub type Args = Vec<(&'static str, ArgValue)>;

/// One recorded trace event, pre-serialization. Durations stay exact
/// (`std::time::Duration`) until export converts them to Chrome's
/// microsecond floats, so tests can compare span sums bit-for-bit against
/// trainer-side accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Chrome phase: `'X'` complete span, `'i'` instant, `'C'` counter,
    /// `'M'` metadata.
    pub phase: char,
    /// Event name.
    pub name: &'static str,
    /// Category (span grouping / trace-viewer filtering).
    pub cat: &'static str,
    /// Start time relative to the process-global probe clock.
    pub ts: Duration,
    /// Duration (zero for non-`'X'` phases).
    pub dur: Duration,
    /// Probe-local thread id.
    pub tid: u64,
    /// Typed arguments.
    pub args: Args,
}

impl TraceEvent {
    #[cfg(test)]
    pub(crate) fn metadata_for_test() -> Self {
        TraceEvent {
            phase: 'M',
            name: "thread_name",
            cat: "",
            ts: Duration::ZERO,
            dur: Duration::ZERO,
            tid: 0,
            args: Vec::new(),
        }
    }
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: Cell<u64> = const { Cell::new(0) };
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// This thread's probe-local id, assigning one (and recording the
/// `thread_name` metadata event) on first use.
pub(crate) fn current_tid() -> u64 {
    TID.with(|t| {
        let v = t.get();
        if v != 0 {
            return v;
        }
        let id = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        t.set(id);
        let name =
            std::thread::current().name().map_or_else(|| format!("thread-{id}"), str::to_string);
        push_event(TraceEvent {
            phase: 'M',
            name: "thread_name",
            cat: "",
            ts: Duration::ZERO,
            dur: Duration::ZERO,
            tid: id,
            args: vec![("name", ArgValue::Str(name))],
        });
        id
    })
}

/// Current nesting depth of the calling thread's span stack (0 outside
/// any span). Disabled spans do not contribute.
pub fn span_depth() -> usize {
    SPAN_STACK.with(|s| s.borrow().len())
}

fn stack_push(name: &'static str) {
    SPAN_STACK.with(|s| s.borrow_mut().push(name));
}

fn stack_pop(name: &'static str) {
    SPAN_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        // Guards are strictly LIFO per thread; a mismatch means a guard
        // crossed threads, which the !Send marker prevents.
        debug_assert_eq!(stack.last().copied(), Some(name), "span stack corrupted");
        stack.pop();
    });
}

struct ActiveSpan {
    cat: &'static str,
    name: &'static str,
    start: Duration,
    args: Args,
    /// Keeps the guard !Send: the span stack is thread-local.
    _not_send: std::marker::PhantomData<*const ()>,
}

/// RAII guard of an enabled [`span`]; records a `"X"` event on drop.
/// Holds nothing (and records nothing) when the probe is disabled.
#[must_use = "a span guard measures until it is dropped"]
pub struct SpanGuard(Option<ActiveSpan>);

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(a) = self.0.take() {
            stack_pop(a.name);
            let ts = a.start;
            push_event(TraceEvent {
                phase: 'X',
                name: a.name,
                cat: a.cat,
                ts,
                dur: now_rel().saturating_sub(ts),
                tid: current_tid(),
                args: a.args,
            });
        }
    }
}

/// Opens a span; fully elided (one atomic load, no clock read, no
/// allocation) when the probe is disabled.
#[inline]
pub fn span(cat: &'static str, name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard(None);
    }
    span_with(cat, name, Vec::new)
}

/// Opens a span with arguments built lazily — the closure only runs when
/// the probe is enabled, so argument formatting costs nothing otherwise.
#[inline]
pub fn span_with(cat: &'static str, name: &'static str, args: impl FnOnce() -> Args) -> SpanGuard {
    if !enabled() {
        return SpanGuard(None);
    }
    stack_push(name);
    SpanGuard(Some(ActiveSpan {
        cat,
        name,
        start: now_rel(),
        args: args(),
        _not_send: std::marker::PhantomData,
    }))
}

/// A span that **always measures** wall-clock, recording a trace event
/// only if the probe was enabled when it was opened. This is the
/// measurement primitive: the trainers' breakdown accounting takes its
/// durations from [`TimedSpan::finish`], so the numbers in
/// `EpochBreakdown` and the numbers in the trace are the same reads of
/// the same clock.
#[must_use = "a timed span measures until finish() or drop"]
pub struct TimedSpan {
    cat: &'static str,
    name: &'static str,
    start_instant: Instant,
    /// `Some(rel_start)` iff the probe was enabled at open time.
    start_rel: Option<Duration>,
    args: Args,
    _not_send: std::marker::PhantomData<*const ()>,
}

/// Opens a [`TimedSpan`]. Unlike [`span`], the clock is read even when
/// disabled — callers rely on the returned duration.
#[inline]
pub fn timed_span(cat: &'static str, name: &'static str) -> TimedSpan {
    timed_span_with(cat, name, Vec::new)
}

/// [`timed_span`] with lazily built arguments (closure runs only when
/// enabled).
#[inline]
pub fn timed_span_with(
    cat: &'static str,
    name: &'static str,
    args: impl FnOnce() -> Args,
) -> TimedSpan {
    let start_rel = if enabled() {
        stack_push(name);
        Some(now_rel())
    } else {
        None
    };
    TimedSpan {
        cat,
        name,
        start_instant: Instant::now(),
        start_rel,
        args: if start_rel.is_some() { args() } else { Vec::new() },
        _not_send: std::marker::PhantomData,
    }
}

impl TimedSpan {
    fn close(&mut self) -> Duration {
        let dur = self.start_instant.elapsed();
        if let Some(ts) = self.start_rel.take() {
            stack_pop(self.name);
            push_event(TraceEvent {
                phase: 'X',
                name: self.name,
                cat: self.cat,
                ts,
                dur,
                tid: current_tid(),
                args: std::mem::take(&mut self.args),
            });
        }
        dur
    }

    /// Closes the span and returns its measured duration.
    pub fn finish(mut self) -> Duration {
        self.close()
    }
}

impl Drop for TimedSpan {
    fn drop(&mut self) {
        if self.start_rel.is_some() {
            let _ = self.close();
        }
    }
}

/// A plain wall-clock stopwatch: measures, records nothing.
///
/// This is the sanctioned way to read the monotonic clock outside
/// `crates/probe` (the `no-wall-clock-outside-probe` lint confines
/// `std::time::Instant` to this crate). Reach for [`timed_span`] when the
/// interval belongs in the trace; reach for `Stopwatch` when it is a raw
/// measurement — a bench harness sampling loop, or a compressor's internal
/// encode/decode split that the trainer later surfaces via [`emit_span`]
/// without re-timing it (a `timed_span` there would double-record).
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Starts the stopwatch.
    #[must_use]
    pub fn start() -> Self {
        Stopwatch(Instant::now())
    }

    /// Wall-clock time elapsed since [`Stopwatch::start`].
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.0.elapsed()
    }
}

/// Records an instant (`"i"`) event — fault events, one-off markers.
#[inline]
pub fn event(cat: &'static str, name: &'static str, args: Args) {
    if !enabled() {
        return;
    }
    push_event(TraceEvent {
        phase: 'i',
        name,
        cat,
        ts: now_rel(),
        dur: Duration::ZERO,
        tid: current_tid(),
        args,
    });
}

/// Records a complete span of an already-known duration, backdated to end
/// now. This is how *modeled* intervals enter the trace — the α–β
/// communication time never happened on a real wire — and how durations
/// measured inside an opaque callee (a compressor's encode/decode split)
/// are surfaced without re-timing them.
#[inline]
pub fn emit_span(cat: &'static str, name: &'static str, dur: Duration, args: Args) {
    if !enabled() {
        return;
    }
    let end = now_rel();
    push_event(TraceEvent {
        phase: 'X',
        name,
        cat,
        ts: end.saturating_sub(dur),
        dur,
        tid: current_tid(),
        args,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{configure, reset, take_events, testutil, ProbeConfig};

    #[test]
    fn disabled_spans_record_nothing_and_skip_args() {
        let _guard = testutil::lock();
        reset();
        let g = span_with("t", "dead", || panic!("args must not be built when disabled"));
        drop(g);
        assert_eq!(span_depth(), 0);
        assert!(take_events().is_empty());
    }

    #[test]
    fn nested_spans_track_depth_and_record_in_close_order() {
        let _guard = testutil::lock();
        reset();
        configure(ProbeConfig::in_memory());
        {
            let _a = span("t", "outer");
            assert_eq!(span_depth(), 1);
            {
                let _b = span_with("t", "inner", || vec![("k", ArgValue::U64(7))]);
                assert_eq!(span_depth(), 2);
            }
            assert_eq!(span_depth(), 1);
        }
        assert_eq!(span_depth(), 0);
        let names: Vec<_> =
            take_events().into_iter().filter(|e| e.phase == 'X').map(|e| e.name).collect();
        assert_eq!(names, vec!["inner", "outer"], "inner closes first");
        reset();
    }

    #[test]
    fn timed_span_measures_even_disabled() {
        let _guard = testutil::lock();
        reset();
        let t = timed_span("t", "work");
        std::thread::sleep(Duration::from_millis(2));
        let dur = t.finish();
        assert!(dur >= Duration::from_millis(2));
        assert!(take_events().is_empty(), "disabled timed span records nothing");
    }

    #[test]
    fn timed_span_records_exact_duration_when_enabled() {
        let _guard = testutil::lock();
        reset();
        configure(ProbeConfig::in_memory());
        let t = timed_span("t", "work");
        let dur = t.finish();
        let events = take_events();
        let ev = events.iter().find(|e| e.name == "work").expect("span recorded");
        assert_eq!(ev.dur, dur, "trace carries the same duration finish() returned");
        reset();
    }

    #[test]
    fn emit_span_backdates_and_event_is_instant() {
        let _guard = testutil::lock();
        reset();
        configure(ProbeConfig::in_memory());
        emit_span("t", "modeled", Duration::from_millis(5), vec![("n", 1usize.into())]);
        event("fault", "crash_detected", vec![("worker", 2usize.into())]);
        let events = take_events();
        let m = events.iter().find(|e| e.name == "modeled").unwrap();
        assert_eq!(m.dur, Duration::from_millis(5));
        let c = events.iter().find(|e| e.name == "crash_detected").unwrap();
        assert_eq!(c.phase, 'i');
        reset();
    }

    #[test]
    fn stopwatch_measures_and_records_nothing() {
        let _guard = testutil::lock();
        reset();
        configure(ProbeConfig::in_memory());
        let sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(2));
        assert!(sw.elapsed() >= Duration::from_millis(2));
        assert!(take_events().is_empty(), "a stopwatch never touches the trace");
        reset();
    }

    #[test]
    fn worker_threads_get_named_metadata() {
        let _guard = testutil::lock();
        reset();
        configure(ProbeConfig::in_memory());
        std::thread::Builder::new()
            .name("probe-test-worker".into())
            .spawn(|| {
                let _s = span("t", "on-worker");
            })
            .unwrap()
            .join()
            .unwrap();
        let events = take_events();
        assert!(events.iter().any(|e| {
            e.phase == 'M'
                && e.args.iter().any(|(k, v)| {
                    *k == "name" && matches!(v, ArgValue::Str(s) if s == "probe-test-worker")
                })
        }));
        reset();
    }
}
