//! GEMM thread-scaling sweep for the packed `Optimized` kernel.
//!
//! Times square matmuls at 128/512/1024 across a thread grid and writes a
//! machine-readable record to `BENCH_gemm.json` at the workspace root
//! (plus a line-oriented copy under `results/`). This is the compute-side
//! companion to the communication benchmarks: the paper's end-to-end
//! speedups (Tables 4–6) are only credible if dense compute is not a
//! strawman, so this sweep documents exactly how fast the local GEMM
//! engine is on the machine that produced any given set of results.
//!
//! Usage: `cargo run --release -p puffer-bench --bin gemm_scaling`
//! (`PUFFER_GEMM_THREADS=1,2,4,8` overrides the thread grid).

use puffer_bench::record_result;
use puffer_probe::Stopwatch;
use puffer_tensor::matmul::{matmul_with_profile, MatmulProfile};
use puffer_tensor::{pool, Tensor};

/// Median-of-`reps` wall time for one `n×n×n` matmul, in seconds.
fn time_matmul(a: &Tensor, b: &Tensor, reps: usize) -> f64 {
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Stopwatch::start();
        let c = matmul_with_profile(a, b, MatmulProfile::Optimized).unwrap();
        samples.push(t0.elapsed().as_secs_f64());
        // Keep the result observable so the multiply cannot be elided.
        assert!(c.as_slice()[0].is_finite());
    }
    samples.sort_by(|x, y| x.partial_cmp(y).unwrap());
    samples[samples.len() / 2]
}

fn thread_grid() -> Vec<usize> {
    if let Ok(v) = std::env::var("PUFFER_GEMM_THREADS") {
        let grid: Vec<usize> =
            v.split(',').filter_map(|s| s.trim().parse().ok()).filter(|&t| t >= 1).collect();
        if !grid.is_empty() {
            return grid;
        }
    }
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut grid = vec![1];
    let mut t = 2;
    while t <= hw {
        grid.push(t);
        t *= 2;
    }
    if *grid.last().unwrap() != hw {
        grid.push(hw);
    }
    grid
}

fn main() {
    let sizes = [128usize, 512, 1024];
    let grid = thread_grid();
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let prev_threads = pool::num_threads();

    println!("GEMM thread scaling (packed Optimized kernel), {hw} hardware thread(s)");
    println!("{:>6} {:>8} {:>12} {:>10} {:>9}", "n", "threads", "median_s", "gflops", "speedup");

    let mut entries = Vec::new();
    for &n in &sizes {
        let a = Tensor::randn(&[n, n], 1.0, 1);
        let b = Tensor::randn(&[n, n], 1.0, 2);
        let reps = (5_000_000_000 / (2 * n * n * n)).clamp(3, 25);
        let flops = 2.0 * (n as f64).powi(3);
        let mut base = None;
        for &t in &grid {
            pool::set_num_threads(t);
            // Warm the pool and caches outside the timed region.
            let _ = matmul_with_profile(&a, &b, MatmulProfile::Optimized).unwrap();
            let secs = time_matmul(&a, &b, reps);
            let base_secs = *base.get_or_insert(secs);
            let speedup = base_secs / secs;
            let gflops = flops / secs / 1e9;
            println!("{n:>6} {t:>8} {secs:>12.6} {gflops:>10.2} {speedup:>8.2}x");
            record_result(
                "gemm_scaling",
                &format!(
                    "n={n} threads={t} median_s={secs:.6} gflops={gflops:.3} speedup={speedup:.3}"
                ),
            );
            entries.push(format!(
                "    {{ \"n\": {n}, \"threads\": {t}, \"median_s\": {secs:.6}, \"gflops\": {gflops:.3}, \"speedup_vs_1_thread\": {speedup:.3} }}"
            ));
        }
    }
    pool::set_num_threads(prev_threads);

    let json = format!(
        "{{\n  \"bench\": \"parallel_matmul\",\n  \"kernel\": \"packed MR=4 NR=8, row-partitioned\",\n  \"hardware_threads\": {hw},\n  \"note\": \"speedup_vs_1_thread is bounded by hardware_threads; on a single-core host the threaded rows measure dispatch overhead, not scaling\",\n  \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    let root = std::env::var("CARGO_MANIFEST_DIR")
        .map(|p| std::path::PathBuf::from(p).join("../.."))
        .unwrap_or_else(|_| std::path::PathBuf::from("."));
    let path = root.join("BENCH_gemm.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}
