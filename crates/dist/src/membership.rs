//! Elastic cluster membership: the epoch state machine behind mid-run
//! joins, voluntary leaves, and crash departures.
//!
//! PR 2's fault tolerance shrank the member set on crashes but the world
//! stayed static: dead workers stayed dead and nobody could be added. Real
//! deployments churn (PAPERS.md: *Is Network the Bottleneck of Distributed
//! Training?*), and low-rank state is exactly what makes cheap worker
//! catch-up feasible (AB-Training, arXiv 2405.01067). This module provides
//! the bookkeeping half of that story:
//!
//! * [`Membership`] — the authoritative active-member set, versioned by a
//!   monotonically increasing **epoch**. Every transition (join, rejoin,
//!   leave, crash) bumps the epoch and appends a [`MemberEvent`] to an
//!   audit log the trainer returns in its outcome.
//! * [`MembershipPlan`] — a deterministic schedule of joins and voluntary
//!   leaves by global step, mirroring [`crate::fault::FaultPlan`]'s
//!   builder style so churn scenarios are exactly reproducible.
//! * [`PoolWidthGuard`] — the RAII tensor-pool-width cap, relocated here
//!   from the trainer: the membership module is the **only** place in
//!   `puffer-dist` allowed to mutate the pool width (enforced by the
//!   `dist-pool-width-via-membership` lint rule), because the correct
//!   width is a function of the active member count and must be re-priced
//!   on every epoch change.
//!
//! The trainer's catch-up protocol (how a joiner obtains state and enters
//! the lockstep round) lives in [`crate::trainer`]; see DESIGN.md §11 for
//! the state machine diagram.

use crate::error::{DistError, DistResult};
use std::collections::{BTreeMap, BTreeSet};

/// Probe event category used for every membership transition.
pub const PROBE_CATEGORY: &str = "membership";
/// Probe event name for a worker entering the active set.
pub const EV_JOINED: &str = "member_joined";
/// Probe event name for a voluntary departure.
pub const EV_LEFT: &str = "member_left";
/// Probe event name for a crash departure.
pub const EV_CRASHED: &str = "member_crashed";
/// Probe event name for a joiner loading catch-up state.
pub const EV_CATCH_UP: &str = "catch_up";
/// JSONL metrics row type for membership transitions.
pub const ROW_TYPE: &str = "membership_event";

/// Lifecycle state of one worker id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberState {
    /// Participating in lockstep rounds.
    Active,
    /// Retired voluntarily at the recorded step.
    Left(usize),
    /// Detected dead at the recorded step.
    Crashed(usize),
}

/// What kind of transition a [`MemberEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberEventKind {
    /// A fresh worker id entered the active set.
    Join,
    /// A previously departed worker id re-entered the active set.
    Rejoin,
    /// A worker retired voluntarily.
    Leave,
    /// A worker was detected dead.
    Crash,
}

impl MemberEventKind {
    /// Stable lowercase name (used in probe/JSONL attribution).
    pub fn name(self) -> &'static str {
        match self {
            MemberEventKind::Join => "join",
            MemberEventKind::Rejoin => "rejoin",
            MemberEventKind::Leave => "leave",
            MemberEventKind::Crash => "crash",
        }
    }
}

/// One membership transition, with full worker + step + epoch attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemberEvent {
    /// The worker id the transition concerns.
    pub worker: usize,
    /// Global step at which the transition took effect.
    pub step: usize,
    /// Membership epoch *after* the transition.
    pub epoch: u64,
    /// What happened.
    pub kind: MemberEventKind,
}

/// The active-member set, versioned by epoch.
///
/// Transitions never reuse an epoch: each successful [`Membership::join`],
/// [`Membership::leave`], or [`Membership::crash`] increments it, so two
/// views with equal epochs are guaranteed to hold identical member sets —
/// the invariant the trainer's per-step `Step` broadcast relies on to
/// keep worker-side shard caches coherent.
#[derive(Debug, Clone)]
pub struct Membership {
    epoch: u64,
    states: BTreeMap<usize, MemberState>,
    log: Vec<MemberEvent>,
}

impl Membership {
    /// A fresh membership at epoch 0 with `initial` all active.
    pub fn new<I: IntoIterator<Item = usize>>(initial: I) -> Self {
        Self::with_epoch(initial, 0)
    }

    /// A membership restored from a checkpoint: `initial` active at
    /// `epoch` (the resumed run continues the epoch sequence rather than
    /// restarting it, so probe attribution stays monotone across resume).
    pub fn with_epoch<I: IntoIterator<Item = usize>>(initial: I, epoch: u64) -> Self {
        let states = initial.into_iter().map(|w| (w, MemberState::Active)).collect();
        Membership { epoch, states, log: Vec::new() }
    }

    /// Current membership epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Active member ids in ascending order.
    pub fn active(&self) -> Vec<usize> {
        self.states
            .iter()
            .filter(|(_, s)| matches!(s, MemberState::Active))
            .map(|(&w, _)| w)
            .collect()
    }

    /// Number of active members.
    pub fn active_count(&self) -> usize {
        self.states.values().filter(|s| matches!(s, MemberState::Active)).count()
    }

    /// Whether `worker` is currently active.
    pub fn is_active(&self, worker: usize) -> bool {
        matches!(self.states.get(&worker), Some(MemberState::Active))
    }

    /// The recorded lifecycle state of `worker`, if it was ever a member.
    pub fn state_of(&self, worker: usize) -> Option<MemberState> {
        self.states.get(&worker).copied()
    }

    /// `worker`'s rank within the ascending active set (its shard index).
    pub fn rank_of(&self, worker: usize) -> Option<usize> {
        if !self.is_active(worker) {
            return None;
        }
        Some(
            self.states
                .iter()
                .filter(|(_, s)| matches!(s, MemberState::Active))
                .take_while(|(&w, _)| w < worker)
                .count(),
        )
    }

    /// Admits `worker` at `step`. A worker id seen before (left or
    /// crashed) produces a [`MemberEventKind::Rejoin`], a fresh id a
    /// [`MemberEventKind::Join`]. Returns the new epoch.
    ///
    /// # Errors
    ///
    /// [`DistError::Membership`] if `worker` is already active — the plan
    /// asked to join a member that never departed.
    pub fn join(&mut self, worker: usize, step: usize) -> DistResult<u64> {
        let kind = match self.states.get(&worker) {
            Some(MemberState::Active) => {
                return Err(DistError::Membership {
                    reason: format!("worker {worker} cannot join at step {step}: already active"),
                });
            }
            Some(_) => MemberEventKind::Rejoin,
            None => MemberEventKind::Join,
        };
        self.states.insert(worker, MemberState::Active);
        Ok(self.advance(worker, step, kind))
    }

    /// Retires `worker` voluntarily at `step`. Returns the new epoch.
    ///
    /// # Errors
    ///
    /// [`DistError::Membership`] if `worker` is not active.
    pub fn leave(&mut self, worker: usize, step: usize) -> DistResult<u64> {
        if !self.is_active(worker) {
            return Err(DistError::Membership {
                reason: format!("worker {worker} cannot leave at step {step}: not active"),
            });
        }
        self.states.insert(worker, MemberState::Left(step));
        Ok(self.advance(worker, step, MemberEventKind::Leave))
    }

    /// Records `worker` detected dead at `step`. Idempotent for an already
    /// departed worker (detection can race a scheduled leave); returns the
    /// (possibly unchanged) epoch.
    pub fn crash(&mut self, worker: usize, step: usize) -> u64 {
        if !self.is_active(worker) {
            return self.epoch;
        }
        self.states.insert(worker, MemberState::Crashed(step));
        self.advance(worker, step, MemberEventKind::Crash)
    }

    /// The transition audit log, in occurrence order.
    pub fn log(&self) -> &[MemberEvent] {
        &self.log
    }

    /// Consumes the membership, returning the audit log.
    pub fn into_log(self) -> Vec<MemberEvent> {
        self.log
    }

    fn advance(&mut self, worker: usize, step: usize, kind: MemberEventKind) -> u64 {
        self.epoch += 1;
        self.log.push(MemberEvent { worker, step, epoch: self.epoch, kind });
        self.epoch
    }
}

/// A deterministic schedule of joins and voluntary leaves by global step.
///
/// Joins are *requests*: a join scheduled at step `s` is admitted at the
/// first step `u ≥ max(s, start + 1)` for which the trainer holds catch-up
/// state (a post-verdict snapshot of the previous round), so churn can
/// never tear a round in half. Leaves take effect exactly at their step:
/// the leaver is retired before the step-`u` round begins and contributes
/// nothing to it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MembershipPlan {
    joins: BTreeMap<usize, BTreeSet<usize>>,
    leaves: BTreeMap<usize, BTreeSet<usize>>,
}

impl MembershipPlan {
    /// A plan with no churn at all.
    pub fn none() -> Self {
        Self::default()
    }

    /// Schedules `worker` to join (or rejoin) at `step`.
    pub fn with_join(mut self, worker: usize, step: usize) -> Self {
        self.joins.entry(step).or_default().insert(worker);
        self
    }

    /// Schedules `worker` to leave voluntarily at `step`.
    pub fn with_leave(mut self, worker: usize, step: usize) -> Self {
        self.leaves.entry(step).or_default().insert(worker);
        self
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.joins.is_empty() && self.leaves.is_empty()
    }

    /// Every worker id the plan ever joins.
    pub fn join_ids(&self) -> BTreeSet<usize> {
        self.joins.values().flatten().copied().collect()
    }

    /// Every worker id the plan ever retires.
    pub fn leave_ids(&self) -> BTreeSet<usize> {
        self.leaves.values().flatten().copied().collect()
    }

    /// All `(worker, scheduled_step)` join requests with step ≤ `through`.
    pub fn joins_through(&self, through: usize) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.joins.range(..=through).flat_map(|(&s, ws)| ws.iter().map(move |&w| (w, s)))
    }

    /// Worker ids scheduled to leave exactly at `step`.
    pub fn leaves_at(&self, step: usize) -> impl Iterator<Item = usize> + '_ {
        self.leaves.get(&step).into_iter().flatten().copied()
    }

    /// Validates internal consistency: a worker may not be scheduled to
    /// both join and leave at the same step (the ordering would be
    /// ambiguous), and join steps must leave at least one prior round to
    /// snapshot catch-up state from (step ≥ 1).
    ///
    /// # Errors
    ///
    /// [`DistError::Membership`] describing the first violation.
    pub fn validate(&self) -> DistResult<()> {
        if let Some(ws) = self.joins.get(&0) {
            if let Some(&w) = ws.iter().next() {
                return Err(DistError::Membership {
                    reason: format!(
                        "worker {w} cannot join at step 0: there is no prior round to \
                         snapshot catch-up state from (make it an initial member instead)"
                    ),
                });
            }
        }
        for (&step, joiners) in &self.joins {
            if let Some(leavers) = self.leaves.get(&step) {
                if let Some(&w) = joiners.intersection(leavers).next() {
                    return Err(DistError::Membership {
                        reason: format!(
                            "worker {w} is scheduled to both join and leave at step {step}"
                        ),
                    });
                }
            }
        }
        Ok(())
    }
}

/// Restores the tensor pool width when the run ends, even on an error
/// path (the old trainer leaked the cap when a worker panicked), and
/// re-prices it on every membership epoch change via
/// [`PoolWidthGuard::recap`].
///
/// Public so integration tests can exercise the width-restore contract
/// (including under panics and nested probe spans) directly.
pub struct PoolWidthGuard {
    prev: usize,
}

impl PoolWidthGuard {
    /// Caps the pool so `workers × pool threads` stays within the
    /// hardware parallelism. Thread count never changes numerical results
    /// (the pool's kernels are bitwise deterministic), only contention.
    pub fn cap_for(n_workers: usize) -> Self {
        let prev = puffer_tensor::pool::num_threads();
        let mut guard = PoolWidthGuard { prev };
        guard.recap(n_workers);
        guard
    }

    /// Re-prices the cap for a changed active member count (join or
    /// departure): the freed — or newly contended — hardware threads are
    /// redistributed across the members that remain.
    pub fn recap(&mut self, n_workers: usize) {
        let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
        puffer_tensor::pool::set_num_threads((hw / n_workers.max(1)).max(1).min(self.prev));
    }
}

impl Drop for PoolWidthGuard {
    fn drop(&mut self) {
        puffer_tensor::pool::set_num_threads(self.prev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_advances_on_every_transition() {
        let mut m = Membership::new(0..3);
        assert_eq!(m.epoch(), 0);
        assert_eq!(m.active(), vec![0, 1, 2]);

        m.crash(1, 4);
        assert_eq!(m.epoch(), 1);
        assert!(!m.is_active(1));

        m.join(3, 6).unwrap();
        assert_eq!(m.epoch(), 2);
        assert_eq!(m.active(), vec![0, 2, 3]);

        m.leave(0, 7).unwrap();
        assert_eq!(m.epoch(), 3);
        assert_eq!(m.active(), vec![2, 3]);

        let kinds: Vec<_> = m.log().iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![MemberEventKind::Crash, MemberEventKind::Join, MemberEventKind::Leave]
        );
        assert!(m.log().iter().zip(1u64..).all(|(e, i)| e.epoch == i));
    }

    #[test]
    fn rejoin_is_distinguished_from_join() {
        let mut m = Membership::new(0..2);
        m.crash(1, 2);
        m.join(1, 5).unwrap();
        assert_eq!(m.log().last().unwrap().kind, MemberEventKind::Rejoin);
        assert!(m.is_active(1));
        // A worker that never departed cannot join again.
        assert!(matches!(m.join(1, 6), Err(DistError::Membership { .. })));
    }

    #[test]
    fn leave_requires_active_and_crash_is_idempotent() {
        let mut m = Membership::new(0..2);
        assert!(matches!(m.leave(7, 1), Err(DistError::Membership { .. })));
        m.leave(0, 1).unwrap();
        let e = m.epoch();
        // Crashing an already departed worker changes nothing.
        assert_eq!(m.crash(0, 2), e);
        assert_eq!(m.log().len(), 1);
        assert_eq!(m.state_of(0), Some(MemberState::Left(1)));
    }

    #[test]
    fn rank_follows_ascending_active_ids() {
        let mut m = Membership::new([0, 2, 5]);
        assert_eq!(m.rank_of(0), Some(0));
        assert_eq!(m.rank_of(2), Some(1));
        assert_eq!(m.rank_of(5), Some(2));
        assert_eq!(m.rank_of(1), None);
        m.crash(2, 1);
        assert_eq!(m.rank_of(5), Some(1));
    }

    #[test]
    fn restored_membership_continues_the_epoch_sequence() {
        let mut m = Membership::with_epoch([0, 2], 7);
        assert_eq!(m.epoch(), 7);
        m.join(4, 9).unwrap();
        assert_eq!(m.epoch(), 8);
    }

    #[test]
    fn plan_builder_and_queries() {
        let p =
            MembershipPlan::none().with_join(4, 3).with_join(5, 8).with_leave(0, 6).with_join(1, 8);
        assert!(!p.is_empty());
        assert!(MembershipPlan::none().is_empty());
        assert_eq!(p.join_ids(), BTreeSet::from([1, 4, 5]));
        let due: Vec<_> = p.joins_through(8).collect();
        assert_eq!(due, vec![(4, 3), (1, 8), (5, 8)]);
        assert_eq!(p.joins_through(2).count(), 0);
        assert_eq!(p.leaves_at(6).collect::<Vec<_>>(), vec![0]);
        assert_eq!(p.leaves_at(5).count(), 0);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn plan_rejects_step_zero_join_and_same_step_join_leave() {
        let p = MembershipPlan::none().with_join(3, 0);
        assert!(matches!(p.validate(), Err(DistError::Membership { .. })));
        let p = MembershipPlan::none().with_join(3, 5).with_leave(3, 5);
        assert!(matches!(p.validate(), Err(DistError::Membership { .. })));
    }

    #[test]
    fn pool_guard_recaps_and_restores_width() {
        let before = puffer_tensor::pool::num_threads();
        {
            let mut g = PoolWidthGuard::cap_for(64);
            assert!(puffer_tensor::pool::num_threads() <= before);
            // Shrinking the member set may widen the per-member cap, but
            // never beyond the pre-run width.
            g.recap(1);
            assert!(puffer_tensor::pool::num_threads() <= before);
        }
        assert_eq!(puffer_tensor::pool::num_threads(), before);
    }
}
