//! Flat gradient-buffer packing.
//!
//! The paper's prototype packs **all** gradient tensors into one flat
//! buffer and issues a single allreduce per iteration (§4.1), because each
//! collective call pays a latency term proportional to the node count
//! (Thakur et al. 2005) and factorization doubles the number of layers.
//! This module provides the pack/unpack primitives plus the layout
//! bookkeeping.

use puffer_tensor::Tensor;

/// The shape layout of a packed buffer, needed to unpack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackLayout {
    shapes: Vec<Vec<usize>>,
    offsets: Vec<usize>,
    total: usize,
}

impl PackLayout {
    /// Derives the layout from a tensor list.
    pub fn of(tensors: &[Tensor]) -> Self {
        let mut offsets = Vec::with_capacity(tensors.len());
        let mut total = 0;
        for t in tensors {
            offsets.push(total);
            total += t.len();
        }
        PackLayout { shapes: tensors.iter().map(|t| t.shape().to_vec()).collect(), offsets, total }
    }

    /// Total number of f32 elements in the packed buffer.
    pub fn total_len(&self) -> usize {
        self.total
    }

    /// Number of tensors.
    pub fn tensor_count(&self) -> usize {
        self.shapes.len()
    }

    /// Packed size in bytes.
    pub fn total_bytes(&self) -> usize {
        self.total * std::mem::size_of::<f32>()
    }
}

/// Packs a tensor list into one flat buffer.
pub fn pack(tensors: &[Tensor]) -> (Tensor, PackLayout) {
    let layout = PackLayout::of(tensors);
    let mut buf = Tensor::zeros(&[layout.total]);
    for (t, &off) in tensors.iter().zip(&layout.offsets) {
        buf.as_mut_slice()[off..off + t.len()].copy_from_slice(t.as_slice());
    }
    (buf, layout)
}

/// Unpacks a flat buffer back into tensors.
///
/// # Panics
///
/// Panics if the buffer length does not match the layout.
pub fn unpack(buf: &Tensor, layout: &PackLayout) -> Vec<Tensor> {
    assert_eq!(buf.len(), layout.total, "buffer/layout length mismatch");
    layout
        .shapes
        .iter()
        .zip(&layout.offsets)
        .map(|(shape, &off)| {
            let len: usize = shape.iter().product();
            Tensor::from_vec(buf.as_slice()[off..off + len].to_vec(), shape)
                .expect("layout shapes are consistent")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let tensors = vec![
            Tensor::randn(&[2, 3], 1.0, 1),
            Tensor::randn(&[4], 1.0, 2),
            Tensor::randn(&[1, 2, 2], 1.0, 3),
        ];
        let (buf, layout) = pack(&tensors);
        assert_eq!(buf.len(), 14);
        assert_eq!(layout.total_bytes(), 56);
        assert_eq!(layout.tensor_count(), 3);
        let back = unpack(&buf, &layout);
        assert_eq!(back, tensors);
    }

    #[test]
    fn empty_list() {
        let (buf, layout) = pack(&[]);
        assert_eq!(buf.len(), 0);
        assert!(unpack(&buf, &layout).is_empty());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn unpack_validates() {
        let (_, layout) = pack(&[Tensor::zeros(&[3])]);
        let _ = unpack(&Tensor::zeros(&[2]), &layout);
    }
}
