#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, and the full test suite.
# Referenced from ROADMAP.md; run before every PR.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "== cargo test -q"
cargo test -q

echo "All checks passed."
