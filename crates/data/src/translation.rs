//! Synthetic sequence-to-sequence translation task — the WMT'16 stand-in.
//!
//! A "translation" is a deterministic function of the source sentence: each
//! source token maps through a fixed random bijection into the target
//! vocabulary and the sentence order is reversed. Reversal forces the model
//! to use attention over the whole source (a classic seq2seq diagnostic),
//! while the bijection gives a clean learnable signal measurable with real
//! perplexity and BLEU.
//!
//! Special tokens follow the reference Transformer implementation the paper
//! builds on: `PAD = 0`, `BOS = 1`, `EOS = 2`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Padding token id.
pub const PAD: usize = 0;
/// Beginning-of-sequence token id.
pub const BOS: usize = 1;
/// End-of-sequence token id.
pub const EOS: usize = 2;
/// First id available for content tokens.
pub const FIRST_CONTENT: usize = 3;

/// Configuration of the synthetic translation dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TranslationConfig {
    /// Total vocabulary size (shared source/target, includes specials).
    pub vocab: usize,
    /// Minimum content length of a sentence.
    pub min_len: usize,
    /// Maximum content length of a sentence.
    pub max_len: usize,
    /// Training pairs.
    pub train_pairs: usize,
    /// Validation pairs.
    pub valid_pairs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl TranslationConfig {
    /// A small default.
    pub fn small(seed: u64) -> Self {
        TranslationConfig {
            vocab: 64,
            min_len: 4,
            max_len: 10,
            train_pairs: 2_000,
            valid_pairs: 200,
            seed,
        }
    }
}

/// One padded batch: `(source rows, target rows)`, each `[batch][max_len]`.
pub type TokenBatch = (Vec<Vec<usize>>, Vec<Vec<usize>>);

/// A sentence pair: source and target token sequences, both wrapped in
/// `BOS … EOS`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SentencePair {
    /// Source tokens, `BOS c₁ … c_n EOS`.
    pub source: Vec<usize>,
    /// Target tokens, `BOS m(c_n) … m(c₁) EOS`.
    pub target: Vec<usize>,
}

/// The generated dataset.
#[derive(Debug, Clone)]
pub struct TranslationDataset {
    config: TranslationConfig,
    mapping: Vec<usize>,
    train: Vec<SentencePair>,
    valid: Vec<SentencePair>,
}

impl TranslationDataset {
    /// Generates the dataset deterministically.
    ///
    /// # Panics
    ///
    /// Panics if the vocabulary is too small for the special tokens or
    /// `min_len > max_len`.
    pub fn generate(config: TranslationConfig) -> Self {
        assert!(config.vocab > FIRST_CONTENT + 1, "vocabulary too small");
        assert!(config.min_len >= 1 && config.min_len <= config.max_len, "bad length range");
        let mut rng = SmallRng::seed_from_u64(config.seed);
        // Random bijection over content tokens.
        let content = config.vocab - FIRST_CONTENT;
        let mut perm: Vec<usize> = (0..content).collect();
        for i in (1..content).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        let mapping: Vec<usize> = perm.iter().map(|&p| p + FIRST_CONTENT).collect();

        let gen_pairs = |count: usize, rng: &mut SmallRng| -> Vec<SentencePair> {
            (0..count)
                .map(|_| {
                    let len = rng.gen_range(config.min_len..=config.max_len);
                    let content: Vec<usize> =
                        (0..len).map(|_| rng.gen_range(FIRST_CONTENT..config.vocab)).collect();
                    let mut source = vec![BOS];
                    source.extend(&content);
                    source.push(EOS);
                    let mut target = vec![BOS];
                    target.extend(content.iter().rev().map(|&c| mapping[c - FIRST_CONTENT]));
                    target.push(EOS);
                    SentencePair { source, target }
                })
                .collect()
        };
        let train = gen_pairs(config.train_pairs, &mut rng);
        let valid = gen_pairs(config.valid_pairs, &mut rng);
        TranslationDataset { config, mapping, train, valid }
    }

    /// The configuration.
    pub fn config(&self) -> &TranslationConfig {
        &self.config
    }

    /// Training pairs.
    pub fn train_pairs(&self) -> &[SentencePair] {
        &self.train
    }

    /// Validation pairs.
    pub fn valid_pairs(&self) -> &[SentencePair] {
        &self.valid
    }

    /// The ground-truth token mapping (content token → translated token),
    /// exposed for oracle tests.
    pub fn mapping(&self) -> &[usize] {
        &self.mapping
    }

    /// Groups pairs into padded batches: returns
    /// `(source rows, target rows)` where each row set is
    /// `[batch][max_len]` padded with [`PAD`].
    pub fn batches(&self, pairs: &[SentencePair], batch_size: usize) -> Vec<TokenBatch> {
        assert!(batch_size > 0, "batch size must be nonzero");
        pairs
            .chunks(batch_size)
            .map(|chunk| {
                let smax = chunk.iter().map(|p| p.source.len()).max().unwrap_or(0);
                let tmax = chunk.iter().map(|p| p.target.len()).max().unwrap_or(0);
                let pad_to = |seq: &[usize], len: usize| {
                    let mut v = seq.to_vec();
                    v.resize(len, PAD);
                    v
                };
                (
                    chunk.iter().map(|p| pad_to(&p.source, smax)).collect(),
                    chunk.iter().map(|p| pad_to(&p.target, tmax)).collect(),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = TranslationDataset::generate(TranslationConfig::small(7));
        let b = TranslationDataset::generate(TranslationConfig::small(7));
        assert_eq!(a.train_pairs()[0], b.train_pairs()[0]);
    }

    #[test]
    fn target_is_mapped_reversal() {
        let d = TranslationDataset::generate(TranslationConfig::small(8));
        for pair in d.train_pairs().iter().take(20) {
            let content = &pair.source[1..pair.source.len() - 1];
            let expected: Vec<usize> =
                content.iter().rev().map(|&c| d.mapping()[c - FIRST_CONTENT]).collect();
            assert_eq!(&pair.target[1..pair.target.len() - 1], &expected[..]);
        }
    }

    #[test]
    fn mapping_is_bijection() {
        let d = TranslationDataset::generate(TranslationConfig::small(9));
        let mut seen = vec![false; d.config().vocab];
        for &m in d.mapping() {
            assert!(m >= FIRST_CONTENT && m < d.config().vocab);
            assert!(!seen[m], "duplicate image {m}");
            seen[m] = true;
        }
    }

    #[test]
    fn sentences_are_framed() {
        let d = TranslationDataset::generate(TranslationConfig::small(10));
        for p in d.valid_pairs() {
            assert_eq!(p.source[0], BOS);
            assert_eq!(*p.source.last().unwrap(), EOS);
            assert_eq!(p.target[0], BOS);
            assert_eq!(*p.target.last().unwrap(), EOS);
        }
    }

    #[test]
    fn batches_are_padded_uniformly() {
        let d = TranslationDataset::generate(TranslationConfig::small(11));
        let batches = d.batches(d.train_pairs(), 16);
        for (src, tgt) in &batches {
            let slen = src[0].len();
            assert!(src.iter().all(|s| s.len() == slen));
            let tlen = tgt[0].len();
            assert!(tgt.iter().all(|t| t.len() == tlen));
        }
        let total: usize = batches.iter().map(|(s, _)| s.len()).sum();
        assert_eq!(total, 2_000);
    }

    #[test]
    fn oracle_translation_scores_perfect_bleu() {
        // Translating with the ground-truth rule gives BLEU 100.
        let d = TranslationDataset::generate(TranslationConfig::small(12));
        let hyps: Vec<Vec<usize>> = d
            .valid_pairs()
            .iter()
            .map(|p| {
                let content = &p.source[1..p.source.len() - 1];
                content.iter().rev().map(|&c| d.mapping()[c - FIRST_CONTENT]).collect()
            })
            .collect();
        let refs: Vec<Vec<usize>> =
            d.valid_pairs().iter().map(|p| p.target[1..p.target.len() - 1].to_vec()).collect();
        assert!((crate::bleu::bleu4_percent(&hyps, &refs) - 100.0).abs() < 1e-6);
    }
}
