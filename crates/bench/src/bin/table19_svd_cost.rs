//! **Table 19** (appendix G): wall-clock cost of the one-off SVD
//! factorization for every experimented model.
//!
//! The paper's point: SVD is "computationally heavy" but happens **once**,
//! so it is negligible against total training (2.3 s for ResNet-50, ~0.17%
//! of an epoch). We time the same factorization step on our bench-scale
//! models (5 trials, as in the paper) and report it next to a measured
//! training-epoch time for the ratio.

use puffer_bench::scale::RunScale;
use puffer_bench::table::Table;
use puffer_bench::{record_result, setups};
use puffer_models::resnet::ResNetHybridPlan;
use puffer_models::units::FactorInit;
use puffer_nn::layer::{Layer, Mode};
use puffer_nn::loss::softmax_cross_entropy;
use puffer_probe::Stopwatch;

fn time_trials<F: FnMut()>(mut f: F, trials: usize) -> (f64, f64) {
    let mut times = Vec::with_capacity(trials);
    for _ in 0..trials {
        let t0 = Stopwatch::start();
        f();
        times.push(t0.elapsed().as_secs_f64());
    }
    let mean = times.iter().sum::<f64>() / trials as f64;
    let var = times.iter().map(|t| (t - mean) * (t - mean)).sum::<f64>() / trials as f64;
    (mean, var.sqrt())
}

fn main() {
    let scale = RunScale::from_env();
    let trials = scale.pick(2, 5);
    let data = setups::cifar_data(scale);
    println!("== Table 19: SVD factorization cost ({trials} trials each) ==\n");

    let mut t = Table::new(vec!["Method", "SVD time (sec.)", "paper (full scale)"]);

    let resnet50 = setups::resnet50(20, 1);
    let (m, s) = time_trials(
        || {
            let _ = resnet50.to_hybrid(&ResNetHybridPlan::resnet50_paper(), FactorInit::WarmStart);
        },
        trials,
    );
    t.row(vec!["ResNet-50".into(), format!("{m:.4} ± {s:.4}"), "2.2972 ± 0.0519".into()]);
    record_result("table19_svd", &format!("resnet50 {m:.4}±{s:.4}"));

    let wide = setups::wide_resnet50(20, 1);
    let (m, s) = time_trials(
        || {
            let _ = wide.to_hybrid(&ResNetHybridPlan::resnet50_paper(), FactorInit::WarmStart);
        },
        trials,
    );
    t.row(vec!["WideResNet-50-2".into(), format!("{m:.4} ± {s:.4}"), "4.8700 ± 0.0859".into()]);
    record_result("table19_svd", &format!("wide_resnet50 {m:.4}±{s:.4}"));

    let vgg = setups::vgg19(10, 1);
    let (m, s) = time_trials(
        || {
            let _ = vgg.to_hybrid(10, 0.25, FactorInit::WarmStart);
        },
        trials,
    );
    t.row(vec!["VGG-19-BN".into(), format!("{m:.4} ± {s:.4}"), "1.5198 ± 0.0113".into()]);
    record_result("table19_svd", &format!("vgg19 {m:.4}±{s:.4}"));

    let resnet18 = setups::resnet18(10, 1);
    let (m18, s18) = time_trials(
        || {
            let _ = resnet18.to_hybrid(&ResNetHybridPlan::resnet18_paper(), FactorInit::WarmStart);
        },
        trials,
    );
    t.row(vec!["ResNet-18".into(), format!("{m18:.4} ± {s18:.4}"), "1.3244 ± 0.0201".into()]);
    record_result("table19_svd", &format!("resnet18 {m18:.4}±{s18:.4}"));

    let lstm = setups::lstm_lm(200, 1);
    let (m, s) = time_trials(
        || {
            let _ = lstm.to_low_rank(setups::LSTM_RANK, true);
        },
        trials,
    );
    t.row(vec!["LSTM".into(), format!("{m:.4} ± {s:.4}"), "6.5791 ± 0.0445".into()]);
    record_result("table19_svd", &format!("lstm {m:.4}±{s:.4}"));

    let transformer = setups::transformer(64, None, 1);
    let (m, s) = time_trials(
        || {
            let _ = transformer.to_hybrid(setups::TRANSFORMER_RANK, true);
        },
        trials,
    );
    t.row(vec!["Transformer".into(), format!("{m:.4} ± {s:.4}"), "5.4104 ± 0.0532".into()]);
    record_result("table19_svd", &format!("transformer {m:.4}±{s:.4}"));

    t.print();

    // Ratio against one measured ResNet-18 training epoch.
    let mut net = setups::resnet18(10, 1);
    let t0 = Stopwatch::start();
    for (images, labels) in data.train_batches(32, 0) {
        net.zero_grad();
        let logits = net.forward(&images, Mode::Train);
        let (_, dl) = softmax_cross_entropy(&logits, &labels, 0.0).expect("loss");
        let _ = net.backward(&dl);
    }
    let epoch = t0.elapsed().as_secs_f64();
    println!(
        "\nResNet-18: SVD = {m18:.4}s vs one training epoch = {epoch:.2}s ({:.2}% — the paper reports 0.17% for ResNet-50)",
        m18 / epoch * 100.0
    );
}
