//! Satellite guarantee for the *overlapped* path: with real bucketing
//! (several buckets per round), the per-bucket collective spans still sum
//! to `EpochBreakdown.comm` **exactly**, and their `exposed_ns` args sum
//! to `EpochBreakdown.comm_exposed` — so puffer-insight can price total
//! wire time and critical-path (exposed) time from the same trace without
//! double-counting comm that backward hid.
//!
//! One test only: the probe sink is process-global.

use puffer_compress::none::NoCompression;
use puffer_dist::cost::{ClusterProfile, CollectiveAlgo};
use puffer_dist::trainer::{train_data_parallel_with, DistConfig, RunOptions};
use puffer_nn::activation::Relu;
use puffer_nn::linear::Linear;
use puffer_nn::Sequential;
use puffer_probe as probe;
use puffer_tensor::Tensor;
use std::time::Duration;

/// ~532k parameters (~2.03 MiB) so a 1 MiB bucket target yields ≥2 buckets.
fn big_mlp(seed: u64) -> Sequential {
    Sequential::new(vec![
        Box::new(Linear::new(6, 512, true, seed).unwrap()),
        Box::new(Relu::new()),
        Box::new(Linear::new(512, 1024, true, seed + 1).unwrap()),
        Box::new(Relu::new()),
        Box::new(Linear::new(1024, 3, true, seed + 2).unwrap()),
    ])
}

fn batches(n: usize, rows: usize) -> Vec<(Tensor, Vec<usize>)> {
    (0..n)
        .map(|b| {
            let x = Tensor::randn(&[rows, 6], 1.0, 700 + b as u64);
            let labels = (0..rows).map(|i| (i + b) % 3).collect();
            (x, labels)
        })
        .collect()
}

/// Sums the durations of every `dist`-category complete span with `name`.
fn span_sum(events: &[probe::TraceEvent], name: &str) -> Duration {
    events
        .iter()
        .filter(|e| e.phase == 'X' && e.cat == "dist" && e.name == name)
        .map(|e| e.dur)
        .sum()
}

fn arg_u64(e: &probe::TraceEvent, key: &str) -> Option<u64> {
    e.args.iter().find_map(|(k, v)| match v {
        probe::ArgValue::U64(n) if *k == key => Some(*n),
        _ => None,
    })
}

#[test]
fn overlapped_spans_reconcile_total_and_exposed_comm_exactly() {
    probe::reset();
    probe::configure(probe::ProbeConfig::in_memory());

    let cfg = DistConfig {
        workers: 2,
        lr: 0.05,
        momentum: 0.9,
        weight_decay: 0.0,
        profile: ClusterProfile::p3_like(2),
    };
    let opts = RunOptions {
        bucket_bytes: Some(1 << 20),
        collective: Some(CollectiveAlgo::Ring),
        ..RunOptions::default()
    };
    let mut comp = NoCompression::new();
    let out = train_data_parallel_with(|_| big_mlp(41), &batches(3, 8), &mut comp, &cfg, &opts)
        .expect("clean overlapped run");

    let events = probe::take_events();
    let b = out.breakdown;

    // Span sums reproduce every breakdown phase exactly — Duration equality.
    assert_eq!(span_sum(&events, "compute"), b.compute);
    assert_eq!(span_sum(&events, "encode"), b.encode);
    assert_eq!(span_sum(&events, "allreduce"), b.comm, "bucket spans ≠ breakdown.comm");
    assert_eq!(span_sum(&events, "decode"), b.decode);
    assert_eq!(b.total(), b.compute + b.encode + b.comm + b.decode);

    // Exposed accounting: Σ exposed_ns == comm_exposed, a subset of comm.
    let collective: Vec<_> = events
        .iter()
        .filter(|e| e.phase == 'X' && e.cat == "dist" && e.name == "allreduce")
        .collect();
    let exposed: u64 = collective.iter().map(|e| arg_u64(e, "exposed_ns").unwrap()).sum();
    assert_eq!(Duration::from_nanos(exposed), b.comm_exposed, "Σ exposed_ns ≠ comm_exposed");
    assert!(b.comm_exposed <= b.comm);
    assert!(b.comm_exposed < b.comm, "a multi-bucket clean run must hide some comm");

    // Every collective span is a bucket span, and the model really split:
    // rounds × n_buckets spans with n_buckets ≥ 2 at a 1 MiB target.
    let n_buckets = collective.iter().map(|e| arg_u64(e, "bucket").unwrap()).max().unwrap() + 1;
    assert!(n_buckets >= 2, "~2 MiB of grads at 1 MiB/bucket must split, got {n_buckets}");
    let rounds =
        events.iter().filter(|e| e.phase == 'X' && e.cat == "dist" && e.name == "compute").count();
    assert_eq!(collective.len(), rounds * n_buckets as usize);
    for e in &collective {
        assert!(arg_u64(e, "nodes").is_some() && arg_u64(e, "bytes_per_worker").is_some());
    }
}
