//! Checkpoint integration: pause/resume across Algorithm 1's phase switch.

use pufferfish_repro::core::trainer::{evaluate, train, ModelPlan, TrainConfig};
use pufferfish_repro::data::images::{ImageDataset, ImageDatasetConfig};
use pufferfish_repro::models::units::FactorInit;
use pufferfish_repro::models::vgg::{Vgg, VggConfig};
use pufferfish_repro::nn::checkpoint;
use pufferfish_repro::nn::layer::{Layer, Mode};
use pufferfish_repro::tensor::Tensor;

fn dataset() -> ImageDataset {
    ImageDataset::generate(ImageDatasetConfig {
        classes: 3,
        channels: 3,
        size: 16,
        train: 96,
        test: 48,
        noise: 0.1,
        seed: 23,
    })
}

fn vgg() -> Vgg {
    Vgg::new(VggConfig {
        stages: vec![vec![6], vec![8]],
        fc_hidden: vec![12],
        classes: 3,
        input_size: 16,
        seed: 5,
    })
    .unwrap()
}

#[test]
fn warmup_checkpoint_resumes_into_hybrid() {
    let data = dataset();
    // Phase 1: warm-up only, then checkpoint the vanilla weights.
    let cfg = TrainConfig::cifar_small(2, 0);
    let out = train(vgg(), ModelPlan::None, &data, &cfg).unwrap();
    let path = std::env::temp_dir().join("puffer_resume_test.puft");
    checkpoint::save(&out.model, &path).unwrap();

    // Phase 2 (a fresh process, conceptually): load the warm-up weights
    // into a new vanilla model, factorize with warm start, fine-tune.
    let mut restored = vgg();
    checkpoint::load(&mut restored, &path).unwrap();
    let hybrid = restored.to_hybrid(2, 0.5, FactorInit::WarmStart).unwrap();
    let cfg = TrainConfig::cifar_small(2, 0);
    let resumed = train(hybrid, ModelPlan::None, &data, &cfg).unwrap();
    assert!(resumed.report.epochs.iter().all(|e| e.train_loss.is_finite()));

    // The resumed hybrid performs at least as well as an un-warm-started
    // hybrid trained for the same 2 epochs.
    let cold = vgg().to_hybrid(2, 0.5, FactorInit::Random(9)).unwrap();
    let cold = train(cold, ModelPlan::None, &data, &cfg).unwrap();
    assert!(
        resumed.report.final_eval_loss() <= cold.report.final_eval_loss() + 0.25,
        "resumed {} vs cold {}",
        resumed.report.final_eval_loss(),
        cold.report.final_eval_loss()
    );
    let _ = std::fs::remove_file(path);
}

#[test]
fn checkpoint_preserves_eval_behaviour_exactly() {
    let data = dataset();
    let cfg = TrainConfig::cifar_small(2, 1);
    let out =
        train(vgg(), ModelPlan::VggHybrid { first_low_rank: 2, rank_ratio: 0.5 }, &data, &cfg)
            .unwrap();
    let mut trained = out.model;
    let (loss_before, acc_before) = {
        let x = Tensor::randn(&[2, 3, 16, 16], 1.0, 1);
        let _ = trained.forward(&x, Mode::Eval);
        evaluate(&mut trained, &data, 16).unwrap()
    };
    let path = std::env::temp_dir().join("puffer_eval_ckpt.puft");
    checkpoint::save(&trained, &path).unwrap();
    // Fresh architecture with the same plan + loaded weights.
    let mut fresh: pufferfish_repro::core::trainer::ImageModel =
        vgg().to_hybrid(2, 0.5, FactorInit::Random(31)).unwrap().into();
    checkpoint::load(&mut fresh, &path).unwrap();
    // BN running statistics travel with the checkpoint as buffers, so
    // evaluation behaviour is restored exactly.
    let (loss_after, acc_after) = evaluate(&mut fresh, &data, 16).unwrap();
    assert!((loss_before - loss_after).abs() < 1e-5, "loss drifted: {loss_before} vs {loss_after}");
    assert!((acc_before - acc_after).abs() < 1e-6, "acc drifted: {acc_before} vs {acc_after}");
    let _ = std::fs::remove_file(path);
}
