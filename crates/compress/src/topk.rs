//! Top-k gradient sparsification with error feedback (Stich et al. 2018;
//! Lin et al. 2017).
//!
//! Each worker ships the `k` largest-magnitude coordinates of its
//! error-compensated flat gradient as (index, value) pairs. Sparse
//! messages from different workers hit different coordinates, so the
//! collective is allgather. The paper's appendix E names Top-k as the kind
//! of flat-gradient compressor that composes well with Pufferfish.

use crate::pack::{pack, unpack, PackLayout};
use crate::{AggregationKind, GradCompressor, RoundStats};
use puffer_probe::Stopwatch;
use puffer_tensor::stats::top_k_indices;
use puffer_tensor::Tensor;
use std::time::Duration;

/// Top-k compressor state.
#[derive(Debug)]
pub struct TopK {
    ratio: f32,
    memory: Vec<Tensor>,
    layout: Option<PackLayout>,
}

impl TopK {
    /// Creates a compressor keeping a `ratio` fraction of coordinates
    /// (e.g. 0.01 for 1%).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < ratio <= 1`.
    pub fn new(ratio: f32) -> Self {
        assert!(ratio > 0.0 && ratio <= 1.0, "ratio must be in (0, 1]");
        TopK { ratio, memory: Vec::new(), layout: None }
    }

    /// The kept fraction.
    pub fn ratio(&self) -> f32 {
        self.ratio
    }
}

impl GradCompressor for TopK {
    fn name(&self) -> &'static str {
        "topk"
    }

    fn aggregation(&self) -> AggregationKind {
        AggregationKind::AllGather
    }

    fn round(&mut self, worker_grads: &[Vec<Tensor>]) -> (Vec<Tensor>, RoundStats) {
        let n_workers = worker_grads.len();
        let mut encode_time = Duration::ZERO;
        let mut sparse_msgs: Vec<(Vec<u32>, Vec<f32>)> = Vec::with_capacity(n_workers);
        let mut total_len = 0usize;
        for (w, grads) in worker_grads.iter().enumerate() {
            let t0 = Stopwatch::start();
            let (mut flat, layout) = pack(grads);
            total_len = layout.total_len();
            if self.layout.as_ref() != Some(&layout) {
                self.layout = Some(layout);
                self.memory = vec![Tensor::zeros(&[total_len]); n_workers];
            }
            if self.memory.len() != n_workers {
                self.memory = vec![Tensor::zeros(&[total_len]); n_workers];
            }
            // Error compensation.
            flat.axpy(1.0, &self.memory[w]).expect("shape");
            let k = ((total_len as f32 * self.ratio).ceil() as usize).clamp(1, total_len);
            let abs: Vec<f32> = flat.as_slice().iter().map(|x| x.abs()).collect();
            let idx = top_k_indices(&abs, k);
            let vals: Vec<f32> = idx.iter().map(|&i| flat.as_slice()[i]).collect();
            // Residual memory: everything not sent.
            let mut residual = flat;
            for &i in &idx {
                residual.as_mut_slice()[i] = 0.0;
            }
            self.memory[w] = residual;
            sparse_msgs.push((idx.iter().map(|&i| i as u32).collect(), vals));
            encode_time += t0.elapsed();
        }
        let bytes = sparse_msgs[0].0.len() * (4 + 4);
        // Per-node encode: each node only sparsifies its own gradient.
        encode_time /= n_workers.max(1) as u32;

        // Decode: scatter-add all workers' sparse messages, divide by count.
        let t0 = Stopwatch::start();
        let mut dense = Tensor::zeros(&[total_len]);
        for (idx, vals) in &sparse_msgs {
            for (&i, &v) in idx.iter().zip(vals) {
                dense.as_mut_slice()[i as usize] += v;
            }
        }
        dense.scale(1.0 / n_workers as f32);
        let out = unpack(&dense, self.layout.as_ref().expect("layout set"));
        let decode_time = t0.elapsed();
        (
            out,
            RoundStats::new(
                bytes,
                worker_grads.len(),
                self.aggregation(),
                encode_time,
                decode_time,
            ),
        )
    }

    fn state_snapshot(&self) -> Vec<(String, Tensor)> {
        match &self.layout {
            Some(layout) => crate::pack::snapshot_flat_state(layout, "mem", &self.memory),
            None => Vec::new(),
        }
    }

    fn restore_state(&mut self, state: &[(String, Tensor)]) -> bool {
        if state.is_empty() {
            self.layout = None;
            self.memory.clear();
            return true;
        }
        match crate::pack::restore_flat_state(state, "mem") {
            Some((layout, memory)) => {
                self.layout = Some(layout);
                self.memory = memory;
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puffer_tensor::stats::l2_norm;

    #[test]
    fn keeps_largest_coordinates() {
        let mut c = TopK::new(0.25);
        let g =
            vec![Tensor::from_vec(vec![0.1, -5.0, 0.2, 0.05, 4.0, 0.0, 0.0, 0.0], &[8]).unwrap()];
        let (out, stats) = c.round(std::slice::from_ref(&g));
        assert_eq!(out[0].as_slice()[1], -5.0);
        assert_eq!(out[0].as_slice()[4], 4.0);
        assert_eq!(out[0].as_slice()[0], 0.0);
        assert_eq!(stats.bytes_per_worker, 2 * 8);
    }

    #[test]
    fn error_feedback_transmits_everything_eventually() {
        // A constant gradient: with memory, repeated rounds must deliver
        // every coordinate (memory grows until it wins the top-k).
        let mut c = TopK::new(0.25);
        let g = vec![Tensor::from_vec(vec![4.0, 3.0, 2.0, 1.0], &[4]).unwrap()];
        let mut acc = Tensor::zeros(&[4]);
        for _ in 0..12 {
            let (out, _) = c.round(std::slice::from_ref(&g));
            acc.axpy(1.0, &out[0]).expect("shape");
        }
        // All coordinates must have accumulated mass, including the smallest.
        assert!(acc.as_slice().iter().all(|&v| v > 0.5), "{acc:?}");
    }

    #[test]
    fn full_ratio_is_exact() {
        let mut c = TopK::new(1.0);
        let w1 = vec![Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap()];
        let w2 = vec![Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap()];
        let (out, _) = c.round(&[w1, w2]);
        assert_eq!(out[0].as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn residual_plus_sent_equals_input() {
        let mut c = TopK::new(0.5);
        let g = Tensor::randn(&[16], 1.0, 1);
        let (out, _) = c.round(&[vec![g.clone()]]);
        let sum = &out[0] + &c.memory[0];
        assert!(l2_norm(&(&sum - &g)) < 1e-6);
    }

    #[test]
    fn snapshot_restore_carries_residuals() {
        let grads: Vec<Vec<Tensor>> =
            (0..2).map(|w| vec![Tensor::randn(&[4, 4], 1.0, 50 + w)]).collect();
        let mut a = TopK::new(0.25);
        for _ in 0..3 {
            let _ = a.round(&grads);
        }
        let snap = a.state_snapshot();
        assert!(!snap.is_empty());
        let mut b = TopK::new(0.25);
        assert!(b.restore_state(&snap));
        assert_eq!(a.round(&grads).0, b.round(&grads).0);
    }

    #[test]
    #[should_panic(expected = "ratio")]
    fn ratio_validated() {
        let _ = TopK::new(0.0);
    }
}
