//! Algorithm 1 for the CNN image-classification tasks (VGG / ResNet on the
//! CIFAR-like and ImageNet-lite datasets).

use crate::report::{EpochMetrics, TrainReport};
use puffer_data::images::ImageDataset;
use puffer_models::resnet::{ResNet, ResNetHybridPlan};
use puffer_models::units::FactorInit;
use puffer_models::vgg::Vgg;
use puffer_nn::amp::AmpSession;
use puffer_nn::layer::{Layer, Mode};
use puffer_nn::loss::{accuracy, softmax_cross_entropy};
use puffer_nn::optim::{clip_grad_norm, Sgd};
use puffer_nn::param::Param;
use puffer_nn::schedule::{LrSchedule, StepDecay};
use puffer_nn::Result;
use puffer_probe as probe;
use puffer_tensor::Tensor;

/// An image-classification model Pufferfish can train: either family of
/// the paper's CNNs.
///
/// Variant sizes differ by design: one ImageModel exists per training run,
/// so boxing the larger network would only add pointer chasing.
#[allow(clippy::large_enum_variant)]
pub enum ImageModel {
    /// A VGG-style network.
    Vgg(Vgg),
    /// A ResNet-style network.
    ResNet(ResNet),
}

impl From<Vgg> for ImageModel {
    fn from(m: Vgg) -> Self {
        ImageModel::Vgg(m)
    }
}

impl From<ResNet> for ImageModel {
    fn from(m: ResNet) -> Self {
        ImageModel::ResNet(m)
    }
}

impl Layer for ImageModel {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        match self {
            ImageModel::Vgg(m) => m.forward(input, mode),
            ImageModel::ResNet(m) => m.forward(input, mode),
        }
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        match self {
            ImageModel::Vgg(m) => m.backward(grad_output),
            ImageModel::ResNet(m) => m.backward(grad_output),
        }
    }

    fn params(&self) -> Vec<&Param> {
        match self {
            ImageModel::Vgg(m) => m.params(),
            ImageModel::ResNet(m) => m.params(),
        }
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        match self {
            ImageModel::Vgg(m) => m.params_mut(),
            ImageModel::ResNet(m) => m.params_mut(),
        }
    }

    fn describe(&self) -> String {
        match self {
            ImageModel::Vgg(m) => m.describe(),
            ImageModel::ResNet(m) => m.describe(),
        }
    }

    fn buffers(&self) -> Vec<Tensor> {
        match self {
            ImageModel::Vgg(m) => m.buffers(),
            ImageModel::ResNet(m) => m.buffers(),
        }
    }

    fn load_buffers(&mut self, buffers: &[Tensor]) {
        match self {
            ImageModel::Vgg(m) => m.load_buffers(buffers),
            ImageModel::ResNet(m) => m.load_buffers(buffers),
        }
    }
}

/// Which architecture conversion Algorithm 1 applies at the warm-up
/// boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ModelPlan {
    /// No conversion — plain vanilla SGD for all epochs.
    None,
    /// VGG hybrid: factorize layers `first_low_rank..` at `rank_ratio`.
    VggHybrid {
        /// 1-based index of the first factorized layer (the paper's `K`).
        first_low_rank: usize,
        /// Global rank ratio (paper: 0.25).
        rank_ratio: f32,
    },
    /// ResNet hybrid following a [`ResNetHybridPlan`].
    ResNetHybrid(ResNetHybridPlan),
}

/// Hyper-parameters for a training run.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Total epochs `E`.
    pub epochs: usize,
    /// Vanilla warm-up epochs `E_wu` (0 = train the hybrid from scratch).
    pub warmup_epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// LR schedule over epochs.
    pub schedule: StepDecay,
    /// SGD momentum (paper: 0.9).
    pub momentum: f32,
    /// ℓ2 weight decay (paper: 1e-4, BN/bias exempt).
    pub weight_decay: f32,
    /// Label smoothing (paper: 0.1 on ImageNet, 0 on CIFAR).
    pub label_smoothing: f32,
    /// Emulated mixed precision (Tables 4–5 "AMP" rows).
    pub amp: bool,
    /// Optional global gradient-norm clip.
    pub clip: Option<f32>,
    /// Seed for cold-start factor initialization.
    pub seed: u64,
}

impl TrainConfig {
    /// A CPU-scale CIFAR-style recipe: lr 0.1, step decay at 50%/83% of the
    /// run (the paper's 150/250-of-300 pattern).
    pub fn cifar_small(epochs: usize, warmup_epochs: usize) -> Self {
        TrainConfig {
            epochs,
            warmup_epochs,
            batch_size: 32,
            schedule: StepDecay::new(0.1, vec![epochs / 2, epochs * 5 / 6], 0.1),
            momentum: 0.9,
            weight_decay: 1e-4,
            label_smoothing: 0.0,
            amp: false,
            clip: Some(5.0),
            seed: 7,
        }
    }

    /// The ImageNet-style recipe scaled down (label smoothing 0.1, decay at
    /// 1/3 and 2/3 like the paper's 30/60/80-of-90 pattern).
    pub fn imagenet_small(epochs: usize, warmup_epochs: usize) -> Self {
        let mut c = Self::cifar_small(epochs, warmup_epochs);
        c.schedule = StepDecay::new(0.1, vec![epochs / 3, epochs * 2 / 3], 0.1);
        c.label_smoothing = 0.1;
        c
    }
}

/// The result of a training run: the final model plus its report.
pub struct TrainOutcome {
    /// The trained model (hybrid if a conversion happened).
    pub model: ImageModel,
    /// Per-epoch telemetry.
    pub report: TrainReport,
}

/// Runs Algorithm 1: vanilla warm-up for `cfg.warmup_epochs`, SVD
/// factorization into the hybrid architecture of `plan`, consecutive
/// low-rank training to `cfg.epochs`. With `warmup_epochs = 0` the hybrid
/// is trained from scratch (randomly initialized factors); with
/// `plan = ModelPlan::None` this is plain vanilla training.
///
/// # Errors
///
/// Propagates model-surgery and loss errors.
pub fn train(
    vanilla: impl Into<ImageModel>,
    plan: ModelPlan,
    data: &ImageDataset,
    cfg: &TrainConfig,
) -> Result<TrainOutcome> {
    let mut model = vanilla.into();
    let mut report = TrainReport {
        vanilla_params: model.param_count(),
        hybrid_params: model.param_count(),
        ..TrainReport::default()
    };

    // Hybrid-from-scratch: convert immediately with random factors.
    if cfg.warmup_epochs == 0 {
        if let Some(converted) = convert(&model, plan, FactorInit::Random(cfg.seed))? {
            model = converted;
            report.hybrid_params = model.param_count();
            report.switch_epoch = Some(0);
        }
    }

    let mut opt = Sgd::new(cfg.schedule.lr_at(0), cfg.momentum, cfg.weight_decay);
    let mut amp = AmpSession::new();

    for epoch in 0..cfg.epochs {
        // Warm-up boundary: factorize the partially trained weights.
        if epoch == cfg.warmup_epochs && cfg.warmup_epochs > 0 {
            let sp =
                probe::timed_span_with("core", "svd_factorize", || vec![("epoch", epoch.into())]);
            if let Some(converted) = convert(&model, plan, FactorInit::WarmStart)? {
                model = converted;
                report.svd_time = Some(sp.finish());
                report.switch_epoch = Some(epoch);
                report.hybrid_params = model.param_count();
                // Parameter set changed: fresh optimizer state, same schedule.
                opt = Sgd::new(cfg.schedule.lr_at(epoch), cfg.momentum, cfg.weight_decay);
            }
        }
        let lr = cfg.schedule.lr_at(epoch);
        opt.set_lr(lr);

        let epoch_span = probe::timed_span_with("core", "epoch", || {
            vec![("epoch", epoch.into()), ("lr", lr.into())]
        });
        let mut loss_sum = 0.0f64;
        let mut batches = 0usize;
        for (images, labels) in data.train_batches(cfg.batch_size, epoch as u64) {
            model.zero_grad();
            let loss = if cfg.amp {
                amp.cast_params_to_f16(&mut model.params_mut());
                let logits = model.forward(&images, Mode::Train);
                let (loss, mut dlogits) =
                    softmax_cross_entropy(&logits, &labels, cfg.label_smoothing)?;
                dlogits = amp.scale_loss_grad(&dlogits);
                let _ = model.backward(&dlogits);
                amp.restore_masters(&mut model.params_mut());
                if !amp.unscale_grads(&mut model.params_mut()) {
                    probe::counter_add("core.amp_skipped_steps", 1);
                    continue; // overflow: skip step, scale backed off
                }
                loss
            } else {
                let logits = model.forward(&images, Mode::Train);
                let (loss, dlogits) = softmax_cross_entropy(&logits, &labels, cfg.label_smoothing)?;
                let _ = model.backward(&dlogits);
                loss
            };
            if let Some(c) = cfg.clip {
                clip_grad_norm(&mut model.params_mut(), c);
            }
            opt.step(&mut model.params_mut());
            loss_sum += loss as f64;
            batches += 1;
        }
        let (eval_loss, eval_acc) = evaluate(&mut model, data, cfg.batch_size)?;
        // The epoch span (and EpochMetrics::wall) covers train + eval, as
        // the pre-probe accounting did.
        let wall = epoch_span.finish();
        let train_loss = (loss_sum / batches.max(1) as f64) as f32;
        probe::metrics_row(
            "epoch",
            &[
                ("epoch", epoch.into()),
                ("train_loss", train_loss.into()),
                ("eval_loss", eval_loss.into()),
                ("eval_acc", eval_acc.into()),
                ("lr", lr.into()),
                ("wall_us", (wall.as_micros() as u64).into()),
            ],
        );
        report.epochs.push(EpochMetrics {
            epoch,
            train_loss,
            eval_loss,
            eval_accuracy: Some(eval_acc),
            lr,
            params: model.param_count(),
            wall,
        });
    }
    Ok(TrainOutcome { model, report })
}

/// Evaluates a model on the test split: `(mean loss, top-1 accuracy)`.
///
/// # Errors
///
/// Propagates loss errors.
pub fn evaluate(
    model: &mut ImageModel,
    data: &ImageDataset,
    batch_size: usize,
) -> Result<(f32, f32)> {
    let mut loss_sum = 0.0f64;
    let mut acc_sum = 0.0f64;
    let mut n = 0usize;
    for (images, labels) in data.test_batches(batch_size) {
        let logits = model.forward(&images, Mode::Eval);
        let (loss, _) = softmax_cross_entropy(&logits, &labels, 0.0)?;
        loss_sum += loss as f64 * labels.len() as f64;
        acc_sum += accuracy(&logits, &labels) as f64 * labels.len() as f64;
        n += labels.len();
    }
    let n = n.max(1) as f64;
    Ok(((loss_sum / n) as f32, (acc_sum / n) as f32))
}

fn convert(model: &ImageModel, plan: ModelPlan, init: FactorInit) -> Result<Option<ImageModel>> {
    match (model, plan) {
        (_, ModelPlan::None) => Ok(None),
        (ImageModel::Vgg(v), ModelPlan::VggHybrid { first_low_rank, rank_ratio }) => {
            Ok(Some(ImageModel::Vgg(v.to_hybrid(first_low_rank, rank_ratio, init)?)))
        }
        (ImageModel::ResNet(r), ModelPlan::ResNetHybrid(p)) => {
            Ok(Some(ImageModel::ResNet(r.to_hybrid(&p, init)?)))
        }
        _ => Err(puffer_nn::NnError::BadConfig {
            layer: "pufferfish::trainer",
            reason: "model plan does not match model family".into(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puffer_data::images::ImageDatasetConfig;
    use puffer_models::vgg::VggConfig;

    fn tiny_data() -> ImageDataset {
        ImageDataset::generate(ImageDatasetConfig {
            classes: 4,
            channels: 3,
            size: 16,
            train: 192,
            test: 64,
            noise: 0.1,
            seed: 5,
        })
    }

    fn tiny_vgg() -> Vgg {
        Vgg::new(VggConfig {
            stages: vec![vec![6], vec![8], vec![12]],
            fc_hidden: vec![16],
            classes: 4,
            input_size: 16,
            seed: 3,
        })
        .unwrap()
    }

    #[test]
    fn vanilla_training_learns() {
        let cfg = TrainConfig::cifar_small(6, 0);
        let out = train(tiny_vgg(), ModelPlan::None, &tiny_data(), &cfg).unwrap();
        assert_eq!(out.report.epochs.len(), 6);
        assert!(
            out.report.final_test_accuracy() > 0.45,
            "acc {}",
            out.report.final_test_accuracy()
        );
        assert!(out.report.switch_epoch.is_none());
    }

    #[test]
    fn algorithm1_switches_architecture() {
        let cfg = TrainConfig::cifar_small(6, 2);
        let plan = ModelPlan::VggHybrid { first_low_rank: 2, rank_ratio: 0.5 };
        let out = train(tiny_vgg(), plan, &tiny_data(), &cfg).unwrap();
        assert_eq!(out.report.switch_epoch, Some(2));
        assert!(out.report.svd_time.is_some());
        assert!(out.report.hybrid_params < out.report.vanilla_params);
        // Epoch param counts reflect the switch.
        assert_eq!(out.report.epochs[1].params, out.report.vanilla_params);
        assert_eq!(out.report.epochs[2].params, out.report.hybrid_params);
        assert!(out.report.final_test_accuracy() > 0.4, "acc {}", out.report.final_test_accuracy());
    }

    #[test]
    fn from_scratch_low_rank_uses_random_factors() {
        let cfg = TrainConfig::cifar_small(2, 0);
        let plan = ModelPlan::VggHybrid { first_low_rank: 1, rank_ratio: 0.25 };
        let out = train(tiny_vgg(), plan, &tiny_data(), &cfg).unwrap();
        assert_eq!(out.report.switch_epoch, Some(0));
        assert!(out.report.svd_time.is_none());
        assert!(out.report.hybrid_params < out.report.vanilla_params);
    }

    #[test]
    fn amp_training_is_stable() {
        let mut cfg = TrainConfig::cifar_small(5, 1);
        cfg.amp = true;
        let plan = ModelPlan::VggHybrid { first_low_rank: 2, rank_ratio: 0.5 };
        let out = train(tiny_vgg(), plan, &tiny_data(), &cfg).unwrap();
        assert!(out.report.epochs.iter().all(|e| e.train_loss.is_finite()));
        assert!(
            out.report.final_test_accuracy() > 0.35,
            "acc {}",
            out.report.final_test_accuracy()
        );
    }

    #[test]
    fn mismatched_plan_is_rejected() {
        let cfg = TrainConfig::cifar_small(1, 0);
        let plan = ModelPlan::ResNetHybrid(ResNetHybridPlan::resnet18_paper());
        assert!(train(tiny_vgg(), plan, &tiny_data(), &cfg).is_err());
    }

    #[test]
    fn resnet_plan_works_end_to_end() {
        use puffer_models::resnet::ResNetConfig;
        let net = ResNet::new(ResNetConfig::resnet18(0.0625, 4, 2)).unwrap();
        let cfg = TrainConfig::cifar_small(2, 1);
        let plan = ModelPlan::ResNetHybrid(ResNetHybridPlan::resnet18_paper());
        let out = train(net, plan, &tiny_data(), &cfg).unwrap();
        assert_eq!(out.report.switch_epoch, Some(1));
        assert!(out.report.hybrid_params < out.report.vanilla_params);
    }
}
