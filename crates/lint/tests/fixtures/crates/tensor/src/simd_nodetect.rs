//! Seeded violation: a `#[target_feature]` kernel in a file with no
//! `is_x86_feature_detected!` runtime gate anywhere — the gated path has
//! nothing in-file proving it unreachable on unsupporting hardware.

// SAFETY: upheld by a detection check that lives in another file — which
// is exactly the split this rule forbids.
#[target_feature(enable = "avx2")]
pub unsafe fn kernel(_a: *const f32) {}
