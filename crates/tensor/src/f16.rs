//! IEEE 754 binary16 (half precision) emulation.
//!
//! The paper's Tables 4–5 report accuracy under PyTorch AMP (mixed
//! precision). We reproduce the numerical effect in software: values are
//! rounded through the binary16 format (round-to-nearest-even), while master
//! weights stay in f32 — the same contract AMP provides. No `half` crate is
//! used; the bit-level conversion is implemented here and tested against the
//! format's edge cases (subnormals, infinities, NaN, rounding ties).

/// Converts an `f32` to its binary16 bit pattern, rounding to nearest even.
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let mant = bits & 0x007F_FFFF;

    if exp == 0xFF {
        // Inf / NaN: preserve NaN-ness with a quiet mantissa bit.
        return sign | 0x7C00 | if mant != 0 { 0x0200 } else { 0 };
    }
    // Unbiased exponent.
    let e = exp - 127;
    if e > 15 {
        // Overflow to infinity.
        return sign | 0x7C00;
    }
    if e >= -14 {
        // Normal half: 10-bit mantissa, round-to-nearest-even on bit 13.
        let mant16 = mant >> 13;
        let rest = mant & 0x1FFF;
        let half = 0x1000;
        let mut out = sign as u32 | (((e + 15) as u32) << 10) | mant16;
        if rest > half || (rest == half && (mant16 & 1) == 1) {
            out += 1; // carries correctly into the exponent on mantissa overflow
        }
        return out as u16;
    }
    if e >= -24 {
        // Subnormal half.
        let shift = (-14 - e) as u32; // 1..=10
        let mant_full = mant | 0x0080_0000; // implicit leading 1
        let total_shift = 13 + shift;
        let mant16 = mant_full >> total_shift;
        let rest = mant_full & ((1u32 << total_shift) - 1);
        let half = 1u32 << (total_shift - 1);
        let mut out = sign as u32 | mant16;
        if rest > half || (rest == half && (mant16 & 1) == 1) {
            out += 1;
        }
        return out as u16;
    }
    // Underflow to signed zero.
    sign
}

/// Converts a binary16 bit pattern to `f32` exactly.
pub fn f16_bits_to_f32(bits: u16) -> f32 {
    let sign = ((bits & 0x8000) as u32) << 16;
    let exp = ((bits >> 10) & 0x1F) as u32;
    let mant = (bits & 0x03FF) as u32;
    let out = if exp == 0x1F {
        // Inf / NaN
        sign | 0x7F80_0000 | (mant << 13)
    } else if exp == 0 {
        if mant == 0 {
            sign // signed zero
        } else {
            // Subnormal: normalize. `e` counts the shifts needed to bring
            // the leading bit to position 10; the unbiased exponent is
            // -14 - shifts.
            let mut m = mant;
            let mut e = 0i32;
            while m & 0x0400 == 0 {
                m <<= 1;
                e -= 1;
            }
            m &= 0x03FF;
            sign | (((e - 14 + 127) as u32) << 23) | (m << 13)
        }
    } else {
        sign | ((exp + 127 - 15) << 23) | (mant << 13)
    };
    f32::from_bits(out)
}

/// Rounds an `f32` through binary16 and back: the value an AMP forward pass
/// would observe.
///
/// # Example
///
/// ```
/// use puffer_tensor::f16::round_f16;
/// assert_eq!(round_f16(1.0), 1.0);
/// // binary16 has ~3 decimal digits: 0.1 is not representable exactly.
/// assert!((round_f16(0.1) - 0.1).abs() > 0.0);
/// assert!((round_f16(0.1) - 0.1).abs() < 1e-4);
/// ```
pub fn round_f16(x: f32) -> f32 {
    f16_bits_to_f32(f32_to_f16_bits(x))
}

/// Rounds every element of a slice through binary16 in place.
pub fn round_slice_f16(xs: &mut [f32]) {
    for x in xs {
        *x = round_f16(*x);
    }
}

/// Largest finite binary16 value (65504).
pub const F16_MAX: f32 = 65504.0;

/// Smallest positive normal binary16 value (2⁻¹⁴).
pub const F16_MIN_POSITIVE: f32 = 6.103_515_6e-5;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_values_round_trip() {
        for &v in &[0.0f32, -0.0, 1.0, -1.0, 2.0, 0.5, 0.25, 1.5, 65504.0, -65504.0, 6.1035156e-5] {
            assert_eq!(round_f16(v), v, "value {v}");
        }
    }

    #[test]
    fn signed_zero_preserved() {
        assert_eq!(f32_to_f16_bits(-0.0), 0x8000);
        assert_eq!(f32_to_f16_bits(0.0), 0x0000);
        assert!(round_f16(-0.0).is_sign_negative());
    }

    #[test]
    fn overflow_to_infinity() {
        assert_eq!(round_f16(1e6), f32::INFINITY);
        assert_eq!(round_f16(-1e6), f32::NEG_INFINITY);
        assert_eq!(round_f16(65520.0), f32::INFINITY); // rounds past F16_MAX
    }

    #[test]
    fn infinity_and_nan() {
        assert_eq!(round_f16(f32::INFINITY), f32::INFINITY);
        assert_eq!(round_f16(f32::NEG_INFINITY), f32::NEG_INFINITY);
        assert!(round_f16(f32::NAN).is_nan());
    }

    #[test]
    fn subnormals() {
        // Smallest positive subnormal half = 2^-24.
        let tiny = 2.0f32.powi(-24);
        assert_eq!(round_f16(tiny), tiny);
        // Below half of it underflows to zero.
        assert_eq!(round_f16(2.0f32.powi(-26)), 0.0);
        // A subnormal mid-range value.
        let v = 3.0 * 2.0f32.powi(-24);
        assert_eq!(round_f16(v), v);
    }

    #[test]
    fn round_to_nearest_even_tie() {
        // 1 + 2^-11 is exactly halfway between 1.0 and 1 + 2^-10:
        // round-to-even picks 1.0 (even mantissa).
        let tie = 1.0 + 2.0f32.powi(-11);
        assert_eq!(round_f16(tie), 1.0);
        // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9: picks 1+2^-9.
        let tie2 = 1.0 + 3.0 * 2.0f32.powi(-11);
        assert_eq!(round_f16(tie2), 1.0 + 2.0 * 2.0f32.powi(-10));
    }

    #[test]
    fn mantissa_overflow_carries_into_exponent() {
        // Just below 2.0: 1.9990234 (max half mantissa at e=0). Nudging past
        // the rounding midpoint (half a ULP = 2^-11) must carry the mantissa
        // into the exponent and produce exactly 2.0.
        let max_mant = f16_bits_to_f32(0x3FFF); // 1.9990234
        let nudged = max_mant + 6.0e-4;
        assert_eq!(round_f16(nudged), 2.0);
    }

    #[test]
    fn rounding_error_bounded_by_relative_epsilon() {
        // Relative error of binary16 rounding is at most 2^-11 for normals.
        for i in 0..1000 {
            let v = 0.01 + i as f32 * 0.37;
            let r = round_f16(v);
            assert!((r - v).abs() <= v.abs() * 2.0f32.powi(-10), "{v} -> {r}");
        }
    }

    #[test]
    fn idempotent() {
        for i in 0..100 {
            let v = -50.0 + i as f32 * 1.37;
            assert_eq!(round_f16(round_f16(v)), round_f16(v));
        }
    }

    #[test]
    fn slice_rounding() {
        let mut xs = vec![0.1f32, 1.0, 1e6];
        round_slice_f16(&mut xs);
        assert_eq!(xs[1], 1.0);
        assert_eq!(xs[2], f32::INFINITY);
    }
}
