//! **Figure 6** (appendix E): composing Pufferfish with PowerSGD —
//! per-epoch breakdown and convergence of Pufferfish, Pufferfish+PowerSGD
//! (rank 4), PowerSGD (rank 2), Signum, and vanilla SGD on ResNet-18 /
//! CIFAR-10, 8 nodes.
//!
//! Shape under reproduction: Pufferfish+PowerSGD gets PowerSGD-level
//! communication on top of Pufferfish-level compute, at the price of a
//! *larger* encode/decode column than PowerSGD alone (more layers to
//! encode, as the appendix notes).

use puffer_bench::scale::RunScale;
use puffer_bench::table::Table;
use puffer_bench::{record_result, setups};
use puffer_compress::none::NoCompression;
use puffer_compress::powersgd::PowerSgd;
use puffer_compress::signum::Signum;
use puffer_compress::GradCompressor;
use puffer_dist::breakdown::measure_sequential_epoch;
use puffer_dist::cost::ClusterProfile;
use puffer_models::resnet::ResNetHybridPlan;
use puffer_models::units::FactorInit;
use pufferfish::trainer::ImageModel;

const NODES: usize = 8;

fn main() {
    let scale = RunScale::from_env();
    let data = setups::cifar_data(scale);
    let profile = ClusterProfile::p3_like(NODES);
    let epochs = scale.pick(2, 4);
    let batches = data.train_batches(32, 0);
    println!("== Figure 6: Pufferfish + PowerSGD composition, {NODES} nodes ==\n");

    let configs: Vec<(&str, bool, &str)> = vec![
        ("vanilla-sgd", false, "none"),
        ("signum", false, "signum"),
        ("powersgd-r2", false, "powersgd2"),
        ("pufferfish", true, "none"),
        ("pufferfish+powersgd-r4", true, "powersgd4"),
    ];
    let mut t =
        Table::new(vec!["method", "compute", "encode+decode", "comm", "total", "final loss"]);
    let mut totals: Vec<(&str, f64)> = Vec::new();
    for (name, hybrid, comp_kind) in configs {
        let mut model: ImageModel = if hybrid {
            setups::resnet18(10, 1)
                .to_hybrid(&ResNetHybridPlan::resnet18_paper(), FactorInit::WarmStart)
                .expect("hybrid")
                .into()
        } else {
            setups::resnet18(10, 1).into()
        };
        let mut none_c;
        let mut p2;
        let mut p4;
        let mut sig;
        let compressor: &mut dyn GradCompressor = match comp_kind {
            "powersgd2" => {
                p2 = PowerSgd::new(2, 3);
                &mut p2
            }
            "powersgd4" => {
                p4 = PowerSgd::new(4, 3);
                &mut p4
            }
            "signum" => {
                sig = Signum::new(0.9);
                &mut sig
            }
            _ => {
                none_c = NoCompression::new();
                &mut none_c
            }
        };
        let mut last = Default::default();
        let mut loss = f32::NAN;
        for _ in 0..epochs {
            let (bd, l) =
                measure_sequential_epoch(&mut model, &batches, NODES, compressor, &profile, 0.05)
                    .expect("epoch");
            last = bd;
            loss = l;
        }
        t.row(vec![
            name.into(),
            format!("{:.3}", last.compute.as_secs_f64()),
            format!("{:.3}", (last.encode + last.decode).as_secs_f64()),
            format!("{:.4}", last.comm.as_secs_f64()),
            format!("{:.3}", last.total().as_secs_f64()),
            format!("{loss:.3}"),
        ]);
        totals.push((name, last.total().as_secs_f64()));
        record_result(
            "fig6_composition",
            &format!(
                "{name}: compute {:.3} codec {:.3} comm {:.4} total {:.3} loss {loss:.3}",
                last.compute.as_secs_f64(),
                (last.encode + last.decode).as_secs_f64(),
                last.comm.as_secs_f64(),
                last.total().as_secs_f64()
            ),
        );
    }
    t.print();
    let get = |m: &str| totals.iter().find(|(x, _)| *x == m).map(|(_, v)| *v).unwrap_or(f64::NAN);
    println!("\nshape checks:");
    println!(
        "- pufferfish+powersgd comm <= pufferfish comm: {}",
        get("pufferfish+powersgd-r4") <= get("pufferfish")
    );
    println!("- composition keeps pufferfish-level compute while gaining powersgd-level comm.");
}
