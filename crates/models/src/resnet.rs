//! Runnable ResNet models (basic-block ResNet-18 style and bottleneck
//! ResNet-50 style, including the 2× wide variant) with Pufferfish hybrid
//! conversion.
//!
//! Full-scale parameter ledgers live in [`crate::spec`]; the runnable
//! models use a width multiplier for CPU-scale training while preserving
//! the architecture's shape and the paper's hybrid plans:
//!
//! * ResNet-18 (appendix Table 13): factorize everything from the 2nd block
//!   of stage 1, rank `c_out/4`, shortcuts untouched;
//! * ResNet-50 / WideResNet-50-2 (Tables 14–15): factorize only the last
//!   stage (`conv5_x`), rank `min(c_in, c_out)/4`, downsample included.

use crate::units::{rank_for, ConvBnUnit, FactorInit};
use puffer_nn::layer::{Layer, Mode};
use puffer_nn::linear::Linear;
use puffer_nn::param::Param;
use puffer_nn::pool::GlobalAvgPool;
use puffer_nn::Result;
use puffer_tensor::Tensor;

/// Residual block family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// Two 3×3 convs (ResNet-18/34).
    Basic,
    /// 1×1 → 3×3 → 1×1 with 4× expansion (ResNet-50+).
    Bottleneck,
}

/// How the factorization rank is derived from a conv's channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankRule {
    /// `rank = ratio × c_out` (the paper's ResNet-18 rule).
    OutChannels,
    /// `rank = ratio × min(c_in, c_out)` (the ResNet-50 rule).
    MinChannels,
}

impl RankRule {
    fn rank(self, c_in: usize, c_out: usize, k: usize, ratio: f32) -> usize {
        let base = match self {
            RankRule::OutChannels => c_out,
            RankRule::MinChannels => c_in.min(c_out),
        };
        rank_for(base, ratio, (c_in * k * k).min(c_out))
    }
}

/// Which blocks a hybrid conversion factorizes and how.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResNetHybridPlan {
    /// First factorized stage (0-based).
    pub start_stage: usize,
    /// First factorized block within that stage (0-based); later stages are
    /// factorized entirely.
    pub start_block: usize,
    /// Global rank ratio (paper: 0.25).
    pub rank_ratio: f32,
    /// Whether projection shortcuts are factorized too.
    pub factorize_shortcut: bool,
    /// Rank derivation rule.
    pub rank_rule: RankRule,
}

impl ResNetHybridPlan {
    /// The paper's ResNet-18 plan (Table 13).
    pub fn resnet18_paper() -> Self {
        ResNetHybridPlan {
            start_stage: 0,
            start_block: 1,
            rank_ratio: 0.25,
            factorize_shortcut: false,
            rank_rule: RankRule::OutChannels,
        }
    }

    /// The paper's ResNet-50 / WideResNet-50-2 plan (Tables 14–15).
    pub fn resnet50_paper() -> Self {
        ResNetHybridPlan {
            start_stage: 3,
            start_block: 0,
            rank_ratio: 0.25,
            factorize_shortcut: true,
            rank_rule: RankRule::MinChannels,
        }
    }

    /// A fully-low-rank plan (Figure 2's from-scratch baseline).
    pub fn all_layers(rank_ratio: f32) -> Self {
        ResNetHybridPlan {
            start_stage: 0,
            start_block: 0,
            rank_ratio,
            factorize_shortcut: false,
            rank_rule: RankRule::OutChannels,
        }
    }

    fn covers(&self, stage: usize, block: usize) -> bool {
        stage > self.start_stage || (stage == self.start_stage && block >= self.start_block)
    }
}

/// Configuration of a runnable ResNet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResNetConfig {
    /// Block family.
    pub kind: BlockKind,
    /// Blocks per stage (ResNet-18: `[2,2,2,2]`; ResNet-50: `[3,4,6,3]`).
    pub stage_blocks: Vec<usize>,
    /// Stem width; stage widths are `base × [1, 2, 4, 8]`.
    pub base_width: usize,
    /// Bottleneck inner-width multiplier (2 = WideResNet-50-2).
    pub width_factor: usize,
    /// Number of classes.
    pub classes: usize,
    /// RNG seed.
    pub seed: u64,
}

impl ResNetConfig {
    /// Width-scaled ResNet-18 for 32×32 inputs (`scale = 1.0` is the paper's
    /// CIFAR model).
    pub fn resnet18(scale: f32, classes: usize, seed: u64) -> Self {
        ResNetConfig {
            kind: BlockKind::Basic,
            stage_blocks: vec![2, 2, 2, 2],
            base_width: ((64.0 * scale).round() as usize).max(4),
            width_factor: 1,
            classes,
            seed,
        }
    }

    /// Width-scaled bottleneck ResNet-50 for 32×32 inputs.
    pub fn resnet50(scale: f32, classes: usize, seed: u64) -> Self {
        ResNetConfig {
            kind: BlockKind::Bottleneck,
            stage_blocks: vec![3, 4, 6, 3],
            base_width: ((64.0 * scale).round() as usize).max(4),
            width_factor: 1,
            classes,
            seed,
        }
    }

    /// Width-scaled WideResNet-50-2.
    pub fn wide_resnet50_2(scale: f32, classes: usize, seed: u64) -> Self {
        let mut c = Self::resnet50(scale, classes, seed);
        c.width_factor = 2;
        c
    }
}

/// A residual block of either family.
#[derive(Debug)]
pub struct ResBlock {
    units: Vec<ConvBnUnit>, // 2 (basic) or 3 (bottleneck); last has relu=false
    shortcut: Option<ConvBnUnit>,
    relu_mask: Option<Vec<bool>>,
}

impl ResBlock {
    fn basic(c_in: usize, c_out: usize, stride: usize, seed: u64) -> Result<Self> {
        let unit1 = ConvBnUnit::dense(c_in, c_out, 3, stride, 1, true, seed)?;
        let unit2 = ConvBnUnit::dense(c_out, c_out, 3, 1, 1, false, seed.wrapping_add(1))?;
        let shortcut = if stride != 1 || c_in != c_out {
            Some(ConvBnUnit::dense(c_in, c_out, 1, stride, 0, false, seed.wrapping_add(2))?)
        } else {
            None
        };
        Ok(ResBlock { units: vec![unit1, unit2], shortcut, relu_mask: None })
    }

    fn bottleneck(
        c_in: usize,
        inner: usize,
        c_out: usize,
        stride: usize,
        seed: u64,
    ) -> Result<Self> {
        let unit1 = ConvBnUnit::dense(c_in, inner, 1, 1, 0, true, seed)?;
        let unit2 = ConvBnUnit::dense(inner, inner, 3, stride, 1, true, seed.wrapping_add(1))?;
        let unit3 = ConvBnUnit::dense(inner, c_out, 1, 1, 0, false, seed.wrapping_add(2))?;
        let shortcut = if stride != 1 || c_in != c_out {
            Some(ConvBnUnit::dense(c_in, c_out, 1, stride, 0, false, seed.wrapping_add(3))?)
        } else {
            None
        };
        Ok(ResBlock { units: vec![unit1, unit2, unit3], shortcut, relu_mask: None })
    }

    fn to_low_rank(&self, plan: &ResNetHybridPlan, init: FactorInit) -> Result<Self> {
        let mut units = Vec::with_capacity(self.units.len());
        for u in &self.units {
            let (c_in, c_out, k, _, _) = u.conv.geometry();
            let rank = plan.rank_rule.rank(c_in, c_out, k, plan.rank_ratio);
            units.push(u.to_low_rank(rank, init)?);
        }
        let shortcut = match &self.shortcut {
            None => None,
            Some(s) if plan.factorize_shortcut => {
                let (c_in, c_out, k, _, _) = s.conv.geometry();
                let rank = plan.rank_rule.rank(c_in, c_out, k, plan.rank_ratio);
                Some(s.to_low_rank(rank, init)?)
            }
            Some(s) => Some(s.clone_dense()?),
        };
        Ok(ResBlock { units, shortcut, relu_mask: None })
    }

    fn clone_dense(&self) -> Result<Self> {
        let units = self.units.iter().map(|u| u.clone_dense()).collect::<Result<Vec<_>>>()?;
        let shortcut = self.shortcut.as_ref().map(|s| s.clone_dense()).transpose()?;
        Ok(ResBlock { units, shortcut, relu_mask: None })
    }

    /// Whether any conv in the block is factorized.
    pub fn is_low_rank(&self) -> bool {
        self.units.iter().any(|u| u.conv.is_low_rank())
            || self.shortcut.as_ref().is_some_and(|s| s.conv.is_low_rank())
    }
}

impl Layer for ResBlock {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let mut main = input.clone();
        for u in &mut self.units {
            main = u.forward(&main, mode);
        }
        let residual = match &mut self.shortcut {
            Some(s) => s.forward(input, mode),
            None => input.clone(),
        };
        let mut y = &main + &residual;
        if mode == Mode::Train {
            self.relu_mask = Some(y.as_slice().iter().map(|&v| v > 0.0).collect());
        }
        y.map_inplace(|v| v.max(0.0));
        y
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mask = self.relu_mask.as_ref().expect("backward before train-mode forward");
        let mut g = grad_output.clone();
        for (gv, &m) in g.as_mut_slice().iter_mut().zip(mask) {
            if !m {
                *gv = 0.0;
            }
        }
        // Main path.
        let mut gm = g.clone();
        for u in self.units.iter_mut().rev() {
            gm = u.backward(&gm);
        }
        // Residual path.
        let gr = match &mut self.shortcut {
            Some(s) => s.backward(&g),
            None => g,
        };
        &gm + &gr
    }

    fn params(&self) -> Vec<&Param> {
        let mut v: Vec<&Param> = self.units.iter().flat_map(|u| u.params()).collect();
        if let Some(s) = &self.shortcut {
            v.extend(s.params());
        }
        v
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v: Vec<&mut Param> = self.units.iter_mut().flat_map(|u| u.params_mut()).collect();
        if let Some(s) = &mut self.shortcut {
            v.extend(s.params_mut());
        }
        v
    }

    fn describe(&self) -> String {
        format!(
            "ResBlock[{}]",
            self.units.iter().map(|u| u.describe()).collect::<Vec<_>>().join(", ")
        )
    }

    fn buffers(&self) -> Vec<Tensor> {
        let mut v: Vec<Tensor> = self.units.iter().flat_map(|u| u.buffers()).collect();
        if let Some(s) = &self.shortcut {
            v.extend(s.buffers());
        }
        v
    }

    fn load_buffers(&mut self, buffers: &[Tensor]) {
        let mut off = 0;
        for u in &mut self.units {
            let n = u.buffers().len();
            u.load_buffers(&buffers[off..off + n]);
            off += n;
        }
        if let Some(s) = &mut self.shortcut {
            let n = s.buffers().len();
            s.load_buffers(&buffers[off..off + n]);
            off += n;
        }
        assert_eq!(off, buffers.len(), "buffer count mismatch");
    }
}

/// A runnable ResNet.
pub struct ResNet {
    config: ResNetConfig,
    stem: ConvBnUnit,
    stages: Vec<Vec<ResBlock>>,
    gap: GlobalAvgPool,
    fc: Linear,
}

impl ResNet {
    /// Builds the vanilla (full-rank) network with a 3×3 CIFAR stem.
    ///
    /// # Errors
    ///
    /// Propagates layer construction errors.
    pub fn new(config: ResNetConfig) -> Result<Self> {
        let mut seed = config.seed;
        let stem = ConvBnUnit::dense(3, config.base_width, 3, 1, 1, true, seed)?;
        seed = seed.wrapping_add(10);
        let expansion = match config.kind {
            BlockKind::Basic => 1,
            BlockKind::Bottleneck => 4,
        };
        let mut stages = Vec::new();
        let mut c_in = config.base_width;
        for (stage, &nblocks) in config.stage_blocks.iter().enumerate() {
            let base = config.base_width << stage;
            let c_out = base * expansion;
            let mut blocks = Vec::new();
            for b in 0..nblocks {
                let stride = if stage > 0 && b == 0 { 2 } else { 1 };
                let block = match config.kind {
                    BlockKind::Basic => ResBlock::basic(c_in, c_out, stride, seed)?,
                    BlockKind::Bottleneck => {
                        ResBlock::bottleneck(c_in, base * config.width_factor, c_out, stride, seed)?
                    }
                };
                seed = seed.wrapping_add(10);
                blocks.push(block);
                c_in = c_out;
            }
            stages.push(blocks);
        }
        let fc = Linear::new(c_in, config.classes, true, seed)?;
        Ok(ResNet { config, stem, stages, gap: GlobalAvgPool::new(), fc })
    }

    /// The configuration.
    pub fn config(&self) -> &ResNetConfig {
        &self.config
    }

    /// Converts to a Pufferfish hybrid following `plan`.
    ///
    /// # Errors
    ///
    /// Propagates factorization errors.
    pub fn to_hybrid(&self, plan: &ResNetHybridPlan, init: FactorInit) -> Result<Self> {
        let stem = self.stem.clone_dense()?;
        let mut stages = Vec::new();
        for (si, stage) in self.stages.iter().enumerate() {
            let mut blocks = Vec::new();
            for (bi, block) in stage.iter().enumerate() {
                if plan.covers(si, bi) {
                    blocks.push(block.to_low_rank(plan, init)?);
                } else {
                    blocks.push(block.clone_dense()?);
                }
            }
            stages.push(blocks);
        }
        let fc = Linear::from_weights(self.fc.weight().clone(), self.fc.bias().cloned())?;
        Ok(ResNet { config: self.config.clone(), stem, stages, gap: GlobalAvgPool::new(), fc })
    }

    /// Number of factorized blocks.
    pub fn low_rank_block_count(&self) -> usize {
        self.stages.iter().flatten().filter(|b| b.is_low_rank()).count()
    }

    /// Total number of blocks.
    pub fn block_count(&self) -> usize {
        self.stages.iter().map(Vec::len).sum()
    }
}

impl Layer for ResNet {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let mut x = self.stem.forward(input, mode);
        for stage in &mut self.stages {
            for block in stage {
                x = block.forward(&x, mode);
            }
        }
        let pooled = self.gap.forward(&x, mode);
        self.fc.forward(&pooled, mode)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let g = self.fc.backward(grad_output);
        let mut g = self.gap.backward(&g);
        for stage in self.stages.iter_mut().rev() {
            for block in stage.iter_mut().rev() {
                g = block.backward(&g);
            }
        }
        self.stem.backward(&g)
    }

    fn params(&self) -> Vec<&Param> {
        let mut v = self.stem.params();
        v.extend(self.stages.iter().flatten().flat_map(|b| b.params()));
        v.extend(self.fc.params());
        v
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = self.stem.params_mut();
        v.extend(self.stages.iter_mut().flatten().flat_map(|b| b.params_mut()));
        v.extend(self.fc.params_mut());
        v
    }

    fn describe(&self) -> String {
        format!(
            "ResNet({:?}, blocks={:?}, base={}, {} low-rank blocks)",
            self.config.kind,
            self.config.stage_blocks,
            self.config.base_width,
            self.low_rank_block_count()
        )
    }

    fn buffers(&self) -> Vec<Tensor> {
        let mut v = self.stem.buffers();
        v.extend(self.stages.iter().flatten().flat_map(|b| b.buffers()));
        v
    }

    fn load_buffers(&mut self, buffers: &[Tensor]) {
        let mut off = self.stem.buffers().len();
        self.stem.load_buffers(&buffers[..off]);
        for block in self.stages.iter_mut().flatten() {
            let n = block.buffers().len();
            block.load_buffers(&buffers[off..off + n]);
            off += n;
        }
        assert_eq!(off, buffers.len(), "buffer count mismatch");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puffer_tensor::stats::rel_error;

    fn tiny_resnet18() -> ResNet {
        ResNet::new(ResNetConfig::resnet18(0.125, 4, 1)).unwrap() // base 8
    }

    #[test]
    fn forward_backward_shapes() {
        let mut net = tiny_resnet18();
        let x = Tensor::randn(&[2, 3, 16, 16], 1.0, 2);
        let y = net.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[2, 4]);
        let g = net.backward(&Tensor::ones(&[2, 4]));
        assert_eq!(g.shape(), x.shape());
    }

    #[test]
    fn paper_resnet18_plan_factorizes_seven_blocks() {
        let net = tiny_resnet18();
        assert_eq!(net.block_count(), 8);
        let h = net.to_hybrid(&ResNetHybridPlan::resnet18_paper(), FactorInit::Random(3)).unwrap();
        assert_eq!(h.low_rank_block_count(), 7); // all but stage0 block0
        assert!(h.param_count() < net.param_count());
    }

    #[test]
    fn resnet50_plan_touches_only_last_stage() {
        let net = ResNet::new(ResNetConfig::resnet50(0.0625, 4, 5)).unwrap();
        let h = net.to_hybrid(&ResNetHybridPlan::resnet50_paper(), FactorInit::Random(7)).unwrap();
        assert_eq!(h.low_rank_block_count(), 3); // conv5_x only
        assert!(h.param_count() < net.param_count());
    }

    #[test]
    fn wide_variant_is_wider() {
        let narrow = ResNet::new(ResNetConfig::resnet50(0.0625, 4, 5)).unwrap();
        let wide = ResNet::new(ResNetConfig::wide_resnet50_2(0.0625, 4, 5)).unwrap();
        assert!(wide.param_count() > narrow.param_count());
    }

    #[test]
    fn residual_identity_gradient_flows() {
        // With an identity shortcut, input gradient includes the residual
        // term: zeroing the main path's contribution still leaves gradient.
        let mut block = ResBlock::basic(4, 4, 1, 9).unwrap();
        let x = Tensor::randn(&[1, 4, 6, 6], 1.0, 10);
        let _ = block.forward(&x, Mode::Train);
        let g = block.backward(&Tensor::ones(&[1, 4, 6, 6]));
        assert!(puffer_tensor::stats::l2_norm(&g) > 0.1);
    }

    #[test]
    fn warm_start_hybrid_close_to_parent() {
        let mut net = tiny_resnet18();
        for s in 0..3 {
            let xb = Tensor::randn(&[4, 3, 16, 16], 1.0, s);
            let _ = net.forward(&xb, Mode::Train);
        }
        let x = Tensor::randn(&[2, 3, 16, 16], 1.0, 20);
        let y = net.forward(&x, Mode::Eval);
        let mut plan = ResNetHybridPlan::resnet18_paper();
        plan.rank_ratio = 0.95;
        let mut warm = net.to_hybrid(&plan, FactorInit::WarmStart).unwrap();
        let mut cold = net.to_hybrid(&plan, FactorInit::Random(30)).unwrap();
        let ew = rel_error(&y, &warm.forward(&x, Mode::Eval));
        let ec = rel_error(&y, &cold.forward(&x, Mode::Eval));
        assert!(ew < ec, "warm {ew} vs cold {ec}");
    }

    #[test]
    fn gradcheck_small_block() {
        let mut block = ResBlock::basic(2, 3, 2, 11).unwrap();
        let x = Tensor::randn(&[1, 2, 4, 4], 0.7, 12);
        let dev = puffer_nn::layer::finite_diff_input_check(&mut block, &x, 1e-2);
        assert!(dev < 5e-2, "block grad deviation {dev}");
    }

    #[test]
    fn plan_coverage_logic() {
        let plan = ResNetHybridPlan::resnet18_paper();
        assert!(!plan.covers(0, 0));
        assert!(plan.covers(0, 1));
        assert!(plan.covers(2, 0));
        let plan = ResNetHybridPlan::resnet50_paper();
        assert!(!plan.covers(2, 5));
        assert!(plan.covers(3, 0));
    }
}
