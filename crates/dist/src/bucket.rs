//! Gradient bucketing for comm/compute overlap: the bucket plan, the
//! worker-side readiness tracker, and the aggregator-side
//! [`BucketedReducer`].
//!
//! The PR 5 trainer packs every gradient into one flat buffer and prices a
//! single allreduce per round. Real DDP instead splits the flat buffer
//! into size-targeted buckets assigned in **reverse-backward order** (the
//! tail layers' gradients finalize first during backward) and starts
//! reducing each bucket as soon as its last layer's backward completes —
//! hiding communication behind the remaining compute. This module owns the
//! deterministic machinery of that overlap:
//!
//! * [`BucketPlan`] — maps a [`PackLayout`] to contiguous element ranges,
//!   bucket 0 covering the *last* tensors (first ready). The default
//!   bucket size is `usize::MAX`: one bucket, byte-identical to the PR 5
//!   synchronous path.
//! * [`ReadyTracker`] — records, per bucket, the backward-elapsed time at
//!   which its lowest tensor's gradient finalized (fed by
//!   `Layer::backward_with_ready`).
//! * [`BucketedReducer`] — per-bucket ready-counting over the workers'
//!   in-flight bucket messages, eagerly reducing a bucket the moment every
//!   expected worker has delivered it. The apply order is **pinned**:
//!   contributions are summed in worker-id order (lowest id first) and
//!   scaled once by `1/n`, reproducing `exact_mean` bit for bit at any
//!   bucket size, arrival order, or thread count. All buffers are reused
//!   across rounds — the steady state allocates nothing.

use puffer_compress::pack::PackLayout;
use puffer_tensor::Tensor;
use std::collections::BTreeMap;
use std::ops::Range;

/// How a flat gradient buffer is split into buckets, in **ready order**
/// (bucket 0 = the tail tensors whose gradients finalize first).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BucketPlan {
    /// Per-bucket element range in the flat buffer.
    ranges: Vec<Range<usize>>,
    /// Per-bucket lowest tensor index (the bucket is ready once this
    /// tensor's gradient is final).
    first_tensor: Vec<usize>,
    /// Total flat elements.
    total: usize,
}

impl BucketPlan {
    /// Splits `layout` into buckets of at least `bucket_bytes` bytes,
    /// walking tensors in reverse (the DDP assignment). `usize::MAX`
    /// yields a single bucket — the synchronous flat path. There is always
    /// at least one bucket, even for an empty layout.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_bytes` is zero.
    pub fn new(layout: &PackLayout, bucket_bytes: usize) -> Self {
        assert!(bucket_bytes > 0, "bucket size must be nonzero");
        let count = layout.tensor_count();
        let mut ranges = Vec::new();
        let mut first_tensor = Vec::new();
        let mut hi = count; // exclusive tensor bound of the open bucket
        let mut acc = 0usize;
        for i in (0..count).rev() {
            acc = acc.saturating_add(layout.range_of(i).len() * 4);
            if acc >= bucket_bytes {
                ranges.push(layout.range_of(i).start..layout.range_of(hi - 1).end);
                first_tensor.push(i);
                hi = i;
                acc = 0;
            }
        }
        if hi > 0 {
            ranges.push(0..layout.range_of(hi - 1).end);
            first_tensor.push(0);
        }
        if ranges.is_empty() {
            // Zero tensors: keep the one-bucket protocol invariant alive.
            ranges.push(0..layout.total_len());
            first_tensor.push(0);
        }
        BucketPlan { ranges, first_tensor, total: layout.total_len() }
    }

    /// Number of buckets (always ≥ 1).
    pub fn buckets(&self) -> usize {
        self.ranges.len()
    }

    /// Element range of bucket `b` in the flat buffer.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    pub fn range(&self, b: usize) -> Range<usize> {
        self.ranges[b].clone() // lint:allow(dist-panic-reachability) — b comes from iterating 0..buckets()
    }

    /// Bucket `b`'s payload in bytes.
    pub fn bytes(&self, b: usize) -> usize {
        self.range(b).len() * 4
    }

    /// Lowest tensor index in bucket `b` — the bucket is ready once this
    /// tensor's gradient has finalized during backward.
    pub fn first_tensor(&self, b: usize) -> usize {
        self.first_tensor[b] // lint:allow(dist-panic-reachability) — b comes from iterating 0..buckets()
    }

    /// Total flat elements across all buckets.
    pub fn total_elems(&self) -> usize {
        self.total
    }

    /// Per-bucket byte sizes in ready order (for tests and pricing).
    pub fn byte_sizes(&self) -> Vec<usize> {
        (0..self.buckets()).map(|b| self.bytes(b)).collect()
    }
}

/// Worker-side readiness clock: marks each bucket with the
/// backward-elapsed microseconds at which its gradients finalized.
///
/// `Layer::backward_with_ready` fires `on_ready(first_ready_tensor)` after
/// each layer's backward, meaning "every parameter tensor with index ≥
/// `first_ready_tensor` now holds its final gradient"; bucket `b` becomes
/// ready at the first such call with `first_ready_tensor ≤`… i.e. when
/// [`BucketPlan::first_tensor`]`(b) ≥ first_ready_tensor`. Buckets become
/// ready strictly in plan order, so the tracker is a single cursor.
#[derive(Debug, Clone)]
pub struct ReadyTracker {
    /// Per-bucket lowest tensor index (copied from the plan).
    first_tensor: Vec<usize>,
    /// Per-bucket readiness offset, µs from backward start.
    ready_us: Vec<u64>,
    /// First bucket not yet marked ready.
    next: usize,
}

impl ReadyTracker {
    /// A tracker for `plan`, all buckets unmarked.
    pub fn new(plan: &BucketPlan) -> Self {
        ReadyTracker {
            first_tensor: (0..plan.buckets()).map(|b| plan.first_tensor(b)).collect(),
            ready_us: vec![0; plan.buckets()],
            next: 0,
        }
    }

    /// Rewinds for a new step (buffers kept).
    pub fn start_step(&mut self) {
        self.next = 0;
    }

    /// Records that every tensor with index ≥ `first_ready_tensor` is now
    /// final, at `elapsed_us` µs into the step's compute.
    pub fn on_ready(&mut self, first_ready_tensor: usize, elapsed_us: u64) {
        while self.next < self.first_tensor.len()
            // lint:allow(dist-panic-reachability) — `next < len` is the loop guard
            && self.first_tensor[self.next] >= first_ready_tensor
        {
            // lint:allow(dist-panic-reachability) — both vecs share a length
            self.ready_us[self.next] = elapsed_us;
            self.next += 1;
        }
    }

    /// Marks any still-unready buckets at `elapsed_us` (backward is done;
    /// everything is final now).
    pub fn finish(&mut self, elapsed_us: u64) {
        self.on_ready(0, elapsed_us);
        // A model whose backward never fired the hook (custom Layer impl):
        // everything became ready at the end.
        while self.next < self.first_tensor.len() {
            // lint:allow(dist-panic-reachability) — `next < len` is the loop guard
            self.ready_us[self.next] = elapsed_us;
            self.next += 1;
        }
    }

    /// Per-bucket readiness offsets, µs from compute start.
    pub fn ready_us(&self) -> &[u64] {
        &self.ready_us
    }
}

/// One worker's reassembly slot: the flat buffer its bucket messages are
/// spliced into, plus per-bucket arrival flags.
#[derive(Debug)]
struct Slot {
    flat: Tensor,
    have: Vec<bool>,
}

/// Aggregator-side bucketed reduction with a pinned apply order.
///
/// Buckets arrive out of order across workers; the reducer stores each
/// worker's buckets into a per-worker flat slot and eagerly reduces bucket
/// `b` (sum in worker-id order, lowest first) the moment every *expected*
/// worker has delivered it. If the expected set shrinks mid-round (a crash
/// was detected), [`BucketedReducer::mark_dirty`] voids the eager work and
/// [`BucketedReducer::finalize`] re-reduces over the final contributor set
/// — determinism never depends on arrival timing. The final mean is
/// bitwise-identical to `puffer_compress::exact_mean` over the same
/// contributors: sum in the same order, one multiply by the same `1/n`.
///
/// Slots and the mean buffer persist across rounds; the steady state
/// performs no allocations.
#[derive(Debug)]
pub struct BucketedReducer {
    plan: BucketPlan,
    mean: Tensor,
    /// Per-bucket "already eagerly summed into `mean`" flag.
    reduced: Vec<bool>,
    /// Contributor set the eager reductions were computed over.
    reduced_over: Vec<usize>,
    slots: BTreeMap<usize, Slot>,
}

impl BucketedReducer {
    /// A reducer for `plan` with no worker slots yet (slots materialize on
    /// first contact and are reused for the rest of the run).
    pub fn new(plan: BucketPlan) -> Self {
        let total = plan.total_elems();
        BucketedReducer {
            plan,
            mean: Tensor::zeros(&[total]),
            reduced: Vec::new(),
            reduced_over: Vec::new(),
            slots: BTreeMap::new(),
        }
    }

    /// The bucket plan this reducer follows.
    pub fn plan(&self) -> &BucketPlan {
        &self.plan
    }

    /// Resets per-round state (arrival flags, eager-reduction marks);
    /// keeps every buffer.
    pub fn start_round(&mut self) {
        for slot in self.slots.values_mut() {
            slot.have.iter_mut().for_each(|h| *h = false);
        }
        self.reduced.clear();
        self.reduced.resize(self.plan.buckets(), false);
        self.reduced_over.clear();
    }

    /// Stores worker `worker`'s bucket `b` payload. Returns `false` (and
    /// stores nothing) on a duplicate delivery or a length mismatch —
    /// both indicate a corrupted or stale message the caller rejects.
    pub fn accept(&mut self, worker: usize, b: usize, data: &[f32]) -> bool {
        if b >= self.plan.buckets() || data.len() != self.plan.range(b).len() {
            return false;
        }
        let total = self.plan.total_elems();
        let buckets = self.plan.buckets();
        let slot = self
            .slots
            .entry(worker)
            .or_insert_with(|| Slot { flat: Tensor::zeros(&[total]), have: vec![false; buckets] });
        // lint:allow(dist-panic-reachability) — `b < buckets()` checked on entry
        if slot.have[b] {
            return false;
        }
        // lint:allow(dist-panic-reachability) — plan ranges lie within the slot by construction
        slot.flat.as_mut_slice()[self.plan.range(b)].copy_from_slice(data);
        slot.have[b] = true; // lint:allow(dist-panic-reachability) — `b < buckets()` checked on entry
        true
    }

    /// Whether every bucket of `worker` has arrived this round.
    pub fn complete(&self, worker: usize) -> bool {
        self.slots.get(&worker).is_some_and(|s| s.have.iter().all(|&h| h))
    }

    /// Number of buckets of `worker` that have arrived this round.
    pub fn arrived(&self, worker: usize) -> usize {
        self.slots.get(&worker).map_or(0, |s| s.have.iter().filter(|&&h| h).count())
    }

    /// The assembled flat buffer of `worker` (valid once
    /// [`BucketedReducer::complete`] holds).
    pub fn assembled(&self, worker: usize) -> Option<&Tensor> {
        self.slots.get(&worker).map(|s| &s.flat)
    }

    /// Eagerly sums every not-yet-reduced bucket that all of `expected`
    /// have delivered. Returns how many buckets were reduced by this call.
    /// The first call of a round fixes the contributor set the eager sums
    /// run over; a later call with a *different* set voids them first.
    pub fn try_reduce(&mut self, expected: &[usize]) -> usize {
        if expected.is_empty() {
            return 0;
        }
        if self.reduced_over != expected {
            // Contributor set changed (or first call): eager sums computed
            // over the old set are void.
            self.mark_dirty();
            self.reduced_over.clear();
            self.reduced_over.extend_from_slice(expected);
        }
        let mut newly = 0;
        // All `[b]` accesses below are in-bounds: `reduced` and every
        // slot's `have` are sized to `plan.buckets()` on creation.
        for b in 0..self.plan.buckets() {
            // lint:allow(dist-panic-reachability) — b iterates 0..buckets()
            if self.reduced[b] {
                continue;
            }
            let all_in = expected
                .iter()
                // lint:allow(dist-panic-reachability) — b iterates 0..buckets()
                .all(|w| self.slots.get(w).is_some_and(|s| s.have[b]));
            if all_in {
                self.sum_bucket(b, expected);
                self.reduced[b] = true; // lint:allow(dist-panic-reachability) — b iterates 0..buckets()
                newly += 1;
            }
        }
        newly
    }

    /// Voids all eager reductions (the expected worker set shrank).
    pub fn mark_dirty(&mut self) {
        self.reduced.iter_mut().for_each(|r| *r = false);
    }

    /// Completes the round: re-reduces any bucket not eagerly summed over
    /// exactly `contributors` (worker-id order, lowest first), scales the
    /// sum by `1/n`, and returns the mean flat buffer. `contributors` must
    /// be sorted, non-empty, and complete (every listed worker delivered
    /// every bucket).
    pub fn finalize(&mut self, contributors: &[usize]) -> &Tensor {
        if self.reduced_over != contributors {
            self.mark_dirty();
            self.reduced_over.clear();
            self.reduced_over.extend_from_slice(contributors);
        }
        for b in 0..self.plan.buckets() {
            // lint:allow(dist-panic-reachability) — b iterates 0..buckets(), `reduced` is that long
            if !self.reduced[b] {
                self.sum_bucket(b, contributors);
                self.reduced[b] = true; // lint:allow(dist-panic-reachability) — b iterates 0..buckets()
            }
        }
        if !contributors.is_empty() {
            // Matches `exact_mean`: one multiply by the f32 `1/n`.
            let inv = 1.0 / (contributors.len() as f32);
            for m in self.mean.as_mut_slice() {
                *m *= inv;
            }
        }
        &self.mean
    }

    /// Sums bucket `b` over `contributors` into `mean[range]`, pinned to
    /// worker-id order: copy the first contributor, add the rest — the
    /// exact operation order of `exact_mean` restricted to this range.
    fn sum_bucket(&mut self, b: usize, contributors: &[usize]) {
        let range = self.plan.range(b);
        // lint:allow(dist-panic-reachability) — plan ranges lie within `mean` by construction
        let mean = &mut self.mean.as_mut_slice()[range.clone()];
        let mut first = true;
        for w in contributors {
            let Some(slot) = self.slots.get(w) else { continue };
            // lint:allow(dist-panic-reachability) — every slot is sized to the plan's total
            let src = &slot.flat.as_slice()[range.clone()];
            if first {
                mean.copy_from_slice(src);
                first = false;
            } else {
                for (m, s) in mean.iter_mut().zip(src) {
                    *m += *s;
                }
            }
        }
        if first {
            // No contributor delivered this bucket (all lost): zero it so
            // the mean stays finite — the skip verdict upstream prevents
            // this from ever being applied.
            mean.iter_mut().for_each(|m| *m = 0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puffer_compress::exact_mean;
    use puffer_compress::pack::{pack_refs_with, unpack};

    fn layout_of(shapes: &[&[usize]]) -> (Vec<Tensor>, PackLayout) {
        let tensors: Vec<Tensor> =
            shapes.iter().enumerate().map(|(i, s)| Tensor::randn(s, 1.0, 7 + i as u64)).collect();
        let refs: Vec<&Tensor> = tensors.iter().collect();
        let layout = PackLayout::of_refs(&refs);
        (tensors, layout)
    }

    #[test]
    fn max_bucket_bytes_is_one_flat_bucket() {
        let (_, layout) = layout_of(&[&[4, 3], &[3], &[3, 2], &[2]]);
        let plan = BucketPlan::new(&layout, usize::MAX);
        assert_eq!(plan.buckets(), 1);
        assert_eq!(plan.range(0), 0..layout.total_len());
        assert_eq!(plan.first_tensor(0), 0);
    }

    #[test]
    fn reverse_walk_matches_ddp_bucketize() {
        // The plan's byte sizes must agree with ddp::bucketize over the
        // same per-tensor byte list (both walk in reverse).
        let (_, layout) = layout_of(&[&[64, 8], &[8], &[32, 8], &[8], &[8, 4], &[4]]);
        let tensor_bytes: Vec<usize> =
            (0..layout.tensor_count()).map(|i| layout.range_of(i).len() * 4).collect();
        for bucket_bytes in [1usize, 256, 1024, 2048, usize::MAX] {
            let plan = BucketPlan::new(&layout, bucket_bytes);
            assert_eq!(
                plan.byte_sizes(),
                crate::ddp::bucketize(&tensor_bytes, bucket_bytes),
                "bucket_bytes={bucket_bytes}"
            );
        }
    }

    #[test]
    fn buckets_are_contiguous_and_cover_everything() {
        let (_, layout) = layout_of(&[&[10, 10], &[10], &[10, 5], &[5], &[5, 2], &[2]]);
        let plan = BucketPlan::new(&layout, 200);
        assert!(plan.buckets() > 1);
        // Ready order is reverse: bucket 0 ends at the buffer end; the last
        // bucket starts at 0. Consecutive buckets tile the buffer.
        assert_eq!(plan.range(0).end, layout.total_len());
        assert_eq!(plan.range(plan.buckets() - 1).start, 0);
        for b in 1..plan.buckets() {
            assert_eq!(plan.range(b).end, plan.range(b - 1).start, "bucket {b} not adjacent");
        }
        // first_tensor is the tensor whose range starts the bucket.
        for b in 0..plan.buckets() {
            assert_eq!(layout.range_of(plan.first_tensor(b)).start, plan.range(b).start);
        }
    }

    #[test]
    fn empty_layout_still_has_one_bucket() {
        let layout = PackLayout::of(&[]);
        let plan = BucketPlan::new(&layout, 1024);
        assert_eq!(plan.buckets(), 1);
        assert_eq!(plan.range(0), 0..0);
    }

    #[test]
    #[should_panic(expected = "bucket size")]
    fn zero_bucket_bytes_rejected() {
        let (_, layout) = layout_of(&[&[2]]);
        let _ = BucketPlan::new(&layout, 0);
    }

    #[test]
    fn ready_tracker_marks_buckets_in_reverse_backward_order() {
        let (_, layout) = layout_of(&[&[4, 4], &[4], &[4, 2], &[2]]);
        // Two buckets: {tensors 2,3} (ready first), {tensors 0,1}.
        let plan = BucketPlan::new(&layout, (4 * 2 + 2) * 4);
        assert_eq!(plan.buckets(), 2);
        let mut tracker = ReadyTracker::new(&plan);
        tracker.start_step();
        // Backward of the second Linear finishes: tensors 2.. are final.
        tracker.on_ready(2, 100);
        assert_eq!(tracker.ready_us()[0], 100);
        // Backward of the first Linear finishes: everything final.
        tracker.on_ready(0, 250);
        assert_eq!(tracker.ready_us(), &[100, 250]);
        // Restart reuses the buffers.
        tracker.start_step();
        tracker.finish(400);
        assert_eq!(tracker.ready_us(), &[400, 400]);
    }

    /// The reference: sync-path mean via pack → unpack → exact_mean.
    fn sync_mean(worker_flats: &[Tensor], layout: &PackLayout) -> Tensor {
        let contributions: Vec<Vec<Tensor>> =
            worker_flats.iter().map(|f| unpack(f, layout)).collect();
        let mean = exact_mean(&contributions);
        let refs: Vec<&Tensor> = mean.iter().collect();
        pack_refs_with(layout, &refs)
    }

    #[test]
    fn reduction_is_bitwise_identical_to_exact_mean_at_any_bucket_size() {
        let (_, layout) = layout_of(&[&[16, 8], &[8], &[8, 8], &[8], &[8, 3], &[3]]);
        let total = layout.total_len();
        let workers = 4;
        let flats: Vec<Tensor> =
            (0..workers).map(|w| Tensor::randn(&[total], 1.0, 100 + w as u64)).collect();
        let want = sync_mean(&flats, &layout);
        for bucket_bytes in [64usize, 256, 777, usize::MAX] {
            let plan = BucketPlan::new(&layout, bucket_bytes);
            let mut red = BucketedReducer::new(plan);
            red.start_round();
            let ids: Vec<usize> = (0..workers).collect();
            // Deliver buckets in a scrambled order across workers.
            let buckets = red.plan().buckets();
            for b in (0..buckets).rev() {
                for w in (0..workers).rev() {
                    let r = red.plan().range(b);
                    assert!(red.accept(w, b, &flats[w].as_slice()[r]));
                    let _ = red.try_reduce(&ids);
                }
            }
            for w in 0..workers {
                assert!(red.complete(w));
            }
            let got = red.finalize(&ids);
            assert_eq!(
                got.as_slice(),
                want.as_slice(),
                "bucket_bytes={bucket_bytes} diverged from exact_mean"
            );
        }
    }

    #[test]
    fn shrinking_contributor_set_rereduces_deterministically() {
        let (_, layout) = layout_of(&[&[8, 4], &[4], &[4, 4], &[4]]);
        let total = layout.total_len();
        let flats: Vec<Tensor> = (0..3).map(|w| Tensor::randn(&[total], 1.0, 50 + w)).collect();
        let plan = BucketPlan::new(&layout, 64);
        let mut red = BucketedReducer::new(plan);
        red.start_round();
        // All three workers deliver everything; eager reduction runs over
        // the full set.
        for w in 0..3 {
            for b in 0..red.plan().buckets() {
                let r = red.plan().range(b);
                assert!(red.accept(w, b, &flats[w].as_slice()[r]));
            }
        }
        assert_eq!(red.try_reduce(&[0, 1, 2]), red.plan().buckets());
        // Worker 1 is then rejected (corrupt checksum, say): finalize over
        // the survivor set must equal the survivors' exact_mean.
        let survivors = [flats[0].clone(), flats[2].clone()];
        let want = sync_mean(&survivors, &layout);
        red.mark_dirty();
        let got = red.finalize(&[0, 2]);
        assert_eq!(got.as_slice(), want.as_slice());
    }

    #[test]
    fn duplicate_and_malformed_deliveries_are_rejected() {
        let (_, layout) = layout_of(&[&[4], &[4]]);
        let plan = BucketPlan::new(&layout, usize::MAX);
        let mut red = BucketedReducer::new(plan);
        red.start_round();
        let data = vec![1.0f32; 8];
        assert!(red.accept(0, 0, &data));
        assert!(!red.accept(0, 0, &data), "duplicate bucket accepted");
        assert!(!red.accept(0, 1, &data), "out-of-range bucket accepted");
        assert!(!red.accept(0, 0, &data[..3]), "wrong-length payload accepted");
        assert_eq!(red.arrived(0), 1);
        assert!(red.complete(0));
        assert_eq!(red.arrived(9), 0);
        assert!(!red.complete(9));
    }

    #[test]
    fn round_restart_reuses_slots_and_clears_arrivals() {
        let (_, layout) = layout_of(&[&[6], &[6]]);
        let plan = BucketPlan::new(&layout, 24);
        let mut red = BucketedReducer::new(plan);
        for round in 0..3 {
            red.start_round();
            let flats: Vec<Tensor> =
                (0..2).map(|w| Tensor::randn(&[12], 1.0, 900 + round * 10 + w)).collect();
            for (w, f) in flats.iter().enumerate() {
                assert!(!red.complete(w) || round == 0, "arrivals leaked across rounds");
                for b in 0..red.plan().buckets() {
                    let r = red.plan().range(b);
                    assert!(red.accept(w, b, &f.as_slice()[r]));
                }
            }
            let want = sync_mean(&flats, &layout);
            assert_eq!(red.finalize(&[0, 1]).as_slice(), want.as_slice(), "round {round}");
        }
    }
}
