//! Inside crates/insight — the analyzer half of the observability stack
//! is allowed to own quantile math, so nothing here may be flagged.

pub fn percentile(xs: &[f64], q: f64) -> f64 {
    xs[((xs.len() - 1) as f64 * q) as usize]
}

pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 0.5)
}
