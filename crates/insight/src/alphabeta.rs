//! Measured α–β extraction and reconciliation against the analytic model.
//!
//! Every comm span carries `(nodes, bytes_per_worker, duration)`. Under
//! the cost model (`puffer_dist::cost`), a collective's time is linear in
//! α and β with closed-form coefficients:
//!
//! ```text
//! allreduce:      T = 2(p−1)·α + 2·((p−1)/p)·n·β            (ring)
//! tree_allreduce: T = 2⌈log₂p⌉·α + 2⌈log₂p⌉·n·β
//! hier_allreduce: T = (2⌈log₂g⌉ + 2(G−1))·α
//!                   + (2⌈log₂g⌉ + 2(G−1)/G)·n·β             (G = ⌈p/g⌉)
//! allgather:      T = (p−1)·α + (p−1)·n·β
//! ```
//!
//! so a per-collective least-squares fit over the observed
//! `(coeff_α, coeff_β, T)` triples recovers the α and β the run actually
//! exhibited. Overlapped (bucketed) rounds contribute one observation per
//! bucket span ([`Round::comm_obs`]) — different bucket sizes within one
//! round are distinct `n` operating points for free. A run at a single
//! `(p, n)` operating point is rank-deficient (all rows proportional) —
//! the fit is flagged [`AlphaBetaFit::degenerate`] and pins α to 0,
//! reporting only the effective per-byte rate. Elastic runs (a crash, a
//! join) change `p` mid-run and make the system well-posed for free.
//!
//! [`reconcile`] then replays every round through the *configured*
//! profile via [`ClusterProfile::allreduce`]/[`ClusterProfile::allgather`]
//! — the same code the trainer priced with — and reports the relative
//! error between modeled and measured comm. For a jitter-free run the two
//! agree to clock quantization; per-round jitter widens it by at most the
//! configured jitter fraction.

use crate::rounds::{CommObs, Round};
use puffer_dist::cost::{ceil_log2, hier_group, ClusterProfile};

/// The α and β coefficients of one observation: `T = cα·α + cβ·β`.
/// `group` is the hierarchical intra-group size the span stamped (`None`
/// for the other collectives, or to let the model auto-pick `⌈√p⌉`).
#[must_use]
pub fn coefficients(
    collective: &str,
    nodes: f64,
    group: Option<f64>,
    bytes_per_worker: f64,
) -> Option<(f64, f64)> {
    if nodes <= 1.0 {
        return None;
    }
    match collective {
        "allreduce" => {
            Some((2.0 * (nodes - 1.0), 2.0 * ((nodes - 1.0) / nodes) * bytes_per_worker))
        }
        "tree_allreduce" => {
            let rounds = 2.0 * f64::from(ceil_log2(nodes as usize));
            Some((rounds, rounds * bytes_per_worker))
        }
        "hier_allreduce" => {
            let p = nodes as usize;
            let g = hier_group(p, group.map_or(0, |g| g as usize));
            let groups = p.div_ceil(g) as f64;
            let intra = 2.0 * f64::from(ceil_log2(g));
            let ca = intra + 2.0 * (groups - 1.0);
            let cb = (intra + 2.0 * ((groups - 1.0) / groups)) * bytes_per_worker;
            Some((ca, cb))
        }
        "allgather" => Some((nodes - 1.0, (nodes - 1.0) * bytes_per_worker)),
        _ => None,
    }
}

/// The comm observations of a round: the per-bucket spans when the trace
/// recorded them, else one synthetic whole-round observation (legacy
/// traces).
fn round_obs(r: &Round) -> Vec<CommObs> {
    if !r.comm_obs.is_empty() {
        r.comm_obs.clone()
    } else if let Some(name) = &r.collective {
        vec![CommObs {
            collective: name.clone(),
            nodes: r.nodes,
            group: None,
            bytes_per_worker: r.bytes_per_worker,
            dur_us: r.comm_us,
        }]
    } else {
        Vec::new()
    }
}

/// A per-collective least-squares α–β fit.
#[derive(Debug, Clone, PartialEq)]
pub struct AlphaBetaFit {
    /// Collective the fit covers.
    pub collective: String,
    /// Observations used.
    pub points: usize,
    /// Fitted per-message latency α in seconds.
    pub alpha: f64,
    /// Fitted per-byte time β in seconds.
    pub beta: f64,
    /// Rank-deficient fit (single operating point): α pinned to 0, β is
    /// the effective per-byte rate only.
    pub degenerate: bool,
    /// Largest relative residual `|model − T| / T` over the fit points.
    pub max_rel_residual: f64,
}

/// Fits α–β per collective from the reconstructed rounds (skipped rounds
/// and single-node rounds contribute nothing).
#[must_use]
pub fn fit_collectives(rounds: &[Round]) -> Vec<AlphaBetaFit> {
    // (coeff_α, coeff_β, measured seconds) observations per collective.
    type Obs = (f64, f64, f64);
    let mut by_collective: Vec<(String, Vec<Obs>)> = Vec::new();
    for r in rounds {
        if r.skipped || r.comm_us <= 0.0 {
            continue;
        }
        for o in round_obs(r) {
            if o.dur_us <= 0.0 {
                continue;
            }
            let group = o.group.map(|g| g as f64);
            let Some((ca, cb)) =
                coefficients(&o.collective, o.nodes as f64, group, o.bytes_per_worker)
            else {
                continue;
            };
            let t = o.dur_us * 1e-6;
            match by_collective.iter_mut().find(|(n, _)| *n == o.collective) {
                Some((_, pts)) => pts.push((ca, cb, t)),
                None => by_collective.push((o.collective.clone(), vec![(ca, cb, t)])),
            }
        }
    }
    by_collective
        .into_iter()
        .map(|(collective, pts)| {
            let (mut scc, mut scd, mut sdd, mut sct, mut sdt) = (0.0, 0.0, 0.0, 0.0, 0.0);
            for &(c, d, t) in &pts {
                scc += c * c;
                scd += c * d;
                sdd += d * d;
                sct += c * t;
                sdt += d * t;
            }
            let det = scc * sdd - scd * scd;
            let (alpha, beta, degenerate) = if det > 1e-9 * scc * sdd {
                ((sct * sdd - sdt * scd) / det, (scc * sdt - scd * sct) / det, false)
            } else if sdd > 0.0 {
                // Rank-deficient: report the effective per-byte rate.
                (0.0, sdt / sdd, true)
            } else {
                (0.0, 0.0, true)
            };
            let max_rel_residual = pts
                .iter()
                .map(|&(c, d, t)| (c * alpha + d * beta - t).abs() / t.max(1e-12))
                .fold(0.0f64, f64::max);
            AlphaBetaFit {
                collective,
                points: pts.len(),
                alpha,
                beta,
                degenerate,
                max_rel_residual,
            }
        })
        .collect()
}

/// How the configured analytic model compares to the measured comm spans.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelReconciliation {
    /// Collective reconciled.
    pub collective: String,
    /// Rounds replayed through the model.
    pub rounds: usize,
    /// Mean relative error `|model − measured| / measured`.
    pub mean_rel_err: f64,
    /// Worst-round relative error.
    pub max_rel_err: f64,
}

/// Replays every round through the configured [`ClusterProfile`] (the
/// analytic α–β model in `puffer_dist::cost`) and reports per-collective
/// relative error against the measured comm spans. Returns an empty list
/// when the run stamped no `alpha`/`beta` in its header.
#[must_use]
pub fn reconcile(rounds: &[Round], alpha: f64, beta: f64) -> Vec<ModelReconciliation> {
    let mut out: Vec<(String, Vec<f64>)> = Vec::new();
    for r in rounds {
        if r.skipped || r.comm_us <= 0.0 {
            continue;
        }
        for o in round_obs(r) {
            if o.dur_us <= 0.0 || o.nodes <= 1 {
                continue;
            }
            let profile = ClusterProfile { alpha, beta, nodes: o.nodes as usize };
            let bytes = o.bytes_per_worker as usize;
            let model = match o.collective.as_str() {
                "allreduce" => profile.allreduce(bytes),
                "allgather" => profile.allgather(bytes),
                "tree_allreduce" => profile.tree_allreduce(bytes),
                "hier_allreduce" => {
                    profile.hier_allreduce(bytes, o.group.map_or(0, |g| g as usize))
                }
                _ => continue,
            };
            let measured_s = o.dur_us * 1e-6;
            let rel = (model.as_secs_f64() - measured_s).abs() / measured_s.max(1e-12);
            match out.iter_mut().find(|(n, _)| *n == o.collective) {
                Some((_, errs)) => errs.push(rel),
                None => out.push((o.collective.clone(), vec![rel])),
            }
        }
    }
    out.into_iter()
        .map(|(collective, errs)| ModelReconciliation {
            collective,
            rounds: errs.len(),
            mean_rel_err: errs.iter().sum::<f64>() / errs.len() as f64,
            max_rel_err: errs.iter().copied().fold(0.0, f64::max),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rounds::Bound;
    use std::collections::BTreeMap;

    /// A minimal round carrying only what the fitter reads.
    fn comm_round(step: u64, nodes: u64, bytes_per_worker: f64, comm_us: f64) -> Round {
        Round {
            step,
            nodes,
            round_us: comm_us,
            skipped: false,
            worker_compute_us: BTreeMap::new(),
            slowest_worker: None,
            compute_us: 0.0,
            encode_us: 0.0,
            comm_us,
            comm_exposed_us: comm_us,
            collective: Some("allreduce".to_string()),
            comm_obs: Vec::new(),
            bytes_per_worker,
            bytes: bytes_per_worker * nodes as f64,
            decode_us: 0.0,
            apply_us: 0.0,
            apply_worker: None,
            faults: Vec::new(),
            critical_path: Vec::new(),
            bound: Bound::Comm,
        }
    }

    fn model_us(alpha: f64, beta: f64, p: f64, n: f64) -> f64 {
        (2.0 * (p - 1.0) * alpha + 2.0 * ((p - 1.0) / p) * n * beta) * 1e6
    }

    #[test]
    fn two_operating_points_recover_alpha_beta_exactly() {
        let (alpha, beta) = (50e-6, 8.0 / 10e9);
        // Mix of p=4 and p=3 rounds at two message sizes — well-posed.
        let rounds = vec![
            comm_round(0, 4, 3344.0, model_us(alpha, beta, 4.0, 3344.0)),
            comm_round(1, 4, 3344.0, model_us(alpha, beta, 4.0, 3344.0)),
            comm_round(2, 3, 3344.0, model_us(alpha, beta, 3.0, 3344.0)),
            comm_round(3, 3, 104.0, model_us(alpha, beta, 3.0, 104.0)),
        ];
        let fits = fit_collectives(&rounds);
        assert_eq!(fits.len(), 1);
        let f = &fits[0];
        assert!(!f.degenerate);
        assert_eq!(f.points, 4);
        assert!((f.alpha - alpha).abs() / alpha < 1e-6, "alpha {} vs {alpha}", f.alpha);
        assert!((f.beta - beta).abs() / beta < 1e-6, "beta {} vs {beta}", f.beta);
        assert!(f.max_rel_residual < 1e-6);
    }

    #[test]
    fn single_operating_point_is_flagged_degenerate() {
        let rounds: Vec<Round> =
            (0..5).map(|s| comm_round(s, 4, 1000.0, model_us(50e-6, 1e-9, 4.0, 1000.0))).collect();
        let fits = fit_collectives(&rounds);
        assert!(fits[0].degenerate, "one (p, n) point cannot separate α from β");
        assert_eq!(fits[0].alpha, 0.0);
        assert!(fits[0].beta > 0.0, "effective per-byte rate still reported");
    }

    #[test]
    fn reconcile_agrees_with_the_generating_model() {
        let (alpha, beta) = (50e-6, 8.0 / 10e9);
        let rounds = vec![
            comm_round(0, 4, 3344.0, model_us(alpha, beta, 4.0, 3344.0)),
            comm_round(1, 3, 3344.0, model_us(alpha, beta, 3.0, 3344.0)),
        ];
        let recs = reconcile(&rounds, alpha, beta);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].rounds, 2);
        assert!(recs[0].max_rel_err < 1e-6, "max_rel_err {}", recs[0].max_rel_err);
        // A mis-configured model is visibly off.
        let wrong = reconcile(&rounds, alpha * 3.0, beta);
        assert!(wrong[0].mean_rel_err > 0.1);
    }

    #[test]
    fn coefficient_forms_match_cost_rs() {
        // The fitter's closed forms must be the analytic model's.
        // `ClusterProfile` returns a `Duration`, which quantizes to whole
        // nanoseconds, so agree to within that rounding (0.5 ns).
        let p = ClusterProfile { alpha: 2e-5, beta: 3e-10, nodes: 5 };
        let n = 12_345usize;
        let (ca, cb) = coefficients("allreduce", 5.0, None, n as f64).unwrap();
        let t = ca * p.alpha + cb * p.beta;
        assert!((t - p.allreduce(n).as_secs_f64()).abs() < 1e-9);
        let (ca, cb) = coefficients("allgather", 5.0, None, n as f64).unwrap();
        let t = ca * p.alpha + cb * p.beta;
        assert!((t - p.allgather(n).as_secs_f64()).abs() < 1e-9);
        assert!(coefficients("allreduce", 1.0, None, 10.0).is_none(), "p=1 is free, no fit point");
        assert!(coefficients("broadcast", 4.0, None, 10.0).is_none());
    }

    #[test]
    fn tree_and_hier_coefficient_forms_match_cost_rs() {
        // Pin the new collectives' fitter forms to the analytic model for
        // every p the trainer can run, auto and explicit group sizes.
        let n = 9_876usize;
        for p in 2..=64usize {
            let prof = ClusterProfile { alpha: 2e-5, beta: 3e-10, nodes: p };
            let (ca, cb) = coefficients("tree_allreduce", p as f64, None, n as f64).unwrap();
            let t = ca * prof.alpha + cb * prof.beta;
            assert!(
                (t - prof.tree_allreduce(n).as_secs_f64()).abs() < 1e-9,
                "tree p={p}: {t} vs {}",
                prof.tree_allreduce(n).as_secs_f64()
            );
            for group in [0usize, 1, 2, 4, p] {
                // The spans stamp the *resolved* g; passing it back must
                // price identically to the model's own resolution.
                let g = puffer_dist::cost::hier_group(p, group);
                let (ca, cb) =
                    coefficients("hier_allreduce", p as f64, Some(g as f64), n as f64).unwrap();
                let t = ca * prof.alpha + cb * prof.beta;
                assert!(
                    (t - prof.hier_allreduce(n, g).as_secs_f64()).abs() < 1e-9,
                    "hier p={p} g={g}: {t} vs {}",
                    prof.hier_allreduce(n, g).as_secs_f64()
                );
            }
            // `None` falls back to the model's auto `⌈√p⌉` pick.
            let (ca, cb) = coefficients("hier_allreduce", p as f64, None, n as f64).unwrap();
            let t = ca * prof.alpha + cb * prof.beta;
            assert!((t - prof.hier_allreduce(n, 0).as_secs_f64()).abs() < 1e-9);
        }
    }

    #[test]
    fn bucketed_observations_feed_the_fit_and_reconcile() {
        use crate::rounds::CommObs;
        let (alpha, beta) = (50e-6, 8.0 / 10e9);
        let prof = |p: usize| ClusterProfile { alpha, beta, nodes: p };
        // One overlapped round: three tree buckets at p=4 with distinct
        // sizes — enough operating points for a well-posed fit on their
        // own, all priced by the generating model.
        let mut r = comm_round(0, 4, 0.0, 0.0);
        r.collective = Some("tree_allreduce".to_string());
        for bytes in [100usize, 5_000, 120_000] {
            r.comm_obs.push(CommObs {
                collective: "tree_allreduce".to_string(),
                nodes: 4,
                group: None,
                bytes_per_worker: bytes as f64,
                dur_us: prof(4).tree_allreduce(bytes).as_secs_f64() * 1e6,
            });
            r.comm_us += prof(4).tree_allreduce(bytes).as_secs_f64() * 1e6;
        }
        // A second round at p=3 varies the node count too.
        let mut r2 = comm_round(1, 3, 0.0, 0.0);
        r2.collective = Some("tree_allreduce".to_string());
        r2.comm_obs.push(CommObs {
            collective: "tree_allreduce".to_string(),
            nodes: 3,
            group: None,
            bytes_per_worker: 5_000.0,
            dur_us: prof(3).tree_allreduce(5_000).as_secs_f64() * 1e6,
        });
        r2.comm_us = r2.comm_obs[0].dur_us;
        let rounds = vec![r, r2];
        let fits = fit_collectives(&rounds);
        assert_eq!(fits.len(), 1);
        assert_eq!(fits[0].collective, "tree_allreduce");
        assert_eq!(fits[0].points, 4, "one observation per bucket span");
        assert!(!fits[0].degenerate);
        assert!((fits[0].alpha - alpha).abs() / alpha < 1e-3, "alpha {}", fits[0].alpha);
        assert!((fits[0].beta - beta).abs() / beta < 1e-3, "beta {}", fits[0].beta);
        let recs = reconcile(&rounds, alpha, beta);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].rounds, 4);
        assert!(recs[0].max_rel_err < 1e-3, "max_rel_err {}", recs[0].max_rel_err);
    }
}
