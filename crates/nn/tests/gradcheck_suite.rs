//! Systematic finite-difference gradient checks across every layer family
//! and several compositions — the safety net under all training results.

use puffer_nn::activation::{Relu, Tanh};
use puffer_nn::conv::{Conv2d, LowRankConv2d};
use puffer_nn::dropout::Dropout;
use puffer_nn::layer::{finite_diff_input_check, finite_diff_param_check, Layer, Mode, Sequential};
use puffer_nn::linear::{Linear, LowRankLinear};
use puffer_nn::norm::{BatchNorm2d, LayerNorm};
use puffer_nn::pool::{Flatten, GlobalAvgPool, MaxPool2d};
use puffer_tensor::Tensor;

const TOL: f32 = 3e-2;
const EPS: f32 = 1e-2;

fn check_input<L: Layer>(name: &str, layer: &mut L, input: &Tensor) {
    let dev = finite_diff_input_check(layer, input, EPS);
    assert!(dev < TOL, "{name}: input grad deviation {dev}");
}

fn check_params<L: Layer>(name: &str, layer: &mut L, input: &Tensor) {
    let dev = finite_diff_param_check(layer, input, EPS);
    assert!(dev < TOL, "{name}: param grad deviation {dev}");
}

#[test]
fn dense_layers_gradcheck() {
    let x2 = Tensor::randn(&[3, 5], 0.8, 1);
    check_input("linear", &mut Linear::new(5, 4, true, 1).unwrap(), &x2);
    check_params("linear", &mut Linear::new(5, 4, true, 2).unwrap(), &x2);
    check_input("low_rank_linear", &mut LowRankLinear::new(5, 4, 2, true, 3).unwrap(), &x2);
    check_params("low_rank_linear", &mut LowRankLinear::new(5, 4, 2, true, 4).unwrap(), &x2);
}

#[test]
fn conv_layers_gradcheck() {
    let x4 = Tensor::randn(&[2, 2, 5, 5], 0.8, 5);
    check_input("conv_s1", &mut Conv2d::new(2, 3, 3, 1, 1, true, 6).unwrap(), &x4);
    check_params("conv_s1", &mut Conv2d::new(2, 3, 3, 1, 1, true, 7).unwrap(), &x4);
    check_input("conv_s2_p0", &mut Conv2d::new(2, 2, 3, 2, 0, false, 8).unwrap(), &x4);
    check_input("conv_1x1", &mut Conv2d::new(2, 4, 1, 1, 0, false, 9).unwrap(), &x4);
    check_input("low_rank_conv", &mut LowRankConv2d::new(2, 4, 3, 1, 1, 2, 10).unwrap(), &x4);
    check_params("low_rank_conv", &mut LowRankConv2d::new(2, 4, 3, 1, 1, 2, 11).unwrap(), &x4);
}

#[test]
fn norm_layers_gradcheck() {
    let x4 = Tensor::randn(&[3, 2, 3, 3], 0.8, 12);
    check_input("batchnorm", &mut BatchNorm2d::new(2).unwrap(), &x4);
    check_params("batchnorm", &mut BatchNorm2d::new(2).unwrap(), &x4);
    let x2 = Tensor::randn(&[4, 6], 0.8, 13);
    check_input("layernorm", &mut LayerNorm::new(6).unwrap(), &x2);
    check_params("layernorm", &mut LayerNorm::new(6).unwrap(), &x2);
}

#[test]
fn activation_and_pool_gradcheck() {
    // Keep inputs away from ReLU/max kinks where the derivative jumps.
    let x = Tensor::rand_uniform(&[2, 8], 0.2, 1.0, 14);
    check_input("relu", &mut Relu::new(), &x);
    check_input("tanh", &mut Tanh::new(), &x);

    let ximg =
        Tensor::from_vec((0..32).map(|i| i as f32 * 0.37 % 5.0).collect(), &[1, 2, 4, 4]).unwrap();
    check_input("maxpool", &mut MaxPool2d::new(2, 2), &ximg);
    check_input("gap", &mut GlobalAvgPool::new(), &ximg);
    check_input("flatten", &mut Flatten::new(), &ximg);
}

#[test]
fn composite_stack_gradcheck() {
    // The full CNN motif: conv → BN-free ReLU chain → pool → flatten → FC.
    let mut net = Sequential::new(vec![
        Box::new(Conv2d::new(2, 3, 3, 1, 1, false, 20).unwrap()),
        Box::new(Tanh::new()), // smooth activation for clean finite diffs
        Box::new(MaxPool2d::new(2, 2)),
        Box::new(Flatten::new()),
        Box::new(Linear::new(3 * 2 * 2, 3, true, 21).unwrap()),
    ]);
    let x = Tensor::randn(&[2, 2, 4, 4], 0.6, 22);
    check_input("composite", &mut net, &x);
    check_params("composite", &mut net, &x);
}

#[test]
fn dropout_eval_passthrough_gradcheck() {
    // In eval mode dropout is the identity; in train mode the mask makes
    // finite differencing invalid (fresh mask per forward), so only the
    // deterministic path is checked here.
    let mut d = Dropout::new(0.5, 1);
    let x = Tensor::randn(&[3, 4], 1.0, 23);
    let y = d.forward(&x, Mode::Eval);
    assert_eq!(y, x);
    let g = d.backward(&Tensor::ones(&[3, 4]));
    assert_eq!(g.as_slice(), &[1.0; 12]);
}

#[test]
fn low_rank_layers_match_dense_gradients_at_full_rank() {
    // At full rank with warm-start factors, the *input gradients* of the
    // factorized layer match the dense layer's (chain rule through UVᵀ).
    let mut dense = Linear::new(4, 3, false, 30).unwrap();
    let f = puffer_tensor::svd::truncated_svd(dense.weight(), 3).unwrap();
    let (u, vt) = f.split_balanced();
    let mut lr = LowRankLinear::from_factors(u, vt, None).unwrap();
    let x = Tensor::randn(&[2, 4], 1.0, 31);
    let kappa = Tensor::rand_uniform(&[2, 3], -1.0, 1.0, 32);
    let _ = dense.forward(&x, Mode::Train);
    let gd = dense.backward(&kappa);
    let _ = lr.forward(&x, Mode::Train);
    let gl = lr.backward(&kappa);
    assert!(
        puffer_tensor::stats::rel_error(&gd, &gl) < 1e-3,
        "grad err {}",
        puffer_tensor::stats::rel_error(&gd, &gl)
    );
}
