//! Token embedding table.
//!
//! Embeddings are index lookups rather than tensor-in/tensor-out maps, so
//! [`Embedding`] has its own forward/backward API instead of implementing
//! [`crate::Layer`]. The paper's LSTM ties the embedding with the decoder
//! (Press & Wolf 2016); [`Embedding::project_logits`] implements that tied
//! output projection (`logits = h · Eᵀ`) and
//! [`Embedding::backward_projection`] its gradient, so a single parameter
//! serves both roles exactly as in the reference implementation.

use crate::param::Param;
use crate::{NnError, Result};
use puffer_tensor::matmul::{matmul, matmul_nt, matmul_tn};
use puffer_tensor::Tensor;

/// A `vocab × dim` embedding table.
#[derive(Debug)]
pub struct Embedding {
    weight: Param,
    vocab: usize,
    dim: usize,
    cached_tokens: Option<Vec<usize>>,
    cached_hidden: Option<Tensor>,
}

impl Embedding {
    /// Creates an embedding table initialized uniformly on `[-0.1, 0.1]`
    /// (the PyTorch word-language-model default the paper builds on).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] if either dimension is zero.
    pub fn new(vocab: usize, dim: usize, seed: u64) -> Result<Self> {
        if vocab == 0 || dim == 0 {
            return Err(NnError::BadConfig {
                layer: "Embedding",
                reason: format!("dimensions must be nonzero, got {vocab}x{dim}"),
            });
        }
        let weight =
            Param::new("embedding.weight", Tensor::rand_uniform(&[vocab, dim], -0.1, 0.1, seed));
        Ok(Embedding { weight, vocab, dim, cached_tokens: None, cached_hidden: None })
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The underlying parameter.
    pub fn param(&self) -> &Param {
        &self.weight
    }

    /// Mutable access to the underlying parameter (for optimizers).
    pub fn param_mut(&mut self) -> &mut Param {
        &mut self.weight
    }

    /// Looks up a batch of tokens, returning `[tokens.len(), dim]`.
    ///
    /// # Panics
    ///
    /// Panics if any token index is out of vocabulary (validated data is a
    /// precondition; the data crate guarantees it).
    pub fn forward(&mut self, tokens: &[usize]) -> Tensor {
        let mut out = Tensor::zeros(&[tokens.len(), self.dim]);
        for (row, &t) in tokens.iter().enumerate() {
            assert!(t < self.vocab, "token {t} out of vocabulary ({})", self.vocab);
            let src = &self.weight.value.as_slice()[t * self.dim..(t + 1) * self.dim];
            out.as_mut_slice()[row * self.dim..(row + 1) * self.dim].copy_from_slice(src);
        }
        self.cached_tokens = Some(tokens.to_vec());
        out
    }

    /// Accumulates the lookup gradient: row `t` of the table receives the
    /// sum of gradients of every position that looked up token `t`.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Embedding::forward`] or with a gradient of
    /// the wrong shape.
    pub fn backward(&mut self, grad: &Tensor) {
        let tokens = self.cached_tokens.as_ref().expect("backward before forward");
        assert_eq!(grad.shape(), &[tokens.len(), self.dim], "Embedding gradient shape mismatch");
        for (row, &t) in tokens.iter().enumerate() {
            let g = &grad.as_slice()[row * self.dim..(row + 1) * self.dim];
            let dst = &mut self.weight.grad.as_mut_slice()[t * self.dim..(t + 1) * self.dim];
            for (d, gi) in dst.iter_mut().zip(g) {
                *d += gi;
            }
        }
    }

    /// Accumulates the lookup gradient for an explicit token list, without
    /// relying on the cached tokens from [`Embedding::forward`]. Needed when
    /// the same table serves several lookups per step (e.g. the
    /// Transformer's shared source/target embedding).
    ///
    /// # Panics
    ///
    /// Panics if `grad` is not `[tokens.len(), dim]`.
    pub fn backward_for(&mut self, tokens: &[usize], grad: &Tensor) {
        assert_eq!(grad.shape(), &[tokens.len(), self.dim], "Embedding gradient shape mismatch");
        for (row, &t) in tokens.iter().enumerate() {
            let g = &grad.as_slice()[row * self.dim..(row + 1) * self.dim];
            let dst = &mut self.weight.grad.as_mut_slice()[t * self.dim..(t + 1) * self.dim];
            for (d, gi) in dst.iter_mut().zip(g) {
                *d += gi;
            }
        }
    }

    /// Tied output projection: `logits = h · Eᵀ`, shape `[n, vocab]`.
    ///
    /// # Panics
    ///
    /// Panics if `hidden` is not `[n, dim]`.
    pub fn project_logits(&mut self, hidden: &Tensor) -> Tensor {
        assert_eq!(hidden.shape()[1], self.dim, "tied projection dim mismatch");
        let logits = matmul_nt(hidden, &self.weight.value).expect("shapes checked");
        self.cached_hidden = Some(hidden.clone());
        logits
    }

    /// Gradient of the tied projection: accumulates `∂L/∂E += dlogitsᵀ·h`
    /// and returns `∂L/∂h = dlogits·E`.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Embedding::project_logits`].
    pub fn backward_projection(&mut self, dlogits: &Tensor) -> Tensor {
        let h = self.cached_hidden.as_ref().expect("backward_projection before project_logits");
        let de = matmul_tn(dlogits, h).expect("shapes checked");
        self.weight.grad.axpy(1.0, &de).expect("grad shape");
        matmul(dlogits, &self.weight.value).expect("shapes checked")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_and_scatter() {
        let mut e = Embedding::new(5, 3, 1).unwrap();
        let out = e.forward(&[0, 2, 0]);
        assert_eq!(out.shape(), &[3, 3]);
        assert_eq!(out.row_slice(0), out.row_slice(2));

        let mut g = Tensor::zeros(&[3, 3]);
        g.as_mut_slice()[..3].copy_from_slice(&[1.0, 1.0, 1.0]);
        g.as_mut_slice()[6..].copy_from_slice(&[2.0, 2.0, 2.0]);
        e.backward(&g);
        // Token 0 was used at rows 0 and 2: its grad row is 1+2 = 3.
        assert_eq!(&e.param().grad.as_slice()[..3], &[3.0, 3.0, 3.0]);
        // Token 2's grad is zero (row 1 of g is zero).
        assert_eq!(&e.param().grad.as_slice()[6..9], &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn tied_projection_shapes_and_grad() {
        let mut e = Embedding::new(7, 4, 2).unwrap();
        let h = Tensor::randn(&[3, 4], 1.0, 3);
        let logits = e.project_logits(&h);
        assert_eq!(logits.shape(), &[3, 7]);
        let dh = e.backward_projection(&Tensor::ones(&[3, 7]));
        assert_eq!(dh.shape(), &[3, 4]);
        assert!(e.param().grad.as_slice().iter().any(|&x| x != 0.0));
    }

    #[test]
    fn tied_projection_gradcheck() {
        let mut e = Embedding::new(4, 3, 5).unwrap();
        let h = Tensor::randn(&[2, 3], 1.0, 6);
        let kappa = Tensor::rand_uniform(&[2, 4], -1.0, 1.0, 7);
        let _ = e.project_logits(&h);
        let dh = e.backward_projection(&kappa);
        let eps = 1e-2;
        let mut hp = h.clone();
        for i in 0..h.len() {
            let orig = hp.as_slice()[i];
            hp.as_mut_slice()[i] = orig + eps;
            let fp = e.project_logits(&hp).dot(&kappa).unwrap();
            hp.as_mut_slice()[i] = orig - eps;
            let fm = e.project_logits(&hp).dot(&kappa).unwrap();
            hp.as_mut_slice()[i] = orig;
            let num = (fp - fm) / (2.0 * eps);
            assert!((num - dh.as_slice()[i]).abs() < 1e-2);
        }
    }

    #[test]
    fn constructor_validates() {
        assert!(Embedding::new(0, 4, 1).is_err());
        assert!(Embedding::new(4, 0, 1).is_err());
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn oov_panics() {
        let mut e = Embedding::new(3, 2, 1).unwrap();
        let _ = e.forward(&[3]);
    }
}
