//! `puffer-lint`: the workspace's own static analyzer.
//!
//! The repo's correctness story rests on contracts no compiler checks:
//! the fault-tolerance layer must never panic (a panicking aggregator
//! cannot survive its own fault model), timing must flow through
//! `puffer-probe` (so the Fig.-4 breakdowns and the Chrome trace are the
//! same numbers), `unsafe` must carry its safety argument in-source, and
//! the dependency set must stay frozen. Those contracts used to be two
//! awk/grep lines in `scripts/check.sh` — comment-blind, string-blind,
//! and blind to everything after the first `#[cfg(test)]` in a file.
//!
//! This crate replaces them with a real (zero-dependency) analyzer:
//!
//! 1. [`lexer`] — a full Rust token model (nested block comments, raw
//!    strings, lifetimes vs. chars, raw identifiers);
//! 2. [`scope`] — exact per-token `#[cfg(test)]` masking, nested and
//!    repeated test modules included;
//! 3. [`ast`] — a lenient recursive-descent parser producing a
//!    lightweight item/statement/expression tree over those tokens;
//! 4. [`symbols`] + [`callgraph`] — a workspace-wide function index and
//!    name-resolved call graph (test-aware: `#[cfg(test)]` code never
//!    contributes edges);
//! 5. [`rules`] — the rule catalog and the file-local token rules;
//! 6. [`semantic`] — the cross-file rules (panic reachability with
//!    pinned call chains, lock-order and guard-liveness hazards, float
//!    determinism, discarded `Result`s);
//! 7. [`deps`] — a Cargo manifest reader backing `dep-allowlist`.
//!
//! [`run`] walks a workspace root and returns a [`Report`]; the binary
//! renders it as `file:line:col` diagnostics or `--json`.

pub mod ast;
pub mod callgraph;
pub mod deps;
pub mod lexer;
pub mod rules;
pub mod scope;
pub mod semantic;
pub mod symbols;

pub use rules::{Diagnostic, RuleInfo, RULES};

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// What to scan and which rules to run.
#[derive(Debug, Clone)]
pub struct Config {
    /// Workspace root (diagnostic paths are reported relative to it).
    pub root: PathBuf,
    /// Rule-name filter; `None` runs everything.
    pub rules: Option<BTreeSet<String>>,
}

impl Config {
    /// All rules over `root`.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        Config { root: root.into(), rules: None }
    }

    fn enabled(&self, rule: &str) -> bool {
        self.rules.as_ref().is_none_or(|set| set.contains(rule))
    }
}

/// The outcome of one lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, sorted by (file, line, col).
    pub diagnostics: Vec<Diagnostic>,
    /// `.rs` files lexed.
    pub files_scanned: usize,
    /// `Cargo.toml` files checked.
    pub manifests_scanned: usize,
}

impl Report {
    /// Whether the workspace is clean.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Renders the machine-readable `--json` document (schema: object with
    /// `version`, `files_scanned`, `manifests_scanned`, and `diagnostics`,
    /// an array of `{file, line, col, rule, message}`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = write!(
            out,
            "  \"version\": 1,\n  \"files_scanned\": {},\n  \"manifests_scanned\": {},\n",
            self.files_scanned, self.manifests_scanned
        );
        out.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\"file\": ");
            json_str(&mut out, &d.file);
            let _ = write!(out, ", \"line\": {}, \"col\": {}, \"rule\": ", d.line, d.col);
            json_str(&mut out, d.rule);
            out.push_str(", \"message\": ");
            json_str(&mut out, &d.message);
            out.push('}');
        }
        out.push_str(if self.diagnostics.is_empty() { "]\n}\n" } else { "\n  ]\n}\n" });
        out
    }
}

fn json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Directory names never descended into: build output, VCS metadata, and
/// the lint suite's own deliberately-violating fixtures.
fn skip_dir(name: &str) -> bool {
    name == "target" || name == "fixtures" || name.starts_with('.')
}

fn walk(dir: &Path, rs: &mut Vec<PathBuf>, manifests: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("walk error under {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if !skip_dir(&name) {
                walk(&path, rs, manifests)?;
            }
        } else if name.ends_with(".rs") {
            rs.push(path);
        } else if name == "Cargo.toml" {
            manifests.push(path);
        }
    }
    Ok(())
}

/// Runs the configured rules over the workspace.
///
/// # Errors
///
/// Returns a message if the root cannot be walked or a file cannot be
/// read; individual rule findings are *not* errors (they land in the
/// [`Report`]).
pub fn run(config: &Config) -> Result<Report, String> {
    let mut rs_files = Vec::new();
    let mut manifests = Vec::new();
    walk(&config.root, &mut rs_files, &mut manifests)?;
    rs_files.sort();
    manifests.sort();

    // Phase 1: lex/mask/parse the whole workspace, so the semantic rules
    // can resolve names across files.
    let mut parsed = Vec::with_capacity(rs_files.len());
    for path in &rs_files {
        let src =
            fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let rel = path.strip_prefix(&config.root).unwrap_or(path);
        parsed.push(symbols::ParsedFile::parse(rel, &src));
    }

    // Phase 2: file-local token rules, then the workspace-wide semantic
    // pass over the same parsed files.
    let mut report = Report { files_scanned: parsed.len(), ..Report::default() };
    for pf in &parsed {
        let ctx = rules::FileContext::new(Path::new(&pf.rel), &pf.tokens, &pf.mask);
        report.diagnostics.extend(rules::check_tokens(&ctx, &|rule| config.enabled(rule)));
    }
    report.diagnostics.extend(semantic::check(&parsed, &|rule| config.enabled(rule)));

    // A reachable panic site is reported with its call chain by
    // dist-panic-reachability; the plain dist-no-panic finding at the
    // same position is redundant noise.
    let reach: BTreeSet<(String, u32, u32)> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == "dist-panic-reachability")
        .map(|d| (d.file.clone(), d.line, d.col))
        .collect();
    report
        .diagnostics
        .retain(|d| d.rule != "dist-no-panic" || !reach.contains(&(d.file.clone(), d.line, d.col)));

    if config.enabled("dep-allowlist") {
        let root_manifest = config.root.join("Cargo.toml");
        let workspace = if root_manifest.is_file() {
            let text = fs::read_to_string(&root_manifest)
                .map_err(|e| format!("cannot read {}: {e}", root_manifest.display()))?;
            deps::workspace_decls(&text)
        } else {
            deps::WorkspaceDeps::new()
        };
        for path in &manifests {
            let text = fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let rel = path.strip_prefix(&config.root).unwrap_or(path);
            let rel = rel
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            report.diagnostics.extend(deps::check_manifest(&rel, &text, &workspace));
            report.manifests_scanned += 1;
        }
    }

    report
        .diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    Ok(report)
}

/// Resolves a `--rules` filter string, rejecting unknown rule names.
///
/// # Errors
///
/// Returns the offending name if it is not in [`RULES`].
pub fn parse_rules_filter(spec: &str) -> Result<BTreeSet<String>, String> {
    let mut set = BTreeSet::new();
    for name in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        if !RULES.iter().any(|r| r.name == name) {
            return Err(format!(
                "unknown rule `{name}` (known: {})",
                RULES.iter().map(|r| r.name).collect::<Vec<_>>().join(", ")
            ));
        }
        set.insert(name.to_string());
    }
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rules_filter_rejects_unknown() {
        assert!(parse_rules_filter("dist-no-panic, dep-allowlist").is_ok());
        assert!(parse_rules_filter("no-such-rule").is_err());
    }

    #[test]
    fn json_escapes_specials() {
        let mut s = String::new();
        json_str(&mut s, "a\"b\\c\nd");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn empty_report_renders_valid_json() {
        let r = Report::default();
        let j = r.to_json();
        assert!(j.contains("\"diagnostics\": []"));
    }
}
