//! **Pufferfish** (Wang, Agarwal & Papailiopoulos, MLSys 2021):
//! communication-efficient distributed training of low-rank, pre-factorized
//! deep networks — at no extra cost.
//!
//! Instead of compressing gradients (PowerSGD, SignSGD, …), Pufferfish
//! changes the *model*: every weight matrix `W` becomes a trainable product
//! `U·Vᵀ` (and every conv filter bank a thin conv followed by a `1×1`
//! conv), so the gradients that must be communicated are small by
//! construction and no encode/decode step exists. Two techniques recover
//! the accuracy a naïvely factorized network loses (paper §3):
//!
//! 1. **Hybrid architecture** — only layers `K..L` are factorized;
//! 2. **Vanilla warm-up** — train the full-rank network for `E_wu` epochs,
//!    then initialize the factors from a truncated SVD of the partially
//!    trained weights (`U = Ũ Σ^½`, `Vᵀ = Σ^½ Ṽᵀ`) and continue training
//!    the factorized network under the same LR schedule (Algorithm 1).
//!
//! This crate implements Algorithm 1 end-to-end for all four model
//! families of the paper (CNNs via [`trainer`], the LSTM language model
//! via [`lm`], the Transformer via [`seq2seq`]), the three-way ablation of
//! Tables 8/9/21/22 ([`ablation`]), and the spectral rank allocator the
//! paper names as future work ([`rank_alloc`]).
//!
//! # Example: Algorithm 1 on a small CNN
//!
//! ```no_run
//! use pufferfish::trainer::{train, TrainConfig, ModelPlan};
//! use puffer_data::images::{ImageDataset, ImageDatasetConfig};
//! use puffer_models::vgg::{Vgg, VggConfig};
//!
//! let data = ImageDataset::generate(ImageDatasetConfig::cifar_like(512, 128, 0));
//! let vanilla = Vgg::new(VggConfig::vgg11(0.125, 10, 1))?;
//! let cfg = TrainConfig::cifar_small(6, 2); // 6 epochs, warm-up after 2
//! let outcome = train(vanilla, ModelPlan::VggHybrid { first_low_rank: 3, rank_ratio: 0.25 }, &data, &cfg)?;
//! println!("final acc {:.3}", outcome.report.final_test_accuracy());
//! # Ok::<(), puffer_nn::NnError>(())
//! ```

pub mod ablation;
pub mod lm;
pub mod rank_alloc;
pub mod report;
pub mod seq2seq;
pub mod trainer;
