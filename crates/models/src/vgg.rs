//! Runnable VGG models (VGG-11 / VGG-19 style) with Pufferfish hybrid
//! conversion.
//!
//! The full-scale VGG-19 is described exactly in [`crate::spec`]; the
//! runnable models here use a width multiplier so the paper's experiments
//! can be exercised end-to-end on CPU while keeping the architecture's
//! shape (stage structure, pooling schedule, classifier head, hybrid-K
//! semantics).

use crate::units::{rank_for, ConvBnUnit, FactorInit, FcKind};
use puffer_nn::layer::{Layer, Mode};
use puffer_nn::linear::Linear;
use puffer_nn::param::Param;
use puffer_nn::pool::{Flatten, MaxPool2d};
use puffer_nn::Result;
use puffer_tensor::Tensor;

/// Configuration of a runnable VGG.
#[derive(Debug, Clone, PartialEq)]
pub struct VggConfig {
    /// Channels of each conv, grouped into stages (a max-pool follows each
    /// stage).
    pub stages: Vec<Vec<usize>>,
    /// Hidden FC widths of the classifier (the final class FC is implicit).
    pub fc_hidden: Vec<usize>,
    /// Number of classes.
    pub classes: usize,
    /// Input image side (32 for the CIFAR-like task).
    pub input_size: usize,
    /// RNG seed for initialization.
    pub seed: u64,
}

impl VggConfig {
    /// A width-scaled VGG-11 (`scale = 1.0` gives the paper's channel
    /// counts: 64-128-256×2-512×2-512×2).
    pub fn vgg11(scale: f32, classes: usize, seed: u64) -> Self {
        let s = |c: usize| ((c as f32 * scale).round() as usize).max(4);
        VggConfig {
            stages: vec![
                vec![s(64)],
                vec![s(128)],
                vec![s(256), s(256)],
                vec![s(512), s(512)],
                vec![s(512), s(512)],
            ],
            fc_hidden: vec![s(512), s(512)],
            classes,
            input_size: 32,
            seed,
        }
    }

    /// A width-scaled VGG-19 (16 convs; `scale = 1.0` is the paper's model).
    pub fn vgg19(scale: f32, classes: usize, seed: u64) -> Self {
        let s = |c: usize| ((c as f32 * scale).round() as usize).max(4);
        VggConfig {
            stages: vec![
                vec![s(64), s(64)],
                vec![s(128), s(128)],
                vec![s(256), s(256), s(256), s(256)],
                vec![s(512), s(512), s(512), s(512)],
                vec![s(512), s(512), s(512), s(512)],
            ],
            fc_hidden: vec![s(512), s(512)],
            classes,
            input_size: 32,
            seed,
        }
    }

    /// Total number of factorizable layers (convs + hidden FCs); the last
    /// class FC is never factorized (paper §3).
    pub fn factorizable_layers(&self) -> usize {
        self.stages.iter().map(Vec::len).sum::<usize>() + self.fc_hidden.len()
    }
}

/// A runnable VGG network.
pub struct Vgg {
    config: VggConfig,
    conv_units: Vec<ConvBnUnit>,
    pool_after: Vec<bool>,
    pools: Vec<MaxPool2d>,
    flatten: Flatten,
    fc_units: Vec<FcKind>,
    fc_relu_masks: Vec<Option<Vec<bool>>>,
    classifier: Linear,
}

impl Vgg {
    /// Builds the vanilla (full-rank) network.
    ///
    /// # Errors
    ///
    /// Propagates layer construction errors.
    pub fn new(config: VggConfig) -> Result<Self> {
        let mut conv_units = Vec::new();
        let mut pool_after = Vec::new();
        let mut pools = Vec::new();
        let mut c_in = 3usize;
        let mut seed = config.seed;
        for stage in &config.stages {
            for (i, &c_out) in stage.iter().enumerate() {
                conv_units.push(ConvBnUnit::dense(c_in, c_out, 3, 1, 1, true, seed)?);
                seed = seed.wrapping_add(1);
                pool_after.push(i + 1 == stage.len());
                c_in = c_out;
            }
            pools.push(MaxPool2d::new(2, 2));
        }
        // After len(stages) pools of stride 2 on input_size.
        let final_hw = config.input_size >> config.stages.len();
        let mut feat = c_in * final_hw * final_hw;
        let mut fc_units = Vec::new();
        for &h in &config.fc_hidden {
            fc_units.push(FcKind::Dense(Linear::new(feat, h, true, seed)?));
            seed = seed.wrapping_add(1);
            feat = h;
        }
        let classifier = Linear::new(feat, config.classes, true, seed)?;
        let n_fc = fc_units.len();
        Ok(Vgg {
            config,
            conv_units,
            pool_after,
            pools,
            flatten: Flatten::new(),
            fc_units,
            fc_relu_masks: (0..n_fc).map(|_| None).collect(),
            classifier,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &VggConfig {
        &self.config
    }

    /// Converts to the Pufferfish hybrid: layers with 1-based index
    /// `>= first_low_rank` are factorized at `rank_ratio × c_out`
    /// (classifier excluded). `first_low_rank = 1` gives the fully-low-rank
    /// network of Figure 2.
    ///
    /// # Errors
    ///
    /// Propagates factorization errors.
    pub fn to_hybrid(
        &self,
        first_low_rank: usize,
        rank_ratio: f32,
        init: FactorInit,
    ) -> Result<Self> {
        let mut conv_units = Vec::new();
        for (i, unit) in self.conv_units.iter().enumerate() {
            let idx = i + 1;
            if idx >= first_low_rank {
                let (c_in, c_out, k, _, _) = unit.conv.geometry();
                let rank = rank_for(c_out, rank_ratio, (c_in * k * k).min(c_out));
                conv_units.push(unit.to_low_rank(rank, init)?);
            } else {
                conv_units.push(unit.clone_dense()?);
            }
        }
        let n_convs = self.conv_units.len();
        let mut fc_units = Vec::new();
        for (j, fc) in self.fc_units.iter().enumerate() {
            let idx = n_convs + j + 1;
            if idx >= first_low_rank {
                let (fin, fout) = fc.dims();
                let rank = rank_for(fout, rank_ratio, fin.min(fout));
                fc_units.push(fc.to_low_rank(rank, init)?);
            } else {
                fc_units.push(clone_fc(fc)?);
            }
        }
        let classifier = Linear::from_weights(
            self.classifier.weight().clone(),
            self.classifier.bias().cloned(),
        )?;
        let n_fc = fc_units.len();
        Ok(Vgg {
            config: self.config.clone(),
            conv_units,
            pool_after: self.pool_after.clone(),
            pools: self.config.stages.iter().map(|_| MaxPool2d::new(2, 2)).collect(),
            flatten: Flatten::new(),
            fc_units,
            fc_relu_masks: (0..n_fc).map(|_| None).collect(),
            classifier,
        })
    }

    /// Number of factorized layers (for tests and reporting).
    pub fn low_rank_layer_count(&self) -> usize {
        self.conv_units.iter().filter(|u| u.conv.is_low_rank()).count()
            + self.fc_units.iter().filter(|f| f.is_low_rank()).count()
    }
}

fn clone_fc(fc: &FcKind) -> Result<FcKind> {
    match fc {
        FcKind::Dense(l) => {
            Ok(FcKind::Dense(Linear::from_weights(l.weight().clone(), l.bias().cloned())?))
        }
        FcKind::LowRank(_) => Err(puffer_nn::NnError::BadConfig {
            layer: "Vgg",
            reason: "cannot deep-copy an already-hybrid FC".into(),
        }),
    }
}

impl Layer for Vgg {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let mut x = input.clone();
        let mut pool_idx = 0;
        for (unit, &pool) in self.conv_units.iter_mut().zip(&self.pool_after) {
            x = unit.forward(&x, mode);
            if pool {
                x = self.pools[pool_idx].forward(&x, mode);
                pool_idx += 1;
            }
        }
        x = self.flatten.forward(&x, mode);
        for (i, fc) in self.fc_units.iter_mut().enumerate() {
            x = fc.forward(&x, mode);
            if mode == Mode::Train {
                self.fc_relu_masks[i] = Some(x.as_slice().iter().map(|&v| v > 0.0).collect());
            }
            x.map_inplace(|v| v.max(0.0));
        }
        self.classifier.forward(&x, mode)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mut g = self.classifier.backward(grad_output);
        for (i, fc) in self.fc_units.iter_mut().enumerate().rev() {
            let mask = self.fc_relu_masks[i].as_ref().expect("backward before train-mode forward");
            for (gv, &m) in g.as_mut_slice().iter_mut().zip(mask) {
                if !m {
                    *gv = 0.0;
                }
            }
            g = fc.backward(&g);
        }
        g = self.flatten.backward(&g);
        let mut pool_idx = self.pools.len();
        for (unit, &pool) in self.conv_units.iter_mut().zip(&self.pool_after).rev() {
            if pool {
                pool_idx -= 1;
                g = self.pools[pool_idx].backward(&g);
            }
            g = unit.backward(&g);
        }
        g
    }

    fn params(&self) -> Vec<&Param> {
        let mut v: Vec<&Param> = self.conv_units.iter().flat_map(|u| u.params()).collect();
        v.extend(self.fc_units.iter().flat_map(|f| f.params()));
        v.extend(self.classifier.params());
        v
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v: Vec<&mut Param> =
            self.conv_units.iter_mut().flat_map(|u| u.params_mut()).collect();
        v.extend(self.fc_units.iter_mut().flat_map(|f| f.params_mut()));
        v.extend(self.classifier.params_mut());
        v
    }

    fn describe(&self) -> String {
        format!(
            "Vgg({} convs, {} FCs, {} low-rank layers)",
            self.conv_units.len(),
            self.fc_units.len() + 1,
            self.low_rank_layer_count()
        )
    }

    fn buffers(&self) -> Vec<Tensor> {
        self.conv_units.iter().flat_map(|u| u.buffers()).collect()
    }

    fn load_buffers(&mut self, buffers: &[Tensor]) {
        let mut off = 0;
        for u in &mut self.conv_units {
            let n = u.buffers().len();
            u.load_buffers(&buffers[off..off + n]);
            off += n;
        }
        assert_eq!(off, buffers.len(), "buffer count mismatch");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puffer_tensor::stats::rel_error;

    fn tiny_vgg() -> Vgg {
        Vgg::new(VggConfig::vgg11(0.0625, 4, 1)).unwrap() // 4-8-16-32-32 channels
    }

    #[test]
    fn forward_backward_shapes() {
        let mut vgg = tiny_vgg();
        let x = Tensor::randn(&[2, 3, 32, 32], 1.0, 2);
        let y = vgg.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[2, 4]);
        let g = vgg.backward(&Tensor::ones(&[2, 4]));
        assert_eq!(g.shape(), x.shape());
    }

    #[test]
    fn hybrid_k_controls_factorized_count() {
        let vgg = tiny_vgg(); // VGG-11: 8 convs + 2 hidden FCs = 10 factorizable
        assert_eq!(vgg.config().factorizable_layers(), 10);
        let h = vgg.to_hybrid(9, 0.25, FactorInit::Random(3)).unwrap();
        assert_eq!(h.low_rank_layer_count(), 2); // layers 9, 10 (the 2 FCs)
        let h = vgg.to_hybrid(1, 0.25, FactorInit::Random(3)).unwrap();
        assert_eq!(h.low_rank_layer_count(), 10);
        let h = vgg.to_hybrid(11, 0.25, FactorInit::Random(3)).unwrap();
        assert_eq!(h.low_rank_layer_count(), 0);
    }

    #[test]
    fn hybrid_has_fewer_params() {
        let vgg = tiny_vgg();
        let h = vgg.to_hybrid(3, 0.25, FactorInit::Random(3)).unwrap();
        assert!(h.param_count() < vgg.param_count());
    }

    #[test]
    fn warm_start_hybrid_stays_close_in_eval() {
        // A full-rank-warm-started hybrid at generous rank approximates the
        // parent's logits far better than a randomly initialized hybrid.
        let mut vgg = tiny_vgg();
        let x = Tensor::randn(&[2, 3, 32, 32], 1.0, 5);
        // Populate BN running stats.
        for s in 0..3 {
            let xb = Tensor::randn(&[4, 3, 32, 32], 1.0, s);
            let _ = vgg.forward(&xb, Mode::Train);
        }
        let y = vgg.forward(&x, Mode::Eval);
        let mut warm = vgg.to_hybrid(1, 0.9, FactorInit::WarmStart).unwrap();
        let mut cold = vgg.to_hybrid(1, 0.9, FactorInit::Random(7)).unwrap();
        let ew = rel_error(&y, &warm.forward(&x, Mode::Eval));
        let ec = rel_error(&y, &cold.forward(&x, Mode::Eval));
        assert!(ew < ec, "warm {ew} vs cold {ec}");
    }

    #[test]
    fn hybrid_of_hybrid_is_rejected() {
        let vgg = tiny_vgg();
        let h = vgg.to_hybrid(1, 0.25, FactorInit::Random(3)).unwrap();
        assert!(h.to_hybrid(1, 0.25, FactorInit::Random(3)).is_err());
    }

    #[test]
    fn gradients_flow_to_all_params() {
        let mut vgg = tiny_vgg();
        let x = Tensor::randn(&[2, 3, 32, 32], 1.0, 9);
        let y = vgg.forward(&x, Mode::Train);
        let (_, dy) = puffer_nn::loss::softmax_cross_entropy(&y, &[0, 1], 0.0).unwrap();
        let _ = vgg.backward(&dy);
        let nonzero =
            vgg.params().iter().filter(|p| p.grad.as_slice().iter().any(|&g| g != 0.0)).count();
        // All conv/FC weights and most BN affines receive gradient.
        assert!(nonzero as f32 > vgg.params().len() as f32 * 0.8, "{nonzero}");
    }
}
