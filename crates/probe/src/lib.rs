//! `puffer-probe`: zero-dependency tracing + metrics for the Pufferfish
//! reproduction.
//!
//! The paper's whole evaluation is a story about *where time goes* —
//! compute vs. encode vs. wire vs. decode (Fig. 4, Figs. 6–7) — and the
//! fault-tolerant trainer adds invisible runtime machinery (retries,
//! crash detection, NaN-skips, checkpoints). This crate makes both
//! observable with three primitives, all built on `std` alone:
//!
//! * **Spans** — RAII guards ([`span`], [`timed_span`]) on a thread-local
//!   span stack. Completed spans become Chrome trace-event `"X"` records
//!   keyed by static category/name, so a whole faulty distributed run can
//!   be dropped into `chrome://tracing` / [Perfetto](https://ui.perfetto.dev)
//!   and read as a timeline. [`TimedSpan`] doubles as the *measurement*:
//!   its [`TimedSpan::finish`] returns the span's duration, so callers
//!   (the trainer's breakdown accounting) and the trace read from the same
//!   clock — there is no second, ad-hoc timing path to drift from.
//! * **Counters / gauges** ([`counter_add`], [`gauge_set`]) — a
//!   process-global registry keyed by static names: bytes on the wire,
//!   MACs, allreduce rounds, retries, dropped/corrupted messages, skipped
//!   steps, checkpoint writes, pool width.
//! * **Events** ([`event`]) — instant (`"i"`) records for structured fault
//!   events with worker/step attribution.
//!
//! # Exporters
//!
//! [`flush`] writes two artifacts, both optional:
//!
//! * a Chrome `chrome://tracing`-compatible **trace-event JSON** array
//!   (`PUFFER_TRACE=path` or [`ProbeConfig::trace_path`]);
//! * a **JSONL metrics sink** of per-step rows and fault events
//!   (`PUFFER_METRICS=path` or [`ProbeConfig::metrics_path`]), with a
//!   final counters summary row.
//!
//! # Overhead
//!
//! Collection is off by default behind one relaxed atomic load
//! ([`enabled`]). A disabled [`span`] constructs `SpanGuard(None)` and
//! touches nothing else; a disabled [`counter_add`] is a load and a
//! branch. The overhead guard in `puffer-tensor`'s `probe_overhead` test
//! proves the disabled probe costs < 2% on a GEMM microbench (in
//! practice: ~nanoseconds against kernels that run for micro- to
//! milliseconds). [`timed_span`] always reads the monotonic clock — it is
//! the measurement primitive — and records an event only when enabled.
//!
//! # Example
//!
//! ```
//! puffer_probe::configure(puffer_probe::ProbeConfig::in_memory());
//! {
//!     let _outer = puffer_probe::span("demo", "outer");
//!     let inner = puffer_probe::timed_span("demo", "inner");
//!     puffer_probe::counter_add("demo.items", 3);
//!     let dur = inner.finish();
//!     assert!(dur.as_nanos() > 0);
//! }
//! let events = puffer_probe::take_events();
//! assert!(events.iter().any(|e| e.name == "outer"));
//! let trace = puffer_probe::export::render_chrome_trace(&events);
//! puffer_probe::json::validate_chrome_trace(&trace).unwrap();
//! puffer_probe::reset();
//! ```

pub mod context;
pub mod export;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod span;

pub use context::{run_header, run_header_env, run_header_snapshot};
pub use export::{render_chrome_trace, write_chrome_trace, FlushReport};
pub use hist::{hist_record, hist_record_duration, hist_snapshot, hist_value, Histogram};
pub use json::{validate_chrome_trace, Json, TraceSummary};
pub use metrics::{
    counter_add, counter_value, counters_snapshot, gauge_set, metrics_row, metrics_rows,
};
pub use span::{
    emit_span, event, span, span_depth, span_with, timed_span, timed_span_with, ArgValue,
    SpanGuard, Stopwatch, TimedSpan, TraceEvent,
};

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

/// Cap on buffered trace events; beyond it events are counted as dropped
/// instead of exhausting memory on a runaway instrumented loop.
pub const MAX_EVENTS: usize = 1 << 20;

/// Environment variable naming the Chrome trace output path.
pub const ENV_TRACE: &str = "PUFFER_TRACE";

/// Environment variable naming the JSONL metrics output path.
pub const ENV_METRICS: &str = "PUFFER_METRICS";

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether the probe is collecting. One relaxed atomic load — the fast
/// path every instrumentation site checks first.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Where to export on [`flush`], and whether to collect at all.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProbeConfig {
    /// Chrome trace-event JSON output path (`None` = no trace file).
    pub trace_path: Option<PathBuf>,
    /// JSONL metrics output path (`None` = no metrics file).
    pub metrics_path: Option<PathBuf>,
    /// Collect even with no output path configured (spans/counters stay
    /// in memory for [`take_events`] / [`counters_snapshot`]).
    pub collect: bool,
}

impl ProbeConfig {
    /// No collection at all (the default state).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Collect in memory without writing files — what tests use.
    pub fn in_memory() -> Self {
        ProbeConfig { collect: true, ..Self::default() }
    }

    /// Reads `PUFFER_TRACE` / `PUFFER_METRICS`; collection turns on iff at
    /// least one is set (to a non-empty path).
    pub fn from_env() -> Self {
        let var =
            |name: &str| std::env::var(name).ok().filter(|v| !v.is_empty()).map(PathBuf::from);
        ProbeConfig { trace_path: var(ENV_TRACE), metrics_path: var(ENV_METRICS), collect: false }
    }

    /// Whether this configuration implies collecting.
    pub fn is_active(&self) -> bool {
        self.collect || self.trace_path.is_some() || self.metrics_path.is_some()
    }
}

static CONFIG: Mutex<Option<ProbeConfig>> = Mutex::new(None);

fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Installs a configuration and turns collection on or off accordingly.
pub fn configure(cfg: ProbeConfig) {
    let active = cfg.is_active();
    *lock_ignore_poison(&CONFIG) = Some(cfg);
    ENABLED.store(active, Ordering::Relaxed);
}

/// Configures from `PUFFER_TRACE` / `PUFFER_METRICS` and reports whether
/// collection is now on.
pub fn init_from_env() -> bool {
    let cfg = ProbeConfig::from_env();
    let active = cfg.is_active();
    configure(cfg);
    active
}

/// The currently installed configuration (default-disabled if none was
/// ever installed).
pub fn current_config() -> ProbeConfig {
    lock_ignore_poison(&CONFIG).clone().unwrap_or_default()
}

/// The process-global monotonic clock every timestamp is relative to.
pub(crate) fn now_rel() -> Duration {
    static CLOCK: OnceLock<Instant> = OnceLock::new();
    CLOCK.get_or_init(Instant::now).elapsed()
}

pub(crate) struct Sink {
    pub events: Vec<TraceEvent>,
    pub rows: Vec<String>,
    pub dropped_events: u64,
}

static SINK: Mutex<Sink> =
    Mutex::new(Sink { events: Vec::new(), rows: Vec::new(), dropped_events: 0 });

pub(crate) fn with_sink<R>(f: impl FnOnce(&mut Sink) -> R) -> R {
    f(&mut lock_ignore_poison(&SINK))
}

pub(crate) fn push_event(ev: TraceEvent) {
    // Every completed span is also a latency sample: fold it into the
    // histogram of its (cat, name) family before buffering, so span
    // families accumulate p50/p90/p99 with no extra instrumentation.
    if ev.phase == 'X' {
        hist::record_span(ev.cat, ev.name, ev.dur);
    }
    with_sink(|s| {
        if s.events.len() < MAX_EVENTS {
            s.events.push(ev);
        } else {
            s.dropped_events += 1;
        }
    });
}

/// Drains and returns every buffered trace event (tests and custom
/// exporters; [`flush`] uses the same buffer).
pub fn take_events() -> Vec<TraceEvent> {
    with_sink(|s| std::mem::take(&mut s.events))
}

/// The metadata records [`flush`] prepends/appends around the buffered
/// events when writing a trace file: the `"run_context"` header (if any
/// context was stamped) followed by one `"histogram"` record per span
/// family. Callers rendering a trace by hand ([`take_events`] +
/// [`render_chrome_trace`]) append these to get exporter-identical output.
pub fn trace_extras() -> Vec<TraceEvent> {
    let mut extras = Vec::new();
    extras.extend(context::header_event());
    extras.extend(hist::hist_trace_events());
    extras
}

/// Trace events dropped after the [`MAX_EVENTS`] cap was hit.
pub fn dropped_events() -> u64 {
    with_sink(|s| s.dropped_events)
}

/// Writes the configured exporters and drains the buffers.
///
/// The Chrome trace file receives every buffered event; the metrics file
/// receives the buffered JSONL rows plus one final
/// `{"type":"counters",...}` summary row. Counters themselves are *not*
/// cleared (use [`reset`]), so successive flushes see cumulative totals.
///
/// # Errors
///
/// Returns the first I/O error from creating or writing an output file.
pub fn flush() -> std::io::Result<FlushReport> {
    let cfg = current_config();
    let (events, rows, dropped) = with_sink(|s| {
        (std::mem::take(&mut s.events), std::mem::take(&mut s.rows), s.dropped_events)
    });
    export::export(&cfg, &events, &rows, dropped)
}

/// Returns the probe to its pristine state: collection off, buffers and
/// counters cleared, configuration removed. Span guards that are still
/// alive record nothing afterwards.
pub fn reset() {
    ENABLED.store(false, Ordering::Relaxed);
    *lock_ignore_poison(&CONFIG) = None;
    with_sink(|s| {
        s.events.clear();
        s.rows.clear();
        s.dropped_events = 0;
    });
    metrics::clear_registry();
    hist::clear_registry();
    context::clear();
}

#[cfg(test)]
pub(crate) mod testutil {
    use std::sync::{Mutex, MutexGuard, PoisonError};

    /// Serializes tests that toggle the process-global probe state.
    pub fn lock() -> MutexGuard<'static, ()> {
        static TEST_LOCK: Mutex<()> = Mutex::new(());
        TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_config_round_trips() {
        let _guard = testutil::lock();
        reset();
        assert!(!enabled());
        configure(ProbeConfig::in_memory());
        assert!(enabled());
        assert!(current_config().collect);
        configure(ProbeConfig::disabled());
        assert!(!enabled());
        reset();
    }

    #[test]
    fn event_cap_counts_drops() {
        let _guard = testutil::lock();
        reset();
        configure(ProbeConfig::in_memory());
        // Fill the sink artificially close to the cap.
        with_sink(|s| {
            s.events.clear();
            for _ in 0..MAX_EVENTS {
                s.events.push(TraceEvent::metadata_for_test());
            }
        });
        event("t", "overflow", Vec::new());
        // The instant event is dropped; on a fresh thread its thread_name
        // metadata record is dropped too.
        assert!(dropped_events() >= 1);
        reset();
    }

    #[test]
    fn env_config_parses_paths() {
        let cfg = ProbeConfig {
            trace_path: Some(PathBuf::from("a.json")),
            metrics_path: None,
            collect: false,
        };
        assert!(cfg.is_active());
        assert!(!ProbeConfig::disabled().is_active());
        assert!(ProbeConfig::in_memory().is_active());
    }
}
