//! Bucketed comm/compute-overlap sweep — the exposed-communication gate
//! for the trainer's DDP-style bucketing, written to `BENCH_dist.json`.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p puffer-bench --bin overlap_sweep [-- --check]
//! ```
//!
//! Runs the same straggler-free 8-worker epoch twice on the seeded
//! p3-like α–β profile: once synchronously (one flat bucket, every comm
//! nanosecond exposed) and once with size-targeted buckets reduced as
//! backward produces them. Four gates, all hard under `--check`:
//!
//! * **overlap** — exposed comm drops by at least [`REDUCTION_FLOOR`]
//!   versus the synchronous run;
//! * **bitwise** — both runs end in identical parameters (overlap is a
//!   schedule, not an algorithm);
//! * **alloc** — a warmed-up [`BucketedReducer`] round allocates nothing
//!   (`alloc.fresh_bytes` and `alloc.pool_misses` both flat);
//! * **reconcile** — puffer-insight re-ingests the overlapped trace and
//!   recovers the stamped α–β within its tolerance, every insight gate
//!   green.
//!
//! The trace lands in `results/overlap_sweep.json` for inspection.

use puffer_bench::results_dir;
use puffer_compress::none::NoCompression;
use puffer_compress::pack::PackLayout;
use puffer_dist::bucket::{BucketPlan, BucketedReducer};
use puffer_dist::cost::{ClusterProfile, CollectiveAlgo};
use puffer_dist::trainer::{train_data_parallel_with, DistConfig, RunOptions};
use puffer_insight::{analyze, ingest};
use puffer_nn::activation::Relu;
use puffer_nn::linear::Linear;
use puffer_nn::{Layer, Sequential};
use puffer_probe as probe;
use puffer_tensor::Tensor;
use std::fmt::Write as _;

const WORKERS: usize = 8;
const STEPS: usize = 4;
const ROWS: usize = 256;
const SEED: u64 = 47;
/// ~1.77 MiB of gradients over nine similar layers → five-ish buckets.
const BUCKET_BYTES: usize = 384 * 1024;
const REDUCTION_FLOOR: f64 = 0.30;
/// Steady-state reducer rounds measured after the warm-up rounds.
const ALLOC_WARMUP: usize = 2;
const ALLOC_ROUNDS: usize = 16;

/// A deep stack of equal-width layers, so gradient buckets become ready
/// spread across backward instead of in one dominant burst.
fn model(seed: u64) -> Sequential {
    let mut layers: Vec<Box<dyn Layer>> = Vec::new();
    layers.push(Box::new(Linear::new(6, 256, true, seed).unwrap()));
    layers.push(Box::new(Relu::new()));
    for i in 0..7 {
        layers.push(Box::new(Linear::new(256, 256, true, seed + 1 + i).unwrap()));
        layers.push(Box::new(Relu::new()));
    }
    layers.push(Box::new(Linear::new(256, 3, true, seed + 8).unwrap()));
    Sequential::new(layers)
}

fn batches() -> Vec<(Tensor, Vec<usize>)> {
    (0..STEPS)
        .map(|b| {
            let x = Tensor::randn(&[ROWS, 6], 1.0, 800 + b as u64);
            let labels = (0..ROWS).map(|i| (i + b) % 3).collect();
            (x, labels)
        })
        .collect()
}

fn run(bucket_bytes: usize) -> puffer_dist::trainer::DistOutcome {
    let cfg = DistConfig {
        workers: WORKERS,
        lr: 0.05,
        momentum: 0.9,
        weight_decay: 0.0,
        profile: ClusterProfile::p3_like(WORKERS),
    };
    let opts = RunOptions {
        bucket_bytes: Some(bucket_bytes),
        collective: Some(CollectiveAlgo::Ring),
        ..RunOptions::default()
    };
    let mut comp = NoCompression::new();
    train_data_parallel_with(|_| model(SEED), &batches(), &mut comp, &cfg, &opts)
        .expect("straggler-free sweep run")
}

/// Drives a warmed-up [`BucketedReducer`] through full rounds and returns
/// the `(fresh_bytes, pool_misses)` the steady-state rounds cost.
fn steady_state_allocs(layout: &PackLayout) -> (f64, f64) {
    let mut red = BucketedReducer::new(BucketPlan::new(layout, BUCKET_BYTES));
    let grads: Vec<Vec<f32>> = (0..WORKERS)
        .map(|w| (0..layout.total_len()).map(|i| ((w + i) % 7) as f32).collect())
        .collect();
    let expected: Vec<usize> = (0..WORKERS).collect();
    let mut sink = 0.0f32;
    let mut mark = (0.0, 0.0);
    for round in 0..ALLOC_WARMUP + ALLOC_ROUNDS {
        if round == ALLOC_WARMUP {
            mark = (
                probe::counter_value("alloc.fresh_bytes").unwrap_or(0.0),
                probe::counter_value("alloc.pool_misses").unwrap_or(0.0),
            );
        }
        red.start_round();
        for (w, grad) in grads.iter().enumerate() {
            for b in 0..red.plan().buckets() {
                let r = red.plan().range(b);
                red.accept(w, b, &grad[r]);
            }
            red.try_reduce(&expected);
        }
        let mean = red.finalize(&expected);
        sink += mean.as_slice()[0];
    }
    assert!(sink.is_finite());
    (
        probe::counter_value("alloc.fresh_bytes").unwrap_or(0.0) - mark.0,
        probe::counter_value("alloc.pool_misses").unwrap_or(0.0) - mark.1,
    )
}

fn main() {
    let check = std::env::args().skip(1).any(|a| a == "--check");
    let profile = ClusterProfile::p3_like(WORKERS);

    // Synchronous reference first, with the probe still disabled: the
    // exported trace should hold exactly the overlapped run.
    let sync = run(usize::MAX);

    let dir = results_dir();
    let trace_path = dir.join("overlap_sweep.json");
    probe::configure(probe::ProbeConfig {
        trace_path: Some(trace_path.clone()),
        metrics_path: None,
        collect: false,
    });
    probe::run_header(&[
        ("bench", "overlap_sweep".into()),
        ("seed", SEED.into()),
        ("workers", WORKERS.into()),
        ("steps", STEPS.into()),
        ("scheme", "none".into()),
        ("alpha", profile.alpha.into()),
        ("beta", profile.beta.into()),
    ]);
    let bucketed = run(BUCKET_BYTES);

    // Steady-state allocation probe on the same gradient geometry.
    let m = model(SEED);
    let params = m.params();
    let grad_refs: Vec<&Tensor> = params.iter().map(|p| &p.grad).collect();
    let layout = PackLayout::of_refs(&grad_refs);
    let buckets = BucketPlan::new(&layout, BUCKET_BYTES).buckets();
    let (fresh_bytes, pool_misses) = steady_state_allocs(&layout);

    if let Err(e) = probe::flush() {
        eprintln!("warning: probe flush failed: {e}");
    }

    // Re-ingest the overlapped trace through puffer-insight: rounds must
    // reassemble from the per-bucket spans and the stamped α–β must be
    // recovered within the reconcile tolerance.
    let (insight_pass, worst_rel_err, insight_detail) = match std::fs::read_to_string(&trace_path) {
        Ok(doc) => match ingest::load(Some(&doc), None) {
            Ok(rd) => {
                let report = analyze(&rd, "overlap_sweep");
                let worst =
                    report.reconciliations.iter().map(|r| r.mean_rel_err).fold(0.0f64, f64::max);
                let detail = report
                    .gates
                    .iter()
                    .map(|(g, p, _)| format!("{g}={p}"))
                    .collect::<Vec<_>>()
                    .join(" ");
                (report.all_pass && !report.reconciliations.is_empty(), worst, detail)
            }
            Err(e) => (false, f64::NAN, format!("ingest failed: {e}")),
        },
        Err(e) => (false, f64::NAN, format!("cannot read trace: {e}")),
    };

    let sync_exposed = sync.breakdown.comm_exposed.as_secs_f64();
    let bucketed_exposed = bucketed.breakdown.comm_exposed.as_secs_f64();
    let reduction = if sync_exposed > 0.0 { 1.0 - bucketed_exposed / sync_exposed } else { 0.0 };

    let overlap_pass = reduction >= REDUCTION_FLOOR;
    let bitwise_pass = bucketed.final_params == sync.final_params;
    let alloc_pass = fresh_bytes == 0.0 && pool_misses == 0.0;
    let all_pass = overlap_pass && bitwise_pass && alloc_pass && insight_pass;

    println!(
        "overlap_sweep: {WORKERS} workers, {STEPS} steps, {buckets} buckets of ≤{BUCKET_BYTES} B \
         over {} grad bytes",
        layout.total_bytes()
    );
    println!(
        "  sync     comm {:9.3}ms exposed {:9.3}ms",
        sync.breakdown.comm.as_secs_f64() * 1e3,
        sync_exposed * 1e3
    );
    println!(
        "  bucketed comm {:9.3}ms exposed {:9.3}ms  ({:.1}% exposure cut, floor {:.0}%)",
        bucketed.breakdown.comm.as_secs_f64() * 1e3,
        bucketed_exposed * 1e3,
        reduction * 100.0,
        REDUCTION_FLOOR * 100.0
    );
    println!(
        "  steady-state reducer: {fresh_bytes:.0} fresh bytes, {pool_misses:.0} pool misses \
         over {ALLOC_ROUNDS} rounds"
    );
    println!("  insight on the overlapped trace: {insight_detail}");

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"dist_overlap_sweep\",");
    let _ = writeln!(json, "  \"workers\": {WORKERS},");
    let _ = writeln!(json, "  \"steps\": {STEPS},");
    let _ = writeln!(json, "  \"buckets\": {buckets},");
    let _ = writeln!(json, "  \"bucket_bytes\": {BUCKET_BYTES},");
    let _ = writeln!(json, "  \"grad_bytes\": {},", layout.total_bytes());
    // Wall-clock seconds live under info-classified keys (no `_s` suffix):
    // sub-ms exposed-comm readings swing several-fold with machine load, so
    // cross-run gating rides the `*_pass` bools — the within-run paired
    // reduction floor — not absolute timings.
    let _ = writeln!(json, "  \"wall_seconds\": {{");
    let _ = writeln!(json, "    \"sync_comm\": {:.6},", sync.breakdown.comm.as_secs_f64());
    let _ = writeln!(json, "    \"sync_exposed\": {sync_exposed:.6},");
    let _ = writeln!(json, "    \"bucketed_comm\": {:.6},", bucketed.breakdown.comm.as_secs_f64());
    let _ = writeln!(json, "    \"bucketed_exposed\": {bucketed_exposed:.6}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"exposed_reduction\": {reduction:.4},");
    let _ = writeln!(json, "  \"reduction_floor\": {REDUCTION_FLOOR:.2},");
    let _ = writeln!(json, "  \"steady_fresh_bytes\": {fresh_bytes:.0},");
    let _ = writeln!(json, "  \"steady_pool_misses\": {pool_misses:.0},");
    let _ = writeln!(json, "  \"insight_worst_rel_err\": {worst_rel_err:.6},");
    let _ = writeln!(json, "  \"overlap_pass\": {overlap_pass},");
    let _ = writeln!(json, "  \"bitwise_pass\": {bitwise_pass},");
    let _ = writeln!(json, "  \"alloc_pass\": {alloc_pass},");
    let _ = writeln!(json, "  \"reconcile_pass\": {insight_pass},");
    let _ = writeln!(json, "  \"all_pass\": {all_pass}");
    json.push_str("}\n");

    let root = std::env::var("CARGO_MANIFEST_DIR")
        .map(|p| std::path::PathBuf::from(p).join("../.."))
        .unwrap_or_else(|_| std::path::PathBuf::from("."));
    let out = root.join("BENCH_dist.json");
    match std::fs::write(&out, &json) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", out.display()),
    }

    if check && !all_pass {
        eprintln!(
            "overlap_sweep --check FAILED: overlap={overlap_pass} (cut {reduction:.3} vs floor \
             {REDUCTION_FLOOR}), bitwise={bitwise_pass}, alloc={alloc_pass} \
             ({fresh_bytes:.0} B / {pool_misses:.0} misses), reconcile={insight_pass}"
        );
        std::process::exit(1);
    }
    if check {
        println!(
            "overlap_sweep --check ok: exposure cut, bitwise params, allocation-free, reconciled"
        );
    }
}
