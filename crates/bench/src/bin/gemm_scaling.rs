//! GEMM sweep for the blocked SIMD `Optimized` engine: thread scaling,
//! SIMD-vs-scalar-fallback, and the paper's low-rank shapes.
//!
//! Times square matmuls at 128/512/1024 plus the Pufferfish factorized
//! shapes — for a batch of `m = 128` rows, the full layer GEMM
//! `m×n · n×n` against its two skinny low-rank factors `m×n · n×r` and
//! `m×r · r×n` with `r = n/4` (the paper's 0.25 rank ratio) — across a
//! thread grid, in both `simd` and `scalar-fallback` mode, and writes a
//! machine-readable record to `BENCH_gemm.json` at the workspace root
//! (plus a line-oriented copy under `results/`). This is the compute-side
//! companion to the communication benchmarks: the paper's claim that
//! factorization cuts *compute* (Table 6 vs Table 20), not just bytes, is
//! only credible if the skinny GEMMs actually run near hardware peak, so
//! this sweep documents exactly how fast the local engine is on the
//! machine that produced any given set of results.
//!
//! Usage: `cargo run --release -p puffer-bench --bin gemm_scaling`
//! (`PUFFER_GEMM_THREADS=1,2,4,8` overrides the thread grid).

use puffer_bench::record_result;
use puffer_probe::Stopwatch;
use puffer_tensor::gemm;
use puffer_tensor::matmul::{matmul_with_profile, MatmulProfile};
use puffer_tensor::{pool, Tensor};

/// Median-of-`reps` wall time for one `m×k · k×n` matmul, in seconds.
fn time_matmul(a: &Tensor, b: &Tensor, reps: usize) -> f64 {
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Stopwatch::start();
        let c = matmul_with_profile(a, b, MatmulProfile::Optimized).unwrap();
        samples.push(t0.elapsed().as_secs_f64());
        // Keep the result observable so the multiply cannot be elided.
        assert!(c.as_slice()[0].is_finite());
    }
    samples.sort_by(|x, y| x.partial_cmp(y).unwrap());
    samples[samples.len() / 2]
}

fn thread_grid() -> Vec<usize> {
    if let Ok(v) = std::env::var("PUFFER_GEMM_THREADS") {
        let grid: Vec<usize> =
            v.split(',').filter_map(|s| s.trim().parse().ok()).filter(|&t| t >= 1).collect();
        if !grid.is_empty() {
            return grid;
        }
    }
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut grid = vec![1];
    let mut t = 2;
    while t <= hw {
        grid.push(t);
        t *= 2;
    }
    if *grid.last().unwrap() != hw {
        grid.push(hw);
    }
    grid
}

/// The swept shapes: `(m, k, n, kind)`.
fn shapes() -> Vec<(usize, usize, usize, &'static str)> {
    let mut out = Vec::new();
    for n in [128usize, 512, 1024] {
        out.push((n, n, n, "square"));
    }
    // Pufferfish low-rank shapes at rank ratio 0.25: the full layer GEMM
    // and the two skinny factor GEMMs that replace it.
    let m = 128;
    for n in [512usize, 1024] {
        let r = n / 4;
        out.push((m, n, n, "lowrank-full"));
        out.push((m, n, r, "lowrank-u"));
        out.push((m, r, n, "lowrank-v"));
    }
    out
}

fn main() {
    let grid = thread_grid();
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let prev_threads = pool::num_threads();
    let simd_detected = gemm::simd_supported();
    let (kc, mc, nc) = gemm::blocking();
    let kernel = format!(
        "BLIS-blocked MR={} NR={} KC={kc} MC={mc} NC={nc}, (jc,ic)-tile-partitioned, \
         AVX2+FMA micro-kernel with bitwise-identical mul_add fallback",
        gemm::MR,
        gemm::NR
    );
    let modes: &[(&str, bool)] = if simd_detected {
        &[("simd", true), ("scalar-fallback", false)]
    } else {
        &[("scalar-fallback", false)]
    };

    println!("GEMM sweep ({kernel}), {hw} hardware thread(s), simd_detected={simd_detected}");
    println!(
        "{:>18} {:>14} {:>16} {:>8} {:>12} {:>10} {:>9}",
        "shape", "kind", "mode", "threads", "median_s", "gflops", "speedup"
    );

    let mut entries = Vec::new();
    for &(m, k, n, kind) in &shapes() {
        let a = Tensor::randn(&[m, k], 1.0, 1);
        let b = Tensor::randn(&[k, n], 1.0, 2);
        let macs = 2 * m * k * n;
        let reps = (5_000_000_000 / macs).clamp(3, 25);
        let flops = macs as f64;
        for &(mode, simd_on) in modes {
            gemm::set_simd_enabled(simd_on);
            let mut base = None;
            for &t in &grid {
                pool::set_num_threads(t);
                // Warm the pool and caches outside the timed region.
                let _ = matmul_with_profile(&a, &b, MatmulProfile::Optimized).unwrap();
                let secs = time_matmul(&a, &b, reps);
                let base_secs = *base.get_or_insert(secs);
                let speedup = base_secs / secs;
                let gflops = flops / secs / 1e9;
                let shape = format!("{m}x{k}x{n}");
                println!(
                    "{shape:>18} {kind:>14} {mode:>16} {t:>8} {secs:>12.6} {gflops:>10.2} \
                     {speedup:>8.2}x"
                );
                record_result(
                    "gemm_scaling",
                    &format!(
                        "shape={shape} kind={kind} mode={mode} threads={t} median_s={secs:.6} \
                         gflops={gflops:.3} speedup={speedup:.3}"
                    ),
                );
                entries.push(format!(
                    "    {{ \"m\": {m}, \"k\": {k}, \"n\": {n}, \"kind\": \"{kind}\", \
                     \"mode\": \"{mode}\", \"threads\": {t}, \"median_s\": {secs:.6}, \
                     \"gflops\": {gflops:.3}, \"speedup_vs_1_thread\": {speedup:.3} }}"
                ));
            }
        }
    }
    gemm::set_simd_enabled(true);
    pool::set_num_threads(prev_threads);

    let json = format!(
        "{{\n  \"bench\": \"gemm_sweep\",\n  \"kernel\": \"{kernel}\",\n  \
         \"hardware_threads\": {hw},\n  \"simd_detected\": {simd_detected},\n  \
         \"roofline_note\": \"AVX2+FMA core peak is 32 SP FLOP/cycle (two 8-lane FMA ports); \
         at a 2.1 GHz nominal clock that is ~67 GFLOPS/core. The scalar-fallback rows route \
         every multiply-add through f32::mul_add to stay bitwise-identical to the vector \
         path; without native FMA codegen that is a libm fmaf call per element — it is a \
         determinism fallback, not a performance path. speedup_vs_1_thread is bounded by \
         hardware_threads; on a single-core host the threaded rows measure dispatch overhead, \
         not scaling.\",\n  \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    let root = std::env::var("CARGO_MANIFEST_DIR")
        .map(|p| std::path::PathBuf::from(p).join("../.."))
        .unwrap_or_else(|_| std::path::PathBuf::from("."));
    let path = root.join("BENCH_gemm.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}
