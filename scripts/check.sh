#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, and the full test suite.
# Referenced from ROADMAP.md; run before every PR.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "== cargo test -q"
cargo test -q

echo "== fault-injection suite (fixed seeds)"
cargo test -q -p puffer-dist --test fault_suite

echo "== puffer-lint (workspace correctness contracts, DESIGN.md §8)"
# The full pass: token rules plus the AST/call-graph semantic rules
# (panic reachability with pinned call chains, lock-order and
# guard-liveness hazards, float determinism, discarded Results).
# Findings print as file:line:col and fail the gate.
cargo run --release -q -p puffer-lint

echo "== puffer-lint self-test (seeded fixture violations must be caught)"
cargo test -q -p puffer-lint

echo "== lint semantic-pass bench (zero findings + 5 s scan budget)"
# Times the full cold analysis and rewrites BENCH_lint.json; keep the
# committed baseline aside for the bench-diff gate below.
LINT_BASELINE="$(mktemp)"
trap 'rm -f "$LINT_BASELINE"' EXIT
cp BENCH_lint.json "$LINT_BASELINE"
cargo run --release -q -p puffer-bench --bin lint_bench -- --check

echo "== probe overhead guard (disabled-probe cost < 2% on a GEMM)"
cargo test -q --release -p puffer-tensor --test probe_overhead

echo "== tensor suite under the scalar GEMM fallback (PUFFER_SIMD=0)"
# The blocked engine promises bitwise-identical results with the SIMD
# micro-kernel disabled; prove the whole tensor suite agrees, not just
# the dedicated A/B tests (which force both paths in-process anyway).
PUFFER_SIMD=0 cargo test -q -p puffer-tensor

echo "== allocation steady-state guard (warmed-up step must not miss the pool)"
cargo run --release -q -p puffer-bench --bin alloc_churn -- --check

echo "== allocation steady-state guard under the scalar GEMM fallback"
PUFFER_SIMD=0 cargo run --release -q -p puffer-bench --bin alloc_churn -- --check

echo "== elastic-membership soak, smoke length (seeded churn, DESIGN.md §11)"
# 24 steps, fixed seed, ≤30 s: joins/rejoins/crashes/leave plus corrupted,
# dropped, and non-finite messages; gates on schedule completion, zero
# steady-state allocation, bounded replay divergence, recovery within k
# rounds, and no leaked pool threads. Writes BENCH_soak.json.
# Keep the committed baseline aside first: the bench-diff gate below
# compares the fresh run against it.
SOAK_BASELINE="$(mktemp)"
trap 'rm -f "$SOAK_BASELINE" "$LINT_BASELINE"' EXIT
cp BENCH_soak.json "$SOAK_BASELINE"
PUFFER_SOAK_SMOKE=1 cargo run --release -q -p puffer-bench --bin soak -- --check

echo "== bucketed overlap sweep (exposed-comm cut, bitwise params, alloc-free, DESIGN.md §13)"
# Sync vs bucketed epoch on the seeded 8-worker α–β profile; rewrites
# BENCH_dist.json, so keep the committed baseline aside for the diff gate.
DIST_BASELINE="$(mktemp)"
trap 'rm -f "$DIST_BASELINE" "$SOAK_BASELINE" "$LINT_BASELINE"' EXIT
cp BENCH_dist.json "$DIST_BASELINE"
cargo run --release -q -p puffer-bench --bin overlap_sweep -- --check

echo "== insight pipeline (trace_demo → report + gates, DESIGN.md §12)"
# Re-export the demo trace, re-ingest it through puffer-insight, and gate
# on round reconstruction, straggler attribution, and α–β reconciliation.
# The trace must also still validate against the Chrome schema.
PUFFER_TRACE=results/trace_demo.json PUFFER_METRICS=results/trace_demo_metrics.jsonl \
    cargo run --release -q -p puffer-bench --bin trace_demo
cargo run --release -q -p puffer-bench --bin insight -- --check

echo "== bench-regression gate (noise-aware diff against committed baselines)"
# Identity diff proves the gate's plumbing; the soak diff catches real
# perf drift vs the baseline captured before this run regenerated it.
cargo run --release -q -p puffer-bench --bin bench_diff -- BENCH_gemm.json BENCH_gemm.json --check
cargo run --release -q -p puffer-bench --bin bench_diff -- "$SOAK_BASELINE" BENCH_soak.json --check
cargo run --release -q -p puffer-bench --bin bench_diff -- "$LINT_BASELINE" BENCH_lint.json --check
cargo run --release -q -p puffer-bench --bin bench_diff -- "$DIST_BASELINE" BENCH_dist.json --check

echo "All checks passed."
