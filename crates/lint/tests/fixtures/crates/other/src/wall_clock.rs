//! Fixture: no-wall-clock-outside-probe.

use std::time::Instant; // line 3: flagged
use std::time::SystemTime; // line 4: flagged

pub fn measure() -> std::time::Duration {
    let t0 = Instant::now(); // line 7: flagged
    let _ = SystemTime::now(); // line 8: flagged
    t0.elapsed()
}

pub fn suppressed() {
    let _t = Instant::now(); // lint:allow(no-wall-clock-outside-probe)
    // lint:allow(no-wall-clock-outside-probe) — next line is exempt too
    let _u = Instant::now();
}

pub fn decoys() -> &'static str {
    // A comment about Instant and SystemTime is fine.
    "so is the string Instant::now()"
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn timing_in_tests_is_fine() {
        let t0 = Instant::now();
        assert!(t0.elapsed().as_secs() < 1);
    }
}
