//! im2col / col2im convolution primitives.
//!
//! Convolution layers in `puffer-nn` lower to matrix multiplication through
//! [`im2col`]: an input batch `(N, C, H, W)` becomes a patch matrix of shape
//! `(C·k², N·H_out·W_out)`, so a convolution with weight `(c_out, c_in, k, k)`
//! is one matmul against the unrolled `(c_out, c_in·k²)` weight. This is the
//! same unrolling the paper uses to define conv-layer factorization
//! (`W_unrolled ∈ R^{c_in k² × c_out}`, paper §2.2).
//!
//! Above a size threshold, and under the `Optimized` default matmul
//! profile, both lowerings fan out to the process-wide worker pool
//! ([`crate::pool`]): [`im2col`] partitions over patch-matrix rows and
//! [`col2im`] over `(image, channel)` planes. Both write disjoint output
//! regions and keep the per-element visit/accumulation order of the
//! sequential loop, so results are bitwise identical for every thread
//! count.

use crate::matmul::parallel_under_default;
use crate::{pool, Result, Tensor, TensorError};
use puffer_probe as probe;

/// Geometry of a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvGeometry {
    /// Input channels.
    pub c_in: usize,
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Square kernel size.
    pub k: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub padding: usize,
}

impl ConvGeometry {
    /// Output spatial height.
    pub fn h_out(&self) -> usize {
        (self.h + 2 * self.padding - self.k) / self.stride + 1
    }

    /// Output spatial width.
    pub fn w_out(&self) -> usize {
        (self.w + 2 * self.padding - self.k) / self.stride + 1
    }

    /// Rows of the patch matrix: `c_in · k²`.
    pub fn patch_rows(&self) -> usize {
        self.c_in * self.k * self.k
    }

    /// Validates that the kernel fits within the padded input.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the kernel exceeds the
    /// padded input extent or the stride is zero.
    pub fn validate(&self) -> Result<()> {
        if self.stride == 0
            || self.h + 2 * self.padding < self.k
            || self.w + 2 * self.padding < self.k
        {
            return Err(TensorError::ShapeMismatch {
                expected: vec![self.k, self.k],
                got: vec![self.h + 2 * self.padding, self.w + 2 * self.padding],
                op: "conv_geometry",
            });
        }
        Ok(())
    }
}

/// Lowers an input batch `(N, C, H, W)` into a patch matrix of shape
/// `(C·k², N·H_out·W_out)`. Patch column order is `(n, y_out, x_out)`
/// row-major, matching [`col2im`].
///
/// # Errors
///
/// Returns [`TensorError::WrongDimensions`] for non-4-D input or
/// [`TensorError::ShapeMismatch`] if the input shape disagrees with `geo`.
pub fn im2col(input: &Tensor, geo: &ConvGeometry) -> Result<Tensor> {
    if input.ndim() != 4 {
        return Err(TensorError::WrongDimensions { expected: 4, got: input.ndim(), op: "im2col" });
    }
    geo.validate()?;
    let shape = input.shape();
    let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
    if c != geo.c_in || h != geo.h || w != geo.w {
        return Err(TensorError::ShapeMismatch {
            expected: vec![n, geo.c_in, geo.h, geo.w],
            got: shape.to_vec(),
            op: "im2col",
        });
    }
    let (ho, wo, k) = (geo.h_out(), geo.w_out(), geo.k);
    let rows = geo.patch_rows();
    let cols = n * ho * wo;
    let mut out = Tensor::zeros(&[rows, cols]);
    if rows == 0 || cols == 0 {
        return Ok(out);
    }
    let _sp = probe::span_with("tensor", "im2col", || {
        vec![("rows", rows.into()), ("cols", cols.into()), ("n", n.into())]
    });
    let src = input.as_slice();
    let pad = geo.padding as isize;
    let stride = geo.stride;

    // One patch-matrix row per (ci, ky, kx); each row is a contiguous,
    // disjoint slice of the output, so rows parallelize trivially.
    let fill_rows = |row0: usize, chunk: &mut [f32]| {
        for (ri, dst_row) in chunk.chunks_exact_mut(cols).enumerate() {
            let row = row0 + ri;
            let kx = row % k;
            let ky = (row / k) % k;
            let ci = row / (k * k);
            for ni in 0..n {
                let img_base = (ni * c + ci) * h * w;
                for oy in 0..ho {
                    let iy = (oy * stride) as isize + ky as isize - pad;
                    let col_base = (ni * ho + oy) * wo;
                    if iy < 0 || iy >= h as isize {
                        continue; // zero padding, dst already 0
                    }
                    let src_row = img_base + iy as usize * w;
                    for ox in 0..wo {
                        let ix = (ox * stride) as isize + kx as isize - pad;
                        if ix >= 0 && ix < w as isize {
                            dst_row[col_base + ox] = src[src_row + ix as usize];
                        }
                    }
                }
            }
        }
    };
    if parallel_under_default(rows * cols) {
        pool::run_chunked(out.as_mut_slice(), cols, fill_rows);
    } else {
        fill_rows(0, out.as_mut_slice());
    }
    Ok(out)
}

/// Adjoint of [`im2col`]: scatters a patch-matrix gradient
/// `(C·k², N·H_out·W_out)` back to an input-shaped gradient `(N, C, H, W)`.
/// Overlapping patches accumulate, which makes `col2im(im2col(·))` the
/// correct vector–Jacobian product for convolution backward.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `cols` does not have the patch
/// shape implied by `geo` and `n`.
pub fn col2im(cols: &Tensor, geo: &ConvGeometry, n: usize) -> Result<Tensor> {
    geo.validate()?;
    let (ho, wo, k) = (geo.h_out(), geo.w_out(), geo.k);
    let rows = geo.patch_rows();
    let ncols = n * ho * wo;
    if cols.shape() != [rows, ncols] {
        return Err(TensorError::ShapeMismatch {
            expected: vec![rows, ncols],
            got: cols.shape().to_vec(),
            op: "col2im",
        });
    }
    let (c, h, w) = (geo.c_in, geo.h, geo.w);
    let mut out = Tensor::zeros(&[n, c, h, w]);
    if out.is_empty() {
        return Ok(out);
    }
    let _sp = probe::span_with("tensor", "col2im", || {
        vec![("rows", rows.into()), ("cols", ncols.into()), ("n", n.into())]
    });
    let src = cols.as_slice();
    let pad = geo.padding as isize;
    let stride = geo.stride;

    // Each (image, channel) plane of the output accumulates only from the
    // k² patch rows of its own channel, so planes partition the scatter
    // without write conflicts. Per pixel, the (ky, kx, oy, ox) accumulation
    // order matches the sequential loop exactly.
    let plane_len = h * w;
    let fill_planes = |p0: usize, chunk: &mut [f32]| {
        for (pi, plane) in chunk.chunks_exact_mut(plane_len).enumerate() {
            let idx = p0 + pi;
            let ci = idx % c;
            let ni = idx / c;
            for ky in 0..k {
                for kx in 0..k {
                    let row = (ci * k + ky) * k + kx;
                    let row_base = row * ncols;
                    for oy in 0..ho {
                        let iy = (oy * stride) as isize + ky as isize - pad;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let dst_row = iy as usize * w;
                        let col_base = row_base + (ni * ho + oy) * wo;
                        for ox in 0..wo {
                            let ix = (ox * stride) as isize + kx as isize - pad;
                            if ix >= 0 && ix < w as isize {
                                plane[dst_row + ix as usize] += src[col_base + ox];
                            }
                        }
                    }
                }
            }
        }
    };
    if parallel_under_default(n * c * k * k * ho * wo) {
        pool::run_chunked(out.as_mut_slice(), plane_len, fill_planes);
    } else {
        fill_planes(0, out.as_mut_slice());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geo(c: usize, h: usize, w: usize, k: usize, stride: usize, padding: usize) -> ConvGeometry {
        ConvGeometry { c_in: c, h, w, k, stride, padding }
    }

    #[test]
    fn output_dims() {
        let g = geo(3, 32, 32, 3, 1, 1);
        assert_eq!((g.h_out(), g.w_out()), (32, 32));
        let g = geo(3, 32, 32, 3, 2, 1);
        assert_eq!((g.h_out(), g.w_out()), (16, 16));
        let g = geo(3, 224, 224, 7, 2, 3);
        assert_eq!((g.h_out(), g.w_out()), (112, 112));
    }

    #[test]
    fn im2col_shapes() {
        let g = geo(2, 4, 4, 3, 1, 1);
        let x = Tensor::randn(&[3, 2, 4, 4], 1.0, 1);
        let cols = im2col(&x, &g).unwrap();
        assert_eq!(cols.shape(), &[2 * 9, 3 * 4 * 4]);
    }

    #[test]
    fn identity_kernel_1x1() {
        // 1x1 patches with stride 1 and no padding are just a reshape.
        let g = geo(2, 3, 3, 1, 1, 0);
        let x = Tensor::from_vec((0..18).map(|v| v as f32).collect(), &[1, 2, 3, 3]).unwrap();
        let cols = im2col(&x, &g).unwrap();
        assert_eq!(cols.shape(), &[2, 9]);
        assert_eq!(cols.as_slice(), x.as_slice());
    }

    #[test]
    fn known_3x3_patch() {
        // Single 3x3 image, 3x3 kernel, no padding: one patch = the image.
        let g = geo(1, 3, 3, 3, 1, 0);
        let x = Tensor::from_vec((1..=9).map(|v| v as f32).collect(), &[1, 1, 3, 3]).unwrap();
        let cols = im2col(&x, &g).unwrap();
        assert_eq!(cols.shape(), &[9, 1]);
        assert_eq!(cols.as_slice(), x.as_slice());
    }

    #[test]
    fn padding_zeros_at_border() {
        let g = geo(1, 2, 2, 3, 1, 1);
        let x = Tensor::ones(&[1, 1, 2, 2]);
        let cols = im2col(&x, &g).unwrap();
        // Top-left output position: kernel offset (0,0) reads padded zero.
        assert_eq!(cols.at2(0, 0), 0.0);
        // Center kernel offset (1,1) at output (0,0) reads pixel (0,0) = 1.
        assert_eq!(cols.at2(4, 0), 1.0);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
        // property of the adjoint and what conv backward relies on.
        let g = geo(3, 6, 5, 3, 2, 1);
        let n = 2;
        let x = Tensor::randn(&[n, 3, 6, 5], 1.0, 2);
        let cols = im2col(&x, &g).unwrap();
        let y = Tensor::randn(cols.shape(), 1.0, 3);
        let xty = cols.dot(&y).unwrap();
        let back = col2im(&y, &g, n).unwrap();
        let xback = x.dot(&back).unwrap();
        assert!((xty - xback).abs() < 1e-2 * xty.abs().max(1.0), "{xty} vs {xback}");
    }

    #[test]
    fn col2im_accumulates_overlaps() {
        // 2x3 image, k=2, stride=1, no padding: the middle column of pixels
        // is covered by both horizontal patch positions.
        let g = geo(1, 2, 3, 2, 1, 0);
        assert_eq!((g.h_out(), g.w_out(), g.patch_rows()), (1, 2, 4));
        let ones = Tensor::ones(&[4, 2]);
        let img = col2im(&ones, &g, 1).unwrap();
        assert_eq!(img.as_slice(), &[1.0, 2.0, 1.0, 1.0, 2.0, 1.0]);
    }

    #[test]
    fn geometry_validation() {
        assert!(geo(1, 2, 2, 5, 1, 0).validate().is_err());
        assert!(geo(1, 2, 2, 5, 1, 2).validate().is_ok());
        assert!(geo(1, 4, 4, 3, 0, 1).validate().is_err());
    }

    #[test]
    fn shape_errors() {
        let g = geo(3, 8, 8, 3, 1, 1);
        let wrong = Tensor::zeros(&[1, 2, 8, 8]);
        assert!(im2col(&wrong, &g).is_err());
        let not4d = Tensor::zeros(&[3, 8, 8]);
        assert!(im2col(&not4d, &g).is_err());
        let badcols = Tensor::zeros(&[5, 5]);
        assert!(col2im(&badcols, &g, 1).is_err());
    }
}
