//! **Table 1**: parameter counts and computational complexity of vanilla
//! vs factorized FC, convolution, LSTM, attention, and FFN layers.
//!
//! The closed forms come from `puffer_nn::complexity`; this binary
//! instantiates representative layers at the paper's dimensions and prints
//! the symbolic formula next to the evaluated counts, cross-checking the
//! formulas against actually constructed layers.

use puffer_bench::record_result;
use puffer_bench::table::{commas, Table};
use puffer_nn::complexity as cx;
use puffer_nn::conv::{Conv2d, LowRankConv2d};
use puffer_nn::layer::Layer;
use puffer_nn::linear::{Linear, LowRankLinear};
use puffer_nn::lstm::{GateRank, LstmLayer};

fn main() {
    println!("== Table 1: #params and computational complexity ==\n");
    let mut t =
        Table::new(vec!["Network", "# Params (formula)", "evaluated", "instantiated", "MACs"]);

    // FC at the paper's classifier dims m = n = 512, r = 128.
    let (m, n, r) = (512u64, 512u64, 128u64);
    let fc = Linear::new(n as usize, m as usize, false, 1).unwrap();
    t.row(vec![
        "Vanilla FC".into(),
        "m x n".into(),
        commas(cx::fc_params(m, n)),
        commas(fc.param_count() as u64),
        commas(cx::fc_macs(m, n)),
    ]);
    let fc_lr = LowRankLinear::new(n as usize, m as usize, r as usize, false, 1).unwrap();
    t.row(vec![
        "Factorized FC".into(),
        "r(m+n)".into(),
        commas(cx::fc_low_rank_params(m, n, r)),
        commas(fc_lr.param_count() as u64),
        commas(cx::fc_low_rank_macs(m, n, r)),
    ]);

    // Conv at the paper's VGG conv10 dims: 512→512, k = 3, r = 128, 4x4 map.
    let (ci, co, k, rc, h, w) = (512u64, 512u64, 3u64, 128u64, 4u64, 4u64);
    let conv = Conv2d::new(ci as usize, co as usize, k as usize, 1, 1, false, 1).unwrap();
    t.row(vec![
        "Vanilla Conv.".into(),
        "c_in c_out k^2".into(),
        commas(cx::conv_params(ci, co, k)),
        commas(conv.param_count() as u64),
        commas(cx::conv_macs(ci, co, k, h, w)),
    ]);
    let conv_lr =
        LowRankConv2d::new(ci as usize, co as usize, k as usize, 1, 1, rc as usize, 1).unwrap();
    t.row(vec![
        "Factorized Conv.".into(),
        "c_in r k^2 + r c_out".into(),
        commas(cx::conv_low_rank_params(ci, co, k, rc)),
        commas(conv_lr.param_count() as u64),
        commas(cx::conv_low_rank_macs(ci, co, k, rc, h, w)),
    ]);

    // LSTM at d = h = 1500, r = 375 (parameter formulas exclude biases in
    // Table 1; our instantiated layers include the 4h gate biases).
    let (d, hh, rl) = (1500u64, 1500u64, 375u64);
    let lstm = LstmLayer::new(48, 48, GateRank::Full, 1).unwrap();
    let lstm_lr = LstmLayer::new(48, 48, GateRank::LowRank(12), 1).unwrap();
    t.row(vec![
        "Vanilla LSTM".into(),
        "4(dh + h^2)".into(),
        commas(cx::lstm_params(d, hh) - 4 * hh),
        format!("{} (d=h=48, +bias)", commas(lstm.param_count() as u64)),
        commas(cx::lstm_macs(d, hh)),
    ]);
    t.row(vec![
        "Factorized LSTM".into(),
        "4dr + 12hr".into(),
        commas(cx::lstm_low_rank_params(d, hh, rl) - 4 * hh),
        format!("{} (d=h=48, +bias)", commas(lstm_lr.param_count() as u64)),
        commas(cx::lstm_low_rank_macs(d, hh, rl)),
    ]);

    // Transformer blocks at p = 8, d = 64 (d_model 512), r = 128, N = 32.
    let (p, dd, rt, nn) = (8u64, 64u64, 128u64, 32u64);
    t.row(vec![
        "Vanilla Attention".into(),
        "4 p^2 d^2".into(),
        commas(cx::attention_params(p, dd)),
        String::new(),
        commas(cx::attention_macs(p, dd, nn)),
    ]);
    t.row(vec![
        "Factorized Attention".into(),
        "(3p+5) p r d".into(),
        commas(cx::attention_low_rank_params(p, dd, rt)),
        String::new(),
        commas(cx::attention_low_rank_macs(p, dd, rt, nn)),
    ]);
    t.row(vec![
        "Vanilla FFN".into(),
        "8 p^2 d^2".into(),
        commas(cx::ffn_params(p, dd)),
        String::new(),
        commas(cx::ffn_macs(p, dd, nn)),
    ]);
    t.row(vec![
        "Factorized FFN".into(),
        "10 p d r".into(),
        commas(cx::ffn_low_rank_params(p, dd, rt)),
        String::new(),
        commas(cx::ffn_low_rank_macs(p, dd, rt, nn)),
    ]);
    t.print();

    // Cross-check: evaluated formulas match instantiated layers exactly.
    assert_eq!(cx::fc_params(m, n), fc.param_count() as u64);
    assert_eq!(cx::fc_low_rank_params(m, n, r), fc_lr.param_count() as u64);
    assert_eq!(cx::conv_params(ci, co, k), conv.param_count() as u64);
    assert_eq!(cx::conv_low_rank_params(ci, co, k, rc), conv_lr.param_count() as u64);
    assert_eq!(cx::lstm_params(48, 48), lstm.param_count() as u64);
    assert_eq!(cx::lstm_low_rank_params(48, 48, 12), lstm_lr.param_count() as u64);
    println!("\nall formulas cross-checked against instantiated layers ✓");
    record_result("table1_complexity", "formulas cross-checked OK");
}
