//! **Figure 4(a)**: per-epoch breakdown (computation vs communication) and
//! end-to-end convergence for vanilla SGD, Pufferfish, and Signum —
//! ResNet-50 on ImageNet(-lite), 16-node cluster.
//!
//! Computation and encode/decode are measured on real gradients at bench
//! scale; communication uses the α–β cost model at the paper's cluster
//! size (16 × p3.2xlarge, 10 Gbps). Shape under reproduction: Pufferfish
//! beats both vanilla SGD (less communication *and* less compute) and
//! Signum (whose allgather scales poorly), per-epoch and end-to-end.

use puffer_bench::scale::RunScale;
use puffer_bench::table::Table;
use puffer_bench::{record_result, setups};
use puffer_compress::none::NoCompression;
use puffer_compress::signum::Signum;
use puffer_compress::GradCompressor;
use puffer_dist::breakdown::measure_sequential_epoch;
use puffer_dist::cost::ClusterProfile;
use puffer_models::resnet::ResNetHybridPlan;
use puffer_models::units::FactorInit;
use puffer_nn::Layer;
use pufferfish::trainer::ImageModel;

const NODES: usize = 16;

fn main() {
    let scale = RunScale::from_env();
    let data = setups::imagenet_lite_data(scale);
    let classes = data.config().classes;
    let profile = ClusterProfile::p3_like(NODES);
    let epochs = scale.pick(2, 5);
    // Global batch 256 in the paper (16/node); bench scale 64 (4/node).
    let batches = data.train_batches(64, 0);
    println!("== Figure 4(a): ResNet-50 / ImageNet-lite breakdown, {NODES} nodes ==\n");

    let mut t = Table::new(vec![
        "method",
        "compute s/epoch",
        "encode+decode",
        "comm (modeled)",
        "total",
        "final loss",
    ]);
    // (method, total, codec seconds, bench gradient bytes)
    let mut totals: Vec<(&str, f64, f64, usize)> = Vec::new();
    for method in ["vanilla-sgd", "pufferfish", "signum"] {
        let mut model: ImageModel = match method {
            "pufferfish" => setups::resnet50(classes, 1)
                .to_hybrid(&ResNetHybridPlan::resnet50_paper(), FactorInit::WarmStart)
                .expect("hybrid")
                .into(),
            _ => setups::resnet50(classes, 1).into(),
        };
        let mut vanilla_c;
        let mut signum_c;
        let compressor: &mut dyn GradCompressor = if method == "signum" {
            signum_c = Signum::new(0.9);
            &mut signum_c
        } else {
            vanilla_c = NoCompression::new();
            &mut vanilla_c
        };
        let mut last = Default::default();
        let mut loss = f32::NAN;
        for _ in 0..epochs {
            let (bd, l) =
                measure_sequential_epoch(&mut model, &batches, NODES, compressor, &profile, 0.05)
                    .expect("epoch");
            last = bd;
            loss = l;
        }
        let grad_bytes: usize = model.params().iter().map(|p| p.len() * 4).sum();
        t.row(vec![
            format!("{method} ({:.1} MB grads)", grad_bytes as f64 / 1e6),
            format!("{:.3}", last.compute.as_secs_f64()),
            format!("{:.3}", (last.encode + last.decode).as_secs_f64()),
            format!("{:.3}", last.comm.as_secs_f64()),
            format!("{:.3}", last.total().as_secs_f64()),
            format!("{loss:.3}"),
        ]);
        totals.push((
            method,
            last.total().as_secs_f64(),
            (last.encode + last.decode).as_secs_f64(),
            grad_bytes,
        ));
        record_result(
            "fig4a_breakdown",
            &format!(
                "{method}: compute {:.3} codec {:.3} comm {:.3} total {:.3}",
                last.compute.as_secs_f64(),
                (last.encode + last.decode).as_secs_f64(),
                last.comm.as_secs_f64(),
                last.total().as_secs_f64()
            ),
        );
    }
    t.print();
    let v = totals.iter().find(|(m, ..)| *m == "vanilla-sgd").unwrap().1;
    let p = totals.iter().find(|(m, ..)| *m == "pufferfish").unwrap().1;
    let s = totals.iter().find(|(m, ..)| *m == "signum").unwrap().1;
    println!("\nper-epoch speedups (bench scale): pufferfish vs vanilla {:.2}x (paper 1.35x), vs signum {:.2}x (paper 1.28x)", v / p, s / p);

    // Full-scale projection: at 1/64 width the conv5_x-only compute saving
    // is below CPU measurement noise, so project the paper's setting from
    // the exact full-scale ledgers — compute scaled by the MAC ratio, comm
    // modeled on the real 97.5 MB / 58 MB gradients.
    use puffer_models::spec::{resnet50_imagenet, SpecVariant};
    let spec_v = resnet50_imagenet(SpecVariant::Vanilla);
    let spec_p = resnet50_imagenet(SpecVariant::Pufferfish);
    let steps = batches.len() as f64;
    let vanilla_row = totals.iter().find(|(m, ..)| *m == "vanilla-sgd").unwrap();
    let signum_row = totals.iter().find(|(m, ..)| *m == "signum").unwrap();
    let compute_v = vanilla_row.1 - vanilla_row.2; // compute-ish share
                                                   // Keep the measured vanilla compute as the unit; scale by MACs.
    let mac_ratio = spec_p.macs() as f64 / spec_v.macs() as f64;
    let comm_v = profile.allreduce(spec_v.params() as usize * 4).as_secs_f64() * steps;
    let comm_p = profile.allreduce(spec_p.params() as usize * 4).as_secs_f64() * steps;
    let comm_s = profile.allgather(spec_v.params() as usize / 8).as_secs_f64() * steps;
    // Signum's majority-vote decode is O(workers · n): scale the measured
    // codec time by the parameter ratio between full scale and bench scale.
    let param_scale = (spec_v.params() as f64 * 4.0) / signum_row.3 as f64;
    let codec_s = signum_row.2 * param_scale;
    let proj_v = compute_v + comm_v;
    let proj_p = compute_v * mac_ratio + comm_p;
    let proj_s = compute_v + codec_s + comm_s; // sign bit per coordinate
    println!("\nfull-scale projection (measured compute x MAC ratio + cost-model comm on real gradient sizes):");
    println!("  vanilla {proj_v:.2}s, pufferfish {proj_p:.2}s, signum {proj_s:.2}s");
    println!(
        "  -> pufferfish vs vanilla {:.2}x (paper 1.35x), vs signum {:.2}x (paper 1.28x)",
        proj_v / proj_p,
        proj_s / proj_p
    );
    record_result(
        "fig4a_breakdown",
        &format!("projection: vanilla {proj_v:.3} pufferfish {proj_p:.3} signum {proj_s:.3}"),
    );
}
