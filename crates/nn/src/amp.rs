//! Software-emulated mixed-precision ("AMP") training.
//!
//! The paper's Tables 4–5 verify that Pufferfish's accuracy is stable under
//! PyTorch AMP. We reproduce the numerics of AMP in software:
//!
//! 1. master weights stay in f32;
//! 2. a half-precision **copy** of the weights is what the forward/backward
//!    pass sees ([`AmpSession::cast_params_to_f16`] rounds values through
//!    IEEE binary16 and remembers the masters);
//! 3. the loss is scaled before backward so small gradients survive the
//!    binary16 dynamic range, and unscaled before the optimizer step
//!    ([`AmpSession::unscale_grads`]), with the standard inf/nan skip logic.

use crate::param::Param;
use puffer_tensor::f16::round_slice_f16;
use puffer_tensor::Tensor;

/// Dynamic-loss-scaling state for one training run.
#[derive(Debug, Clone)]
pub struct AmpSession {
    loss_scale: f32,
    growth_factor: f32,
    backoff_factor: f32,
    growth_interval: u32,
    steps_since_backoff: u32,
    masters: Vec<Tensor>,
}

impl Default for AmpSession {
    fn default() -> Self {
        Self::new()
    }
}

impl AmpSession {
    /// Creates a session with PyTorch's default scaler constants
    /// (initial scale 2¹⁶, growth 2×, backoff 0.5×, growth interval 2000).
    pub fn new() -> Self {
        AmpSession {
            loss_scale: 65536.0,
            growth_factor: 2.0,
            backoff_factor: 0.5,
            growth_interval: 2000,
            steps_since_backoff: 0,
            masters: Vec::new(),
        }
    }

    /// Current loss scale.
    pub fn loss_scale(&self) -> f32 {
        self.loss_scale
    }

    /// Rounds every parameter through binary16 for the upcoming
    /// forward/backward, saving the f32 masters. Call
    /// [`AmpSession::restore_masters`] before the optimizer step.
    pub fn cast_params_to_f16(&mut self, params: &mut [&mut Param]) {
        self.masters = params.iter().map(|p| p.value.clone()).collect();
        for p in params.iter_mut() {
            round_slice_f16(p.value.as_mut_slice());
        }
    }

    /// Restores the f32 master weights saved by
    /// [`AmpSession::cast_params_to_f16`].
    ///
    /// # Panics
    ///
    /// Panics if no cast is outstanding or the parameter list changed.
    pub fn restore_masters(&mut self, params: &mut [&mut Param]) {
        assert_eq!(self.masters.len(), params.len(), "no matching cast_params_to_f16");
        for (p, m) in params.iter_mut().zip(self.masters.drain(..)) {
            p.value = m;
        }
    }

    /// Scales a loss gradient by the current loss scale (apply to the
    /// gradient fed into `backward`).
    pub fn scale_loss_grad(&self, grad: &Tensor) -> Tensor {
        let mut g = grad.clone();
        g.scale(self.loss_scale);
        g
    }

    /// Rounds a gradient through binary16, emulating a half-precision
    /// backward pass.
    pub fn round_grad_f16(grad: &mut Tensor) {
        round_slice_f16(grad.as_mut_slice());
    }

    /// Unscales accumulated gradients and runs the inf/nan check.
    /// Returns `true` if the step should proceed; on overflow the gradients
    /// are zeroed, the scale backs off, and `false` is returned (skip step).
    pub fn unscale_grads(&mut self, params: &mut [&mut Param]) -> bool {
        let inv = 1.0 / self.loss_scale;
        let mut overflow = false;
        for p in params.iter() {
            if p.grad.as_slice().iter().any(|g| !g.is_finite()) {
                overflow = true;
                break;
            }
        }
        if overflow {
            for p in params.iter_mut() {
                p.zero_grad();
            }
            self.loss_scale = (self.loss_scale * self.backoff_factor).max(1.0);
            self.steps_since_backoff = 0;
            return false;
        }
        for p in params.iter_mut() {
            p.grad.scale(inv);
        }
        self.steps_since_backoff += 1;
        if self.steps_since_backoff >= self.growth_interval {
            self.loss_scale *= self.growth_factor;
            self.steps_since_backoff = 0;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn param(vals: &[f32]) -> Param {
        Param::new("p", Tensor::from_vec(vals.to_vec(), &[vals.len()]).unwrap())
    }

    #[test]
    fn cast_and_restore_round_trip() {
        let mut p = param(&[0.1, 1.0, std::f32::consts::PI]);
        let original = p.value.clone();
        let mut amp = AmpSession::new();
        amp.cast_params_to_f16(&mut [&mut p]);
        // 0.1 is inexact in f16.
        assert_ne!(p.value.as_slice()[0], 0.1);
        assert_eq!(p.value.as_slice()[1], 1.0);
        amp.restore_masters(&mut [&mut p]);
        assert_eq!(p.value, original);
    }

    #[test]
    fn unscale_divides_by_scale() {
        let mut p = param(&[0.0]);
        p.grad = Tensor::from_vec(vec![65536.0], &[1]).unwrap();
        let mut amp = AmpSession::new();
        assert!(amp.unscale_grads(&mut [&mut p]));
        assert!((p.grad.as_slice()[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn overflow_skips_and_backs_off() {
        let mut p = param(&[0.0]);
        p.grad = Tensor::from_vec(vec![f32::INFINITY], &[1]).unwrap();
        let mut amp = AmpSession::new();
        let scale0 = amp.loss_scale();
        assert!(!amp.unscale_grads(&mut [&mut p]));
        assert_eq!(p.grad.as_slice()[0], 0.0);
        assert_eq!(amp.loss_scale(), scale0 * 0.5);
    }

    #[test]
    fn scale_grows_after_interval() {
        let mut amp = AmpSession::new();
        amp.growth_interval = 3;
        let mut p = param(&[0.0]);
        let scale0 = amp.loss_scale();
        for _ in 0..3 {
            p.grad = Tensor::from_vec(vec![1.0], &[1]).unwrap();
            assert!(amp.unscale_grads(&mut [&mut p]));
        }
        assert_eq!(amp.loss_scale(), scale0 * 2.0);
    }

    #[test]
    fn scaled_loss_grad() {
        let amp = AmpSession::new();
        let g = Tensor::from_vec(vec![1e-7], &[1]).unwrap();
        let sg = amp.scale_loss_grad(&g);
        // 1e-7 underflows f16; scaled by 2^16 it survives rounding.
        let mut rounded = sg.clone();
        AmpSession::round_grad_f16(&mut rounded);
        assert!(rounded.as_slice()[0] > 0.0);
    }
}
