//! A lightweight recursive-descent parser over the lexer's token stream.
//!
//! The token-rule engine can answer "does `unwrap` appear here?"; it
//! cannot answer "is this `unwrap` *reachable* from the trainer's entry
//! point?" or "are these two locks ever taken in opposite orders?". Those
//! questions need structure: which function a call sits in, what a method
//! chain's receiver is, where a `let` binding's scope ends. This module
//! parses exactly that much structure and no more:
//!
//! * items — `fn` (with signature and return type), `mod`, `impl`,
//!   `trait`, everything else opaque;
//! * blocks and statements — `let` bindings (pattern, type annotation,
//!   initializer), expression statements, nested items;
//! * expressions — calls, method calls (with turbofish), field accesses,
//!   indexing, `?`, closures, macros, blocks, `if`/`match`/loops, struct
//!   literals, and a flat `Chain` for operator sequences (the semantic
//!   rules never need operator precedence, only call/receiver structure).
//!
//! The parser is total: it never fails on any input. Unparseable stretches
//! are skipped to the next statement boundary and recorded as
//! [`ExprKind::Opaque`], so one exotic construct cannot hide the rest of a
//! file from analysis. Every node carries a [`Span`] with byte offsets
//! into the original source (`src[span.lo..span.hi]` is the node's exact
//! text) plus the token-index range, which is how the `#[cfg(test)]` mask
//! from [`crate::scope`] is consulted per node.

use crate::lexer::{Token, TokenKind};

/// Byte- and token-extent of a node in its source file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Byte offset of the first token.
    pub lo: usize,
    /// Byte offset one past the last token.
    pub hi: usize,
    /// 1-based line of the first token.
    pub line: u32,
    /// 1-based column of the first token.
    pub col: u32,
    /// Token index of the first token.
    pub tok_lo: usize,
    /// Token index one past the last token.
    pub tok_hi: usize,
}

impl Span {
    fn at(tokens: &[Token], lo: usize, hi: usize) -> Span {
        let first = &tokens[lo.min(tokens.len() - 1)];
        let last = &tokens[hi.saturating_sub(1).min(tokens.len() - 1)];
        Span {
            lo: first.off,
            hi: last.end_off(),
            line: first.line,
            col: first.col,
            tok_lo: lo,
            tok_hi: hi,
        }
    }
}

/// A parsed source file: its top-level items.
#[derive(Debug, Default)]
pub struct File {
    /// Items in source order.
    pub items: Vec<Item>,
}

/// One top-level or nested item.
#[derive(Debug)]
pub enum Item {
    /// A free function, method, or trait default method.
    Fn(FnDef),
    /// An inline module with its nested items.
    Mod {
        /// Module name.
        name: String,
        /// Nested items.
        items: Vec<Item>,
        /// Extent.
        span: Span,
    },
    /// An `impl` block; `fns` are its methods.
    Impl {
        /// The `Self` type's last path segment (`Trainer` for
        /// `impl<T> Trainer<T>`).
        self_ty: String,
        /// `Some(trait_name)` for `impl Trait for Type`.
        trait_name: Option<String>,
        /// Methods.
        fns: Vec<FnDef>,
        /// Extent.
        span: Span,
    },
    /// A trait declaration; `fns` are methods with default bodies (and
    /// bodiless signatures, body `None`).
    Trait {
        /// Trait name.
        name: String,
        /// Methods.
        fns: Vec<FnDef>,
        /// Extent.
        span: Span,
    },
    /// Anything else (struct, enum, use, const, static, type, macro…).
    Other {
        /// Extent.
        span: Span,
    },
}

/// A function definition: signature plus (optionally) a body.
#[derive(Debug)]
pub struct FnDef {
    /// The function's name.
    pub name: String,
    /// Token index of the name (for `#[cfg(test)]` mask lookup).
    pub name_tok: usize,
    /// Whether the parameter list starts with a `self` receiver.
    pub has_self: bool,
    /// Normalized return type text (`Result < ( ) , E >`), `None` for `()`.
    pub ret: Option<String>,
    /// The body, `None` for bodiless trait signatures.
    pub body: Option<Block>,
    /// Extent from `fn` through the closing brace or `;`.
    pub span: Span,
}

impl FnDef {
    /// The first path-segment "head" of the return type, skipping leading
    /// qualifiers: `std::io::Result<()>` → `Result`.
    pub fn ret_head(&self) -> Option<&str> {
        let ret = self.ret.as_deref()?;
        let mut head = None;
        for word in ret.split_whitespace() {
            if word == "<" || word == "(" {
                break;
            }
            if word == "impl" {
                // `impl Trait` is opaque; the head is `impl`, not the
                // trait name.
                return Some("impl");
            }
            if word.chars().next().is_some_and(|c| c.is_alphabetic() || c == '_') {
                head = Some(word);
            } else if word != ":" && word != "&" && !word.starts_with('\'') {
                break;
            }
        }
        head
    }
}

/// A `{ … }` block.
#[derive(Debug)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
    /// Extent including the braces.
    pub span: Span,
}

/// One statement.
#[derive(Debug)]
pub enum Stmt {
    /// `let pat: ty = init;` (any part after `pat` optional).
    Let {
        /// Pattern text, whitespace-joined (`_`, `mut spawned`, `( a , b )`).
        pat: String,
        /// Head segment of the type annotation, if any (`HashMap` for
        /// `HashMap<u32, f32>`).
        ty_head: Option<String>,
        /// Initializer expression.
        init: Option<Expr>,
        /// `let … else { … }` diverging block.
        els: Option<Block>,
        /// Extent.
        span: Span,
    },
    /// An expression statement; `semi` records the trailing `;`.
    Expr {
        /// The expression.
        expr: Expr,
        /// Whether a `;` followed.
        semi: bool,
    },
    /// A nested item (fn-in-fn, inline module, …).
    Item(Item),
}

/// One expression node.
#[derive(Debug)]
pub struct Expr {
    /// What kind of expression.
    pub kind: ExprKind,
    /// Extent.
    pub span: Span,
}

/// Expression structure, only as deep as the semantic rules need.
#[derive(Debug)]
pub enum ExprKind {
    /// A path used as a value (`x`, `f32::INFINITY`, `Shape::Square`).
    Path(String),
    /// A literal.
    Lit(String),
    /// A free or associated call: `f(args)`, `Membership::join(args)`.
    Call {
        /// Path segments (`["Membership", "join"]`).
        path: Vec<String>,
        /// Token index of the last segment.
        name_tok: usize,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// A method call `recv.name::<T>(args)`.
    MethodCall {
        /// Receiver.
        recv: Box<Expr>,
        /// Method name.
        name: String,
        /// Token index of the method name.
        name_tok: usize,
        /// Turbofish text, if present (`f32` for `sum::<f32>`).
        turbofish: Option<String>,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Field access `recv.name` (tuple fields included, name = digits).
    Field {
        /// Base expression.
        base: Box<Expr>,
        /// Field name.
        name: String,
    },
    /// Indexing `base[index]` — a potential panic site.
    Index {
        /// Indexed expression.
        base: Box<Expr>,
        /// Index expression (may itself be a range).
        index: Box<Expr>,
    },
    /// `inner?`.
    Try(Box<Expr>),
    /// A closure; the rules treat its body as deferred code.
    Closure(Box<Expr>),
    /// A macro invocation `name!(args)` / `name![…]` / `name!{…}`.
    Macro {
        /// Macro name (last path segment).
        name: String,
        /// Token index of the name.
        name_tok: usize,
        /// Leniently parsed interior expressions.
        args: Vec<Expr>,
    },
    /// A block expression (incl. `unsafe { … }`).
    Block(Block),
    /// `if cond { … } else …` (`else` arm is a Block or another If).
    If {
        /// Condition (for `if let`, the bound expression).
        cond: Box<Expr>,
        /// Then-block.
        then: Block,
        /// Else arm.
        els: Option<Box<Expr>>,
    },
    /// `match scrut { arms }`.
    Match {
        /// Scrutinee.
        scrut: Box<Expr>,
        /// Arms.
        arms: Vec<Arm>,
    },
    /// `while cond { … }` (incl. `while let`).
    While {
        /// Condition.
        cond: Box<Expr>,
        /// Body.
        body: Block,
    },
    /// `loop { … }`.
    Loop(Block),
    /// `for pat in iter { … }`.
    For {
        /// Iterated expression.
        iter: Box<Expr>,
        /// Body.
        body: Block,
    },
    /// `return expr?` / `break expr?` / `continue`.
    Jump(Option<Box<Expr>>),
    /// A prefix-operator application (`&x`, `*x`, `-x`, `!x`).
    Unary(Box<Expr>),
    /// An operator chain `a + b * c` / `a = b` / `a..b`, operands only —
    /// the rules never need precedence.
    Chain(Vec<Expr>),
    /// Struct literal `Path { fields }`; `fields` are the value exprs.
    StructLit {
        /// Type path (last segment).
        path: String,
        /// Field value expressions (incl. `..base`).
        fields: Vec<Expr>,
    },
    /// Tuple `(a, b)` or parenthesized `(a)`.
    Tuple(Vec<Expr>),
    /// Array `[a, b]` or `[elem; len]`.
    Array(Vec<Expr>),
    /// Something the parser skipped over (never an error: logged extent).
    Opaque,
}

/// One match arm.
#[derive(Debug)]
pub struct Arm {
    /// `if` guard expression, if present.
    pub guard: Option<Expr>,
    /// Arm body.
    pub body: Expr,
}

/// Calls `f` on `expr` and every sub-expression, pre-order.
pub fn walk_expr<'a>(expr: &'a Expr, f: &mut dyn FnMut(&'a Expr)) {
    f(expr);
    match &expr.kind {
        ExprKind::Call { args, .. } | ExprKind::Macro { args, .. } => {
            for a in args {
                walk_expr(a, f);
            }
        }
        ExprKind::MethodCall { recv, args, .. } => {
            walk_expr(recv, f);
            for a in args {
                walk_expr(a, f);
            }
        }
        ExprKind::Field { base, .. } => walk_expr(base, f),
        ExprKind::Index { base, index } => {
            walk_expr(base, f);
            walk_expr(index, f);
        }
        ExprKind::Try(inner) | ExprKind::Closure(inner) | ExprKind::Unary(inner) => {
            walk_expr(inner, f);
        }
        ExprKind::Block(b) | ExprKind::Loop(b) => walk_block(b, f),
        ExprKind::If { cond, then, els } => {
            walk_expr(cond, f);
            walk_block(then, f);
            if let Some(e) = els {
                walk_expr(e, f);
            }
        }
        ExprKind::Match { scrut, arms } => {
            walk_expr(scrut, f);
            for arm in arms {
                if let Some(g) = &arm.guard {
                    walk_expr(g, f);
                }
                walk_expr(&arm.body, f);
            }
        }
        ExprKind::While { cond, body } => {
            walk_expr(cond, f);
            walk_block(body, f);
        }
        ExprKind::For { iter, body } => {
            walk_expr(iter, f);
            walk_block(body, f);
        }
        ExprKind::Jump(inner) => {
            if let Some(e) = inner {
                walk_expr(e, f);
            }
        }
        ExprKind::Chain(parts) | ExprKind::Tuple(parts) | ExprKind::Array(parts) => {
            for p in parts {
                walk_expr(p, f);
            }
        }
        ExprKind::StructLit { fields, .. } => {
            for fl in fields {
                walk_expr(fl, f);
            }
        }
        ExprKind::Path(_) | ExprKind::Lit(_) | ExprKind::Opaque => {}
    }
}

/// Calls `f` on every expression in the block, pre-order.
pub fn walk_block<'a>(block: &'a Block, f: &mut dyn FnMut(&'a Expr)) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Let { init, els, .. } => {
                if let Some(e) = init {
                    walk_expr(e, f);
                }
                if let Some(b) = els {
                    walk_block(b, f);
                }
            }
            Stmt::Expr { expr, .. } => walk_expr(expr, f),
            Stmt::Item(item) => walk_item(item, f),
        }
    }
}

/// Calls `f` on every expression under the item, pre-order.
pub fn walk_item<'a>(item: &'a Item, f: &mut dyn FnMut(&'a Expr)) {
    match item {
        Item::Fn(fd) => {
            if let Some(b) = &fd.body {
                walk_block(b, f);
            }
        }
        Item::Mod { items, .. } => {
            for it in items {
                walk_item(it, f);
            }
        }
        Item::Impl { fns, .. } | Item::Trait { fns, .. } => {
            for fd in fns {
                if let Some(b) = &fd.body {
                    walk_block(b, f);
                }
            }
        }
        Item::Other { .. } => {}
    }
}

/// Every function in the file, with its `impl`/`trait` self-type (if any)
/// and its module path, depth-first.
pub fn collect_fns(file: &File) -> Vec<(&FnDef, Option<&str>)> {
    let mut out = Vec::new();
    fn go<'a>(items: &'a [Item], out: &mut Vec<(&'a FnDef, Option<&'a str>)>) {
        for item in items {
            match item {
                Item::Fn(fd) => collect_nested(fd, None, out),
                Item::Mod { items, .. } => go(items, out),
                Item::Impl { self_ty, fns, .. } => {
                    for fd in fns {
                        collect_nested(fd, Some(self_ty.as_str()), out);
                    }
                }
                Item::Trait { name, fns, .. } => {
                    for fd in fns {
                        collect_nested(fd, Some(name.as_str()), out);
                    }
                }
                Item::Other { .. } => {}
            }
        }
    }
    fn collect_nested<'a>(
        fd: &'a FnDef,
        self_ty: Option<&'a str>,
        out: &mut Vec<(&'a FnDef, Option<&'a str>)>,
    ) {
        out.push((fd, self_ty));
        // fn-in-fn: nested definitions are callable units of their own.
        if let Some(body) = &fd.body {
            for stmt in &body.stmts {
                if let Stmt::Item(item) = stmt {
                    go(std::slice::from_ref(item), out);
                }
            }
        }
        fn go<'a>(items: &'a [Item], out: &mut Vec<(&'a FnDef, Option<&'a str>)>) {
            for item in items {
                match item {
                    Item::Fn(fd) => collect_nested(fd, None, out),
                    Item::Mod { items, .. } => go(items, out),
                    Item::Impl { self_ty, fns, .. } => {
                        for fd in fns {
                            collect_nested(fd, Some(self_ty.as_str()), out);
                        }
                    }
                    Item::Trait { name, fns, .. } => {
                        for fd in fns {
                            collect_nested(fd, Some(name.as_str()), out);
                        }
                    }
                    Item::Other { .. } => {}
                }
            }
        }
    }
    go(&file.items, &mut out);
    out
}

/// Renders an expression back to a compact receiver label (`pool.spawned`,
/// `self.inner`); used by the lock rules to name what a guard protects.
pub fn receiver_label(expr: &Expr) -> String {
    match &expr.kind {
        ExprKind::Path(p) => p.clone(),
        ExprKind::Field { base, name } => format!("{}.{}", receiver_label(base), name),
        ExprKind::MethodCall { recv, name, .. } => {
            format!("{}.{}()", receiver_label(recv), name)
        }
        ExprKind::Call { path, .. } => format!("{}()", path.join("::")),
        ExprKind::Index { base, .. } => format!("{}[]", receiver_label(base)),
        ExprKind::Unary(inner) | ExprKind::Try(inner) => receiver_label(inner),
        ExprKind::Tuple(parts) if parts.len() == 1 => receiver_label(&parts[0]),
        _ => "<expr>".to_string(),
    }
}

/// Parses a whole lexed file. Never fails.
pub fn parse_file(tokens: &[Token]) -> File {
    if tokens.is_empty() {
        return File::default();
    }
    let mut p = Parser { toks: tokens, pos: 0 };
    File { items: p.items_until(None) }
}

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    // ---- token cursor -------------------------------------------------

    /// The next non-comment token at or after the cursor, `ahead` steps on.
    fn peek(&self, ahead: usize) -> Option<&'a Token> {
        let mut n = 0;
        for t in &self.toks[self.pos..] {
            if t.is_comment() {
                continue;
            }
            if n == ahead {
                return Some(t);
            }
            n += 1;
        }
        None
    }

    fn peek_text(&self, ahead: usize) -> &str {
        self.peek(ahead).map_or("", |t| t.text.as_str())
    }

    fn peek_punct(&self, ahead: usize) -> Option<char> {
        match self.peek(ahead)?.kind {
            TokenKind::Punct(c) => Some(c),
            _ => None,
        }
    }

    /// Advances past comments to the next code token and returns its index,
    /// bumping the cursor one past it.
    fn bump(&mut self) -> Option<usize> {
        while self.pos < self.toks.len() && self.toks[self.pos].is_comment() {
            self.pos += 1;
        }
        if self.pos >= self.toks.len() {
            return None;
        }
        self.pos += 1;
        Some(self.pos - 1)
    }

    /// Consumes the next token if it is the punct `c`.
    fn eat_punct(&mut self, c: char) -> bool {
        if self.peek_punct(0) == Some(c) {
            self.bump();
            true
        } else {
            false
        }
    }

    /// Consumes the next token if it is the identifier `kw`.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek(0).is_some_and(|t| t.kind == TokenKind::Ident && t.text == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn at_eof(&self) -> bool {
        self.peek(0).is_none()
    }

    fn span_from(&self, start_tok: usize) -> Span {
        Span::at(self.toks, start_tok, self.pos.max(start_tok + 1))
    }

    /// Skips a balanced delimiter group; the cursor sits ON the opener.
    fn skip_group(&mut self) {
        let Some(open) = self.peek_punct(0) else {
            self.bump();
            return;
        };
        let close = match open {
            '(' => ')',
            '[' => ']',
            '{' => '}',
            _ => {
                self.bump();
                return;
            }
        };
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match self.peek_punct(0) {
                None if self.at_eof() => return,
                Some(c) if c == open => {
                    depth += 1;
                }
                Some(c) if c == close => {
                    depth -= 1;
                }
                _ => {}
            }
            self.bump();
        }
    }

    /// Skips balanced `<…>` generics; the cursor sits ON the `<`. `->`
    /// inside (`Fn(a) -> b`) must not close the group, so a `>` right
    /// after `-` is ignored; nested parens are skipped wholesale.
    fn skip_generics(&mut self) {
        self.bump(); // <
        let mut depth = 1usize;
        let mut prev_dash = false;
        while depth > 0 && !self.at_eof() {
            match self.peek_punct(0) {
                Some('<') => {
                    depth += 1;
                    self.bump();
                    prev_dash = false;
                }
                Some('>') => {
                    if prev_dash {
                        self.bump();
                    } else {
                        depth -= 1;
                        self.bump();
                    }
                    prev_dash = false;
                }
                Some('(') | Some('[') => {
                    self.skip_group();
                    prev_dash = false;
                }
                Some('-') => {
                    self.bump();
                    prev_dash = true;
                }
                _ => {
                    self.bump();
                    prev_dash = false;
                }
            }
        }
    }

    /// Skips one attribute (`#[…]` / `#![…]`); cursor sits ON the `#`.
    fn skip_attr(&mut self) {
        self.bump(); // #
        self.eat_punct('!');
        if self.peek_punct(0) == Some('[') {
            self.skip_group();
        }
    }

    fn skip_attrs(&mut self) {
        while self.peek_punct(0) == Some('#')
            && (self.peek_punct(1) == Some('[')
                || (self.peek_punct(1) == Some('!') && self.peek_punct(2) == Some('[')))
        {
            self.skip_attr();
        }
    }

    // ---- items --------------------------------------------------------

    /// Parses items until EOF (`stop_brace = None`) or a closing `}`.
    fn items_until(&mut self, stop_brace: Option<()>) -> Vec<Item> {
        let mut items = Vec::new();
        loop {
            if self.at_eof() {
                break;
            }
            if stop_brace.is_some() && self.peek_punct(0) == Some('}') {
                break;
            }
            let before = self.pos;
            if let Some(item) = self.parse_item() {
                items.push(item);
            }
            if self.pos == before {
                // No progress: drop one token so the loop always ends.
                self.bump();
            }
        }
        items
    }

    /// Parses one item, or skips leniently to a boundary.
    fn parse_item(&mut self) -> Option<Item> {
        self.skip_attrs();
        let start = self.pos;
        // Visibility and qualifier run: pub(crate) / const / async / unsafe
        // / extern "C".
        loop {
            if self.eat_kw("pub") {
                if self.peek_punct(0) == Some('(') {
                    self.skip_group();
                }
                continue;
            }
            // `const fn` / `unsafe fn` / `async fn` / `extern "C" fn` are
            // fn qualifiers; `const X: T` / `unsafe impl` fall through to
            // their item kind below.
            if self.peek_text(0) == "const" && self.peek_text(1) == "fn" {
                self.bump();
                continue;
            }
            if self.peek_text(0) == "unsafe"
                && matches!(self.peek_text(1), "fn" | "impl" | "trait" | "extern")
            {
                self.bump();
                continue;
            }
            if self.peek_text(0) == "async" {
                self.bump();
                continue;
            }
            if self.peek_text(0) == "extern"
                && self
                    .peek(1)
                    .is_some_and(|t| matches!(t.kind, TokenKind::StrLit | TokenKind::RawStrLit))
                && self.peek_text(2) == "fn"
            {
                self.bump();
                self.bump();
                continue;
            }
            break;
        }
        match self.peek_text(0) {
            "fn" => self.parse_fn().map(Item::Fn),
            "mod" => self.parse_mod(start),
            "impl" => self.parse_impl(start),
            "trait" => self.parse_trait(start),
            _ => {
                self.skip_opaque_item();
                Some(Item::Other { span: self.span_from(start) })
            }
        }
    }

    /// Skips a non-fn item: to a `;` or through the first brace group at
    /// depth 0 (whichever comes first).
    fn skip_opaque_item(&mut self) {
        while !self.at_eof() {
            match self.peek_punct(0) {
                Some(';') => {
                    self.bump();
                    return;
                }
                Some('{') => {
                    self.skip_group();
                    return;
                }
                Some('}') => return, // dangling: let the caller see it
                Some('(') | Some('[') => self.skip_group(),
                Some('<') => self.skip_generics(),
                _ => {
                    self.bump();
                }
            }
        }
    }

    fn parse_mod(&mut self, start: usize) -> Option<Item> {
        self.bump(); // mod
        let name = self.peek_text(0).to_string();
        self.bump();
        if self.eat_punct(';') {
            return Some(Item::Other { span: self.span_from(start) });
        }
        if !self.eat_punct('{') {
            self.skip_opaque_item();
            return Some(Item::Other { span: self.span_from(start) });
        }
        let items = self.items_until(Some(()));
        self.eat_punct('}');
        Some(Item::Mod { name, items, span: self.span_from(start) })
    }

    fn parse_impl(&mut self, start: usize) -> Option<Item> {
        self.bump(); // impl
        if self.peek_punct(0) == Some('<') {
            self.skip_generics();
        }
        // Path A [for Path B]; self type is B if `for` present, else A.
        let first = self.parse_type_path();
        let second = if self.eat_kw("for") { Some(self.parse_type_path()) } else { None };
        let (trait_name, self_ty) = match second {
            Some(b) => (Some(first), b),
            None => (None, first),
        };
        // where clause
        while !self.at_eof() && self.peek_punct(0) != Some('{') {
            if self.peek_punct(0) == Some('<') {
                self.skip_generics();
            } else if matches!(self.peek_punct(0), Some('(')) {
                self.skip_group();
            } else if self.peek_punct(0) == Some(';') {
                self.bump();
                return Some(Item::Other { span: self.span_from(start) });
            } else {
                self.bump();
            }
        }
        if !self.eat_punct('{') {
            return Some(Item::Other { span: self.span_from(start) });
        }
        let mut fns = Vec::new();
        while !self.at_eof() && self.peek_punct(0) != Some('}') {
            let before = self.pos;
            self.skip_attrs();
            // Qualifier run before fn.
            let mut save = self.pos;
            loop {
                if self.eat_kw("pub") {
                    if self.peek_punct(0) == Some('(') {
                        self.skip_group();
                    }
                    save = self.pos;
                    continue;
                }
                if matches!(self.peek_text(0), "const" | "unsafe" | "async" | "extern")
                    && self.peek_text(1) != ":"
                {
                    // Distinguish `const fn` from `const NAME: T`.
                    if self.peek_text(0) == "const"
                        && self.peek(1).is_some_and(|t| t.kind == TokenKind::Ident)
                        && self.peek_text(1) != "fn"
                    {
                        break;
                    }
                    if self.peek_text(0) == "extern"
                        && self.peek(1).is_some_and(|t| {
                            matches!(t.kind, TokenKind::StrLit | TokenKind::RawStrLit)
                        })
                    {
                        self.bump();
                    }
                    self.bump();
                    save = self.pos;
                    continue;
                }
                break;
            }
            let _ = save;
            if self.peek_text(0) == "fn" {
                if let Some(fd) = self.parse_fn() {
                    fns.push(fd);
                }
            } else {
                self.skip_opaque_item();
            }
            if self.pos == before {
                self.bump();
            }
        }
        self.eat_punct('}');
        Some(Item::Impl { self_ty, trait_name, fns, span: self.span_from(start) })
    }

    fn parse_trait(&mut self, start: usize) -> Option<Item> {
        self.bump(); // trait
        let name = self.peek_text(0).to_string();
        self.bump();
        while !self.at_eof() && !matches!(self.peek_punct(0), Some('{') | Some(';')) {
            if self.peek_punct(0) == Some('<') {
                self.skip_generics();
            } else if self.peek_punct(0) == Some('(') {
                self.skip_group();
            } else {
                self.bump();
            }
        }
        if self.eat_punct(';') || !self.eat_punct('{') {
            return Some(Item::Other { span: self.span_from(start) });
        }
        let mut fns = Vec::new();
        while !self.at_eof() && self.peek_punct(0) != Some('}') {
            let before = self.pos;
            self.skip_attrs();
            while matches!(self.peek_text(0), "const" | "unsafe" | "async")
                && self.peek_text(1) == "fn"
            {
                self.bump();
            }
            if self.peek_text(0) == "fn" {
                if let Some(fd) = self.parse_fn() {
                    fns.push(fd);
                }
            } else {
                self.skip_opaque_item();
            }
            if self.pos == before {
                self.bump();
            }
        }
        self.eat_punct('}');
        Some(Item::Trait { name, fns, span: self.span_from(start) })
    }

    /// Last segment of a type path, skipping generics (`Trainer` for
    /// `crate::trainer::Trainer<M>`), stopping before `for`/`where`/`{`.
    fn parse_type_path(&mut self) -> String {
        let mut last = String::new();
        loop {
            match self.peek(0) {
                Some(t) if t.kind == TokenKind::Ident => {
                    if t.text == "for" || t.text == "where" {
                        break;
                    }
                    last = t.text.clone();
                    self.bump();
                }
                Some(t) if t.kind == TokenKind::Punct('<') => {
                    self.skip_generics();
                }
                Some(t)
                    if matches!(
                        t.kind,
                        TokenKind::Punct(':') | TokenKind::Punct('&') | TokenKind::Punct('*')
                    ) =>
                {
                    self.bump();
                }
                Some(t) if t.kind == TokenKind::Lifetime => {
                    self.bump();
                }
                Some(t) if t.kind == TokenKind::Punct('(') => {
                    // Tuple type impl — rare; skip and keep whatever we had.
                    self.skip_group();
                    break;
                }
                _ => break,
            }
        }
        last
    }

    fn parse_fn(&mut self) -> Option<FnDef> {
        let start = self.pos;
        if !self.eat_kw("fn") {
            return None;
        }
        let name_tok = {
            while self.pos < self.toks.len() && self.toks[self.pos].is_comment() {
                self.pos += 1;
            }
            self.pos
        };
        let name = self.peek_text(0).to_string();
        self.bump();
        if self.peek_punct(0) == Some('<') {
            self.skip_generics();
        }
        // Parameters: record whether a `self` receiver leads.
        let mut has_self = false;
        if self.peek_punct(0) == Some('(') {
            let params_start = self.pos;
            self.skip_group();
            for t in &self.toks[params_start..self.pos] {
                if t.is_comment() {
                    continue;
                }
                match t.kind {
                    TokenKind::Punct('(') | TokenKind::Punct('&') => continue,
                    TokenKind::Lifetime => continue,
                    TokenKind::Ident if t.text == "mut" => continue,
                    TokenKind::Ident => {
                        has_self = t.text == "self";
                        break;
                    }
                    _ => break,
                }
            }
        }
        // Return type: `-> …` until `{`, `;`, or `where` at depth 0.
        let mut ret = None;
        if self.peek_punct(0) == Some('-') && self.peek_punct(1) == Some('>') {
            self.bump();
            self.bump();
            let mut parts: Vec<String> = Vec::new();
            loop {
                match self.peek(0) {
                    None => break,
                    Some(t)
                        if t.kind == TokenKind::Punct('{') || t.kind == TokenKind::Punct(';') =>
                    {
                        break
                    }
                    Some(t) if t.kind == TokenKind::Ident && t.text == "where" => break,
                    Some(t) if t.kind == TokenKind::Punct('<') => {
                        let from = self.pos;
                        self.skip_generics();
                        for tk in &self.toks[from..self.pos] {
                            if !tk.is_comment() {
                                parts.push(tk.text.clone());
                            }
                        }
                    }
                    Some(t) if t.kind == TokenKind::Punct('(') => {
                        let from = self.pos;
                        self.skip_group();
                        for tk in &self.toks[from..self.pos] {
                            if !tk.is_comment() {
                                parts.push(tk.text.clone());
                            }
                        }
                    }
                    Some(t) => {
                        parts.push(t.text.clone());
                        self.bump();
                    }
                }
            }
            if !parts.is_empty() {
                ret = Some(parts.join(" "));
            }
        }
        // where clause
        if self.peek_text(0) == "where" {
            while !self.at_eof() && !matches!(self.peek_punct(0), Some('{') | Some(';')) {
                if self.peek_punct(0) == Some('<') {
                    self.skip_generics();
                } else if self.peek_punct(0) == Some('(') {
                    self.skip_group();
                } else {
                    self.bump();
                }
            }
        }
        let body = if self.peek_punct(0) == Some('{') {
            Some(self.parse_block())
        } else {
            self.eat_punct(';');
            None
        };
        Some(FnDef { name, name_tok, has_self, ret, body, span: self.span_from(start) })
    }

    // ---- statements ---------------------------------------------------

    /// Parses a `{ … }` block; the cursor sits ON the `{`.
    fn parse_block(&mut self) -> Block {
        let start = self.pos;
        self.eat_punct('{');
        let mut stmts = Vec::new();
        loop {
            if self.at_eof() || self.peek_punct(0) == Some('}') {
                break;
            }
            let before = self.pos;
            self.skip_attrs();
            if self.eat_punct(';') {
                continue;
            }
            if self.peek_text(0) == "let" {
                stmts.push(self.parse_let());
            } else if self.starts_item() {
                if let Some(item) = self.parse_item() {
                    stmts.push(Stmt::Item(item));
                }
            } else {
                let expr = self.parse_expr(false);
                let semi = self.eat_punct(';');
                stmts.push(Stmt::Expr { expr, semi });
            }
            if self.pos == before {
                self.bump();
            }
        }
        self.eat_punct('}');
        Block { stmts, span: self.span_from(start) }
    }

    /// Whether an item (not an expression) starts at the cursor. `unsafe`
    /// and `const` are shared prefixes: `unsafe { … }` is an expression,
    /// `unsafe fn` an item; `const X: T` an item.
    fn starts_item(&self) -> bool {
        let head = self.peek_text(0);
        match head {
            "fn" | "mod" | "impl" | "trait" | "struct" | "enum" | "union" | "use" | "static"
            | "type" | "macro_rules" | "pub" => {
                // `struct`/`enum` never open expressions; `type` only as
                // item. `macro_rules! name {}` is an item.
                head != "macro_rules" || self.peek_punct(1) == Some('!')
            }
            "unsafe" => matches!(self.peek_text(1), "fn" | "impl" | "trait" | "extern"),
            "const" => {
                self.peek_text(1) != "{" && {
                    // `const fn` or `const NAME : T` — both items.
                    self.peek_text(1) == "fn"
                        || (self.peek(1).is_some_and(|t| t.kind == TokenKind::Ident)
                            && self.peek_punct(2) == Some(':'))
                }
            }
            "extern" => true,
            "async" => self.peek_text(1) == "fn",
            _ => false,
        }
    }

    fn parse_let(&mut self) -> Stmt {
        let start = self.pos;
        self.bump(); // let
                     // Pattern: tokens up to `:`, `=`, or `;` at depth 0.
        let mut pat_parts: Vec<String> = Vec::new();
        loop {
            match self.peek(0) {
                None => break,
                Some(t) if t.kind == TokenKind::Punct(':') && self.peek_punct(1) != Some(':') => {
                    break;
                }
                Some(t) if t.kind == TokenKind::Punct('=') && self.peek_punct(1) != Some('=') => {
                    break;
                }
                Some(t) if t.kind == TokenKind::Punct(';') => break,
                Some(t) if matches!(t.kind, TokenKind::Punct('(') | TokenKind::Punct('[')) => {
                    let from = self.pos;
                    self.skip_group();
                    for tk in &self.toks[from..self.pos] {
                        if !tk.is_comment() {
                            pat_parts.push(tk.text.clone());
                        }
                    }
                }
                Some(t) if t.kind == TokenKind::Punct('{') => break, // malformed
                Some(t) => {
                    pat_parts.push(t.text.clone());
                    self.bump();
                    // Paths in patterns: `Some`, `Ordering::Less` — the
                    // `::` run is consumed via the loop.
                }
            }
        }
        // Type annotation.
        let mut ty_head = None;
        if self.peek_punct(0) == Some(':') {
            self.bump();
            let mut first_ident: Option<String> = None;
            let mut last_ident: Option<String> = None;
            loop {
                match self.peek(0) {
                    None => break,
                    Some(t)
                        if t.kind == TokenKind::Punct('=') && self.peek_punct(1) != Some('=') =>
                    {
                        break
                    }
                    Some(t) if t.kind == TokenKind::Punct(';') => break,
                    Some(t) if t.kind == TokenKind::Punct('<') => {
                        // Generic args end the head path.
                        if first_ident.is_none() {
                            first_ident = last_ident.clone();
                        }
                        self.skip_generics();
                        break;
                    }
                    Some(t) if t.kind == TokenKind::Punct('(') => {
                        self.skip_group();
                    }
                    Some(t) if t.kind == TokenKind::Ident => {
                        last_ident = Some(t.text.clone());
                        self.bump();
                    }
                    _ => {
                        self.bump();
                    }
                }
            }
            ty_head = first_ident.or(last_ident);
        }
        // Initializer.
        let mut init = None;
        if self.eat_punct('=') {
            init = Some(self.parse_expr(false));
        }
        // let-else.
        let mut els = None;
        if self.peek_text(0) == "else" {
            self.bump();
            if self.peek_punct(0) == Some('{') {
                els = Some(self.parse_block());
            }
        }
        self.eat_punct(';');
        Stmt::Let { pat: pat_parts.join(" "), ty_head, init, els, span: self.span_from(start) }
    }

    // ---- expressions --------------------------------------------------

    /// Parses an expression up to a statement/argument boundary (`;`, `,`,
    /// or an unmatched closer). With `no_struct`, a `{` after an operand
    /// terminates the expression instead of opening a struct literal —
    /// the `if cond {` / `match scrut {` position.
    fn parse_expr(&mut self, no_struct: bool) -> Expr {
        let start = self.pos;
        let mut parts = Vec::new();
        let first = self.parse_operand(no_struct);
        parts.push(first);
        while let Some(t) = self.peek(0) {
            let c = match t.kind {
                TokenKind::Punct(c) => c,
                TokenKind::Ident if t.text == "as" => {
                    // `expr as Type`: consume the cast, keep parsing ops.
                    self.bump();
                    self.skip_cast_type();
                    continue;
                }
                _ => break,
            };
            match c {
                ';' | ',' | ')' | ']' | '}' => break,
                '=' if self.peek_punct(1) == Some('>') => break, // match arm
                '.' if self.peek_punct(1) == Some('.') => {
                    // Range `a..b` / `a..=b`: operator; RHS optional.
                    self.bump();
                    self.bump();
                    self.eat_punct('=');
                    if self.range_rhs_follows(no_struct) {
                        parts.push(self.parse_operand(no_struct));
                    }
                }
                '+' | '-' | '*' | '/' | '%' | '^' | '!' | '=' => {
                    self.bump();
                    // Compound assignment tail (`+=`) and `==`/`!=`.
                    self.eat_punct('=');
                    parts.push(self.parse_operand(no_struct));
                }
                '&' | '|' => {
                    self.bump();
                    if self.peek_punct(0) == Some(c) {
                        self.bump(); // && / ||
                    }
                    self.eat_punct('=');
                    parts.push(self.parse_operand(no_struct));
                }
                '<' | '>' => {
                    self.bump();
                    if self.peek_punct(0) == Some(c) {
                        self.bump(); // << / >>
                    }
                    self.eat_punct('=');
                    parts.push(self.parse_operand(no_struct));
                }
                _ => break,
            }
        }
        if parts.len() == 1 {
            parts.pop().expect("one part")
        } else {
            let span = self.span_from(start);
            Expr { kind: ExprKind::Chain(parts), span }
        }
    }

    /// After `..`: does an operand follow (vs. `0..` in an index or
    /// `[..5]`-style open starts handled by the operand path)?
    fn range_rhs_follows(&self, no_struct: bool) -> bool {
        match self.peek(0) {
            None => false,
            Some(t) => match t.kind {
                TokenKind::Punct(c) => {
                    !(matches!(c, ';' | ',' | ')' | ']' | '}') || (no_struct && c == '{'))
                }
                TokenKind::Ident if no_struct && t.text == "{" => false,
                _ => true,
            },
        }
    }

    /// Skips a type after `as` (path, generics, references, fn-pointer
    /// parens) without consuming operators that would belong to the
    /// surrounding expression.
    fn skip_cast_type(&mut self) {
        loop {
            match self.peek(0) {
                Some(t) if t.kind == TokenKind::Ident => {
                    // `usize`, `f32`, path segments; `as` chains stop at
                    // non-type keywords handled by the caller naturally.
                    self.bump();
                    if self.peek_punct(0) == Some(':') && self.peek_punct(1) == Some(':') {
                        self.bump();
                        self.bump();
                        continue;
                    }
                    if self.peek_punct(0) == Some('<') {
                        self.skip_generics();
                    }
                    break;
                }
                Some(t)
                    if matches!(
                        t.kind,
                        TokenKind::Punct('&') | TokenKind::Punct('*') | TokenKind::Punct('\'')
                    ) =>
                {
                    self.bump();
                }
                Some(t) if t.kind == TokenKind::Lifetime => {
                    self.bump();
                }
                Some(t) if t.kind == TokenKind::Ident && t.text == "mut" => {
                    self.bump();
                }
                Some(t) if t.kind == TokenKind::Punct('(') => {
                    self.skip_group();
                    break;
                }
                _ => break,
            }
        }
    }

    fn parse_operand(&mut self, no_struct: bool) -> Expr {
        let start = self.pos;
        // Prefix operators.
        let mut prefixed = false;
        loop {
            match self.peek(0) {
                Some(t) if matches!(t.kind, TokenKind::Punct('&') | TokenKind::Punct('*')) => {
                    // `&&` prefix (double reference) also lands here.
                    self.bump();
                    prefixed = true;
                    self.eat_kw("mut");
                }
                Some(t) if t.kind == TokenKind::Punct('-') || t.kind == TokenKind::Punct('!') => {
                    self.bump();
                    prefixed = true;
                }
                _ => break,
            }
        }
        let mut expr = self.parse_primary(no_struct);
        // Postfix chain.
        loop {
            match self.peek_punct(0) {
                Some('.') if self.peek_punct(1) == Some('.') => break, // range
                Some('.') => {
                    self.bump(); // .
                    let Some(name_t) = self.peek(0) else { break };
                    match name_t.kind {
                        TokenKind::Ident => {
                            let name = name_t.text.clone();
                            let name_tok = {
                                while self.toks[self.pos].is_comment() {
                                    self.pos += 1;
                                }
                                self.pos
                            };
                            self.bump();
                            // Turbofish.
                            let mut turbofish = None;
                            if self.peek_punct(0) == Some(':')
                                && self.peek_punct(1) == Some(':')
                                && self.peek_punct(2) == Some('<')
                            {
                                self.bump();
                                self.bump();
                                let from = self.pos;
                                self.skip_generics();
                                let text: Vec<&str> = self.toks[from..self.pos]
                                    .iter()
                                    .filter(|t| !t.is_comment())
                                    .map(|t| t.text.as_str())
                                    .collect();
                                turbofish = Some(text.join(" "));
                            }
                            if self.peek_punct(0) == Some('(') {
                                let args = self.parse_call_args();
                                let span = self.span_from(start);
                                expr = Expr {
                                    kind: ExprKind::MethodCall {
                                        recv: Box::new(expr),
                                        name,
                                        name_tok,
                                        turbofish,
                                        args,
                                    },
                                    span,
                                };
                            } else {
                                let span = self.span_from(start);
                                expr = Expr {
                                    kind: ExprKind::Field { base: Box::new(expr), name },
                                    span,
                                };
                            }
                        }
                        TokenKind::NumLit => {
                            let name = name_t.text.clone();
                            self.bump();
                            let span = self.span_from(start);
                            expr =
                                Expr { kind: ExprKind::Field { base: Box::new(expr), name }, span };
                        }
                        _ => break,
                    }
                }
                Some('?') => {
                    self.bump();
                    let span = self.span_from(start);
                    expr = Expr { kind: ExprKind::Try(Box::new(expr)), span };
                }
                Some('[') => {
                    self.bump();
                    let index = self.parse_expr(false);
                    self.eat_punct(']');
                    let span = self.span_from(start);
                    expr = Expr {
                        kind: ExprKind::Index { base: Box::new(expr), index: Box::new(index) },
                        span,
                    };
                }
                Some('(') if matches!(expr.kind, ExprKind::Closure(_)) => break,
                Some('(') if matches!(expr.kind, ExprKind::Tuple(_) | ExprKind::Block(_)) => {
                    // `(f)(x)` / `{…}(x)` — call of an expression; keep the
                    // args as children without a resolvable name.
                    let args = self.parse_call_args();
                    let span = self.span_from(start);
                    let mut parts = vec![expr];
                    parts.extend(args);
                    expr = Expr { kind: ExprKind::Chain(parts), span };
                }
                _ => break,
            }
        }
        if prefixed {
            let span = self.span_from(start);
            return Expr { kind: ExprKind::Unary(Box::new(expr)), span };
        }
        expr
    }

    /// Parses `( a, b, … )`; the cursor sits ON the `(`.
    fn parse_call_args(&mut self) -> Vec<Expr> {
        self.eat_punct('(');
        let mut args = Vec::new();
        loop {
            if self.at_eof() || self.peek_punct(0) == Some(')') {
                break;
            }
            let before = self.pos;
            args.push(self.parse_expr(false));
            if !self.eat_punct(',') && self.peek_punct(0) != Some(')') && self.pos == before {
                self.bump();
            }
            let _ = self.eat_punct(',');
        }
        self.eat_punct(')');
        args
    }

    fn parse_primary(&mut self, no_struct: bool) -> Expr {
        let start = self.pos;
        let Some(t) = self.peek(0) else {
            return Expr { kind: ExprKind::Opaque, span: self.span_from(start.saturating_sub(1)) };
        };
        match t.kind {
            TokenKind::NumLit | TokenKind::StrLit | TokenKind::RawStrLit | TokenKind::CharLit => {
                let text = t.text.clone();
                self.bump();
                Expr { kind: ExprKind::Lit(text), span: self.span_from(start) }
            }
            TokenKind::Lifetime => {
                // Loop label `'outer: loop { … }`.
                self.bump();
                self.eat_punct(':');
                self.parse_primary(no_struct)
            }
            TokenKind::Punct('(') => {
                self.bump();
                let mut parts = Vec::new();
                loop {
                    if self.at_eof() || self.peek_punct(0) == Some(')') {
                        break;
                    }
                    let before = self.pos;
                    parts.push(self.parse_expr(false));
                    let _ = self.eat_punct(',');
                    if self.pos == before {
                        self.bump();
                    }
                }
                self.eat_punct(')');
                Expr { kind: ExprKind::Tuple(parts), span: self.span_from(start) }
            }
            TokenKind::Punct('[') => {
                self.bump();
                let mut parts = Vec::new();
                loop {
                    if self.at_eof() || self.peek_punct(0) == Some(']') {
                        break;
                    }
                    let before = self.pos;
                    parts.push(self.parse_expr(false));
                    if !self.eat_punct(',') {
                        let _ = self.eat_punct(';');
                    }
                    if self.pos == before {
                        self.bump();
                    }
                }
                self.eat_punct(']');
                Expr { kind: ExprKind::Array(parts), span: self.span_from(start) }
            }
            TokenKind::Punct('{') => {
                let block = self.parse_block();
                let span = self.span_from(start);
                Expr { kind: ExprKind::Block(block), span }
            }
            TokenKind::Punct('|') => self.parse_closure(start),
            TokenKind::Punct('.') if self.peek_punct(1) == Some('.') => {
                // Open range start `..x` / `..=x` / bare `..`.
                self.bump();
                self.bump();
                self.eat_punct('=');
                if self.range_rhs_follows(no_struct) {
                    let rhs = self.parse_operand(no_struct);
                    let span = self.span_from(start);
                    Expr { kind: ExprKind::Chain(vec![rhs]), span }
                } else {
                    Expr { kind: ExprKind::Opaque, span: self.span_from(start) }
                }
            }
            TokenKind::Ident => self.parse_ident_primary(start, no_struct),
            _ => {
                self.bump();
                Expr { kind: ExprKind::Opaque, span: self.span_from(start) }
            }
        }
    }

    fn parse_closure(&mut self, start: usize) -> Expr {
        // `|…| body` or `||` + body; `move` was consumed by the ident path.
        if self.peek_punct(0) == Some('|') && self.peek_punct(1) == Some('|') {
            self.bump();
            self.bump();
        } else {
            self.bump(); // opening |
            while !self.at_eof() {
                match self.peek_punct(0) {
                    Some('|') => {
                        self.bump();
                        break;
                    }
                    Some('(') | Some('[') | Some('{') => self.skip_group(),
                    Some('<') => self.skip_generics(),
                    _ => {
                        self.bump();
                    }
                }
            }
        }
        // Optional return annotation `-> T` (body must then be a block).
        if self.peek_punct(0) == Some('-') && self.peek_punct(1) == Some('>') {
            self.bump();
            self.bump();
            while !self.at_eof() && self.peek_punct(0) != Some('{') {
                if self.peek_punct(0) == Some('<') {
                    self.skip_generics();
                } else {
                    self.bump();
                }
            }
        }
        let body = self.parse_expr(false);
        let span = self.span_from(start);
        Expr { kind: ExprKind::Closure(Box::new(body)), span }
    }

    fn parse_ident_primary(&mut self, start: usize, no_struct: bool) -> Expr {
        let head = self.peek_text(0).to_string();
        match head.as_str() {
            "if" => {
                self.bump();
                let cond = self.parse_cond();
                let then = if self.peek_punct(0) == Some('{') {
                    self.parse_block()
                } else {
                    Block { stmts: Vec::new(), span: self.span_from(self.pos) }
                };
                let mut els = None;
                if self.peek_text(0) == "else" {
                    self.bump();
                    let e = if self.peek_text(0) == "if" {
                        self.parse_ident_primary(self.pos, no_struct)
                    } else if self.peek_punct(0) == Some('{') {
                        let b = self.parse_block();
                        let span = self.span_from(start);
                        Expr { kind: ExprKind::Block(b), span }
                    } else {
                        Expr { kind: ExprKind::Opaque, span: self.span_from(self.pos) }
                    };
                    els = Some(Box::new(e));
                }
                let span = self.span_from(start);
                Expr { kind: ExprKind::If { cond: Box::new(cond), then, els }, span }
            }
            "while" => {
                self.bump();
                let cond = self.parse_cond();
                let body = if self.peek_punct(0) == Some('{') {
                    self.parse_block()
                } else {
                    Block { stmts: Vec::new(), span: self.span_from(self.pos) }
                };
                let span = self.span_from(start);
                Expr { kind: ExprKind::While { cond: Box::new(cond), body }, span }
            }
            "loop" => {
                self.bump();
                let body = if self.peek_punct(0) == Some('{') {
                    self.parse_block()
                } else {
                    Block { stmts: Vec::new(), span: self.span_from(self.pos) }
                };
                let span = self.span_from(start);
                Expr { kind: ExprKind::Loop(body), span }
            }
            "for" => {
                self.bump();
                // Pattern until `in` at depth 0.
                while !self.at_eof() {
                    if self.peek_text(0) == "in" {
                        self.bump();
                        break;
                    }
                    if matches!(self.peek_punct(0), Some('(') | Some('[')) {
                        self.skip_group();
                    } else {
                        self.bump();
                    }
                }
                let iter = self.parse_expr(true);
                let body = if self.peek_punct(0) == Some('{') {
                    self.parse_block()
                } else {
                    Block { stmts: Vec::new(), span: self.span_from(self.pos) }
                };
                let span = self.span_from(start);
                Expr { kind: ExprKind::For { iter: Box::new(iter), body }, span }
            }
            "match" => {
                self.bump();
                let scrut = self.parse_expr(true);
                let arms = self.parse_match_arms();
                let span = self.span_from(start);
                Expr { kind: ExprKind::Match { scrut: Box::new(scrut), arms }, span }
            }
            "unsafe" => {
                self.bump();
                if self.peek_punct(0) == Some('{') {
                    let b = self.parse_block();
                    let span = self.span_from(start);
                    Expr { kind: ExprKind::Block(b), span }
                } else {
                    Expr { kind: ExprKind::Opaque, span: self.span_from(start) }
                }
            }
            "return" | "break" => {
                self.bump();
                let arg = match self.peek(0) {
                    None => None,
                    Some(t) => match t.kind {
                        TokenKind::Punct(';' | ',' | ')' | ']' | '}') => None,
                        TokenKind::Lifetime => {
                            // `break 'label value?`
                            self.bump();
                            match self.peek_punct(0) {
                                Some(';') | Some('}') | None => None,
                                _ => Some(Box::new(self.parse_expr(no_struct))),
                            }
                        }
                        _ => Some(Box::new(self.parse_expr(no_struct))),
                    },
                };
                let span = self.span_from(start);
                Expr { kind: ExprKind::Jump(arg), span }
            }
            "continue" => {
                self.bump();
                if self.peek(0).is_some_and(|t| t.kind == TokenKind::Lifetime) {
                    self.bump();
                }
                let span = self.span_from(start);
                Expr { kind: ExprKind::Jump(None), span }
            }
            "move" => {
                self.bump();
                if self.peek_punct(0) == Some('|') {
                    self.parse_closure(start)
                } else if self.peek_punct(0) == Some('{') {
                    let b = self.parse_block();
                    let span = self.span_from(start);
                    Expr { kind: ExprKind::Block(b), span }
                } else {
                    Expr { kind: ExprKind::Opaque, span: self.span_from(start) }
                }
            }
            "let" => {
                // `if let`-chain fragment reached as an expression (let-chains
                // inside conditions): skip pattern to `=`, parse the bound
                // expression.
                self.bump();
                while !self.at_eof() {
                    match self.peek_punct(0) {
                        Some('=') if self.peek_punct(1) != Some('=') => {
                            self.bump();
                            break;
                        }
                        Some('(') | Some('[') => self.skip_group(),
                        Some('<') => self.skip_generics(),
                        Some('{') | Some(';') => break,
                        _ => {
                            self.bump();
                        }
                    }
                }
                self.parse_expr(true)
            }
            _ => {
                // Path: segments separated by `::`, optional turbofish.
                let mut segs: Vec<String> = Vec::new();
                let mut name_tok = self.pos;
                loop {
                    match self.peek(0) {
                        Some(t) if t.kind == TokenKind::Ident => {
                            name_tok = {
                                while self.toks[self.pos].is_comment() {
                                    self.pos += 1;
                                }
                                self.pos
                            };
                            segs.push(t.text.clone());
                            self.bump();
                        }
                        _ => break,
                    }
                    if self.peek_punct(0) == Some(':') && self.peek_punct(1) == Some(':') {
                        self.bump();
                        self.bump();
                        if self.peek_punct(0) == Some('<') {
                            self.skip_generics();
                            // `Foo::<T>::bar` — continue if another `::`.
                            if self.peek_punct(0) == Some(':') && self.peek_punct(1) == Some(':') {
                                self.bump();
                                self.bump();
                                continue;
                            }
                            break;
                        }
                        continue;
                    }
                    break;
                }
                if segs.is_empty() {
                    self.bump();
                    return Expr { kind: ExprKind::Opaque, span: self.span_from(start) };
                }
                // Macro?
                if self.peek_punct(0) == Some('!')
                    && matches!(self.peek_punct(1), Some('(') | Some('[') | Some('{'))
                {
                    self.bump(); // !
                    let args = self.parse_macro_args();
                    let span = self.span_from(start);
                    return Expr {
                        kind: ExprKind::Macro {
                            name: segs.last().cloned().unwrap_or_default(),
                            name_tok,
                            args,
                        },
                        span,
                    };
                }
                // Call?
                if self.peek_punct(0) == Some('(') {
                    let args = self.parse_call_args();
                    let span = self.span_from(start);
                    return Expr { kind: ExprKind::Call { path: segs, name_tok, args }, span };
                }
                // Struct literal?
                if !no_struct && self.peek_punct(0) == Some('{') && self.looks_like_struct_lit() {
                    self.bump(); // {
                    let mut fields = Vec::new();
                    loop {
                        if self.at_eof() || self.peek_punct(0) == Some('}') {
                            break;
                        }
                        let before = self.pos;
                        // `name: expr` | `name` | `..base`
                        if self.peek_punct(0) == Some('.') && self.peek_punct(1) == Some('.') {
                            self.bump();
                            self.bump();
                            fields.push(self.parse_expr(false));
                        } else if self.peek(0).is_some_and(|t| t.kind == TokenKind::Ident) {
                            let shorthand_name = self.peek_text(0).to_string();
                            let shorthand_tok = self.pos;
                            self.bump();
                            if self.eat_punct(':') {
                                fields.push(self.parse_expr(false));
                            } else {
                                let span = Span::at(self.toks, shorthand_tok, self.pos);
                                fields.push(Expr { kind: ExprKind::Path(shorthand_name), span });
                            }
                        }
                        let _ = self.eat_punct(',');
                        if self.pos == before {
                            self.bump();
                        }
                    }
                    self.eat_punct('}');
                    let span = self.span_from(start);
                    return Expr {
                        kind: ExprKind::StructLit {
                            path: segs.last().cloned().unwrap_or_default(),
                            fields,
                        },
                        span,
                    };
                }
                let span = self.span_from(start);
                Expr { kind: ExprKind::Path(segs.join("::")), span }
            }
        }
    }

    /// After a path, a `{` opens a struct literal when its first tokens
    /// look like field syntax (`ident:` / `ident,` / `ident }` / `..`).
    fn looks_like_struct_lit(&self) -> bool {
        debug_assert_eq!(self.peek_punct(0), Some('{'));
        match self.peek(1) {
            None => false,
            Some(t) => match t.kind {
                TokenKind::Ident => {
                    matches!(self.peek_punct(2), Some(':') | Some(',') | Some('}'))
                    // `Foo { name: x }` with `name` being a keyword-ish
                    // ident still matches the shapes above.
                    && self.peek_punct(3) != Some(':')
                } // rule out `{ x :: y }` path exprs
                TokenKind::Punct('.') => self.peek_punct(2) == Some('.'),
                TokenKind::Punct('}') => true, // `Foo {}`
                _ => false,
            },
        }
    }

    /// Condition position: struct literals disabled, `if let`/`while let`
    /// pattern skipped to its `=`.
    fn parse_cond(&mut self) -> Expr {
        if self.peek_text(0) == "let" {
            self.bump();
            while !self.at_eof() {
                match self.peek_punct(0) {
                    Some('=') if self.peek_punct(1) != Some('=') => {
                        self.bump();
                        break;
                    }
                    Some('(') | Some('[') => self.skip_group(),
                    Some('{') => break, // malformed; bail before the body
                    _ => {
                        self.bump();
                    }
                }
            }
        }
        self.parse_expr(true)
    }

    fn parse_match_arms(&mut self) -> Vec<Arm> {
        let mut arms = Vec::new();
        if !self.eat_punct('{') {
            return arms;
        }
        loop {
            if self.at_eof() || self.peek_punct(0) == Some('}') {
                break;
            }
            let before = self.pos;
            self.skip_attrs();
            // Pattern: skip to `=>` or an `if` guard at depth 0.
            let mut guard = None;
            loop {
                match self.peek(0) {
                    None => break,
                    Some(t)
                        if t.kind == TokenKind::Punct('=') && self.peek_punct(1) == Some('>') =>
                    {
                        self.bump();
                        self.bump();
                        break;
                    }
                    Some(t) if t.kind == TokenKind::Ident && t.text == "if" => {
                        self.bump();
                        guard = Some(self.parse_guard());
                        // parse_guard stops before `=>`.
                        if self.peek_punct(0) == Some('=') && self.peek_punct(1) == Some('>') {
                            self.bump();
                            self.bump();
                        }
                        break;
                    }
                    Some(t)
                        if matches!(
                            t.kind,
                            TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{')
                        ) =>
                    {
                        self.skip_group();
                    }
                    Some(t) if t.kind == TokenKind::Punct('}') => break,
                    _ => {
                        self.bump();
                    }
                }
            }
            let body = self.parse_expr(false);
            let _ = self.eat_punct(',');
            arms.push(Arm { guard, body });
            if self.pos == before {
                self.bump();
            }
        }
        self.eat_punct('}');
        arms
    }

    /// A match-arm guard: an expression that must stop before `=>`.
    fn parse_guard(&mut self) -> Expr {
        // parse_expr already stops at `=>`.
        self.parse_expr(true)
    }

    /// Macro arguments: the delimiter group parsed leniently as a list of
    /// expressions split on `,`/`;` — enough structure to see `unwrap()`
    /// inside `panic!(…)` arguments or exprs inside `vec![…]`.
    fn parse_macro_args(&mut self) -> Vec<Expr> {
        let Some(open) = self.peek_punct(0) else { return Vec::new() };
        let close = match open {
            '(' => ')',
            '[' => ']',
            '{' => '}',
            _ => return Vec::new(),
        };
        self.bump();
        let mut args = Vec::new();
        loop {
            if self.at_eof() {
                break;
            }
            if self.peek_punct(0) == Some(close) {
                self.bump();
                break;
            }
            let before = self.pos;
            args.push(self.parse_expr(false));
            if !self.eat_punct(',') {
                let _ = self.eat_punct(';');
            }
            if self.pos == before {
                // Token the expression grammar cannot start (e.g. pattern
                // fragments in matches!): skip it.
                self.bump();
            }
        }
        args
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> File {
        parse_file(&lex(src))
    }

    fn first_fn(file: &File) -> &FnDef {
        match &file.items[0] {
            Item::Fn(fd) => fd,
            other => panic!("expected fn, got {other:?}"),
        }
    }

    /// All method-call names in a source string, in walk order.
    fn method_names(src: &str) -> Vec<String> {
        let file = parse(src);
        let mut out = Vec::new();
        for item in &file.items {
            walk_item(item, &mut |e| {
                if let ExprKind::MethodCall { name, .. } = &e.kind {
                    out.push(name.clone());
                }
            });
        }
        out
    }

    #[test]
    fn fn_signature_and_return_type() {
        let file = parse("pub fn load(path: &Path) -> DistResult<DistCheckpoint> { body() }");
        let fd = first_fn(&file);
        assert_eq!(fd.name, "load");
        assert_eq!(fd.ret_head(), Some("DistResult"));
        assert!(fd.body.is_some());
    }

    #[test]
    fn qualified_return_type_head_is_last_segment() {
        let file = parse("fn f() -> std::io::Result<()> { x() }");
        assert_eq!(first_fn(&file).ret_head(), Some("Result"));
    }

    #[test]
    fn generic_fn_with_where_clause() {
        let file = parse(
            "fn go<M: Layer, F>(model: M, cb: F) -> Result<Out, E>\nwhere F: Fn(usize) -> bool \
             { cb(1); }",
        );
        let fd = first_fn(&file);
        assert_eq!(fd.name, "go");
        assert_eq!(fd.ret_head(), Some("Result"));
        assert_eq!(fd.body.as_ref().map(|b| b.stmts.len()), Some(1));
    }

    #[test]
    fn impl_trait_return_type() {
        let file = parse("fn make() -> impl Iterator<Item = f32> { it() }");
        let fd = first_fn(&file);
        assert_eq!(fd.ret_head(), Some("impl"));
    }

    #[test]
    fn impl_block_methods_and_self_type() {
        let src = "impl<T> Trainer<T> { pub fn run(&self) { self.round(0); } fn round(&self, \
                   s: usize) {} }";
        let file = parse(src);
        match &file.items[0] {
            Item::Impl { self_ty, fns, trait_name, .. } => {
                assert_eq!(self_ty, "Trainer");
                assert!(trait_name.is_none());
                assert_eq!(fns.len(), 2);
                assert!(fns[0].has_self);
                assert_eq!(fns[0].name, "run");
            }
            other => panic!("expected impl, got {other:?}"),
        }
    }

    #[test]
    fn trait_impl_records_trait_and_self_ty() {
        let file = parse("impl Layer for Linear { fn forward(&self) {} }");
        match &file.items[0] {
            Item::Impl { self_ty, trait_name, fns, .. } => {
                assert_eq!(self_ty, "Linear");
                assert_eq!(trait_name.as_deref(), Some("Layer"));
                assert_eq!(fns[0].name, "forward");
            }
            other => panic!("expected impl, got {other:?}"),
        }
    }

    #[test]
    fn nested_closures_and_method_chains() {
        let names = method_names(
            "fn f(v: Vec<Vec<f32>>) { v.iter().map(|row| row.iter().map(|x| x.abs()).sum::<f32>\
             ()).collect::<Vec<_>>(); }",
        );
        // Pre-order, receiver before arguments: the outermost call first,
        // then its receiver chain, then the closure arguments' bodies.
        assert_eq!(names, ["collect", "map", "iter", "sum", "map", "iter", "abs"]);
    }

    #[test]
    fn turbofish_captured_on_method_calls() {
        let file = parse("fn f(xs: &[f32]) -> f32 { xs.iter().sum::<f32>() }");
        let mut fish = None;
        walk_item(&file.items[0], &mut |e| {
            if let ExprKind::MethodCall { name, turbofish, .. } = &e.kind {
                if name == "sum" {
                    fish = turbofish.clone();
                }
            }
        });
        assert_eq!(fish.as_deref(), Some("< f32 >"));
    }

    #[test]
    fn index_try_and_macro_structure() {
        let file = parse(
            "fn f(v: &[u32]) -> Result<u32, E> { check(v[0])?; panic!(\"{}\", \
                          v[1]); Ok(v[2]) }",
        );
        let mut idx = 0;
        let mut macros = Vec::new();
        walk_item(&file.items[0], &mut |e| match &e.kind {
            ExprKind::Index { .. } => idx += 1,
            ExprKind::Macro { name, .. } => macros.push(name.clone()),
            _ => {}
        });
        assert_eq!(idx, 3);
        assert_eq!(macros, ["panic"]);
    }

    #[test]
    fn let_binding_type_head_and_underscore_pattern() {
        let file = parse(
            "fn f() { let mut m: HashMap<u32, f32> = HashMap::new(); let _ = send(); let (a, b) \
             = pair(); }",
        );
        let body = first_fn(&file).body.as_ref().unwrap();
        match &body.stmts[0] {
            Stmt::Let { pat, ty_head, .. } => {
                assert_eq!(pat, "mut m");
                assert_eq!(ty_head.as_deref(), Some("HashMap"));
            }
            other => panic!("{other:?}"),
        }
        match &body.stmts[1] {
            Stmt::Let { pat, init, .. } => {
                assert_eq!(pat, "_");
                assert!(matches!(init.as_ref().unwrap().kind, ExprKind::Call { .. }));
            }
            other => panic!("{other:?}"),
        }
        match &body.stmts[2] {
            Stmt::Let { pat, .. } => assert_eq!(pat, "( a , b )"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn if_let_match_and_loops_parse() {
        let src = "fn f(rx: &Rx) { if let Some(x) = rx.peek() { use_it(x); } match rx.recv() { \
                   Ok(m) if m.live() => handle(m), Err(_) => return, _ => {} } while let Ok(v) = \
                   rx.recv() { push(v); } for (i, x) in xs.iter().enumerate() { go(i, x); } }";
        let names = method_names(src);
        assert!(names.contains(&"peek".to_string()));
        assert_eq!(names.iter().filter(|n| *n == "recv").count(), 2);
        assert!(names.contains(&"live".to_string()));
        assert!(names.contains(&"enumerate".to_string()));
    }

    #[test]
    fn struct_literals_vs_blocks() {
        let src = "fn f() -> W { if cond { ret() } else { other() }; W { a: g(), b } }";
        let file = parse(src);
        let mut calls = Vec::new();
        let mut lits = Vec::new();
        walk_item(&file.items[0], &mut |e| match &e.kind {
            ExprKind::Call { path, .. } => calls.push(path.join("::")),
            ExprKind::StructLit { path, .. } => lits.push(path.clone()),
            _ => {}
        });
        assert_eq!(lits, ["W"]);
        assert!(calls.contains(&"g".to_string()));
        assert!(calls.contains(&"ret".to_string()));
    }

    #[test]
    fn chains_capture_all_operands() {
        let file = parse("fn f() -> f32 { a.norm() * 2.0 + b[0] / c.get().unwrap() }");
        let names = method_names("fn f() -> f32 { a.norm() * 2.0 + b[0] / c.get().unwrap() }");
        assert!(names.contains(&"norm".to_string()));
        assert!(names.contains(&"unwrap".to_string()));
        drop(file);
    }

    #[test]
    fn closure_bodies_are_marked() {
        let file = parse("fn f(xs: &[f32]) { xs.iter().for_each(|x| sink.send(*x).unwrap()); }");
        let mut in_closure = Vec::new();
        walk_item(&file.items[0], &mut |e| {
            if let ExprKind::Closure(body) = &e.kind {
                walk_expr(body, &mut |inner| {
                    if let ExprKind::MethodCall { name, .. } = &inner.kind {
                        in_closure.push(name.clone());
                    }
                });
            }
        });
        assert_eq!(in_closure, ["unwrap", "send"]);
    }

    #[test]
    fn spans_round_trip_byte_offsets() {
        let src = "fn f(v: &[f32]) -> f32 { v.iter().map(|x| x * 2.0).sum::<f32>() }";
        let toks = lex(src);
        let file = parse_file(&toks);
        let mut checked = 0;
        walk_item(&file.items[0], &mut |e| {
            let slice = &src[e.span.lo..e.span.hi];
            assert!(!slice.is_empty());
            // The span starts exactly at its first token.
            assert_eq!(e.span.lo, toks[e.span.tok_lo].off);
            checked += 1;
        });
        assert!(checked > 5);
        let Item::Fn(fd) = &file.items[0] else { panic!() };
        assert_eq!(&src[fd.span.lo..fd.span.hi], src);
    }

    #[test]
    fn malformed_input_never_panics_and_recovers() {
        for src in [
            "fn f( {",
            "impl } fn g() { h(); }",
            "fn f() { let x = ; }",
            "fn f() { a.b.(); } fn g() { ok(); }",
            "#[cfg(test)] mod t { fn x() { }",
            "fn f() { match x { } }",
        ] {
            let file = parse(src);
            drop(file);
        }
        // And later items still parse after garbage.
        let file = parse("struct ???; fn g() { ok(); }");
        let fns = collect_fns(&file);
        assert!(fns.iter().any(|(fd, _)| fd.name == "g"));
    }

    #[test]
    fn let_else_parses_with_diverging_block() {
        let file = parse("fn f() { let Some(x) = get() else { return; }; use_it(x); }");
        let body = first_fn(&file).body.as_ref().unwrap();
        match &body.stmts[0] {
            Stmt::Let { els, init, .. } => {
                assert!(els.is_some());
                assert!(init.is_some());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn collect_fns_sees_nested_and_impl_fns() {
        let src = "mod outer { impl T { fn m(&self) {} } fn free() { fn inner() {} } }";
        let file = parse(src);
        let fns = collect_fns(&file);
        let names: Vec<_> = fns.iter().map(|(fd, st)| (fd.name.as_str(), *st)).collect();
        assert!(names.contains(&("m", Some("T"))));
        assert!(names.contains(&("free", None)));
        assert!(names.contains(&("inner", None)));
    }

    #[test]
    fn cast_and_ranges_do_not_derail() {
        let names = method_names(
            "fn f() { let x = n as f64 * 0.5; for i in 0..xs.len() { xs[i].touch(); } let s = \
             &buf[lo..hi]; }",
        );
        assert!(names.contains(&"len".to_string()));
        assert!(names.contains(&"touch".to_string()));
    }

    #[test]
    fn receiver_labels_render() {
        let file = parse("fn f() { pool.spawned.lock(); }");
        let mut label = None;
        walk_item(&file.items[0], &mut |e| {
            if let ExprKind::MethodCall { recv, name, .. } = &e.kind {
                if name == "lock" {
                    label = Some(receiver_label(recv));
                }
            }
        });
        assert_eq!(label.as_deref(), Some("pool.spawned"));
    }
}
