//! α–β communication cost models (Thakur, Rabenseifner & Gropp 2005).
//!
//! Ring allreduce on `p` nodes over an `n`-byte buffer:
//! `T = 2(p−1)·α + 2·((p−1)/p)·n·β` — the latency term the paper's
//! flat-buffer packing optimization targets (§4.1: "each allreduce call
//! introduces a network latency proportional to the product of the number
//! of compute nodes and average network latency").
//!
//! Allgather: `T = (p−1)·α + (p−1)·n·β` — per-node traffic grows with `p`,
//! which is why sign/quantization methods lose their wire savings at scale
//! (appendix F).

use std::time::Duration;

/// A homogeneous cluster's network parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterProfile {
    /// Per-message latency α in seconds.
    pub alpha: f64,
    /// Per-byte transfer time β in seconds (1 / bandwidth).
    pub beta: f64,
    /// Number of nodes `p`.
    pub nodes: usize,
}

impl ClusterProfile {
    /// An EC2 p3.2xlarge-like profile: "up to 10 Gbps" (appendix K) and
    /// ~50 µs one-way latency.
    pub fn p3_like(nodes: usize) -> Self {
        ClusterProfile { alpha: 50e-6, beta: 8.0 / 10e9, nodes }
    }

    /// A zero-cost network (used to validate trainer equivalence).
    pub fn zero_cost(nodes: usize) -> Self {
        ClusterProfile { alpha: 0.0, beta: 0.0, nodes }
    }

    /// Ring-allreduce time for one `bytes`-sized buffer.
    pub fn allreduce(&self, bytes: usize) -> Duration {
        let p = self.nodes as f64;
        if self.nodes <= 1 {
            return Duration::ZERO;
        }
        let t = 2.0 * (p - 1.0) * self.alpha + 2.0 * ((p - 1.0) / p) * bytes as f64 * self.beta;
        Duration::from_secs_f64(t)
    }

    /// Allgather time when every node contributes `bytes`.
    pub fn allgather(&self, bytes: usize) -> Duration {
        let p = self.nodes as f64;
        if self.nodes <= 1 {
            return Duration::ZERO;
        }
        let t = (p - 1.0) * self.alpha + (p - 1.0) * bytes as f64 * self.beta;
        Duration::from_secs_f64(t)
    }

    /// Total time of `calls` independent allreduces of `bytes` each —
    /// models the unpacked per-layer synchronization the paper's packing
    /// optimization removes.
    pub fn allreduce_per_layer(&self, layer_bytes: &[usize]) -> Duration {
        layer_bytes.iter().map(|&b| self.allreduce(b)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_is_free() {
        let c = ClusterProfile::p3_like(1);
        assert_eq!(c.allreduce(1 << 20), Duration::ZERO);
        assert_eq!(c.allgather(1 << 20), Duration::ZERO);
    }

    #[test]
    fn allreduce_bandwidth_term_saturates_with_nodes() {
        // (p−1)/p → 1: doubling nodes must not double allreduce time for
        // large buffers.
        let bytes = 100 << 20;
        let t2 = ClusterProfile::p3_like(2).allreduce(bytes).as_secs_f64();
        let t16 = ClusterProfile::p3_like(16).allreduce(bytes).as_secs_f64();
        assert!(t16 < t2 * 2.0, "t2 {t2} t16 {t16}");
    }

    #[test]
    fn allgather_grows_linearly_with_nodes() {
        let bytes = 10 << 20;
        let t4 = ClusterProfile::p3_like(4).allgather(bytes).as_secs_f64();
        let t16 = ClusterProfile::p3_like(16).allgather(bytes).as_secs_f64();
        assert!(t16 > t4 * 3.0, "t4 {t4} t16 {t16}");
    }

    #[test]
    fn crossover_compressed_allgather_vs_raw_allreduce() {
        // At small node counts a 32× smaller allgather beats the raw
        // allreduce; at large counts the allreduce wins — the appendix-F
        // phenomenon.
        let raw = 100 << 20;
        let compressed = raw / 32;
        let few = ClusterProfile::p3_like(2);
        assert!(few.allgather(compressed) < few.allreduce(raw));
        let many = ClusterProfile::p3_like(128);
        assert!(many.allgather(compressed) > many.allreduce(raw));
    }

    #[test]
    fn packing_beats_per_layer_latency() {
        // 100 small layers synced individually pay 100× the latency term.
        let c = ClusterProfile::p3_like(16);
        let layers = vec![4 * 1024usize; 100];
        let total: usize = layers.iter().sum();
        let packed = c.allreduce(total);
        let unpacked = c.allreduce_per_layer(&layers);
        assert!(unpacked > packed * 5, "packed {packed:?} unpacked {unpacked:?}");
    }

    #[test]
    fn paper_scale_sanity() {
        // ResNet-50 gradients (~102 MB) on 16 nodes at 10 Gbps: an
        // allreduce takes on the order of a fifth of a second.
        let c = ClusterProfile::p3_like(16);
        let t = c.allreduce(25_557_032 * 4).as_secs_f64();
        assert!(t > 0.05 && t < 1.0, "t {t}");
    }
}
