//! Integration tests for the comparison baselines: LTH, Early-Bird, and
//! the language/translation trainers.

use pufferfish_repro::core::lm::{train_lm, LmTrainConfig};
use pufferfish_repro::core::seq2seq::{train_seq2seq, Seq2SeqConfig};
use pufferfish_repro::data::text::{TextCorpus, TextCorpusConfig};
use pufferfish_repro::data::translation::{TranslationConfig, TranslationDataset};
use pufferfish_repro::models::lstm_lm::{LstmLm, LstmLmConfig};
use pufferfish_repro::models::transformer::{TransformerConfig, TransformerModel};
use pufferfish_repro::models::units::ConvBnUnit;
use pufferfish_repro::models::vgg::{Vgg, VggConfig};
use pufferfish_repro::nn::layer::{Layer, Mode};
use pufferfish_repro::nn::loss::softmax_cross_entropy;
use pufferfish_repro::nn::optim::Sgd;
use pufferfish_repro::prune::early_bird::{apply_channel_mask, EarlyBirdDetector};
use pufferfish_repro::prune::lth::LotteryState;
use pufferfish_repro::tensor::Tensor;

#[test]
fn lth_round_prunes_and_rewinds_through_real_training() {
    let mut model = Vgg::new(VggConfig {
        stages: vec![vec![6], vec![8]],
        fc_hidden: vec![16],
        classes: 3,
        input_size: 8,
        seed: 1,
    })
    .unwrap();
    let mut state = LotteryState::capture(&model);
    let full = state.effective_params(&model);

    // One "round" of training.
    let mut opt = Sgd::new(0.05, 0.9, 1e-4);
    let x = Tensor::randn(&[8, 3, 8, 8], 1.0, 2);
    let labels: Vec<usize> = (0..8).map(|i| i % 3).collect();
    for _ in 0..5 {
        model.zero_grad();
        let logits = model.forward(&x, Mode::Train);
        let (_, dl) = softmax_cross_entropy(&logits, &labels, 0.0).unwrap();
        let _ = model.backward(&dl);
        state.enforce(&mut model);
        opt.step(&mut model.params_mut());
        state.enforce(&mut model);
    }
    // Prune 20%, rewind, verify sparsity and trainability.
    state.prune_global(&model, 0.2);
    state.rewind(&mut model);
    assert!((state.sparsity() - 0.2).abs() < 0.02, "sparsity {}", state.sparsity());
    assert!(state.effective_params(&model) < full);
    // The rewound sparse network still trains (forward/backward finite).
    let logits = model.forward(&x, Mode::Train);
    assert!(logits.as_slice().iter().all(|v| v.is_finite()));
}

#[test]
fn early_bird_pipeline_draws_ticket_during_training() {
    // Train a conv unit so BN gammas differentiate; the detector must
    // eventually fire, and the drawn mask must prune the right fraction.
    let mut unit = ConvBnUnit::dense(3, 8, 3, 1, 1, true, 3).unwrap();
    let mut opt = Sgd::new(0.1, 0.9, 0.0);
    let mut detector = EarlyBirdDetector::with_window(0.25, 0.2, 3);
    let x = Tensor::randn(&[8, 3, 6, 6], 1.0, 4);
    let g = Tensor::rand_uniform(&[8, 8, 6, 6], -1.0, 1.0, 5);
    let mut ticket = None;
    for _ in 0..10 {
        unit.zero_grad();
        let _ = unit.forward(&x, Mode::Train);
        let _ = unit.backward(&g);
        opt.step(&mut unit.params_mut());
        if let Some(mask) = detector.observe(&unit) {
            ticket = Some(mask);
            break;
        }
    }
    let mask = ticket.expect("ticket should converge with a stable gamma ranking");
    assert_eq!(mask[0].iter().filter(|&&k| !k).count(), 2); // 25% of 8
    let before = unit.param_count();
    let effective = apply_channel_mask(&mut unit, &mask);
    assert!(effective < before);
}

#[test]
fn lstm_warmup_not_worse_than_scratch() {
    let corpus = TextCorpus::generate(TextCorpusConfig {
        vocab: 40,
        branching: 2,
        train_tokens: 3_000,
        valid_tokens: 500,
        test_tokens: 500,
        seed: 6,
    });
    let make = || LstmLm::new(LstmLmConfig::small(40, 24, 7)).unwrap();
    let warm = train_lm(make(), &corpus, &LmTrainConfig::small(4, 2, 6)).unwrap();
    let cold = train_lm(make(), &corpus, &LmTrainConfig::small(4, 0, 6)).unwrap();
    assert!(
        warm.test_perplexity <= cold.test_perplexity * 1.15,
        "warm {} vs cold {}",
        warm.test_perplexity,
        cold.test_perplexity
    );
    assert_eq!(warm.report.hybrid_params, cold.report.hybrid_params);
}

#[test]
fn transformer_seq2seq_learns_translation_structure() {
    let data = TranslationDataset::generate(TranslationConfig {
        vocab: 24,
        min_len: 3,
        max_len: 5,
        train_pairs: 192,
        valid_pairs: 32,
        seed: 8,
    });
    let model = TransformerModel::new(TransformerConfig {
        vocab: 24,
        d_model: 16,
        heads: 2,
        enc_layers: 2,
        dec_layers: 2,
        rank: None,
        seed: 9,
    })
    .unwrap();
    let out = train_seq2seq(model, &data, &Seq2SeqConfig::small(4, 1, 4)).unwrap();
    // Better than uniform (ln 24 ≈ 3.18) and factorized after the switch.
    assert!(out.report.final_eval_loss() < 3.0, "nll {}", out.report.final_eval_loss());
    assert!(out.report.hybrid_params < out.report.vanilla_params);
    assert!(out.valid_bleu.is_finite());
}
