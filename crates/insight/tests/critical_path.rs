//! End-to-end: hand-built probe `TraceEvent`s → `render_chrome_trace` →
//! insight ingest → round reconstruction, critical-path attribution, and
//! α–β recovery. Exercises the exact byte path a real run takes through
//! the exporter, not a synthetic JSON fixture.

use puffer_insight::alphabeta::fit_collectives;
use puffer_insight::ingest::parse_trace;
use puffer_insight::{extract_rounds, Bound};
use puffer_probe::export::render_chrome_trace;
use puffer_probe::{ArgValue, TraceEvent};
use std::time::Duration;

fn ev(
    phase: char,
    name: &'static str,
    cat: &'static str,
    ts_us: u64,
    dur_us: f64,
    tid: u64,
    args: Vec<(&'static str, ArgValue)>,
) -> TraceEvent {
    TraceEvent {
        phase,
        name,
        cat,
        ts: Duration::from_micros(ts_us),
        dur: Duration::from_secs_f64(dur_us * 1e-6),
        tid,
        args,
    }
}

/// One full synchronous round's spans, `base_us` apart per phase.
///
/// `computes` are the workers' *measured* spans; `stall_us` is extra time
/// the aggregator waited beyond the slowest measured span (an injected
/// straggler delay sleeps after the compute span closes, so it shows up
/// in the aggregator-side phases but not in any worker's own span).
#[allow(clippy::too_many_arguments)]
fn round_events(
    step: u64,
    computes: &[f64],
    stall_us: f64,
    comm_us: f64,
    nodes: u64,
    bytes_per_worker: u64,
    out: &mut Vec<TraceEvent>,
) {
    let base = step * 10_000;
    let slowest = computes.iter().copied().fold(0.0f64, f64::max) + stall_us;
    let total_us = slowest + 10.0 + comm_us + 8.0;
    out.push(ev(
        'X',
        "round",
        "dist",
        base,
        total_us,
        9,
        vec![("step", step.into()), ("epoch", 0u64.into()), ("live", nodes.into())],
    ));
    for (w, &c) in computes.iter().enumerate() {
        out.push(ev(
            'X',
            "worker_compute",
            "dist",
            base,
            c,
            1 + w as u64,
            vec![("worker", (w as u64).into()), ("step", step.into())],
        ));
    }
    out.push(ev('X', "compute", "dist", base, slowest, 9, vec![("step", step.into())]));
    out.push(ev('X', "encode", "dist", base + 3000, 6.0, 9, vec![("step", step.into())]));
    out.push(ev(
        'X',
        "allreduce",
        "dist",
        base + 3100,
        comm_us,
        9,
        vec![
            ("step", step.into()),
            ("nodes", nodes.into()),
            ("bytes", (bytes_per_worker * nodes).into()),
            ("bytes_per_worker", bytes_per_worker.into()),
        ],
    ));
    out.push(ev('X', "decode", "dist", base + 4000, 4.0, 9, vec![("step", step.into())]));
    for w in 0..computes.len() {
        out.push(ev(
            'X',
            "apply",
            "dist",
            base + 4100,
            3.0 + w as f64,
            1 + w as u64,
            vec![("worker", (w as u64).into()), ("step", step.into())],
        ));
    }
}

#[test]
fn critical_path_and_bounds_survive_the_exporter_round_trip() {
    let mut events = Vec::new();
    // step 0: comm-bound (balanced 80µs compute, 300µs collective).
    round_events(0, &[80.0, 78.0, 79.0, 80.0], 0.0, 300.0, 4, 3344, &mut events);
    // step 1: straggler — worker 2's measured span is only 80µs but a
    // 400µs injected delay makes it what the aggregator waited for.
    round_events(1, &[80.0, 78.0, 80.0, 80.0], 400.0, 300.0, 4, 3344, &mut events);
    events.push(ev(
        'i',
        "straggler_delay",
        "fault",
        14_000,
        0.0,
        3,
        vec![("worker", 2u64.into()), ("step", 1u64.into()), ("delay_us", 400u64.into())],
    ));
    // step 2: compute-bound (one slow balanced phase, cheap collective).
    round_events(2, &[900.0, 890.0, 895.0, 900.0], 0.0, 120.0, 4, 3344, &mut events);

    let doc = render_chrome_trace(&events);
    let rd = parse_trace(&doc).expect("exporter output must re-ingest");
    let rounds = extract_rounds(&rd);
    assert_eq!(rounds.len(), 3);

    assert_eq!(rounds[0].bound, Bound::Comm);
    assert_eq!(rounds[0].critical_phase().unwrap().phase, "allreduce");
    assert_eq!(rounds[0].nodes, 4);

    assert_eq!(rounds[1].bound, Bound::Straggler);
    assert_eq!(rounds[1].slowest_worker, Some(2), "the delayed worker owns the critical path");
    assert_eq!(rounds[1].faults, vec!["straggler_delay".to_string()]);
    assert!((rounds[1].worker_compute_us[&2] - 480.0).abs() < 0.5, "delay re-added");

    assert_eq!(rounds[2].bound, Bound::Compute);
    let cp = &rounds[2].critical_path;
    let phases: Vec<&str> = cp.iter().map(|s| s.phase.as_str()).collect();
    assert_eq!(phases, vec!["compute", "encode", "allreduce", "decode", "apply"]);
    assert_eq!(cp[0].worker, rounds[2].slowest_worker);
    assert_eq!(cp.last().unwrap().worker, Some(3), "slowest apply attributed");
}

#[test]
fn alpha_beta_recovery_survives_the_exporter_round_trip() {
    let (alpha, beta) = (50e-6, 8.0 / 10e9);
    let model_us = |p: f64, n: f64| -> f64 {
        (2.0 * (p - 1.0) * alpha + 2.0 * ((p - 1.0) / p) * n * beta) * 1e6
    };
    let mut events = Vec::new();
    // Two node counts and two message sizes: a well-posed system.
    round_events(0, &[50.0; 4], 0.0, model_us(4.0, 3344.0), 4, 3344, &mut events);
    round_events(1, &[50.0; 4], 0.0, model_us(4.0, 3344.0), 4, 3344, &mut events);
    round_events(2, &[50.0; 3], 0.0, model_us(3.0, 3344.0), 3, 3344, &mut events);
    round_events(3, &[50.0; 3], 0.0, model_us(3.0, 104.0), 3, 104, &mut events);

    let doc = render_chrome_trace(&events);
    let rd = parse_trace(&doc).expect("exporter output must re-ingest");
    let rounds = extract_rounds(&rd);
    let fits = fit_collectives(&rounds);
    assert_eq!(fits.len(), 1);
    let f = &fits[0];
    assert_eq!(f.collective, "allreduce");
    assert!(!f.degenerate, "two (p, n) operating points separate α from β");
    // Export quantizes durations to Chrome's microsecond floats; recovery
    // is exact to well inside that quantization.
    assert!((f.alpha - alpha).abs() / alpha < 1e-3, "alpha {} vs {alpha}", f.alpha);
    assert!((f.beta - beta).abs() / beta < 1e-3, "beta {} vs {beta}", f.beta);
    assert!(f.max_rel_residual < 1e-3);
}
