//! The paper's WMT'16 model: an encoder–decoder Transformer with shared,
//! tied embeddings (appendix Tables 16–17), hybrid low-rank conversion
//! included (first encoder layer and first decoder layer stay full-rank).

use puffer_nn::attention::{BlockRank, FeedForward, MultiHeadAttention};
use puffer_nn::embedding::Embedding;
use puffer_nn::layer::{Layer, Mode};
use puffer_nn::lstm::MatOp;
use puffer_nn::norm::LayerNorm;
use puffer_nn::param::Param;
use puffer_nn::{NnError, Result};
use puffer_tensor::svd::truncated_svd_seeded;
use puffer_tensor::Tensor;

/// Configuration of the Transformer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransformerConfig {
    /// Shared vocabulary size.
    pub vocab: usize,
    /// Model dimension (`p·d`).
    pub d_model: usize,
    /// Attention heads.
    pub heads: usize,
    /// Encoder layers.
    pub enc_layers: usize,
    /// Decoder layers.
    pub dec_layers: usize,
    /// Rank of factorized layers, `None` = vanilla. Hybrid semantics: the
    /// first encoder and first decoder layer stay full-rank (paper App. D).
    pub rank: Option<usize>,
    /// RNG seed.
    pub seed: u64,
}

impl TransformerConfig {
    /// A CPU-scale default mirroring the paper's shape (enc/dec stacks,
    /// shared tied embedding, 4× FFN).
    pub fn small(vocab: usize, seed: u64) -> Self {
        TransformerConfig {
            vocab,
            d_model: 32,
            heads: 4,
            enc_layers: 2,
            dec_layers: 2,
            rank: None,
            seed,
        }
    }
}

struct EncoderLayer {
    attn: MultiHeadAttention,
    ln1: LayerNorm,
    ffn: FeedForward,
    ln2: LayerNorm,
}

struct DecoderLayer {
    self_attn: MultiHeadAttention,
    ln1: LayerNorm,
    cross_attn: MultiHeadAttention,
    ln2: LayerNorm,
    ffn: FeedForward,
    ln3: LayerNorm,
}

/// Encoder–decoder Transformer with shared tied embedding.
pub struct TransformerModel {
    config: TransformerConfig,
    embedding: Embedding,
    enc: Vec<EncoderLayer>,
    dec: Vec<DecoderLayer>,
    pos: Tensor, // [max_len, d_model] sinusoidal table
    cache: Option<FwdCache>,
}

struct FwdCache {
    src_flat: Vec<usize>,
    tgt_flat: Vec<usize>,
    b: usize,
    ts: usize,
    tt: usize,
}

const MAX_LEN: usize = 512;

fn sinusoidal_table(d_model: usize) -> Tensor {
    let mut t = Tensor::zeros(&[MAX_LEN, d_model]);
    for pos in 0..MAX_LEN {
        for i in 0..d_model {
            let angle = pos as f32 / 10_000f32.powf((2 * (i / 2)) as f32 / d_model as f32);
            t.as_mut_slice()[pos * d_model + i] =
                if i % 2 == 0 { angle.sin() } else { angle.cos() };
        }
    }
    t
}

impl TransformerModel {
    /// Builds the model.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] on inconsistent dimensions.
    pub fn new(config: TransformerConfig) -> Result<Self> {
        if config.enc_layers == 0 || config.dec_layers == 0 {
            return Err(NnError::BadConfig {
                layer: "TransformerModel",
                reason: "zero layers".into(),
            });
        }
        let embedding = Embedding::new(config.vocab, config.d_model, config.seed)?;
        let rank_for = |layer_idx: usize| -> BlockRank {
            match config.rank {
                Some(r) if layer_idx >= 1 => BlockRank::LowRank(r),
                _ => BlockRank::Full,
            }
        };
        let mut enc = Vec::new();
        for l in 0..config.enc_layers {
            let s = config.seed.wrapping_add(100 * l as u64);
            enc.push(EncoderLayer {
                attn: MultiHeadAttention::new(config.d_model, config.heads, rank_for(l), s)?,
                ln1: LayerNorm::new(config.d_model)?,
                ffn: FeedForward::new(config.d_model, rank_for(l), s.wrapping_add(50))?,
                ln2: LayerNorm::new(config.d_model)?,
            });
        }
        let mut dec = Vec::new();
        for l in 0..config.dec_layers {
            let s = config.seed.wrapping_add(10_000 + 100 * l as u64);
            dec.push(DecoderLayer {
                self_attn: MultiHeadAttention::new(config.d_model, config.heads, rank_for(l), s)?,
                ln1: LayerNorm::new(config.d_model)?,
                cross_attn: MultiHeadAttention::new(
                    config.d_model,
                    config.heads,
                    rank_for(l),
                    s.wrapping_add(33),
                )?,
                ln2: LayerNorm::new(config.d_model)?,
                ffn: FeedForward::new(config.d_model, rank_for(l), s.wrapping_add(66))?,
                ln3: LayerNorm::new(config.d_model)?,
            });
        }
        Ok(TransformerModel {
            config,
            embedding,
            enc,
            dec,
            pos: sinusoidal_table(config.d_model),
            cache: None,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &TransformerConfig {
        &self.config
    }

    /// Immutable parameter views.
    pub fn params(&self) -> Vec<&Param> {
        let mut v = vec![self.embedding.param()];
        for e in &self.enc {
            v.extend(e.attn.params());
            v.extend(e.ln1.params());
            v.extend(e.ffn.params());
            v.extend(e.ln2.params());
        }
        for d in &self.dec {
            v.extend(d.self_attn.params());
            v.extend(d.ln1.params());
            v.extend(d.cross_attn.params());
            v.extend(d.ln2.params());
            v.extend(d.ffn.params());
            v.extend(d.ln3.params());
        }
        v
    }

    /// Mutable parameter views, same order as [`TransformerModel::params`].
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = vec![self.embedding.param_mut()];
        for e in &mut self.enc {
            v.extend(e.attn.params_mut());
            v.extend(e.ln1.params_mut());
            v.extend(e.ffn.params_mut());
            v.extend(e.ln2.params_mut());
        }
        for d in &mut self.dec {
            v.extend(d.self_attn.params_mut());
            v.extend(d.ln1.params_mut());
            v.extend(d.cross_attn.params_mut());
            v.extend(d.ln2.params_mut());
            v.extend(d.ffn.params_mut());
            v.extend(d.ln3.params_mut());
        }
        v
    }

    /// Total trainable scalars.
    pub fn param_count(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    /// Zeroes all gradients.
    pub fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    fn embed(&mut self, tokens_flat: &[usize], b: usize, t: usize) -> Tensor {
        let dm = self.config.d_model;
        let mut x = self.embedding.forward(tokens_flat); // [b·t, dm]
        let scale = (dm as f32).sqrt();
        x.scale(scale);
        for bi in 0..b {
            for ti in 0..t {
                let row = (bi * t + ti) * dm;
                for i in 0..dm {
                    x.as_mut_slice()[row + i] += self.pos.as_slice()[ti * dm + i];
                }
            }
        }
        x.reshape(&[b, t, dm]).expect("embed reshape")
    }

    /// Forward pass: teacher-forced logits for every target position.
    /// `src[b]` and `tgt_in[b]` are token rows (uniform lengths). Returns
    /// `[b·t_tgt, vocab]` logits in batch-major order.
    ///
    /// # Panics
    ///
    /// Panics on ragged inputs or sequences longer than the positional
    /// table (512).
    pub fn forward(&mut self, src: &[Vec<usize>], tgt_in: &[Vec<usize>], train: bool) -> Tensor {
        let b = src.len();
        assert_eq!(tgt_in.len(), b, "source/target batch mismatch");
        let ts = src[0].len();
        let tt = tgt_in[0].len();
        assert!(ts <= MAX_LEN && tt <= MAX_LEN, "sequence exceeds positional table");
        let src_flat: Vec<usize> = src
            .iter()
            .flat_map(|r| {
                assert_eq!(r.len(), ts, "ragged source batch");
                r.iter().copied()
            })
            .collect();
        let tgt_flat: Vec<usize> = tgt_in
            .iter()
            .flat_map(|r| {
                assert_eq!(r.len(), tt, "ragged target batch");
                r.iter().copied()
            })
            .collect();

        let mode = if train { Mode::Train } else { Mode::Eval };
        // Encoder.
        let mut x = self.embed(&src_flat, b, ts);
        for e in &mut self.enc {
            let a = e.attn.forward(&x, &x, false);
            x = e.ln1.forward(&(&x + &a), mode);
            let f = e.ffn.forward(&x);
            x = e.ln2.forward(&(&x + &f), mode);
        }
        let memory = x;
        // Decoder.
        let mut y = self.embed(&tgt_flat, b, tt);
        for d in &mut self.dec {
            let a = d.self_attn.forward(&y, &y, true);
            y = d.ln1.forward(&(&y + &a), mode);
            let c = d.cross_attn.forward(&y, &memory, false);
            y = d.ln2.forward(&(&y + &c), mode);
            let f = d.ffn.forward(&y);
            y = d.ln3.forward(&(&y + &f), mode);
        }
        let flat = y.reshape(&[b * tt, self.config.d_model]).expect("flatten");
        let logits = self.embedding.project_logits(&flat);
        if train {
            self.cache = Some(FwdCache { src_flat, tgt_flat, b, ts, tt });
        }
        logits
    }

    /// Backward pass from `∂L/∂logits`; accumulates all gradients.
    ///
    /// # Panics
    ///
    /// Panics if called before a training forward.
    pub fn backward(&mut self, dlogits: &Tensor) {
        let cache = self.cache.take().expect("backward before training forward");
        let (b, ts, tt, dm) = (cache.b, cache.ts, cache.tt, self.config.d_model);
        let dflat = self.embedding.backward_projection(dlogits); // [b·tt, dm]
        let mut dy = dflat.reshape(&[b, tt, dm]).expect("unflatten");
        let mut dmemory = Tensor::zeros(&[b, ts, dm]);
        for d in self.dec.iter_mut().rev() {
            let g = d.ln3.backward(&dy);
            let df = d.ffn.backward(&g);
            dy = &g + &df;
            let g = d.ln2.backward(&dy);
            let (dq, dkv) = d.cross_attn.backward(&g);
            dmemory.axpy(1.0, &dkv).expect("shape");
            dy = &g + &dq;
            let g = d.ln1.backward(&dy);
            let (dq, dkv) = d.self_attn.backward(&g);
            dy = &(&g + &dq) + &dkv;
        }
        // Through the target embedding (scaled lookup).
        let dtgt = dy.reshape(&[b * tt, dm]).expect("flatten");
        self.scatter_embed_grad(&cache.tgt_flat, &dtgt);

        // Encoder backward.
        let mut dx = dmemory;
        for e in self.enc.iter_mut().rev() {
            let g = e.ln2.backward(&dx);
            let df = e.ffn.backward(&g);
            dx = &g + &df;
            let g = e.ln1.backward(&dx);
            let (dq, dkv) = e.attn.backward(&g);
            dx = &(&g + &dq) + &dkv;
        }
        let dsrc = dx.reshape(&[b * ts, dm]).expect("flatten");
        self.scatter_embed_grad(&cache.src_flat, &dsrc);
    }

    fn scatter_embed_grad(&mut self, tokens: &[usize], grad: &Tensor) {
        let mut g = grad.clone();
        g.scale((self.config.d_model as f32).sqrt()); // embed() scaled by √dm
        self.embedding.backward_for(tokens, &g);
    }

    /// Converts to the Pufferfish hybrid at `rank` (first encoder/decoder
    /// layers stay full-rank), optionally SVD warm-started.
    ///
    /// # Errors
    ///
    /// Propagates factorization errors.
    pub fn to_hybrid(&self, rank: usize, warm_start: bool) -> Result<Self> {
        let mut config = self.config;
        config.rank = Some(rank);
        let mut model = TransformerModel::new(config)?;
        model.embedding.param_mut().value = self.embedding.param().value.clone();
        if !warm_start {
            return Ok(model);
        }
        let fac = |w: &Tensor, name: &str, salt: u64| -> Result<MatOp> {
            let f = truncated_svd_seeded(w, rank, 0x5EED + salt)?;
            let (u, vt) = f.split_balanced();
            Ok(MatOp::from_factors(name, u, vt))
        };
        for (l, (src, dst)) in self.enc.iter().zip(&mut model.enc).enumerate() {
            if l == 0 {
                copy_attn(&src.attn, &mut dst.attn);
                copy_ffn(&src.ffn, &mut dst.ffn);
            } else {
                let (wq, wk, wv, wo) = src.attn.projections();
                dst.attn.set_projections(
                    fac(&wq, "wq", l as u64 * 8)?,
                    fac(&wk, "wk", l as u64 * 8 + 1)?,
                    fac(&wv, "wv", l as u64 * 8 + 2)?,
                    fac(&wo, "wo", l as u64 * 8 + 3)?,
                );
                let (w1, w2) = src.ffn.projections();
                dst.ffn.set_projections(
                    fac(&w1, "w1", l as u64 * 8 + 4)?,
                    fac(&w2, "w2", l as u64 * 8 + 5)?,
                );
            }
            copy_ln(&src.ln1, &mut dst.ln1);
            copy_ln(&src.ln2, &mut dst.ln2);
        }
        for (l, (src, dst)) in self.dec.iter().zip(&mut model.dec).enumerate() {
            if l == 0 {
                copy_attn(&src.self_attn, &mut dst.self_attn);
                copy_attn(&src.cross_attn, &mut dst.cross_attn);
                copy_ffn(&src.ffn, &mut dst.ffn);
            } else {
                let salt = 1000 + l as u64 * 16;
                let (wq, wk, wv, wo) = src.self_attn.projections();
                dst.self_attn.set_projections(
                    fac(&wq, "wq", salt)?,
                    fac(&wk, "wk", salt + 1)?,
                    fac(&wv, "wv", salt + 2)?,
                    fac(&wo, "wo", salt + 3)?,
                );
                let (wq, wk, wv, wo) = src.cross_attn.projections();
                dst.cross_attn.set_projections(
                    fac(&wq, "wq", salt + 4)?,
                    fac(&wk, "wk", salt + 5)?,
                    fac(&wv, "wv", salt + 6)?,
                    fac(&wo, "wo", salt + 7)?,
                );
                let (w1, w2) = src.ffn.projections();
                dst.ffn.set_projections(fac(&w1, "w1", salt + 8)?, fac(&w2, "w2", salt + 9)?);
            }
            copy_ln(&src.ln1, &mut dst.ln1);
            copy_ln(&src.ln2, &mut dst.ln2);
            copy_ln(&src.ln3, &mut dst.ln3);
        }
        Ok(model)
    }

    /// Greedy decode: translates `src` token rows, returning the generated
    /// content tokens for each sentence (BOS/EOS stripped), up to
    /// `max_len` steps. Uses `puffer-data`-style specials: pass the BOS
    /// and EOS ids explicitly.
    pub fn greedy_decode(
        &mut self,
        src: &[Vec<usize>],
        bos: usize,
        eos: usize,
        max_len: usize,
    ) -> Vec<Vec<usize>> {
        let vocab = self.config.vocab;
        src.iter()
            .map(|sentence| {
                let mut out = vec![bos];
                for _ in 0..max_len {
                    let logits =
                        self.forward(std::slice::from_ref(sentence), &[out.clone()], false);
                    let last = logits.row_slice((out.len() - 1).min(logits.shape()[0] - 1));
                    let next = puffer_tensor::stats::argmax(&last[..vocab]).unwrap_or(eos);
                    if next == eos {
                        break;
                    }
                    out.push(next);
                }
                out[1..].to_vec()
            })
            .collect()
    }
}

fn copy_attn(src: &MultiHeadAttention, dst: &mut MultiHeadAttention) {
    let (wq, wk, wv, wo) = src.projections();
    dst.set_projections(
        MatOp::Dense(Param::new("wq", wq)),
        MatOp::Dense(Param::new("wk", wk)),
        MatOp::Dense(Param::new("wv", wv)),
        MatOp::Dense(Param::new("wo", wo)),
    );
}

fn copy_ffn(src: &FeedForward, dst: &mut FeedForward) {
    let (w1, w2) = src.projections();
    dst.set_projections(MatOp::Dense(Param::new("w1", w1)), MatOp::Dense(Param::new("w2", w2)));
}

fn copy_ln(src: &LayerNorm, dst: &mut LayerNorm) {
    for (s, d) in src.params().into_iter().zip(dst.params_mut()) {
        d.value = s.value.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puffer_nn::loss::softmax_cross_entropy;

    fn tiny() -> TransformerModel {
        TransformerModel::new(TransformerConfig {
            vocab: 16,
            d_model: 8,
            heads: 2,
            enc_layers: 2,
            dec_layers: 2,
            rank: None,
            seed: 1,
        })
        .unwrap()
    }

    #[test]
    fn forward_shapes() {
        let mut m = tiny();
        let src = vec![vec![1, 3, 4, 2], vec![1, 5, 6, 2]];
        let tgt = vec![vec![1, 7, 8], vec![1, 9, 10]];
        let logits = m.forward(&src, &tgt, true);
        assert_eq!(logits.shape(), &[6, 16]);
    }

    #[test]
    fn hybrid_keeps_first_layers_full() {
        let m = tiny();
        let h = m.to_hybrid(4, true).unwrap();
        assert!(h.param_count() < m.param_count());
        // Exactly layer 0 of enc and dec stay dense: compare param-count
        // against an all-low-rank config to confirm a difference exists.
        let mut cfg = *m.config();
        cfg.rank = Some(4);
        let built = TransformerModel::new(cfg).unwrap();
        assert_eq!(h.param_count(), built.param_count());
    }

    #[test]
    fn training_reduces_loss_on_copy_task() {
        let mut m = tiny();
        let mut opt = puffer_nn::optim::Adam::new(0.01, 0.9, 0.98, 1e-8, 0.0);
        // Tiny copy task: target repeats source shifted through BOS.
        let src = vec![vec![1, 5, 6, 7, 2], vec![1, 8, 9, 10, 2]];
        let tgt_in = vec![vec![1, 5, 6, 7], vec![1, 8, 9, 10]];
        let tgt_out = [vec![5, 6, 7, 2], vec![8, 9, 10, 2]];
        let targets: Vec<usize> = tgt_out.iter().flatten().copied().collect();
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..40 {
            m.zero_grad();
            let logits = m.forward(&src, &tgt_in, true);
            let (loss, dl) = softmax_cross_entropy(&logits, &targets, 0.0).unwrap();
            m.backward(&dl);
            puffer_nn::optim::clip_grad_norm(&mut m.params_mut(), 0.25);
            opt.step(&mut m.params_mut());
            first.get_or_insert(loss);
            last = loss;
        }
        assert!(last < first.unwrap() * 0.7, "loss {} -> {last}", first.unwrap());
    }

    #[test]
    fn warm_start_closer_than_random() {
        let mut m = tiny();
        let src = vec![vec![1, 3, 4, 2]];
        let tgt = vec![vec![1, 7, 8]];
        let y = m.forward(&src, &tgt, false);
        let mut warm = m.to_hybrid(7, true).unwrap();
        let mut cold = m.to_hybrid(7, false).unwrap();
        let ew = puffer_tensor::stats::rel_error(&y, &warm.forward(&src, &tgt, false));
        let ec = puffer_tensor::stats::rel_error(&y, &cold.forward(&src, &tgt, false));
        assert!(ew < ec, "warm {ew} vs cold {ec}");
    }

    #[test]
    fn greedy_decode_terminates() {
        let mut m = tiny();
        let out = m.greedy_decode(&[vec![1, 3, 4, 2]], 1, 2, 6);
        assert_eq!(out.len(), 1);
        assert!(out[0].len() <= 6);
        assert!(out[0].iter().all(|&t| t < 16));
    }

    #[test]
    fn gradients_flow_everywhere() {
        let mut m = tiny();
        m.zero_grad();
        let src = vec![vec![1, 3, 4, 2]];
        let tgt = vec![vec![1, 7, 8]];
        let logits = m.forward(&src, &tgt, true);
        let (_, dl) = softmax_cross_entropy(&logits, &[7, 8, 2], 0.0).unwrap();
        m.backward(&dl);
        let nonzero =
            m.params().iter().filter(|p| p.grad.as_slice().iter().any(|&g| g != 0.0)).count();
        assert!(nonzero as f32 > m.params().len() as f32 * 0.9, "{nonzero}/{}", m.params().len());
    }

    #[test]
    fn constructor_validates() {
        let mut cfg = TransformerConfig::small(16, 1);
        cfg.enc_layers = 0;
        assert!(TransformerModel::new(cfg).is_err());
    }
}
