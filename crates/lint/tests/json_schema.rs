//! Schema-checks `puffer-lint --json` with `puffer-probe`'s own JSON
//! parser — the two zero-dependency crates keep each other honest: the
//! lint's writer must produce documents the probe's strict RFC 8259
//! reader accepts, field for field.

use puffer_lint::{run, Config};
use puffer_probe::json::{parse, Json};
use std::path::PathBuf;

fn fixtures_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn num(doc: &Json, key: &str) -> f64 {
    doc.get(key).and_then(Json::as_num).unwrap_or_else(|| panic!("missing number {key}"))
}

#[test]
fn json_output_parses_and_matches_the_report() {
    let report = run(&Config::new(fixtures_root())).expect("fixture scan");
    let doc = parse(&report.to_json()).expect("lint --json must be valid JSON");

    assert_eq!(num(&doc, "version"), 1.0);
    assert_eq!(num(&doc, "files_scanned") as usize, report.files_scanned);
    assert_eq!(num(&doc, "manifests_scanned") as usize, report.manifests_scanned);

    let diags = doc.get("diagnostics").and_then(Json::as_arr).expect("diagnostics array");
    assert_eq!(diags.len(), report.diagnostics.len());

    for (parsed, original) in diags.iter().zip(&report.diagnostics) {
        assert_eq!(parsed.get("file").and_then(Json::as_str), Some(original.file.as_str()));
        assert_eq!(num(parsed, "line") as u32, original.line);
        assert_eq!(num(parsed, "col") as u32, original.col);
        assert_eq!(parsed.get("rule").and_then(Json::as_str), Some(original.rule));
        assert_eq!(parsed.get("message").and_then(Json::as_str), Some(original.message.as_str()));
        // Rule names in the output must come from the published catalog.
        let rule = parsed.get("rule").and_then(Json::as_str).unwrap();
        assert!(
            puffer_lint::RULES.iter().any(|r| r.name == rule),
            "unknown rule {rule} in JSON output"
        );
    }
}

#[test]
fn empty_report_is_valid_json() {
    // Filter down to a rule with no findings in the probe fixture subtree:
    // the resulting empty diagnostics array must still parse.
    let mut config = Config::new(fixtures_root().join("crates/probe"));
    config.rules = Some(std::collections::BTreeSet::from(["dist-no-panic".to_string()]));
    let report = run(&config).expect("scan");
    assert!(report.is_clean());
    let doc = parse(&report.to_json()).expect("empty report must be valid JSON");
    assert_eq!(doc.get("diagnostics").and_then(Json::as_arr).map(<[Json]>::len), Some(0));
}
