//! **Table 8** (and **Table 22**'s VGG variant): the accuracy-mitigation
//! ablation on CIFAR-10 — low-rank-from-scratch vs hybrid-without-warm-up
//! vs hybrid-with-warm-up, ResNet-18, averaged over seeds.
//!
//! Shape under reproduction: loss(low-rank) ≥ loss(hybrid) ≥
//! loss(hybrid+warm-up) and the accuracy order reversed (paper:
//! 93.75 → 93.92 → 94.87).

use puffer_bench::scale::RunScale;
use puffer_bench::table::Table;
use puffer_bench::{record_result, setups};
use pufferfish::ablation::{run_resnet18_arm, AblationArm};

fn main() {
    let scale = RunScale::from_env();
    let data = setups::cifar_data(scale);
    let epochs = scale.pick(6, 16);
    let warmup = scale.pick(2, 5);
    let seeds = scale.seeds();
    println!(
        "== Table 8: ResNet-18 ablation (epochs={epochs}, warm-up={warmup}, seeds={}) ==\n",
        seeds.len()
    );

    let mut t = Table::new(vec!["Methods", "Test Loss", "Test Acc. (%)", "paper acc."]);
    let paper = ["93.75 ± 0.19", "93.92 ± 0.45", "94.87 ± 0.21"];
    let mut accs = Vec::new();
    for (arm, paper_acc) in AblationArm::all().into_iter().zip(paper) {
        let res = run_resnet18_arm(arm, &data, setups::CNN_SCALE, epochs, warmup, 0.25, &seeds)
            .expect("ablation arm");
        t.row(vec![
            arm.label().into(),
            format!("{:.3} ± {:.3}", res.mean_loss, res.std_loss),
            format!("{:.2} ± {:.2}", res.mean_accuracy * 100.0, res.std_accuracy * 100.0),
            paper_acc.into(),
        ]);
        accs.push(res.mean_accuracy);
        record_result(
            "table8_ablation",
            &format!("{}: loss {:.4} acc {:.4}", arm.label(), res.mean_loss, res.mean_accuracy),
        );
    }
    t.print();
    println!(
        "\nshape: low-rank {:.3} <= hybrid {:.3} <= hybrid+warm-up {:.3} expected (paper ordering)",
        accs[0], accs[1], accs[2]
    );
}
