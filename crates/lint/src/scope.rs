//! `#[cfg(test)]` scope tracking over the token stream.
//!
//! The awk lint this replaces stopped scanning a file at the *first*
//! `#[cfg(test)]` line — everything after an early test module was
//! silently unchecked, and a `#[cfg(test)]` on an inner function exempted
//! the whole rest of the file. This pass instead computes an exact
//! per-token mask by attaching each `#[cfg(test)]` attribute to the item
//! that follows it and masking only that item's extent:
//!
//! * `#[cfg(test)] mod tests { … }` — masked through the matching `}`,
//!   nested modules and multiple test modules included;
//! * `#[cfg(test)] fn helper() { … }` — just that function;
//! * `#[cfg(test)] use …;` — through the `;`;
//! * `#![cfg(test)]` as an inner attribute at any point — the whole file.
//!
//! Brace matching runs on lexed tokens, so braces inside strings or
//! comments can never unbalance it.

use crate::lexer::{Token, TokenKind};

/// Returns, for every token, whether it is test-only code (covered by a
/// `#[cfg(test)]` attribute).
pub fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if !is_attr_start(tokens, i) {
            i += 1;
            continue;
        }
        // Consume the run of attributes starting here; remember whether any
        // of them is cfg(test) and whether one is an inner `#![…]` attr.
        let attrs_start = i;
        let mut saw_cfg_test = false;
        let mut inner_cfg_test = false;
        while is_attr_start(tokens, i) {
            let inner = tokens.get(i + 1).is_some_and(|t| t.kind == TokenKind::Punct('!'));
            let (end, is_test) = scan_attr(tokens, i);
            if is_test {
                saw_cfg_test = true;
                inner_cfg_test |= inner;
            }
            i = end;
        }
        if inner_cfg_test {
            // `#![cfg(test)]`: the enclosing scope — for our purposes the
            // whole file — is test-only.
            for m in mask.iter_mut() {
                *m = true;
            }
            return mask;
        }
        if !saw_cfg_test {
            continue;
        }
        let j = item_end(tokens, i);
        for m in mask.iter_mut().take(j).skip(attrs_start) {
            *m = true;
        }
        i = j;
    }
    mask
}

/// Returns, for every token, whether it sits inside an item annotated with
/// `#[target_feature(...)]` (attribute run included). The simd rule uses
/// this to tell gated micro-kernel bodies apart from stray intrinsic calls.
pub fn target_feature_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if !is_attr_start(tokens, i) {
            i += 1;
            continue;
        }
        let attrs_start = i;
        let mut saw_tf = false;
        while is_attr_start(tokens, i) {
            let (end, body) = scan_attr_body(tokens, i);
            saw_tf |= body.first() == Some(&"target_feature");
            i = end;
        }
        if !saw_tf {
            continue;
        }
        let j = item_end(tokens, i);
        for m in mask.iter_mut().take(j).skip(attrs_start) {
            *m = true;
        }
        i = j;
    }
    mask
}

/// Index one past the extent of the item starting at `i` (the first token
/// after its attributes): up to a `;` at brace depth 0 (item without body)
/// or through the matching `}` of the first `{`.
fn item_end(tokens: &[Token], i: usize) -> usize {
    let mut j = i;
    let mut depth = 0usize;
    while j < tokens.len() {
        match tokens[j].kind {
            TokenKind::Punct(';') if depth == 0 => {
                j += 1;
                break;
            }
            TokenKind::Punct('{') => depth += 1,
            // A close brace at depth 0 means the attribute dangled at
            // the end of a block (malformed input); stop masking there.
            TokenKind::Punct('}') if depth == 0 => break,
            TokenKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Is `tokens[i]` the `#` of an attribute (`#[…]` or `#![…]`)?
fn is_attr_start(tokens: &[Token], i: usize) -> bool {
    tokens.get(i).is_some_and(|t| t.kind == TokenKind::Punct('#'))
        && (tokens.get(i + 1).is_some_and(|t| t.kind == TokenKind::Punct('['))
            || (tokens.get(i + 1).is_some_and(|t| t.kind == TokenKind::Punct('!'))
                && tokens.get(i + 2).is_some_and(|t| t.kind == TokenKind::Punct('['))))
}

/// Scans the attribute starting at `i` (the `#`). Returns the index just
/// past its closing `]` and whether the attribute is exactly `cfg(test)`.
fn scan_attr(tokens: &[Token], i: usize) -> (usize, bool) {
    let (j, body) = scan_attr_body(tokens, i);
    (j, body == ["cfg", "(", "test", ")"])
}

/// Scans the attribute starting at `i` (the `#`). Returns the index just
/// past its closing `]` and the attribute's body tokens (comments skipped).
fn scan_attr_body(tokens: &[Token], i: usize) -> (usize, Vec<&str>) {
    let mut j = i + 1;
    if tokens.get(j).is_some_and(|t| t.kind == TokenKind::Punct('!')) {
        j += 1;
    }
    // tokens[j] is the `[`.
    let mut depth = 0usize;
    let mut body: Vec<&str> = Vec::new();
    while j < tokens.len() {
        match tokens[j].kind {
            TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            _ if depth > 0 && !tokens[j].is_comment() => body.push(tokens[j].text.as_str()),
            _ => {}
        }
        j += 1;
    }
    (j, body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    /// Idents in `src` that the mask marks as test code.
    fn masked_idents(src: &str) -> Vec<String> {
        let toks = lex(src);
        let mask = test_mask(&toks);
        toks.iter()
            .zip(&mask)
            .filter(|(t, m)| **m && t.kind == TokenKind::Ident)
            .map(|(t, _)| t.text.clone())
            .collect()
    }

    #[test]
    fn code_after_early_test_module_is_unmasked() {
        // The awk-gate regression: `after` must stay lintable.
        let src = "#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }\nfn after() { y.unwrap(); }";
        let toks = lex(src);
        let mask = test_mask(&toks);
        let after = toks.iter().position(|t| t.text == "after").unwrap();
        assert!(!mask[after]);
        let t = toks.iter().position(|t| t.text == "t").unwrap();
        assert!(mask[t]);
    }

    #[test]
    fn nested_and_multiple_test_modules() {
        let src = "\
#[cfg(test)]
mod tests { mod inner { fn a() {} } }
fn live() {}
#[cfg(test)]
mod more_tests { fn b() {} }
fn live2() {}";
        let masked = masked_idents(src);
        assert!(masked.contains(&"inner".to_string()));
        assert!(masked.contains(&"b".to_string()));
        assert!(!masked.contains(&"live".to_string()));
        assert!(!masked.contains(&"live2".to_string()));
    }

    #[test]
    fn cfg_test_on_inner_function_masks_only_that_function() {
        let src = "fn live() {}\n#[cfg(test)]\nfn helper() { panic!(\"x\") }\nfn live2() {}";
        let masked = masked_idents(src);
        assert!(masked.contains(&"helper".to_string()));
        assert!(!masked.contains(&"live".to_string()));
        assert!(!masked.contains(&"live2".to_string()));
    }

    #[test]
    fn other_attributes_between_cfg_test_and_item() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod tests { fn a() {} }\nfn live() {}";
        let masked = masked_idents(src);
        assert!(masked.contains(&"a".to_string()));
        assert!(!masked.contains(&"live".to_string()));
    }

    #[test]
    fn bodiless_item_masks_through_semicolon() {
        let src = "#[cfg(test)]\nmod tests;\nfn live() {}";
        let masked = masked_idents(src);
        assert!(masked.contains(&"tests".to_string()));
        assert!(!masked.contains(&"live".to_string()));
    }

    #[test]
    fn cfg_not_test_is_not_masked() {
        let src = "#[cfg(feature = \"x\")]\nfn live() {}\n#[cfg(any(test, doc))]\nfn live2() {}";
        assert!(masked_idents(src).is_empty());
    }

    #[test]
    fn inner_attr_masks_whole_file() {
        let src = "#![cfg(test)]\nfn a() {}\nfn b() {}";
        let masked = masked_idents(src);
        assert!(masked.contains(&"a".to_string()) && masked.contains(&"b".to_string()));
    }

    #[test]
    fn target_feature_mask_covers_only_the_annotated_fn() {
        let src = "\
fn plain() { before(); }
#[target_feature(enable = \"avx2\", enable = \"fma\")]
unsafe fn kernel(a: *const f32) { inner(); }
fn after() { outside(); }";
        let toks = lex(src);
        let mask = target_feature_mask(&toks);
        let at = |name: &str| toks.iter().position(|t| t.text == name).unwrap();
        assert!(mask[at("inner")]);
        assert!(mask[at("kernel")]);
        assert!(!mask[at("before")]);
        assert!(!mask[at("outside")]);
        // cfg(test) masking is unaffected by target_feature attributes.
        assert!(test_mask(&toks).iter().all(|m| !m));
    }

    #[test]
    fn braces_in_strings_do_not_unbalance() {
        let src = "#[cfg(test)]\nmod tests { fn a() { let s = \"}}}\"; } }\nfn live() {}";
        let masked = masked_idents(src);
        assert!(masked.contains(&"a".to_string()));
        assert!(!masked.contains(&"live".to_string()));
    }
}
