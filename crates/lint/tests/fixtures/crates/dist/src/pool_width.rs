//! Fixture: direct pool-width mutation in dist outside the membership
//! module. Epoch transitions own the thread pool via `PoolWidthGuard`;
//! any other `set_num_threads` call site fights that bookkeeping.
//!
//! Decoys first — none of these may be flagged:
//! a comment mentioning set_num_threads(4) is inert.

pub fn decoys() {
    let _s = "pool::set_num_threads(8)"; // string decoy
    /* set_num_threads(2) in a block comment */
}

pub fn grow_pool(width: usize) {
    puffer_tensor::pool::set_num_threads(width);
}

pub fn pinned_startup_width() {
    // lint:allow(dist-pool-width-via-membership) — deliberate, visible exemption
    puffer_tensor::pool::set_num_threads(1);
}

#[cfg(test)]
mod tests {
    pub fn tests_may_pin_widths() {
        puffer_tensor::pool::set_num_threads(1);
    }
}
