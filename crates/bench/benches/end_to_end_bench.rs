//! Criterion benchmark behind Table 6: one training step (forward +
//! backward + SGD) of vanilla vs Pufferfish models.

use criterion::{criterion_group, criterion_main, Criterion};
use puffer_bench::setups;
use puffer_models::resnet::ResNetHybridPlan;
use puffer_models::units::FactorInit;
use puffer_nn::layer::{Layer, Mode};
use puffer_nn::loss::softmax_cross_entropy;
use puffer_nn::optim::Sgd;
use puffer_tensor::Tensor;

fn step<M: Layer>(model: &mut M, opt: &mut Sgd, x: &Tensor, y: &[usize]) {
    model.zero_grad();
    let logits = model.forward(x, Mode::Train);
    let (_, dl) = softmax_cross_entropy(&logits, y, 0.0).unwrap();
    let _ = model.backward(&dl);
    opt.step(&mut model.params_mut());
}

fn bench_train_step(c: &mut Criterion) {
    let x = Tensor::randn(&[8, 3, 32, 32], 1.0, 1);
    let y: Vec<usize> = (0..8).map(|i| i % 10).collect();
    let mut group = c.benchmark_group("train_step_batch8");
    group.sample_size(10);

    let mut vanilla = setups::resnet18(10, 1);
    let mut opt = Sgd::new(0.1, 0.9, 1e-4);
    group.bench_function("resnet18_vanilla", |b| b.iter(|| step(&mut vanilla, &mut opt, &x, &y)));

    let mut puffer = setups::resnet18(10, 1)
        .to_hybrid(&ResNetHybridPlan::resnet18_paper(), FactorInit::Random(2))
        .unwrap();
    let mut opt = Sgd::new(0.1, 0.9, 1e-4);
    group.bench_function("resnet18_pufferfish", |b| b.iter(|| step(&mut puffer, &mut opt, &x, &y)));

    let mut vanilla = setups::vgg19(10, 1);
    let mut opt = Sgd::new(0.1, 0.9, 1e-4);
    group.bench_function("vgg19_vanilla", |b| b.iter(|| step(&mut vanilla, &mut opt, &x, &y)));

    let mut puffer = setups::vgg19(10, 1).to_hybrid(10, 0.25, FactorInit::Random(2)).unwrap();
    let mut opt = Sgd::new(0.1, 0.9, 1e-4);
    group.bench_function("vgg19_pufferfish", |b| b.iter(|| step(&mut puffer, &mut opt, &x, &y)));

    group.finish();
}

criterion_group!(benches, bench_train_step);
criterion_main!(benches);
