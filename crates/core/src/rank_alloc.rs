//! Spectral rank allocation — the extension the paper defers to future
//! work ("allocating the optimal rank for each layer … we leave as future
//! work", §4.1).
//!
//! Instead of a single global rank ratio, [`energy_rank`] picks the
//! smallest rank whose leading singular values capture a target fraction of
//! the layer's spectral energy, and [`allocate_ranks`] applies it across a
//! set of weight matrices. The ablation bench compares this allocator
//! against the paper's fixed-ratio rule.

use puffer_nn::Result;
use puffer_tensor::svd::svd_jacobi;
use puffer_tensor::Tensor;

/// Smallest rank `r` such that `Σ_{i<r} σᵢ² ≥ energy · Σ σᵢ²`.
/// `energy` is clamped to `(0, 1]`; returns at least 1 for a non-zero
/// spectrum.
pub fn energy_rank(singular_values: &[f32], energy: f32) -> usize {
    let energy = energy.clamp(f32::MIN_POSITIVE, 1.0);
    let total: f32 = singular_values.iter().map(|s| s * s).sum();
    if total <= 0.0 {
        return 1;
    }
    let target = energy * total;
    let mut acc = 0.0f32;
    for (i, s) in singular_values.iter().enumerate() {
        acc += s * s;
        if acc >= target {
            return i + 1;
        }
    }
    singular_values.len()
}

/// The stable rank `‖W‖_F² / σ₁²` — a smooth lower bound on rank, useful
/// as a diagnostic for how compressible a layer is.
pub fn stable_rank(singular_values: &[f32]) -> f32 {
    let fro2: f32 = singular_values.iter().map(|s| s * s).sum();
    let top = singular_values.first().copied().unwrap_or(0.0);
    if top <= 0.0 {
        0.0
    } else {
        fro2 / (top * top)
    }
}

/// A per-layer rank decision.
#[derive(Debug, Clone, PartialEq)]
pub struct RankDecision {
    /// Layer label.
    pub name: String,
    /// Chosen rank.
    pub rank: usize,
    /// Maximum admissible rank (`min(m, n)`).
    pub max_rank: usize,
    /// The layer's stable rank (diagnostic).
    pub stable_rank: f32,
    /// Parameters with the chosen rank: `r(m+n)`.
    pub factorized_params: usize,
    /// Parameters of the dense layer: `m·n`.
    pub dense_params: usize,
}

/// Chooses a rank per weight matrix so each captures `energy` of its
/// spectral energy, capped at `max_ratio × min(m, n)` so no layer exceeds
/// the budget of the paper's fixed-ratio scheme by more than that factor.
///
/// # Errors
///
/// Propagates SVD failures.
pub fn allocate_ranks(
    weights: &[(String, Tensor)],
    energy: f32,
    max_ratio: f32,
) -> Result<Vec<RankDecision>> {
    let mut out = Vec::with_capacity(weights.len());
    for (name, w) in weights {
        let (m, n) = (w.shape()[0], w.shape()[1]);
        let f = svd_jacobi(w)?;
        let max_rank = m.min(n);
        let cap = ((max_rank as f32 * max_ratio).round() as usize).clamp(1, max_rank);
        let rank = energy_rank(&f.s, energy).min(cap);
        out.push(RankDecision {
            name: name.clone(),
            rank,
            max_rank,
            stable_rank: stable_rank(&f.s),
            factorized_params: rank * (m + n),
            dense_params: m * n,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use puffer_tensor::matmul::matmul;

    #[test]
    fn energy_rank_on_flat_spectrum() {
        let s = vec![1.0f32; 10];
        assert_eq!(energy_rank(&s, 0.5), 5);
        assert_eq!(energy_rank(&s, 1.0), 10);
        assert_eq!(energy_rank(&s, 1e-9), 1);
    }

    #[test]
    fn energy_rank_on_decaying_spectrum() {
        let s: Vec<f32> = (0..10).map(|i| 0.5f32.powi(i)).collect();
        // σ² decays 4× per step: the head dominates.
        assert!(energy_rank(&s, 0.9) <= 2);
        assert_eq!(energy_rank(&s, 1.0), 10);
    }

    #[test]
    fn energy_rank_degenerate() {
        assert_eq!(energy_rank(&[0.0, 0.0], 0.9), 1);
        assert_eq!(energy_rank(&[], 0.9), 1);
    }

    #[test]
    fn stable_rank_bounds() {
        // Flat spectrum: stable rank = count; spiked: close to 1.
        assert_eq!(stable_rank(&[2.0, 2.0, 2.0]), 3.0);
        assert!(stable_rank(&[10.0, 0.1, 0.1]) < 1.1);
        assert_eq!(stable_rank(&[]), 0.0);
    }

    #[test]
    fn allocator_gives_small_rank_to_low_rank_layers() {
        // A genuinely rank-2 matrix should be allocated rank ≈ 2; a random
        // full-rank matrix should hit the cap.
        let u = Tensor::randn(&[16, 2], 1.0, 1);
        let v = Tensor::randn(&[2, 12], 1.0, 2);
        let low = matmul(&u, &v).unwrap();
        let full = Tensor::randn(&[16, 12], 1.0, 3);
        let decisions =
            allocate_ranks(&[("low".into(), low), ("full".into(), full)], 0.99, 0.5).unwrap();
        assert!(decisions[0].rank <= 3, "low-rank layer got {}", decisions[0].rank);
        assert_eq!(decisions[1].rank, 6, "full-rank layer should hit the 0.5 cap");
        assert!(decisions[0].stable_rank < decisions[1].stable_rank);
        assert!(decisions[0].factorized_params < decisions[0].dense_params);
    }
}
