//! A real multi-threaded data-parallel trainer.
//!
//! `N` worker threads each hold an identical model replica and a shard of
//! every global batch. Per step: workers compute real gradients
//! (forward/backward), a shared aggregator plays one compression round
//! (exact mean for vanilla SGD), and every worker applies the same update
//! — the synchronous data-parallel SGD the paper's prototype implements
//! with allreduce. Communication cost is accounted by the α–β model;
//! computation and encode/decode are measured wall-clock.
//!
//! Worker compute runs on `puffer-tensor`'s threaded kernels; for the
//! duration of a run the tensor pool is capped so that
//! `workers × pool threads` does not oversubscribe the hardware
//! (`PUFFER_NUM_THREADS` still sets the outer bound).

use crate::breakdown::{BreakdownAccumulator, EpochBreakdown};
use crate::cost::ClusterProfile;
use crossbeam::channel::{unbounded, Receiver, Sender};
use puffer_compress::GradCompressor;
use puffer_nn::layer::{Layer, Mode};
use puffer_nn::loss::softmax_cross_entropy;
use puffer_nn::optim::Sgd;
use puffer_tensor::Tensor;
use std::time::{Duration, Instant};

/// Configuration of a data-parallel run.
#[derive(Debug, Clone)]
pub struct DistConfig {
    /// Worker (node) count.
    pub workers: usize,
    /// Learning rate.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// Weight decay.
    pub weight_decay: f32,
    /// Cluster profile for communication accounting.
    pub profile: ClusterProfile,
}

impl DistConfig {
    /// A `workers`-node run with the paper's CNN hyper-parameters on a
    /// p3-like network.
    pub fn p3(workers: usize, lr: f32) -> Self {
        DistConfig {
            workers,
            lr,
            momentum: 0.9,
            weight_decay: 1e-4,
            profile: ClusterProfile::p3_like(workers),
        }
    }
}

/// Result of a data-parallel run.
#[derive(Debug)]
pub struct DistOutcome {
    /// Accumulated compute/encode/comm/decode decomposition.
    pub breakdown: EpochBreakdown,
    /// Mean training loss per step.
    pub step_losses: Vec<f32>,
    /// Final parameter values (all replicas are identical; worker 0's).
    pub final_params: Vec<Tensor>,
}

struct WorkerMsg {
    worker: usize,
    grads: Vec<Tensor>,
    loss: f32,
    compute: Duration,
}

/// Final parameters reported by a finished worker: `(worker index, params)`.
type FinalParams = (usize, Vec<Tensor>);

/// Runs synchronous data-parallel SGD over `global_batches`.
///
/// `factory(worker)` must build **identical** replicas for every worker
/// (same seed). Each global batch is split row-wise into equal worker
/// shards (trailing remainder rows are dropped, as with PyTorch's
/// DistributedSampler padding semantics).
///
/// # Panics
///
/// Panics if `cfg.workers` is zero or a batch has fewer rows than workers.
pub fn train_data_parallel<M, F>(
    factory: F,
    global_batches: &[(Tensor, Vec<usize>)],
    compressor: &mut dyn GradCompressor,
    cfg: &DistConfig,
) -> DistOutcome
where
    M: Layer + Send,
    F: Fn(usize) -> M + Sync,
{
    assert!(cfg.workers > 0, "need at least one worker");
    let n_workers = cfg.workers;
    let steps = global_batches.len();

    // Each worker thread drives the tensor worker pool from its own
    // forward/backward, so cap the pool width to keep
    // workers × pool-threads within the hardware parallelism. Thread count
    // never changes numerical results (the pool's kernels are bitwise
    // deterministic), only contention.
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let prev_pool_threads = puffer_tensor::pool::num_threads();
    puffer_tensor::pool::set_num_threads((hw / n_workers).max(1).min(prev_pool_threads));

    // Pre-split shards per worker.
    let shards: Vec<Vec<(Tensor, Vec<usize>)>> = (0..n_workers)
        .map(|w| global_batches.iter().map(|b| shard_batch(b, w, n_workers)).collect())
        .collect();

    let (to_agg, from_workers): (Sender<WorkerMsg>, Receiver<WorkerMsg>) = unbounded();
    let mut to_workers: Vec<Sender<Vec<Tensor>>> = Vec::new();
    let mut worker_rx: Vec<Receiver<Vec<Tensor>>> = Vec::new();
    for _ in 0..n_workers {
        let (tx, rx) = unbounded();
        to_workers.push(tx);
        worker_rx.push(rx);
    }
    let (param_tx, param_rx): (Sender<FinalParams>, Receiver<FinalParams>) = unbounded();

    let mut acc = BreakdownAccumulator::new();
    let mut step_losses = vec![0.0f32; steps];

    crossbeam::scope(|scope| {
        for (w, (shard, rx)) in shards.into_iter().zip(worker_rx.drain(..)).enumerate() {
            let to_agg = to_agg.clone();
            let param_tx = param_tx.clone();
            let factory = &factory;
            let cfg = cfg.clone();
            scope.spawn(move |_| {
                let mut model = factory(w);
                let mut opt = Sgd::new(cfg.lr, cfg.momentum, cfg.weight_decay);
                for (images, labels) in &shard {
                    let t0 = Instant::now();
                    model.zero_grad();
                    let logits = model.forward(images, Mode::Train);
                    let (loss, dl) =
                        softmax_cross_entropy(&logits, labels, 0.0).expect("valid labels");
                    let _ = model.backward(&dl);
                    let grads: Vec<Tensor> =
                        model.params().iter().map(|p| p.grad.clone()).collect();
                    let compute = t0.elapsed();
                    to_agg.send(WorkerMsg { worker: w, grads, loss, compute }).expect("agg alive");
                    // Receive the aggregated gradient and step.
                    let mean = rx.recv().expect("aggregator alive");
                    for (p, g) in model.params_mut().into_iter().zip(mean) {
                        p.grad = g;
                    }
                    opt.step(&mut model.params_mut());
                }
                let finals: Vec<Tensor> = model.params().iter().map(|p| p.value.clone()).collect();
                param_tx.send((w, finals)).expect("main alive");
            });
        }
        drop(to_agg);
        drop(param_tx);

        // Aggregator loop on the calling thread.
        for (step, loss_slot) in step_losses.iter_mut().enumerate() {
            let mut msgs: Vec<WorkerMsg> =
                (0..n_workers).map(|_| from_workers.recv().expect("workers alive")).collect();
            msgs.sort_by_key(|m| m.worker);
            *loss_slot = msgs.iter().map(|m| m.loss).sum::<f32>() / n_workers as f32;
            let slowest = msgs.iter().map(|m| m.compute).max().unwrap_or_default();
            let worker_grads: Vec<Vec<Tensor>> = msgs.into_iter().map(|m| m.grads).collect();
            let (mean, stats) = compressor.round(&worker_grads);
            acc.record(&cfg.profile, compressor, slowest, &stats);
            for tx in &to_workers {
                tx.send(mean.clone()).expect("worker alive");
            }
            let _ = step;
        }
        drop(to_workers);
    })
    .expect("worker thread panicked");

    puffer_tensor::pool::set_num_threads(prev_pool_threads);

    // Collect worker-0 final parameters.
    let mut final_params = Vec::new();
    for (w, params) in param_rx.iter() {
        if w == 0 {
            final_params = params;
        }
    }
    DistOutcome { breakdown: acc.breakdown(), step_losses, final_params }
}

/// Extracts worker `w`'s rows of a global batch (rows split evenly;
/// remainder rows dropped).
///
/// # Panics
///
/// Panics if the batch has fewer rows than workers.
pub fn shard_batch(batch: &(Tensor, Vec<usize>), w: usize, workers: usize) -> (Tensor, Vec<usize>) {
    let (images, labels) = batch;
    let n = labels.len();
    let per = n / workers;
    assert!(per > 0, "batch of {n} rows cannot feed {workers} workers");
    let start = w * per;
    let end = start + per;
    let row_len = images.len() / n;
    let data = images.as_slice()[start * row_len..end * row_len].to_vec();
    let mut shape = images.shape().to_vec();
    shape[0] = per;
    (Tensor::from_vec(data, &shape).expect("shard shape"), labels[start..end].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use puffer_compress::none::NoCompression;
    use puffer_compress::powersgd::PowerSgd;
    use puffer_compress::signum::Signum;
    use puffer_nn::activation::Relu;
    use puffer_nn::linear::Linear;
    use puffer_nn::Sequential;

    fn mlp(seed_base: u64) -> Sequential {
        Sequential::new(vec![
            Box::new(Linear::new(6, 16, true, seed_base).unwrap()),
            Box::new(Relu::new()),
            Box::new(Linear::new(16, 3, true, seed_base + 1).unwrap()),
        ])
    }

    fn synthetic_batches(n_batches: usize, batch: usize) -> Vec<(Tensor, Vec<usize>)> {
        (0..n_batches)
            .map(|b| {
                let x = Tensor::randn(&[batch, 6], 1.0, 100 + b as u64);
                let labels = (0..batch).map(|i| (i + b) % 3).collect();
                (x, labels)
            })
            .collect()
    }

    #[test]
    fn two_workers_match_single_process_sgd() {
        // With an exact-mean compressor and equal shards, data-parallel SGD
        // equals full-batch single-process SGD step for step.
        let batches = synthetic_batches(5, 8);
        let cfg = DistConfig {
            workers: 2,
            lr: 0.1,
            momentum: 0.9,
            weight_decay: 0.0,
            profile: ClusterProfile::zero_cost(2),
        };
        let mut comp = NoCompression::new();
        let out = train_data_parallel(|_| mlp(1), &batches, &mut comp, &cfg);

        // Reference: single process on the full batches.
        let mut model = mlp(1);
        let mut opt = Sgd::new(0.1, 0.9, 0.0);
        for (x, labels) in &batches {
            model.zero_grad();
            let logits = model.forward(x, Mode::Train);
            let (_, dl) = softmax_cross_entropy(&logits, labels, 0.0).unwrap();
            let _ = model.backward(&dl);
            opt.step(&mut model.params_mut());
        }
        for (dist_p, ref_p) in out.final_params.iter().zip(model.params()) {
            let err = puffer_tensor::stats::rel_error(&ref_p.value, dist_p);
            assert!(err < 1e-4, "divergence {err}");
        }
    }

    #[test]
    fn replicas_stay_synchronized() {
        // Worker count > 2, several steps: all replicas' final params equal
        // (we check worker 0 against a rerun with permuted worker ids by
        // reusing deterministic seeds).
        let batches = synthetic_batches(4, 8);
        let cfg = DistConfig {
            workers: 4,
            lr: 0.05,
            momentum: 0.0,
            weight_decay: 0.0,
            profile: ClusterProfile::zero_cost(4),
        };
        let mut comp = NoCompression::new();
        let a = train_data_parallel(|_| mlp(3), &batches, &mut comp, &cfg);
        let mut comp = NoCompression::new();
        let b = train_data_parallel(|_| mlp(3), &batches, &mut comp, &cfg);
        assert_eq!(a.final_params, b.final_params, "run must be deterministic");
        assert_eq!(a.step_losses.len(), 4);
    }

    #[test]
    fn powersgd_rounds_run_and_losses_decrease() {
        let batches = synthetic_batches(30, 8);
        let cfg = DistConfig {
            workers: 2,
            lr: 0.1,
            momentum: 0.9,
            weight_decay: 0.0,
            profile: ClusterProfile::p3_like(2),
        };
        let mut comp = PowerSgd::new(2, 9);
        let out = train_data_parallel(|_| mlp(5), &batches, &mut comp, &cfg);
        let early: f32 = out.step_losses[..5].iter().sum::<f32>() / 5.0;
        let late: f32 = out.step_losses[25..].iter().sum::<f32>() / 5.0;
        assert!(late < early, "PowerSGD training diverged: {early} -> {late}");
        assert!(out.breakdown.comm > Duration::ZERO);
    }

    #[test]
    fn signum_uses_allgather_accounting() {
        let batches = synthetic_batches(2, 8);
        let cfg = DistConfig {
            workers: 4,
            lr: 0.01,
            momentum: 0.0,
            weight_decay: 0.0,
            profile: ClusterProfile::p3_like(4),
        };
        let mut comp = Signum::new(0.9);
        let out = train_data_parallel(|_| mlp(7), &batches, &mut comp, &cfg);
        assert!(out.breakdown.comm > Duration::ZERO);
        assert!(out.breakdown.decode > Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "cannot feed")]
    fn undersized_batch_rejected() {
        let batches = synthetic_batches(1, 2);
        let cfg = DistConfig {
            workers: 4,
            lr: 0.1,
            momentum: 0.0,
            weight_decay: 0.0,
            profile: ClusterProfile::zero_cost(4),
        };
        let mut comp = NoCompression::new();
        let _ = train_data_parallel(|_| mlp(1), &batches, &mut comp, &cfg);
    }
}
