//! Benchmarks the `puffer-lint` semantic pass over the real workspace and
//! writes `BENCH_lint.json`.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p puffer-bench --bin lint_bench [-- --check]
//! ```
//!
//! Each sample is a full cold analysis — walk, lex, `#[cfg(test)]`-mask,
//! parse, symbol table, call graph, every rule — timed with
//! `puffer_probe::Stopwatch`. The JSON carries the scan census (files,
//! manifests, rules) and two hard gates `bench_diff --check` understands:
//! the workspace must be **clean** (zero findings — the semantic rules
//! gate, they are not advisory) and the median scan must stay under the
//! 5 s budget so `scripts/check.sh` stays cheap. `--check` exits non-zero
//! if either gate fails.

use puffer_lint::{run, Config, RULES};
use puffer_probe::Stopwatch;
use std::fmt::Write as _;
use std::path::PathBuf;

const SAMPLES: usize = 5;
const BUDGET_S: f64 = 5.0;

fn workspace_root() -> PathBuf {
    std::env::var("CARGO_MANIFEST_DIR")
        .map(|p| PathBuf::from(p).join("../.."))
        .unwrap_or_else(|_| PathBuf::from("."))
}

fn main() {
    let check = std::env::args().skip(1).any(|a| a == "--check");
    let root = workspace_root();

    let mut times_s = Vec::with_capacity(SAMPLES);
    let mut report = None;
    for _ in 0..SAMPLES {
        let sw = Stopwatch::start();
        match run(&Config::new(&root)) {
            Ok(r) => {
                times_s.push(sw.elapsed().as_secs_f64());
                report = Some(r);
            }
            Err(e) => {
                eprintln!("lint_bench: scan failed: {e}");
                std::process::exit(2);
            }
        }
    }
    let report = report.expect("at least one sample ran");
    times_s.sort_by(|a, b| a.total_cmp(b));
    let median_s = times_s[times_s.len() / 2];
    let max_s = *times_s.last().expect("non-empty samples");

    let clean = report.is_clean();
    let under_budget = median_s < BUDGET_S;
    let all_pass = clean && under_budget;

    println!(
        "lint_bench: {} file(s), {} manifest(s), {} rule(s), {} finding(s); \
         median {:.4}s over {SAMPLES} cold scans (budget {BUDGET_S}s)",
        report.files_scanned,
        report.manifests_scanned,
        RULES.len(),
        report.diagnostics.len(),
        median_s,
    );
    if !clean {
        for d in &report.diagnostics {
            eprintln!("  {}:{}:{}: {}: {}", d.file, d.line, d.col, d.rule, d.message);
        }
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"lint_semantic_pass\",");
    let _ = writeln!(json, "  \"samples\": {SAMPLES},");
    let _ = writeln!(json, "  \"files_scanned\": {},", report.files_scanned);
    let _ = writeln!(json, "  \"manifests_scanned\": {},", report.manifests_scanned);
    let _ = writeln!(json, "  \"rules_run\": {},", RULES.len());
    let _ = writeln!(json, "  \"findings\": {},", report.diagnostics.len());
    let _ = writeln!(json, "  \"scan_median_s\": {median_s:.6},");
    let _ = writeln!(json, "  \"scan_max_s\": {max_s:.6},");
    let _ = writeln!(json, "  \"budget_s\": {BUDGET_S:.1},");
    let _ = writeln!(json, "  \"clean_pass\": {clean},");
    let _ = writeln!(json, "  \"budget_pass\": {under_budget},");
    let _ = writeln!(json, "  \"all_pass\": {all_pass}");
    json.push_str("}\n");

    let out = root.join("BENCH_lint.json");
    match std::fs::write(&out, &json) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", out.display()),
    }

    if check && !all_pass {
        eprintln!(
            "lint_bench --check FAILED: clean={clean} (findings must be 0), \
             under_budget={under_budget} (median {median_s:.3}s vs {BUDGET_S}s)"
        );
        std::process::exit(1);
    }
    if check {
        println!("lint_bench --check ok: workspace clean, scan within budget");
    }
}
