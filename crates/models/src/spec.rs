//! Paper-exact architecture specifications.
//!
//! These builders describe the **full-scale** architectures the paper
//! evaluates (VGG-19-BN and ResNet-18 on CIFAR-10, ResNet-50 and
//! WideResNet-50-2 on ImageNet, the 2-layer LSTM on WikiText-2, the 6-layer
//! Transformer on WMT'16) and their Pufferfish hybrids, as parameter/MAC
//! *ledgers* — no tensors are allocated, so the exact models of Tables 2–5
//! and 7 can be accounted for even though training at that scale is out of
//! reach for this CPU reproduction.
//!
//! Rank rules recovered from the paper's appendix tables and verified
//! against its reported totals:
//!
//! * VGG-19 hybrid (K = 10): convs 10–16 and fc17/fc18 factorized at
//!   `r = c_out/4` (Table 11); reproduces 20,560,330 → 8,370,634 exactly.
//! * ResNet-18 hybrid: all basic-block convs from the 2nd block of stage 1
//!   on, `r = c_out/4`, shortcuts untouched (Table 13). The paper's totals
//!   are 128 below ours for both variants — consistent with its count
//!   omitting the stem BatchNorm affine pair; we document the delta instead
//!   of replicating the omission.
//! * ResNet-50 / WideResNet-50-2 hybrids: only stage `conv5_x` factorized,
//!   `r = min(c_in, c_out)/4` per conv **including the downsample**
//!   (Tables 14–15). Savings reproduce the paper's Pufferfish ResNet-50
//!   total (15,202,344) exactly relative to the canonical vanilla count.
//! * LSTM / Transformer: reproduce Tables 2–3 exactly (85,962,278 →
//!   67,962,278 and 48,978,432 → 26,696,192).

use puffer_nn::complexity as cx;

/// Whether a spec describes the vanilla or the Pufferfish hybrid variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecVariant {
    /// The unmodified full-rank architecture.
    Vanilla,
    /// The Pufferfish hybrid with the paper's per-model rank plan.
    Pufferfish,
}

/// One ledger line: a named layer with its parameter and MAC counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerCount {
    /// Dotted layer name following the paper's appendix tables.
    pub name: String,
    /// Trainable parameters.
    pub params: u64,
    /// Forward-pass multiply–accumulates for one example (0 where the paper
    /// does not count them, e.g. embedding lookups).
    pub macs: u64,
}

/// A full model ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelSpec {
    /// Model name, e.g. `"vgg19-cifar10"`.
    pub name: String,
    /// Which variant this ledger describes.
    pub variant: SpecVariant,
    /// Per-layer lines.
    pub layers: Vec<LayerCount>,
}

impl ModelSpec {
    /// Total trainable parameters.
    pub fn params(&self) -> u64 {
        self.layers.iter().map(|l| l.params).sum()
    }

    /// Total forward MACs for one example.
    pub fn macs(&self) -> u64 {
        self.layers.iter().map(|l| l.macs).sum()
    }
}

struct Ledger {
    layers: Vec<LayerCount>,
}

impl Ledger {
    fn new() -> Self {
        Ledger { layers: Vec::new() }
    }

    fn line(&mut self, name: impl Into<String>, params: u64, macs: u64) {
        self.layers.push(LayerCount { name: name.into(), params, macs });
    }

    fn conv(&mut self, name: &str, c_in: u64, c_out: u64, k: u64, h: u64, w: u64) {
        self.line(name, cx::conv_params(c_in, c_out, k), cx::conv_macs(c_in, c_out, k, h, w));
    }

    #[allow(clippy::too_many_arguments)]
    fn conv_lr(&mut self, name: &str, c_in: u64, c_out: u64, k: u64, r: u64, h: u64, w: u64) {
        self.line(
            format!("{name}_u+v"),
            cx::conv_low_rank_params(c_in, c_out, k, r),
            cx::conv_low_rank_macs(c_in, c_out, k, r, h, w),
        );
    }

    fn bn(&mut self, name: &str, c: u64) {
        self.line(name, 2 * c, 0);
    }

    fn fc(&mut self, name: &str, m: u64, n: u64, bias: bool) {
        self.line(name, cx::fc_params(m, n) + if bias { n } else { 0 }, cx::fc_macs(m, n));
    }

    fn fc_lr(&mut self, name: &str, m: u64, n: u64, r: u64, bias: bool) {
        self.line(
            format!("{name}_u+v"),
            cx::fc_low_rank_params(m, n, r) + if bias { n } else { 0 },
            cx::fc_low_rank_macs(m, n, r),
        );
    }
}

/// VGG-19-BN for CIFAR-10 (appendix Table 11): 16 bias-free convs with BN,
/// classifier 512→512→512→10.
pub fn vgg19_cifar(variant: SpecVariant) -> ModelSpec {
    let stages: [&[u64]; 5] = [
        &[64, 64],
        &[128, 128],
        &[256, 256, 256, 256],
        &[512, 512, 512, 512],
        &[512, 512, 512, 512],
    ];
    let mut led = Ledger::new();
    let mut c_in = 3u64;
    let mut hw = 32u64;
    let mut idx = 1usize;
    for stage in stages {
        for &c_out in stage {
            let name = format!("layer{idx}.conv{idx}");
            // Hybrid: convs with index >= 10 are factorized at r = c_out/4.
            if variant == SpecVariant::Pufferfish && idx >= 10 {
                led.conv_lr(&name, c_in, c_out, 3, c_out / 4, hw, hw);
            } else {
                led.conv(&name, c_in, c_out, 3, hw, hw);
            }
            led.bn(&format!("layer{idx}.bn{idx}"), c_out);
            c_in = c_out;
            idx += 1;
        }
        hw /= 2; // max pool after each stage
    }
    // Classifier (Table 11): fc17 512→512, fc18 512→512, fc19 512→10.
    if variant == SpecVariant::Pufferfish {
        led.fc_lr("layer17.fc17", 512, 512, 128, true);
        led.fc_lr("layer18.fc18", 512, 512, 128, true);
    } else {
        led.fc("layer17.fc17", 512, 512, true);
        led.fc("layer18.fc18", 512, 512, true);
    }
    led.fc("layer19.fc19", 512, 10, true);
    ModelSpec { name: "vgg19-cifar10".into(), variant, layers: led.layers }
}

/// ResNet-18 for CIFAR-10 (appendix Table 13): 3×3 stem, four stages of two
/// basic blocks; hybrid factorizes everything from the 2nd block of stage 1
/// at `r = c_out/4`, leaving shortcut convs full-rank.
pub fn resnet18_cifar(variant: SpecVariant) -> ModelSpec {
    let mut led = Ledger::new();
    led.conv("conv1", 3, 64, 3, 32, 32);
    led.bn("bn1", 64);
    let widths = [64u64, 128, 256, 512];
    let mut c_in = 64u64;
    let mut hw = 32u64;
    for (stage, &c_out) in widths.iter().enumerate() {
        let stride = if stage == 0 { 1 } else { 2 };
        if stride == 2 {
            hw /= 2;
        }
        for block in 0..2 {
            let block_c_in = if block == 0 { c_in } else { c_out };
            // Hybrid rule: factorized from (stage 0, block 1) onward.
            let low_rank = variant == SpecVariant::Pufferfish && (stage > 0 || block >= 1);
            let prefix = format!("conv{}_x.block{block}", stage + 2);
            let r = c_out / 4;
            if low_rank {
                led.conv_lr(&format!("{prefix}.conv1"), block_c_in, c_out, 3, r, hw, hw);
            } else {
                led.conv(&format!("{prefix}.conv1"), block_c_in, c_out, 3, hw, hw);
            }
            led.bn(&format!("{prefix}.bn1"), c_out);
            if low_rank {
                led.conv_lr(&format!("{prefix}.conv2"), c_out, c_out, 3, r, hw, hw);
            } else {
                led.conv(&format!("{prefix}.conv2"), c_out, c_out, 3, hw, hw);
            }
            led.bn(&format!("{prefix}.bn2"), c_out);
            if block == 0 && block_c_in != c_out {
                // Shortcut 1×1 conv + BN; never factorized for ResNet-18.
                led.conv(&format!("{prefix}.shortcut"), block_c_in, c_out, 1, hw, hw);
                led.bn(&format!("{prefix}.shortcut_bn"), c_out);
            }
        }
        c_in = c_out;
    }
    led.fc("linear", 512, 10, true);
    ModelSpec { name: "resnet18-cifar10".into(), variant, layers: led.layers }
}

/// Bottleneck-ResNet builder shared by ResNet-50 and WideResNet-50-2
/// (appendix Tables 14–15). `width_factor = 1` gives ResNet-50;
/// `width_factor = 2` gives WideResNet-50-2. Hybrid factorizes only stage
/// `conv5_x` at `r = min(c_in, c_out)/4`, downsample included.
fn bottleneck_resnet(name: &str, width_factor: u64, variant: SpecVariant) -> ModelSpec {
    let mut led = Ledger::new();
    led.conv("conv1", 3, 64, 7, 112, 112);
    led.bn("bn1", 64);
    let stage_blocks = [3u64, 4, 6, 3];
    let base_widths = [64u64, 128, 256, 512];
    let mut c_in = 64u64;
    let mut hw = 56u64;
    for (stage, (&blocks, &base)) in stage_blocks.iter().zip(&base_widths).enumerate() {
        // Stride-2 sits on conv2 of the first block (torchvision layout):
        // that block's conv1 still runs at the incoming resolution.
        let hw_in = hw;
        if stage > 0 {
            hw /= 2;
        }
        let inner = base * width_factor;
        let c_out = base * 4; // expansion 4
        let low_rank_stage = variant == SpecVariant::Pufferfish && stage == 3;
        for block in 0..blocks {
            let block_c_in = if block == 0 { c_in } else { c_out };
            let conv1_hw = if block == 0 { hw_in } else { hw };
            let prefix = format!("conv{}_x.block{block}", stage + 2);
            let rank = |a: u64, b: u64| a.min(b) / 4;
            if low_rank_stage {
                led.conv_lr(
                    &format!("{prefix}.conv1"),
                    block_c_in,
                    inner,
                    1,
                    rank(block_c_in, inner),
                    conv1_hw,
                    conv1_hw,
                );
            } else {
                led.conv(&format!("{prefix}.conv1"), block_c_in, inner, 1, conv1_hw, conv1_hw);
            }
            led.bn(&format!("{prefix}.bn1"), inner);
            if low_rank_stage {
                led.conv_lr(
                    &format!("{prefix}.conv2"),
                    inner,
                    inner,
                    3,
                    rank(inner, inner),
                    hw,
                    hw,
                );
            } else {
                led.conv(&format!("{prefix}.conv2"), inner, inner, 3, hw, hw);
            }
            led.bn(&format!("{prefix}.bn2"), inner);
            if low_rank_stage {
                led.conv_lr(
                    &format!("{prefix}.conv3"),
                    inner,
                    c_out,
                    1,
                    rank(inner, c_out),
                    hw,
                    hw,
                );
            } else {
                led.conv(&format!("{prefix}.conv3"), inner, c_out, 1, hw, hw);
            }
            led.bn(&format!("{prefix}.bn3"), c_out);
            if block == 0 {
                // Projection shortcut (factorized in conv5_x per Table 14).
                if low_rank_stage {
                    led.conv_lr(
                        &format!("{prefix}.downsample"),
                        block_c_in,
                        c_out,
                        1,
                        rank(block_c_in, c_out),
                        hw,
                        hw,
                    );
                } else {
                    led.conv(&format!("{prefix}.downsample"), block_c_in, c_out, 1, hw, hw);
                }
                led.bn(&format!("{prefix}.downsample_bn"), c_out);
            }
        }
        c_in = c_out;
    }
    led.fc("fc", 2048, 1000, true);
    ModelSpec { name: name.into(), variant, layers: led.layers }
}

/// ResNet-50 for ImageNet (appendix Table 14).
pub fn resnet50_imagenet(variant: SpecVariant) -> ModelSpec {
    bottleneck_resnet("resnet50-imagenet", 1, variant)
}

/// WideResNet-50-2 for ImageNet (appendix Table 15).
pub fn wide_resnet50_2_imagenet(variant: SpecVariant) -> ModelSpec {
    bottleneck_resnet("wide-resnet50-2-imagenet", 2, variant)
}

/// 2-layer tied-embedding LSTM for WikiText-2 (appendix Table 12):
/// vocab 33,278, embedding/hidden 1500, per-gate factorization at r = 375.
pub fn lstm_wikitext2(variant: SpecVariant) -> ModelSpec {
    let (vocab, d, h, r) = (33_278u64, 1_500u64, 1_500u64, 375u64);
    let mut led = Ledger::new();
    // Tied embedding: counted once, no MACs (lookup table, per Table 2 note).
    led.line("encoder.weight (tied)", vocab * d, 0);
    for l in 0..2 {
        match variant {
            SpecVariant::Vanilla => {
                led.line(format!("lstm{l}"), cx::lstm_params(d, h), cx::lstm_macs(d, h));
            }
            SpecVariant::Pufferfish => {
                led.line(
                    format!("lstm{l} (low-rank)"),
                    cx::lstm_low_rank_params(d, h, r),
                    cx::lstm_low_rank_macs(d, h, r),
                );
            }
        }
    }
    led.line("decoder.bias", vocab, 0);
    ModelSpec { name: "lstm-wikitext2".into(), variant, layers: led.layers }
}

/// 6-layer encoder/decoder Transformer for WMT'16 (appendix Tables 16–17):
/// shared embedding (src = tgt, tied output), `p = 8` heads,
/// `d_model = 512`, FFN 2048, rank 128; first encoder layer and first
/// decoder layer stay full-rank.
pub fn transformer_wmt16(variant: SpecVariant) -> ModelSpec {
    let (vocab, dm, r) = (9_521u64, 512u64, 128u64);
    let n_seq = 32u64; // nominal sequence length for MAC accounting
    let (p, d) = (8u64, 64u64);
    let mut led = Ledger::new();
    led.line("embedding (shared, tied)", vocab * dm, 0);
    let attn = |led: &mut Ledger, name: &str, low: bool| {
        if low {
            // Concatenated-head factorization: 4 matrices at r(dm+dm).
            led.line(
                format!("{name} (low-rank)"),
                4 * cx::fc_low_rank_params(dm, dm, r),
                cx::attention_low_rank_macs(p, d, r, n_seq) / n_seq,
            );
        } else {
            led.line(
                name.to_string(),
                cx::attention_params(p, d),
                cx::attention_macs(p, d, n_seq) / n_seq,
            );
        }
    };
    let ffn = |led: &mut Ledger, name: &str, low: bool| {
        let bias = 4 * dm + dm;
        if low {
            led.line(
                format!("{name} (low-rank)"),
                cx::ffn_low_rank_params(p, d, r) + bias,
                cx::ffn_low_rank_macs(p, d, r, n_seq) / n_seq,
            );
        } else {
            led.line(
                name.to_string(),
                cx::ffn_params(p, d) + bias,
                cx::ffn_macs(p, d, n_seq) / n_seq,
            );
        }
    };
    let ln = |led: &mut Ledger, name: &str| led.line(name.to_string(), 2 * dm, 0);
    for l in 0..6 {
        let low = variant == SpecVariant::Pufferfish && l >= 1;
        attn(&mut led, &format!("encoder{l}.self_attention"), low);
        ln(&mut led, &format!("encoder{l}.ln1"));
        ffn(&mut led, &format!("encoder{l}.ffn"), low);
        ln(&mut led, &format!("encoder{l}.ln2"));
    }
    ln(&mut led, "encoder.final_ln");
    for l in 0..6 {
        let low = variant == SpecVariant::Pufferfish && l >= 1;
        attn(&mut led, &format!("decoder{l}.self_attention"), low);
        ln(&mut led, &format!("decoder{l}.ln1"));
        attn(&mut led, &format!("decoder{l}.enc_attention"), low);
        ln(&mut led, &format!("decoder{l}.ln2"));
        ffn(&mut led, &format!("decoder{l}.ffn"), low);
        ln(&mut led, &format!("decoder{l}.ln3"));
    }
    ln(&mut led, "decoder.final_ln");
    ModelSpec { name: "transformer-wmt16".into(), variant, layers: led.layers }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg19_matches_paper_exactly() {
        // Table 4: 20,560,330 → 8,370,634.
        assert_eq!(vgg19_cifar(SpecVariant::Vanilla).params(), 20_560_330);
        assert_eq!(vgg19_cifar(SpecVariant::Pufferfish).params(), 8_370_634);
    }

    #[test]
    fn vgg19_macs_match_paper_order() {
        // Table 4 reports 0.4 G → 0.29 G MACs.
        let v = vgg19_cifar(SpecVariant::Vanilla).macs() as f64 / 1e9;
        let p = vgg19_cifar(SpecVariant::Pufferfish).macs() as f64 / 1e9;
        assert!((v - 0.4).abs() < 0.02, "vanilla MACs {v} G");
        assert!((p - 0.29).abs() < 0.02, "pufferfish MACs {p} G");
    }

    #[test]
    fn resnet18_matches_paper_modulo_stem_bn() {
        // Table 4: 11,173,834 → 3,336,138; the paper omits the stem BN
        // affine pair (128 params) — see module docs.
        assert_eq!(resnet18_cifar(SpecVariant::Vanilla).params(), 11_173_834 + 128);
        assert_eq!(resnet18_cifar(SpecVariant::Pufferfish).params(), 3_336_138 + 128);
    }

    #[test]
    fn resnet18_macs_match_paper_order() {
        // Table 4: 0.56 G → 0.22 G.
        let v = resnet18_cifar(SpecVariant::Vanilla).macs() as f64 / 1e9;
        let p = resnet18_cifar(SpecVariant::Pufferfish).macs() as f64 / 1e9;
        assert!((v - 0.56).abs() < 0.03, "vanilla MACs {v} G");
        assert!((p - 0.22).abs() < 0.03, "pufferfish MACs {p} G");
    }

    #[test]
    fn resnet50_pufferfish_matches_paper_exactly() {
        // Table 7: Pufferfish ResNet-50 = 15,202,344. The canonical vanilla
        // count is 25,557,032 (the paper's Table 7 lists 25,610,205; the
        // ~53k delta is unexplained there — our ledger matches torchvision).
        let vanilla = resnet50_imagenet(SpecVariant::Vanilla).params();
        assert_eq!(vanilla, 25_557_032);
        assert_eq!(resnet50_imagenet(SpecVariant::Pufferfish).params(), 15_202_344);
        // Compression ratio ≈ 1.68× (paper's limitation section).
        let ratio = vanilla as f64 / 15_202_344.0;
        assert!((ratio - 1.68).abs() < 0.02, "ratio {ratio}");
    }

    #[test]
    fn resnet50_macs_match_paper_order() {
        // Table 7: 4.12 G → 3.6 G.
        let v = resnet50_imagenet(SpecVariant::Vanilla).macs() as f64 / 1e9;
        let p = resnet50_imagenet(SpecVariant::Pufferfish).macs() as f64 / 1e9;
        assert!((v - 4.12).abs() < 0.1, "vanilla MACs {v} G");
        assert!((p - 3.6).abs() < 0.15, "pufferfish MACs {p} G");
    }

    #[test]
    fn wide_resnet_compression_matches_limitations_section() {
        // Paper §4: Pufferfish finds a 1.72× smaller WideResNet-50-2.
        let v = wide_resnet50_2_imagenet(SpecVariant::Vanilla).params();
        let p = wide_resnet50_2_imagenet(SpecVariant::Pufferfish).params();
        let ratio = v as f64 / p as f64;
        assert_eq!(v, 68_883_240); // torchvision wide_resnet50_2
        assert!((ratio - 1.72).abs() < 0.03, "ratio {ratio}");
    }

    #[test]
    fn lstm_matches_paper_exactly() {
        // Table 2: 85,962,278 → 67,962,278.
        assert_eq!(lstm_wikitext2(SpecVariant::Vanilla).params(), 85_962_278);
        assert_eq!(lstm_wikitext2(SpecVariant::Pufferfish).params(), 67_962_278);
    }

    #[test]
    fn lstm_macs_ratio_is_two() {
        // Table 2 reports 18M → 9M MACs (per layer per token): the ratio is 2×.
        let v = lstm_wikitext2(SpecVariant::Vanilla).macs();
        let p = lstm_wikitext2(SpecVariant::Pufferfish).macs();
        assert_eq!(v, 2 * p);
        assert_eq!(v / 2, 18_000_000); // per-layer figure the paper reports
    }

    #[test]
    fn transformer_matches_paper_exactly() {
        // Table 3: 48,978,432 → 26,696,192.
        assert_eq!(transformer_wmt16(SpecVariant::Vanilla).params(), 48_978_432);
        assert_eq!(transformer_wmt16(SpecVariant::Pufferfish).params(), 26_696_192);
    }

    #[test]
    fn pufferfish_never_more_macs() {
        for (v, p) in [
            (vgg19_cifar(SpecVariant::Vanilla), vgg19_cifar(SpecVariant::Pufferfish)),
            (resnet18_cifar(SpecVariant::Vanilla), resnet18_cifar(SpecVariant::Pufferfish)),
            (resnet50_imagenet(SpecVariant::Vanilla), resnet50_imagenet(SpecVariant::Pufferfish)),
        ] {
            assert!(p.macs() < v.macs(), "{}", v.name);
            assert!(p.params() < v.params(), "{}", v.name);
        }
    }

    #[test]
    fn ledgers_have_no_empty_lines() {
        for spec in [
            vgg19_cifar(SpecVariant::Vanilla),
            resnet18_cifar(SpecVariant::Pufferfish),
            resnet50_imagenet(SpecVariant::Pufferfish),
            lstm_wikitext2(SpecVariant::Vanilla),
            transformer_wmt16(SpecVariant::Pufferfish),
        ] {
            assert!(!spec.layers.is_empty());
            assert!(spec.layers.iter().all(|l| !l.name.is_empty()));
        }
    }
}
