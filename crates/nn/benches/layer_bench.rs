//! Micro-benchmarks: vanilla vs factorized layer forward+backward — the
//! per-layer view behind the paper's Table 6 runtime mini-benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use puffer_nn::conv::{Conv2d, LowRankConv2d};
use puffer_nn::layer::{Layer, Mode};
use puffer_nn::linear::{Linear, LowRankLinear};
use puffer_tensor::Tensor;

fn bench_linear(c: &mut Criterion) {
    let mut group = c.benchmark_group("fc_512x512");
    let x = Tensor::randn(&[32, 512], 1.0, 1);
    let g = Tensor::randn(&[32, 512], 1.0, 2);
    let mut dense = Linear::new(512, 512, false, 3).unwrap();
    group.bench_function("vanilla", |b| {
        b.iter(|| {
            let _ = dense.forward(&x, Mode::Train);
            let _ = dense.backward(&g);
        })
    });
    let mut lr = LowRankLinear::new(512, 512, 128, false, 4).unwrap();
    group.bench_function("low_rank_r128", |b| {
        b.iter(|| {
            let _ = lr.forward(&x, Mode::Train);
            let _ = lr.backward(&g);
        })
    });
    group.finish();
}

fn bench_conv(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv_128c_8x8");
    let x = Tensor::randn(&[8, 128, 8, 8], 1.0, 5);
    let g = Tensor::randn(&[8, 128, 8, 8], 1.0, 6);
    let mut dense = Conv2d::new(128, 128, 3, 1, 1, false, 7).unwrap();
    group.bench_function("vanilla", |b| {
        b.iter(|| {
            let _ = dense.forward(&x, Mode::Train);
            let _ = dense.backward(&g);
        })
    });
    let mut lr = LowRankConv2d::new(128, 128, 3, 1, 1, 32, 8).unwrap();
    group.bench_function("low_rank_r32", |b| {
        b.iter(|| {
            let _ = lr.forward(&x, Mode::Train);
            let _ = lr.backward(&g);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_linear, bench_conv);
criterion_main!(benches);
