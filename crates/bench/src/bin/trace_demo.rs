//! Emits a loadable Chrome trace of a faulty 4-worker hybrid training
//! run — the observability quick-start.
//!
//! Usage:
//!
//! ```text
//! PUFFER_TRACE=trace.json cargo run --release -p puffer-bench --bin trace_demo
//! ```
//!
//! Open the file in `chrome://tracing` or <https://ui.perfetto.dev>. With
//! neither `PUFFER_TRACE` nor `PUFFER_METRICS` set, the trace and the
//! JSONL metrics land in `results/trace_demo.json` and
//! `results/trace_demo_metrics.jsonl`.

use puffer_bench::probe_demo::run_trace_demo;
use puffer_bench::results_dir;
use puffer_probe::ProbeConfig;

fn main() {
    if !puffer_probe::init_from_env() {
        let dir = results_dir();
        puffer_probe::configure(ProbeConfig {
            trace_path: Some(dir.join("trace_demo.json")),
            metrics_path: Some(dir.join("trace_demo_metrics.jsonl")),
            collect: false,
        });
    }

    let report = run_trace_demo();
    let b = report.outcome.breakdown;
    println!(
        "faulty hybrid run: {} workers, {} steps, {} survivors",
        report.workers, report.steps, report.outcome.faults.survivors
    );
    println!(
        "breakdown: compute {:.3}ms  encode {:.3}ms  comm {:.3}ms  decode {:.3}ms  ({} skipped)",
        b.compute.as_secs_f64() * 1e3,
        b.encode.as_secs_f64() * 1e3,
        b.comm.as_secs_f64() * 1e3,
        b.decode.as_secs_f64() * 1e3,
        b.skipped_steps
    );
    let f = &report.outcome.faults;
    println!(
        "faults absorbed: {} crashed, {} corrupted, {} stale, {} skipped, {} lost contributions",
        f.crashed.len(),
        f.corrupted_messages,
        f.stale_messages,
        f.skipped_steps.len(),
        f.lost_contributions
    );

    match puffer_probe::flush() {
        Ok(rep) => {
            if let Some(p) = rep.trace_path {
                println!(
                    "wrote {} ({} events) — open in chrome://tracing",
                    p.display(),
                    rep.trace_events
                );
            }
            if let Some(p) = rep.metrics_path {
                println!("wrote {} ({} rows + counters)", p.display(), rep.metrics_rows);
            }
            if rep.dropped_events > 0 {
                eprintln!("warning: {} events dropped at the buffer cap", rep.dropped_events);
            }
        }
        Err(e) => eprintln!("warning: probe flush failed: {e}"),
    }
}
