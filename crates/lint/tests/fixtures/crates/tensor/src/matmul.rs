//! Seeded violations for `no-vec-alloc-in-kernel`: this fixture path ends
//! with `crates/tensor/src/matmul.rs`, so the kernel-module scope applies.

// Decoy: the list form builds small fixed collections (probe span attrs,
// error shapes) and is allowed.
fn decoy_list(m: usize) -> Vec<(&'static str, usize)> {
    vec![("m", m), ("n", 2)]
}

// Decoy: a deliberate, visible exemption.
fn suppressed(n: usize) -> Vec<f32> {
    // lint:allow(no-vec-alloc-in-kernel) — one-shot cold-path setup buffer
    vec![0.0; n]
}

fn violation_repeat(n: usize) -> Vec<f32> {
    vec![0.0f32; n]
}

fn violation_with_capacity(n: usize) -> Vec<f32> {
    Vec::with_capacity(n)
}

#[cfg(test)]
mod tests {
    // Test scratch may allocate however it likes.
    fn fine_in_tests() {
        let _ = vec![0.0f32; 8];
    }
}
