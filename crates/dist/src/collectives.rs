//! Executable binary-tree and two-level hierarchical allreduces — the
//! algorithms whose closed forms [`crate::cost`] prices behind
//! [`crate::cost::CollectiveAlgo`], run for real (in memory) the way
//! [`crate::ring`] executes the ring.
//!
//! * **Tree**: reduce up a binary tree (`⌈log₂ p⌉` levels, each moving the
//!   whole buffer), broadcast the result back down — `2·⌈log₂ p⌉` steps of
//!   `n` bytes each, matching `2·⌈log₂ p⌉·(α + n·β)` exactly.
//! * **Hierarchical**: nodes are split into `G = ⌈p/g⌉` groups of `g`
//!   consecutive ranks. Each group tree-reduces into its leader (rank 0 of
//!   the group), the `G` leaders run a ring allreduce, and each leader
//!   tree-broadcasts the result back through its group — matching
//!   `2·⌈log₂ g⌉·(α + n·β) + ring(G, n)`.
//!
//! Both return a [`RingTrace`] (per-step concurrent message sizes), so the
//! same `trace.time(profile)` evaluation used for the ring validates the
//! closed forms against an actual execution.

use crate::cost::hier_group;
use crate::ring::{ring_allreduce, RingTrace};

/// Elementwise `dst += src` over one simulated message.
fn add_into(dst: &mut [f32], src: &[f32]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d += *s;
    }
}

/// The power-of-two strides of a `⌈log₂ p⌉`-level binary tree over `p`
/// ranks, smallest first.
fn tree_strides(p: usize) -> Vec<usize> {
    let mut strides = Vec::new();
    let mut s = 1;
    while s < p {
        strides.push(s);
        s *= 2;
    }
    strides
}

/// One reduce-up level at `stride` over `buffers[base..base + len]`:
/// every rank whose offset is a multiple of `2·stride` absorbs its
/// partner at `offset + stride` (when that partner exists).
fn reduce_level(buffers: &mut [Vec<f32>], base: usize, len: usize, stride: usize) {
    let mut i = 0;
    while i + stride < len {
        let src = buffers[base + i + stride].clone();
        add_into(&mut buffers[base + i], &src);
        i += 2 * stride;
    }
}

/// One broadcast-down level at `stride`: the inverse of [`reduce_level`],
/// copying each parent's buffer to its partner.
fn broadcast_level(buffers: &mut [Vec<f32>], base: usize, len: usize, stride: usize) {
    let mut i = 0;
    while i + stride < len {
        let src = buffers[base + i].clone();
        buffers[base + i + stride].copy_from_slice(&src);
        i += 2 * stride;
    }
}

/// Runs a real binary-tree allreduce over per-node buffers (all must have
/// equal length). On return every buffer holds the element-wise **sum**
/// across nodes; the returned trace records the per-step traffic
/// (`2·⌈log₂ p⌉` steps of the full buffer).
///
/// # Panics
///
/// Panics if buffers are empty or have mismatched lengths.
pub fn tree_allreduce(buffers: &mut [Vec<f32>]) -> RingTrace {
    let p = buffers.len();
    assert!(p > 0, "need at least one node");
    let n = buffers[0].len();
    assert!(buffers.iter().all(|b| b.len() == n), "buffer lengths must match");
    if p == 1 {
        return RingTrace { step_bytes: Vec::new() };
    }

    let strides = tree_strides(p);
    let mut trace = Vec::with_capacity(2 * strides.len());
    for &s in &strides {
        reduce_level(buffers, 0, p, s);
        trace.push(n * 4);
    }
    for &s in strides.iter().rev() {
        broadcast_level(buffers, 0, p, s);
        trace.push(n * 4);
    }
    RingTrace { step_bytes: trace }
}

/// Runs a real two-level hierarchical allreduce: intra-group tree reduce
/// into each group leader, ring allreduce across the `G` leaders, then an
/// intra-group tree broadcast. `group` is the intra-group size (`0` = auto
/// `⌈√p⌉`; clamped to `1..=p` like [`hier_group`]). On return every buffer
/// holds the element-wise **sum** across all nodes.
///
/// The trace concatenates the intra reduce levels, the leader ring's
/// steps, and the intra broadcast levels — groups work concurrently, so
/// each intra level is one step of `n` bytes.
///
/// # Panics
///
/// Panics if buffers are empty or have mismatched lengths.
pub fn hier_allreduce(buffers: &mut [Vec<f32>], group: usize) -> RingTrace {
    let p = buffers.len();
    assert!(p > 0, "need at least one node");
    let n = buffers[0].len();
    assert!(buffers.iter().all(|b| b.len() == n), "buffer lengths must match");
    if p == 1 {
        return RingTrace { step_bytes: Vec::new() };
    }

    let g = hier_group(p, group);
    let groups = p.div_ceil(g);
    let group_bounds = |k: usize| -> (usize, usize) { (k * g, (k * g + g).min(p)) };

    // Intra levels are sized by the *largest* group: a short last group
    // finishes early but the level still costs one full-buffer exchange.
    let strides = tree_strides(g);
    let mut trace = Vec::with_capacity(2 * strides.len());

    for &s in &strides {
        for k in 0..groups {
            let (base, end) = group_bounds(k);
            reduce_level(buffers, base, end - base, s);
        }
        trace.push(n * 4);
    }

    // Ring across the group leaders (rank 0 of each group).
    if groups > 1 {
        let mut leaders: Vec<Vec<f32>> =
            (0..groups).map(|k| buffers[group_bounds(k).0].clone()).collect();
        let ring = ring_allreduce(&mut leaders);
        for (k, reduced) in leaders.into_iter().enumerate() {
            buffers[group_bounds(k).0] = reduced;
        }
        trace.extend(ring.step_bytes);
    }

    for &s in strides.iter().rev() {
        for k in 0..groups {
            let (base, end) = group_bounds(k);
            broadcast_level(buffers, base, end - base, s);
        }
        trace.push(n * 4);
    }
    RingTrace { step_bytes: trace }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{ceil_log2, ClusterProfile};

    fn random_buffers(p: usize, n: usize) -> (Vec<Vec<f32>>, Vec<f32>) {
        let buffers: Vec<Vec<f32>> = (0..p)
            .map(|i| (0..n).map(|k| ((i * 31 + k * 7) % 13) as f32 - 6.0).collect())
            .collect();
        let mut expected = vec![0.0f32; n];
        for b in &buffers {
            for (e, v) in expected.iter_mut().zip(b) {
                *e += v;
            }
        }
        (buffers, expected)
    }

    #[test]
    fn tree_computes_exact_sum() {
        for (p, n) in [(2usize, 8usize), (3, 10), (4, 16), (5, 7), (7, 5), (8, 64), (13, 9)] {
            let (mut buffers, expected) = random_buffers(p, n);
            let _ = tree_allreduce(&mut buffers);
            for (i, b) in buffers.iter().enumerate() {
                assert_eq!(b, &expected, "node {i} of p={p}, n={n}");
            }
        }
    }

    #[test]
    fn tree_step_count_and_time_match_closed_form() {
        for p in 2..=16usize {
            let n = 96;
            let (mut buffers, _) = random_buffers(p, n);
            let trace = tree_allreduce(&mut buffers);
            assert_eq!(trace.steps(), 2 * ceil_log2(p) as usize, "p={p}");
            let profile = ClusterProfile::p3_like(p);
            let traced = trace.time(&profile).as_secs_f64();
            let closed = profile.tree_allreduce(n * 4).as_secs_f64();
            assert!((traced - closed).abs() < closed * 1e-9, "p={p}: {traced} vs {closed}");
        }
    }

    #[test]
    fn hier_computes_exact_sum_for_every_group_size() {
        for (p, n) in [(4usize, 12usize), (6, 9), (8, 16), (9, 10), (12, 24), (16, 8)] {
            for group in 0..=p {
                let (mut buffers, expected) = random_buffers(p, n);
                let _ = hier_allreduce(&mut buffers, group);
                for (i, b) in buffers.iter().enumerate() {
                    assert_eq!(b, &expected, "node {i} of p={p}, n={n}, g={group}");
                }
            }
        }
    }

    #[test]
    fn hier_trace_time_matches_closed_form() {
        // n divisible by the leader count G so the leader ring's chunks are
        // even (the same divisibility the ring's own closed-form test uses).
        for (p, group) in [(8usize, 4usize), (8, 2), (16, 4), (12, 3), (9, 3), (16, 0)] {
            let g = hier_group(p, group);
            let groups = p.div_ceil(g);
            let n = groups * 64;
            let (mut buffers, _) = random_buffers(p, n);
            let trace = hier_allreduce(&mut buffers, group);
            let profile = ClusterProfile::p3_like(p);
            let traced = trace.time(&profile).as_secs_f64();
            let closed = profile.hier_allreduce(n * 4, group).as_secs_f64();
            assert!(
                (traced - closed).abs() < closed * 1e-6,
                "p={p} g={group}: traced {traced} vs closed {closed}"
            );
        }
    }

    #[test]
    fn hier_group_one_is_a_pure_ring() {
        let (mut a, _) = random_buffers(6, 18);
        let (mut b, _) = random_buffers(6, 18);
        let hier = hier_allreduce(&mut a, 1);
        let ring = ring_allreduce(&mut b);
        assert_eq!(hier, ring);
        assert_eq!(a, b);
    }

    #[test]
    fn hier_group_p_is_a_pure_tree() {
        let (mut a, _) = random_buffers(8, 16);
        let (mut b, _) = random_buffers(8, 16);
        let hier = hier_allreduce(&mut a, 8);
        let tree = tree_allreduce(&mut b);
        assert_eq!(hier, tree);
        assert_eq!(a, b);
    }

    #[test]
    fn single_node_is_identity() {
        let mut t = vec![vec![1.0, 2.0]];
        assert_eq!(tree_allreduce(&mut t).steps(), 0);
        assert_eq!(t[0], vec![1.0, 2.0]);
        let mut h = vec![vec![3.0]];
        assert_eq!(hier_allreduce(&mut h, 0).steps(), 0);
        assert_eq!(h[0], vec![3.0]);
    }

    #[test]
    #[should_panic(expected = "lengths must match")]
    fn mismatched_lengths_panic() {
        let mut buffers = vec![vec![1.0], vec![1.0, 2.0]];
        let _ = tree_allreduce(&mut buffers);
    }
}
