//! Acceptance tests for elastic membership: mid-run joins with catch-up,
//! voluntary leaves, crash + rejoin, resume under a different configured
//! fleet width, epoch-attributed audit logs, and hetero re-pricing of the
//! live member set.
//!
//! Churn is scheduled from a [`MembershipPlan`] and faults from a seeded
//! [`FaultPlan`], so every scenario is deterministic.

use puffer_compress::none::NoCompression;
use puffer_dist::checkpoint::{CheckpointPolicy, DistCheckpoint};
use puffer_dist::cost::{ClusterProfile, HeteroProfile};
use puffer_dist::fault::FaultPlan;
use puffer_dist::membership::{MemberEventKind, MembershipPlan};
use puffer_dist::trainer::{
    train_data_parallel, train_data_parallel_with, DistConfig, RecoveryPolicy, RunOptions,
};
use puffer_nn::activation::Relu;
use puffer_nn::linear::Linear;
use puffer_nn::Sequential;
use puffer_tensor::Tensor;
use std::time::Duration;

fn mlp(seed_base: u64) -> Sequential {
    Sequential::new(vec![
        Box::new(Linear::new(6, 16, true, seed_base).unwrap()),
        Box::new(Relu::new()),
        Box::new(Linear::new(16, 3, true, seed_base + 1).unwrap()),
    ])
}

/// Batches whose rows are all identical within a batch: every member shard
/// then yields the same mean gradient *mathematically*, so the aggregated
/// update is invariant to the member count up to floating-point summation
/// order (a k-row shard sums k identical per-row gradients sequentially,
/// which rounds differently for different k). A churned run on uniform
/// batches must therefore track a clean static run to last-ulp
/// accumulation error — `REL_TOL` — while the *same* schedule re-run must
/// be bitwise identical.
fn uniform_batches(n_batches: usize, batch: usize) -> Vec<(Tensor, Vec<usize>)> {
    (0..n_batches)
        .map(|b| {
            let row = Tensor::randn(&[1, 6], 1.0, 300 + b as u64);
            let data: Vec<f32> = row.as_slice().repeat(batch);
            let x = Tensor::from_vec(data, &[batch, 6]).unwrap();
            (x, vec![b % 3; batch])
        })
        .collect()
}

/// Ordinary batches with distinct rows (shards differ across members).
fn mixed_batches(n_batches: usize, batch: usize) -> Vec<(Tensor, Vec<usize>)> {
    (0..n_batches)
        .map(|b| {
            let x = Tensor::randn(&[batch, 6], 1.0, 100 + b as u64);
            let labels = (0..batch).map(|i| (i + b) % 3).collect();
            (x, labels)
        })
        .collect()
}

fn zero_cost_cfg(workers: usize) -> DistConfig {
    DistConfig {
        workers,
        lr: 0.05,
        momentum: 0.9,
        weight_decay: 1e-4,
        profile: ClusterProfile::zero_cost(workers),
    }
}

fn quick_recovery() -> RecoveryPolicy {
    RecoveryPolicy { step_timeout: Duration::from_millis(80), max_retries: 2, backoff: 2.0 }
}

/// Divergence budget for churned-vs-static comparisons on uniform batches:
/// a few ulps of per-step summation-order error compounded over the run.
/// A catch-up bug (wrong params/momentum/shard) shows up at O(1e-2).
const REL_TOL: f32 = 1e-4;

fn max_rel_error(a: &[Tensor], b: &[Tensor]) -> f32 {
    assert_eq!(a.len(), b.len());
    let mut worst = 0.0f32;
    for (x, y) in a.iter().zip(b) {
        for (&u, &v) in x.as_slice().iter().zip(y.as_slice()) {
            let denom = u.abs().max(v.abs()).max(1e-6);
            worst = worst.max((u - v).abs() / denom);
        }
    }
    worst
}

fn scratch_dir(name: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("puffer_member_suite_{}_{name}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn mid_run_join_catches_up_on_uniform_batches() {
    // Worker 2 joins a 2-worker run at step 2 (admitted from the leader's
    // in-memory snapshot — no checkpoint directory configured). On uniform
    // batches the update stream is member-count invariant up to summation
    // order, so the grown run must track the static run within REL_TOL —
    // and a rerun of the same churn schedule must be bitwise identical.
    let batches = uniform_batches(6, 8);
    let cfg = zero_cost_cfg(2);
    let mut clean_c = NoCompression::new();
    let clean = train_data_parallel(|_| mlp(21), &batches, &mut clean_c, &cfg).unwrap();

    let opts = RunOptions {
        membership: MembershipPlan::none().with_join(2, 2),
        recovery: quick_recovery(),
        ..RunOptions::default()
    };
    let mut comp = NoCompression::new();
    let out = train_data_parallel_with(|_| mlp(21), &batches, &mut comp, &cfg, &opts).unwrap();
    let mut rerun_c = NoCompression::new();
    let rerun = train_data_parallel_with(|_| mlp(21), &batches, &mut rerun_c, &cfg, &opts).unwrap();

    let rel = max_rel_error(&out.final_params, &clean.final_params);
    assert!(rel <= REL_TOL, "joiner must not perturb the update stream: rel {rel:e}");
    assert_eq!(out.final_params, rerun.final_params, "same churn schedule must be bitwise");
    assert_eq!(out.faults.survivors, 3, "the joiner must survive to the end");
    assert_eq!(out.step_losses.len(), 6);

    // Audit log: exactly one Join with full attribution, epoch bumped once.
    assert_eq!(out.membership.len(), 1);
    let ev = out.membership[0];
    assert_eq!(ev.kind, MemberEventKind::Join);
    assert_eq!(ev.worker, 2);
    assert_eq!(ev.step, 2);
    assert_eq!(ev.epoch, 1);
    assert_eq!(out.final_epoch, 1);
}

#[test]
fn voluntary_leave_shrinks_the_fleet_without_divergence() {
    let batches = uniform_batches(5, 8);
    let cfg = zero_cost_cfg(3);
    let mut clean_c = NoCompression::new();
    let clean = train_data_parallel(|_| mlp(31), &batches, &mut clean_c, &cfg).unwrap();

    let opts = RunOptions {
        membership: MembershipPlan::none().with_leave(1, 3),
        recovery: quick_recovery(),
        ..RunOptions::default()
    };
    let mut comp = NoCompression::new();
    let out = train_data_parallel_with(|_| mlp(31), &batches, &mut comp, &cfg, &opts).unwrap();

    let rel = max_rel_error(&out.final_params, &clean.final_params);
    assert!(rel <= REL_TOL, "leave must not perturb the update stream: rel {rel:e}");
    assert_eq!(out.faults.survivors, 2);
    assert!(out.faults.crashed.is_empty(), "a voluntary leave is not a crash");
    assert_eq!(out.membership.len(), 1);
    assert_eq!(out.membership[0].kind, MemberEventKind::Leave);
    assert_eq!(out.membership[0].worker, 1);
    assert_eq!(out.membership[0].step, 3);
}

#[test]
fn crashed_worker_rejoins_with_masked_crash_schedule() {
    // Worker 1 crashes at step 1 and rejoins at step 3. The rejoined
    // incarnation must NOT re-execute the step-1 crash entry (its fault
    // schedule is masked from its entry step on), and the audit log must
    // distinguish the Rejoin from a fresh Join.
    let batches = uniform_batches(6, 8);
    let cfg = zero_cost_cfg(2);
    let mut clean_c = NoCompression::new();
    let clean = train_data_parallel(|_| mlp(41), &batches, &mut clean_c, &cfg).unwrap();

    let opts = RunOptions {
        faults: FaultPlan::new(9).with_crash(1, 1),
        membership: MembershipPlan::none().with_join(1, 3),
        recovery: quick_recovery(),
        ..RunOptions::default()
    };
    let mut comp = NoCompression::new();
    let out = train_data_parallel_with(|_| mlp(41), &batches, &mut comp, &cfg, &opts).unwrap();

    let rel = max_rel_error(&out.final_params, &clean.final_params);
    assert!(rel <= REL_TOL, "rejoin must not perturb the update stream: rel {rel:e}");
    assert_eq!(out.faults.survivors, 2, "the rejoined worker must finish the run");
    assert_eq!(out.faults.crashed, vec![(1, 1)]);

    let kinds: Vec<_> = out.membership.iter().map(|e| e.kind).collect();
    assert_eq!(kinds, vec![MemberEventKind::Crash, MemberEventKind::Rejoin]);
    // Epochs attribute each transition and increase monotonically.
    assert!(out.membership.iter().zip(1u64..).all(|(e, i)| e.epoch == i));
    assert_eq!(out.final_epoch, 2);
}

#[test]
fn join_admission_waits_for_a_periodic_checkpoint_boundary() {
    // With checkpointing every 2 steps, a join scheduled at step 2 is
    // admitted exactly at the boundary and catches up from the on-disk
    // PUFT file — the checkpoint written there must record the grown
    // member set and bumped epoch.
    let dir = scratch_dir("join_ckpt");
    let batches = uniform_batches(6, 8);
    let cfg = zero_cost_cfg(2);
    let opts = RunOptions {
        membership: MembershipPlan::none().with_join(2, 2),
        checkpoint: CheckpointPolicy::every(2, &dir),
        recovery: quick_recovery(),
        ..RunOptions::default()
    };
    let mut comp = NoCompression::new();
    let out = train_data_parallel_with(|_| mlp(51), &batches, &mut comp, &cfg, &opts).unwrap();
    assert_eq!(out.faults.survivors, 3);
    assert!(!out.checkpoints.is_empty());

    // The step-2 checkpoint is written at the same boundary the joiner is
    // admitted: it must already carry the grown member set.
    let ck = DistCheckpoint::load(&out.checkpoints[0]).unwrap();
    assert_eq!(ck.step, 2);
    assert_eq!(ck.members, vec![0, 1, 2]);
    assert_eq!(ck.epoch, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_with_wider_configured_fleet_restores_checkpointed_members() {
    // Save a checkpoint mid-run with a 3-member fleet, then resume it under
    // a config declaring 5 workers. The resumed run must restore exactly
    // the checkpointed member set (3 active, same ranks → same shards →
    // bitwise-identical continuation), not inflate to the configured width.
    let dir = scratch_dir("width_change");
    let batches = mixed_batches(4, 10);
    let cfg3 = zero_cost_cfg(3);
    let opts = RunOptions {
        checkpoint: CheckpointPolicy::every(2, &dir),
        recovery: quick_recovery(),
        ..RunOptions::default()
    };
    let mut c1 = NoCompression::new();
    let full = train_data_parallel_with(|_| mlp(61), &batches, &mut c1, &cfg3, &opts).unwrap();
    let ck_path = full.checkpoints.iter().find(|p| p.ends_with("dist_ckpt_000002.puft")).unwrap();
    let ck = DistCheckpoint::load(ck_path).unwrap();
    assert_eq!(ck.members, vec![0, 1, 2]);

    let width_before = puffer_tensor::pool::num_threads();
    let cfg5 = zero_cost_cfg(5);
    let resume_opts =
        RunOptions { resume: Some(ck), recovery: quick_recovery(), ..RunOptions::default() };
    let mut c2 = NoCompression::new();
    let resumed =
        train_data_parallel_with(|_| mlp(61), &batches, &mut c2, &cfg5, &resume_opts).unwrap();

    assert_eq!(resumed.faults.survivors, 3, "resume must restore the checkpointed fleet");
    assert_eq!(resumed.step_losses.len(), 2, "steps 2 and 3 remain");
    assert_eq!(
        resumed.final_params, full.final_params,
        "same members, same ranks: the continuation must be bitwise identical"
    );
    assert_eq!(
        puffer_tensor::pool::num_threads(),
        width_before,
        "the pool-width cap must be restored after resume"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn growing_run_reprices_hetero_cost_for_the_live_set() {
    // Joiner 2 is the slow node: once admitted, each round's α/β must be
    // dominated by it, so the churned run's comm time exceeds the static
    // 2-node run's.
    let batches = uniform_batches(6, 8);
    let mut cfg = zero_cost_cfg(2);
    cfg.profile = ClusterProfile::p3_like(2);
    let hetero = HeteroProfile::uniform(ClusterProfile::p3_like(3)).with_node(2, 2e-3, 8.0 / 1e8);

    let static_opts = RunOptions {
        hetero: Some(hetero.clone()),
        recovery: quick_recovery(),
        ..RunOptions::default()
    };
    let mut c1 = NoCompression::new();
    let static_run =
        train_data_parallel_with(|_| mlp(71), &batches, &mut c1, &cfg, &static_opts).unwrap();

    let grown_opts = RunOptions {
        hetero: Some(hetero),
        membership: MembershipPlan::none().with_join(2, 1),
        recovery: quick_recovery(),
        ..RunOptions::default()
    };
    let mut c2 = NoCompression::new();
    let grown =
        train_data_parallel_with(|_| mlp(71), &batches, &mut c2, &cfg, &grown_opts).unwrap();

    assert!(
        grown.breakdown.comm > static_run.breakdown.comm,
        "rounds with the slow joiner must be priced at its α/β: {:?} vs {:?}",
        grown.breakdown.comm,
        static_run.breakdown.comm
    );
}

#[test]
fn join_on_mixed_batches_reshards_and_converges() {
    // With distinct rows the grown run is not bitwise-comparable to the
    // static one, but it must still complete, re-shard (each member's rank
    // changes shard content), and keep every replica synchronized — the
    // deterministic rerun check.
    let batches = mixed_batches(6, 12);
    let cfg = zero_cost_cfg(2);
    let opts = RunOptions {
        membership: MembershipPlan::none().with_join(2, 2).with_join(3, 4),
        recovery: quick_recovery(),
        ..RunOptions::default()
    };
    let mut c1 = NoCompression::new();
    let a = train_data_parallel_with(|_| mlp(81), &batches, &mut c1, &cfg, &opts).unwrap();
    let mut c2 = NoCompression::new();
    let b = train_data_parallel_with(|_| mlp(81), &batches, &mut c2, &cfg, &opts).unwrap();
    assert_eq!(a.final_params, b.final_params, "churned runs must be deterministic");
    assert_eq!(a.faults.survivors, 4);
    assert_eq!(a.membership.len(), 2);
    assert_eq!(a.final_epoch, 2);
    assert!(a.step_losses.iter().all(|l| l.is_finite()));
}
