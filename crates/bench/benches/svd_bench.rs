//! Criterion benchmark behind appendix Table 19: the one-off SVD
//! warm-start factorization per model family.

use criterion::{criterion_group, criterion_main, Criterion};
use puffer_bench::setups;
use puffer_models::resnet::ResNetHybridPlan;
use puffer_models::units::FactorInit;

fn bench_svd_factorization(c: &mut Criterion) {
    let mut group = c.benchmark_group("svd_warm_start");
    group.sample_size(10);

    let resnet18 = setups::resnet18(10, 1);
    group.bench_function("resnet18", |b| {
        b.iter(|| {
            resnet18.to_hybrid(&ResNetHybridPlan::resnet18_paper(), FactorInit::WarmStart).unwrap()
        })
    });

    let vgg19 = setups::vgg19(10, 1);
    group.bench_function("vgg19", |b| {
        b.iter(|| vgg19.to_hybrid(10, 0.25, FactorInit::WarmStart).unwrap())
    });

    let lstm = setups::lstm_lm(200, 1);
    group.bench_function("lstm", |b| b.iter(|| lstm.to_low_rank(setups::LSTM_RANK, true).unwrap()));

    let transformer = setups::transformer(64, None, 1);
    group.bench_function("transformer", |b| {
        b.iter(|| transformer.to_hybrid(setups::TRANSFORMER_RANK, true).unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench_svd_factorization);
criterion_main!(benches);
