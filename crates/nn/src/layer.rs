//! The [`Layer`] trait and [`Sequential`] container.

use crate::param::Param;
use puffer_probe as probe;
use puffer_tensor::Tensor;

/// Whether a forward pass is part of training or evaluation.
///
/// Controls dropout (disabled in [`Mode::Eval`]) and batch-norm statistics
/// (running statistics are used in [`Mode::Eval`], batch statistics in
/// [`Mode::Train`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Mode {
    /// Training: caches activations for backward, uses batch statistics.
    #[default]
    Train,
    /// Inference: no caching required, uses running statistics.
    Eval,
}

/// A network layer with explicit forward and backward passes.
///
/// The contract:
///
/// * [`Layer::forward`] consumes an activation and caches whatever the
///   backward pass needs (when called with [`Mode::Train`]).
/// * [`Layer::backward`] consumes `∂L/∂output`, **accumulates** parameter
///   gradients into each [`Param::grad`], and returns `∂L/∂input`. It must
///   be called after a `Train`-mode forward with a gradient of the same
///   shape as that forward's output.
///
/// # Panics
///
/// `forward`/`backward` panic on activation shape mismatches: these are
/// programming errors, not recoverable conditions (constructors validate
/// configuration and return errors instead).
///
/// Layers are `Send` so model replicas can be moved into data-parallel
/// worker threads (`puffer-dist`).
pub trait Layer: Send {
    /// Forward pass.
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor;

    /// Backward pass: accumulates parameter gradients, returns the input
    /// gradient.
    fn backward(&mut self, grad_output: &Tensor) -> Tensor;

    /// Backward pass with a gradient-readiness hook, for bucketed
    /// comm/compute overlap (`puffer-dist`). `on_ready(first)` announces
    /// that every parameter tensor with index ≥ `first` (in
    /// [`Layer::params`] order) now holds its final gradient — containers
    /// fire it after each child finishes, in reverse order, so tail
    /// buckets can start reducing while earlier layers are still running
    /// backward. The default delegates to [`Layer::backward`] and
    /// announces everything at once.
    fn backward_with_ready(
        &mut self,
        grad_output: &Tensor,
        on_ready: &mut dyn FnMut(usize),
    ) -> Tensor {
        let g = self.backward(grad_output);
        on_ready(0);
        g
    }

    /// Immutable views of the layer's parameters, in a stable order.
    fn params(&self) -> Vec<&Param>;

    /// Mutable views of the layer's parameters, in the same order as
    /// [`Layer::params`].
    fn params_mut(&mut self) -> Vec<&mut Param>;

    /// A short human-readable description (e.g. `"Linear(512→10)"`).
    fn describe(&self) -> String;

    /// Total number of trainable scalars.
    fn param_count(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    /// Non-trainable state in a stable order (e.g. BatchNorm running
    /// statistics). Containers concatenate their children's buffers.
    fn buffers(&self) -> Vec<Tensor> {
        Vec::new()
    }

    /// Restores state captured by [`Layer::buffers`].
    ///
    /// # Panics
    ///
    /// Panics on count or shape mismatch (checkpoint from a different
    /// architecture).
    fn load_buffers(&mut self, buffers: &[Tensor]) {
        assert!(buffers.is_empty(), "layer has no buffers but {} were provided", buffers.len());
    }

    /// Zeroes all parameter gradients.
    fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }
}

/// A chain of layers applied in order.
///
/// # Example
///
/// ```
/// use puffer_nn::{Layer, Mode, Sequential};
/// use puffer_nn::activation::Relu;
/// use puffer_nn::linear::Linear;
/// use puffer_tensor::Tensor;
///
/// let mut net = Sequential::new(vec![
///     Box::new(Linear::new(2, 4, true, 0)?),
///     Box::new(Relu::new()),
/// ]);
/// let y = net.forward(&Tensor::ones(&[1, 2]), Mode::Eval);
/// assert_eq!(y.shape(), &[1, 4]);
/// # Ok::<(), puffer_nn::NnError>(())
/// ```
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates a sequential container from boxed layers.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Sequential { layers }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the container has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Immutable access to the contained layers.
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Mutable access to the contained layers (used by model surgery when
    /// Pufferfish swaps full-rank layers for factorized ones).
    pub fn layers_mut(&mut self) -> &mut Vec<Box<dyn Layer>> {
        &mut self.layers
    }
}

impl Layer for Sequential {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let _sp = probe::span_with("nn", "forward", || {
            vec![("layers", self.layers.len().into()), ("batch", input.shape()[0].into())]
        });
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, mode);
        }
        x
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        self.backward_with_ready(grad_output, &mut |_| {})
    }

    fn backward_with_ready(
        &mut self,
        grad_output: &Tensor,
        on_ready: &mut dyn FnMut(usize),
    ) -> Tensor {
        let _sp = probe::span_with("nn", "backward", || vec![("layers", self.layers.len().into())]);
        // prefix[i] = number of parameter tensors in layers 0..i: once
        // child i's backward returns, every tensor index ≥ prefix[i] holds
        // its final gradient (children run in reverse).
        let mut prefix = Vec::with_capacity(self.layers.len());
        let mut acc = 0usize;
        for layer in &self.layers {
            prefix.push(acc);
            acc += layer.params().len();
        }
        let mut g = grad_output.clone();
        for (i, layer) in self.layers.iter_mut().enumerate().rev() {
            g = layer.backward(&g);
            on_ready(prefix[i]);
        }
        g
    }

    fn params(&self) -> Vec<&Param> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers.iter_mut().flat_map(|l| l.params_mut()).collect()
    }

    fn describe(&self) -> String {
        let inner: Vec<String> = self.layers.iter().map(|l| l.describe()).collect();
        format!("Sequential[{}]", inner.join(", "))
    }

    fn buffers(&self) -> Vec<Tensor> {
        self.layers.iter().flat_map(|l| l.buffers()).collect()
    }

    fn load_buffers(&mut self, buffers: &[Tensor]) {
        let mut off = 0;
        for layer in &mut self.layers {
            let n = layer.buffers().len();
            layer.load_buffers(&buffers[off..off + n]);
            off += n;
        }
        assert_eq!(off, buffers.len(), "buffer count mismatch");
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.describe())
    }
}

/// Stores a copy of `src` in `slot`, overwriting the previously cached
/// tensor's storage in place when the shape repeats (the steady state of a
/// training loop) instead of allocating a fresh clone each step.
pub fn cache_activation(slot: &mut Option<Tensor>, src: &Tensor) {
    match slot {
        Some(t) if t.shape() == src.shape() => t.as_mut_slice().copy_from_slice(src.as_slice()),
        _ => *slot = Some(src.clone()),
    }
}

/// Numerically checks a layer's input gradient with central finite
/// differences. Returns the max absolute deviation between analytic and
/// numeric `∂(sum κ·output)/∂input` for a random direction `κ`.
///
/// Test-support utility shared by all layer test modules; exposed publicly
/// so downstream crates (models) can gradient-check their composites too.
pub fn finite_diff_input_check<L: Layer>(layer: &mut L, input: &Tensor, eps: f32) -> f32 {
    let kappa = Tensor::rand_uniform(layer.forward(input, Mode::Train).shape(), -1.0, 1.0, 777);
    // Analytic gradient.
    let _ = layer.forward(input, Mode::Train);
    let analytic = layer.backward(&kappa);
    // Numeric gradient.
    let mut max_dev = 0.0f32;
    let mut x = input.clone();
    for i in 0..input.len() {
        let orig = x.as_slice()[i];
        x.as_mut_slice()[i] = orig + eps;
        let fp = layer.forward(&x, Mode::Train).dot(&kappa).unwrap();
        x.as_mut_slice()[i] = orig - eps;
        let fm = layer.forward(&x, Mode::Train).dot(&kappa).unwrap();
        x.as_mut_slice()[i] = orig;
        let numeric = (fp - fm) / (2.0 * eps);
        max_dev = max_dev.max((numeric - analytic.as_slice()[i]).abs());
    }
    max_dev
}

/// Numerically checks a layer's **parameter** gradients against central
/// finite differences, returning the max absolute deviation across all
/// parameters. See [`finite_diff_input_check`].
pub fn finite_diff_param_check<L: Layer>(layer: &mut L, input: &Tensor, eps: f32) -> f32 {
    let out = layer.forward(input, Mode::Train);
    let kappa = Tensor::rand_uniform(out.shape(), -1.0, 1.0, 778);
    layer.zero_grad();
    let _ = layer.forward(input, Mode::Train);
    let _ = layer.backward(&kappa);
    let analytic: Vec<Tensor> = layer.params().iter().map(|p| p.grad.clone()).collect();

    let mut max_dev = 0.0f32;
    for (pi, analytic_p) in analytic.iter().enumerate() {
        for i in 0..analytic_p.len() {
            let orig = layer.params()[pi].value.as_slice()[i];
            layer.params_mut()[pi].value.as_mut_slice()[i] = orig + eps;
            let fp = layer.forward(input, Mode::Train).dot(&kappa).unwrap();
            layer.params_mut()[pi].value.as_mut_slice()[i] = orig - eps;
            let fm = layer.forward(input, Mode::Train).dot(&kappa).unwrap();
            layer.params_mut()[pi].value.as_mut_slice()[i] = orig;
            let numeric = (fp - fm) / (2.0 * eps);
            max_dev = max_dev.max((numeric - analytic_p.as_slice()[i]).abs());
        }
    }
    max_dev
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Relu;
    use crate::linear::Linear;

    #[test]
    fn sequential_composes() {
        let mut net = Sequential::new(vec![
            Box::new(Linear::new(3, 5, true, 1).unwrap()),
            Box::new(Relu::new()),
            Box::new(Linear::new(5, 2, true, 2).unwrap()),
        ]);
        let x = Tensor::randn(&[4, 3], 1.0, 3);
        let y = net.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[4, 2]);
        let gx = net.backward(&Tensor::ones(&[4, 2]));
        assert_eq!(gx.shape(), &[4, 3]);
        assert!(net.param_count() > 0);
        assert_eq!(net.len(), 3);
    }

    #[test]
    fn zero_grad_clears_everything() {
        let mut net = Sequential::new(vec![Box::new(Linear::new(2, 2, true, 1).unwrap())]);
        let x = Tensor::ones(&[1, 2]);
        let _ = net.forward(&x, Mode::Train);
        let _ = net.backward(&Tensor::ones(&[1, 2]));
        assert!(net.params().iter().any(|p| p.grad.as_slice().iter().any(|&g| g != 0.0)));
        net.zero_grad();
        assert!(net.params().iter().all(|p| p.grad.as_slice().iter().all(|&g| g == 0.0)));
    }

    #[test]
    fn sequential_gradcheck() {
        let mut net = Sequential::new(vec![
            Box::new(Linear::new(3, 4, true, 1).unwrap()),
            Box::new(Relu::new()),
            Box::new(Linear::new(4, 2, true, 2).unwrap()),
        ]);
        // Keep inputs away from ReLU kinks.
        let x = Tensor::rand_uniform(&[2, 3], 0.3, 1.0, 5);
        let dev = finite_diff_input_check(&mut net, &x, 1e-3);
        assert!(dev < 1e-2, "input grad deviation {dev}");
    }

    #[test]
    fn backward_with_ready_fires_in_reverse_with_prefix_counts() {
        let mut net = Sequential::new(vec![
            Box::new(Linear::new(3, 5, true, 1).unwrap()), // tensors 0,1
            Box::new(Relu::new()),                         // none
            Box::new(Linear::new(5, 2, true, 2).unwrap()), // tensors 2,3
        ]);
        let x = Tensor::randn(&[4, 3], 1.0, 3);
        let _ = net.forward(&x, Mode::Train);
        let mut fired = Vec::new();
        let gx = net.backward_with_ready(&Tensor::ones(&[4, 2]), &mut |first| fired.push(first));
        assert_eq!(gx.shape(), &[4, 3]);
        // Reverse child order: last Linear (prefix 2), Relu (prefix 2),
        // first Linear (prefix 0 = everything final).
        assert_eq!(fired, vec![2, 2, 0]);

        // The default trait impl announces everything at the end.
        let mut lone = Linear::new(2, 2, true, 9).unwrap();
        let _ = lone.forward(&Tensor::ones(&[1, 2]), Mode::Train);
        let mut fired = Vec::new();
        let _ = lone.backward_with_ready(&Tensor::ones(&[1, 2]), &mut |first| fired.push(first));
        assert_eq!(fired, vec![0]);
    }

    #[test]
    fn describe_is_nonempty() {
        let net = Sequential::new(vec![Box::new(Relu::new())]);
        assert!(net.describe().contains("Relu"));
    }
}
