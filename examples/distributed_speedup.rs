//! Distributed training with real worker threads: why Pufferfish saves
//! wall-clock in data-parallel training.
//!
//! Spawns an 8-worker data-parallel run (real gradients, shared-memory
//! allreduce) for (a) the vanilla model, (b) the Pufferfish hybrid, and
//! (c) the vanilla model with Signum gradient compression — then prints
//! each run's compute / encode+decode / communication breakdown under a
//! 10 Gbps 8-node cluster cost model.
//!
//! ```sh
//! cargo run --release --example distributed_speedup
//! ```

use pufferfish_repro::compress::none::NoCompression;
use pufferfish_repro::compress::signum::Signum;
use pufferfish_repro::compress::GradCompressor;
use pufferfish_repro::data::images::{ImageDataset, ImageDatasetConfig};
use pufferfish_repro::dist::trainer::{train_data_parallel, DistConfig};
use pufferfish_repro::models::resnet::{ResNet, ResNetConfig, ResNetHybridPlan};
use pufferfish_repro::models::units::FactorInit;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = ImageDataset::generate(ImageDatasetConfig::cifar_like(512, 128, 3));
    let batches = data.train_batches(32, 0);
    let cfg = DistConfig::p3(8, 0.05);

    println!(
        "{:<22} {:>10} {:>14} {:>12} {:>10}",
        "method", "compute", "encode+decode", "comm(model)", "loss"
    );
    for method in ["vanilla", "pufferfish", "signum"] {
        let mut none_c;
        let mut sig_c;
        let compressor: &mut dyn GradCompressor = if method == "signum" {
            sig_c = Signum::new(0.9);
            &mut sig_c
        } else {
            none_c = NoCompression::new();
            &mut none_c
        };
        let hybrid = method == "pufferfish";
        let out = train_data_parallel(
            move |_| {
                let net = ResNet::new(ResNetConfig::resnet18(0.125, 10, 1)).expect("config");
                if hybrid {
                    net.to_hybrid(&ResNetHybridPlan::resnet18_paper(), FactorInit::Random(5))
                        .expect("hybrid")
                } else {
                    net
                }
            },
            &batches,
            compressor,
            &cfg,
        )?;
        let b = out.breakdown;
        println!(
            "{:<22} {:>9.2}s {:>13.3}s {:>11.4}s {:>10.3}",
            method,
            b.compute.as_secs_f64(),
            (b.encode + b.decode).as_secs_f64(),
            b.comm.as_secs_f64(),
            out.step_losses.last().copied().unwrap_or(f32::NAN),
        );
    }
    println!("\nPufferfish ships ~3x fewer gradient bytes with zero encode/decode cost;");
    println!("Signum ships ~32x fewer bytes but pays majority-vote decoding and allgather.");
    Ok(())
}
