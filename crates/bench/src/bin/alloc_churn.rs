//! Allocation-churn benchmark for the scratch-arena workspace: how many
//! bytes a steady-state training step allocates with the buffer pool off
//! vs on, and what that does to step time, on the Table 6 mini-benchmark
//! setups (bench-scale VGG-19 and ResNet-18 on the CIFAR stand-in).
//!
//! Reuse must be free in accuracy terms: the run also checks that pooled
//! and fresh execution produce **bitwise identical** logits and parameters
//! after several optimizer steps.
//!
//! Writes a machine-readable record to `BENCH_alloc.json` at the workspace
//! root (plus a line-oriented copy under `results/`).
//!
//! Usage: `cargo run --release -p puffer-bench --bin alloc_churn`
//! (`-- --check` runs only the steady-state gate: exits nonzero if a
//! warmed-up training step still misses the pool).

use puffer_bench::scale::RunScale;
use puffer_bench::{record_result, setups};
use puffer_nn::layer::{Layer, Mode};
use puffer_nn::loss::softmax_cross_entropy;
use puffer_nn::optim::Sgd;
use puffer_probe as probe;
use puffer_probe::Stopwatch;
use puffer_tensor::{workspace, Tensor};

/// Steps measured after the two-step warm-up.
const MEASURED_STEPS: usize = 3;

fn train_step<M: Layer>(model: &mut M, opt: &mut Sgd, images: &Tensor, labels: &[usize]) -> Tensor {
    model.zero_grad();
    let logits = model.forward(images, Mode::Train);
    let (_, dl) = softmax_cross_entropy(&logits, labels, 0.0).expect("loss");
    let _ = model.backward(&dl);
    opt.step(&mut model.params_mut());
    logits
}

struct ChurnCounters {
    /// Bytes allocated by the two warm-up steps (pool fills here).
    warmup_bytes: f64,
    /// Fresh bytes per steady-state step.
    bytes_per_step: f64,
    /// Pool misses per steady-state step.
    misses_per_step: f64,
}

/// Runs warm-up plus [`MEASURED_STEPS`] steps under the probe and reports
/// the steady-state allocation counters.
fn measure_counters<M: Layer>(
    mut model: M,
    images: &Tensor,
    labels: &[usize],
    pooled: bool,
) -> ChurnCounters {
    workspace::set_enabled(pooled);
    workspace::clear_thread_arena();
    let mut opt = Sgd::new(0.05, 0.9, 1e-4);
    probe::reset();
    probe::configure(probe::ProbeConfig::in_memory());
    let _ = train_step(&mut model, &mut opt, images, labels);
    let _ = train_step(&mut model, &mut opt, images, labels);
    let warm_bytes = probe::counter_value("alloc.fresh_bytes").unwrap_or(0.0);
    let warm_misses = probe::counter_value("alloc.pool_misses").unwrap_or(0.0);
    for _ in 0..MEASURED_STEPS {
        let _ = train_step(&mut model, &mut opt, images, labels);
    }
    let bytes = probe::counter_value("alloc.fresh_bytes").unwrap_or(0.0) - warm_bytes;
    let misses = probe::counter_value("alloc.pool_misses").unwrap_or(0.0) - warm_misses;
    probe::reset();
    workspace::set_enabled(true);
    ChurnCounters {
        warmup_bytes: warm_bytes,
        bytes_per_step: bytes / MEASURED_STEPS as f64,
        misses_per_step: misses / MEASURED_STEPS as f64,
    }
}

fn best(samples: Vec<f64>) -> f64 {
    samples.into_iter().fold(f64::INFINITY, f64::min)
}

/// Best-observed steady-state step times `(fresh, pooled)` with the probe
/// disabled. The two configurations are timed **interleaved** — one fresh
/// step, one pooled step, repeat — so slow drift in machine load hits both
/// sample sets equally instead of biasing whichever ran second; the
/// minimum over the interleaved reps is the least-interfered sample of
/// each.
fn measure_step_times<M: Layer>(
    mut fresh_model: M,
    mut pooled_model: M,
    images: &Tensor,
    labels: &[usize],
    reps: usize,
) -> (f64, f64) {
    probe::reset();
    let mut fresh_opt = Sgd::new(0.05, 0.9, 1e-4);
    let mut pooled_opt = Sgd::new(0.05, 0.9, 1e-4);
    // Warm both: fill the pooled arena, fault in both models' weights.
    for _ in 0..2 {
        workspace::set_enabled(true);
        let _ = train_step(&mut pooled_model, &mut pooled_opt, images, labels);
        workspace::set_enabled(false);
        let _ = train_step(&mut fresh_model, &mut fresh_opt, images, labels);
    }
    let mut fresh_s = Vec::with_capacity(reps);
    let mut pooled_s = Vec::with_capacity(reps);
    for rep in 0..reps {
        // Alternate which configuration goes first within the pair so
        // neither systematically inherits the other's cache/thermal state.
        for phase in 0..2 {
            if (rep + phase) % 2 == 0 {
                workspace::set_enabled(false);
                let t0 = Stopwatch::start();
                let _ = train_step(&mut fresh_model, &mut fresh_opt, images, labels);
                fresh_s.push(t0.elapsed().as_secs_f64());
            } else {
                workspace::set_enabled(true);
                let t0 = Stopwatch::start();
                let _ = train_step(&mut pooled_model, &mut pooled_opt, images, labels);
                pooled_s.push(t0.elapsed().as_secs_f64());
            }
        }
    }
    workspace::set_enabled(true);
    (best(fresh_s), best(pooled_s))
}

/// Runs a few optimizer steps and fingerprints the final logits and every
/// parameter, bit for bit.
fn run_fingerprint<M: Layer>(
    mut model: M,
    images: &Tensor,
    labels: &[usize],
    pooled: bool,
) -> Vec<u32> {
    workspace::set_enabled(pooled);
    workspace::clear_thread_arena();
    probe::reset();
    let mut opt = Sgd::new(0.05, 0.9, 1e-4);
    let mut logits = Tensor::zeros(&[1]);
    for _ in 0..3 {
        logits = train_step(&mut model, &mut opt, images, labels);
    }
    workspace::set_enabled(true);
    let mut bits: Vec<u32> = logits.as_slice().iter().map(|v| v.to_bits()).collect();
    for p in model.params() {
        bits.extend(p.value.as_slice().iter().map(|v| v.to_bits()));
    }
    bits
}

fn first_batch(data: &puffer_data::images::ImageDataset) -> (Tensor, Vec<usize>) {
    data.train_batches(32, 0).into_iter().next().expect("dataset has at least one batch")
}

fn check_mode() -> ! {
    // Gate: a warmed-up ResNet-18 training step must be served entirely
    // from the pools — zero fresh allocations in the steady state.
    let data = setups::cifar_data(RunScale::Quick);
    let (images, labels) = first_batch(&data);
    let c = measure_counters(setups::resnet18(10, 1), &images, &labels, true);
    if c.misses_per_step > 0.0 {
        eprintln!(
            "alloc_churn --check FAILED: steady-state step still allocates \
             ({:.1} pool misses, {:.0} fresh bytes per step)",
            c.misses_per_step, c.bytes_per_step
        );
        std::process::exit(1);
    }
    println!(
        "alloc_churn --check ok: steady-state step is allocation-free \
         (warm-up allocated {:.1} MiB)",
        c.warmup_bytes / (1 << 20) as f64
    );
    std::process::exit(0);
}

fn main() {
    if std::env::args().any(|a| a == "--check") {
        check_mode();
    }
    let scale = RunScale::from_env();
    let reps = scale.pick(5, 15);
    let data = setups::cifar_data(scale);
    let (images, labels) = first_batch(&data);

    println!("== Allocation churn, batch 32, {MEASURED_STEPS}-step steady state ==\n");
    println!(
        "{:<12} {:>14} {:>14} {:>12} {:>12} {:>9} {:>9}",
        "model", "fresh B/step", "pooled B/step", "fresh s", "pooled s", "speedup", "bitwise"
    );

    let mut entries = Vec::new();
    for name in ["vgg19", "resnet18"] {
        let build_vgg = || setups::vgg19(10, 1);
        let build_resnet = || setups::resnet18(10, 1);
        // Same measurement code for both; models differ in type.
        let (fresh, pooled, (t_fresh, t_pooled), identical) = if name == "vgg19" {
            (
                measure_counters(build_vgg(), &images, &labels, false),
                measure_counters(build_vgg(), &images, &labels, true),
                measure_step_times(build_vgg(), build_vgg(), &images, &labels, reps),
                run_fingerprint(build_vgg(), &images, &labels, false)
                    == run_fingerprint(build_vgg(), &images, &labels, true),
            )
        } else {
            (
                measure_counters(build_resnet(), &images, &labels, false),
                measure_counters(build_resnet(), &images, &labels, true),
                measure_step_times(build_resnet(), build_resnet(), &images, &labels, reps),
                run_fingerprint(build_resnet(), &images, &labels, false)
                    == run_fingerprint(build_resnet(), &images, &labels, true),
            )
        };
        assert!(identical, "{name}: pooled run diverged bitwise from fresh run");
        assert!(
            pooled.misses_per_step == 0.0,
            "{name}: steady-state step still misses the pool ({} per step)",
            pooled.misses_per_step
        );
        let speedup = t_fresh / t_pooled;
        println!(
            "{name:<12} {:>14.0} {:>14.0} {:>12.6} {:>12.6} {:>8.2}x {:>9}",
            fresh.bytes_per_step, pooled.bytes_per_step, t_fresh, t_pooled, speedup, identical
        );
        record_result(
            "alloc_churn",
            &format!(
                "{name} fresh_bytes_per_step={:.0} pooled_bytes_per_step={:.0} \
                 fresh_step_s={t_fresh:.6} pooled_step_s={t_pooled:.6} speedup={speedup:.3} \
                 bitwise_identical={identical}",
                fresh.bytes_per_step, pooled.bytes_per_step
            ),
        );
        entries.push(format!(
            "    {{ \"model\": \"{name}\", \"fresh_bytes_per_step\": {:.0}, \
             \"pooled_bytes_per_step\": {:.0}, \"pooled_misses_per_step\": {:.1}, \
             \"warmup_bytes\": {:.0}, \"fresh_step_s\": {t_fresh:.6}, \
             \"pooled_step_s\": {t_pooled:.6}, \"speedup\": {speedup:.3}, \
             \"bitwise_identical\": {identical} }}",
            fresh.bytes_per_step,
            pooled.bytes_per_step,
            pooled.misses_per_step,
            pooled.warmup_bytes
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"alloc_churn\",\n  \"setup\": \"table6 minibench models, CIFAR stand-in, batch 32, steady-state step after 2-step warm-up\",\n  \"note\": \"fresh = workspace disabled (every scratch buffer heap-allocated); pooled = per-thread scratch arenas; bitwise_identical compares logits and all parameters after 3 optimizer steps\",\n  \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    let root = std::env::var("CARGO_MANIFEST_DIR")
        .map(|p| std::path::PathBuf::from(p).join("../.."))
        .unwrap_or_else(|_| std::path::PathBuf::from("."));
    let path = root.join("BENCH_alloc.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}
