//! Inverted dropout.

use crate::layer::{Layer, Mode};
use crate::param::Param;
use puffer_tensor::Tensor;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Inverted dropout: in training, each activation is zeroed with probability
/// `p` and survivors are scaled by `1/(1-p)`; evaluation is the identity.
///
/// The paper's LSTM uses `p = 0.65` and its Transformer `p = 0.1`
/// (appendix Tables 12/16).
#[derive(Debug)]
pub struct Dropout {
    p: f32,
    rng: SmallRng,
    mask: Option<Vec<f32>>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p ∈ [0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1)`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout probability must be in [0, 1)");
        Dropout { p, rng: SmallRng::seed_from_u64(seed), mask: None }
    }

    /// The drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        if mode == Mode::Eval || self.p == 0.0 {
            self.mask = None;
            return input.clone();
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mask: Vec<f32> = (0..input.len())
            .map(|_| if self.rng.gen::<f32>() < keep { scale } else { 0.0 })
            .collect();
        let mut out = input.clone();
        for (o, m) in out.as_mut_slice().iter_mut().zip(&mask) {
            *o *= m;
        }
        self.mask = Some(mask);
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        match &self.mask {
            None => grad_output.clone(),
            Some(mask) => {
                assert_eq!(mask.len(), grad_output.len(), "Dropout gradient shape mismatch");
                let mut g = grad_output.clone();
                for (gv, m) in g.as_mut_slice().iter_mut().zip(mask) {
                    *gv *= m;
                }
                g
            }
        }
    }

    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    fn describe(&self) -> String {
        format!("Dropout(p={})", self.p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_is_identity() {
        let mut d = Dropout::new(0.5, 1);
        let x = Tensor::randn(&[10], 1.0, 2);
        assert_eq!(d.forward(&x, Mode::Eval), x);
    }

    #[test]
    fn train_preserves_expectation() {
        let mut d = Dropout::new(0.3, 3);
        let x = Tensor::ones(&[100_000]);
        let y = d.forward(&x, Mode::Train);
        let mean = puffer_tensor::stats::mean(&y);
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, 4);
        let x = Tensor::ones(&[64]);
        let y = d.forward(&x, Mode::Train);
        let g = d.backward(&Tensor::ones(&[64]));
        // Gradient zero exactly where output is zero, scaled where kept.
        for (yo, go) in y.as_slice().iter().zip(g.as_slice()) {
            assert_eq!(yo, go);
        }
    }

    #[test]
    #[should_panic(expected = "dropout probability")]
    fn rejects_p_one() {
        let _ = Dropout::new(1.0, 1);
    }
}
