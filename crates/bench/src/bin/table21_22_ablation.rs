//! **Tables 21–22** (appendix L): the accuracy-mitigation ablation on the
//! remaining tasks — ResNet-50 on ImageNet(-lite) (Table 21) and VGG-19 on
//! CIFAR-10 (Table 22): low-rank vs hybrid vs hybrid+warm-up.
//!
//! Shape under reproduction (paper): ResNet-50 top-1 71.03 → 75.85 → 76.43;
//! VGG-19 93.34 → 93.53 → 93.89.

use puffer_bench::scale::RunScale;
use puffer_bench::table::Table;
use puffer_bench::{record_result, setups};
use puffer_models::resnet::ResNetHybridPlan;
use pufferfish::ablation::mean_std;
use pufferfish::trainer::{train, ModelPlan, TrainConfig};

fn main() {
    let scale = RunScale::from_env();
    let epochs = scale.pick(6, 14);
    let warmup = scale.pick(2, 4);
    let seeds = scale.seeds();

    // Table 21: ResNet-50 on ImageNet-lite.
    let data = setups::imagenet_lite_data(scale);
    let classes = data.config().classes;
    println!("== Table 21: ResNet-50 ablation on ImageNet-lite ==\n");
    let mut t = Table::new(vec!["Model architectures", "Top-1 (synthetic)", "paper top-1"]);
    let arms: [(&str, ModelPlan, usize, &str); 3] = [
        (
            "Low-rank ResNet-50",
            ModelPlan::ResNetHybrid(ResNetHybridPlan::all_layers(0.25)),
            0,
            "71.03%",
        ),
        (
            "Hybrid ResNet-50 (wo. vanilla warm-up)",
            ModelPlan::ResNetHybrid(ResNetHybridPlan::resnet50_paper()),
            0,
            "75.85%",
        ),
        (
            "Hybrid ResNet-50 (w. vanilla warm-up)",
            ModelPlan::ResNetHybrid(ResNetHybridPlan::resnet50_paper()),
            warmup,
            "76.43%",
        ),
    ];
    for (label, plan, wu, paper) in arms {
        let mut accs = Vec::new();
        for &seed in &seeds {
            let mut cfg = TrainConfig::imagenet_small(epochs, wu);
            cfg.seed = seed;
            let out = train(setups::resnet50(classes, seed), plan, &data, &cfg).expect("training");
            accs.push(out.report.final_test_accuracy() * 100.0);
        }
        let (m, s) = mean_std(&accs);
        t.row(vec![label.into(), format!("{m:.2} ± {s:.2}"), paper.into()]);
        record_result("table21_ablation", &format!("{label}: {m:.2}±{s:.2}"));
    }
    t.print();

    // Table 22: VGG-19 on CIFAR-like.
    let data = setups::cifar_data(scale);
    println!("\n== Table 22: VGG-19-BN ablation on CIFAR-10 ==\n");
    let mut t = Table::new(vec!["Model architectures", "Test Acc. (synthetic)", "paper acc."]);
    let arms: [(&str, usize, usize, &str); 3] = [
        ("Low-rank VGG-19-BN", 2, 0, "93.34 ± 0.08%"),
        ("Hybrid VGG-19-BN (wo. vanilla warm-up)", 10, 0, "93.53 ± 0.13%"),
        ("Hybrid VGG-19-BN (w. vanilla warm-up)", 10, warmup, "93.89 ± 0.14%"),
    ];
    for (label, k, wu, paper) in arms {
        let mut accs = Vec::new();
        for &seed in &seeds {
            let mut cfg = TrainConfig::cifar_small(epochs, wu);
            cfg.seed = seed;
            let out = train(
                setups::vgg19(10, seed),
                ModelPlan::VggHybrid { first_low_rank: k, rank_ratio: 0.25 },
                &data,
                &cfg,
            )
            .expect("training");
            accs.push(out.report.final_test_accuracy() * 100.0);
        }
        let (m, s) = mean_std(&accs);
        t.row(vec![label.into(), format!("{m:.2} ± {s:.2}"), paper.into()]);
        record_result("table22_ablation", &format!("{label}: {m:.2}±{s:.2}"));
    }
    t.print();
    println!("\nshape: accuracy should be non-decreasing down each table (mitigations help).");
}
