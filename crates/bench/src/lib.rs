//! Experiment harness for the Pufferfish reproduction.
//!
//! One binary target per paper table/figure (see `DESIGN.md` §4 for the
//! full index). Every binary prints the same rows/series the paper
//! reports, side by side with the paper's reference values where they are
//! published, and appends a machine-readable record under `results/`.
//!
//! Common infrastructure lives here: console [`table`] rendering, the
//! quick/full [`scale`] switch, and the shared bench-scale [`setups`]
//! (datasets and scaled models used consistently across experiments).

pub mod probe_demo;
pub mod scale;
pub mod setups;
pub mod table;

use std::io::Write as _;
use std::path::PathBuf;

/// Appends a result line to `results/<name>.txt` (best-effort: failures to
/// write are reported to stderr but never abort an experiment).
pub fn record_result(name: &str, line: &str) {
    let dir = results_dir();
    if std::fs::create_dir_all(&dir).is_err() {
        eprintln!("warning: cannot create {}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.txt"));
    match std::fs::OpenOptions::new().create(true).append(true).open(&path) {
        Ok(mut f) => {
            let _ = writeln!(f, "{line}");
        }
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

/// The `results/` directory at the workspace root (falls back to the
/// current directory when the workspace root cannot be located).
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench → workspace root is two levels up.
    let base = std::env::var("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .map(|p| p.join("../.."))
        .unwrap_or_else(|_| PathBuf::from("."));
    base.join("results")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_result_appends() {
        record_result("selftest", "hello");
        let path = results_dir().join("selftest.txt");
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("hello"));
        let _ = std::fs::remove_file(path);
    }
}
