//! Markov-chain language-modeling corpus — the WikiText-2 stand-in.
//!
//! A sparse first-order Markov chain over a configurable vocabulary
//! generates token streams with genuine sequential structure: each token
//! admits only a few likely successors, so a language model that captures
//! the transitions reaches much lower perplexity than the unigram baseline.
//! The corpus is laid out for truncated BPTT exactly as the PyTorch
//! `word_language_model` example the paper builds on (`batchify` +
//! contiguous `(input, target)` windows).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration of the synthetic language corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TextCorpusConfig {
    /// Vocabulary size.
    pub vocab: usize,
    /// Successors per token in the Markov chain (branching factor).
    pub branching: usize,
    /// Tokens in the train split.
    pub train_tokens: usize,
    /// Tokens in the validation split.
    pub valid_tokens: usize,
    /// Tokens in the test split.
    pub test_tokens: usize,
    /// RNG seed.
    pub seed: u64,
}

impl TextCorpusConfig {
    /// A small default suitable for unit tests and CI-scale training.
    pub fn small(seed: u64) -> Self {
        TextCorpusConfig {
            vocab: 200,
            branching: 4,
            train_tokens: 20_000,
            valid_tokens: 2_000,
            test_tokens: 2_000,
            seed,
        }
    }
}

/// A generated corpus with train/valid/test token streams.
#[derive(Debug, Clone)]
pub struct TextCorpus {
    config: TextCorpusConfig,
    train: Vec<usize>,
    valid: Vec<usize>,
    test: Vec<usize>,
}

impl TextCorpus {
    /// Generates the corpus deterministically.
    ///
    /// # Panics
    ///
    /// Panics if `branching` is zero or exceeds `vocab`.
    pub fn generate(config: TextCorpusConfig) -> Self {
        assert!(
            config.branching > 0 && config.branching <= config.vocab,
            "branching must be in 1..=vocab"
        );
        let mut rng = SmallRng::seed_from_u64(config.seed);
        // Transition table: token -> `branching` successors with geometric
        // weights (first successor most likely).
        let successors: Vec<Vec<usize>> = (0..config.vocab)
            .map(|_| (0..config.branching).map(|_| rng.gen_range(0..config.vocab)).collect())
            .collect();
        let sample_stream = |len: usize, rng: &mut SmallRng| -> Vec<usize> {
            let mut out = Vec::with_capacity(len);
            let mut cur = rng.gen_range(0..config.vocab);
            for _ in 0..len {
                out.push(cur);
                // Geometric choice over successors with small uniform smoothing.
                cur = if rng.gen::<f32>() < 0.05 {
                    rng.gen_range(0..config.vocab)
                } else {
                    let mut k = 0;
                    while k + 1 < config.branching && rng.gen::<f32>() < 0.4 {
                        k += 1;
                    }
                    successors[cur][k]
                };
            }
            out
        };
        let train = sample_stream(config.train_tokens, &mut rng);
        let valid = sample_stream(config.valid_tokens, &mut rng);
        let test = sample_stream(config.test_tokens, &mut rng);
        TextCorpus { config, train, valid, test }
    }

    /// The configuration.
    pub fn config(&self) -> &TextCorpusConfig {
        &self.config
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.config.vocab
    }

    /// The raw train token stream.
    pub fn train_stream(&self) -> &[usize] {
        &self.train
    }

    /// The raw validation token stream.
    pub fn valid_stream(&self) -> &[usize] {
        &self.valid
    }

    /// The raw test token stream.
    pub fn test_stream(&self) -> &[usize] {
        &self.test
    }
}

/// Lays a token stream out as `batch_size` contiguous columns (PyTorch's
/// `batchify`): returns a `[n_steps][batch_size]` matrix of tokens.
pub fn batchify(stream: &[usize], batch_size: usize) -> Vec<Vec<usize>> {
    assert!(batch_size > 0, "batch size must be nonzero");
    let n_steps = stream.len() / batch_size;
    let mut out = vec![vec![0usize; batch_size]; n_steps];
    for b in 0..batch_size {
        for (t, row) in out.iter_mut().enumerate() {
            row[b] = stream[b * n_steps + t];
        }
    }
    out
}

/// A BPTT window: `seq_len` input steps plus their next-token targets,
/// each step being a `batch_size` token row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BpttBatch {
    /// Input token rows, `seq_len × batch_size`.
    pub inputs: Vec<Vec<usize>>,
    /// Target token rows (inputs shifted by one), `seq_len × batch_size`.
    pub targets: Vec<Vec<usize>>,
}

/// Splits a batchified stream into BPTT windows of `seq_len`.
pub fn bptt_batches(batchified: &[Vec<usize>], seq_len: usize) -> Vec<BpttBatch> {
    assert!(seq_len > 0, "seq_len must be nonzero");
    let mut out = Vec::new();
    let mut t = 0;
    while t + 1 < batchified.len() {
        let len = seq_len.min(batchified.len() - 1 - t);
        out.push(BpttBatch {
            inputs: batchified[t..t + len].to_vec(),
            targets: batchified[t + 1..t + 1 + len].to_vec(),
        });
        t += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = TextCorpus::generate(TextCorpusConfig::small(3));
        let b = TextCorpus::generate(TextCorpusConfig::small(3));
        assert_eq!(a.train_stream(), b.train_stream());
    }

    #[test]
    fn tokens_in_vocab() {
        let c = TextCorpus::generate(TextCorpusConfig::small(4));
        assert!(c.train_stream().iter().all(|&t| t < c.vocab()));
        assert_eq!(c.train_stream().len(), 20_000);
    }

    #[test]
    fn stream_has_structure() {
        // Bigram entropy must be far below the uniform log2(V): the chain is
        // predictable, so an LM has something to learn.
        let c = TextCorpus::generate(TextCorpusConfig::small(5));
        let v = c.vocab();
        // BTreeMap: the entropy below is a float sum over the iteration
        // order, which must not depend on the hasher.
        let mut counts = std::collections::BTreeMap::new();
        let s = c.train_stream();
        for w in s.windows(2) {
            *counts.entry((w[0], w[1])).or_insert(0usize) += 1;
        }
        let mut ctx_totals = std::collections::BTreeMap::new();
        for (&(a, _), &n) in &counts {
            *ctx_totals.entry(a).or_insert(0usize) += n;
        }
        let mut entropy = 0.0f64;
        for (&(a, _), &n) in &counts {
            let p = n as f64 / ctx_totals[&a] as f64;
            let w = n as f64 / (s.len() - 1) as f64;
            entropy -= w * p.log2();
        }
        assert!(entropy < (v as f64).log2() * 0.7, "entropy {entropy}");
    }

    #[test]
    fn batchify_layout() {
        let stream: Vec<usize> = (0..10).collect();
        let b = batchify(&stream, 2);
        // Two columns of 5: col0 = 0..5, col1 = 5..10.
        assert_eq!(b.len(), 5);
        assert_eq!(b[0], vec![0, 5]);
        assert_eq!(b[4], vec![4, 9]);
    }

    #[test]
    fn bptt_targets_are_shifted_inputs() {
        let stream: Vec<usize> = (0..21).collect();
        let b = batchify(&stream, 3);
        let batches = bptt_batches(&b, 2);
        for batch in &batches {
            assert_eq!(batch.inputs.len(), batch.targets.len());
        }
        // First batch: inputs rows t=0,1; targets rows t=1,2.
        assert_eq!(batches[0].inputs[1], batches[0].targets[0]);
        // All steps covered exactly once as inputs (except the final row).
        let total: usize = batches.iter().map(|b| b.inputs.len()).sum();
        assert_eq!(total, b.len() - 1);
    }

    #[test]
    #[should_panic(expected = "branching")]
    fn invalid_branching_panics() {
        let mut cfg = TextCorpusConfig::small(1);
        cfg.branching = 0;
        let _ = TextCorpus::generate(cfg);
    }
}
