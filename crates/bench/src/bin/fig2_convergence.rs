//! **Figure 2**: convergence of vanilla models vs *fully low-rank from
//! scratch* models (rank ratio 0.25, every layer except the first conv and
//! last FC factorized):
//! (a) VGG-11 on CIFAR-10, (b) ResNet-50 on ImageNet(-lite).
//!
//! The shape under reproduction: the from-scratch low-rank network
//! converges to a *worse* final accuracy, with the gap larger on the
//! harder task — the observation motivating hybrid + warm-up (paper §3).

use puffer_bench::scale::RunScale;
use puffer_bench::table::Table;
use puffer_bench::{record_result, setups};
use puffer_models::resnet::ResNetHybridPlan;
use pufferfish::trainer::{train, ModelPlan, TrainConfig};

fn main() {
    let scale = RunScale::from_env();
    let epochs = scale.pick(6, 16);
    println!("== Figure 2: vanilla vs low-rank-from-scratch convergence ==\n");

    // (a) VGG-11 on CIFAR-like.
    let data = setups::cifar_data(scale);
    let cfg = TrainConfig::cifar_small(epochs, 0);
    let vanilla = train(setups::vgg11(10, 1), ModelPlan::None, &data, &cfg).expect("training");
    let low_rank = train(
        setups::vgg11(10, 1),
        ModelPlan::VggHybrid { first_low_rank: 2, rank_ratio: 0.25 },
        &data,
        &cfg,
    )
    .expect("training");

    let mut t = Table::new(vec!["epoch", "vanilla VGG-11 acc", "low-rank VGG-11 acc"]);
    for (v, l) in vanilla.report.epochs.iter().zip(&low_rank.report.epochs) {
        t.row(vec![
            v.epoch.to_string(),
            format!("{:.3}", v.eval_accuracy.unwrap_or(0.0)),
            format!("{:.3}", l.eval_accuracy.unwrap_or(0.0)),
        ]);
    }
    println!("(a) VGG-11 / CIFAR-10:");
    t.print();
    let gap_a = vanilla.report.final_test_accuracy() - low_rank.report.final_test_accuracy();
    println!("final-accuracy gap (vanilla - low-rank): {gap_a:+.3}\n");

    // (b) ResNet-50 on ImageNet-lite.
    let data = setups::imagenet_lite_data(scale);
    let cfg = TrainConfig::imagenet_small(epochs, 0);
    let classes = data.config().classes;
    let vanilla50 =
        train(setups::resnet50(classes, 1), ModelPlan::None, &data, &cfg).expect("training");
    let low50 = train(
        setups::resnet50(classes, 1),
        ModelPlan::ResNetHybrid(ResNetHybridPlan::all_layers(0.25)),
        &data,
        &cfg,
    )
    .expect("training");

    let mut t = Table::new(vec!["epoch", "vanilla ResNet-50 acc", "low-rank ResNet-50 acc"]);
    for (v, l) in vanilla50.report.epochs.iter().zip(&low50.report.epochs) {
        t.row(vec![
            v.epoch.to_string(),
            format!("{:.3}", v.eval_accuracy.unwrap_or(0.0)),
            format!("{:.3}", l.eval_accuracy.unwrap_or(0.0)),
        ]);
    }
    println!("(b) ResNet-50 / ImageNet-lite:");
    t.print();
    let gap_b = vanilla50.report.final_test_accuracy() - low50.report.final_test_accuracy();
    println!("final-accuracy gap (vanilla - low-rank): {gap_b:+.3}");
    println!("\npaper shape: low-rank-from-scratch loses accuracy; gap larger on the harder task");
    println!("(paper: ~0.4% on CIFAR VGG, ~3% top-1 on ImageNet ResNet-50).");
    record_result("fig2_convergence", &format!("gap_vgg11={gap_a:.4} gap_resnet50={gap_b:.4}"));
}
