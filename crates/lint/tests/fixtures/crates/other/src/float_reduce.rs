//! Float-reduction fixture: a `HashMap`-backed `.sum::<f32>()` (flagged),
//! a suppressed variant, order-safe reductions (`BTreeMap`, min/max
//! folds), and a test-only offender.

use std::collections::{BTreeMap, HashMap};

pub fn hash_backed_sum(xs: &[(u32, f32)]) -> f32 {
    let m: HashMap<u32, f32> = xs.iter().copied().collect();
    m.values().sum::<f32>()
}

pub fn suppressed(xs: &[(u32, f32)]) -> f32 {
    let m: HashMap<u32, f32> = xs.iter().copied().collect();
    // lint:allow(nondeterministic-float-reduction) — fixture: annotated
    m.values().sum::<f32>()
}

pub fn sorted_sum(xs: &[(u32, f32)]) -> f32 {
    let m: BTreeMap<u32, f32> = xs.iter().copied().collect();
    m.values().sum::<f32>()
}

pub fn hash_extreme(xs: &[(u32, f32)]) -> f32 {
    let m: HashMap<u32, f32> = xs.iter().copied().collect();
    m.values().copied().fold(f32::NEG_INFINITY, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_sum_in_tests_is_exempt() {
        let m: HashMap<u32, f32> = HashMap::new();
        let s = m.values().sum::<f32>();
        assert_eq!(s, 0.0);
    }
}
