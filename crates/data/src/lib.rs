//! Synthetic workload generators for the Pufferfish reproduction.
//!
//! The paper trains on CIFAR-10, ImageNet, WikiText-2, and WMT'16 En↔De.
//! None of those datasets ship with this repository, so this crate provides
//! deterministic synthetic stand-ins that exercise the same code paths and
//! metrics (accuracy / top-k accuracy, perplexity, BLEU):
//!
//! * [`images`] — class-conditional texture images ("CIFAR-10-like" at
//!   `32×32×3`, "ImageNet-lite" at configurable size/classes), with the
//!   paper's augmentation pipeline (pad-crop, horizontal flip, per-channel
//!   normalization, appendix H);
//! * [`text`] — a Markov-chain language corpus for next-word prediction
//!   (the WikiText-2 stand-in), with the standard `batchify`/BPTT layout;
//! * [`translation`] — a deterministic toy translation task (token
//!   remapping + reversal) scored with real corpus [`bleu`];
//! * [`bleu`] — corpus-level BLEU-4 with brevity penalty;
//! * [`shard`] — deterministic row-wise batch sharding for data-parallel
//!   members (pure function of rank and member count, so elastic member
//!   sets can re-shard a stream mid-run).
//!
//! Every generator takes an explicit seed; identical seeds produce
//! identical datasets across runs and platforms.

pub mod bleu;
pub mod images;
pub mod shard;
pub mod text;
pub mod translation;
