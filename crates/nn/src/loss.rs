//! Losses and classification metrics.

use crate::{NnError, Result};
use puffer_tensor::stats::top_k_indices;
use puffer_tensor::Tensor;

/// Softmax cross-entropy with optional label smoothing, returning the mean
/// loss and `∂L/∂logits`.
///
/// With smoothing `ε`, the target distribution is
/// `(1-ε)·onehot + ε/C` — the recipe the paper uses for ImageNet and the
/// Transformer (appendix I).
///
/// # Errors
///
/// Returns [`NnError::BadTarget`] if any target index is out of range, or a
/// shape error if `targets.len()` does not match the batch dimension.
///
/// # Example
///
/// ```
/// use puffer_nn::loss::softmax_cross_entropy;
/// use puffer_tensor::Tensor;
/// let logits = Tensor::from_vec(vec![10.0, 0.0, 0.0, 10.0], &[2, 2])?;
/// let (loss, grad) = softmax_cross_entropy(&logits, &[0, 1], 0.0)?;
/// assert!(loss < 1e-3);           // confident and correct
/// assert_eq!(grad.shape(), &[2, 2]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn softmax_cross_entropy(
    logits: &Tensor,
    targets: &[usize],
    label_smoothing: f32,
) -> Result<(f32, Tensor)> {
    let (n, c) = (logits.shape()[0], logits.shape()[1]);
    if targets.len() != n {
        return Err(NnError::BadConfig {
            layer: "softmax_cross_entropy",
            reason: format!("{} targets for batch of {n}", targets.len()),
        });
    }
    for &t in targets {
        if t >= c {
            return Err(NnError::BadTarget { class: t, num_classes: c });
        }
    }
    let eps = label_smoothing;
    let mut grad = Tensor::zeros(&[n, c]);
    let mut total = 0.0f64;
    for (i, &target) in targets.iter().enumerate() {
        let row = logits.row_slice(i);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = row.iter().map(|&x| (x - max).exp()).collect();
        let z: f32 = exps.iter().sum();
        let log_z = z.ln() + max;
        // Smoothed target: (1-eps) onehot + eps/C.
        let mut loss_i = 0.0f32;
        for j in 0..c {
            let p = exps[j] / z;
            let target_w = if j == target { 1.0 - eps + eps / c as f32 } else { eps / c as f32 };
            loss_i += target_w * (log_z - row[j]);
            grad.as_mut_slice()[i * c + j] = (p - target_w) / n as f32;
        }
        total += loss_i as f64;
    }
    Ok(((total / n as f64) as f32, grad))
}

/// Mean negative log-likelihood of the targets under `softmax(logits)` —
/// the quantity whose exponential is perplexity.
///
/// # Errors
///
/// Same as [`softmax_cross_entropy`].
pub fn nll(logits: &Tensor, targets: &[usize]) -> Result<f32> {
    softmax_cross_entropy(logits, targets, 0.0).map(|(l, _)| l)
}

/// Perplexity `exp(NLL)` over the batch.
///
/// # Errors
///
/// Same as [`softmax_cross_entropy`].
pub fn perplexity(logits: &Tensor, targets: &[usize]) -> Result<f32> {
    nll(logits, targets).map(f32::exp)
}

/// Top-1 accuracy in `[0, 1]`.
///
/// # Panics
///
/// Panics if `targets.len()` differs from the batch dimension.
pub fn accuracy(logits: &Tensor, targets: &[usize]) -> f32 {
    top_k_accuracy(logits, targets, 1)
}

/// Top-k accuracy in `[0, 1]` (paper Tables 5 and 7 report top-1 and top-5).
///
/// # Panics
///
/// Panics if `targets.len()` differs from the batch dimension.
pub fn top_k_accuracy(logits: &Tensor, targets: &[usize], k: usize) -> f32 {
    let (n, _c) = (logits.shape()[0], logits.shape()[1]);
    assert_eq!(targets.len(), n, "targets/batch mismatch");
    if n == 0 {
        return 0.0;
    }
    let mut hits = 0usize;
    for (i, target) in targets.iter().enumerate() {
        let top = top_k_indices(logits.row_slice(i), k);
        if top.contains(target) {
            hits += 1;
        }
    }
    hits as f32 / n as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_c() {
        let logits = Tensor::zeros(&[4, 10]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 1, 2, 3], 0.0).unwrap();
        assert!((loss - 10.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = Tensor::randn(&[3, 4], 1.0, 1);
        let targets = [2, 0, 3];
        let (_, grad) = softmax_cross_entropy(&logits, &targets, 0.1).unwrap();
        let eps = 1e-3;
        for i in 0..logits.len() {
            let mut lp = logits.clone();
            lp.as_mut_slice()[i] += eps;
            let (fp, _) = softmax_cross_entropy(&lp, &targets, 0.1).unwrap();
            lp.as_mut_slice()[i] -= 2.0 * eps;
            let (fm, _) = softmax_cross_entropy(&lp, &targets, 0.1).unwrap();
            let num = (fp - fm) / (2.0 * eps);
            assert!((num - grad.as_slice()[i]).abs() < 1e-3, "elem {i}");
        }
    }

    #[test]
    fn grad_rows_sum_to_zero() {
        // Softmax CE gradient rows always sum to zero (prob simplex).
        let logits = Tensor::randn(&[5, 7], 2.0, 2);
        let (_, grad) = softmax_cross_entropy(&logits, &[0, 1, 2, 3, 4], 0.2).unwrap();
        for i in 0..5 {
            let s: f32 = grad.row_slice(i).iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn label_smoothing_increases_confident_loss() {
        let logits = Tensor::from_vec(vec![20.0, 0.0, 0.0], &[1, 3]).unwrap();
        let (plain, _) = softmax_cross_entropy(&logits, &[0], 0.0).unwrap();
        let (smoothed, _) = softmax_cross_entropy(&logits, &[0], 0.1).unwrap();
        assert!(smoothed > plain);
    }

    #[test]
    fn numerical_stability_large_logits() {
        let logits = Tensor::from_vec(vec![1000.0, -1000.0], &[1, 2]).unwrap();
        let (loss, grad) = softmax_cross_entropy(&logits, &[0], 0.0).unwrap();
        assert!(loss.is_finite());
        assert!(grad.as_slice().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn accuracy_metrics() {
        let logits = Tensor::from_vec(
            vec![
                3.0, 2.0, 1.0, // top-1 = 0
                1.0, 3.0, 2.0, // top-1 = 1
                1.0, 2.0, 3.0, // top-1 = 2
            ],
            &[3, 3],
        )
        .unwrap();
        assert_eq!(accuracy(&logits, &[0, 1, 0]), 2.0 / 3.0);
        // Top-2 sets per row: {0,1}, {1,2}, {2,1}.
        assert_eq!(top_k_accuracy(&logits, &[1, 0, 0], 2), 1.0 / 3.0);
        assert_eq!(top_k_accuracy(&logits, &[1, 2, 1], 2), 1.0);
        assert_eq!(top_k_accuracy(&logits, &[2, 2, 2], 3), 1.0);
    }

    #[test]
    fn validation_errors() {
        let logits = Tensor::zeros(&[2, 3]);
        assert!(softmax_cross_entropy(&logits, &[0], 0.0).is_err());
        assert!(softmax_cross_entropy(&logits, &[0, 9], 0.0).is_err());
    }

    #[test]
    fn perplexity_of_uniform_is_vocab_size() {
        let logits = Tensor::zeros(&[4, 50]);
        let ppl = perplexity(&logits, &[0, 1, 2, 3]).unwrap();
        assert!((ppl - 50.0).abs() < 0.01);
    }
}
