//! `puffer-insight`: the analysis half of the observability stack.
//!
//! `puffer-probe` *records* — spans, counters, histograms, fault events —
//! but interpreting a faulty distributed run still meant eyeballing a
//! Chrome trace. This crate *reads* the probe's own export formats (via
//! probe's JSON parser — no second parser to drift) and answers the
//! questions ROADMAP item 2 asks of every run:
//!
//! * **[`ingest`]** — parse a Chrome trace and/or JSONL metrics file into
//!   a [`ingest::RunData`]: spans, instant events, counters, histogram
//!   rows, and the run-context header stamped by the exporter.
//! * **[`rounds`]** — reassemble per-round, per-worker span trees;
//!   extract each round's critical path (which worker, which phase);
//!   classify rounds compute- vs comm- vs straggler-bound.
//! * **[`alphabeta`]** — least-squares fit of measured α–β per collective
//!   from the `(nodes, bytes, duration)` triples on comm spans, reconciled
//!   against the analytic cost model in `puffer_dist::cost`.
//! * **[`report`]** — render the per-run text report and
//!   `BENCH_insight.json`, with gates a CI check can assert.
//! * **[`diff`]** — compare any two `BENCH_*.json` files with noise-aware
//!   thresholds (the `bench_diff --check` regression gate).
//!
//! Everything here is deterministic: the same input document produces
//! byte-identical reports, so regression gates can compare runs without
//! chasing formatting noise.

pub mod alphabeta;
pub mod diff;
pub mod ingest;
pub mod report;
pub mod rounds;

pub use diff::{diff, DiffOptions, DiffReport};
pub use ingest::RunData;
pub use report::{analyze, InsightReport};
pub use rounds::{extract_rounds, Bound, Round};
