//! Training telemetry shared by all Pufferfish trainers.

use std::time::Duration;

/// One epoch's metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochMetrics {
    /// 0-based epoch index.
    pub epoch: usize,
    /// Mean training loss over the epoch.
    pub train_loss: f32,
    /// Test/validation loss.
    pub eval_loss: f32,
    /// Test accuracy (classification) or `None` for LM/seq2seq tasks.
    pub eval_accuracy: Option<f32>,
    /// Learning rate used this epoch.
    pub lr: f32,
    /// Trainable parameters of the model during this epoch (changes at the
    /// warm-up → hybrid switch).
    pub params: usize,
    /// Wall-clock time of the epoch.
    pub wall: Duration,
}

/// A full training run's record.
#[derive(Debug, Clone, Default)]
pub struct TrainReport {
    /// Per-epoch metrics.
    pub epochs: Vec<EpochMetrics>,
    /// Time spent in the one-off SVD factorization at the warm-up boundary
    /// (`None` if no conversion happened) — the quantity of appendix
    /// Table 19.
    pub svd_time: Option<Duration>,
    /// Epoch at which the model switched to the hybrid architecture.
    pub switch_epoch: Option<usize>,
    /// Parameter count before the switch.
    pub vanilla_params: usize,
    /// Parameter count after the switch (equals `vanilla_params` when no
    /// conversion happened).
    pub hybrid_params: usize,
}

impl TrainReport {
    /// Final test accuracy (0.0 when the task has no accuracy metric or no
    /// epochs ran).
    pub fn final_test_accuracy(&self) -> f32 {
        self.epochs.last().and_then(|e| e.eval_accuracy).unwrap_or(0.0)
    }

    /// Final evaluation loss (∞ when no epochs ran).
    pub fn final_eval_loss(&self) -> f32 {
        self.epochs.last().map(|e| e.eval_loss).unwrap_or(f32::INFINITY)
    }

    /// Final evaluation perplexity `exp(loss)`.
    pub fn final_perplexity(&self) -> f32 {
        self.final_eval_loss().exp()
    }

    /// Total wall-clock time across epochs plus the SVD step — the
    /// "end-to-end" time of the paper's Figure 4 (the paper includes SVD
    /// and warm-up overheads in all end-to-end numbers).
    pub fn total_wall(&self) -> Duration {
        self.epochs.iter().map(|e| e.wall).sum::<Duration>()
            + self.svd_time.unwrap_or(Duration::ZERO)
    }

    /// Compression ratio `vanilla / hybrid` parameter counts.
    pub fn compression_ratio(&self) -> f64 {
        if self.hybrid_params == 0 {
            1.0
        } else {
            self.vanilla_params as f64 / self.hybrid_params as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn epoch(i: usize, acc: f32) -> EpochMetrics {
        EpochMetrics {
            epoch: i,
            train_loss: 1.0,
            eval_loss: 0.5,
            eval_accuracy: Some(acc),
            lr: 0.1,
            params: 100,
            wall: Duration::from_millis(10),
        }
    }

    #[test]
    fn accessors() {
        let mut r = TrainReport::default();
        assert_eq!(r.final_test_accuracy(), 0.0);
        assert!(r.final_eval_loss().is_infinite());
        r.epochs.push(epoch(0, 0.5));
        r.epochs.push(epoch(1, 0.8));
        r.vanilla_params = 200;
        r.hybrid_params = 100;
        r.svd_time = Some(Duration::from_millis(5));
        assert_eq!(r.final_test_accuracy(), 0.8);
        assert_eq!(r.total_wall(), Duration::from_millis(25));
        assert!((r.compression_ratio() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn perplexity_is_exp_loss() {
        let mut r = TrainReport::default();
        r.epochs.push(EpochMetrics { eval_loss: 2.0, ..epoch(0, 0.0) });
        assert!((r.final_perplexity() - 2.0f32.exp()).abs() < 1e-5);
    }
}
