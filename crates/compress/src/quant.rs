//! Stochastic binary quantization (Suresh et al. 2016) — the appendix-F
//! case study.
//!
//! Each worker sends, per layer, `(min, max)` plus **one stochastic bit per
//! coordinate**: coordinate `x` becomes `max` with probability
//! `(x − min)/(max − min)` and `min` otherwise — an unbiased estimator.
//! The bit-stream is not summable, so aggregation is allgather and every
//! worker must expand and average `n_workers` quantized gradients — the
//! decompression cost the paper measures at 118.4 s/epoch on 16 nodes
//! (Figure 7).

use crate::pack::{pack, unpack, PackLayout};
use crate::{AggregationKind, GradCompressor, RoundStats};
use puffer_probe::Stopwatch;
use puffer_tensor::Tensor;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// One worker's quantized flat gradient.
#[derive(Debug, Clone)]
pub struct QuantMessage {
    min: f32,
    max: f32,
    bits: Vec<u64>,
    len: usize,
}

impl QuantMessage {
    /// Stochastically quantizes a flat buffer.
    pub fn encode<R: Rng>(values: &[f32], rng: &mut R) -> Self {
        let min = values.iter().copied().fold(f32::INFINITY, f32::min);
        let max = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let span = (max - min).max(f32::MIN_POSITIVE);
        let mut bits = vec![0u64; values.len().div_ceil(64)];
        for (i, &v) in values.iter().enumerate() {
            let p = ((v - min) / span).clamp(0.0, 1.0);
            if rng.gen::<f32>() < p {
                bits[i / 64] |= 1u64 << (i % 64);
            }
        }
        QuantMessage { min, max, bits, len: values.len() }
    }

    /// Expands coordinate `i`.
    pub fn decode_at(&self, i: usize) -> f32 {
        if self.bits[i / 64] >> (i % 64) & 1 == 1 {
            self.max
        } else {
            self.min
        }
    }

    /// Wire size in bytes (two f32 levels + 1 bit/coordinate).
    pub fn bytes(&self) -> usize {
        8 + self.bits.len() * 8
    }

    /// Number of coordinates.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the message is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Stochastic binary quantization compressor.
#[derive(Debug)]
pub struct BinaryQuant {
    rng: SmallRng,
    layout: Option<PackLayout>,
}

impl BinaryQuant {
    /// Creates the compressor.
    pub fn new(seed: u64) -> Self {
        BinaryQuant { rng: SmallRng::seed_from_u64(seed), layout: None }
    }
}

impl GradCompressor for BinaryQuant {
    fn name(&self) -> &'static str {
        "binary-quant"
    }

    fn aggregation(&self) -> AggregationKind {
        AggregationKind::AllGather
    }

    fn round(&mut self, worker_grads: &[Vec<Tensor>]) -> (Vec<Tensor>, RoundStats) {
        let n_workers = worker_grads.len();
        let mut encode_time = Duration::ZERO;
        let mut msgs = Vec::with_capacity(n_workers);
        let mut total_len = 0;
        for grads in worker_grads {
            let t0 = Stopwatch::start();
            let (flat, layout) = pack(grads);
            total_len = layout.total_len();
            self.layout = Some(layout);
            msgs.push(QuantMessage::encode(flat.as_slice(), &mut self.rng));
            encode_time += t0.elapsed();
        }
        let bytes = msgs[0].bytes();
        // Per-node encode: each node only quantizes its own gradient.
        encode_time /= n_workers.max(1) as u32;

        // Decode: expand every worker's message and average — O(workers · n),
        // the dominant cost in the paper's appendix-F measurement.
        let t0 = Stopwatch::start();
        let mut dense = Tensor::zeros(&[total_len]);
        for msg in &msgs {
            for i in 0..total_len {
                dense.as_mut_slice()[i] += msg.decode_at(i);
            }
        }
        dense.scale(1.0 / n_workers as f32);
        let out = unpack(&dense, self.layout.as_ref().expect("layout set"));
        let decode_time = t0.elapsed();
        (
            out,
            RoundStats::new(
                bytes,
                worker_grads.len(),
                self.aggregation(),
                encode_time,
                decode_time,
            ),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantization_is_unbiased() {
        let mut rng = SmallRng::seed_from_u64(1);
        let vals = vec![0.25f32; 4096];
        // min = max = 0.25 → degenerate span; use a spread buffer instead.
        let mut spread = vals.clone();
        spread[0] = 0.0;
        spread[1] = 1.0;
        let mut acc = vec![0.0f64; spread.len()];
        let trials = 600;
        for _ in 0..trials {
            let msg = QuantMessage::encode(&spread, &mut rng);
            for (i, a) in acc.iter_mut().enumerate() {
                *a += msg.decode_at(i) as f64;
            }
        }
        for (i, a) in acc.iter().enumerate().skip(2).take(50) {
            let mean = a / trials as f64;
            assert!((mean - 0.25).abs() < 0.06, "coord {i}: mean {mean}");
        }
    }

    #[test]
    fn decode_returns_levels_only() {
        let mut rng = SmallRng::seed_from_u64(2);
        let vals = [-1.0f32, -0.5, 0.0, 0.5, 1.0];
        let msg = QuantMessage::encode(&vals, &mut rng);
        for i in 0..5 {
            let d = msg.decode_at(i);
            assert!(d == -1.0 || d == 1.0, "decoded {d}");
        }
        // Extremes are deterministic.
        assert_eq!(msg.decode_at(0), -1.0);
        assert_eq!(msg.decode_at(4), 1.0);
    }

    #[test]
    fn message_is_one_bit_per_coordinate() {
        let mut rng = SmallRng::seed_from_u64(3);
        let vals = vec![0.5f32; 1024];
        let msg = QuantMessage::encode(&vals, &mut rng);
        assert_eq!(msg.bytes(), 8 + 1024 / 64 * 8);
        assert_eq!(msg.len(), 1024);
    }

    #[test]
    fn round_produces_bounded_output() {
        let mut c = BinaryQuant::new(4);
        let g1 = vec![Tensor::rand_uniform(&[64], -1.0, 1.0, 5)];
        let g2 = vec![Tensor::rand_uniform(&[64], -1.0, 1.0, 6)];
        let (out, stats) = c.round(&[g1, g2]);
        assert!(out[0].as_slice().iter().all(|&v| (-1.0..=1.0).contains(&v)));
        assert!(stats.bytes_per_worker < 64 * 4);
        assert_eq!(c.aggregation(), AggregationKind::AllGather);
    }

    #[test]
    fn constant_buffer_handled() {
        // Degenerate span (min == max) must not divide by zero.
        let mut c = BinaryQuant::new(7);
        let g = vec![Tensor::full(&[8], 0.3)];
        let (out, _) = c.round(&[g]);
        assert!(out[0].as_slice().iter().all(|v| v.is_finite()));
    }
}
