//! Discarded-result fixture: `let _ =` and bare-statement discards of
//! workspace and `std::fs` `Result`s, a suppressed variant, and the
//! accepted handling forms (`?` and an explicit `.ok()`).

use std::path::Path;

pub fn save_manifest(path: &Path) -> Result<(), String> {
    std::fs::write(path, b"puffer").map_err(|e| e.to_string())
}

pub fn let_discard(path: &Path) {
    let _ = save_manifest(path);
}

pub fn bare_discard(path: &Path) {
    std::fs::remove_file(path);
}

pub fn suppressed(path: &Path) {
    // lint:allow(discarded-result) — fixture: annotated best-effort write
    let _ = save_manifest(path);
}

pub fn propagates(path: &Path) -> Result<(), String> {
    save_manifest(path)?;
    Ok(())
}

pub fn best_effort(path: &Path) {
    save_manifest(path).ok();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discards_in_tests_are_exempt() {
        let _ = save_manifest(Path::new("/tmp/puffer_fixture"));
    }
}
