//! BLIS-style cache-blocked GEMM engine with a runtime-detected SIMD
//! micro-kernel.
//!
//! This module is the single dense-compute core of the repository: the
//! `Optimized` profile of [`crate::matmul`] (plain, `ᵀ·` and `·ᵀ` variants,
//! and through them the im2col convolution lowering in `puffer-nn`) all
//! funnel into [`gemm`]. The engine follows the classic three-level
//! blocking hierarchy (Goto/BLIS):
//!
//! ```text
//! for jc in 0..n step NC         # B column block   → L3-resident
//!   for pc in 0..k step KC       # K block          → panels sliced per pass
//!     for ic in 0..m step MC     # A row block      → L2-resident packed A
//!       for jr (NR-wide panels)  # B micro-panel    → L1-resident (KC×NR)
//!         for ir (MR-wide panels)
//!           MR×NR register-tile micro-kernel over p = pc..pc+kc
//! ```
//!
//! Both operands are repacked once per call into micro-panels grouped by
//! KC block (A: `[pc][ir][p][MR]`, B: `[pc][jr][p][NR]`), drawn from the
//! per-thread scratch arenas ([`crate::workspace`]) so steady-state steps
//! allocate nothing fresh. Threads own whole `(jc, ic)` tiles of C — the
//! NC/MC loop nest, not raw output rows — so each worker streams
//! cache-resident panels instead of fighting its siblings for the same
//! B panel bandwidth.
//!
//! # The micro-kernel
//!
//! The register tile is MR=6 × NR=16: twelve 8-lane f32 accumulators, two
//! B vectors and one A broadcast fill 15 of the 16 AVX2 `ymm` registers,
//! and every `p` step issues 12 FMAs against 8 load-port µops — the
//! FMA-throughput-bound shape on every AVX2 core. The kernel is selected
//! at runtime via `is_x86_feature_detected!("avx2")/("fma")` and can be
//! forced off with `PUFFER_SIMD=0` (or [`set_simd_enabled`]); the scalar
//! fallback computes the *identical* fused chain through [`f32::mul_add`],
//! which (like the hardware FMA) rounds once per step, so SIMD-on and
//! SIMD-off results are **bitwise identical**.
//!
//! # Determinism
//!
//! Every output element is one accumulator reduced over `p = 0..k` in
//! ascending order with a single rounding per step:
//! `c ← fma(a[i,p], b[p,j], c)`. Vectorization is across the NR *column
//! lanes* — different output elements — so lane order never touches any
//! element's reduction order. KC blocking stores the accumulator to C at a
//! block boundary and reloads the same bits for the next block, which is
//! bit-for-bit the uninterrupted chain; MC/NC/tile partitioning only picks
//! *which thread* owns an element. Results are therefore bitwise invariant
//! to thread count, SIMD on/off, **and** the KC/MC/NC choices — pinned by
//! `crates/tensor/tests/simd_bitwise.rs` against the scalar `mul_add`
//! reference.

use crate::{pool, workspace};
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};

/// Register-tile height: rows of C held in accumulators by the micro-kernel.
pub const MR: usize = 6;

/// Register-tile width: columns of C held in accumulators (two 8-lane
/// vectors in the AVX2 kernel).
pub const NR: usize = 16;

/// Default K-dimension block: one packed B micro-panel is `KC×NR` f32
/// (16 KiB) — half of a 32 KiB L1d — and stays resident across the whole
/// `ir` loop.
const KC_DEFAULT: usize = 256;

/// Default M-dimension block: the packed `MC×KC` A block is 96 KiB, sized
/// to sit in L2 while the micro-kernel streams it NR columns at a time.
const MC_DEFAULT: usize = 96;

/// Default N-dimension block: the packed `KC×NC` B slab is 2 MiB, sized
/// for an L3 share; one `(jc, ic)` tile of C is the unit of thread work.
const NC_DEFAULT: usize = 2048;

/// Minimum packed-element count before operand packing itself fans out to
/// the worker pool (overridable via `PUFFER_GEMM_PAR_MIN_PACK`).
const PAR_MIN_PACK_DEFAULT: usize = 1 << 16;

static KC: AtomicUsize = AtomicUsize::new(0);
static MC: AtomicUsize = AtomicUsize::new(0);
static NC: AtomicUsize = AtomicUsize::new(0);
static PAR_MIN_PACK: AtomicUsize = AtomicUsize::new(0);

/// `0` = unresolved, `1` = scalar fallback, `2` = AVX2+FMA kernel.
static SIMD: AtomicU8 = AtomicU8::new(0);

/// Whether this build/host can run the vector micro-kernel at all
/// (compile-time x86-64 and runtime AVX2 + FMA detection).
pub fn simd_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Whether the vector micro-kernel is currently in use. Resolves lazily:
/// `PUFFER_SIMD=0` (or `false`/`off`) forces the scalar fallback, otherwise
/// runtime feature detection decides. Results are bitwise identical either
/// way; the switch exists for A/B benchmarking and fallback testing.
pub fn simd_enabled() -> bool {
    match SIMD.load(Ordering::Relaxed) {
        0 => {
            let env_off = std::env::var("PUFFER_SIMD")
                .map(|v| matches!(v.trim(), "0" | "false" | "off"))
                .unwrap_or(false);
            let on = !env_off && simd_supported();
            let _ = SIMD.compare_exchange(
                0,
                if on { 2 } else { 1 },
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
            SIMD.load(Ordering::Relaxed) == 2
        }
        s => s == 2,
    }
}

/// Forces the micro-kernel choice at runtime. Requesting SIMD on a host
/// without AVX2+FMA keeps the scalar fallback (the setting is effective,
/// not aspirational). The bitwise-equality tests toggle this to compare
/// both paths in one process.
pub fn set_simd_enabled(on: bool) {
    SIMD.store(if on && simd_supported() { 2 } else { 1 }, Ordering::Relaxed);
}

fn resolve(cell: &AtomicUsize, env: &str, default: usize, round_to: usize) -> usize {
    let v = cell.load(Ordering::Relaxed);
    if v != 0 {
        return v;
    }
    let raw = std::env::var(env)
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&x| x > 0)
        .unwrap_or(default);
    let rounded = raw.div_ceil(round_to).max(1) * round_to;
    let _ = cell.compare_exchange(0, rounded, Ordering::Relaxed, Ordering::Relaxed);
    cell.load(Ordering::Relaxed)
}

/// The effective `(KC, MC, NC)` blocking, resolving `PUFFER_GEMM_KC` /
/// `PUFFER_GEMM_MC` / `PUFFER_GEMM_NC` on first use. MC is rounded up to a
/// multiple of MR and NC to a multiple of NR so block edges coincide with
/// register-tile edges.
pub fn blocking() -> (usize, usize, usize) {
    (
        resolve(&KC, "PUFFER_GEMM_KC", KC_DEFAULT, 1),
        resolve(&MC, "PUFFER_GEMM_MC", MC_DEFAULT, MR),
        resolve(&NC, "PUFFER_GEMM_NC", NC_DEFAULT, NR),
    )
}

/// Overrides the blocking hierarchy at runtime (rounded like [`blocking`]).
/// Results are bitwise invariant to these choices — the boundary proptests
/// shrink them to force multi-block paths on small matrices.
pub fn set_blocking(kc: usize, mc: usize, nc: usize) {
    KC.store(kc.max(1), Ordering::Relaxed);
    MC.store(mc.div_ceil(MR).max(1) * MR, Ordering::Relaxed);
    NC.store(nc.div_ceil(NR).max(1) * NR, Ordering::Relaxed);
}

/// The packed-element count above which operand packing fans out
/// (`PUFFER_GEMM_PAR_MIN_PACK`, default `2^16`).
pub fn pack_parallel_threshold() -> usize {
    resolve(&PAR_MIN_PACK, "PUFFER_GEMM_PAR_MIN_PACK", PAR_MIN_PACK_DEFAULT, 1)
}

/// A strided read-only view of a row-major operand: element `(i, j)` lives
/// at `data[i * rs + j * cs]`. `matmul` passes `(k, 1)`-strided A and
/// `(n, 1)`-strided B; the fused-transpose variants swap strides instead of
/// materializing the transpose.
#[derive(Clone, Copy)]
pub struct View<'a> {
    /// Backing storage.
    pub data: &'a [f32],
    /// Row stride (elements between `(i, j)` and `(i+1, j)`).
    pub rs: usize,
    /// Column stride (elements between `(i, j)` and `(i, j+1)`).
    pub cs: usize,
}

impl<'a> View<'a> {
    /// A view over a row-major `rows×cols` matrix.
    pub fn row_major(data: &'a [f32], cols: usize) -> Self {
        View { data, rs: cols, cs: 1 }
    }

    /// The transposed view (no data movement).
    pub fn t(self) -> Self {
        View { data: self.data, rs: self.cs, cs: self.rs }
    }
}

/// Shared pointer to the output matrix, handed to pool workers that write
/// disjoint `(jc, ic)` tiles.
struct SendPtr(*mut f32);
// SAFETY: only disjoint C tiles derived from distinct tile indices are ever
// written through this pointer, and the dispatching call joins all workers
// before returning.
unsafe impl Send for SendPtr {}
// SAFETY: shared references to SendPtr only read the pointer value; the
// disjoint-tile argument above covers every derived write.
unsafe impl Sync for SendPtr {}

/// `C += A · B` on a zero-initialized row-major `m×n` C, with `A: m×k` and
/// `B: k×n` given as [`View`]s. `parallel` fans the `(jc, ic)` tile grid
/// (and, above [`pack_parallel_threshold`], the operand packing) out to the
/// worker pool; results are bitwise identical for every thread count and
/// for SIMD on/off.
pub fn gemm(a: View<'_>, b: View<'_>, c: &mut [f32], m: usize, k: usize, n: usize, parallel: bool) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    debug_assert!(c.len() == m * n);
    let (kc, mc, nc) = blocking();
    let a_panels = m.div_ceil(MR);
    let b_panels = n.div_ceil(NR);

    let mut packed_a = workspace::take(a_panels * MR * k);
    let mut packed_b = workspace::take(b_panels * NR * k);
    // Pack A's columns (the k×m transposed view) into MR-wide micro-panels
    // and B's rows into NR-wide ones, both grouped by KC block.
    pack_operand(a.t(), k, m, MR, kc, packed_a.as_mut_slice(), parallel);
    pack_operand(b, k, n, NR, kc, packed_b.as_mut_slice(), parallel);

    let eng = Engine {
        packed_a: packed_a.as_slice(),
        packed_b: packed_b.as_slice(),
        c: SendPtr(c.as_mut_ptr()),
        m,
        k,
        n,
        kc,
        mc,
        nc,
        simd: simd_enabled(),
    };
    let n_ic = m.div_ceil(mc);
    let n_jc = n.div_ceil(nc);
    let n_tiles = n_ic * n_jc;
    if parallel && n_tiles > 1 {
        pool::run_partitioned(n_tiles, |range| {
            for tile in range {
                eng.process_tile(tile / n_ic, tile % n_ic);
            }
        });
    } else {
        for tile in 0..n_tiles {
            eng.process_tile(tile / n_ic, tile % n_ic);
        }
    }
}

/// Packs a logical `k×d` operand (element `(p, j)` of `src`) into `r`-wide
/// zero-padded micro-panels grouped by KC block: panel `(pc, id)` holds
/// `kc_len` rows of `r` consecutive `j` lanes, laid out contiguously so the
/// micro-kernel streams it. The destination comes zeroed from the
/// workspace, so padding lanes need no explicit writes. Pure element
/// copies — packed contents are independent of the thread partition.
fn pack_operand(
    src: View<'_>,
    k: usize,
    d: usize,
    r: usize,
    kc: usize,
    packed: &mut [f32],
    parallel: bool,
) {
    let panels = d.div_ceil(r);
    let n_pc = k.div_ceil(kc);
    let n_items = n_pc * panels;
    let fill = |pc: usize, id: usize, dst: &mut [f32]| {
        let p0 = pc * kc;
        let kc_len = kc.min(k - p0);
        let j0 = id * r;
        let w = r.min(d - j0);
        for p in 0..kc_len {
            let row = &mut dst[p * r..p * r + w];
            for (q, slot) in row.iter_mut().enumerate() {
                *slot = src.data[(p0 + p) * src.rs + (j0 + q) * src.cs];
            }
        }
    };
    // Panel (pc, id) starts at block base `panels·r·(pc·kc)` (previous
    // blocks hold exactly pc·kc packed rows) plus `id` whole panels.
    let offset = |pc: usize, id: usize| {
        let kc_len = kc.min(k - pc * kc);
        (panels * r * (pc * kc) + id * r * kc_len, r * kc_len)
    };
    if parallel && packed.len() >= pack_parallel_threshold() {
        let base = SendPtr(packed.as_mut_ptr());
        pool::run_partitioned(n_items, |range| {
            let base = &base;
            for item in range {
                let (pc, id) = (item / panels, item % panels);
                let (off, len) = offset(pc, id);
                // SAFETY: panel ranges `(off, len)` are disjoint across item
                // indices and in-bounds for `packed`; run_partitioned hands
                // each worker distinct items and joins before returning.
                let dst = unsafe { std::slice::from_raw_parts_mut(base.0.add(off), len) };
                fill(pc, id, dst);
            }
        });
    } else {
        for item in 0..n_items {
            let (pc, id) = (item / panels, item % panels);
            let (off, len) = offset(pc, id);
            fill(pc, id, &mut packed[off..off + len]);
        }
    }
}

/// Everything a worker needs to compute one `(jc, ic)` tile of C.
struct Engine<'a> {
    packed_a: &'a [f32],
    packed_b: &'a [f32],
    c: SendPtr,
    m: usize,
    k: usize,
    n: usize,
    kc: usize,
    mc: usize,
    nc: usize,
    simd: bool,
}

impl Engine<'_> {
    /// Computes the C tile `(jc, ic)`: for each KC block, sweep the tile's
    /// NR-wide B panels (L1-resident) over its MR-wide A panels. Per
    /// element the KC loop continues the same fused accumulator chain —
    /// stored to C at a block edge and reloaded bit-for-bit — so the
    /// result is independent of `kc` and of which thread owns the tile.
    fn process_tile(&self, jc: usize, ic: usize) {
        let (m, k, n) = (self.m, self.k, self.n);
        let a_panels = m.div_ceil(MR);
        let b_panels = n.div_ceil(NR);
        let (i0, i1) = (ic * self.mc, m.min((ic + 1) * self.mc));
        let (j0, j1) = (jc * self.nc, n.min((jc + 1) * self.nc));
        let mut p0 = 0;
        while p0 < k {
            let kc_len = self.kc.min(k - p0);
            let a_base = a_panels * MR * p0;
            let b_base = b_panels * NR * p0;
            // MC is a multiple of MR and NC of NR, so block edges coincide
            // with whole panels.
            for jp in j0 / NR..j1.div_ceil(NR) {
                let pb = &self.packed_b[b_base + jp * NR * kc_len..][..NR * kc_len];
                let cols = NR.min(n - jp * NR);
                for ip in i0 / MR..i1.div_ceil(MR) {
                    let pa = &self.packed_a[a_base + ip * MR * kc_len..][..MR * kc_len];
                    let rows = MR.min(m - ip * MR);
                    // SAFETY: the tile pointer stays inside this worker's
                    // disjoint (jc, ic) region of C: rows ip·MR..ip·MR+rows
                    // and cols jp·NR..jp·NR+cols are in-bounds and owned by
                    // this tile alone.
                    let c_tile = unsafe { self.c.0.add(ip * MR * n + jp * NR) };
                    micro_tile(self.simd, kc_len, pa, pb, c_tile, n, rows, cols);
                }
            }
            p0 += kc_len;
        }
    }
}

/// Runs the register-tile kernel on one `rows×cols` tile of C (top-left at
/// `c`, row stride `ldc`). Full MR×NR tiles run in place; edge tiles stage
/// through a stack buffer: valid C elements are loaded into the buffer, the
/// same full-size kernel runs (padded lanes compute over packed zeros and
/// are discarded), and the valid region is stored back — per element this
/// is the identical fused chain, so edge handling never perturbs results.
#[allow(clippy::too_many_arguments)]
fn micro_tile(
    simd: bool,
    kc: usize,
    pa: &[f32],
    pb: &[f32],
    c: *mut f32,
    ldc: usize,
    rows: usize,
    cols: usize,
) {
    if rows == MR && cols == NR {
        kernel(simd, kc, pa, pb, c, ldc);
        return;
    }
    let mut tile = [0.0f32; MR * NR];
    for r in 0..rows {
        for q in 0..cols {
            // SAFETY: (r, q) < (rows, cols) stays inside the caller's C tile.
            unsafe { tile[r * NR + q] = *c.add(r * ldc + q) };
        }
    }
    kernel(simd, kc, pa, pb, tile.as_mut_ptr(), NR);
    for r in 0..rows {
        for q in 0..cols {
            // SAFETY: same in-bounds argument as the load above.
            unsafe { *c.add(r * ldc + q) = tile[r * NR + q] };
        }
    }
}

/// Dispatches one MR×NR register tile to the vector or scalar kernel.
#[inline]
fn kernel(simd: bool, kc: usize, pa: &[f32], pb: &[f32], c: *mut f32, ldc: usize) {
    #[cfg(target_arch = "x86_64")]
    if simd {
        // SAFETY: `simd` is only true when is_x86_feature_detected! reported
        // AVX2+FMA (see simd_enabled/set_simd_enabled), and the pointer
        // contract is the same as kernel_scalar's, upheld by micro_tile.
        unsafe { avx::kernel_6x16(kc, pa.as_ptr(), pb.as_ptr(), c, ldc) };
        return;
    }
    let _ = simd;
    kernel_scalar(kc, pa, pb, c, ldc);
}

/// Scalar micro-kernel: the identical fused chain as the AVX2 kernel,
/// `acc ← f32::mul_add(a, b, acc)`, which rounds once per step exactly like
/// `_mm256_fmadd_ps` — so the two paths are bitwise interchangeable.
fn kernel_scalar(kc: usize, pa: &[f32], pb: &[f32], c: *mut f32, ldc: usize) {
    let mut acc = [[0.0f32; NR]; MR];
    for (t, row) in acc.iter_mut().enumerate() {
        for (q, slot) in row.iter_mut().enumerate() {
            // SAFETY: micro_tile hands a tile with MR rows of stride ldc
            // and NR valid columns per row.
            *slot = unsafe { *c.add(t * ldc + q) };
        }
    }
    for p in 0..kc {
        let arow = &pa[p * MR..(p + 1) * MR];
        let brow = &pb[p * NR..(p + 1) * NR];
        for (t, row) in acc.iter_mut().enumerate() {
            let a = arow[t];
            for (slot, &bv) in row.iter_mut().zip(brow) {
                *slot = a.mul_add(bv, *slot);
            }
        }
    }
    for (t, row) in acc.iter().enumerate() {
        for (q, &v) in row.iter().enumerate() {
            // SAFETY: same tile contract as the loads above.
            unsafe { *c.add(t * ldc + q) = v };
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod avx {
    //! The AVX2+FMA register-tile kernel. Everything here is reachable only
    //! through [`super::kernel`], which checks runtime feature detection
    //! before taking this path.

    use super::{MR, NR};
    use core::arch::x86_64::{
        __m256, _mm256_broadcast_ss, _mm256_fmadd_ps, _mm256_loadu_ps, _mm256_setzero_ps,
        _mm256_storeu_ps,
    };

    /// 6×16 micro-kernel: twelve accumulators (`MR` rows × two 8-lane
    /// halves) are loaded from C, swept by `kc` fused multiply–adds each —
    /// `acc ← fma(broadcast(a), b, acc)`, one rounding per step, ascending
    /// `p` — and stored back. Lanes are distinct output columns, so
    /// vector width never reorders any element's reduction.
    ///
    /// # Safety
    ///
    /// Requires AVX2 and FMA at runtime; `pa`/`pb` must hold `kc` packed
    /// rows of MR / NR elements, and `c` must address an MR×NR tile with
    /// row stride `ldc` that no other thread touches.
    // SAFETY: the target_feature promise is discharged by the runtime
    // detection gate in super::kernel; all pointer accesses stay inside the
    // packed panels and the caller's C tile per the contract above.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn kernel_6x16(kc: usize, pa: *const f32, pb: *const f32, c: *mut f32, ldc: usize) {
        const { assert!(NR == 16) };
        let mut acc: [[__m256; 2]; MR] = [[_mm256_setzero_ps(); 2]; MR];
        for (t, row) in acc.iter_mut().enumerate() {
            row[0] = _mm256_loadu_ps(c.add(t * ldc));
            row[1] = _mm256_loadu_ps(c.add(t * ldc + 8));
        }
        for p in 0..kc {
            let b0 = _mm256_loadu_ps(pb.add(p * NR));
            let b1 = _mm256_loadu_ps(pb.add(p * NR + 8));
            let ap = pa.add(p * MR);
            for (t, row) in acc.iter_mut().enumerate() {
                let a = _mm256_broadcast_ss(&*ap.add(t));
                row[0] = _mm256_fmadd_ps(a, b0, row[0]);
                row[1] = _mm256_fmadd_ps(a, b1, row[1]);
            }
        }
        for (t, row) in acc.iter().enumerate() {
            _mm256_storeu_ps(c.add(t * ldc), row[0]);
            _mm256_storeu_ps(c.add(t * ldc + 8), row[1]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The per-element contract in its simplest form: one fused chain over
    /// ascending p. Everything the engine does must equal this bitwise.
    fn fma_reference(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc = a[i * k + p].mul_add(b[p * n + j], acc);
                }
                c[i * n + j] = acc;
            }
        }
        c
    }

    fn run_gemm(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        gemm(View::row_major(a, k), View::row_major(b, n), &mut c, m, k, n, false);
        c
    }

    fn filled(len: usize, seed: u64) -> Vec<f32> {
        // Cheap deterministic pseudo-random values with varied magnitudes.
        (0..len)
            .map(|i| {
                let x = (i as u64).wrapping_mul(6364136223846793005).wrapping_add(seed);
                ((x >> 33) as i32 % 1000) as f32 / 97.0
            })
            .collect()
    }

    #[test]
    fn matches_fma_reference_bitwise_across_shapes_and_blockings() {
        let shapes =
            [(1, 1, 1), (6, 16, 16), (7, 17, 18), (13, 40, 33), (64, 64, 64), (97, 130, 51)];
        for &(m, k, n) in &shapes {
            let a = filled(m * k, 1);
            let b = filled(k * n, 2);
            let want = fma_reference(&a, &b, m, k, n);
            for &(kc, mc, nc) in &[(256usize, 96usize, 2048usize), (8, 12, 32), (1, 6, 16)] {
                set_blocking(kc, mc, nc);
                for simd in [true, false] {
                    set_simd_enabled(simd);
                    let got = run_gemm(&a, &b, m, k, n);
                    assert_eq!(
                        got, want,
                        "(m,k,n)=({m},{k},{n}) kc={kc} mc={mc} nc={nc} simd={simd}"
                    );
                }
            }
            set_blocking(KC_DEFAULT, MC_DEFAULT, NC_DEFAULT);
            set_simd_enabled(true);
        }
    }

    #[test]
    fn transposed_views_match_explicit_transpose() {
        let (m, k, n) = (9, 21, 14);
        let at = filled(k * m, 3); // stored k×m, viewed as m×k
        let b = filled(k * n, 4);
        let mut a = vec![0.0f32; m * k];
        for p in 0..k {
            for i in 0..m {
                a[i * k + p] = at[p * m + i];
            }
        }
        let want = run_gemm(&a, &b, m, k, n);
        let mut got = vec![0.0f32; m * n];
        gemm(View::row_major(&at, m).t(), View::row_major(&b, n), &mut got, m, k, n, false);
        assert_eq!(got, want);
    }

    #[test]
    fn env_rounding_rules() {
        set_blocking(100, 50, 100);
        let (kc, mc, nc) = blocking();
        assert_eq!(kc, 100);
        assert_eq!(mc % MR, 0);
        assert!(mc >= 50);
        assert_eq!(nc % NR, 0);
        assert!(nc >= 100);
        set_blocking(KC_DEFAULT, MC_DEFAULT, NC_DEFAULT);
        assert_eq!(blocking(), (KC_DEFAULT, MC_DEFAULT, NC_DEFAULT));
    }

    #[test]
    fn simd_switch_is_effective_only_when_supported() {
        set_simd_enabled(true);
        assert_eq!(simd_enabled(), simd_supported());
        set_simd_enabled(false);
        assert!(!simd_enabled());
        set_simd_enabled(true);
    }
}
