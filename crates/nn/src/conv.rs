//! Convolution layers: vanilla [`Conv2d`] and Pufferfish's
//! [`LowRankConv2d`] — a thin `k×k` convolution with `r` filters followed by
//! a `1×1` convolution that linearly combines them back to `c_out` channels
//! (paper §2.2, Figure 1).

use crate::layer::{Layer, Mode};
use crate::param::Param;
use crate::{NnError, Result};
use puffer_tensor::conv::{col2im, im2col, ConvGeometry};
use puffer_tensor::init::kaiming_normal;
use puffer_tensor::matmul::{matmul, matmul_nt, matmul_tn};
use puffer_tensor::Tensor;

/// 2-D convolution `y = W * x (+ b)` with weight `(c_out, c_in, k, k)`,
/// lowered to matmul through im2col.
#[derive(Debug)]
pub struct Conv2d {
    weight: Param,
    bias: Option<Param>,
    c_in: usize,
    c_out: usize,
    k: usize,
    stride: usize,
    padding: usize,
    cached_cols: Option<Tensor>,
    cached_geo: Option<(ConvGeometry, usize)>,
}

impl Conv2d {
    /// Creates a Kaiming-initialized convolution. The paper's CNNs use
    /// bias-free convolutions (BatchNorm follows every conv), so `bias` is
    /// normally `false`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] if any dimension or the stride is zero.
    pub fn new(
        c_in: usize,
        c_out: usize,
        k: usize,
        stride: usize,
        padding: usize,
        bias: bool,
        seed: u64,
    ) -> Result<Self> {
        if c_in == 0 || c_out == 0 || k == 0 || stride == 0 {
            return Err(NnError::BadConfig {
                layer: "Conv2d",
                reason: format!("zero dimension in ({c_in}, {c_out}, k={k}, stride={stride})"),
            });
        }
        let fan_in = c_in * k * k;
        let weight = Param::new("weight", kaiming_normal(&[c_out, c_in, k, k], fan_in, seed));
        let bias = bias.then(|| Param::new_no_decay("bias", Tensor::zeros(&[c_out])));
        Ok(Conv2d {
            weight,
            bias,
            c_in,
            c_out,
            k,
            stride,
            padding,
            cached_cols: None,
            cached_geo: None,
        })
    }

    /// Creates a convolution from an explicit weight `(c_out, c_in, k, k)`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] if the weight is not 4-D.
    pub fn from_weight(weight: Tensor, stride: usize, padding: usize) -> Result<Self> {
        if weight.ndim() != 4 {
            return Err(NnError::BadConfig {
                layer: "Conv2d",
                reason: "weight must be 4-D".into(),
            });
        }
        let s = weight.shape().to_vec();
        let mut conv = Self::new(s[1], s[0], s[2], stride, padding, false, 0)?;
        conv.weight.value = weight;
        Ok(conv)
    }

    /// `(c_in, c_out, kernel, stride, padding)`.
    pub fn geometry(&self) -> (usize, usize, usize, usize, usize) {
        (self.c_in, self.c_out, self.k, self.stride, self.padding)
    }

    /// The 4-D weight tensor.
    pub fn weight(&self) -> &Tensor {
        &self.weight.value
    }

    /// The weight unrolled to the paper's 2-D form `(c_in·k², c_out)`,
    /// the matrix Pufferfish factorizes via SVD.
    pub fn unrolled_weight(&self) -> Tensor {
        let w_mat = self
            .weight
            .value
            .reshape(&[self.c_out, self.c_in * self.k * self.k])
            .expect("weight is (c_out, c_in, k, k)");
        w_mat.transpose()
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        assert_eq!(input.ndim(), 4, "Conv2d expects [N, C, H, W]");
        let s = input.shape();
        let (n, h, w) = (s[0], s[2], s[3]);
        assert_eq!(s[1], self.c_in, "Conv2d channel mismatch");
        let geo = ConvGeometry {
            c_in: self.c_in,
            h,
            w,
            k: self.k,
            stride: self.stride,
            padding: self.padding,
        };
        let cols = im2col(input, &geo).expect("validated geometry");
        let w_mat = self
            .weight
            .value
            .reshape(&[self.c_out, self.c_in * self.k * self.k])
            .expect("weight shape");
        let out_mat = matmul(&w_mat, &cols).expect("shapes checked"); // [c_out, N·ho·wo]
        let mut out = cols_to_nchw(&out_mat, n, self.c_out, geo.h_out(), geo.w_out());
        if let Some(b) = &self.bias {
            add_channel_bias(&mut out, &b.value);
        }
        if mode == Mode::Train {
            self.cached_cols = Some(cols);
            self.cached_geo = Some((geo, n));
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let cols = self.cached_cols.as_ref().expect("backward before train-mode forward");
        let (geo, n) = self.cached_geo.as_ref().expect("backward before train-mode forward");
        let (ho, wo) = (geo.h_out(), geo.w_out());
        assert_eq!(
            grad_output.shape(),
            &[*n, self.c_out, ho, wo],
            "Conv2d gradient shape mismatch"
        );
        let dout_mat = nchw_to_cols(grad_output); // [c_out, N·ho·wo]
                                                  // dW = dOut · colsᵀ
        let dw = matmul_nt(&dout_mat, cols).expect("shapes checked");
        let dw4 = dw.reshape(self.weight.value.shape()).expect("element count matches");
        self.weight.grad.axpy(1.0, &dw4).expect("grad shape");
        if let Some(b) = &mut self.bias {
            accumulate_channel_bias_grad(&mut b.grad, grad_output);
        }
        // dX = col2im(Wᵀ · dOut)
        let w_mat = self
            .weight
            .value
            .reshape(&[self.c_out, self.c_in * self.k * self.k])
            .expect("weight shape");
        let dcols = matmul_tn(&w_mat, &dout_mat).expect("shapes checked");
        col2im(&dcols, geo, *n).expect("validated geometry")
    }

    fn params(&self) -> Vec<&Param> {
        let mut v = vec![&self.weight];
        v.extend(self.bias.as_ref());
        v
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = vec![&mut self.weight];
        v.extend(self.bias.as_mut());
        v
    }

    fn describe(&self) -> String {
        format!(
            "Conv2d({}→{}, k={}, s={}, p={})",
            self.c_in, self.c_out, self.k, self.stride, self.padding
        )
    }
}

/// Pufferfish factorized convolution: a `k×k` convolution with `r` filters
/// (`U ∈ R^{r×c_in×k×k}`) followed by a `1×1` convolution
/// (`Vᵀ ∈ R^{c_out×r×1×1}`) that forms the original `c_out` output channels
/// as linear combinations of the `r` basis responses.
///
/// Parameter count drops from `c_in·c_out·k²` to `c_in·r·k² + r·c_out`
/// (Table 1).
#[derive(Debug)]
pub struct LowRankConv2d {
    u: Conv2d,
    v: Conv2d,
    rank: usize,
}

impl LowRankConv2d {
    /// Creates a randomly initialized factorized convolution.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] if `rank` is zero or exceeds
    /// `min(c_in·k², c_out)` (the rank of the unrolled weight, §2.2).
    pub fn new(
        c_in: usize,
        c_out: usize,
        k: usize,
        stride: usize,
        padding: usize,
        rank: usize,
        seed: u64,
    ) -> Result<Self> {
        if rank == 0 || rank > (c_in * k * k).min(c_out) {
            return Err(NnError::BadConfig {
                layer: "LowRankConv2d",
                reason: format!("rank {rank} out of range for ({c_in}, {c_out}, k={k})"),
            });
        }
        let mut u = Conv2d::new(c_in, rank, k, stride, padding, false, seed)?;
        let v = Conv2d::new(rank, c_out, 1, 1, 0, false, seed.wrapping_add(1))?;
        u.weight.name = "conv_u.weight".into();
        let mut v = v;
        v.weight.name = "conv_v.weight".into();
        Ok(LowRankConv2d { u, v, rank })
    }

    /// Builds the layer from explicit factor tensors: `u: (r, c_in, k, k)`
    /// and `vt: (c_out, r)` — the reshaped output of truncated SVD on the
    /// unrolled weight.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] on factor shape mismatch.
    pub fn from_factors(u: Tensor, vt: Tensor, stride: usize, padding: usize) -> Result<Self> {
        if u.ndim() != 4 || vt.ndim() != 2 || vt.shape()[1] != u.shape()[0] {
            return Err(NnError::BadConfig {
                layer: "LowRankConv2d",
                reason: format!("incompatible factors {:?} / {:?}", u.shape(), vt.shape()),
            });
        }
        let rank = u.shape()[0];
        let c_out = vt.shape()[0];
        let mut u_conv = Conv2d::from_weight(u, stride, padding)?;
        let v4 = vt.reshape(&[c_out, rank, 1, 1]).expect("vt is (c_out, r)");
        let mut v_conv = Conv2d::from_weight(v4, 1, 0)?;
        u_conv.weight.name = "conv_u.weight".into();
        v_conv.weight.name = "conv_v.weight".into();
        Ok(LowRankConv2d { u: u_conv, v: v_conv, rank })
    }

    /// The factorization rank (number of basis filters).
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// `(c_in, c_out, kernel, stride, padding)` of the layer as a whole.
    pub fn geometry(&self) -> (usize, usize, usize, usize, usize) {
        let (c_in, _, k, stride, padding) = self.u.geometry();
        let (_, c_out, _, _, _) = self.v.geometry();
        (c_in, c_out, k, stride, padding)
    }

    /// Reconstructs the effective dense 4-D weight `(c_out, c_in, k, k)`.
    pub fn effective_weight(&self) -> Tensor {
        let (c_in, _, k, _, _) = self.u.geometry();
        let (_, c_out, _, _, _) = self.v.geometry();
        let u_mat = self.u.weight().reshape(&[self.rank, c_in * k * k]).expect("u shape");
        let v_mat = self.v.weight().reshape(&[c_out, self.rank]).expect("v shape");
        matmul(&v_mat, &u_mat)
            .expect("factor shapes are consistent")
            .reshape(&[c_out, c_in, k, k])
            .expect("element count matches")
    }
}

impl Layer for LowRankConv2d {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let mid = self.u.forward(input, mode);
        self.v.forward(&mid, mode)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let dmid = self.v.backward(grad_output);
        self.u.backward(&dmid)
    }

    fn params(&self) -> Vec<&Param> {
        let mut v = self.u.params();
        v.extend(self.v.params());
        v
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = self.u.params_mut();
        v.extend(self.v.params_mut());
        v
    }

    fn describe(&self) -> String {
        let (c_in, c_out, k, s, p) = self.geometry();
        format!("LowRankConv2d({c_in}→{c_out}, k={k}, s={s}, p={p}, r={})", self.rank)
    }
}

/// Reorders a `[c_out, N·ho·wo]` matmul result into `[N, c_out, ho, wo]`.
fn cols_to_nchw(mat: &Tensor, n: usize, c: usize, ho: usize, wo: usize) -> Tensor {
    let mut out = Tensor::zeros(&[n, c, ho, wo]);
    let src = mat.as_slice();
    let dst = out.as_mut_slice();
    let spatial = ho * wo;
    let total = n * spatial;
    for ci in 0..c {
        let row = &src[ci * total..(ci + 1) * total];
        for ni in 0..n {
            let dst_base = (ni * c + ci) * spatial;
            let src_base = ni * spatial;
            dst[dst_base..dst_base + spatial].copy_from_slice(&row[src_base..src_base + spatial]);
        }
    }
    out
}

/// Inverse of [`cols_to_nchw`]: `[N, c, ho, wo] → [c, N·ho·wo]`.
fn nchw_to_cols(t: &Tensor) -> Tensor {
    let s = t.shape();
    let (n, c, ho, wo) = (s[0], s[1], s[2], s[3]);
    let spatial = ho * wo;
    let total = n * spatial;
    let mut out = Tensor::zeros(&[c, total]);
    let src = t.as_slice();
    let dst = out.as_mut_slice();
    for ni in 0..n {
        for ci in 0..c {
            let src_base = (ni * c + ci) * spatial;
            let dst_base = ci * total + ni * spatial;
            dst[dst_base..dst_base + spatial].copy_from_slice(&src[src_base..src_base + spatial]);
        }
    }
    out
}

fn add_channel_bias(t: &mut Tensor, bias: &Tensor) {
    let s = t.shape().to_vec();
    let (n, c, spatial) = (s[0], s[1], s[2] * s[3]);
    for ni in 0..n {
        for ci in 0..c {
            let b = bias.as_slice()[ci];
            let base = (ni * c + ci) * spatial;
            for v in &mut t.as_mut_slice()[base..base + spatial] {
                *v += b;
            }
        }
    }
}

fn accumulate_channel_bias_grad(bias_grad: &mut Tensor, grad_output: &Tensor) {
    let s = grad_output.shape();
    let (n, c, spatial) = (s[0], s[1], s[2] * s[3]);
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * spatial;
            let sum: f32 = grad_output.as_slice()[base..base + spatial].iter().sum();
            bias_grad.as_mut_slice()[ci] += sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{finite_diff_input_check, finite_diff_param_check};
    use puffer_tensor::stats::rel_error;

    #[test]
    fn conv_identity_kernel() {
        // 1x1 conv with identity channel mixing is the identity map.
        let w = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2, 1, 1]).unwrap();
        let mut conv = Conv2d::from_weight(w, 1, 0).unwrap();
        let x = Tensor::randn(&[1, 2, 3, 3], 1.0, 1);
        let y = conv.forward(&x, Mode::Eval);
        assert!(rel_error(&x, &y.reshape(x.shape()).unwrap()) < 1e-6);
    }

    #[test]
    fn conv_known_values() {
        // Single 2x2 averaging-ish kernel on a known image.
        let w = Tensor::from_vec(vec![1.0, 1.0, 1.0, 1.0], &[1, 1, 2, 2]).unwrap();
        let mut conv = Conv2d::from_weight(w, 1, 0).unwrap();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let y = conv.forward(&x, Mode::Eval);
        assert_eq!(y.as_slice(), &[10.0]);
    }

    #[test]
    fn conv_gradcheck() {
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, true, 1).unwrap();
        let x = Tensor::randn(&[2, 2, 4, 4], 1.0, 2);
        assert!(finite_diff_input_check(&mut conv, &x, 1e-2) < 2e-2);
        assert!(finite_diff_param_check(&mut conv, &x, 1e-2) < 2e-2);
    }

    #[test]
    fn strided_conv_gradcheck() {
        let mut conv = Conv2d::new(2, 2, 3, 2, 1, false, 3).unwrap();
        let x = Tensor::randn(&[1, 2, 5, 5], 1.0, 4);
        assert!(finite_diff_input_check(&mut conv, &x, 1e-2) < 2e-2);
    }

    #[test]
    fn low_rank_conv_gradcheck() {
        let mut conv = LowRankConv2d::new(2, 4, 3, 1, 1, 2, 5).unwrap();
        let x = Tensor::randn(&[1, 2, 4, 4], 1.0, 6);
        assert!(finite_diff_input_check(&mut conv, &x, 1e-2) < 2e-2);
        assert!(finite_diff_param_check(&mut conv, &x, 1e-2) < 2e-2);
    }

    #[test]
    fn full_rank_factorized_conv_matches_dense() {
        // Factorize a dense conv at full rank via SVD: outputs must agree.
        let mut dense = Conv2d::new(3, 4, 3, 1, 1, false, 7).unwrap();
        let unrolled = dense.unrolled_weight(); // (c_in k², c_out) = (27, 4)
        let f = puffer_tensor::svd::truncated_svd(&unrolled, 4).unwrap();
        let (u, vt) = f.split_balanced(); // u: (27, 4), vt: (4, 4)
                                          // u columns are basis filters: reshape uᵀ to (r, c_in, k, k);
                                          // vt maps basis → c_out: (c_out, r) = vtᵀ.
        let u4 = u.transpose().reshape(&[4, 3, 3, 3]).unwrap();
        let v2 = vt.transpose();
        let mut lr = LowRankConv2d::from_factors(u4, v2, 1, 1).unwrap();
        let x = Tensor::randn(&[2, 3, 5, 5], 1.0, 8);
        let yd = dense.forward(&x, Mode::Eval);
        let yl = lr.forward(&x, Mode::Eval);
        assert!(rel_error(&yd, &yl) < 1e-3, "rel err {}", rel_error(&yd, &yl));
    }

    #[test]
    fn param_counts_match_table1() {
        let (c_in, c_out, k, r) = (64usize, 128usize, 3usize, 16usize);
        let dense = Conv2d::new(c_in, c_out, k, 1, 1, false, 1).unwrap();
        assert_eq!(dense.param_count(), c_in * c_out * k * k);
        let lr = LowRankConv2d::new(c_in, c_out, k, 1, 1, r, 1).unwrap();
        assert_eq!(lr.param_count(), c_in * r * k * k + r * c_out);
    }

    #[test]
    fn constructors_validate() {
        assert!(Conv2d::new(0, 4, 3, 1, 1, false, 1).is_err());
        assert!(Conv2d::new(4, 4, 3, 0, 1, false, 1).is_err());
        assert!(LowRankConv2d::new(2, 4, 3, 1, 1, 0, 1).is_err());
        assert!(LowRankConv2d::new(2, 4, 3, 1, 1, 5, 1).is_err()); // > min(18, 4)
    }

    #[test]
    fn nchw_round_trip() {
        let t = Tensor::randn(&[2, 3, 4, 5], 1.0, 9);
        let cols = nchw_to_cols(&t);
        assert_eq!(cols.shape(), &[3, 2 * 4 * 5]);
        let back = cols_to_nchw(&cols, 2, 3, 4, 5);
        assert_eq!(back, t);
    }

    #[test]
    fn effective_weight_reconstruction() {
        let lr = LowRankConv2d::new(2, 3, 3, 1, 1, 2, 11).unwrap();
        let w = lr.effective_weight();
        assert_eq!(w.shape(), &[3, 2, 3, 3]);
    }
}
