//! Parsing the probe's export formats back into structured run data.
//!
//! Both readers reuse `puffer_probe::json` — the same parser the probe
//! uses to validate its own output — so the exporter and the analyzer
//! cannot drift apart silently. A [`RunData`] can be assembled from a
//! Chrome trace document, a JSONL metrics document, or both (fields
//! merge; the trace wins on spans, the metrics file wins on rows).

use puffer_probe::json::{self, Json};
use std::collections::BTreeMap;

/// Parsed `args` of one record: key → raw JSON value.
pub type Args = BTreeMap<String, Json>;

/// One complete (`"X"`) span from a trace document.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRec {
    /// Span name (e.g. `"worker_compute"`, `"allreduce"`).
    pub name: String,
    /// Category (e.g. `"dist"`).
    pub cat: String,
    /// Start timestamp in microseconds.
    pub ts_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
    /// Probe-local thread id.
    pub tid: u64,
    /// Parsed args.
    pub args: Args,
}

/// One instant (`"i"`) event from a trace document.
#[derive(Debug, Clone, PartialEq)]
pub struct InstantRec {
    /// Event name (e.g. `"straggler_delay"`).
    pub name: String,
    /// Category (e.g. `"fault"`).
    pub cat: String,
    /// Timestamp in microseconds.
    pub ts_us: f64,
    /// Probe-local thread id.
    pub tid: u64,
    /// Parsed args.
    pub args: Args,
}

/// Everything a run exported, reassembled.
#[derive(Debug, Clone, Default)]
pub struct RunData {
    /// The run-context header (`run_context` trace record and/or
    /// `run_header` metrics row).
    pub header: Args,
    /// All complete spans.
    pub spans: Vec<SpanRec>,
    /// All instant events.
    pub instants: Vec<InstantRec>,
    /// Final value of every counter/gauge.
    pub counters: BTreeMap<String, f64>,
    /// Histogram summary records (`histogram` trace records and/or
    /// `{"type":"hist"}` metrics rows).
    pub hist_rows: Vec<Args>,
    /// Non-header, non-hist, non-counters metrics rows (e.g. `dist_step`).
    pub step_rows: Vec<Args>,
    /// Probe thread id → thread name.
    pub thread_names: BTreeMap<u64, String>,
}

/// Numeric field of a parsed args map.
#[must_use]
pub fn num(args: &Args, key: &str) -> Option<f64> {
    args.get(key).and_then(Json::as_num)
}

/// String field of a parsed args map.
#[must_use]
pub fn str_field<'a>(args: &'a Args, key: &str) -> Option<&'a str> {
    args.get(key).and_then(Json::as_str)
}

fn obj_to_args(v: &Json) -> Args {
    match v {
        Json::Obj(fields) => fields.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
        _ => Args::new(),
    }
}

/// Parses a Chrome trace-event JSON document.
///
/// # Errors
///
/// Returns a message if the document is not a JSON array of event
/// objects.
pub fn parse_trace(doc: &str) -> Result<RunData, String> {
    let parsed = json::parse(doc)?;
    let events = parsed.as_arr().ok_or("trace must be a JSON array")?;
    let mut rd = RunData::default();
    for ev in events {
        let name = ev.get("name").and_then(Json::as_str).unwrap_or_default().to_string();
        let ph = ev.get("ph").and_then(Json::as_str).unwrap_or_default();
        let cat = ev.get("cat").and_then(Json::as_str).unwrap_or_default().to_string();
        let ts_us = ev.get("ts").and_then(Json::as_num).unwrap_or(0.0);
        let tid = ev.get("tid").and_then(Json::as_num).unwrap_or(0.0) as u64;
        let args = ev.get("args").map(obj_to_args).unwrap_or_default();
        match ph {
            "X" => {
                let dur_us = ev.get("dur").and_then(Json::as_num).unwrap_or(0.0);
                rd.spans.push(SpanRec { name, cat, ts_us, dur_us, tid, args });
            }
            "i" => rd.instants.push(InstantRec { name, cat, ts_us, tid, args }),
            "C" => {
                // Counter samples arrive in time order; keep the last.
                if let Some(v) = num(&args, "value") {
                    rd.counters.insert(name, v);
                }
            }
            "M" => match name.as_str() {
                "thread_name" => {
                    if let Some(n) = str_field(&args, "name") {
                        rd.thread_names.insert(tid, n.to_string());
                    }
                }
                "run_context" => rd.header.extend(args),
                "histogram" => rd.hist_rows.push(args),
                _ => {}
            },
            _ => {}
        }
    }
    Ok(rd)
}

/// Merges a JSONL metrics document into `rd`.
///
/// # Errors
///
/// Returns the parse error of the first malformed line.
pub fn merge_metrics(rd: &mut RunData, doc: &str) -> Result<(), String> {
    for (i, line) in doc.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let row = json::parse(line).map_err(|e| format!("metrics line {}: {e}", i + 1))?;
        let args = obj_to_args(&row);
        match str_field(&args, "type") {
            Some("run_header") => {
                rd.header.extend(args.into_iter().filter(|(k, _)| k != "type"));
            }
            Some("counters") => {
                for (k, v) in &args {
                    if k == "type" {
                        continue;
                    }
                    if let Some(n) = v.as_num() {
                        rd.counters.insert(k.clone(), n);
                    }
                }
            }
            Some("hist") => rd.hist_rows.push(args),
            Some(_) => rd.step_rows.push(args),
            None => return Err(format!("metrics line {}: row without a type", i + 1)),
        }
    }
    Ok(())
}

/// Builds a [`RunData`] from a trace document and/or a metrics document.
///
/// # Errors
///
/// Propagates either parser's error; at least one document must be given.
pub fn load(trace_doc: Option<&str>, metrics_doc: Option<&str>) -> Result<RunData, String> {
    let mut rd = match trace_doc {
        Some(doc) => parse_trace(doc)?,
        None => RunData::default(),
    };
    if let Some(doc) = metrics_doc {
        merge_metrics(&mut rd, doc)?;
    }
    if trace_doc.is_none() && metrics_doc.is_none() {
        return Err("no input: need a trace and/or a metrics document".to_string());
    }
    Ok(rd)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRACE: &str = r#"[
{"name":"run_context","ph":"M","pid":1,"tid":0,"ts":0,"args":{"seed":17,"workers":2}},
{"name":"thread_name","ph":"M","pid":1,"tid":3,"ts":0,"args":{"name":"agg"}},
{"name":"worker_compute","cat":"dist","ph":"X","pid":1,"tid":3,"ts":10.0,"dur":120.5,"args":{"worker":1,"step":0}},
{"name":"straggler_delay","cat":"fault","ph":"i","pid":1,"tid":3,"ts":140,"s":"t","args":{"worker":1,"step":0,"delay_us":90}},
{"name":"dist.rounds","cat":"metric","ph":"C","pid":1,"tid":3,"ts":150,"args":{"value":1}},
{"name":"dist.rounds","cat":"metric","ph":"C","pid":1,"tid":3,"ts":160,"args":{"value":2}},
{"name":"histogram","ph":"M","pid":1,"tid":3,"ts":170,"args":{"cat":"dist","name":"round","count":2,"p50_ns":1000}}
]"#;

    #[test]
    fn trace_round_trips_all_record_kinds() {
        let rd = parse_trace(TRACE).unwrap();
        assert_eq!(num(&rd.header, "seed"), Some(17.0));
        assert_eq!(rd.spans.len(), 1);
        let sp = &rd.spans[0];
        assert_eq!((sp.name.as_str(), sp.cat.as_str(), sp.tid), ("worker_compute", "dist", 3));
        assert_eq!(sp.dur_us, 120.5);
        assert_eq!(num(&sp.args, "worker"), Some(1.0));
        assert_eq!(rd.instants.len(), 1);
        assert_eq!(num(&rd.instants[0].args, "delay_us"), Some(90.0));
        assert_eq!(rd.counters.get("dist.rounds"), Some(&2.0), "last counter sample wins");
        assert_eq!(rd.hist_rows.len(), 1);
        assert_eq!(str_field(&rd.hist_rows[0], "name"), Some("round"));
        assert_eq!(rd.thread_names.get(&3).map(String::as_str), Some("agg"));
    }

    #[test]
    fn metrics_rows_merge_by_type() {
        let metrics = concat!(
            "{\"type\":\"run_header\",\"scheme\":\"none\",\"seed\":18}\n",
            "{\"type\":\"dist_step\",\"t_us\":5,\"step\":0,\"loss\":1.25}\n",
            "{\"type\":\"counters\",\"dist.rounds\":6}\n",
            "{\"type\":\"hist\",\"cat\":\"dist\",\"name\":\"round\",\"count\":6,\"p50_ns\":2000}\n",
        );
        let mut rd = parse_trace(TRACE).unwrap();
        merge_metrics(&mut rd, metrics).unwrap();
        // The metrics header merges over the trace header (seed 17 → 18).
        assert_eq!(num(&rd.header, "seed"), Some(18.0));
        assert_eq!(str_field(&rd.header, "scheme"), Some("none"));
        assert_eq!(rd.counters.get("dist.rounds"), Some(&6.0));
        assert_eq!(rd.step_rows.len(), 1);
        assert_eq!(rd.hist_rows.len(), 2);
    }

    #[test]
    fn load_requires_some_input_and_rejects_garbage() {
        assert!(load(None, None).is_err());
        assert!(parse_trace("{\"not\":\"an array\"}").is_err());
        let mut rd = RunData::default();
        assert!(merge_metrics(&mut rd, "{\"no_type\":1}\n").is_err());
        assert!(merge_metrics(&mut rd, "not json\n").is_err());
    }
}
