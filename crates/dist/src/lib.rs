//! Distributed data-parallel substrate for the Pufferfish reproduction.
//!
//! The paper's distributed results (Figure 4, Figures 6–7, appendix F)
//! decompose per-epoch time into *computation* (real gradient work),
//! *encode/decode* (compression overhead), and *communication* (a
//! deterministic function of message bytes, collective type, and node
//! count). This crate reproduces that decomposition:
//!
//! * [`cost`] — the α–β cost model of ring, binary-tree, and two-level
//!   hierarchical allreduce plus allgather (Thakur, Rabenseifner & Gropp
//!   2005), with an EC2-p3.2xlarge-like cluster profile (10 Gbps, the
//!   paper's testbed), selectable per run via [`cost::CollectiveAlgo`];
//! * [`collectives`] — executable simulations of the tree and
//!   hierarchical schedules whose message traces validate the closed
//!   forms;
//! * [`bucket`] — DDP-style reverse-backward bucket assignment over the
//!   packed flat gradient, plus the pinned-order bucketed reducer the
//!   trainer overlaps communication with backward through;
//! * [`breakdown`] — per-epoch breakdown accounting combining measured
//!   compute/encode/decode times with modeled communication;
//! * [`ddp`] — PyTorch-DDP-style 25 MB gradient bucketing with
//!   compute/communication overlap, for the paper's Figure 4(c) scaling
//!   study;
//! * [`ring`] — an executable ring allreduce whose per-step trace
//!   validates the closed-form cost model;
//! * [`trainer`] — a **real multi-threaded data-parallel trainer**
//!   (crossbeam workers, shared-memory allreduce) whose workers compute
//!   real gradients on data shards; under an exact compressor it is
//!   step-equivalent to single-process training.
//!
//! The trainer is **fault-tolerant**: [`fault`] injects deterministic
//! seeded faults (stragglers, crashes, dropped/corrupted messages,
//! non-finite gradients), [`error`] types every failure instead of
//! panicking, and [`checkpoint`] freezes parameters, optimizer momentum,
//! and compressor state for bitwise-identical resume. On a worker crash the
//! aggregator drops the member, re-normalizes the gradient mean over the
//! survivors, and re-prices communication for the surviving member set
//! (optionally under a heterogeneous per-node α–β profile).
//!
//! It is also **elastic**: [`membership`] tracks the active member set
//! through epochs — a [`membership::MembershipPlan`] schedules mid-run
//! joins (catch-up from the latest checkpoint) and voluntary leaves,
//! crashes shrink the set, workers re-shard the data stream on every
//! epoch change, and the tensor-pool width cap is re-priced for the
//! current member count (pool width is only ever touched through
//! [`membership::PoolWidthGuard`]).

pub mod breakdown;
pub mod bucket;
pub mod checkpoint;
pub mod collectives;
pub mod cost;
pub mod ddp;
pub mod error;
pub mod fault;
pub mod membership;
pub mod ring;
pub mod trainer;
