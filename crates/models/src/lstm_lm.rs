//! The paper's WikiText-2 model: a tied-embedding stacked LSTM language
//! model (appendix Table 12), with vanilla and per-gate low-rank variants
//! plus the SVD warm-start conversion.

use puffer_nn::embedding::Embedding;
use puffer_nn::lstm::{GateRank, LstmLayer, MatOp};
use puffer_nn::param::Param;
use puffer_nn::{NnError, Result};
use puffer_tensor::svd::truncated_svd_seeded;
use puffer_tensor::Tensor;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration of the LSTM language model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LstmLmConfig {
    /// Vocabulary size.
    pub vocab: usize,
    /// Embedding dimension = hidden dimension (required for weight tying).
    pub dim: usize,
    /// Number of stacked LSTM layers (the paper uses 2).
    pub layers: usize,
    /// Gate rank (full or factorized).
    pub rank: GateRank,
    /// Dropout probability between layers (the paper uses 0.65 at full
    /// scale; CPU-scale runs typically use less).
    pub dropout: f32,
    /// RNG seed.
    pub seed: u64,
}

impl LstmLmConfig {
    /// A CPU-scale default mirroring the paper's shape (2 tied layers).
    pub fn small(vocab: usize, dim: usize, seed: u64) -> Self {
        LstmLmConfig { vocab, dim, layers: 2, rank: GateRank::Full, dropout: 0.0, seed }
    }
}

/// Tied-embedding stacked LSTM language model.
pub struct LstmLm {
    config: LstmLmConfig,
    embedding: Embedding,
    lstms: Vec<LstmLayer>,
    decoder_bias: Param,
    dropout_rng: SmallRng,
    cache: Option<FwdCache>,
}

struct FwdCache {
    tokens_flat: Vec<usize>,
    steps: usize,
    batch: usize,
    dropout_masks: Vec<Vec<Vec<f32>>>, // [layer][step] masks (empty when p = 0 or eval)
}

impl LstmLm {
    /// Builds the model.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] on zero dimensions or layer count.
    pub fn new(config: LstmLmConfig) -> Result<Self> {
        if config.layers == 0 {
            return Err(NnError::BadConfig { layer: "LstmLm", reason: "zero layers".into() });
        }
        let embedding = Embedding::new(config.vocab, config.dim, config.seed)?;
        let mut lstms = Vec::with_capacity(config.layers);
        for l in 0..config.layers {
            lstms.push(LstmLayer::new(
                config.dim,
                config.dim,
                config.rank,
                config.seed.wrapping_add(1000 * (l as u64 + 1)),
            )?);
        }
        Ok(LstmLm {
            config,
            embedding,
            lstms,
            decoder_bias: Param::new_no_decay("decoder.bias", Tensor::zeros(&[config.vocab])),
            dropout_rng: SmallRng::seed_from_u64(config.seed ^ 0xD0),
            cache: None,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &LstmLmConfig {
        &self.config
    }

    /// Immutable parameter views (embedding, LSTMs, decoder bias).
    pub fn params(&self) -> Vec<&Param> {
        let mut v = vec![self.embedding.param()];
        v.extend(self.lstms.iter().flat_map(|l| l.params()));
        v.push(&self.decoder_bias);
        v
    }

    /// Mutable parameter views, same order as [`LstmLm::params`].
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = vec![self.embedding.param_mut()];
        v.extend(self.lstms.iter_mut().flat_map(|l| l.params_mut()));
        v.push(&mut self.decoder_bias);
        v
    }

    /// Total trainable scalars (the tied embedding counted once).
    pub fn param_count(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    /// Zeroes all gradients.
    pub fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Forward pass over a BPTT window: `inputs[t]` is the token row at
    /// step `t` (length = batch). Returns logits `[steps·batch, vocab]`
    /// in step-major order. Set `train` for dropout and backward caching.
    ///
    /// # Panics
    ///
    /// Panics on ragged input rows.
    pub fn forward(&mut self, inputs: &[Vec<usize>], train: bool) -> Tensor {
        let steps = inputs.len();
        let batch = if steps == 0 { 0 } else { inputs[0].len() };
        let tokens_flat: Vec<usize> = inputs
            .iter()
            .flat_map(|row| {
                assert_eq!(row.len(), batch, "ragged BPTT batch");
                row.iter().copied()
            })
            .collect();
        let emb = self.embedding.forward(&tokens_flat); // [steps·batch, dim]
        let dim = self.config.dim;
        let mut seq: Vec<Tensor> = (0..steps)
            .map(|t| {
                let mut s = Tensor::zeros(&[batch, dim]);
                s.as_mut_slice()
                    .copy_from_slice(&emb.as_slice()[t * batch * dim..(t + 1) * batch * dim]);
                s
            })
            .collect();
        let mut dropout_masks = Vec::with_capacity(self.lstms.len());
        let p = self.config.dropout;
        for lstm in &mut self.lstms {
            seq = lstm.forward_seq(&seq);
            let mut layer_masks = Vec::new();
            if train && p > 0.0 {
                let keep = 1.0 - p;
                for s in &mut seq {
                    let mask: Vec<f32> =
                        (0..s.len())
                            .map(|_| {
                                if self.dropout_rng.gen::<f32>() < keep {
                                    1.0 / keep
                                } else {
                                    0.0
                                }
                            })
                            .collect();
                    for (v, m) in s.as_mut_slice().iter_mut().zip(&mask) {
                        *v *= m;
                    }
                    layer_masks.push(mask);
                }
            }
            dropout_masks.push(layer_masks);
        }
        // Concatenate hidden states and project through the tied embedding.
        let mut hidden = Tensor::zeros(&[steps * batch, dim]);
        for (t, s) in seq.iter().enumerate() {
            hidden.as_mut_slice()[t * batch * dim..(t + 1) * batch * dim]
                .copy_from_slice(s.as_slice());
        }
        let mut logits = self.embedding.project_logits(&hidden);
        puffer_nn::linear::add_bias_rows(&mut logits, &self.decoder_bias.value);
        if train {
            self.cache = Some(FwdCache { tokens_flat, steps, batch, dropout_masks });
        }
        logits
    }

    /// Backward pass given `∂L/∂logits` from
    /// [`puffer_nn::loss::softmax_cross_entropy`]; accumulates all
    /// parameter gradients (tied embedding receives both lookup and
    /// projection gradients).
    ///
    /// # Panics
    ///
    /// Panics if called before a training forward.
    pub fn backward(&mut self, dlogits: &Tensor) {
        let cache = self.cache.take().expect("backward before training forward");
        let (steps, batch, dim) = (cache.steps, cache.batch, self.config.dim);
        puffer_nn::linear::accumulate_bias_grad(&mut self.decoder_bias.grad, dlogits);
        let dhidden = self.embedding.backward_projection(dlogits); // [steps·batch, dim]
        let mut dseq: Vec<Tensor> = (0..steps)
            .map(|t| {
                let mut s = Tensor::zeros(&[batch, dim]);
                s.as_mut_slice()
                    .copy_from_slice(&dhidden.as_slice()[t * batch * dim..(t + 1) * batch * dim]);
                s
            })
            .collect();
        for (li, lstm) in self.lstms.iter_mut().enumerate().rev() {
            let masks = &cache.dropout_masks[li];
            if !masks.is_empty() {
                for (s, mask) in dseq.iter_mut().zip(masks) {
                    for (v, m) in s.as_mut_slice().iter_mut().zip(mask) {
                        *v *= m;
                    }
                }
            }
            dseq = lstm.backward_seq(&dseq);
        }
        // Scatter embedding-lookup gradients.
        let mut demb = Tensor::zeros(&[steps * batch, dim]);
        for (t, s) in dseq.iter().enumerate() {
            demb.as_mut_slice()[t * batch * dim..(t + 1) * batch * dim]
                .copy_from_slice(s.as_slice());
        }
        self.embedding.backward_for(&cache.tokens_flat, &demb);
    }

    /// Converts to the low-rank variant at `rank`, optionally SVD
    /// warm-started from the current weights. Embedding and decoder bias
    /// carry over unchanged (the paper leaves the tied embedding as is).
    ///
    /// # Errors
    ///
    /// Propagates factorization errors.
    pub fn to_low_rank(&self, rank: usize, warm_start: bool) -> Result<Self> {
        let mut config = self.config;
        config.rank = GateRank::LowRank(rank);
        let mut model = LstmLm::new(config)?;
        model.embedding.param_mut().value = self.embedding.param().value.clone();
        model.decoder_bias.value = self.decoder_bias.value.clone();
        if warm_start {
            for (li, lstm) in self.lstms.iter().enumerate() {
                for gi in 0..4 {
                    let (wx, wh, bias) = lstm.gate_weights(gi);
                    let fx = truncated_svd_seeded(&wx, rank, 0x5EED + gi as u64)?;
                    let (ux, vx) = fx.split_balanced();
                    let fh = truncated_svd_seeded(&wh, rank, 0x5EED + 10 + gi as u64)?;
                    let (uh, vh) = fh.split_balanced();
                    model.lstms[li].set_gate(
                        gi,
                        MatOp::from_factors("wx", ux, vx),
                        MatOp::from_factors("wh", uh, vh),
                        bias,
                    );
                }
            }
        }
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puffer_nn::loss::softmax_cross_entropy;

    fn tiny() -> LstmLm {
        LstmLm::new(LstmLmConfig::small(20, 8, 1)).unwrap()
    }

    #[test]
    fn forward_shapes() {
        let mut lm = tiny();
        let inputs = vec![vec![1, 2, 3], vec![4, 5, 6]]; // 2 steps, batch 3
        let logits = lm.forward(&inputs, true);
        assert_eq!(logits.shape(), &[6, 20]);
    }

    #[test]
    fn tied_embedding_counted_once() {
        let lm = tiny();
        // vocab*dim (embedding) + 2 LSTM layers + vocab (decoder bias)
        let lstm_params = 2 * (4 * (8 * 8 + 8 * 8) + 4 * 8);
        assert_eq!(lm.param_count(), 20 * 8 + lstm_params + 20);
    }

    #[test]
    fn training_reduces_loss_on_repetitive_stream() {
        // A deterministic cycling stream: the model must learn next-token.
        let mut lm = tiny();
        let mut opt = puffer_nn::optim::Sgd::new(0.5, 0.9, 0.0);
        let inputs: Vec<Vec<usize>> = (0..6).map(|t| vec![t % 5; 2]).collect();
        let targets: Vec<usize> =
            inputs.iter().flat_map(|r| r.iter().map(|&t| (t + 1) % 5)).collect();
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..60 {
            lm.zero_grad();
            let logits = lm.forward(&inputs, true);
            let (loss, dl) = softmax_cross_entropy(&logits, &targets, 0.0).unwrap();
            lm.backward(&dl);
            puffer_nn::optim::clip_grad_norm(&mut lm.params_mut(), 1.0);
            opt.step(&mut lm.params_mut());
            first.get_or_insert(loss);
            last = loss;
        }
        assert!(last < first.unwrap() * 0.5, "loss {} -> {last}", first.unwrap());
    }

    #[test]
    fn low_rank_conversion_shapes_and_warm_start() {
        let lm = tiny();
        let lr = lm.to_low_rank(2, true).unwrap();
        assert!(lr.param_count() < lm.param_count());
        // Warm-started low-rank model produces similar logits.
        let mut lm = lm;
        let mut warm = lm.to_low_rank(7, true).unwrap();
        let mut cold = lm.to_low_rank(7, false).unwrap();
        let inputs = vec![vec![1, 2], vec![3, 4]];
        let y = lm.forward(&inputs, false);
        let yw = warm.forward(&inputs, false);
        let yc = cold.forward(&inputs, false);
        let ew = puffer_tensor::stats::rel_error(&y, &yw);
        let ec = puffer_tensor::stats::rel_error(&y, &yc);
        assert!(ew < ec, "warm {ew} vs cold {ec}");
    }

    #[test]
    fn gradients_reach_tied_embedding_from_both_paths() {
        let mut lm = tiny();
        lm.zero_grad();
        let inputs = vec![vec![0, 1]];
        let logits = lm.forward(&inputs, true);
        let (_, dl) = softmax_cross_entropy(&logits, &[1, 2], 0.0).unwrap();
        lm.backward(&dl);
        let g = &lm.params()[0].grad;
        // Projection grads touch every vocab row; lookup grads add to rows 0/1.
        let nonzero_rows =
            (0..20).filter(|&r| g.as_slice()[r * 8..(r + 1) * 8].iter().any(|&x| x != 0.0)).count();
        assert!(nonzero_rows >= 19, "rows with grad: {nonzero_rows}");
    }

    #[test]
    fn dropout_masks_consistent_between_passes() {
        let mut cfg = LstmLmConfig::small(10, 4, 3);
        cfg.dropout = 0.5;
        let mut lm = LstmLm::new(cfg).unwrap();
        let inputs = vec![vec![1, 2], vec![3, 4]];
        let logits = lm.forward(&inputs, true);
        let (_, dl) = softmax_cross_entropy(&logits, &[1, 2, 3, 4], 0.0).unwrap();
        lm.backward(&dl); // must not panic; masks reused
    }

    #[test]
    fn constructor_validates() {
        let mut cfg = LstmLmConfig::small(10, 4, 1);
        cfg.layers = 0;
        assert!(LstmLm::new(cfg).is_err());
    }
}
