//! Fixture: dist-no-panic violations plus every decoy the old awk lint
//! tripped on. Lines matter — the self-test pins them.

fn decoys() -> String {
    let a = ".unwrap(";
    let b = "calls .expect(\"x\") in a string";
    /* a block comment mentioning panic!("nope") and .unwrap() */
    // a line comment with unreachable!() and .expect(
    let c = r#"raw string: panic!(".unwrap(")"#;
    let d = r##"raw with hashes: x.expect("y") and "quotes""##;
    format!("{a}{b}{c}{d}")
}

fn violation_unwrap(x: Option<u32>) -> u32 {
    x.unwrap() // line 15: flagged
}

fn violation_expect(x: Option<u32>) -> u32 {
    x.expect("boom") // line 19: flagged
}

fn violation_macros(n: u32) {
    if n > 3 {
        panic!("line 24: flagged");
    }
    match n {
        0..=3 => {}
        _ => unreachable!(), // line 28: flagged
    }
}

fn not_a_call(map: &std::collections::BTreeMap<u32, u32>) -> Option<&u32> {
    // `expect` as a plain path segment / field is fine; so is catch_unwind.
    let _ = std::panic::catch_unwind(|| 0);
    map.get(&0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_here() {
        let x: Option<u32> = Some(1);
        assert_eq!(x.unwrap(), 1);
        let y: Result<u32, ()> = Ok(2);
        assert_eq!(y.expect("fine"), 2);
    }
}
