//! Streaming log2-bucketed latency histograms.
//!
//! A [`Histogram`] is the probe's distribution primitive: fixed memory
//! (496 buckets ≈ 4 KiB, never grows), O(1) insert, mergeable by bucket
//! addition, and percentile queries with a bounded relative error. Buckets
//! are logarithmic with [`SUB_BUCKETS`] sub-divisions per octave, so any
//! bucket's width is at most `1/SUB_BUCKETS` of its lower bound — every
//! reported quantile is within 12.5% of the true sample value, across the
//! full `u64` range with the same footprint.
//!
//! The registry mirrors the counters registry: process-global, keyed by
//! static `(category, name)` pairs, guarded by the same enabled check, so
//! a disabled [`hist_record`] is one relaxed atomic load and a branch.
//! Every completed `'X'` span is folded into the histogram of its span
//! family automatically (see `push_event` in the crate root) — the span
//! that feeds the trace timeline and the sample that feeds p50/p90/p99
//! are the same measurement. Histograms travel through both exporters:
//! `{"type":"hist",...}` JSONL rows and `"histogram"` metadata records in
//! the Chrome trace.
//!
//! Values are dimensionless `u64`s; every recorder in this workspace
//! stores **nanoseconds** (the span hook uses `Duration::as_nanos`), which
//! is why the exported quantile keys are suffixed `_ns`.

use crate::span::{current_tid, ArgValue, TraceEvent};
use crate::{enabled, now_rel};
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

/// Sub-buckets per octave, as a power of two: 2^3 = 8 linear divisions of
/// every `[2^k, 2^(k+1))` range.
pub const SUB_BITS: u32 = 3;

/// Number of linear sub-buckets per octave.
pub const SUB_BUCKETS: usize = 1 << SUB_BITS;

/// Total bucket count covering all of `u64` (exact below `2^SUB_BITS`,
/// then `SUB_BUCKETS` per remaining octave).
pub const NUM_BUCKETS: usize = ((64 - SUB_BITS as usize) << SUB_BITS) + SUB_BUCKETS;

/// Index of the bucket containing `v`.
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        return v as usize;
    }
    let k = 63 - v.leading_zeros();
    let sub = ((v >> (k - SUB_BITS)) & (SUB_BUCKETS as u64 - 1)) as usize;
    (((k - SUB_BITS + 1) as usize) << SUB_BITS) + sub
}

/// Smallest value mapping to bucket `i` (inverse of [`bucket_index`]).
fn bucket_lower_bound(i: usize) -> u64 {
    if i < SUB_BUCKETS {
        return i as u64;
    }
    let k = (i >> SUB_BITS) as u32 + SUB_BITS - 1;
    let sub = (i & (SUB_BUCKETS - 1)) as u64;
    (1u64 << k) + (sub << (k - SUB_BITS))
}

/// Largest value mapping to bucket `i`.
fn bucket_upper_bound(i: usize) -> u64 {
    if i + 1 < NUM_BUCKETS {
        bucket_lower_bound(i + 1) - 1
    } else {
        u64::MAX
    }
}

/// A fixed-memory streaming histogram. See the module docs for the bucket
/// layout; `max` and `min` are tracked exactly, so `percentile(1.0)`
/// returns the true maximum and every quantile is clamped into
/// `[min, max]`.
#[derive(Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Box<[u64; NUM_BUCKETS]>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("min", &self.min)
            .field("max", &self.max)
            .field("p50", &self.p50())
            .field("p99", &self.p99())
            .finish()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram { counts: Box::new([0; NUM_BUCKETS]), count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += u128::from(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Records a duration as nanoseconds (saturating at `u64::MAX`).
    pub fn record_duration(&mut self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Folds `other` into `self` (bucket-wise addition; exact min/max and
    /// sum combine). Merging is associative and commutative, so shards
    /// recorded on different workers collapse into one distribution in any
    /// order.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no sample was ever recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact maximum sample (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Exact minimum sample (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Mean of all samples (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `p ∈ [0, 1]`: an upper bound of the bucket
    /// holding the sample of rank `ceil(p·count)`, clamped into the exact
    /// `[min, max]` range. Monotone in `p`; `percentile(1.0)` is the exact
    /// maximum. Returns 0 when empty.
    #[must_use]
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 1.0);
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median (see [`Histogram::percentile`]).
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 90th percentile.
    #[must_use]
    pub fn p90(&self) -> u64 {
        self.percentile(0.90)
    }

    /// 99th percentile.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// Non-empty buckets as `(lower_bound, upper_bound, count)` triples.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| (bucket_lower_bound(i), bucket_upper_bound(i), *c))
    }
}

type Key = (&'static str, &'static str);

static REGISTRY: Mutex<BTreeMap<Key, Histogram>> = Mutex::new(BTreeMap::new());

fn registry() -> std::sync::MutexGuard<'static, BTreeMap<Key, Histogram>> {
    REGISTRY.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

pub(crate) fn clear_registry() {
    registry().clear();
}

/// Records one sample into the `(cat, name)` histogram. A no-op when the
/// probe is disabled.
#[inline]
pub fn hist_record(cat: &'static str, name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    registry().entry((cat, name)).or_default().record(value);
}

/// Records a duration (as nanoseconds) into the `(cat, name)` histogram.
/// A no-op when the probe is disabled.
#[inline]
pub fn hist_record_duration(cat: &'static str, name: &'static str, d: Duration) {
    if !enabled() {
        return;
    }
    record_span(cat, name, d);
}

/// Internal enabled-checked-by-caller path: `push_event` folds every
/// completed `'X'` span in here, so each span family accumulates its own
/// latency distribution for free.
pub(crate) fn record_span(cat: &'static str, name: &'static str, dur: Duration) {
    registry()
        .entry((cat, name))
        .or_default()
        .record(u64::try_from(dur.as_nanos()).unwrap_or(u64::MAX));
}

/// The histogram recorded under `(cat, name)`, if any samples exist.
#[must_use]
pub fn hist_value(cat: &str, name: &str) -> Option<Histogram> {
    registry().iter().find(|((c, n), _)| *c == cat && *n == name).map(|(_, h)| h.clone())
}

/// A snapshot of every registered histogram, key-sorted.
#[must_use]
pub fn hist_snapshot() -> Vec<((&'static str, &'static str), Histogram)> {
    registry().iter().map(|(k, h)| (*k, h.clone())).collect()
}

/// Serializes every non-empty histogram as `{"type":"hist",...}` JSONL
/// rows — appended by the exporter after the counters summary.
pub(crate) fn hist_rows() -> Vec<String> {
    use std::fmt::Write as _;
    registry()
        .iter()
        .filter(|(_, h)| !h.is_empty())
        .map(|((cat, name), h)| {
            let mut line = String::from("{\"type\":\"hist\",\"cat\":");
            crate::json::escape_into(&mut line, cat);
            line.push_str(",\"name\":");
            crate::json::escape_into(&mut line, name);
            let _ = write!(
                line,
                ",\"count\":{},\"min_ns\":{},\"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{},\"max_ns\":{},\"mean_ns\":",
                h.count(),
                h.min(),
                h.p50(),
                h.p90(),
                h.p99(),
                h.max(),
            );
            crate::json::number_into(&mut line, h.mean());
            line.push('}');
            line
        })
        .collect()
}

/// Every non-empty histogram as a `"histogram"` metadata record for the
/// Chrome trace (args carry the family key and its quantiles).
pub(crate) fn hist_trace_events() -> Vec<TraceEvent> {
    registry()
        .iter()
        .filter(|(_, h)| !h.is_empty())
        .map(|((cat, name), h)| TraceEvent {
            phase: 'M',
            name: "histogram",
            cat: "",
            ts: now_rel(),
            dur: Duration::ZERO,
            tid: current_tid(),
            args: vec![
                ("cat", ArgValue::Str((*cat).to_string())),
                ("name", ArgValue::Str((*name).to_string())),
                ("count", ArgValue::U64(h.count())),
                ("min_ns", ArgValue::U64(h.min())),
                ("p50_ns", ArgValue::U64(h.p50())),
                ("p90_ns", ArgValue::U64(h.p90())),
                ("p99_ns", ArgValue::U64(h.p99())),
                ("max_ns", ArgValue::U64(h.max())),
                ("mean_ns", ArgValue::F64(h.mean())),
            ],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift stream — the tests' only randomness source,
    /// so every assertion is reproducible bit-for-bit.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    #[test]
    fn bucket_boundaries_round_trip() {
        // Every bucket's lower bound must map back to that bucket, and
        // bucket ranges must tile u64 without gaps or overlaps.
        for i in 0..NUM_BUCKETS {
            let lo = bucket_lower_bound(i);
            assert_eq!(bucket_index(lo), i, "lower bound of bucket {i} maps back");
            let hi = bucket_upper_bound(i);
            assert_eq!(bucket_index(hi), i, "upper bound of bucket {i} maps back");
            if i + 1 < NUM_BUCKETS {
                assert_eq!(bucket_lower_bound(i + 1), hi + 1, "buckets tile contiguously");
            }
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn bucket_relative_error_is_bounded() {
        // Above the linear range a bucket spans lo..lo+lo/8, so the upper
        // bound overestimates any member by at most 12.5%.
        let mut rng = Rng(0x9e3779b97f4a7c15);
        for _ in 0..10_000 {
            let v = rng.next() >> (rng.next() % 48);
            let i = bucket_index(v);
            let (lo, hi) = (bucket_lower_bound(i), bucket_upper_bound(i));
            assert!(lo <= v && v <= hi, "v={v} outside bucket [{lo}, {hi}]");
            if v >= SUB_BUCKETS as u64 {
                assert!((hi - lo) as f64 <= lo as f64 / 8.0 + 1.0, "bucket too wide at {v}");
            }
        }
    }

    #[test]
    fn percentiles_are_monotone_and_p100_is_exact_max() {
        let mut h = Histogram::new();
        let mut rng = Rng(42);
        let mut true_max = 0u64;
        for _ in 0..5_000 {
            let v = rng.next() % 1_000_000;
            true_max = true_max.max(v);
            h.record(v);
        }
        let mut prev = 0u64;
        for i in 0..=100 {
            let q = h.percentile(f64::from(i) / 100.0);
            assert!(q >= prev, "percentile must be monotone in p");
            prev = q;
        }
        assert_eq!(h.percentile(1.0), true_max, "p100 is the exact maximum");
        assert_eq!(h.max(), true_max);
    }

    #[test]
    fn percentile_tracks_exact_rank_within_bucket_error() {
        let mut h = Histogram::new();
        let mut xs: Vec<u64> = Vec::new();
        let mut rng = Rng(7);
        for _ in 0..2_000 {
            let v = rng.next() % 100_000;
            xs.push(v);
            h.record(v);
        }
        xs.sort_unstable();
        for &p in &[0.5, 0.9, 0.99] {
            let rank = ((p * xs.len() as f64).ceil() as usize).clamp(1, xs.len());
            let exact = xs[rank - 1];
            let approx = h.percentile(p);
            assert!(approx >= exact, "upper-bound quantile cannot undershoot");
            assert!(
                approx as f64 <= exact as f64 * 1.125 + 1.0,
                "p{p}: approx {approx} vs exact {exact} exceeds 12.5% bucket error"
            );
        }
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mut rng = Rng(1234);
        let parts: Vec<Vec<u64>> =
            (0..3).map(|_| (0..500).map(|_| rng.next() % 1_000_000).collect()).collect();
        let hist_of = |idx: &[usize]| {
            let mut h = Histogram::new();
            for &i in idx {
                let mut part = Histogram::new();
                for &v in &parts[i] {
                    part.record(v);
                }
                h.merge(&part);
            }
            h
        };
        let abc = hist_of(&[0, 1, 2]);
        let cba = hist_of(&[2, 1, 0]);
        let bac = hist_of(&[1, 0, 2]);
        assert_eq!(abc, cba, "merge order must not matter");
        assert_eq!(abc, bac);
        // And equals recording the concatenated stream directly.
        let mut all = Histogram::new();
        for part in &parts {
            for &v in part {
                all.record(v);
            }
        }
        assert_eq!(abc, all, "merge of shards equals the unsharded stream");
    }

    #[test]
    fn identical_streams_produce_bitwise_identical_histograms() {
        let build = || {
            let mut h = Histogram::new();
            let mut rng = Rng(0xdeadbeef);
            for _ in 0..4_096 {
                h.record(rng.next() >> 20);
            }
            h
        };
        let a = build();
        let b = build();
        assert_eq!(a, b, "same seed, same histogram");
        assert_eq!(
            (a.p50(), a.p90(), a.p99(), a.max(), a.min(), a.count()),
            (b.p50(), b.p90(), b.p99(), b.max(), b.min(), b.count())
        );
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!((h.count(), h.min(), h.max(), h.p50(), h.percentile(1.0)), (0, 0, 0, 0, 0));
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.nonzero_buckets().count(), 0);
    }

    #[test]
    fn registry_records_and_clears() {
        let _guard = crate::testutil::lock();
        crate::reset();
        crate::configure(crate::ProbeConfig::in_memory());
        hist_record("t", "reg", 100);
        hist_record("t", "reg", 200);
        hist_record_duration("t", "dur", Duration::from_micros(5));
        let h = hist_value("t", "reg").expect("histogram registered");
        assert_eq!(h.count(), 2);
        assert_eq!(hist_value("t", "dur").unwrap().max(), 5_000);
        assert!(hist_value("t", "missing").is_none());
        let rows = hist_rows();
        assert_eq!(rows.len(), 2);
        for row in &rows {
            let parsed = crate::json::parse(row).unwrap();
            assert_eq!(parsed.get("type").unwrap().as_str(), Some("hist"));
            assert!(parsed.get("p50_ns").unwrap().as_num().is_some());
        }
        crate::reset();
        assert!(hist_value("t", "reg").is_none(), "reset clears histograms");
    }

    #[test]
    fn disabled_hist_record_is_a_no_op() {
        let _guard = crate::testutil::lock();
        crate::reset();
        hist_record("t", "dead", 1);
        assert!(hist_value("t", "dead").is_none());
    }

    #[test]
    fn spans_feed_histograms_automatically() {
        let _guard = crate::testutil::lock();
        crate::reset();
        crate::configure(crate::ProbeConfig::in_memory());
        for i in 0..4u64 {
            crate::emit_span("t", "autohist", Duration::from_micros(10 * (i + 1)), Vec::new());
        }
        let h = hist_value("t", "autohist").expect("span family histogram");
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), 40_000, "max span duration in nanoseconds");
        let events = hist_trace_events();
        assert!(events.iter().all(|e| e.phase == 'M' && e.name == "histogram"));
        assert!(events.iter().any(|e| e
            .args
            .iter()
            .any(|(k, v)| *k == "name" && matches!(v, ArgValue::Str(s) if s == "autohist"))));
        crate::reset();
    }
}
