//! Model surgery in detail: what Pufferfish's SVD warm-start actually does
//! to a layer.
//!
//! Takes a single trained convolution, unrolls it to the paper's 2-D form,
//! truncates its SVD at several ranks, and shows reconstruction error,
//! parameter counts, and the accuracy of the factorized layer's *outputs*
//! against the dense layer — plus the spectral diagnostics that explain
//! why warm-started factors are so much better than random ones.
//!
//! ```sh
//! cargo run --release --example model_surgery
//! ```

use pufferfish_repro::core::rank_alloc::{energy_rank, stable_rank};
use pufferfish_repro::models::units::{factorize_conv, FactorInit};
use pufferfish_repro::nn::conv::Conv2d;
use pufferfish_repro::nn::{Layer, Mode};
use pufferfish_repro::tensor::stats::rel_error;
use pufferfish_repro::tensor::svd::svd_jacobi;
use pufferfish_repro::tensor::Tensor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 64→64 3x3 convolution with a synthetic low-rank-ish weight: weights
    // of trained CNNs concentrate spectral energy in few directions, which
    // we emulate by damping the tail of a random weight's spectrum.
    let mut conv = Conv2d::new(64, 64, 3, 1, 1, false, 3)?;
    let unrolled = conv.unrolled_weight(); // (c_in k², c_out) = (576, 64)
    let f = svd_jacobi(&unrolled)?;
    let damped: Vec<f32> =
        f.s.iter().enumerate().map(|(i, &s)| s * 0.85f32.powi(i as i32)).collect();
    let damped_f =
        pufferfish_repro::tensor::svd::SvdFactors { u: f.u.clone(), s: damped, vt: f.vt.clone() };
    let w2 = damped_f.reconstruct(); // (576, 64)
    let w4 = w2.transpose().reshape(&[64, 64, 3, 3])?;
    conv = Conv2d::from_weight(w4, 1, 1)?;

    let unrolled = conv.unrolled_weight();
    let f = svd_jacobi(&unrolled)?;
    println!("layer: Conv2d(64→64, 3x3), unrolled {}x{}", unrolled.rows(), unrolled.cols());
    println!(
        "stable rank: {:.1} of {} (energy_rank 90% = {}, 99% = {})\n",
        stable_rank(&f.s),
        f.s.len(),
        energy_rank(&f.s, 0.90),
        energy_rank(&f.s, 0.99)
    );

    let x = Tensor::randn(&[4, 64, 8, 8], 1.0, 9);
    let y_dense = conv.forward(&x, Mode::Eval);
    println!(
        "{:>5} {:>10} {:>12} {:>22} {:>22}",
        "rank", "params", "vs dense", "output err (warm SVD)", "output err (random)"
    );
    for rank in [4usize, 8, 16, 32, 64] {
        let mut warm = factorize_conv(&conv, rank, FactorInit::WarmStart)?;
        let mut cold = factorize_conv(&conv, rank, FactorInit::Random(5))?;
        let ew = rel_error(&y_dense, &warm.forward(&x, Mode::Eval));
        let ec = rel_error(&y_dense, &cold.forward(&x, Mode::Eval));
        println!(
            "{:>5} {:>10} {:>11.1}% {:>21.4} {:>22.4}",
            rank,
            warm.param_count(),
            warm.param_count() as f64 / conv.param_count() as f64 * 100.0,
            ew,
            ec
        );
    }
    println!("\nat rank 16 (the paper's 0.25 ratio) the warm-started factorized layer");
    println!("reproduces the dense layer's outputs almost exactly — random factors do not.");
    Ok(())
}
