//! Fixture: the probe crate itself owns the wall clock — never flagged.

use std::time::{Duration, Instant, SystemTime};

pub fn clock_reads() -> Duration {
    let t0 = Instant::now();
    let _ = SystemTime::now();
    t0.elapsed()
}
