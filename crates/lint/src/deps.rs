//! `dep-allowlist`: a minimal Cargo manifest reader.
//!
//! The workspace's zero-dependency posture is a contract: the substrate
//! stays auditable and builds anywhere the toolchain does. This module
//! parses just enough TOML to enumerate dependency entries — bracketed
//! sections, `name = "ver"`, `name = { … }` inline tables, and the
//! `name.workspace = true` dotted form — and classifies each as internal
//! (a `path` dependency, directly or through `[workspace.dependencies]`)
//! or external. Externals must be on [`crate::rules::ALLOWED_DEPS`]
//! (plus [`crate::rules::ALLOWED_DEV_DEPS`] in dev sections).

use crate::rules::{Diagnostic, ALLOWED_DEPS, ALLOWED_DEV_DEPS};
use std::collections::BTreeMap;

/// Which manifest table a dependency entry came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepSection {
    /// `[dependencies]` / `[build-dependencies]` / target-specific.
    Normal,
    /// `[dev-dependencies]`.
    Dev,
    /// `[workspace.dependencies]` declarations at the workspace root.
    WorkspaceDecl,
}

/// One parsed dependency entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepEntry {
    /// Crate name.
    pub name: String,
    /// Table it appeared in.
    pub section: DepSection,
    /// 1-based line of the entry.
    pub line: u32,
    /// Entry carries a `path` key (workspace-internal crate).
    pub has_path: bool,
    /// Entry is a `workspace = true` reference.
    pub workspace_ref: bool,
}

fn dep_section(section: &str) -> Option<DepSection> {
    if section == "workspace.dependencies" {
        Some(DepSection::WorkspaceDecl)
    } else if section == "dev-dependencies" || section.ends_with(".dev-dependencies") {
        Some(DepSection::Dev)
    } else if section == "dependencies"
        || section == "build-dependencies"
        || section.ends_with(".dependencies")
        || section.ends_with(".build-dependencies")
    {
        Some(DepSection::Normal)
    } else {
        None
    }
}

fn strip_quotes(s: &str) -> &str {
    s.trim().trim_matches('"')
}

/// Keys present in a single-line inline table `{ k = v, … }`.
fn inline_table_keys(value: &str) -> Vec<String> {
    let inner = value.trim().trim_start_matches('{').trim_end_matches('}');
    let mut keys = Vec::new();
    let mut depth = 0i32;
    let mut current = String::new();
    for c in inner.chars() {
        match c {
            '[' | '{' => depth += 1,
            ']' | '}' => depth -= 1,
            ',' if depth == 0 => {
                keys.push(current.clone());
                current.clear();
                continue;
            }
            _ => {}
        }
        current.push(c);
    }
    keys.push(current);
    keys.iter()
        .filter_map(|kv| kv.split('=').next())
        .map(|k| strip_quotes(k).to_string())
        .filter(|k| !k.is_empty())
        .collect()
}

/// Parses every dependency entry in a manifest.
pub fn parse_manifest(text: &str) -> Vec<DepEntry> {
    let mut out = Vec::new();
    let mut section = String::new();
    let mut in_dep_subtable = false;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') && line.ends_with(']') {
            section = line.trim_matches(['[', ']']).trim().to_string();
            in_dep_subtable = false;
            // `[dependencies.foo]` declares entry `foo` as its own table.
            for tbl in ["dependencies.", "dev-dependencies.", "build-dependencies."] {
                if let Some(name) = section.strip_prefix(tbl) {
                    // Subsequent `path = …` lines belong to this entry; we
                    // record it now and patch `has_path` as they arrive.
                    in_dep_subtable = true;
                    out.push(DepEntry {
                        name: strip_quotes(name).to_string(),
                        section: dep_section(tbl.trim_end_matches('.'))
                            .unwrap_or(DepSection::Normal),
                        line: idx as u32 + 1,
                        has_path: false,
                        workspace_ref: false,
                    });
                }
            }
            continue;
        }
        let Some(sec) = dep_section(&section) else {
            // Inside `[dependencies.foo]`-style subtables the section name
            // itself carried the entry; pick up its `path`/`workspace` keys.
            if in_dep_subtable {
                if let Some((key, value)) = line.split_once('=') {
                    if let Some(last) = out.last_mut() {
                        let key = strip_quotes(key);
                        if key == "path" {
                            last.has_path = true;
                        } else if key == "workspace" && value.trim() == "true" {
                            last.workspace_ref = true;
                        }
                    }
                }
            }
            continue;
        };
        let Some((key, value)) = line.split_once('=') else { continue };
        let key = strip_quotes(key);
        let value = value.trim();
        // `name.workspace = true` dotted form.
        if let Some((name, attr)) = key.split_once('.') {
            out.push(DepEntry {
                name: strip_quotes(name).to_string(),
                section: sec,
                line: idx as u32 + 1,
                has_path: attr == "path",
                workspace_ref: attr == "workspace" && value == "true",
            });
            continue;
        }
        let keys = if value.starts_with('{') { inline_table_keys(value) } else { Vec::new() };
        out.push(DepEntry {
            name: name_of(key),
            section: sec,
            line: idx as u32 + 1,
            has_path: keys.iter().any(|k| k == "path"),
            workspace_ref: keys.iter().any(|k| k == "workspace"),
        });
    }
    out
}

fn name_of(key: &str) -> String {
    strip_quotes(key).to_string()
}

/// Internal/external classification of the root `[workspace.dependencies]`.
pub type WorkspaceDeps = BTreeMap<String, bool>;

/// Extracts `name → is_path` from the root manifest's workspace table.
pub fn workspace_decls(root_manifest: &str) -> WorkspaceDeps {
    parse_manifest(root_manifest)
        .into_iter()
        .filter(|d| d.section == DepSection::WorkspaceDecl)
        .map(|d| (d.name, d.has_path))
        .collect()
}

/// Checks one manifest's entries against the allowlist.
pub fn check_manifest(rel_path: &str, text: &str, workspace: &WorkspaceDeps) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for dep in parse_manifest(text) {
        let internal = dep.has_path
            || (dep.workspace_ref && workspace.get(&dep.name).copied().unwrap_or(false));
        if internal {
            continue;
        }
        let allowed = match dep.section {
            DepSection::Normal => ALLOWED_DEPS.contains(&dep.name.as_str()),
            DepSection::Dev | DepSection::WorkspaceDecl => {
                ALLOWED_DEPS.contains(&dep.name.as_str())
                    || ALLOWED_DEV_DEPS.contains(&dep.name.as_str())
            }
        };
        if !allowed {
            let hint = if ALLOWED_DEV_DEPS.contains(&dep.name.as_str()) {
                format!("`{}` is allowed as a dev-dependency only", dep.name)
            } else {
                format!(
                    "external dependency `{}` is not on the workspace allowlist \
                     ({}; dev-only: {})",
                    dep.name,
                    ALLOWED_DEPS.join(", "),
                    ALLOWED_DEV_DEPS.join(", ")
                )
            };
            out.push(Diagnostic {
                file: rel_path.to_string(),
                line: dep.line,
                col: 1,
                rule: "dep-allowlist",
                message: hint,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const ROOT: &str = r#"
[workspace.dependencies]
puffer-tensor = { path = "crates/tensor" }
rand = { version = "0.8", default-features = false }
proptest = "1"
"#;

    #[test]
    fn parses_all_entry_forms() {
        let m = r#"
[dependencies]
puffer-tensor.workspace = true
rand = { version = "0.8" }
local = { path = "../local" }

[dev-dependencies]
proptest = "1"
"#;
        let deps = parse_manifest(m);
        assert_eq!(deps.len(), 4);
        assert!(deps[0].workspace_ref && deps[0].name == "puffer-tensor");
        assert!(!deps[1].has_path && deps[1].name == "rand");
        assert!(deps[2].has_path);
        assert_eq!(deps[3].section, DepSection::Dev);
    }

    #[test]
    fn dotted_subtable_form() {
        let m = "[dependencies.serde_json]\nversion = \"1\"\n";
        let deps = parse_manifest(m);
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].name, "serde_json");
        assert!(!deps[0].has_path);
    }

    #[test]
    fn workspace_ref_resolves_through_root() {
        let ws = workspace_decls(ROOT);
        let ok = "[dependencies]\npuffer-tensor.workspace = true\nrand.workspace = true\n";
        assert!(check_manifest("c/Cargo.toml", ok, &ws).is_empty());
    }

    #[test]
    fn external_not_on_allowlist_flagged_with_line() {
        let ws = workspace_decls(ROOT);
        let bad = "[dependencies]\nserde_json = \"1\"\n";
        let diags = check_manifest("c/Cargo.toml", bad, &ws);
        assert_eq!(diags.len(), 1);
        assert_eq!((diags[0].line, diags[0].rule), (2, "dep-allowlist"));
    }

    #[test]
    fn criterion_dev_only() {
        let ws = workspace_decls(ROOT);
        let bad = "[dependencies]\ncriterion = \"0.5\"\n";
        assert_eq!(check_manifest("c/Cargo.toml", bad, &ws).len(), 1);
        let ok = "[dev-dependencies]\ncriterion = \"0.5\"\n";
        assert!(check_manifest("c/Cargo.toml", ok, &ws).is_empty());
    }

    #[test]
    fn comments_and_package_tables_ignored() {
        let ws = WorkspaceDeps::new();
        let m = "[package]\nname = \"x\"\n# criterion = \"0.5\"\n[dependencies]\n# serde_json = \"1\"\n";
        assert!(check_manifest("c/Cargo.toml", m, &ws).is_empty());
    }
}
