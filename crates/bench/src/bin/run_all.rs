//! Runs every experiment binary in sequence (passing through `--quick` /
//! `--full`), regenerating all tables and figures end-to-end. Output is
//! also captured under `results/`.

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "table1_complexity",
    "fig2_convergence",
    "fig3a_hybrid_k",
    "fig3b_warmup",
    "table2_lstm",
    "table3_transformer",
    "table4_cifar",
    "table5_imagenet",
    "table6_minibench",
    "fig4a_breakdown_imagenet",
    "fig4b_breakdown_cifar",
    "fig4c_ddp_scaling",
    "end_to_end_speedup",
    "table7_eb_train",
    "fig5_lth",
    "table8_ablation_resnet18",
    "table9_ablation_lstm",
    "fig6_pufferfish_powersgd",
    "fig7_binary_quant",
    "table19_svd_cost",
    "table21_22_ablation",
    "rank_alloc_ablation",
    "atomo_overhead",
    "appendix_architectures",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exe_dir =
        std::env::current_exe().expect("current exe").parent().expect("exe dir").to_path_buf();
    let mut failures = Vec::new();
    for exp in EXPERIMENTS {
        println!("\n################ {exp} ################\n");
        let status = Command::new(exe_dir.join(exp)).args(&args).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{exp} exited with {s}");
                failures.push(*exp);
            }
            Err(e) => {
                eprintln!("{exp} failed to launch: {e} (build with `cargo build --release -p puffer-bench` first)");
                failures.push(*exp);
            }
        }
    }
    if failures.is_empty() {
        println!("\nall {} experiments completed", EXPERIMENTS.len());
    } else {
        eprintln!("\nfailed experiments: {failures:?}");
        std::process::exit(1);
    }
}
