//! Measures the probe's overhead on a GEMM microbench and records it to
//! `BENCH_probe.json` at the workspace root.
//!
//! Three regimes on the same kernel loop:
//!
//! * **disabled** — instrumentation compiled in, probe off (the default
//!   production state);
//! * **disabled + extra calls** — the same loop making 16 additional
//!   disabled span/counter calls per GEMM, an upper bound on what the
//!   real instrumentation's disabled fast path can cost;
//! * **enabled (in-memory)** — full collection, what a traced run pays.
//!
//! Usage: `cargo run --release -p puffer-bench --bin probe_overhead`

use puffer_probe as probe;
use puffer_probe::Stopwatch;
use puffer_tensor::matmul::matmul;
use puffer_tensor::Tensor;
use std::time::Duration;

const DIM: usize = 128;
const REPS: usize = 8;
const TRIALS: usize = 9;
const EXTRA_CALLS: usize = 16;

fn gemm_batch(a: &Tensor, b: &Tensor, extra_probe_calls: bool) -> Duration {
    let t0 = Stopwatch::start();
    for _ in 0..REPS {
        if extra_probe_calls {
            for _ in 0..EXTRA_CALLS {
                let _sp = probe::span("overhead", "extra");
                probe::counter_add("overhead.calls", 1);
            }
        }
        let c = matmul(a, b).expect("gemm");
        std::hint::black_box(c);
    }
    t0.elapsed()
}

fn best(a: &Tensor, b: &Tensor, extra: bool) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..TRIALS {
        best = best.min(gemm_batch(a, b, extra));
    }
    best
}

fn main() {
    probe::reset();
    let a = Tensor::randn(&[DIM, DIM], 1.0, 1);
    let b = Tensor::randn(&[DIM, DIM], 1.0, 2);
    let _ = gemm_batch(&a, &b, true); // warm-up

    let base = best(&a, &b, false);
    let probed = best(&a, &b, true);
    let overhead_pct =
        100.0 * (probed.as_secs_f64() - base.as_secs_f64()).max(0.0) / base.as_secs_f64();

    // Enabled regime: in-memory collection, drained afterwards.
    probe::configure(probe::ProbeConfig::in_memory());
    let enabled = best(&a, &b, true);
    let events = probe::take_events().len();
    probe::reset();
    let enabled_pct =
        100.0 * (enabled.as_secs_f64() - base.as_secs_f64()).max(0.0) / base.as_secs_f64();

    println!("GEMM {DIM}x{DIM}, {REPS} reps/batch, best of {TRIALS}:");
    println!("  disabled probe:             {:>10.1} µs", base.as_secs_f64() * 1e6);
    println!(
        "  disabled + {EXTRA_CALLS} extra calls: {:>10.1} µs  ({overhead_pct:.3}% overhead)",
        probed.as_secs_f64() * 1e6
    );
    println!(
        "  enabled (in-memory):        {:>10.1} µs  ({enabled_pct:.3}% overhead, {events} events)",
        enabled.as_secs_f64() * 1e6
    );
    let pass = overhead_pct < 2.0;
    println!("disabled-probe overhead < 2%: {}", if pass { "PASS" } else { "FAIL" });

    let json = format!(
        "{{\n  \"bench\": \"probe_overhead\",\n  \"gemm\": [{DIM}, {DIM}, {DIM}],\n  \"reps_per_batch\": {REPS},\n  \"trials\": {TRIALS},\n  \"extra_disabled_calls_per_gemm\": {EXTRA_CALLS},\n  \"disabled_us\": {:.3},\n  \"disabled_extra_calls_us\": {:.3},\n  \"enabled_us\": {:.3},\n  \"disabled_overhead_pct\": {overhead_pct:.4},\n  \"enabled_overhead_pct\": {enabled_pct:.4},\n  \"threshold_pct\": 2.0,\n  \"pass\": {pass}\n}}\n",
        base.as_secs_f64() * 1e6,
        probed.as_secs_f64() * 1e6,
        enabled.as_secs_f64() * 1e6,
    );
    let root = std::env::var("CARGO_MANIFEST_DIR")
        .map(|p| std::path::PathBuf::from(p).join("../.."))
        .unwrap_or_else(|_| std::path::PathBuf::from("."));
    let path = root.join("BENCH_probe.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}
