//! Churn soak harness for the elastic fault-tolerant trainer.
//!
//! Drives one long simulated run through a seeded churn schedule — two
//! crashes, a rejoin, two fresh joins, a voluntary leave, a persistent
//! straggler, and corrupted/dropped/non-finite messages — then gates on
//! the robustness invariants the trainer promises:
//!
//! 1. **Zero steady-state allocation**: with churn confined to the first
//!    three quarters of the run, a trailing post-churn round must add zero
//!    `alloc.pool_misses` (two-run comparison, the
//!    `alloc_steady_state.rs` idiom).
//! 2. **Bounded replay divergence**: resuming the mid-run checkpoint and
//!    replaying the same churn schedule must reproduce the churned run's
//!    final parameters within `DIVERGENCE_BOUND` (the schedule is
//!    deterministic and detection timing never touches numerics, so the
//!    expectation is bitwise equality; the bound only absorbs a future
//!    reduction-order change).
//! 3. **Monotone recovery**: per-round `dist`/`round` probe spans must
//!    return to the steady-state pace within `RECOVERY_ROUNDS` rounds of
//!    every membership transition, and the run must *end* at that pace.
//! 4. **No leaked threads**: OS thread count (`/proc/self/status`) and the
//!    tensor-pool width are unchanged once the runs are done.
//!
//! Results land in `BENCH_soak.json` at the workspace root.
//!
//! Usage: `cargo run --release -p puffer-bench --bin soak [-- --check]`
//! (`--check` exits non-zero if any gate fails — the `scripts/check.sh`
//! smoke gate runs it with `PUFFER_SOAK_SMOKE=1`).
//!
//! Env knobs: `PUFFER_SOAK_SMOKE=1` shrinks the run to the fixed-seed
//! smoke length; `PUFFER_SOAK_STEPS` overrides the step count (rounded
//! down to a multiple of 8, min 16); `PUFFER_SOAK_SEED` reseeds the fault
//! plan; `PUFFER_SOAK_WORKERS` sets the initial fleet (min 4).

use puffer_bench::record_result;
use puffer_compress::none::NoCompression;
use puffer_dist::checkpoint::{CheckpointPolicy, DistCheckpoint};
use puffer_dist::cost::ClusterProfile;
use puffer_dist::fault::FaultPlan;
use puffer_dist::membership::{MemberEventKind, MembershipPlan};
use puffer_dist::trainer::{
    train_data_parallel_with, DistConfig, DistOutcome, RecoveryPolicy, RunOptions,
};
use puffer_nn::activation::Relu;
use puffer_nn::linear::Linear;
use puffer_nn::Sequential;
use puffer_probe as probe;
use puffer_tensor::{workspace, Tensor};
use std::time::Duration;

/// Max acceptable relative divergence between the churned run and its
/// checkpoint-resume replay (gate 2). The runs are expected bitwise
/// identical; see the module docs.
const DIVERGENCE_BOUND: f32 = 1e-6;

/// Rounds granted for throughput to recover after a membership transition
/// (gate 3).
const RECOVERY_ROUNDS: usize = 5;

struct SoakConfig {
    steps: usize,
    workers: usize,
    seed: u64,
    smoke: bool,
}

impl SoakConfig {
    fn from_env() -> Self {
        let smoke = std::env::var("PUFFER_SOAK_SMOKE").is_ok_and(|v| v == "1");
        let env_usize = |name: &str, default: usize| {
            std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
        };
        let steps = env_usize("PUFFER_SOAK_STEPS", if smoke { 24 } else { 96 });
        let steps = (steps.max(16) / 8) * 8;
        let workers = env_usize("PUFFER_SOAK_WORKERS", 4).max(4);
        let seed =
            std::env::var("PUFFER_SOAK_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(42u64);
        SoakConfig { steps, workers, seed, smoke }
    }

    /// The seeded churn schedule, positioned as fractions of the run so it
    /// scales with `steps`: crash → crash → rejoin → join (at a disk
    /// checkpoint boundary) → join → leave, all within the first three
    /// quarters; the final quarter is the steady state the gates measure.
    fn faults(&self) -> FaultPlan {
        FaultPlan::new(self.seed)
            .with_crash(1, self.steps / 8)
            .with_crash(3, self.steps / 4)
            .with_slowdown(2, 3.0)
            .with_corrupt(2, self.steps / 3)
            .with_drop(0, 2)
            .with_nonfinite(0, self.steps / 5)
    }

    fn membership(&self) -> MembershipPlan {
        MembershipPlan::none()
            .with_join(1, 3 * self.steps / 8)
            .with_join(self.workers, self.steps / 2)
            .with_join(self.workers + 1, 5 * self.steps / 8)
            .with_leave(0, 3 * self.steps / 4)
    }

    fn recovery(&self) -> RecoveryPolicy {
        RecoveryPolicy { step_timeout: Duration::from_millis(250), max_retries: 2, backoff: 2.0 }
    }

    fn dist_config(&self) -> DistConfig {
        DistConfig {
            workers: self.workers,
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 1e-4,
            profile: ClusterProfile::p3_like(self.workers),
        }
    }

    fn batches(&self, n: usize) -> Vec<(Tensor, Vec<usize>)> {
        (0..n)
            .map(|b| {
                let x = Tensor::randn(&[16, 6], 1.0, self.seed * 1000 + b as u64);
                let labels = (0..16).map(|i| (i + b) % 3).collect();
                (x, labels)
            })
            .collect()
    }
}

fn model(seed: u64) -> Sequential {
    Sequential::new(vec![
        Box::new(Linear::new(6, 32, true, seed).unwrap()),
        Box::new(Relu::new()),
        Box::new(Linear::new(32, 3, true, seed + 1).unwrap()),
    ])
}

fn os_thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|n| n.parse().ok())
        })
        .unwrap_or(0)
}

fn max_rel_error(a: &[Tensor], b: &[Tensor]) -> f32 {
    let mut worst = 0.0f32;
    for (x, y) in a.iter().zip(b) {
        for (&u, &v) in x.as_slice().iter().zip(y.as_slice()) {
            let denom = u.abs().max(v.abs()).max(1e-6);
            worst = worst.max((u - v).abs() / denom);
        }
    }
    worst
}

/// p50 of a set of durations in seconds, via the probe's log2-bucketed
/// [`probe::Histogram`] — the same summary the exporter emits, so the gate
/// and the report can never disagree on what "median round" means. Bucket
/// quantization (≤12.5%) is far inside the gate's 4× + 50ms slack.
fn p50_seconds(xs: &[f64]) -> f64 {
    let mut h = probe::Histogram::new();
    for &x in xs {
        h.record((x * 1e9).max(0.0) as u64);
    }
    h.p50() as f64 / 1e9
}

struct Gate {
    name: &'static str,
    pass: bool,
    detail: String,
}

fn run_soak() -> (Vec<Gate>, String) {
    let cfg = SoakConfig::from_env();
    let scratch = std::env::temp_dir().join(format!("puffer_soak_{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("scratch dir");
    let dist_cfg = cfg.dist_config();
    let ckpt_every = cfg.steps / 4;
    let mut gates = Vec::new();

    // ---- Main churned run, fully instrumented. ----
    workspace::set_enabled(true);
    probe::reset();
    probe::configure(probe::ProbeConfig::in_memory());
    probe::run_header(&[
        ("bench", "soak".into()),
        ("seed", cfg.seed.into()),
        ("workers", cfg.workers.into()),
        ("steps", cfg.steps.into()),
        ("scheme", "none".into()),
        ("alpha", dist_cfg.profile.alpha.into()),
        ("beta", dist_cfg.profile.beta.into()),
    ]);
    probe::run_header_env();
    let batches = cfg.batches(cfg.steps);
    let opts = RunOptions {
        faults: cfg.faults(),
        membership: cfg.membership(),
        recovery: cfg.recovery(),
        checkpoint: CheckpointPolicy::every(ckpt_every, &scratch),
        ..RunOptions::default()
    };
    let mut comp = NoCompression::new();
    let main: DistOutcome =
        train_data_parallel_with(|_| model(5), &batches, &mut comp, &dist_cfg, &opts)
            .expect("soak run must complete through the churn schedule");
    let events = probe::take_events();
    let counters = probe::counters_snapshot();
    let counter = |name: &str| counters.iter().find(|(n, _)| *n == name).map_or(0.0, |(_, v)| *v);
    // Round-phase latency histograms, auto-recorded by the probe for every
    // span family; snapshot before reset clears the registry.
    let phase_hists = probe::hist_snapshot();
    probe::reset();

    // Schedule completeness: the run must have absorbed the full churn.
    let kind_count = |k: MemberEventKind| main.membership.iter().filter(|e| e.kind == k).count();
    let joins = kind_count(MemberEventKind::Join);
    let rejoins = kind_count(MemberEventKind::Rejoin);
    let crashes = kind_count(MemberEventKind::Crash);
    let leaves = kind_count(MemberEventKind::Leave);
    gates.push(Gate {
        name: "churn_schedule_completed",
        // Net fleet: workers − 2 crashes + 1 rejoin + 2 joins − 1 leave.
        pass: joins >= 2
            && rejoins >= 1
            && crashes >= 2
            && leaves >= 1
            && main.faults.corrupted_messages >= 1
            && main.faults.survivors == cfg.workers,
        detail: format!(
            "joins={joins} rejoins={rejoins} crashes={crashes} leaves={leaves} \
             corrupted={} dropped_retries_ok survivors={} epoch={}",
            main.faults.corrupted_messages, main.faults.survivors, main.final_epoch
        ),
    });

    // ---- Gate 3: monotone recovery from per-round probe spans. ----
    let mut rounds: Vec<(usize, f64)> = events
        .iter()
        .filter(|e| e.phase == 'X' && e.cat == "dist" && e.name == "round")
        .filter_map(|e| {
            e.args.iter().find(|(k, _)| *k == "step").and_then(|(_, v)| match v {
                probe::ArgValue::U64(s) => Some((*s as usize, e.dur.as_secs_f64())),
                _ => None,
            })
        })
        .collect();
    rounds.sort_by_key(|&(s, _)| s);
    let tail = cfg.steps.min(5);
    let steady: Vec<f64> = rounds.iter().rev().take(tail).map(|&(_, d)| d).collect();
    let baseline = p50_seconds(&steady);
    let threshold = baseline * 4.0 + 0.050;
    let mut recovery_ok = true;
    let mut worst_recovery = 0usize;
    for ev in &main.membership {
        let recovered = rounds
            .iter()
            .filter(|&&(s, _)| s > ev.step && s <= ev.step + RECOVERY_ROUNDS)
            .position(|&(_, d)| d <= threshold);
        match recovered {
            Some(i) => worst_recovery = worst_recovery.max(i + 1),
            None => recovery_ok = false,
        }
    }
    let end_steady = steady.iter().all(|&d| d <= threshold);
    gates.push(Gate {
        name: "recovery_within_k_rounds",
        pass: recovery_ok && end_steady && !rounds.is_empty(),
        detail: format!(
            "rounds={} baseline_ms={:.3} threshold_ms={:.3} worst_recovery_rounds={} \
             k={RECOVERY_ROUNDS} end_steady={end_steady}",
            rounds.len(),
            baseline * 1e3,
            threshold * 1e3,
            worst_recovery
        ),
    });

    // ---- Gate 2: checkpoint-resume replay divergence. ----
    let resume_step = cfg.steps / 2;
    let ck_name = format!("dist_ckpt_{resume_step:06}.puft");
    let ck_path = main
        .checkpoints
        .iter()
        .find(|p| p.file_name().is_some_and(|n| n.to_string_lossy() == ck_name))
        .expect("mid-run checkpoint must exist");
    let ck = DistCheckpoint::load(ck_path).expect("mid-run checkpoint must load");
    let replay_opts = RunOptions {
        faults: cfg.faults(),
        membership: cfg.membership(),
        recovery: cfg.recovery(),
        resume: Some(ck),
        ..RunOptions::default()
    };
    let mut comp2 = NoCompression::new();
    let replay =
        train_data_parallel_with(|_| model(5), &batches, &mut comp2, &dist_cfg, &replay_opts)
            .expect("replay run must complete");
    let divergence = max_rel_error(&main.final_params, &replay.final_params);
    gates.push(Gate {
        name: "replay_divergence_bounded",
        pass: divergence <= DIVERGENCE_BOUND && replay.faults.survivors == main.faults.survivors,
        detail: format!(
            "divergence={divergence:.3e} bound={DIVERGENCE_BOUND:.0e} resumed_at={resume_step} \
             replay_survivors={}",
            replay.faults.survivors
        ),
    });

    // ---- Gate 1: zero steady-state allocation (two-run comparison; the
    // churn schedule sits at identical absolute steps in both runs, so the
    // trailing extra rounds of the longer run are pure steady state). ----
    // Built once at the longer length and sliced per run: generating a
    // batch itself draws a pool buffer, so the two runs must share one data
    // materialization or the longer run shows a spurious miss.
    let alloc_data = cfg.batches(cfg.steps + 4);
    let misses_for = |n_steps: usize| -> f64 {
        workspace::clear_thread_arena();
        probe::reset();
        probe::configure(probe::ProbeConfig::in_memory());
        let data = &alloc_data[..n_steps];
        let alloc_opts = RunOptions {
            faults: cfg.faults(),
            membership: cfg.membership(),
            recovery: cfg.recovery(),
            ..RunOptions::default()
        };
        let mut c = NoCompression::new();
        train_data_parallel_with(|_| model(5), data, &mut c, &dist_cfg, &alloc_opts)
            .expect("alloc-gate run");
        let misses = probe::counter_value("alloc.pool_misses").unwrap_or(0.0);
        probe::reset();
        misses
    };
    let warm = misses_for(cfg.steps);
    let extended = misses_for(cfg.steps + 4);
    gates.push(Gate {
        name: "zero_steady_state_alloc",
        pass: warm > 0.0 && extended == warm,
        detail: format!("pool_misses warm={warm} extended={extended} delta={}", extended - warm),
    });

    // ---- Gate 4: no leaked threads, pool width restored. ----
    // Measured after every run: worker threads are scoped and must be
    // joined; only the persistent tensor-pool threads (created before the
    // baseline snapshot inside the first run) may remain.
    let width = puffer_tensor::pool::num_threads();
    let threads_after = os_thread_count();
    std::thread::sleep(Duration::from_millis(50));
    let threads_settled = os_thread_count();
    gates.push(Gate {
        name: "no_leaked_threads",
        pass: threads_settled <= threads_after && width == puffer_tensor::pool::num_threads(),
        detail: format!("os_threads={threads_settled} pool_width={width}"),
    });

    // Best-effort cleanup of the scratch dir; leftovers are harmless.
    std::fs::remove_dir_all(&scratch).ok();
    workspace::set_enabled(false);

    // ---- Report. ----
    let all_pass = gates.iter().all(|g| g.pass);
    let gate_json: Vec<String> = gates
        .iter()
        .map(|g| {
            format!(
                "    {{ \"gate\": \"{}\", \"pass\": {}, \"detail\": \"{}\" }}",
                g.name,
                g.pass,
                g.detail.replace('"', "'")
            )
        })
        .collect();
    // Per-phase round latency percentiles from the probe's auto-recorded
    // histograms (µs): the soak's latency fingerprint, diffable across
    // runs by `bench_diff`.
    let phase_json: Vec<String> = phase_hists
        .iter()
        .filter(|((c, _), h)| *c == "dist" && !h.is_empty())
        .map(|((_, n), h)| {
            format!(
                "    \"{}\": {{ \"count\": {}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"max_us\": {:.1} }}",
                n,
                h.count(),
                h.p50() as f64 / 1e3,
                h.p99() as f64 / 1e3,
                h.max() as f64 / 1e3
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"soak\",\n  \"mode\": \"{}\",\n  \"seed\": {},\n  \"steps\": {},\n  \"workers\": {},\n  \"final_epoch\": {},\n  \"membership_events\": {},\n  \"counters\": {{ \"crashes\": {}, \"reshards\": {}, \"join_deferrals\": {}, \"corrupted_messages\": {}, \"dropped_messages\": {}, \"checkpoint_writes\": {} }},\n  \"phases\": {{\n{}\n  }},\n  \"all_pass\": {all_pass},\n  \"gates\": [\n{}\n  ]\n}}\n",
        if cfg.smoke { "smoke" } else { "full" },
        cfg.seed,
        cfg.steps,
        cfg.workers,
        main.final_epoch,
        main.membership.len(),
        counter("dist.crashes"),
        counter("dist.reshards"),
        counter("dist.join_deferrals"),
        counter("dist.corrupted_messages"),
        counter("dist.dropped_messages"),
        counter("dist.checkpoint_writes"),
        phase_json.join(",\n"),
        gate_json.join(",\n")
    );
    (gates, json)
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let (gates, json) = run_soak();

    println!("{:<28} {:<6} detail", "gate", "pass");
    for g in &gates {
        println!("{:<28} {:<6} {}", g.name, g.pass, g.detail);
        record_result("soak", &format!("gate={} pass={} {}", g.name, g.pass, g.detail));
    }

    let root = std::env::var("CARGO_MANIFEST_DIR")
        .map(|p| std::path::PathBuf::from(p).join("../.."))
        .unwrap_or_else(|_| std::path::PathBuf::from("."));
    let path = root.join("BENCH_soak.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }

    let all_pass = gates.iter().all(|g| g.pass);
    if check {
        if all_pass {
            println!("soak --check ok: all robustness gates hold under the churn schedule");
        } else {
            eprintln!("soak --check FAILED: at least one robustness gate did not hold");
            std::process::exit(1);
        }
    }
}
