//! Panel-packed, thread-parallel dense matrix multiplication.
//!
//! Two execution profiles mirror the paper's two cuDNN settings (Table 6 vs
//! Table 20): [`MatmulProfile::Reproducible`] uses a straightforward,
//! strictly sequential ikj loop, while [`MatmulProfile::Optimized`] packs B
//! into contiguous column panels once and then drives an unrolled
//! `MR×NR` register-blocked micro-kernel over row panels, fanning the row
//! panels out to the process-wide worker pool (see [`crate::pool`]) above a
//! size threshold.
//!
//! The parallel kernel is **bitwise deterministic across thread counts**:
//! work is partitioned over output rows, and every `(i, j)` element is a
//! single accumulator reduced over `p = 0..k` in ascending order regardless
//! of how rows are grouped into `MR`-blocks or distributed over threads.
//! Only the profile switch changes results (within f32 associativity), the
//! thread count never does.

use crate::{pool, workspace};
use crate::{Result, Tensor, TensorError};
use puffer_probe as probe;

/// Opens a probe span over a dense kernel and bumps the process-global
/// multiply–add counter. One relaxed atomic load when the probe is off.
#[inline]
fn kernel_span(name: &'static str, m: usize, k: usize, n: usize) -> probe::SpanGuard {
    if !probe::enabled() {
        return probe::span(Q, name); // disabled fast path: returns an empty guard
    }
    probe::counter_add("tensor.macs", (m * k * n) as u64);
    probe::span_with(Q, name, || vec![("m", m.into()), ("k", k.into()), ("n", n.into())])
}

/// Probe category of every dense kernel in this module.
const Q: &str = "tensor";

/// Execution profile for [`matmul_with_profile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[repr(u8)]
pub enum MatmulProfile {
    /// Simple ikj-ordered triple loop; sequential on the caller thread.
    /// Stands in for the paper's "reproducibility optimized cuDNN" setting.
    Reproducible = 0,
    /// Panel-packed parallel kernel; stands in for "speed optimized cuDNN".
    #[default]
    Optimized = 1,
}

/// Column-panel width of the packed micro-kernel. B is repacked into
/// `k×NR` panels so the inner loop reads both operands contiguously.
const NR: usize = 8;

/// Row-block height of the micro-kernel: `MR×NR` accumulators stay in
/// registers across the whole `k` reduction.
const MR: usize = 4;

/// Default minimum multiply–add count before a dense kernel fans out to
/// the pool; below this the dispatch overhead outweighs the parallelism.
const PAR_MIN_FLOPS: usize = 1 << 18;

/// Minimum packed-buffer element count before B-packing itself fans out.
const PAR_MIN_PACK: usize = 1 << 16;

use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};

static DEFAULT_PROFILE: AtomicU8 = AtomicU8::new(1);

static PAR_THRESHOLD: AtomicUsize = AtomicUsize::new(PAR_MIN_FLOPS);

/// Overrides the multiply–add count above which dense kernels fan out to
/// the worker pool (default `2^18`). `0` parallelizes every eligible call —
/// the determinism test suite uses this to exercise the threaded path at
/// tiny sizes; results are bitwise identical either way.
pub fn set_parallel_threshold(min_flops: usize) {
    PAR_THRESHOLD.store(min_flops, Ordering::Relaxed);
}

/// The current fan-out threshold in multiply–adds.
pub fn parallel_threshold() -> usize {
    PAR_THRESHOLD.load(Ordering::Relaxed)
}

/// Sets the process-wide default profile used by [`matmul`] (and therefore
/// by every layer in `puffer-nn`). Mirrors toggling
/// `cudnn.benchmark`/`cudnn.deterministic` in the paper's Table 6 vs
/// Table 20 runtime benchmarks. Under `Reproducible`, every dense kernel in
/// this crate (including the fused transpose variants, convolution lowering
/// and large elementwise ops) runs strictly sequentially.
pub fn set_default_profile(profile: MatmulProfile) {
    DEFAULT_PROFILE.store(profile as u8, Ordering::Relaxed);
}

/// The current process-wide default profile.
pub fn default_profile() -> MatmulProfile {
    match DEFAULT_PROFILE.load(Ordering::Relaxed) {
        0 => MatmulProfile::Reproducible,
        _ => MatmulProfile::Optimized,
    }
}

/// Whether a dense kernel of `work` multiply–adds should fan out to the
/// worker pool under the process-wide default profile. `Reproducible`
/// always answers no, keeping that regime strictly sequential.
pub(crate) fn parallel_under_default(work: usize) -> bool {
    default_profile() == MatmulProfile::Optimized
        && work >= PAR_THRESHOLD.load(Ordering::Relaxed)
        && pool::num_threads() > 1
}

/// `C = A · B` for 2-D tensors.
///
/// # Errors
///
/// Returns [`TensorError::WrongDimensions`] if either input is not 2-D and
/// [`TensorError::ShapeMismatch`] if the inner dimensions disagree.
///
/// # Example
///
/// ```
/// use puffer_tensor::{Tensor, matmul::matmul};
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let i = Tensor::eye(2);
/// assert_eq!(matmul(&a, &i)?, a);
/// # Ok::<(), puffer_tensor::TensorError>(())
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    matmul_with_profile(a, b, default_profile())
}

/// `C = A · B` under an explicit execution [`MatmulProfile`].
///
/// # Errors
///
/// Same as [`matmul`].
pub fn matmul_with_profile(a: &Tensor, b: &Tensor, profile: MatmulProfile) -> Result<Tensor> {
    check_2d(a, "matmul")?;
    check_2d(b, "matmul")?;
    let (m, ka) = (a.shape()[0], a.shape()[1]);
    let (kb, n) = (b.shape()[0], b.shape()[1]);
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            expected: vec![m, ka],
            got: vec![kb, n],
            op: "matmul",
        });
    }
    let _sp = kernel_span("matmul", m, ka, n);
    let mut c = Tensor::zeros(&[m, n]);
    match profile {
        MatmulProfile::Reproducible => {
            mm_ikj(a.as_slice(), b.as_slice(), c.as_mut_slice(), m, ka, n)
        }
        MatmulProfile::Optimized => {
            mm_packed(a.as_slice(), b.as_slice(), c.as_mut_slice(), m, ka, n)
        }
    }
    Ok(c)
}

/// `C = Aᵀ · B` without materializing the transpose.
///
/// Row-parallel over the `m` output rows under the `Optimized` default
/// profile; the per-element reduction order is thread-count independent.
///
/// # Errors
///
/// Returns [`TensorError::WrongDimensions`] / [`TensorError::ShapeMismatch`]
/// on rank or inner-dimension mismatch (`A: k×m`, `B: k×n`).
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    check_2d(a, "matmul_tn")?;
    check_2d(b, "matmul_tn")?;
    let (k, m) = (a.shape()[0], a.shape()[1]);
    let (kb, n) = (b.shape()[0], b.shape()[1]);
    if k != kb {
        return Err(TensorError::ShapeMismatch {
            expected: vec![k, m],
            got: vec![kb, n],
            op: "matmul_tn",
        });
    }
    let _sp = kernel_span("matmul_tn", m, k, n);
    let (av, bv) = (a.as_slice(), b.as_slice());
    let mut c = Tensor::zeros(&[m, n]);
    if m == 0 || n == 0 {
        return Ok(c);
    }
    let cv = c.as_mut_slice();
    // Outer-product accumulation over k within each row chunk: B rows are
    // reused across the chunk while every (i, j) still reduces over
    // ascending p, so results do not depend on the partition.
    let tn_rows = |i0: usize, chunk: &mut [f32]| {
        let rows = chunk.len() / n;
        for p in 0..k {
            let arow = &av[p * m..(p + 1) * m];
            let brow = &bv[p * n..(p + 1) * n];
            for li in 0..rows {
                let aip = arow[i0 + li];
                let crow = &mut chunk[li * n..(li + 1) * n];
                for (cj, bj) in crow.iter_mut().zip(brow) {
                    *cj += aip * bj;
                }
            }
        }
    };
    if parallel_under_default(m * k * n) {
        pool::run_chunked(cv, n, tn_rows);
    } else {
        tn_rows(0, cv);
    }
    Ok(c)
}

/// `C = A · Bᵀ` without materializing the transpose.
///
/// Each output element is an unrolled 4-lane dot product; rows of C are
/// computed in parallel under the `Optimized` default profile.
///
/// # Errors
///
/// Returns [`TensorError::WrongDimensions`] / [`TensorError::ShapeMismatch`]
/// on rank or inner-dimension mismatch (`A: m×k`, `B: n×k`).
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    check_2d(a, "matmul_nt")?;
    check_2d(b, "matmul_nt")?;
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (n, kb) = (b.shape()[0], b.shape()[1]);
    if k != kb {
        return Err(TensorError::ShapeMismatch {
            expected: vec![m, k],
            got: vec![n, kb],
            op: "matmul_nt",
        });
    }
    let _sp = kernel_span("matmul_nt", m, k, n);
    let (av, bv) = (a.as_slice(), b.as_slice());
    let mut c = Tensor::zeros(&[m, n]);
    if m == 0 || n == 0 {
        return Ok(c);
    }
    let cv = c.as_mut_slice();
    let nt_rows = |i0: usize, chunk: &mut [f32]| {
        for (li, crow) in chunk.chunks_exact_mut(n).enumerate() {
            let i = i0 + li;
            let arow = &av[i * k..(i + 1) * k];
            for (j, cj) in crow.iter_mut().enumerate() {
                *cj = dot_unrolled(arow, &bv[j * k..(j + 1) * k]);
            }
        }
    };
    if parallel_under_default(m * k * n) {
        pool::run_chunked(cv, n, nt_rows);
    } else {
        nt_rows(0, cv);
    }
    Ok(c)
}

/// Matrix–vector product `y = A · x` (`A: m×k`, `x: k`).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `x.len() != k`.
pub fn matvec(a: &Tensor, x: &Tensor) -> Result<Tensor> {
    check_2d(a, "matvec")?;
    let (m, k) = (a.shape()[0], a.shape()[1]);
    if x.len() != k {
        return Err(TensorError::ShapeMismatch {
            expected: vec![k],
            got: x.shape().to_vec(),
            op: "matvec",
        });
    }
    let (av, xv) = (a.as_slice(), x.as_slice());
    let mut y = Tensor::zeros(&[m]);
    if m == 0 {
        return Ok(y);
    }
    let rows = |i0: usize, chunk: &mut [f32]| {
        for (li, yo) in chunk.iter_mut().enumerate() {
            let i = i0 + li;
            *yo = dot_unrolled(&av[i * k..(i + 1) * k], xv);
        }
    };
    if parallel_under_default(m * k) {
        pool::run_chunked(y.as_mut_slice(), 1, rows);
    } else {
        rows(0, y.as_mut_slice());
    }
    Ok(y)
}

/// 4-lane unrolled dot product: independent accumulators keep the FP adder
/// pipeline full; the lane-combination order is fixed, so the result only
/// depends on the inputs.
#[inline]
fn dot_unrolled(x: &[f32], y: &[f32]) -> f32 {
    let xc = x.chunks_exact(4);
    let yc = y.chunks_exact(4);
    let tail: f32 = xc.remainder().iter().zip(yc.remainder()).map(|(a, b)| a * b).sum();
    let mut acc = [0.0f32; 4];
    for (xs, ys) in xc.zip(yc) {
        for l in 0..4 {
            acc[l] += xs[l] * ys[l];
        }
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

fn mm_ikj(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        for (p, &aip) in arow.iter().enumerate() {
            if aip == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (cj, bj) in crow.iter_mut().zip(brow) {
                *cj += aip * bj;
            }
        }
    }
}

/// Packed parallel GEMM: packs B into `k×NR` column panels once, then
/// computes `MR`-row blocks of C with a register-blocked micro-kernel,
/// partitioning rows across the worker pool when the problem is large
/// enough.
fn mm_packed(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    if m == 0 || n == 0 {
        return;
    }
    let n_panels = n.div_ceil(NR);
    let mut packed_buf = workspace::take(n_panels * k * NR);
    let packed = packed_buf.as_mut_slice();
    pack_b(b, packed, k, n);
    if k > 0 && parallel_under_default(m * k * n) {
        let packed = &*packed;
        pool::run_chunked(c, n, |row0, chunk| {
            mm_rows_packed(a, packed, chunk, row0, k, n);
        });
    } else {
        mm_rows_packed(a, packed, c, 0, k, n);
    }
}

/// Copies B (`k×n` row-major) into zero-padded `k×NR` column panels laid
/// out contiguously per panel, so the micro-kernel streams both operands.
fn pack_b(b: &[f32], packed: &mut [f32], k: usize, n: usize) {
    if k == 0 || packed.is_empty() {
        return;
    }
    let panel_len = k * NR;
    let pack_panels = |jp0: usize, chunk: &mut [f32]| {
        for (pi, panel) in chunk.chunks_exact_mut(panel_len).enumerate() {
            let j0 = (jp0 + pi) * NR;
            let w = NR.min(n - j0);
            for p in 0..k {
                panel[p * NR..p * NR + w].copy_from_slice(&b[p * n + j0..p * n + j0 + w]);
            }
        }
    };
    if packed.len() >= PAR_MIN_PACK && default_profile() == MatmulProfile::Optimized {
        pool::run_chunked(packed, panel_len, pack_panels);
    } else {
        pack_panels(0, packed);
    }
}

/// Computes the C rows in `c_chunk` (whose first row is global row `row0`)
/// from A and packed B, blocking rows by `MR`. Per-element reduction order
/// is identical for the `MR`-wide and single-row kernels, so chunk
/// boundaries never change results.
fn mm_rows_packed(a: &[f32], packed: &[f32], c_chunk: &mut [f32], row0: usize, k: usize, n: usize) {
    let rows = c_chunk.len() / n;
    let mut r = 0;
    while r + MR <= rows {
        mm_row_block::<MR>(a, packed, c_chunk, row0 + r, r, k, n);
        r += MR;
    }
    while r < rows {
        mm_row_block::<1>(a, packed, c_chunk, row0 + r, r, k, n);
        r += 1;
    }
}

/// `M×NR` register-blocked micro-kernel: accumulates `M` rows of C against
/// one packed column panel at a time, reducing over `p = 0..k` with a
/// single accumulator per output element.
#[inline(always)]
fn mm_row_block<const M: usize>(
    a: &[f32],
    packed: &[f32],
    c_chunk: &mut [f32],
    global_row: usize,
    local_row: usize,
    k: usize,
    n: usize,
) {
    let panel_len = k * NR;
    let arows: [&[f32]; M] =
        std::array::from_fn(|t| &a[(global_row + t) * k..(global_row + t + 1) * k]);
    for jp in 0..n.div_ceil(NR) {
        let bp = &packed[jp * panel_len..(jp + 1) * panel_len];
        let mut acc = [[0.0f32; NR]; M];
        for (p, brow) in bp.chunks_exact(NR).enumerate() {
            let brow: &[f32; NR] = brow.try_into().expect("panel row is NR wide");
            for (acc_t, arow) in acc.iter_mut().zip(&arows) {
                let atp = arow[p];
                for (aj, &bj) in acc_t.iter_mut().zip(brow) {
                    *aj += atp * bj;
                }
            }
        }
        let j0 = jp * NR;
        let w = NR.min(n - j0);
        for (t, acc_t) in acc.iter().enumerate() {
            let base = (local_row + t) * n + j0;
            c_chunk[base..base + w].copy_from_slice(&acc_t[..w]);
        }
    }
}

fn check_2d(t: &Tensor, op: &'static str) -> Result<()> {
    if t.ndim() != 2 {
        return Err(TensorError::WrongDimensions { expected: 2, got: t.ndim(), op });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        let mut c = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for p in 0..k {
                    s += a.at2(i, p) * b.at2(p, j);
                }
                *c.at2_mut(i, j) = s;
            }
        }
        c
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_matches_naive_both_profiles() {
        let a = Tensor::randn(&[37, 53], 1.0, 1);
        let b = Tensor::randn(&[53, 29], 1.0, 2);
        let reference = naive(&a, &b);
        for profile in [MatmulProfile::Reproducible, MatmulProfile::Optimized] {
            let c = matmul_with_profile(&a, &b, profile).unwrap();
            assert_close(&c, &reference, 1e-3);
        }
    }

    #[test]
    fn identity_is_neutral() {
        let a = Tensor::randn(&[5, 5], 1.0, 3);
        let i = Tensor::eye(5);
        assert_close(&matmul(&a, &i).unwrap(), &a, 0.0);
        assert_close(&matmul(&i, &a).unwrap(), &a, 0.0);
    }

    #[test]
    fn transposed_variants_match() {
        let a = Tensor::randn(&[11, 7], 1.0, 4);
        let b = Tensor::randn(&[11, 13], 1.0, 5);
        let tn = matmul_tn(&a, &b).unwrap();
        let explicit = matmul(&a.transpose(), &b).unwrap();
        assert_close(&tn, &explicit, 1e-4);

        let c = Tensor::randn(&[9, 7], 1.0, 6);
        let d = Tensor::randn(&[5, 7], 1.0, 7);
        let nt = matmul_nt(&c, &d).unwrap();
        let explicit = matmul(&c, &d.transpose()).unwrap();
        assert_close(&nt, &explicit, 1e-4);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Tensor::randn(&[6, 4], 1.0, 8);
        let x = Tensor::randn(&[4], 1.0, 9);
        let y = matvec(&a, &x).unwrap();
        let xm = x.reshape(&[4, 1]).unwrap();
        let ym = matmul(&a, &xm).unwrap();
        assert_close(&y, &ym.reshape(&[6]).unwrap(), 1e-5);
    }

    #[test]
    fn dimension_errors() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 5]);
        assert!(matmul(&a, &b).is_err());
        assert!(matmul_tn(&a, &b).is_err());
        assert!(matmul_nt(&a, &b).is_err());
        // Non-2-D operands are rejected by every variant alike.
        let v = Tensor::zeros(&[3]);
        assert!(matmul(&a, &v).is_err());
        assert!(matmul(&v, &a).is_err());
        assert!(matmul_tn(&a, &v).is_err());
        assert!(matmul_tn(&v, &a).is_err());
        assert!(matmul_nt(&a, &v).is_err());
        assert!(matmul_nt(&v, &a).is_err());
        assert!(matvec(&a, &Tensor::zeros(&[2])).is_err());
    }

    #[test]
    fn panel_boundary_sizes() {
        // Sizes straddling the NR=8 panel and MR=4 row-block boundaries.
        for &(m, k, n) in
            &[(1, 1, 1), (4, 8, 8), (5, 9, 7), (8, 8, 9), (65, 63, 64), (1, 128, 1), (130, 2, 70)]
        {
            let a = Tensor::randn(&[m, k], 1.0, (m * k) as u64);
            let b = Tensor::randn(&[k, n], 1.0, (k * n + 1) as u64);
            assert_close(&matmul(&a, &b).unwrap(), &naive(&a, &b), 1e-2);
        }
    }

    #[test]
    fn optimized_is_bitwise_stable_across_thread_counts() {
        let a = Tensor::randn(&[70, 33], 1.0, 10);
        let b = Tensor::randn(&[33, 41], 1.0, 11);
        let prev_threshold = parallel_threshold();
        set_parallel_threshold(0);
        let prev = pool::num_threads();
        pool::set_num_threads(1);
        let one = matmul_with_profile(&a, &b, MatmulProfile::Optimized).unwrap();
        pool::set_num_threads(4);
        let four = matmul_with_profile(&a, &b, MatmulProfile::Optimized).unwrap();
        pool::set_num_threads(prev);
        set_parallel_threshold(prev_threshold);
        assert_eq!(one, four, "thread count must not change Optimized results");
    }

    #[test]
    fn empty_dimensions() {
        let a = Tensor::zeros(&[0, 4]);
        let b = Tensor::zeros(&[4, 3]);
        assert_eq!(matmul(&a, &b).unwrap().shape(), &[0, 3]);
        let a = Tensor::zeros(&[3, 0]);
        let b = Tensor::zeros(&[0, 2]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), &[3, 2]);
        assert!(c.as_slice().iter().all(|&x| x == 0.0));
    }
}
