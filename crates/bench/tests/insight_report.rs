//! Acceptance check for the insight pipeline on the real demo workload:
//! run the seeded 4-worker faulty hybrid run, export its trace through the
//! probe's own renderer, re-ingest it, and assert the report attributes at
//! least one injected straggler round as straggler-bound — and that the
//! whole pipeline is deterministic (byte-identical re-render). One test
//! per file — the probe's state is process-global.

use puffer_bench::probe_demo::run_trace_demo;
use puffer_insight::{analyze, ingest, Bound};
use puffer_probe as probe;

#[test]
fn insight_attributes_the_demo_stragglers_and_renders_deterministically() {
    probe::reset();
    probe::configure(probe::ProbeConfig::in_memory());

    let report = run_trace_demo();
    assert!(!report.outcome.faults.is_clean(), "the demo must actually be faulty");

    let mut events = probe::take_events();
    events.extend(probe::trace_extras());
    let doc = probe::render_chrome_trace(&events);
    let metrics = probe::metrics_rows().join("\n");
    probe::reset();

    let rd = ingest::load(Some(&doc), Some(&metrics)).expect("demo trace must re-ingest");
    assert!(!rd.header.is_empty(), "run_context header must be stamped");
    assert_eq!(ingest::num(&rd.header, "workers"), Some(report.workers as f64));

    let insight = analyze(&rd, "trace_demo");
    assert!(insight.all_pass, "insight gates must hold on the demo run: {:?}", insight.gates);
    assert_eq!(insight.rounds.len(), report.steps, "every demo step reconstructs to a round");

    // The acceptance criterion: at least one round with an injected
    // straggler delay is classified straggler-bound, attributed to the
    // slowed worker (the demo slows worker 1 by 2.5×).
    let straggler_rounds: Vec<_> = insight
        .rounds
        .iter()
        .filter(|r| r.bound == Bound::Straggler && r.faults.iter().any(|f| f == "straggler_delay"))
        .collect();
    assert!(
        !straggler_rounds.is_empty(),
        "no straggler-faulted round was classified straggler-bound; rounds: {:?}",
        insight.rounds.iter().map(|r| (r.step, r.bound, r.faults.clone())).collect::<Vec<_>>()
    );
    assert!(
        straggler_rounds.iter().all(|r| r.slowest_worker == Some(1)),
        "the slowed worker must own the critical path"
    );

    // The demo's crash changes the node count mid-run, so the α–β fit is
    // well-posed and must reconcile against the stamped profile.
    assert!(insight.fits.iter().any(|f| f.collective == "allreduce" && !f.degenerate));
    assert!(!insight.reconciliations.is_empty(), "header α–β must be reconciled");

    // Determinism: analyzing the same ingested data again is byte-identical.
    let again = analyze(&rd, "trace_demo");
    assert_eq!(insight.text, again.text);
    assert_eq!(insight.json, again.json);

    // The JSON form parses and carries the gate verdicts.
    let parsed = probe::json::parse(&insight.json).expect("BENCH_insight.json must be valid");
    assert_eq!(parsed.get("all_pass"), Some(&probe::Json::Bool(true)));
}
