//! **Appendix Tables 10–18**: dataset summary and per-layer architecture
//! listings.
//!
//! Prints (a) the dataset stand-in summary (Table 10 analogue) and (b) the
//! per-layer parameter ledgers of every full-scale architecture and its
//! Pufferfish hybrid — the machine-checked counterpart of the paper's
//! appendix Tables 11–18 (layer names follow the paper's conventions).

use puffer_bench::table::{commas, Table};
use puffer_models::spec::{
    lstm_wikitext2, resnet18_cifar, resnet50_imagenet, transformer_wmt16, vgg19_cifar,
    wide_resnet50_2_imagenet, ModelSpec, SpecVariant,
};

fn print_spec(spec: &ModelSpec) {
    println!(
        "\n--- {} ({:?}) — {} params, {} MACs ---",
        spec.name,
        spec.variant,
        commas(spec.params()),
        commas(spec.macs())
    );
    let mut t = Table::new(vec!["layer", "params", "MACs"]);
    for l in &spec.layers {
        t.row(vec![l.name.clone(), commas(l.params), commas(l.macs)]);
    }
    t.print();
}

fn main() {
    println!("== Appendix Table 10 analogue: datasets and stand-ins ==\n");
    let mut t =
        Table::new(vec!["paper dataset", "# data points", "stand-in (this repo)", "metric"]);
    t.row(vec![
        "CIFAR-10",
        "60,000",
        "class-conditional texture images, 32x32x3, 10 classes",
        "top-1 acc",
    ]);
    t.row(vec![
        "ImageNet",
        "1,281,167",
        "ImageNet-lite: texture images, more classes",
        "top-1/top-5 acc",
    ]);
    t.row(vec![
        "WikiText-2",
        "29,000 (sents)",
        "Markov-chain token stream, vocab 200",
        "perplexity",
    ]);
    t.row(vec![
        "WMT'16 En-De",
        "1,017,981",
        "token-mapping + reversal translation, vocab 64",
        "ppl + BLEU-4",
    ]);
    t.print();

    println!("\n== Appendix Tables 11–18 analogue: per-layer ledgers (full scale) ==");
    let args: Vec<String> = std::env::args().collect();
    let verbose = args.iter().any(|a| a == "--verbose");
    for (vanilla, hybrid) in [
        (vgg19_cifar(SpecVariant::Vanilla), vgg19_cifar(SpecVariant::Pufferfish)),
        (resnet18_cifar(SpecVariant::Vanilla), resnet18_cifar(SpecVariant::Pufferfish)),
        (resnet50_imagenet(SpecVariant::Vanilla), resnet50_imagenet(SpecVariant::Pufferfish)),
        (
            wide_resnet50_2_imagenet(SpecVariant::Vanilla),
            wide_resnet50_2_imagenet(SpecVariant::Pufferfish),
        ),
        (lstm_wikitext2(SpecVariant::Vanilla), lstm_wikitext2(SpecVariant::Pufferfish)),
        (transformer_wmt16(SpecVariant::Vanilla), transformer_wmt16(SpecVariant::Pufferfish)),
    ] {
        if verbose {
            print_spec(&vanilla);
            print_spec(&hybrid);
        } else {
            println!(
                "{:<28} {:>12} -> {:>12} params  ({:.2}x smaller, {} -> {} layers)",
                vanilla.name,
                commas(vanilla.params()),
                commas(hybrid.params()),
                vanilla.params() as f64 / hybrid.params() as f64,
                vanilla.layers.len(),
                hybrid.layers.len(),
            );
        }
    }
    if !verbose {
        println!("\n(re-run with --verbose for the full per-layer ledgers, Tables 11-18 style)");
    }
    puffer_bench::record_result("appendix_architectures", "ledgers printed");
}
