//! α–β communication cost models (Thakur, Rabenseifner & Gropp 2005).
//!
//! Ring allreduce on `p` nodes over an `n`-byte buffer:
//! `T = 2(p−1)·α + 2·((p−1)/p)·n·β` — the latency term the paper's
//! flat-buffer packing optimization targets (§4.1: "each allreduce call
//! introduces a network latency proportional to the product of the number
//! of compute nodes and average network latency").
//!
//! Allgather: `T = (p−1)·α + (p−1)·n·β` — per-node traffic grows with `p`,
//! which is why sign/quantization methods lose their wire savings at scale
//! (appendix F).
//!
//! Beyond the ring, two more allreduce shapes are priced (and simulated in
//! `crate::collectives`), selectable via [`CollectiveAlgo`]:
//!
//! * **binary tree**: `T = 2·⌈log₂ p⌉·(α + n·β)` — reduce up the tree,
//!   broadcast back down; latency-optimal, bandwidth-poor (the full buffer
//!   crosses every level twice).
//! * **hierarchical** (two-level): intra-group tree reduce to a leader,
//!   ring allreduce across the `G` leaders, intra-group broadcast:
//!   `T = 2·⌈log₂ g⌉·(α + n·β) + 2(G−1)·α + 2·((G−1)/G)·n·β` — the shape
//!   real multi-rack deployments use, where intra-group links are assumed
//!   to share the same α/β as the inter-group fabric (a pessimistic,
//!   single-profile model).

use crate::error::{DistError, DistResult};
use std::time::Duration;

/// `⌈log₂ p⌉` for `p ≥ 1` (0 for `p ≤ 1`) — the round count of one
/// direction of a binary-tree collective.
pub fn ceil_log2(p: usize) -> u32 {
    if p <= 1 {
        return 0;
    }
    usize::BITS - (p - 1).leading_zeros()
}

/// Normalizes a hierarchical group size against the node count: `0` means
/// auto (`⌈√p⌉`, balancing the intra-tree depth against the leader-ring
/// length), and any explicit value is clamped to `1..=p`.
pub fn hier_group(p: usize, group: usize) -> usize {
    if p <= 1 {
        return 1;
    }
    if group == 0 {
        let mut g = 1;
        while g * g < p {
            g += 1;
        }
        g
    } else {
        group.clamp(1, p)
    }
}

/// Which allreduce algorithm a round is priced (and simulated) as.
///
/// Selecting an algorithm changes *pricing only*: the trainer's gradient
/// arithmetic is identical for every variant, so final parameters stay
/// bitwise-identical across algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CollectiveAlgo {
    /// Bandwidth-optimal ring (the PR 5 default).
    #[default]
    Ring,
    /// Latency-optimal binary tree (reduce up, broadcast down).
    Tree,
    /// Two-level: intra-group tree → inter-group ring → broadcast.
    /// `group` is the intra-group size; `0` = auto (`⌈√p⌉`).
    Hierarchical {
        /// Intra-group size (`0` = auto `⌈√p⌉`; clamped to `1..=p`).
        group: usize,
    },
}

/// Environment variable selecting the collective algorithm
/// (`ring` | `tree` | `hier[:G]` | `hierarchical[:G]`).
pub const ENV_COLLECTIVE: &str = "PUFFER_COLLECTIVE";

impl CollectiveAlgo {
    /// Parses a `PUFFER_COLLECTIVE` value. Accepts `ring`, `tree`,
    /// `hier`/`hierarchical` (auto group), and `hier:G`/`hierarchical:G`
    /// for an explicit intra-group size.
    pub fn parse(s: &str) -> Option<Self> {
        let s = s.trim();
        match s {
            "ring" => return Some(CollectiveAlgo::Ring),
            "tree" => return Some(CollectiveAlgo::Tree),
            "hier" | "hierarchical" => return Some(CollectiveAlgo::Hierarchical { group: 0 }),
            _ => {}
        }
        let rest = s.strip_prefix("hier:").or_else(|| s.strip_prefix("hierarchical:"))?;
        rest.parse::<usize>().ok().map(|group| CollectiveAlgo::Hierarchical { group })
    }

    /// Reads [`ENV_COLLECTIVE`] (`None` when unset, empty, or unparseable).
    pub fn from_env() -> Option<Self> {
        std::env::var(ENV_COLLECTIVE).ok().as_deref().and_then(Self::parse)
    }

    /// The probe span name the trainer emits for a round priced with this
    /// algorithm (puffer-insight keys its per-collective α–β fit on it).
    pub fn span_name(&self) -> &'static str {
        match self {
            CollectiveAlgo::Ring => "allreduce",
            CollectiveAlgo::Tree => "tree_allreduce",
            CollectiveAlgo::Hierarchical { .. } => "hier_allreduce",
        }
    }
}

/// A homogeneous cluster's network parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterProfile {
    /// Per-message latency α in seconds.
    pub alpha: f64,
    /// Per-byte transfer time β in seconds (1 / bandwidth).
    pub beta: f64,
    /// Number of nodes `p`.
    pub nodes: usize,
}

impl ClusterProfile {
    /// An EC2 p3.2xlarge-like profile: "up to 10 Gbps" (appendix K) and
    /// ~50 µs one-way latency.
    pub fn p3_like(nodes: usize) -> Self {
        ClusterProfile { alpha: 50e-6, beta: 8.0 / 10e9, nodes }
    }

    /// A zero-cost network (used to validate trainer equivalence).
    pub fn zero_cost(nodes: usize) -> Self {
        ClusterProfile { alpha: 0.0, beta: 0.0, nodes }
    }

    /// Ring-allreduce time for one `bytes`-sized buffer.
    pub fn allreduce(&self, bytes: usize) -> Duration {
        let p = self.nodes as f64;
        if self.nodes <= 1 {
            return Duration::ZERO;
        }
        let t = 2.0 * (p - 1.0) * self.alpha + 2.0 * ((p - 1.0) / p) * bytes as f64 * self.beta;
        Duration::from_secs_f64(t)
    }

    /// Allgather time when every node contributes `bytes`.
    pub fn allgather(&self, bytes: usize) -> Duration {
        let p = self.nodes as f64;
        if self.nodes <= 1 {
            return Duration::ZERO;
        }
        let t = (p - 1.0) * self.alpha + (p - 1.0) * bytes as f64 * self.beta;
        Duration::from_secs_f64(t)
    }

    /// Binary-tree allreduce time: `2·⌈log₂ p⌉·(α + n·β)` — reduce up the
    /// tree, broadcast back down, the whole buffer crossing each level.
    pub fn tree_allreduce(&self, bytes: usize) -> Duration {
        if self.nodes <= 1 {
            return Duration::ZERO;
        }
        let rounds = 2.0 * f64::from(ceil_log2(self.nodes));
        Duration::from_secs_f64(rounds * (self.alpha + bytes as f64 * self.beta))
    }

    /// Two-level hierarchical allreduce time for intra-group size `group`
    /// (`0` = auto `⌈√p⌉`): intra-group tree reduce, ring allreduce across
    /// the `G = ⌈p/g⌉` group leaders, intra-group tree broadcast.
    pub fn hier_allreduce(&self, bytes: usize, group: usize) -> Duration {
        if self.nodes <= 1 {
            return Duration::ZERO;
        }
        let g = hier_group(self.nodes, group);
        let groups = self.nodes.div_ceil(g);
        let intra = 2.0 * f64::from(ceil_log2(g)) * (self.alpha + bytes as f64 * self.beta);
        let leaders = ClusterProfile { nodes: groups, ..*self };
        leaders.allreduce(bytes) + Duration::from_secs_f64(intra)
    }

    /// Allreduce time under the selected [`CollectiveAlgo`].
    pub fn allreduce_with(&self, algo: CollectiveAlgo, bytes: usize) -> Duration {
        match algo {
            CollectiveAlgo::Ring => self.allreduce(bytes),
            CollectiveAlgo::Tree => self.tree_allreduce(bytes),
            CollectiveAlgo::Hierarchical { group } => self.hier_allreduce(bytes, group),
        }
    }

    /// Total time of `calls` independent allreduces of `bytes` each —
    /// models the unpacked per-layer synchronization the paper's packing
    /// optimization removes.
    pub fn allreduce_per_layer(&self, layer_bytes: &[usize]) -> Duration {
        layer_bytes.iter().map(|&b| self.allreduce(b)).sum()
    }
}

/// A **heterogeneous** cluster: per-node α/β plus seeded per-round jitter.
///
/// Real deployments are rarely the homogeneous testbed of
/// [`ClusterProfile`]: one node on a congested rack sees higher latency
/// and lower bandwidth, and a synchronous collective runs at the pace of
/// its **slowest** member. `HeteroProfile` models that, and — because it
/// is indexed by node id — it also prices the *surviving* member set after
/// the trainer drops a crashed worker (graceful degradation keeps an
/// accurate cost account).
#[derive(Debug, Clone, PartialEq)]
pub struct HeteroProfile {
    /// Per-node message latency α in seconds.
    pub alphas: Vec<f64>,
    /// Per-node per-byte transfer time β in seconds.
    pub betas: Vec<f64>,
    /// Fractional per-round communication jitter: each round's comm time
    /// is stretched by a seeded factor in `[1, 1 + comm_jitter]`.
    pub comm_jitter: f64,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl HeteroProfile {
    /// A heterogeneous profile where every node matches `base` (jitter
    /// off) — the identity extension of a homogeneous cluster.
    pub fn uniform(base: ClusterProfile) -> Self {
        HeteroProfile {
            alphas: vec![base.alpha; base.nodes],
            betas: vec![base.beta; base.nodes],
            comm_jitter: 0.0,
            seed: 0,
        }
    }

    /// Overrides one node's network parameters (a slow rack, a congested
    /// uplink).
    pub fn with_node(mut self, node: usize, alpha: f64, beta: f64) -> Self {
        if node < self.alphas.len() {
            self.alphas[node] = alpha;
            self.betas[node] = beta;
        }
        self
    }

    /// Enables seeded per-round comm jitter.
    pub fn with_jitter(mut self, jitter: f64, seed: u64) -> Self {
        self.comm_jitter = jitter.max(0.0);
        self.seed = seed;
        self
    }

    /// Number of configured nodes.
    pub fn nodes(&self) -> usize {
        self.alphas.len()
    }

    /// Checks that every id in `members` names a configured node.
    ///
    /// # Errors
    ///
    /// [`DistError::UnknownMember`] naming the first id outside the
    /// profile.
    pub fn validate_members(&self, members: &[usize]) -> DistResult<()> {
        let nodes = self.nodes();
        match members.iter().find(|&&n| n >= nodes) {
            Some(&worker) => Err(DistError::UnknownMember { worker, nodes }),
            None => Ok(()),
        }
    }

    /// The homogeneous profile equivalent to running a synchronous
    /// collective over the member subset `live`: the slowest member's α
    /// and β dominate, and `p` is the member count.
    ///
    /// # Errors
    ///
    /// [`DistError::UnknownMember`] if `live` references a node id the
    /// profile does not configure. (This used to clamp silently, pricing
    /// a phantom member at zero cost; an unknown id is a configuration
    /// bug and is now rejected.)
    pub fn effective(&self, live: &[usize]) -> DistResult<ClusterProfile> {
        self.validate_members(live)?;
        let mut alpha = 0.0f64;
        let mut beta = 0.0f64;
        for &n in live {
            alpha = alpha.max(self.alphas[n]); // lint:allow(dist-panic-reachability) — validate_members above rejects out-of-range ids
            beta = beta.max(self.betas[n]);
        }
        Ok(ClusterProfile { alpha, beta, nodes: live.len() })
    }

    /// Deterministic per-round jitter factor in `[1, 1 + comm_jitter]`.
    pub fn jitter_factor(&self, round: u64) -> f64 {
        if self.comm_jitter <= 0.0 {
            return 1.0;
        }
        1.0 + self.comm_jitter
            * crate::fault::unit_in_01(self.seed ^ round.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_is_free() {
        let c = ClusterProfile::p3_like(1);
        assert_eq!(c.allreduce(1 << 20), Duration::ZERO);
        assert_eq!(c.allgather(1 << 20), Duration::ZERO);
    }

    #[test]
    fn allreduce_bandwidth_term_saturates_with_nodes() {
        // (p−1)/p → 1: doubling nodes must not double allreduce time for
        // large buffers.
        let bytes = 100 << 20;
        let t2 = ClusterProfile::p3_like(2).allreduce(bytes).as_secs_f64();
        let t16 = ClusterProfile::p3_like(16).allreduce(bytes).as_secs_f64();
        assert!(t16 < t2 * 2.0, "t2 {t2} t16 {t16}");
    }

    #[test]
    fn allgather_grows_linearly_with_nodes() {
        let bytes = 10 << 20;
        let t4 = ClusterProfile::p3_like(4).allgather(bytes).as_secs_f64();
        let t16 = ClusterProfile::p3_like(16).allgather(bytes).as_secs_f64();
        assert!(t16 > t4 * 3.0, "t4 {t4} t16 {t16}");
    }

    #[test]
    fn crossover_compressed_allgather_vs_raw_allreduce() {
        // At small node counts a 32× smaller allgather beats the raw
        // allreduce; at large counts the allreduce wins — the appendix-F
        // phenomenon.
        let raw = 100 << 20;
        let compressed = raw / 32;
        let few = ClusterProfile::p3_like(2);
        assert!(few.allgather(compressed) < few.allreduce(raw));
        let many = ClusterProfile::p3_like(128);
        assert!(many.allgather(compressed) > many.allreduce(raw));
    }

    #[test]
    fn packing_beats_per_layer_latency() {
        // 100 small layers synced individually pay 100× the latency term.
        let c = ClusterProfile::p3_like(16);
        let layers = vec![4 * 1024usize; 100];
        let total: usize = layers.iter().sum();
        let packed = c.allreduce(total);
        let unpacked = c.allreduce_per_layer(&layers);
        assert!(unpacked > packed * 5, "packed {packed:?} unpacked {unpacked:?}");
    }

    #[test]
    fn hetero_effective_is_slowest_member() {
        let base = ClusterProfile::p3_like(4);
        let h = HeteroProfile::uniform(base).with_node(2, 200e-6, 8.0 / 1e9);
        // With the slow node in the set, its α and the worst β dominate.
        let all = h.effective(&[0, 1, 2, 3]).unwrap();
        assert_eq!(all.nodes, 4);
        assert_eq!(all.alpha, 200e-6);
        assert_eq!(all.beta, 8.0 / 1e9);
        // Dropping the slow node restores the base parameters at p = 3.
        let survivors = h.effective(&[0, 1, 3]).unwrap();
        assert_eq!(survivors.nodes, 3);
        assert_eq!(survivors.alpha, base.alpha);
        assert_eq!(survivors.beta, base.beta);
    }

    #[test]
    fn unknown_member_is_a_typed_error_not_a_clamp() {
        let h = HeteroProfile::uniform(ClusterProfile::p3_like(4));
        assert!(h.validate_members(&[0, 3]).is_ok());
        let err = h.effective(&[0, 4]).unwrap_err();
        assert_eq!(err, crate::error::DistError::UnknownMember { worker: 4, nodes: 4 });
        assert_eq!(
            h.validate_members(&[7]),
            Err(crate::error::DistError::UnknownMember { worker: 7, nodes: 4 })
        );
    }

    #[test]
    fn hetero_uniform_matches_homogeneous_cost() {
        let base = ClusterProfile::p3_like(8);
        let h = HeteroProfile::uniform(base);
        let live: Vec<usize> = (0..8).collect();
        assert_eq!(h.effective(&live).unwrap().allreduce(1 << 20), base.allreduce(1 << 20));
        assert_eq!(h.jitter_factor(3), 1.0);
    }

    #[test]
    fn jitter_factor_is_bounded_and_deterministic() {
        let h = HeteroProfile::uniform(ClusterProfile::p3_like(4)).with_jitter(0.25, 9);
        for round in 0..100u64 {
            let f = h.jitter_factor(round);
            assert!((1.0..=1.25).contains(&f), "round {round}: {f}");
            assert_eq!(f, h.jitter_factor(round));
        }
        // Not constant across rounds.
        assert_ne!(h.jitter_factor(0), h.jitter_factor(1));
    }

    #[test]
    fn ceil_log2_matches_definition() {
        assert_eq!(ceil_log2(0), 0);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(64), 6);
        assert_eq!(ceil_log2(65), 7);
    }

    #[test]
    fn hier_group_auto_is_ceil_sqrt_and_explicit_is_clamped() {
        assert_eq!(hier_group(1, 0), 1);
        assert_eq!(hier_group(4, 0), 2);
        assert_eq!(hier_group(8, 0), 3);
        assert_eq!(hier_group(16, 0), 4);
        assert_eq!(hier_group(17, 0), 5);
        assert_eq!(hier_group(8, 4), 4);
        assert_eq!(hier_group(8, 100), 8);
        // An explicit group of 0 is "auto", so the smallest explicit size
        // is 1; below-range requests clamp up.
        assert_eq!(hier_group(8, 1), 1);
    }

    #[test]
    fn tree_allreduce_matches_closed_form() {
        let c = ClusterProfile::p3_like(8);
        let n = 1usize << 20;
        let want = 2.0 * 3.0 * (c.alpha + n as f64 * c.beta);
        // Duration round-trips at nanosecond resolution.
        let got = c.tree_allreduce(n).as_secs_f64();
        assert!((got - want).abs() < 2e-9, "got {got} want {want}");
        assert_eq!(ClusterProfile::p3_like(1).tree_allreduce(n), Duration::ZERO);
    }

    #[test]
    fn hier_allreduce_matches_closed_form() {
        let c = ClusterProfile::p3_like(8);
        let n = 1usize << 20;
        // group 4 → G = 2 groups: intra tree depth ⌈log₂4⌉ = 2 both ways,
        // plus a 2-node leader ring.
        let intra = 2.0 * 2.0 * (c.alpha + n as f64 * c.beta);
        let ring = ClusterProfile { nodes: 2, ..c }.allreduce(n).as_secs_f64();
        let got = c.hier_allreduce(n, 4).as_secs_f64();
        assert!((got - (intra + ring)).abs() < 2e-9, "got {got} want {}", intra + ring);
        // group = p degenerates to a pure tree.
        assert_eq!(c.hier_allreduce(n, 8), c.tree_allreduce(n));
        // group = 1 degenerates to a pure ring.
        assert_eq!(c.hier_allreduce(n, 1), c.allreduce(n));
        assert_eq!(ClusterProfile::p3_like(1).hier_allreduce(n, 0), Duration::ZERO);
    }

    #[test]
    fn hierarchical_beats_both_extremes_at_scale() {
        // At large p with a mid-size buffer, two-level beats the ring on
        // latency and the tree on bandwidth.
        let c = ClusterProfile::p3_like(64);
        let n = 256 << 10;
        let hier = c.hier_allreduce(n, 0);
        assert!(hier < c.allreduce(n), "hier {hier:?} ring {:?}", c.allreduce(n));
        assert!(hier < c.tree_allreduce(n), "hier {hier:?} tree {:?}", c.tree_allreduce(n));
    }

    #[test]
    fn collective_algo_parses_and_names_spans() {
        assert_eq!(CollectiveAlgo::parse("ring"), Some(CollectiveAlgo::Ring));
        assert_eq!(CollectiveAlgo::parse("tree"), Some(CollectiveAlgo::Tree));
        assert_eq!(CollectiveAlgo::parse("hier"), Some(CollectiveAlgo::Hierarchical { group: 0 }));
        assert_eq!(
            CollectiveAlgo::parse("hierarchical"),
            Some(CollectiveAlgo::Hierarchical { group: 0 })
        );
        assert_eq!(
            CollectiveAlgo::parse("hier:4"),
            Some(CollectiveAlgo::Hierarchical { group: 4 })
        );
        assert_eq!(
            CollectiveAlgo::parse(" hierarchical:16 "),
            Some(CollectiveAlgo::Hierarchical { group: 16 })
        );
        assert_eq!(CollectiveAlgo::parse("mesh"), None);
        assert_eq!(CollectiveAlgo::parse("hier:x"), None);
        assert_eq!(CollectiveAlgo::Ring.span_name(), "allreduce");
        assert_eq!(CollectiveAlgo::Tree.span_name(), "tree_allreduce");
        assert_eq!(CollectiveAlgo::Hierarchical { group: 0 }.span_name(), "hier_allreduce");
        assert_eq!(CollectiveAlgo::default(), CollectiveAlgo::Ring);
    }

    #[test]
    fn env_collective_round_trips() {
        // from_env reads the ambient variable, so only exercise the unset
        // path here (tests run in parallel; parse() covers the grammar).
        assert_eq!(CollectiveAlgo::parse(""), None);
    }

    #[test]
    fn allreduce_with_dispatches_to_each_form() {
        let c = ClusterProfile::p3_like(16);
        let n = 1 << 20;
        assert_eq!(c.allreduce_with(CollectiveAlgo::Ring, n), c.allreduce(n));
        assert_eq!(c.allreduce_with(CollectiveAlgo::Tree, n), c.tree_allreduce(n));
        assert_eq!(
            c.allreduce_with(CollectiveAlgo::Hierarchical { group: 4 }, n),
            c.hier_allreduce(n, 4)
        );
    }

    #[test]
    fn paper_scale_sanity() {
        // ResNet-50 gradients (~102 MB) on 16 nodes at 10 Gbps: an
        // allreduce takes on the order of a fifth of a second.
        let c = ClusterProfile::p3_like(16);
        let t = c.allreduce(25_557_032 * 4).as_secs_f64();
        assert!(t > 0.05 && t < 1.0, "t {t}");
    }
}
