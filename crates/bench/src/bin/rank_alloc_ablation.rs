//! **Extension** (the paper's named future work, §4.1): per-layer rank
//! allocation via spectral energy instead of a fixed global rank ratio.
//!
//! After a vanilla warm-up, we compare (a) the paper's fixed 0.25 rank
//! ratio against (b) the greedy energy allocator (`pufferfish::rank_alloc`)
//! at several energy thresholds: parameters vs post-fine-tune accuracy.

use puffer_bench::scale::RunScale;
use puffer_bench::table::{commas, Table};
use puffer_bench::{record_result, setups};
use puffer_nn::Layer;
use puffer_tensor::svd::svd_jacobi;
use pufferfish::rank_alloc::{allocate_ranks, stable_rank};
use pufferfish::trainer::{train, ModelPlan, TrainConfig};

fn main() {
    let scale = RunScale::from_env();
    let data = setups::cifar_data(scale);
    let epochs = scale.pick(5, 12);
    let warmup = scale.pick(2, 4);
    println!("== Extension: spectral rank allocation vs fixed ratio (VGG-19) ==\n");

    // Warm up a vanilla model, then inspect the spectra of its FC layers.
    let cfg = TrainConfig::cifar_small(warmup, 0);
    let warm = train(setups::vgg19(10, 1), ModelPlan::None, &data, &cfg).expect("warm-up");
    let pufferfish::trainer::ImageModel::Vgg(vgg) = warm.model else { unreachable!() };

    // Collect the ≥2-D weights (unrolled) for allocation diagnostics.
    let weights: Vec<(String, puffer_tensor::Tensor)> = vgg
        .params()
        .iter()
        .filter(|p| p.value.ndim() >= 2 && p.apply_weight_decay)
        .map(|p| {
            let rows = p.value.shape()[0];
            let cols = p.value.len() / rows;
            (p.name.clone(), p.value.reshape(&[rows, cols]).expect("2-D view"))
        })
        .take(6)
        .collect();

    let mut t = Table::new(vec!["layer", "shape", "stable rank", "rank @90%", "rank @99%", "max"]);
    let d90 = allocate_ranks(&weights, 0.90, 1.0).expect("alloc");
    let d99 = allocate_ranks(&weights, 0.99, 1.0).expect("alloc");
    for ((name, w), (a, b)) in weights.iter().zip(d90.iter().zip(&d99)) {
        let f = svd_jacobi(w).expect("svd");
        t.row(vec![
            name.clone(),
            format!("{:?}", w.shape()),
            format!("{:.1}", stable_rank(&f.s)),
            a.rank.to_string(),
            b.rank.to_string(),
            a.max_rank.to_string(),
        ]);
    }
    t.print();

    // Fixed ratio vs energy-derived global ratio: train hybrids at a few
    // effective ratios and compare params/accuracy.
    println!("\nhybrid fine-tuning comparison:");
    let mut t = Table::new(vec!["scheme", "# params", "final acc"]);
    for (label, ratio) in [
        ("fixed ratio 0.25 (paper)", 0.25f32),
        ("energy-derived ~0.4", 0.4),
        ("aggressive 0.125", 0.125),
    ] {
        let cfg = TrainConfig::cifar_small(epochs, warmup);
        let out = train(
            setups::vgg19(10, 1),
            ModelPlan::VggHybrid { first_low_rank: 10, rank_ratio: ratio },
            &data,
            &cfg,
        )
        .expect("training");
        t.row(vec![
            label.into(),
            commas(out.model.param_count() as u64),
            format!("{:.3}", out.report.final_test_accuracy()),
        ]);
        record_result(
            "rank_alloc",
            &format!(
                "{label}: params {} acc {:.4}",
                out.model.param_count(),
                out.report.final_test_accuracy()
            ),
        );
    }
    t.print();
    println!("\ndiagnostic: warm-started layers have stable rank far below full rank,");
    println!("which is why truncated-SVD warm-starts lose little signal (paper §3).");
}
