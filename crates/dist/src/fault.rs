//! Deterministic fault injection for the data-parallel trainer.
//!
//! Real clusters are not the perfect testbed the paper's Figure 4 assumes:
//! "Is Network the Bottleneck of Distributed Training?" (Zhang et al.)
//! stresses that stragglers and failures, not just bandwidth, dominate
//! deployments. A [`FaultPlan`] injects those scenarios into
//! [`crate::trainer::train_data_parallel_with`] deterministically — every
//! fault is a pure function of `(seed, worker, step)`, so a faulty run is
//! exactly reproducible and checkpoint-resume stays bitwise stable.
//!
//! Injectable faults:
//!
//! * **compute slowdown / straggler jitter** — per-worker multiplicative
//!   slowdown plus seeded multiplicative jitter, realized as a real sleep
//!   and accounted as compute time;
//! * **crash-at-step** — the worker thread exits before contributing;
//! * **dropped messages** — a gradient message is lost on its first send
//!   attempt ([`FaultPlan::with_drop`], recovered by the worker's bounded
//!   resend) or on every attempt ([`FaultPlan::with_drop_all`], degraded
//!   around by the aggregator's step timeout);
//! * **bit corruption** — one seeded bit of the encoded message flips;
//!   detected by the aggregator via [`message_checksum`] and the
//!   contribution is discarded;
//! * **non-finite gradients** — one element becomes `NaN`; the
//!   aggregator's AMP-style guard skips the step.

use puffer_tensor::Tensor;
use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

/// Upper bound on a single injected compute delay, so an absurd slowdown
/// factor cannot hang a run (the aggregator would time the worker out long
/// before this anyway).
pub const MAX_INJECTED_DELAY: Duration = Duration::from_secs(5);

const SALT_JITTER: u64 = 0x9e37_79b9_7f4a_7c15;
const SALT_CORRUPT: u64 = 0xbf58_476d_1ce4_e5b9;
const SALT_DROP: u64 = 0x94d0_49bb_1331_11eb;

/// SplitMix64: the deterministic hash behind every seeded fault decision.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Deterministic uniform value in `[0, 1)` from a seed.
pub(crate) fn unit_in_01(x: u64) -> f64 {
    (splitmix64(x) >> 11) as f64 / (1u64 << 53) as f64
}

/// A deterministic, seedable plan of faults to inject into one run.
///
/// The empty plan ([`FaultPlan::none`]) injects nothing and adds no
/// overhead beyond a few map lookups per step.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    /// Per-worker compute slowdown factor (≥ 1.0).
    slowdown: BTreeMap<usize, f64>,
    /// Fractional straggler jitter applied to every worker's compute.
    jitter: f64,
    /// Worker → steps at which it crashes (exits before contributing). A
    /// worker may carry several crash steps: after an elastic *rejoin* its
    /// first crash is history, and only crash steps at or after its
    /// re-entry step apply (see [`FaultPlan::should_crash_since`]).
    crashes: BTreeMap<usize, BTreeSet<usize>>,
    /// Messages lost on the first send attempt only (resend recovers).
    drop_once: BTreeSet<(usize, usize)>,
    /// Messages lost on every attempt (the contribution is gone).
    drop_all: BTreeSet<(usize, usize)>,
    /// Per-attempt random drop probability.
    drop_prob: f64,
    /// Messages whose payload gets one flipped bit.
    corrupt: BTreeSet<(usize, usize)>,
    /// Gradients that turn non-finite (AMP-overflow style).
    nonfinite: BTreeSet<(usize, usize)>,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        Self::default()
    }

    /// An empty plan with a seed for the randomized faults (jitter,
    /// probabilistic drops, corruption sites).
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, ..Self::default() }
    }

    /// Slows `worker`'s compute by `factor` (≥ 1.0; values below 1 are
    /// clamped to 1).
    pub fn with_slowdown(mut self, worker: usize, factor: f64) -> Self {
        self.slowdown.insert(worker, factor.max(1.0));
        self
    }

    /// Adds multiplicative compute jitter: every worker's per-step compute
    /// is stretched by a seeded factor in `[1, 1 + jitter]`.
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter.max(0.0);
        self
    }

    /// Crashes `worker` at `step`: its thread exits without contributing
    /// to that or any later step. May be called several times for one
    /// worker — each crash step applies to the membership stint that
    /// contains it, so a rejoined worker can be crashed again.
    pub fn with_crash(mut self, worker: usize, step: usize) -> Self {
        self.crashes.entry(worker).or_default().insert(step);
        self
    }

    /// Drops `worker`'s step-`step` gradient message on the first send
    /// attempt; the worker's bounded resend recovers it.
    pub fn with_drop(mut self, worker: usize, step: usize) -> Self {
        self.drop_once.insert((worker, step));
        self
    }

    /// Drops `worker`'s step-`step` gradient message on **every** attempt;
    /// the aggregator degrades around the lost contribution.
    pub fn with_drop_all(mut self, worker: usize, step: usize) -> Self {
        self.drop_all.insert((worker, step));
        self
    }

    /// Drops any message with probability `p` per send attempt (seeded).
    pub fn with_drop_prob(mut self, p: f64) -> Self {
        self.drop_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Flips one seeded bit of `worker`'s step-`step` message payload.
    pub fn with_corrupt(mut self, worker: usize, step: usize) -> Self {
        self.corrupt.insert((worker, step));
        self
    }

    /// Makes one element of `worker`'s step-`step` gradient `NaN`.
    pub fn with_nonfinite(mut self, worker: usize, step: usize) -> Self {
        self.nonfinite.insert((worker, step));
        self
    }

    /// Whether the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        *self == Self::default() || (self == &Self::new(self.seed))
    }

    fn mix(&self, salt: u64, worker: usize, step: usize) -> u64 {
        splitmix64(
            self.seed
                ^ salt
                ^ (worker as u64).wrapping_mul(0xa076_1d64_78bd_642f)
                ^ (step as u64).wrapping_mul(0xe703_7ed1_a0b4_28db),
        )
    }

    /// Extra compute delay for `worker` at `step` given its measured
    /// compute time: `(slowdown − 1 + jitter·u)·measured`, capped at
    /// [`MAX_INJECTED_DELAY`]. Deterministic in `(seed, worker, step)`.
    pub fn compute_delay(&self, worker: usize, step: usize, measured: Duration) -> Duration {
        let factor = self.slowdown.get(&worker).copied().unwrap_or(1.0);
        let jitter = if self.jitter > 0.0 {
            self.jitter * unit_in_01(self.mix(SALT_JITTER, worker, step))
        } else {
            0.0
        };
        let stretch = (factor - 1.0) + jitter;
        if stretch <= 0.0 {
            return Duration::ZERO;
        }
        Duration::from_secs_f64(measured.as_secs_f64() * stretch).min(MAX_INJECTED_DELAY)
    }

    /// Whether `worker` crashes at (or before) `step`, counting every
    /// scheduled crash from the beginning of the run (the static-fleet
    /// predicate; equivalent to [`FaultPlan::should_crash_since`] with
    /// `entry = 0`).
    pub fn should_crash(&self, worker: usize, step: usize) -> bool {
        self.should_crash_since(worker, step, 0)
    }

    /// Whether `worker` crashes at (or before) `step` given that its
    /// current membership stint began at `entry`: only crash steps in
    /// `entry..=step` fire. A worker that crashed, was re-admitted by the
    /// elastic trainer, and holds no *later* crash step stays alive —
    /// without the entry cut-off a rejoiner would re-crash on its first
    /// round, forever.
    pub fn should_crash_since(&self, worker: usize, step: usize, entry: usize) -> bool {
        if step < entry {
            return false;
        }
        self.crashes.get(&worker).is_some_and(|s| s.range(entry..=step).next().is_some())
    }

    /// Whether `worker`'s step-`step` message is lost on send `attempt`.
    pub fn drops_message(&self, worker: usize, step: usize, attempt: u32) -> bool {
        if self.drop_all.contains(&(worker, step)) {
            return true;
        }
        if attempt == 0 && self.drop_once.contains(&(worker, step)) {
            return true;
        }
        self.drop_prob > 0.0
            && unit_in_01(self.mix(SALT_DROP ^ u64::from(attempt), worker, step)) < self.drop_prob
    }

    /// Applies bit corruption to an outgoing message (call **after**
    /// checksumming, so the receiver can detect it). Returns whether a bit
    /// was flipped.
    pub fn corrupt_message(&self, worker: usize, step: usize, grads: &mut [Tensor]) -> bool {
        if !self.corrupt.contains(&(worker, step)) {
            return false;
        }
        let total: usize = grads.iter().map(Tensor::len).sum();
        if total == 0 {
            return false;
        }
        let h = self.mix(SALT_CORRUPT, worker, step);
        let mut target = (h as usize) % total;
        let bit = (h >> 48) as u32 % 32;
        for g in grads.iter_mut() {
            let len = g.len();
            if let Some(v) = g.as_mut_slice().get_mut(target) {
                *v = f32::from_bits(v.to_bits() ^ (1 << bit));
                return true;
            }
            target -= len;
        }
        false
    }

    /// Injects a `NaN` into an outgoing gradient (before checksumming: the
    /// worker "really" computed it, as under AMP overflow). Returns whether
    /// an element was poisoned.
    pub fn inject_nonfinite(&self, worker: usize, step: usize, grads: &mut [Tensor]) -> bool {
        if !self.nonfinite.contains(&(worker, step)) {
            return false;
        }
        for g in grads.iter_mut() {
            if let Some(v) = g.as_mut_slice().first_mut() {
                *v = f32::NAN;
                return true;
            }
        }
        false
    }
}

/// FNV-1a over the bit patterns of every element of a gradient message —
/// the integrity check the aggregator uses to reject bit-corrupted
/// contributions.
pub fn message_checksum(grads: &[Tensor]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for g in grads {
        h ^= g.len() as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
        for &v in g.as_slice() {
            h ^= u64::from(v.to_bits());
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Whether any element of any gradient is non-finite (the AMP-style skip
/// guard's predicate).
pub fn any_nonfinite(grads: &[Tensor]) -> bool {
    grads.iter().any(|g| g.as_slice().iter().any(|v| !v.is_finite()))
}

/// What actually happened during a faulty run — the trainer's account of
/// every degradation it absorbed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Workers detected dead, with the step of detection.
    pub crashed: Vec<(usize, usize)>,
    /// Steps skipped by the non-finite-gradient guard.
    pub skipped_steps: Vec<usize>,
    /// Contributions lost to timeouts (persistent drops or stragglers that
    /// outlasted the bounded retries).
    pub lost_contributions: usize,
    /// Contributions rejected by the checksum guard.
    pub corrupted_messages: usize,
    /// Late messages from a previous step, discarded on arrival.
    pub stale_messages: usize,
    /// Checkpoint snapshots that could not be collected from a leader.
    pub checkpoint_failures: usize,
    /// Workers still alive at the end of the run.
    pub survivors: usize,
}

impl FaultReport {
    /// Whether the run saw no degradation at all.
    pub fn is_clean(&self) -> bool {
        self.crashed.is_empty()
            && self.skipped_steps.is_empty()
            && self.lost_contributions == 0
            && self.corrupted_messages == 0
            && self.stale_messages == 0
            && self.checkpoint_failures == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let p = FaultPlan::none();
        assert!(!p.should_crash(0, 0));
        assert!(!p.drops_message(0, 0, 0));
        assert_eq!(p.compute_delay(0, 0, Duration::from_millis(10)), Duration::ZERO);
        let mut g = vec![Tensor::full(&[4], 1.0)];
        assert!(!p.corrupt_message(0, 0, &mut g));
        assert!(!p.inject_nonfinite(0, 0, &mut g));
        assert_eq!(g[0].as_slice(), &[1.0; 4]);
    }

    #[test]
    fn slowdown_scales_measured_compute() {
        let p = FaultPlan::new(1).with_slowdown(2, 3.0);
        let d = p.compute_delay(2, 5, Duration::from_millis(10));
        assert_eq!(d, Duration::from_millis(20)); // (3−1)×10ms
        assert_eq!(p.compute_delay(0, 5, Duration::from_millis(10)), Duration::ZERO);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = FaultPlan::new(7).with_jitter(0.5);
        let m = Duration::from_millis(100);
        let a = p.compute_delay(1, 3, m);
        let b = p.compute_delay(1, 3, m);
        assert_eq!(a, b, "same (seed, worker, step) must give the same jitter");
        assert!(a <= Duration::from_millis(50), "jitter delay {a:?} exceeds 0.5×measured");
        // Different steps decorrelate.
        let c = p.compute_delay(1, 4, m);
        assert_ne!(a, c);
    }

    #[test]
    fn injected_delay_is_capped() {
        let p = FaultPlan::new(1).with_slowdown(0, 1e9);
        assert_eq!(p.compute_delay(0, 0, Duration::from_secs(1)), MAX_INJECTED_DELAY);
    }

    #[test]
    fn crash_is_sticky_from_its_step() {
        let p = FaultPlan::new(1).with_crash(3, 5);
        assert!(!p.should_crash(3, 4));
        assert!(p.should_crash(3, 5));
        assert!(p.should_crash(3, 9));
        assert!(!p.should_crash(2, 9));
    }

    #[test]
    fn rejoin_entry_step_masks_spent_crashes() {
        // Crash at 5, rejoin at 8 → the spent crash never re-fires; a
        // second scheduled crash at 12 fires within the new stint.
        let p = FaultPlan::new(1).with_crash(3, 5).with_crash(3, 12);
        assert!(p.should_crash_since(3, 5, 0));
        assert!(!p.should_crash_since(3, 8, 8));
        assert!(!p.should_crash_since(3, 11, 8));
        assert!(p.should_crash_since(3, 12, 8));
        // A step before the entry never crashes.
        assert!(!p.should_crash_since(3, 7, 8));
        // The static predicate still sees the earliest crash.
        assert!(p.should_crash(3, 5));
    }

    #[test]
    fn drop_once_recovers_on_retry_drop_all_never() {
        let p = FaultPlan::new(1).with_drop(0, 2).with_drop_all(1, 2);
        assert!(p.drops_message(0, 2, 0));
        assert!(!p.drops_message(0, 2, 1), "resend of a drop-once message must succeed");
        for attempt in 0..5 {
            assert!(p.drops_message(1, 2, attempt));
        }
        assert!(!p.drops_message(0, 3, 0));
    }

    #[test]
    fn corruption_flips_exactly_one_bit_and_checksum_catches_it() {
        let p = FaultPlan::new(42).with_corrupt(1, 0);
        let mut grads = vec![Tensor::randn(&[3, 4], 1.0, 9), Tensor::randn(&[5], 1.0, 10)];
        let before = grads.clone();
        let sum = message_checksum(&grads);
        assert!(p.corrupt_message(1, 0, &mut grads));
        assert_ne!(message_checksum(&grads), sum);
        let diffs: usize = grads
            .iter()
            .zip(&before)
            .flat_map(|(a, b)| a.as_slice().iter().zip(b.as_slice()))
            .filter(|(x, y)| x.to_bits() != y.to_bits())
            .count();
        assert_eq!(diffs, 1);
    }

    #[test]
    fn nan_injection_detected_by_guard() {
        let p = FaultPlan::new(1).with_nonfinite(0, 1);
        let mut grads = vec![Tensor::full(&[3], 2.0)];
        assert!(!any_nonfinite(&grads));
        assert!(p.inject_nonfinite(0, 1, &mut grads));
        assert!(any_nonfinite(&grads));
    }

    #[test]
    fn checksum_is_order_and_value_sensitive() {
        let a = vec![Tensor::full(&[2], 1.0), Tensor::full(&[2], 2.0)];
        let b = vec![Tensor::full(&[2], 2.0), Tensor::full(&[2], 1.0)];
        assert_ne!(message_checksum(&a), message_checksum(&b));
        assert_eq!(message_checksum(&a), message_checksum(&a.clone()));
    }

    #[test]
    fn drop_prob_is_seeded_and_roughly_calibrated() {
        let p = FaultPlan::new(3).with_drop_prob(0.3);
        let hits = (0..1000).filter(|&s| p.drops_message(0, s, 0)).count();
        assert!((200..400).contains(&hits), "30% drop rate wildly off: {hits}/1000");
        let q = FaultPlan::new(3).with_drop_prob(0.3);
        let hits2 = (0..1000).filter(|&s| q.drops_message(0, s, 0)).count();
        assert_eq!(hits, hits2, "same seed must give same drop pattern");
    }
}
