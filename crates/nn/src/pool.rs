//! Spatial pooling and shape-bridging layers for CNNs.

use crate::layer::{Layer, Mode};
use crate::param::Param;
use puffer_tensor::Tensor;

/// 2-D max pooling with square kernel and equal stride.
#[derive(Debug)]
pub struct MaxPool2d {
    kernel: usize,
    stride: usize,
    argmax: Option<Vec<usize>>,
    input_shape: Option<Vec<usize>>,
}

impl MaxPool2d {
    /// Creates a max-pool layer (`kernel_size = stride = k` is the VGG/ResNet
    /// convention used throughout the paper's appendix tables).
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(kernel: usize, stride: usize) -> Self {
        assert!(kernel > 0 && stride > 0, "kernel and stride must be nonzero");
        MaxPool2d { kernel, stride, argmax: None, input_shape: None }
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        assert_eq!(input.ndim(), 4, "MaxPool2d expects [N, C, H, W]");
        let (n, c, h, w) = {
            let s = input.shape();
            (s[0], s[1], s[2], s[3])
        };
        let ho = (h - self.kernel) / self.stride + 1;
        let wo = (w - self.kernel) / self.stride + 1;
        let mut out = Tensor::zeros(&[n, c, ho, wo]);
        let mut argmax = vec![0usize; out.len()];
        let src = input.as_slice();
        let dst = out.as_mut_slice();
        let mut oi = 0;
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * h * w;
                for oy in 0..ho {
                    for ox in 0..wo {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0;
                        for ky in 0..self.kernel {
                            let iy = oy * self.stride + ky;
                            for kx in 0..self.kernel {
                                let ix = ox * self.stride + kx;
                                let idx = base + iy * w + ix;
                                if src[idx] > best {
                                    best = src[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        dst[oi] = best;
                        argmax[oi] = best_idx;
                        oi += 1;
                    }
                }
            }
        }
        if mode == Mode::Train {
            self.argmax = Some(argmax);
            self.input_shape = Some(input.shape().to_vec());
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let argmax = self.argmax.as_ref().expect("backward before train-mode forward");
        let shape = self.input_shape.as_ref().expect("backward before train-mode forward");
        assert_eq!(argmax.len(), grad_output.len(), "MaxPool2d gradient shape mismatch");
        let mut gin = Tensor::zeros(shape);
        let gv = gin.as_mut_slice();
        for (g, &idx) in grad_output.as_slice().iter().zip(argmax) {
            gv[idx] += g;
        }
        gin
    }

    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    fn describe(&self) -> String {
        format!("MaxPool2d(k={}, s={})", self.kernel, self.stride)
    }
}

/// Global average pooling: `[N, C, H, W] → [N, C]`.
#[derive(Debug, Default)]
pub struct GlobalAvgPool {
    input_shape: Option<Vec<usize>>,
}

impl GlobalAvgPool {
    /// Creates a global average-pool layer.
    pub fn new() -> Self {
        GlobalAvgPool { input_shape: None }
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        assert_eq!(input.ndim(), 4, "GlobalAvgPool expects [N, C, H, W]");
        let (n, c, h, w) = {
            let s = input.shape();
            (s[0], s[1], s[2], s[3])
        };
        let hw = (h * w) as f32;
        let mut out = Tensor::zeros(&[n, c]);
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * h * w;
                let s: f32 = input.as_slice()[base..base + h * w].iter().sum();
                out.as_mut_slice()[ni * c + ci] = s / hw;
            }
        }
        if mode == Mode::Train {
            self.input_shape = Some(input.shape().to_vec());
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let shape = self.input_shape.as_ref().expect("backward before train-mode forward");
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        assert_eq!(grad_output.shape(), &[n, c], "GlobalAvgPool gradient shape mismatch");
        let inv = 1.0 / (h * w) as f32;
        let mut gin = Tensor::zeros(shape);
        for ni in 0..n {
            for ci in 0..c {
                let g = grad_output.as_slice()[ni * c + ci] * inv;
                let base = (ni * c + ci) * h * w;
                for v in &mut gin.as_mut_slice()[base..base + h * w] {
                    *v = g;
                }
            }
        }
        gin
    }

    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    fn describe(&self) -> String {
        "GlobalAvgPool".into()
    }
}

/// Flattens `[N, ...] → [N, prod(...)]`.
#[derive(Debug, Default)]
pub struct Flatten {
    input_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten { input_shape: None }
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        assert!(input.ndim() >= 2, "Flatten expects a batch dimension");
        let n = input.shape()[0];
        let rest: usize = input.shape()[1..].iter().product();
        if mode == Mode::Train {
            self.input_shape = Some(input.shape().to_vec());
        }
        input.reshape(&[n, rest]).expect("flatten preserves element count")
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let shape = self.input_shape.as_ref().expect("backward before train-mode forward");
        grad_output.reshape(shape).expect("flatten backward preserves element count")
    }

    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    fn describe(&self) -> String {
        "Flatten".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_known_values() {
        let mut p = MaxPool2d::new(2, 2);
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0,
                16.0,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let y = p.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.as_slice(), &[6.0, 8.0, 14.0, 16.0]);
        // Backward routes gradient to argmax positions only.
        let g = p.backward(&Tensor::ones(&[1, 1, 2, 2]));
        let expected: Vec<f32> =
            (0..16).map(|i| if [5, 7, 13, 15].contains(&i) { 1.0 } else { 0.0 }).collect();
        assert_eq!(g.as_slice(), &expected[..]);
    }

    #[test]
    fn global_avg_pool() {
        let mut p = GlobalAvgPool::new();
        let x = Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0], &[1, 1, 2, 2]).unwrap();
        let y = p.forward(&x, Mode::Train);
        assert_eq!(y.as_slice(), &[4.0]);
        let g = p.backward(&Tensor::from_vec(vec![8.0], &[1, 1]).unwrap());
        assert_eq!(g.as_slice(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn flatten_round_trip() {
        let mut f = Flatten::new();
        let x = Tensor::randn(&[2, 3, 4, 4], 1.0, 1);
        let y = f.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[2, 48]);
        let g = f.backward(&y);
        assert_eq!(g.shape(), x.shape());
        assert_eq!(g.as_slice(), x.as_slice());
    }

    #[test]
    fn maxpool_grad_accumulates_duplicate_max() {
        // Stride 1 pooling: same input position can be max of two windows.
        let mut p = MaxPool2d::new(2, 1);
        let x = Tensor::from_vec(vec![0.0, 9.0, 0.0, 0.0, 0.0, 0.0], &[1, 1, 2, 3]).unwrap();
        let y = p.forward(&x, Mode::Train);
        assert_eq!(y.as_slice(), &[9.0, 9.0]);
        let g = p.backward(&Tensor::ones(&[1, 1, 1, 2]));
        assert_eq!(g.as_slice()[1], 2.0);
    }
}
