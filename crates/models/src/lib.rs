//! Model zoo for the Pufferfish reproduction.
//!
//! Two complementary views of every architecture the paper evaluates:
//!
//! * [`spec`] — **paper-exact parameter/MAC ledgers** of the full-scale
//!   models (VGG-19-BN, ResNet-18, ResNet-50, WideResNet-50-2, the 2-layer
//!   LSTM, the 6-layer Transformer) and their Pufferfish hybrids. These
//!   reproduce the exact counts of Tables 2–5 and 7 (e.g. VGG-19
//!   20,560,330 → 8,370,634) without allocating any weights.
//! * Runnable, width-scaled models for CPU-scale end-to-end training:
//!   [`vgg::Vgg`], [`resnet::ResNet`], [`lstm_lm::LstmLm`], and
//!   [`transformer::TransformerModel`] — each with a `to_hybrid` /
//!   `to_low_rank` conversion implementing the paper's SVD warm-start
//!   (Algorithm 1's factorization step) or random low-rank initialization
//!   (the from-scratch baseline).
//!
//! Shared machinery (dense/low-rank conv & FC units, factorization
//! surgery) lives in [`units`].

pub mod lstm_lm;
pub mod resnet;
pub mod spec;
pub mod transformer;
pub mod units;
pub mod vgg;
