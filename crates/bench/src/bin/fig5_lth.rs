//! **Figure 5**: Pufferfish vs Lottery-Ticket iterative magnitude pruning
//! on VGG-19 / CIFAR-10 — (a) parameters vs wall-clock, (b) parameters vs
//! accuracy.
//!
//! LTH's iterative prune-rewind-retrain loop pays a full training run per
//! round; Pufferfish reaches its compression in a single run. Shape under
//! reproduction: at comparable remaining-parameter counts, LTH's
//! cumulative wall-clock is several times Pufferfish's (paper: 5.67×).

use puffer_bench::scale::RunScale;
use puffer_bench::table::{commas, Table};
use puffer_bench::{record_result, setups};
use puffer_nn::layer::{Layer, Mode};
use puffer_nn::loss::softmax_cross_entropy;
use puffer_nn::optim::Sgd;
use puffer_probe::Stopwatch;
use puffer_prune::lth::LotteryState;
use pufferfish::trainer::{evaluate, train, ModelPlan, TrainConfig};

fn main() {
    let scale = RunScale::from_env();
    let data = setups::cifar_data(scale);
    let epochs_per_round = scale.pick(3, 8);
    let rounds = scale.pick(3, 5);
    println!("== Figure 5: Pufferfish vs LTH on VGG-19 ({rounds} LTH rounds × {epochs_per_round} epochs) ==\n");

    // Pufferfish single run.
    let cfg = TrainConfig::cifar_small(epochs_per_round, scale.pick(1, 2));
    let t0 = Stopwatch::start();
    let puffer = train(
        setups::vgg19(10, 1),
        ModelPlan::VggHybrid { first_low_rank: 10, rank_ratio: 0.25 },
        &data,
        &cfg,
    )
    .expect("training");
    let puffer_time = t0.elapsed().as_secs_f64();
    let puffer_params = puffer.report.hybrid_params;
    let puffer_acc = puffer.report.final_test_accuracy();

    // LTH: train → prune 20% of survivors → rewind → retrain, per round.
    let mut model = setups::vgg19(10, 1);
    let mut state = LotteryState::capture(&model);
    let mut rows = Vec::new();
    let mut cumulative = 0.0f64;
    for round in 0..rounds {
        let t0 = Stopwatch::start();
        let mut opt = Sgd::new(0.1, 0.9, 1e-4);
        for epoch in 0..epochs_per_round {
            for (images, labels) in data.train_batches(32, (round * 100 + epoch) as u64) {
                model.zero_grad();
                let logits = model.forward(&images, Mode::Train);
                let (_, dl) = softmax_cross_entropy(&logits, &labels, 0.0).expect("loss");
                let _ = model.backward(&dl);
                state.enforce(&mut model);
                opt.step(&mut model.params_mut());
                state.enforce(&mut model);
            }
        }
        cumulative += t0.elapsed().as_secs_f64();
        let mut wrapped: pufferfish::trainer::ImageModel = {
            // evaluate() wants an ImageModel; wrap a clone-by-rebuild.
            // (masks already enforced on `model` itself)
            let m = std::mem::replace(&mut model, setups::vgg19(10, 1));
            m.into()
        };
        let (_, acc) = evaluate(&mut wrapped, &data, 32).expect("eval");
        let pufferfish::trainer::ImageModel::Vgg(back) = wrapped else { unreachable!() };
        model = back;
        let params = state.effective_params(&model);
        rows.push((round + 1, params, acc, cumulative));
        record_result(
            "fig5_lth",
            &format!("round={} params={params} acc={acc:.4} cum_time={cumulative:.2}", round + 1),
        );
        // Prune 20% of survivors and rewind for the next round.
        state.prune_global(&model, 0.2);
        state.rewind(&mut model);
    }

    let mut t = Table::new(vec!["method", "# params", "test acc", "cumulative wall (s)"]);
    t.row(vec![
        "Pufferfish (1 run)".into(),
        commas(puffer_params as u64),
        format!("{puffer_acc:.3}"),
        format!("{puffer_time:.1}"),
    ]);
    for (round, params, acc, time) in &rows {
        t.row(vec![
            format!("LTH round {round}"),
            commas(*params as u64),
            format!("{acc:.3}"),
            format!("{time:.1}"),
        ]);
    }
    t.print();

    // Wall-clock ratio at the round whose params first drop below Pufferfish's.
    if let Some((round, _, _, time)) = rows.iter().find(|(_, p, _, _)| *p <= puffer_params) {
        println!(
            "\nLTH needs {round} rounds ({time:.1}s) to match Pufferfish's param count ({:.2}x slower; paper 5.67x)",
            time / puffer_time
        );
    } else {
        let last = rows.last().expect("rounds ran");
        println!(
            "\nafter {rounds} rounds LTH is at {} params vs Pufferfish {} — cumulative time ratio {:.2}x (paper 5.67x at equal compression)",
            commas(last.1 as u64),
            commas(puffer_params as u64),
            last.3 / puffer_time
        );
    }
}
