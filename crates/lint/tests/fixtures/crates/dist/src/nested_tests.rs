//! Fixture: module-scope tracking. Multiple test modules, a nested inner
//! module, and a `#[cfg(test)]` on an inner *function* — exemption must
//! cover exactly the annotated item, nothing more.

#[cfg(test)]
mod tests_one {
    mod inner {
        pub fn helper(x: Option<u32>) -> u32 {
            x.unwrap() // exempt: nested inside a test module
        }
    }

    #[test]
    fn t() {
        assert_eq!(inner::helper(Some(2)), 2);
    }
}

pub fn live_between(x: Option<u32>) -> u32 {
    x.unwrap() // line 20: flagged — between two test modules
}

#[cfg(test)]
fn test_only_helper() {
    panic!("exempt: the attribute is on this function only");
}

pub fn live_after(n: u32) {
    if n == 99 {
        panic!("line 30: flagged — after an annotated inner function");
    }
}

#[cfg(test)]
mod tests_two {
    #[test]
    fn t2() {
        super::test_only_helper_guard();
        let v: Vec<u32> = Vec::new();
        assert!(v.first().is_none());
    }
}

#[cfg(test)]
fn test_only_helper_guard() {}
