//! Fixture: the membership module is the one dist file allowed to resize
//! the compute pool — `PoolWidthGuard` recaps the width to the live
//! member count at each epoch and restores it on drop. Never flagged.

pub struct PoolWidthGuard {
    prev: usize,
}

impl PoolWidthGuard {
    pub fn recap(&mut self, n_workers: usize) {
        let hw = 8;
        puffer_tensor::pool::set_num_threads((hw / n_workers.max(1)).max(1).min(self.prev));
    }
}

impl Drop for PoolWidthGuard {
    fn drop(&mut self) {
        puffer_tensor::pool::set_num_threads(self.prev);
    }
}
