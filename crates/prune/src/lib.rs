//! Pruning baselines for the Pufferfish reproduction.
//!
//! The paper compares against two pruning families:
//!
//! * [`lth`] — the Lottery Ticket Hypothesis iterative magnitude pruning
//!   (Frankle & Carbin 2018): train → globally prune the smallest-magnitude
//!   surviving weights → rewind survivors to their initial values →
//!   retrain, repeated for several rounds. Massive compression, but the
//!   repeated retraining is what makes LTH 5.67× slower than Pufferfish at
//!   equal compression (Figure 5).
//! * [`early_bird`] — Early-Bird tickets (You et al. 2019): structured
//!   channel pruning drawn *early* in training by ranking BatchNorm scale
//!   factors (γ) and detecting mask convergence via Hamming distance
//!   (Table 7's EB Train baseline).
//!
//! Both operate generically on any [`puffer_nn::Layer`] through the
//! workspace's parameter-name conventions (`"weight"` for prunable weight
//! tensors, `"bn.weight"`/`"bn.bias"` for BatchNorm affines).

pub mod early_bird;
pub mod lth;
