//! PowerSGD (Vogels, Karimireddy & Jaggi, 2019): practical low-rank
//! gradient compression.
//!
//! Each ≥2-D gradient `M (m×n)` is compressed to rank `r` by one step of
//! subspace/power iteration against a warm-started query matrix `Q`:
//!
//! 1. `P = M·Q` (allreduced → mean), orthogonalized (Gram–Schmidt);
//! 2. `Q ← Mᵀ·P` (allreduced → mean);
//! 3. every worker decodes `M̂ = P·Qᵀ`.
//!
//! Error feedback keeps the compression residual `M − M̂` in per-worker
//! memory and adds it back the next round. 1-D tensors (biases, BN) are
//! sent uncompressed, as in the reference implementation. PowerSGD is
//! allreduce-compatible — the reason the paper picks it as the strongest
//! communication baseline in Figure 4(b).

use crate::{AggregationKind, GradCompressor, RoundStats};
use puffer_probe::Stopwatch;
use puffer_tensor::matmul::{matmul, matmul_tn};
use puffer_tensor::svd::orthogonalize_columns;
use puffer_tensor::Tensor;
use std::time::Duration;

/// PowerSGD compressor state.
#[derive(Debug)]
pub struct PowerSgd {
    rank: usize,
    /// Warm-started Q per compressible layer.
    queries: Vec<Option<Tensor>>,
    /// Error-feedback memory per worker per layer.
    memory: Vec<Vec<Option<Tensor>>>,
    seed: u64,
}

impl PowerSgd {
    /// Creates a rank-`r` compressor. The paper uses rank 2 for ResNet-18
    /// as the accuracy-neutral setting and rank 4 when warm-starting
    /// Pufferfish (appendix E).
    ///
    /// # Panics
    ///
    /// Panics if `rank` is zero.
    pub fn new(rank: usize, seed: u64) -> Self {
        assert!(rank > 0, "PowerSGD rank must be nonzero");
        PowerSgd { rank, queries: Vec::new(), memory: Vec::new(), seed }
    }

    /// The compression rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Reshapes a gradient to the 2-D matrix PowerSGD factorizes
    /// (`c_out × rest` for conv weights), or `None` for 1-D tensors.
    fn as_matrix(t: &Tensor) -> Option<Tensor> {
        if t.ndim() < 2 {
            return None;
        }
        let rows = t.shape()[0];
        let cols = t.len() / rows;
        Some(t.reshape(&[rows, cols]).expect("element count"))
    }
}

impl GradCompressor for PowerSgd {
    fn name(&self) -> &'static str {
        "powersgd"
    }

    fn aggregation(&self) -> AggregationKind {
        AggregationKind::AllReduce
    }

    fn round(&mut self, worker_grads: &[Vec<Tensor>]) -> (Vec<Tensor>, RoundStats) {
        let n_workers = worker_grads.len();
        let n_layers = worker_grads[0].len();
        if self.queries.len() != n_layers {
            self.queries = vec![None; n_layers];
        }
        if self.memory.len() != n_workers {
            self.memory = (0..n_workers).map(|_| vec![None; n_layers]).collect();
        }

        let mut out = Vec::with_capacity(n_layers);
        let mut bytes = 0usize;
        let mut encode_time = Duration::ZERO;
        let mut decode_time = Duration::ZERO;

        for li in 0..n_layers {
            let sample = &worker_grads[0][li];
            match Self::as_matrix(sample) {
                None => {
                    // Uncompressed small tensor: exact mean.
                    let mut mean = worker_grads[0][li].clone();
                    for w in &worker_grads[1..] {
                        mean.axpy(1.0, &w[li]).expect("shape");
                    }
                    mean.scale(1.0 / n_workers as f32);
                    bytes += mean.len() * 4;
                    out.push(mean);
                }
                Some(m0) => {
                    let (m, n) = (m0.shape()[0], m0.shape()[1]);
                    let r = self.rank.min(m).min(n);
                    let t_enc = Stopwatch::start();
                    // Error-compensated per-worker matrices.
                    let mats: Vec<Tensor> = worker_grads
                        .iter()
                        .enumerate()
                        .map(|(w, grads)| {
                            let mut mat = Self::as_matrix(&grads[li]).expect("checked");
                            if let Some(e) = &self.memory[w][li] {
                                mat.axpy(1.0, e).expect("shape");
                            }
                            mat
                        })
                        .collect();
                    // Warm-started shared query.
                    let q = self.queries[li].take().filter(|q| q.shape() == [n, r]).unwrap_or_else(
                        || Tensor::randn(&[n, r], 1.0, self.seed.wrapping_add(li as u64)),
                    );
                    // P_w = M_w Q; allreduce-mean; orthogonalize.
                    let mut p_mean = Tensor::zeros(&[m, r]);
                    for mat in &mats {
                        p_mean.axpy(1.0, &matmul(mat, &q).expect("shape")).expect("shape");
                    }
                    p_mean.scale(1.0 / n_workers as f32);
                    orthogonalize_columns(&mut p_mean);
                    // Q_w = M_wᵀ P̂; allreduce-mean.
                    let mut q_mean = Tensor::zeros(&[n, r]);
                    for mat in &mats {
                        q_mean.axpy(1.0, &matmul_tn(mat, &p_mean).expect("shape")).expect("shape");
                    }
                    q_mean.scale(1.0 / n_workers as f32);
                    encode_time += t_enc.elapsed();

                    let t_dec = Stopwatch::start();
                    let decoded = matmul(&p_mean, &q_mean.transpose()).expect("shape");
                    // Update error feedback: e_w = M_w − M̂.
                    for (w, mat) in mats.iter().enumerate() {
                        let mut e = mat.clone();
                        e.axpy(-1.0, &decoded).expect("shape");
                        self.memory[w][li] = Some(e);
                    }
                    self.queries[li] = Some(q_mean.clone());
                    decode_time += t_dec.elapsed();

                    bytes += (m * r + n * r) * 4; // P and Q per worker
                    out.push(decoded.reshape(sample.shape()).expect("element count"));
                }
            }
        }
        // Per-node encode: each node computes only its own P/Q products
        // (the allreduce sums them in flight).
        encode_time /= n_workers.max(1) as u32;
        (
            out,
            RoundStats::new(
                bytes,
                worker_grads.len(),
                self.aggregation(),
                encode_time,
                decode_time,
            ),
        )
    }

    fn state_snapshot(&self) -> Vec<(String, Tensor)> {
        let mut out = Vec::new();
        if self.queries.is_empty() && self.memory.is_empty() {
            return out;
        }
        let n_layers = self.queries.len();
        let n_workers = self.memory.len();
        let meta =
            Tensor::from_vec(vec![n_layers as f32, n_workers as f32, self.rank as f32], &[3])
                .expect("meta shape");
        out.push(("meta".into(), meta));
        for (li, q) in self.queries.iter().enumerate() {
            if let Some(q) = q {
                out.push((format!("q.{li:04}"), q.clone()));
            }
        }
        for (w, layers) in self.memory.iter().enumerate() {
            for (li, e) in layers.iter().enumerate() {
                if let Some(e) = e {
                    out.push((format!("m.{w:02}.{li:04}"), e.clone()));
                }
            }
        }
        out
    }

    fn restore_state(&mut self, state: &[(String, Tensor)]) -> bool {
        if state.is_empty() {
            self.queries.clear();
            self.memory.clear();
            return true;
        }
        let Some(meta) = state.iter().find(|(n, _)| n == "meta") else {
            return false;
        };
        let m = meta.1.as_slice();
        if m.len() != 3 || m[2] as usize != self.rank {
            return false;
        }
        let n_layers = m[0] as usize;
        let n_workers = m[1] as usize;
        let mut queries = vec![None; n_layers];
        let mut memory: Vec<Vec<Option<Tensor>>> =
            (0..n_workers).map(|_| vec![None; n_layers]).collect();
        for (name, t) in state {
            if name == "meta" {
                continue;
            }
            if let Some(li) = name.strip_prefix("q.").and_then(|s| s.parse::<usize>().ok()) {
                if li >= n_layers {
                    return false;
                }
                queries[li] = Some(t.clone());
            } else if let Some(rest) = name.strip_prefix("m.") {
                let mut it = rest.splitn(2, '.');
                let w = it.next().and_then(|s| s.parse::<usize>().ok());
                let li = it.next().and_then(|s| s.parse::<usize>().ok());
                let (Some(w), Some(li)) = (w, li) else {
                    return false;
                };
                if w >= n_workers || li >= n_layers {
                    return false;
                }
                memory[w][li] = Some(t.clone());
            } else {
                return false;
            }
        }
        self.queries = queries;
        self.memory = memory;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact_mean;
    use puffer_tensor::stats::{l2_norm, rel_error};

    #[test]
    fn full_rank_compression_is_near_exact() {
        // r >= min(m, n): one power iteration reconstructs exactly after a
        // couple of warm-started rounds.
        let mut c = PowerSgd::new(4, 1);
        let grads = vec![vec![Tensor::randn(&[4, 6], 1.0, 2)]];
        let mut err = f32::INFINITY;
        for _ in 0..3 {
            let (out, _) = c.round(&grads);
            err = rel_error(&grads[0][0], &out[0]);
        }
        assert!(err < 1e-2, "rel err {err}");
    }

    #[test]
    fn low_rank_matrix_recovered_exactly() {
        // A rank-1 gradient is exactly representable at rank 1.
        let u = Tensor::randn(&[5, 1], 1.0, 3);
        let v = Tensor::randn(&[1, 7], 1.0, 4);
        let m = matmul(&u, &v).unwrap();
        let mut c = PowerSgd::new(1, 5);
        let grads = vec![vec![m.clone()]];
        let mut out = Vec::new();
        for _ in 0..3 {
            out = c.round(&grads).0;
        }
        assert!(rel_error(&m, &out[0]) < 1e-2);
    }

    #[test]
    fn error_feedback_accumulates_residual() {
        // With aggressive rank-1 compression of a full-rank gradient, the
        // error memory must be non-empty and the sum decoded+error ≈ input.
        let mut c = PowerSgd::new(1, 6);
        let g = Tensor::randn(&[6, 6], 1.0, 7);
        let (out, _) = c.round(&[vec![g.clone()]]);
        let mem = c.memory[0][0].as_ref().unwrap();
        assert!(l2_norm(mem) > 1e-3);
        let sum = &out[0].reshape(&[6, 6]).unwrap() + mem;
        assert!(rel_error(&g, &sum) < 1e-4);
    }

    #[test]
    fn one_d_tensors_pass_through_exact() {
        let mut c = PowerSgd::new(2, 8);
        let w1 = vec![Tensor::full(&[5], 1.0)];
        let w2 = vec![Tensor::full(&[5], 3.0)];
        let (out, _) = c.round(&[w1.clone(), w2.clone()]);
        assert_eq!(out, exact_mean(&[w1, w2]));
    }

    #[test]
    fn compression_reduces_bytes() {
        let mut c = PowerSgd::new(2, 9);
        let grads = vec![vec![Tensor::randn(&[64, 64], 1.0, 10)]];
        let (_, stats) = c.round(&grads);
        assert!(stats.bytes_per_worker < 64 * 64 * 4 / 4, "bytes {}", stats.bytes_per_worker);
        assert_eq!(c.aggregation(), AggregationKind::AllReduce);
    }

    #[test]
    fn multi_worker_mean_direction() {
        // Two workers with opposite gradients: decoded mean must be small.
        let g = Tensor::randn(&[8, 8], 1.0, 11);
        let neg = -&g;
        let mut c = PowerSgd::new(8, 12);
        let (out, _) = c.round(&[vec![g.clone()], vec![neg]]);
        assert!(l2_norm(&out[0]) < 0.1 * l2_norm(&g));
    }

    #[test]
    fn snapshot_restore_resumes_bitwise() {
        let grads: Vec<Vec<Tensor>> = (0..2)
            .map(|w| vec![Tensor::randn(&[6, 5], 1.0, 20 + w), Tensor::randn(&[5], 1.0, 30 + w)])
            .collect();
        let mut a = PowerSgd::new(2, 3);
        for _ in 0..3 {
            let _ = a.round(&grads);
        }
        let snap = a.state_snapshot();
        assert!(!snap.is_empty());
        let mut b = PowerSgd::new(2, 3);
        assert!(b.restore_state(&snap));
        // Error feedback and warm-started queries carried over: the next
        // round is bitwise identical.
        assert_eq!(a.round(&grads).0, b.round(&grads).0);
        // Wrong rank is rejected; empty state resets to fresh.
        let mut c = PowerSgd::new(3, 3);
        assert!(!c.restore_state(&snap));
        assert!(c.restore_state(&[]));
    }

    #[test]
    fn conv_shaped_gradients_work() {
        let mut c = PowerSgd::new(2, 13);
        let g = Tensor::randn(&[8, 4, 3, 3], 1.0, 14);
        let (out, _) = c.round(&[vec![g.clone()]]);
        assert_eq!(out[0].shape(), g.shape());
    }
}
