//! Reductions and summary statistics over tensors.

use crate::Tensor;

/// Sum of all elements.
pub fn sum(t: &Tensor) -> f32 {
    t.as_slice().iter().sum()
}

/// Arithmetic mean of all elements (0.0 for empty tensors).
pub fn mean(t: &Tensor) -> f32 {
    if t.is_empty() {
        0.0
    } else {
        sum(t) / t.len() as f32
    }
}

/// Euclidean (Frobenius) norm.
pub fn l2_norm(t: &Tensor) -> f32 {
    t.as_slice().iter().map(|x| x * x).sum::<f32>().sqrt()
}

/// L1 norm (sum of absolute values).
pub fn l1_norm(t: &Tensor) -> f32 {
    t.as_slice().iter().map(|x| x.abs()).sum()
}

/// Maximum element (−∞ for empty tensors).
pub fn max(t: &Tensor) -> f32 {
    t.as_slice().iter().copied().fold(f32::NEG_INFINITY, f32::max)
}

/// Minimum element (+∞ for empty tensors).
pub fn min(t: &Tensor) -> f32 {
    t.as_slice().iter().copied().fold(f32::INFINITY, f32::min)
}

/// Index of the maximum element of a 1-D view (first occurrence).
///
/// Returns `None` for empty tensors.
pub fn argmax(values: &[f32]) -> Option<usize> {
    if values.is_empty() {
        return None;
    }
    let mut best = 0;
    for (i, &v) in values.iter().enumerate() {
        if v > values[best] {
            best = i;
        }
    }
    Some(best)
}

/// Indices of the top-`k` elements of a 1-D view, descending by value.
///
/// Returns fewer than `k` indices if the slice is shorter than `k`.
pub fn top_k_indices(values: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| values[b].partial_cmp(&values[a]).unwrap_or(std::cmp::Ordering::Equal));
    idx.truncate(k);
    idx
}

/// Relative Frobenius error `‖a − b‖ / ‖a‖` (defaults to absolute error when
/// `‖a‖ == 0`). Used throughout the test suite to compare factorizations.
pub fn rel_error(a: &Tensor, b: &Tensor) -> f32 {
    let diff =
        a.as_slice().iter().zip(b.as_slice()).map(|(x, y)| (x - y) * (x - y)).sum::<f32>().sqrt();
    let denom = l2_norm(a);
    if denom == 0.0 {
        diff
    } else {
        diff / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_reductions() {
        let t = Tensor::from_vec(vec![1.0, -2.0, 3.0, -4.0], &[4]).unwrap();
        assert_eq!(sum(&t), -2.0);
        assert_eq!(mean(&t), -0.5);
        assert_eq!(l1_norm(&t), 10.0);
        assert!((l2_norm(&t) - 30.0f32.sqrt()).abs() < 1e-6);
        assert_eq!(max(&t), 3.0);
        assert_eq!(min(&t), -4.0);
    }

    #[test]
    fn argmax_first_occurrence() {
        assert_eq!(argmax(&[1.0, 5.0, 5.0, 2.0]), Some(1));
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn top_k_sorted_descending() {
        let v = [0.5, 3.0, -1.0, 2.0];
        assert_eq!(top_k_indices(&v, 2), vec![1, 3]);
        assert_eq!(top_k_indices(&v, 10).len(), 4);
    }

    #[test]
    fn rel_error_zero_for_identical() {
        let t = Tensor::randn(&[5, 5], 1.0, 1);
        assert_eq!(rel_error(&t, &t), 0.0);
    }

    #[test]
    fn empty_tensor_mean() {
        let t = Tensor::zeros(&[0]);
        assert_eq!(mean(&t), 0.0);
    }
}
