//! Umbrella crate for the Pufferfish reproduction workspace.
//!
//! Re-exports every workspace crate under one root so that the repo-level
//! integration tests (`tests/`) and runnable examples (`examples/`) can span
//! the whole system. Library users should depend on the individual crates
//! (`pufferfish`, `puffer-nn`, ...) directly.
//!
//! # Example
//!
//! ```
//! use pufferfish_repro::tensor::Tensor;
//! let t = Tensor::zeros(&[2, 3]);
//! assert_eq!(t.shape(), &[2, 3]);
//! ```

pub use puffer_compress as compress;
pub use puffer_data as data;
pub use puffer_dist as dist;
pub use puffer_models as models;
pub use puffer_nn as nn;
pub use puffer_prune as prune;
pub use puffer_tensor as tensor;
pub use pufferfish as core;
