//! Typed errors for the distributed substrate.
//!
//! The trainer used to `.expect()` every channel operation, so a dead or
//! misbehaving worker took the whole process down. Every fault the fault
//! layer can inject — and every invalid configuration — now surfaces as a
//! [`DistError`] instead of a panic, so callers (and the bench harness) can
//! distinguish "the cluster degraded but training finished" from "the run
//! is unrecoverable".

use std::fmt;

/// Result alias for distributed operations.
pub type DistResult<T> = Result<T, DistError>;

/// Everything that can go wrong in a data-parallel run.
#[derive(Debug, Clone, PartialEq)]
pub enum DistError {
    /// A [`crate::trainer::DistConfig`] field is invalid (zero workers,
    /// non-finite hyper-parameters, inconsistent profile).
    InvalidConfig {
        /// Human-readable description of the offending field.
        reason: String,
    },
    /// A global batch has fewer rows than there are workers, so at least
    /// one shard would be empty.
    BatchTooSmall {
        /// Rows in the batch.
        rows: usize,
        /// Configured worker count.
        workers: usize,
    },
    /// Extracting a worker's shard failed (shape arithmetic).
    Shard {
        /// Underlying tensor error.
        reason: String,
    },
    /// A worker hit an unrecoverable error (bad labels, resume-state
    /// mismatch) and reported it before shutting down.
    WorkerFailed {
        /// Reporting worker.
        worker: usize,
        /// What the worker saw.
        reason: String,
    },
    /// A worker thread panicked (e.g. inside the user's model factory).
    WorkerPanicked,
    /// Every worker crashed; there is no survivor to continue with.
    AllWorkersDead {
        /// Global step at which the last worker was lost.
        step: usize,
    },
    /// Saving or loading a [`crate::checkpoint::DistCheckpoint`] failed.
    Checkpoint {
        /// Underlying I/O or format error.
        reason: String,
    },
    /// A member set references a node id outside the configured
    /// [`crate::cost::HeteroProfile`] — pricing it would silently clamp
    /// the cost model instead of describing the cluster.
    UnknownMember {
        /// The offending worker (node) id.
        worker: usize,
        /// How many nodes the profile actually configures.
        nodes: usize,
    },
    /// A membership transition was invalid (joining an active member,
    /// retiring a non-member, an inconsistent churn schedule).
    Membership {
        /// Human-readable description of the violation.
        reason: String,
    },
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::InvalidConfig { reason } => write!(f, "invalid DistConfig: {reason}"),
            DistError::BatchTooSmall { rows, workers } => {
                write!(f, "batch of {rows} rows cannot feed {workers} workers")
            }
            DistError::Shard { reason } => write!(f, "shard extraction failed: {reason}"),
            DistError::WorkerFailed { worker, reason } => {
                write!(f, "worker {worker} failed: {reason}")
            }
            DistError::WorkerPanicked => write!(f, "a worker thread panicked"),
            DistError::AllWorkersDead { step } => {
                write!(f, "all workers dead at step {step}; no survivors to train on")
            }
            DistError::Checkpoint { reason } => write!(f, "checkpoint error: {reason}"),
            DistError::UnknownMember { worker, nodes } => {
                write!(f, "member set references node {worker} outside the {nodes}-node profile")
            }
            DistError::Membership { reason } => write!(f, "membership error: {reason}"),
        }
    }
}

impl std::error::Error for DistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DistError::BatchTooSmall { rows: 2, workers: 4 };
        assert!(e.to_string().contains("cannot feed 4 workers"));
        let e = DistError::AllWorkersDead { step: 7 };
        assert!(e.to_string().contains("step 7"));
        let e = DistError::UnknownMember { worker: 9, nodes: 4 };
        assert!(e.to_string().contains("node 9"));
        assert!(e.to_string().contains("4-node"));
        let e = DistError::Membership { reason: "already active".into() };
        assert!(e.to_string().contains("already active"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(DistError::WorkerPanicked);
        assert!(e.to_string().contains("panicked"));
    }
}
