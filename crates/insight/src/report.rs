//! The per-run insight report: text rendering, `BENCH_insight.json`, and
//! the gates `scripts/check.sh` asserts.
//!
//! Rendering is deterministic — the same [`RunData`] produces
//! byte-identical text and JSON — so a report can itself be diffed across
//! runs. Percentiles come from the exporter's histogram records when the
//! run carried them, and are otherwise rebuilt from the raw spans with
//! the same `puffer_probe::Histogram` (same bucketing, same numbers).

use crate::alphabeta::{fit_collectives, reconcile, AlphaBetaFit, ModelReconciliation};
use crate::ingest::{num, str_field, RunData};
use crate::rounds::{extract_rounds, Bound, Round};
use puffer_probe::json::Json;
use puffer_probe::Histogram;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Tolerance for the analytic-model reconciliation gate: measured comm
/// may exceed the configured α–β prediction by per-round jitter (the
/// trainer stretches comm by a seeded factor ≤ 1 + jitter), so the gate
/// allows a generous mean relative error.
pub const RECONCILE_TOLERANCE: f64 = 0.35;

/// One per-phase latency summary row (microseconds).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStats {
    /// Span family name.
    pub name: String,
    /// Sample count.
    pub count: u64,
    /// Median (µs).
    pub p50_us: f64,
    /// 90th percentile (µs).
    pub p90_us: f64,
    /// 99th percentile (µs).
    pub p99_us: f64,
    /// Maximum (µs).
    pub max_us: f64,
}

/// The rendered analysis of one run.
#[derive(Debug, Clone)]
pub struct InsightReport {
    /// Human-readable report (`results/insight_<source>.txt`).
    pub text: String,
    /// Machine-readable report (`BENCH_insight.json` content).
    pub json: String,
    /// `(gate, pass, detail)` triples.
    pub gates: Vec<(String, bool, String)>,
    /// Whether every gate passed.
    pub all_pass: bool,
    /// The reconstructed rounds the report describes.
    pub rounds: Vec<Round>,
    /// Per-phase latency percentiles.
    pub phases: Vec<PhaseStats>,
    /// Per-collective α–β fits.
    pub fits: Vec<AlphaBetaFit>,
    /// Reconciliation against the header-configured profile, if stamped.
    pub reconciliations: Vec<ModelReconciliation>,
}

/// `dist`-phase span families summarized in the phase table.
const DIST_PHASES: &[&str] = &[
    "round",
    "worker_compute",
    "compute",
    "encode",
    "allreduce",
    "tree_allreduce",
    "hier_allreduce",
    "allgather",
    "decode",
    "apply",
];

fn phase_stats(rd: &RunData) -> Vec<PhaseStats> {
    // Prefer the exporter's histogram records; fall back to rebuilding
    // from spans with the identical Histogram primitive.
    let mut out = Vec::new();
    for name in DIST_PHASES {
        if let Some(row) = rd
            .hist_rows
            .iter()
            .find(|r| str_field(r, "cat") == Some("dist") && str_field(r, "name") == Some(name))
        {
            out.push(PhaseStats {
                name: (*name).to_string(),
                count: num(row, "count").unwrap_or(0.0) as u64,
                p50_us: num(row, "p50_ns").unwrap_or(0.0) / 1e3,
                p90_us: num(row, "p90_ns").unwrap_or(0.0) / 1e3,
                p99_us: num(row, "p99_ns").unwrap_or(0.0) / 1e3,
                max_us: num(row, "max_ns").unwrap_or(0.0) / 1e3,
            });
            continue;
        }
        let mut h = Histogram::new();
        for sp in rd.spans.iter().filter(|s| s.cat == "dist" && s.name == *name) {
            h.record((sp.dur_us * 1e3).max(0.0) as u64);
        }
        if !h.is_empty() {
            out.push(PhaseStats {
                name: (*name).to_string(),
                count: h.count(),
                p50_us: h.p50() as f64 / 1e3,
                p90_us: h.p90() as f64 / 1e3,
                p99_us: h.p99() as f64 / 1e3,
                max_us: h.max() as f64 / 1e3,
            });
        }
    }
    out
}

fn bound_counts(rounds: &[Round]) -> BTreeMap<&'static str, usize> {
    let mut counts: BTreeMap<&'static str, usize> =
        [("compute", 0), ("comm", 0), ("straggler", 0), ("skipped", 0)].into_iter().collect();
    for r in rounds {
        *counts.entry(r.bound.as_str()).or_insert(0) += 1;
    }
    counts
}

/// Median round time over fault-free, non-skipped rounds (µs).
fn clean_round_baseline(rounds: &[Round]) -> Option<f64> {
    let mut clean: Vec<f64> = rounds
        .iter()
        .filter(|r| !r.skipped && r.faults.is_empty() && r.round_us > 0.0)
        .map(|r| r.round_us)
        .collect();
    if clean.is_empty() {
        return None;
    }
    clean.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    Some(clean[clean.len() / 2])
}

fn header_value(v: &Json) -> String {
    match v {
        Json::Str(s) => s.clone(),
        Json::Num(n) => format!("{n}"),
        Json::Bool(b) => format!("{b}"),
        Json::Null => "null".to_string(),
        _ => "...".to_string(),
    }
}

fn gates_for(
    rounds: &[Round],
    reconciliations: &[ModelReconciliation],
    header_profile: Option<(f64, f64)>,
) -> Vec<(String, bool, String)> {
    let mut gates = Vec::new();
    gates.push((
        "rounds_reconstructed".to_string(),
        !rounds.is_empty(),
        format!("{} rounds reassembled from spans", rounds.len()),
    ));
    let attributed = rounds
        .iter()
        .filter(|r| !r.skipped && r.compute_us > 0.0 && r.comm_us > 0.0 && r.collective.is_some())
        .count();
    gates.push((
        "phases_attributed".to_string(),
        rounds.iter().all(|r| r.skipped) || attributed > 0,
        format!("{attributed} rounds carry complete compute/encode/comm/decode phases"),
    ));
    let straggler_faulted: Vec<u64> = rounds
        .iter()
        .filter(|r| r.faults.iter().any(|f| f == "straggler_delay"))
        .map(|r| r.step)
        .collect();
    let straggler_bound = rounds
        .iter()
        .filter(|r| r.bound == Bound::Straggler && r.faults.iter().any(|f| f == "straggler_delay"))
        .count();
    let (pass, detail) = if straggler_faulted.is_empty() {
        (true, "no straggler faults injected".to_string())
    } else {
        (
            straggler_bound > 0,
            format!(
                "{straggler_bound}/{} straggler-faulted rounds classified straggler-bound",
                straggler_faulted.len()
            ),
        )
    };
    gates.push(("straggler_attributed".to_string(), pass, detail));
    let (pass, detail) = match header_profile {
        None => (true, "no alpha/beta stamped in the run header".to_string()),
        Some(_) if reconciliations.is_empty() => (true, "no comm rounds to reconcile".to_string()),
        Some(_) => {
            let worst = reconciliations.iter().map(|r| r.mean_rel_err).fold(0.0f64, f64::max);
            (
                worst <= RECONCILE_TOLERANCE,
                format!(
                    "worst mean relative error {:.4} vs configured α–β (tolerance {RECONCILE_TOLERANCE})",
                    worst
                ),
            )
        }
    };
    gates.push(("model_reconciles".to_string(), pass, detail));
    gates
}

/// Analyzes a run and renders both report forms. `source` names the run
/// in the output (e.g. `"trace_demo"`).
#[must_use]
pub fn analyze(rd: &RunData, source: &str) -> InsightReport {
    let rounds = extract_rounds(rd);
    let phases = phase_stats(rd);
    let fits = fit_collectives(&rounds);
    let header_profile = match (num(&rd.header, "alpha"), num(&rd.header, "beta")) {
        (Some(a), Some(b)) => Some((a, b)),
        _ => None,
    };
    let reconciliations = match header_profile {
        Some((a, b)) => reconcile(&rounds, a, b),
        None => Vec::new(),
    };
    let gates = gates_for(&rounds, &reconciliations, header_profile);
    let all_pass = gates.iter().all(|(_, p, _)| *p);
    let counts = bound_counts(&rounds);
    let baseline = clean_round_baseline(&rounds);

    // ---- text report ----
    let mut t = String::new();
    let _ = writeln!(t, "puffer-insight report — source: {source}");
    if !rd.header.is_empty() {
        let _ = writeln!(t, "\n== run context ==");
        for (k, v) in &rd.header {
            let _ = writeln!(t, "  {k} = {}", header_value(v));
        }
    }
    let _ = writeln!(t, "\n== rounds ==");
    let _ = writeln!(
        t,
        "  {:>4} {:>5} {:>10} {:>14} {:>11} {:>11} {:>11}  faults",
        "step", "nodes", "bound", "critical", "round_us", "compute_us", "comm_us"
    );
    for r in &rounds {
        let critical = r
            .critical_phase()
            .map(|s| match s.worker {
                Some(w) => format!("{}@w{w}", s.phase),
                None => s.phase.clone(),
            })
            .unwrap_or_else(|| "-".to_string());
        let _ = writeln!(
            t,
            "  {:>4} {:>5} {:>10} {:>14} {:>11.1} {:>11.1} {:>11.1}  {}",
            r.step,
            r.nodes,
            r.bound.as_str(),
            critical,
            r.round_us,
            r.compute_us,
            r.comm_us,
            if r.faults.is_empty() { "-".to_string() } else { r.faults.join(",") }
        );
    }
    let _ = writeln!(t, "\n== bound summary ==");
    for (k, v) in &counts {
        let _ = writeln!(t, "  {k:>10}: {v}");
    }
    if let Some(base) = baseline {
        let _ = writeln!(
            t,
            "\n== fault attribution (round-time inflation vs clean median {base:.1} µs) =="
        );
        for r in rounds.iter().filter(|r| !r.faults.is_empty() && r.round_us > 0.0) {
            let _ = writeln!(
                t,
                "  step {:>3}: {:>6.2}x  ({})",
                r.step,
                r.round_us / base,
                r.faults.join(",")
            );
        }
    }
    if !phases.is_empty() {
        let _ = writeln!(t, "\n== phase latency percentiles (µs) ==");
        let _ = writeln!(
            t,
            "  {:>16} {:>7} {:>11} {:>11} {:>11} {:>11}",
            "phase", "count", "p50", "p90", "p99", "max"
        );
        for p in &phases {
            let _ = writeln!(
                t,
                "  {:>16} {:>7} {:>11.1} {:>11.1} {:>11.1} {:>11.1}",
                p.name, p.count, p.p50_us, p.p90_us, p.p99_us, p.max_us
            );
        }
    }
    if !fits.is_empty() {
        let _ = writeln!(t, "\n== measured α–β per collective ==");
        for f in &fits {
            let _ = writeln!(
                t,
                "  {:>10}: α = {:.3e} s, β = {:.3e} s/B over {} rounds{} (max residual {:.4})",
                f.collective,
                f.alpha,
                f.beta,
                f.points,
                if f.degenerate {
                    " [degenerate: single operating point, α pinned 0]"
                } else {
                    ""
                },
                f.max_rel_residual
            );
        }
        for r in &reconciliations {
            let _ = writeln!(
                t,
                "  {:>10}: configured-model reconciliation over {} rounds: mean rel err {:.4}, max {:.4}",
                r.collective, r.rounds, r.mean_rel_err, r.max_rel_err
            );
        }
    }
    let _ = writeln!(t, "\n== gates ==");
    for (gate, pass, detail) in &gates {
        let _ = writeln!(t, "  [{}] {gate}: {detail}", if *pass { "PASS" } else { "FAIL" });
    }
    let _ = writeln!(t, "\nall gates pass: {all_pass}");

    // ---- BENCH_insight.json ----
    let mut j = String::new();
    let _ = write!(j, "{{\n  \"bench\": \"insight\",\n  \"source\": ");
    puffer_probe::json::escape_into(&mut j, source);
    let _ = write!(j, ",\n  \"rounds\": {},\n  \"bounds\": {{", rounds.len());
    for (i, (k, v)) in counts.iter().enumerate() {
        let _ = write!(j, "{}\"{k}\": {v}", if i > 0 { ", " } else { "" });
    }
    let _ = write!(j, "}},\n  \"straggler_rounds\": [");
    let stragglers: Vec<String> =
        rounds.iter().filter(|r| r.bound == Bound::Straggler).map(|r| r.step.to_string()).collect();
    let _ = write!(j, "{}]", stragglers.join(", "));
    let _ = write!(j, ",\n  \"phases\": {{");
    for (i, p) in phases.iter().enumerate() {
        let _ = write!(
            j,
            "{}\n    \"{}\": {{\"count\": {}, \"p50_us\": {:.3}, \"p90_us\": {:.3}, \"p99_us\": {:.3}, \"max_us\": {:.3}}}",
            if i > 0 { "," } else { "" },
            p.name,
            p.count,
            p.p50_us,
            p.p90_us,
            p.p99_us,
            p.max_us
        );
    }
    let _ = write!(j, "\n  }},\n  \"fits\": [");
    for (i, f) in fits.iter().enumerate() {
        let _ = write!(
            j,
            "{}\n    {{\"collective\": \"{}\", \"points\": {}, \"alpha_s\": {:.6e}, \"beta_s_per_byte\": {:.6e}, \"degenerate\": {}, \"max_rel_residual\": {:.6}}}",
            if i > 0 { "," } else { "" },
            f.collective,
            f.points,
            f.alpha,
            f.beta,
            f.degenerate,
            f.max_rel_residual
        );
    }
    let _ = write!(j, "\n  ],\n  \"reconciliation\": [");
    for (i, r) in reconciliations.iter().enumerate() {
        let _ = write!(
            j,
            "{}\n    {{\"collective\": \"{}\", \"rounds\": {}, \"mean_rel_err\": {:.6}, \"max_rel_err\": {:.6}}}",
            if i > 0 { "," } else { "" },
            r.collective,
            r.rounds,
            r.mean_rel_err,
            r.max_rel_err
        );
    }
    let _ = write!(j, "\n  ],\n  \"gates\": [");
    for (i, (gate, pass, detail)) in gates.iter().enumerate() {
        let _ = write!(
            j,
            "{}\n    {{\"gate\": \"{gate}\", \"pass\": {pass}, \"detail\": ",
            if i > 0 { "," } else { "" }
        );
        puffer_probe::json::escape_into(&mut j, detail);
        let _ = write!(j, "}}");
    }
    let _ = write!(j, "\n  ],\n  \"all_pass\": {all_pass}\n}}\n");

    InsightReport { text: t, json: j, gates, all_pass, rounds, phases, fits, reconciliations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::parse_trace;

    /// A two-round, two-worker synthetic trace: round 0 is clean and
    /// comm-bound; round 1 has an injected straggler on worker 1.
    const TRACE: &str = r#"[
{"name":"run_context","ph":"M","pid":1,"tid":0,"ts":0,"args":{"alpha":0.00005,"beta":8e-10,"seed":9,"workers":2,"scheme":"none"}},
{"name":"round","cat":"dist","ph":"X","pid":1,"tid":9,"ts":0,"dur":500.0,"args":{"step":0,"epoch":0,"live":2}},
{"name":"worker_compute","cat":"dist","ph":"X","pid":1,"tid":1,"ts":0,"dur":80.0,"args":{"worker":0,"step":0}},
{"name":"worker_compute","cat":"dist","ph":"X","pid":1,"tid":2,"ts":0,"dur":82.0,"args":{"worker":1,"step":0}},
{"name":"compute","cat":"dist","ph":"X","pid":1,"tid":9,"ts":100,"dur":82.0,"args":{"step":0}},
{"name":"encode","cat":"dist","ph":"X","pid":1,"tid":9,"ts":200,"dur":3.0,"args":{"step":0}},
{"name":"allreduce","cat":"dist","ph":"X","pid":1,"tid":9,"ts":210,"dur":103.35,"args":{"step":0,"nodes":2,"bytes":8000,"bytes_per_worker":4000}},
{"name":"decode","cat":"dist","ph":"X","pid":1,"tid":9,"ts":320,"dur":2.0,"args":{"step":0}},
{"name":"apply","cat":"dist","ph":"X","pid":1,"tid":1,"ts":330,"dur":4.0,"args":{"worker":0,"step":0}},
{"name":"apply","cat":"dist","ph":"X","pid":1,"tid":2,"ts":330,"dur":5.0,"args":{"worker":1,"step":0}},
{"name":"round","cat":"dist","ph":"X","pid":1,"tid":9,"ts":600,"dur":900.0,"args":{"step":1,"epoch":0,"live":2}},
{"name":"worker_compute","cat":"dist","ph":"X","pid":1,"tid":1,"ts":600,"dur":80.0,"args":{"worker":0,"step":1}},
{"name":"worker_compute","cat":"dist","ph":"X","pid":1,"tid":2,"ts":600,"dur":81.0,"args":{"worker":1,"step":1}},
{"name":"straggler_delay","cat":"fault","ph":"i","pid":1,"tid":2,"ts":690,"s":"t","args":{"worker":1,"step":1,"delay_us":120}},
{"name":"compute","cat":"dist","ph":"X","pid":1,"tid":9,"ts":700,"dur":201.0,"args":{"step":1}},
{"name":"encode","cat":"dist","ph":"X","pid":1,"tid":9,"ts":910,"dur":3.0,"args":{"step":1}},
{"name":"allreduce","cat":"dist","ph":"X","pid":1,"tid":9,"ts":920,"dur":103.35,"args":{"step":1,"nodes":2,"bytes":8000,"bytes_per_worker":4000}},
{"name":"decode","cat":"dist","ph":"X","pid":1,"tid":9,"ts":1030,"dur":2.0,"args":{"step":1}},
{"name":"apply","cat":"dist","ph":"X","pid":1,"tid":1,"ts":1040,"dur":4.0,"args":{"worker":0,"step":1}},
{"name":"apply","cat":"dist","ph":"X","pid":1,"tid":2,"ts":1040,"dur":4.5,"args":{"worker":1,"step":1}}
]"#;

    #[test]
    fn analyze_renders_deterministically_and_gates_pass() {
        let rd = parse_trace(TRACE).unwrap();
        let rep = analyze(&rd, "fixture");
        assert!(rep.all_pass, "gates: {:?}", rep.gates);
        assert_eq!(rep.rounds.len(), 2);
        assert_eq!(rep.rounds[0].bound, Bound::Comm, "comm 103µs > compute 82µs");
        assert_eq!(rep.rounds[1].bound, Bound::Straggler);
        assert_eq!(rep.rounds[1].slowest_worker, Some(1));
        // Deterministic rendering: analyze twice, byte-identical output.
        let rep2 = analyze(&rd, "fixture");
        assert_eq!(rep.text, rep2.text);
        assert_eq!(rep.json, rep2.json);
        // The JSON is parseable and self-consistent.
        let parsed = puffer_probe::json::parse(&rep.json).unwrap();
        assert_eq!(parsed.get("rounds").unwrap().as_num(), Some(2.0));
        assert_eq!(parsed.get("all_pass"), Some(&Json::Bool(true)));
        assert!(rep.text.contains("straggler"));
    }

    #[test]
    fn reconciliation_gate_fails_on_a_wrong_model() {
        // Stamp a 10× wrong alpha/beta into the header: the measured comm
        // no longer reconciles and the gate must fail.
        let doc =
            TRACE.replace("\"alpha\":0.00005,\"beta\":8e-10", "\"alpha\":0.0005,\"beta\":8e-9");
        let rd = parse_trace(&doc).unwrap();
        let rep = analyze(&rd, "fixture");
        assert!(!rep.all_pass);
        assert!(rep.gates.iter().any(|(g, pass, _)| g == "model_reconciles" && !*pass));
    }
}
