//! Integration tests for the distributed substrate: the threaded
//! data-parallel trainer against single-process training, compression in
//! the loop, and the communication accounting used by the Figure-4
//! experiments.

use pufferfish_repro::compress::none::NoCompression;
use pufferfish_repro::compress::powersgd::PowerSgd;
use pufferfish_repro::compress::signum::Signum;
use pufferfish_repro::compress::GradCompressor;
use pufferfish_repro::dist::breakdown::measure_sequential_epoch;
use pufferfish_repro::dist::cost::ClusterProfile;
use pufferfish_repro::dist::trainer::{train_data_parallel, DistConfig};
use pufferfish_repro::models::resnet::{ResNet, ResNetConfig, ResNetHybridPlan};
use pufferfish_repro::models::units::FactorInit;
use pufferfish_repro::nn::layer::{Layer, Mode};
use pufferfish_repro::nn::loss::softmax_cross_entropy;
use pufferfish_repro::nn::optim::Sgd;
use pufferfish_repro::tensor::Tensor;

/// `n` copies of one fixed labeled batch: a memorization task, so loss
/// must decrease under any correct optimizer.
fn batches(n: usize, batch: usize, features: usize, classes: usize) -> Vec<(Tensor, Vec<usize>)> {
    let x = Tensor::randn(&[batch, 3, features, features], 1.0, 50);
    let labels: Vec<usize> = (0..batch).map(|i| i % classes).collect();
    (0..n).map(|_| (x.clone(), labels.clone())).collect()
}

#[test]
fn four_worker_cnn_matches_single_process() {
    // A BN-free claim would be bit-exact; with BN the batch statistics
    // differ between sharded and full batches, so we instead verify the
    // *deterministic reproducibility* of the distributed run and that it
    // optimizes.
    let data = batches(16, 8, 8, 4);
    let cfg = DistConfig {
        workers: 4,
        lr: 0.05,
        momentum: 0.9,
        weight_decay: 1e-4,
        profile: ClusterProfile::zero_cost(4),
    };
    let factory = |_w: usize| ResNet::new(ResNetConfig::resnet18(0.0625, 4, 11)).unwrap();
    let mut c1 = NoCompression::new();
    let a = train_data_parallel(factory, &data, &mut c1, &cfg).unwrap();
    let mut c2 = NoCompression::new();
    let b = train_data_parallel(factory, &data, &mut c2, &cfg).unwrap();
    assert_eq!(a.final_params, b.final_params, "distributed run must be deterministic");
    let early: f32 = a.step_losses[..3].iter().sum::<f32>() / 3.0;
    let late: f32 = a.step_losses[13..].iter().sum::<f32>() / 3.0;
    assert!(late < early, "memorization should reduce loss: {early} -> {late}");
}

#[test]
fn pufferfish_hybrid_ships_fewer_bytes_than_vanilla() {
    let data = batches(2, 8, 8, 4);
    let profile = ClusterProfile::p3_like(8);
    let mut vanilla = ResNet::new(ResNetConfig::resnet18(0.0625, 4, 1)).unwrap();
    let mut comp = NoCompression::new();
    let (bd_v, _) =
        measure_sequential_epoch(&mut vanilla, &data, 8, &mut comp, &profile, 0.05).unwrap();

    let mut hybrid = ResNet::new(ResNetConfig::resnet18(0.0625, 4, 1))
        .unwrap()
        .to_hybrid(&ResNetHybridPlan::resnet18_paper(), FactorInit::Random(3))
        .unwrap();
    let mut comp = NoCompression::new();
    let (bd_p, _) =
        measure_sequential_epoch(&mut hybrid, &data, 8, &mut comp, &profile, 0.05).unwrap();
    assert!(bd_p.comm < bd_v.comm, "hybrid comm {:?} !< vanilla {:?}", bd_p.comm, bd_v.comm);
}

#[test]
fn powersgd_moves_fewest_bytes_but_pays_codec() {
    let data = batches(2, 8, 8, 4);
    let profile = ClusterProfile::p3_like(8);
    let run = |comp: &mut dyn GradCompressor| {
        let mut model = ResNet::new(ResNetConfig::resnet18(0.0625, 4, 1)).unwrap();
        measure_sequential_epoch(&mut model, &data, 8, comp, &profile, 0.05).unwrap().0
    };
    let vanilla = run(&mut NoCompression::new());
    let powersgd = run(&mut PowerSgd::new(2, 5));
    let signum = run(&mut Signum::new(0.9));
    assert!(powersgd.comm < vanilla.comm);
    // At bench scale, latency dominates and the comparison against signum
    // flips; at the paper's message sizes (100 MB gradients) the bandwidth
    // term dominates and PowerSGD's allreduce wins — verify with the cost
    // model directly.
    let big = pufferfish_repro::dist::cost::ClusterProfile::p3_like(8);
    assert!(big.allreduce(2 << 20) < big.allgather((100 << 20) / 32));
    let _ = signum;
    // The codec-cost comparison is a micro-timing statement: make it on
    // gradients large enough that PowerSGD's per-layer matmuls dominate
    // buffer copies, accumulated over several rounds.
    let grads: Vec<Vec<Tensor>> =
        (0..4).map(|w| vec![Tensor::randn(&[128, 128], 1.0, w)]).collect();
    let mut vanilla_codec = std::time::Duration::ZERO;
    let mut powersgd_codec = std::time::Duration::ZERO;
    let mut none = NoCompression::new();
    let mut psgd = PowerSgd::new(2, 5);
    for _ in 0..5 {
        let (_, s) = none.round(&grads);
        vanilla_codec += s.encode_time + s.decode_time;
        let (_, s) = psgd.round(&grads);
        powersgd_codec += s.encode_time + s.decode_time;
    }
    assert!(
        powersgd_codec > vanilla_codec,
        "powersgd codec {powersgd_codec:?} should exceed vanilla pack/unpack {vanilla_codec:?}"
    );
}

#[test]
fn compressed_training_still_converges_end_to_end() {
    // PowerSGD-compressed data-parallel training on a real CNN reduces the
    // loss (error feedback working through the whole pipeline).
    let data = batches(24, 8, 8, 4);
    let cfg = DistConfig {
        workers: 2,
        lr: 0.05,
        momentum: 0.9,
        weight_decay: 0.0,
        profile: ClusterProfile::p3_like(2),
    };
    let mut comp = PowerSgd::new(2, 9);
    let out = train_data_parallel(
        |_| ResNet::new(ResNetConfig::resnet18(0.0625, 4, 13)).unwrap(),
        &data,
        &mut comp,
        &cfg,
    )
    .unwrap();
    let early: f32 = out.step_losses[..4].iter().sum::<f32>() / 4.0;
    let late: f32 = out.step_losses[out.step_losses.len() - 4..].iter().sum::<f32>() / 4.0;
    assert!(late < early, "compressed training diverged: {early} -> {late}");
}

#[test]
fn sequential_and_threaded_paths_agree_on_losses() {
    // The measurement path (sequential) and the threaded trainer implement
    // the same synchronous algorithm: from identical inits, their first
    // training step must produce the same loss.
    let data = batches(1, 8, 8, 4);
    let profile = ClusterProfile::zero_cost(2);
    let mut model = ResNet::new(ResNetConfig::resnet18(0.0625, 4, 21)).unwrap();
    let mut comp = NoCompression::new();
    let (_, seq_loss) =
        measure_sequential_epoch(&mut model, &data, 2, &mut comp, &profile, 0.05).unwrap();

    let cfg = DistConfig { workers: 2, lr: 0.05, momentum: 0.9, weight_decay: 1e-4, profile };
    let mut comp = NoCompression::new();
    let out = train_data_parallel(
        |_| ResNet::new(ResNetConfig::resnet18(0.0625, 4, 21)).unwrap(),
        &data,
        &mut comp,
        &cfg,
    )
    .unwrap();
    let thr_loss = out.step_losses[0];
    assert!((seq_loss - thr_loss).abs() < 1e-4, "sequential {seq_loss} vs threaded {thr_loss}");
}

#[test]
fn single_process_reference_optimizes_same_shapes() {
    // Guard: the building blocks the integration relies on (forward,
    // backward, step) compose on the exact model/shape combination used
    // throughout this file.
    let mut model = ResNet::new(ResNetConfig::resnet18(0.0625, 4, 31)).unwrap();
    let mut opt = Sgd::new(0.05, 0.9, 1e-4);
    let (x, labels) = &batches(1, 8, 8, 4)[0];
    for _ in 0..3 {
        model.zero_grad();
        let logits = model.forward(x, Mode::Train);
        let (loss, dl) = softmax_cross_entropy(&logits, labels, 0.0).unwrap();
        assert!(loss.is_finite());
        let _ = model.backward(&dl);
        opt.step(&mut model.params_mut());
    }
}
